package dctraffic

// One benchmark per table/figure of the paper (see DESIGN.md §3). Each
// bench regenerates its figure's data from a shared simulated run and
// reports the headline value as a custom metric, so `go test -bench .`
// doubles as the experiment harness. Ablation benches at the bottom rerun
// scaled-down simulations with one design decision removed.

import (
	"context"
	"sync"
	"testing"
	"time"

	"dctraffic/internal/congestion"
	"dctraffic/internal/core"
	"dctraffic/internal/flows"
	"dctraffic/internal/sched"
	"dctraffic/internal/stats"
	"dctraffic/internal/te"
	"dctraffic/internal/tm"
	"dctraffic/internal/tomo"
)

var (
	benchOnce sync.Once
	benchRun  *core.RunResult
	benchRep  *core.Report
)

// benchSetup simulates once and memoizes run + full report.
func benchSetup(b *testing.B) (*core.RunResult, *core.Report) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.SmallRun()
		cfg.Duration = time.Hour
		cfg.DrainTime = 20 * time.Minute
		rr, err := core.Simulate(cfg)
		if err != nil {
			panic(err)
		}
		benchRun = rr
		rep, err := core.AnalyzeRun(context.Background(), rr)
		if err != nil {
			panic(err)
		}
		benchRep = rep
	})
	b.ResetTimer()
	return benchRun, benchRep
}

func BenchmarkSec2Overhead(b *testing.B) {
	rr, _ := benchSetup(b)
	var o = rr.Collector.Overhead(rr.Config.Duration)
	for i := 0; i < b.N; i++ {
		o = rr.Collector.Overhead(rr.Config.Duration)
	}
	b.ReportMetric(o.MedianCPUPct, "cpu-pct")
	b.ReportMetric(o.CompressionRatio, "compression-x")
}

func BenchmarkFig2TrafficMatrixHeatmap(b *testing.B) {
	rr, rep := benchSetup(b)
	var ps tm.PatternSummary
	for i := 0; i < b.N; i++ {
		mid := rr.Config.Duration / 2
		m := tm.ServerMatrix(rr.Records(), rr.Top.NumHosts(), mid, mid+10*time.Second)
		ps = tm.SummarizePatterns(m, rr.Top)
	}
	_ = ps
	b.ReportMetric(rep.Fig2.Patterns.WithinRackFraction, "rack-share")
	b.ReportMetric(float64(rep.Fig2.Patterns.ScatterGatherRows), "scatter-rows")
}

func BenchmarkFig3EntryDistribution(b *testing.B) {
	rr, rep := benchSetup(b)
	mid := rr.Config.Duration / 2
	m := tm.ServerMatrix(rr.Records(), rr.Top.NumHosts(), mid, mid+100*time.Second)
	var es tm.EntryStats
	for i := 0; i < b.N; i++ {
		es = tm.ComputeEntryStats(m, rr.Top)
	}
	_ = es
	b.ReportMetric(rep.Fig3.Entries.PZeroWithinRack, "p-zero-rack")
	b.ReportMetric(rep.Fig3.Entries.PZeroAcrossRack, "p-zero-cross")
}

func BenchmarkFig4Correspondents(b *testing.B) {
	rr, rep := benchSetup(b)
	mid := rr.Config.Duration / 2
	m := tm.ServerMatrix(rr.Records(), rr.Top.NumHosts(), mid, mid+100*time.Second)
	var cs tm.CorrespondentStats
	for i := 0; i < b.N; i++ {
		cs = tm.ComputeCorrespondents(m, rr.Top)
	}
	_ = cs
	b.ReportMetric(rep.Fig4.Stats.MedianWithinCount, "median-within")
	b.ReportMetric(rep.Fig4.Stats.MedianAcrossCount, "median-across")
}

func BenchmarkFig5CongestionMap(b *testing.B) {
	rr, rep := benchSetup(b)
	links := rr.Top.InterSwitchLinks()
	var eps []congestion.Episode
	for i := 0; i < b.N; i++ {
		eps = congestion.Detect(rr.Net.Stats(), rr.Top, 0, links)
	}
	_ = eps
	b.ReportMetric(rep.Fig5.FracLinks10s, "frac-links-10s")
	b.ReportMetric(rep.Fig5.FracLinks100s, "frac-links-100s")
}

func BenchmarkFig6CongestionDurations(b *testing.B) {
	rr, rep := benchSetup(b)
	eps := congestion.Detect(rr.Net.Stats(), rr.Top, 0, rr.Top.InterSwitchLinks())
	for i := 0; i < b.N; i++ {
		_, _, _ = congestion.DurationStats(eps)
	}
	b.ReportMetric(rep.Fig6.FracUnder10, "frac-under-10s")
	b.ReportMetric(rep.Fig6.LongestSec, "longest-s")
}

func BenchmarkFig7CongestedFlowRates(b *testing.B) {
	rr, rep := benchSetup(b)
	eps := congestion.Detect(rr.Net.Stats(), rr.Top, 0, rr.Top.InterSwitchLinks())
	for i := 0; i < b.N; i++ {
		_, _ = congestion.OverlapRateCDFs(rr.Records(), eps, rr.Top)
	}
	b.ReportMetric(rep.Fig7.MedianOverlapMbps, "median-overlap-mbps")
	b.ReportMetric(rep.Fig7.MedianAllMbps, "median-all-mbps")
}

func BenchmarkFig8ReadFailureImpact(b *testing.B) {
	rr, rep := benchSetup(b)
	eps := congestion.Detect(rr.Net.Stats(), rr.Top, 0, rr.Top.InterSwitchLinks())
	period := rr.Config.Duration / 8
	for i := 0; i < b.N; i++ {
		_ = congestion.ReadFailureImpact(rr.Log, rr.Records(), eps, rr.Top, period, 8)
	}
	b.ReportMetric(rep.Fig8.MedianIncreasePct, "median-increase-pct")
}

func BenchmarkFig9FlowDurations(b *testing.B) {
	rr, rep := benchSetup(b)
	for i := 0; i < b.N; i++ {
		_, _ = flows.DurationCDFs(rr.Records())
	}
	b.ReportMetric(rep.Fig9.Summary.FracShorterThan10s, "frac-under-10s")
	b.ReportMetric(rep.Fig9.Summary.BytesInFlowsUnder25s, "bytes-under-25s")
}

func BenchmarkFig10TrafficChange(b *testing.B) {
	rr, rep := benchSetup(b)
	for i := 0; i < b.N; i++ {
		series := tm.ServerSeries(rr.Records(), rr.Top.NumHosts(), 10*time.Second, rr.Config.Duration)
		_ = tm.ChangeSeries(series, 1)
	}
	b.ReportMetric(rep.Fig10.MedianChange10s, "median-change-10s")
	b.ReportMetric(rep.Fig10.MedianChange100s, "median-change-100s")
}

func BenchmarkFig11InterArrivals(b *testing.B) {
	rr, rep := benchSetup(b)
	for i := 0; i < b.N; i++ {
		_ = flows.ServerInterArrivals(rr.Records(), rr.Top)
	}
	b.ReportMetric(rep.Fig11.ModeMs, "mode-ms")
	b.ReportMetric(rep.Fig11.ArrivalPerSec, "arrivals-per-s")
}

func BenchmarkFig12TomographyError(b *testing.B) {
	rr, rep := benchSetup(b)
	problem := tomo.NewProblem(rr.Top)
	series := tm.TorSeries(rr.Records(), rr.Top, 10*time.Minute, rr.Config.Duration)
	var truth *tm.Matrix
	for _, m := range series {
		if m.Total() > 0 {
			truth = m
			break
		}
	}
	if truth == nil {
		b.Skip("no traffic")
	}
	cnt := problem.LinkCounts(truth)
	for i := 0; i < b.N; i++ {
		if _, err := problem.Tomogravity(cnt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Fig12.MedianTomogravity, "median-rmsre-tg")
	b.ReportMetric(rep.Fig12.MedianSparsityMax, "median-rmsre-sm")
}

func BenchmarkFig13ErrorVsSparsity(b *testing.B) {
	_, rep := benchSetup(b)
	xs := make([]float64, 0, len(rep.Fig13.Points))
	ys := make([]float64, 0, len(rep.Fig13.Points))
	for _, p := range rep.Fig13.Points {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	if len(xs) < 2 {
		b.Skip("too few tomography instances")
	}
	for i := 0; i < b.N; i++ {
		_ = stats.Pearson(xs, ys)
		_, _ = stats.LogFit(xs, ys)
	}
	b.ReportMetric(rep.Fig13.Pearson, "pearson")
}

func BenchmarkFig14SparsityComparison(b *testing.B) {
	rr, rep := benchSetup(b)
	problem := tomo.NewProblem(rr.Top)
	series := tm.TorSeries(rr.Records(), rr.Top, 10*time.Minute, rr.Config.Duration)
	var truth *tm.Matrix
	for _, m := range series {
		if m.Total() > 0 {
			truth = m
			break
		}
	}
	if truth == nil {
		b.Skip("no traffic")
	}
	cnt := problem.LinkCounts(truth)
	for i := 0; i < b.N; i++ {
		if _, err := problem.SparsityMax(cnt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Fig14.SparsityNonZeros, "sm-nonzeros")
	b.ReportMetric(rep.Fig14.HeavyHitterHits, "heavy-hits")
}

func BenchmarkSec44IncastPreconditions(b *testing.B) {
	rr, rep := benchSetup(b)
	eps := congestion.Detect(rr.Net.Stats(), rr.Top, 0, rr.Top.InterSwitchLinks())
	for i := 0; i < b.N; i++ {
		_ = congestion.AuditIncast(rr.Records(), rr.Top, eps,
			rr.Net.Stats().BinSize(), rr.Config.Duration, 2)
	}
	b.ReportMetric(rep.Incast.FracFlowsWithinRack, "frac-rack")
	b.ReportMetric(float64(rep.Incast.MaxSimultaneousConnections), "conn-cap")
}

// --- ablations ---------------------------------------------------------

// ablationRun simulates a short window with a tweaked scheduler config.
func ablationRun(b *testing.B, mutate func(*sched.Config)) *core.RunResult {
	b.Helper()
	cfg := core.SmallRun()
	cfg.Duration = 30 * time.Minute
	cfg.DrainTime = 10 * time.Minute
	mutate(&cfg.Sched)
	rr, err := core.Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rr
}

// BenchmarkAblationRandomPlacement removes locality-aware placement.
// Work-seeks-bandwidth shows up in two ways: reads served without leaving
// the rack/VLAN, and total bytes that ever hit the fabric — random
// placement multiplies network volume several-fold because extract inputs
// that were local disk reads become cross-rack transfers.
func BenchmarkAblationRandomPlacement(b *testing.B) {
	random := ablationRun(b, func(c *sched.Config) { c.RandomPlacement = true })
	normal := ablationRun(b, func(c *sched.Config) {})
	localFrac := func(rr *core.RunResult) float64 {
		l, rk, v, rm := rr.Cluster.ReadLocality()
		total := l + rk + v + rm
		if total == 0 {
			return 0
		}
		return float64(l+rk+v) / float64(total)
	}
	b.ResetTimer()
	var lr, ln float64
	for i := 0; i < b.N; i++ {
		lr = localFrac(random)
		ln = localFrac(normal)
	}
	b.ReportMetric(lr, "near-reads-random")
	b.ReportMetric(ln, "near-reads-normal")
	b.ReportMetric(random.Net.TotalBytes()/1e9, "fabric-GB-random")
	b.ReportMetric(normal.Net.TotalBytes()/1e9, "fabric-GB-normal")
}

// BenchmarkAblationNoConnectionCap removes the per-vertex connection cap
// and pacing — the §4.4 incast-avoidance decisions — and reports the peak
// fan-in a vertex opens.
func BenchmarkAblationNoConnectionCap(b *testing.B) {
	uncapped := ablationRun(b, func(c *sched.Config) {
		c.MaxConnsPerVertex = 64
		c.FlowPacing = time.Millisecond
	})
	capped := ablationRun(b, func(c *sched.Config) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = uncapped.Cluster.MaxConcurrentPulls()
	}
	b.ReportMetric(float64(uncapped.Cluster.MaxConcurrentPulls()), "max-fanin-uncapped")
	b.ReportMetric(float64(capped.Cluster.MaxConcurrentPulls()), "max-fanin-capped")
}

// BenchmarkAblationUniformPrior replaces the gravity prior with a uniform
// one, quantifying how much the gravity structure actually contributes.
func BenchmarkAblationUniformPrior(b *testing.B) {
	rr, _ := benchSetup(b)
	problem := tomo.NewProblem(rr.Top)
	series := tm.TorSeries(rr.Records(), rr.Top, 10*time.Minute, rr.Config.Duration)
	var eGravity, eUniform []float64
	for _, truth := range series {
		if truth.Total() <= 0 {
			continue
		}
		cnt := problem.LinkCounts(truth)
		xTrue := problem.VecFromTM(truth)
		if est, err := problem.Tomogravity(cnt); err == nil {
			eGravity = append(eGravity, tomo.RMSRE(xTrue, est, 0.75))
		}
		// Uniform prior = multiplier that flattens gravity.
		g := problem.GravityPrior(cnt)
		mult := make([]float64, len(g))
		for i := range mult {
			if g[i] > 0 {
				mult[i] = 1 / g[i]
			} else {
				mult[i] = 1
			}
		}
		if est, err := problem.TomogravityWithMultiplier(cnt, mult); err == nil {
			eUniform = append(eUniform, tomo.RMSRE(xTrue, est, 0.75))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.Median(eGravity)
	}
	b.ReportMetric(stats.Median(eGravity), "rmsre-gravity")
	b.ReportMetric(stats.Median(eUniform), "rmsre-uniform")
}

// BenchmarkSec43TrafficEngineering replays the run's cross-rack flows
// over a multipath fabric under the §4.3 path selectors and reports their
// peak utilization — quantifying "simple random choices" vs centralized
// per-flow scheduling with decision lag.
func BenchmarkSec43TrafficEngineering(b *testing.B) {
	rr, _ := benchSetup(b)
	fabric, err := te.NewFabric(rr.Top.NumRacks(), 4, 10e9)
	if err != nil {
		b.Fatal(err)
	}
	teFlows := te.FlowsFromRecords(rr.Records(), rr.Top)
	if len(teFlows) == 0 {
		b.Skip("no cross-rack flows")
	}
	var results []te.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = te.Compare(fabric, teFlows, 1, time.Second, rr.Config.Duration, 100*time.Millisecond)
	}
	for _, r := range results {
		switch r.Selector {
		case "random":
			b.ReportMetric(r.MaxUtilization, "maxutil-random")
		case "least-loaded":
			b.ReportMetric(r.MaxUtilization, "maxutil-central")
		case "least-loaded+100ms":
			b.ReportMetric(r.MaxUtilization, "maxutil-stale")
		}
	}
	b.ReportMetric(results[0].DecisionsPerSec, "decisions-per-s")
}

// BenchmarkAblationSparseVsDenseTM measures the sparse TM representation
// against a dense scan for the entry-stats analysis.
func BenchmarkAblationSparseVsDenseTM(b *testing.B) {
	rr, _ := benchSetup(b)
	mid := rr.Config.Duration / 2
	m := tm.ServerMatrix(rr.Records(), rr.Top.NumHosts(), mid, mid+100*time.Second)
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tm.ComputeEntryStats(m, rr.Top)
		}
	})
	b.Run("dense", func(b *testing.B) {
		dense := m.Dense()
		for i := 0; i < b.N; i++ {
			back := tm.FromDense(m.N(), dense)
			_ = tm.ComputeEntryStats(back, rr.Top)
		}
	})
}

// BenchmarkAblationCounterNoise measures tomogravity's sensitivity to
// imperfect SNMP counters (the paper evaluates with exact counts; real
// deployments poll and lose samples).
func BenchmarkAblationCounterNoise(b *testing.B) {
	rr, _ := benchSetup(b)
	problem := tomo.NewProblem(rr.Top)
	series := tm.TorSeries(rr.Records(), rr.Top, 10*time.Minute, rr.Config.Duration)
	var truth *tm.Matrix
	for _, m := range series {
		if m.Total() > 0 {
			truth = m
			break
		}
	}
	if truth == nil {
		b.Skip("no traffic")
	}
	cnt := problem.LinkCounts(truth)
	xTrue := problem.VecFromTM(truth)
	rng := stats.NewRNG(1)
	errAt := func(relStd float64) float64 {
		var sum float64
		const trials = 5
		for i := 0; i < trials; i++ {
			est, err := problem.Tomogravity(tomo.NoisyLinkCounts(cnt, rng, relStd))
			if err != nil {
				b.Fatal(err)
			}
			sum += tomo.RMSRE(xTrue, est, 0.75)
		}
		return sum / trials
	}
	var clean, noisy float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clean = errAt(0)
		noisy = errAt(0.2)
	}
	b.ReportMetric(clean, "rmsre-exact")
	b.ReportMetric(noisy, "rmsre-20pct-noise")
}

// BenchmarkAblationMultipathFabric runs the same workload on the paper's
// single-homed tree and on a VL2-style multipath fabric (same total ToR
// uplink budget, per-flow ECMP across 4 aggs) and reports sustained
// (>=10 s) congestion seconds per monitored link for each — the
// architecture comparison the paper's measurements are meant to enable.
// ECMP scatters many short collisions over smaller per-agg links but
// eliminates most long hot-trunk episodes.
func BenchmarkAblationMultipathFabric(b *testing.B) {
	run := func(multipath bool) float64 {
		cfg := core.SmallRun()
		cfg.Duration = 30 * time.Minute
		cfg.DrainTime = 10 * time.Minute
		cfg.Topology.MultiPath = multipath
		if multipath {
			cfg.Topology.AggSwitches = 4
		}
		rr, err := core.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		links := rr.Top.InterSwitchLinks()
		eps := congestion.Detect(rr.Net.Stats(), rr.Top, 0, links)
		var longSec float64
		for _, e := range eps {
			if d := e.Duration().Seconds(); d >= 10 {
				longSec += d
			}
		}
		return longSec / float64(len(links))
	}
	var tree, multi float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree = run(false)
		multi = run(true)
	}
	b.ReportMetric(tree, "long-cong-s-per-link-tree")
	b.ReportMetric(multi, "long-cong-s-per-link-ecmp")
}
