// dcsweep runs a sweep of simulate+analyze pipelines — seeds × fabrics
// over one topology/duration — concurrently on the fleet executor: one
// shared worker pool spans every run's simulator phases and analysis
// tasks, and an admission gate caps in-flight runs by estimated peak
// heap (derived from GOMEMLIMIT unless -max-heap-mb overrides it).
// Per-run reports are bit-identical to standalone dcanalyze -fused at
// any concurrency; the per-run digest in the manifest is the proof
// handle.
//
//	dcsweep -racks 8 -servers 10 -duration 30m -seeds 1,2,3 \
//	        -fabrics tree,multipath -n 2 \
//	        -metrics sweep.json -json sweep-manifest.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dctraffic/internal/core"
	"dctraffic/internal/fleet"
)

func main() {
	racks := flag.Int("racks", 8, "number of racks")
	servers := flag.Int("servers", 10, "servers per rack")
	duration := flag.Duration("duration", 2*time.Hour, "instrumented window per run")
	drain := flag.Duration("drain", 30*time.Minute, "post-window drain per run")
	seeds := flag.String("seeds", "1,2,3", "comma-separated simulation seeds, one run per seed per fabric")
	fabrics := flag.String("fabrics", "tree", "comma-separated fabrics to sweep: tree, multipath")
	paper := flag.Bool("paper", false, "use the paper-scale configuration (75 racks x 20 servers, 24h) instead of -racks/-servers/-duration")
	concurrency := flag.Int("n", 0, "pipelines in flight (0 = GOMAXPROCS)")
	poolWorkers := flag.Int("pool", 0, "shared worker-pool size across all runs (0 = GOMAXPROCS)")
	maxHeapMB := flag.Int("max-heap-mb", 0, "in-flight estimated-heap budget in MiB (0 = 80% of GOMEMLIMIT when set, negative = no gate)")
	metricsOut := flag.String("metrics", "", "write the merged fleet metrics snapshot (fleet.* + per-run runN.* + cross-run rollup) to this file")
	jsonOut := flag.String("json", "", "write the machine-readable sweep manifest (config, digest, timing, peak-buffered per run) to this file")
	progress := flag.Bool("progress", false, "report each run's completion on stderr")
	flag.Parse()

	specs, err := buildSpecs(*paper, *racks, *servers, *duration, *drain, *seeds, *fabrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcsweep:", err)
		os.Exit(2)
	}

	opts := fleet.Options{
		Concurrency: *concurrency,
		PoolWorkers: *poolWorkers,
		MaxHeapMB:   *maxHeapMB,
	}
	if *progress {
		total := len(specs)
		opts.OnRunDone = func(o fleet.RunOutcome) {
			status := "ok " + short(o.Digest)
			if o.Err != nil {
				status = "FAIL " + o.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "run %d/%d %-24s %6.1fs  %s\n",
				o.Index+1, total, o.Name, o.WallSeconds, status)
		}
	}

	sw := time.Now()
	res, err := fleet.Execute(context.Background(), specs, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcsweep:", err)
		os.Exit(1)
	}
	wall := time.Since(sw).Seconds()

	fmt.Printf("sweep: %d runs, concurrency %.0f, pool %.0f, budget %.0f MiB, %.1fs wall\n",
		len(res.Outcomes), res.Metrics.Value("fleet.concurrency"),
		res.Metrics.Value("fleet.pool.workers"), res.Metrics.Value("fleet.budget_mb"), wall)
	fmt.Printf("%-5s %-24s %-14s %9s %10s %9s %7s %s\n",
		"idx", "name", "digest", "wall_s", "records", "peak_buf", "est_mb", "status")
	for _, o := range res.Outcomes {
		status := "ok"
		if o.Err != nil {
			status = "FAIL: " + o.Err.Error()
		} else if o.Waited {
			status = "ok (waited)"
		}
		fmt.Printf("%-5d %-24s %-14s %9.1f %10d %9d %7d %s\n",
			o.Index, o.Name, short(o.Digest), o.WallSeconds, o.Records, o.PeakBuffered, o.EstMB, status)
	}

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "dcsweep:", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := writeManifest(*jsonOut, res, wall); err != nil {
			fmt.Fprintln(os.Stderr, "dcsweep:", err)
			os.Exit(1)
		}
	}
	if res.Failed > 0 {
		fmt.Fprintf(os.Stderr, "dcsweep: %d/%d runs failed\n", res.Failed, len(res.Outcomes))
		os.Exit(1)
	}
}

// buildSpecs expands seeds × fabrics into the config-ordered sweep:
// fabrics outermost so tree runs (the reference fabric) carry the low
// indices.
func buildSpecs(paper bool, racks, servers int, duration, drain time.Duration, seedsCSV, fabricsCSV string) ([]fleet.RunSpec, error) {
	var seedList []uint64
	for _, s := range strings.Split(seedsCSV, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", s, err)
		}
		seedList = append(seedList, v)
	}
	if len(seedList) == 0 {
		return nil, fmt.Errorf("no seeds in %q", seedsCSV)
	}
	var specs []fleet.RunSpec
	for _, fabric := range strings.Split(fabricsCSV, ",") {
		fabric = strings.TrimSpace(fabric)
		var multipath bool
		switch fabric {
		case "tree":
		case "multipath":
			multipath = true
		case "":
			continue
		default:
			return nil, fmt.Errorf("unknown fabric %q (want tree or multipath)", fabric)
		}
		for _, seed := range seedList {
			cfg := core.SmallRun()
			if paper {
				cfg = core.PaperRun()
			} else {
				cfg.Topology.Racks = racks
				cfg.Topology.ServersPerRack = servers
				cfg.Duration = duration
				cfg.DrainTime = drain
				cfg.Sched.JobsPerHour = 150 * float64(racks*servers) / 80
			}
			cfg.Topology.MultiPath = multipath
			cfg.Seed = seed
			cfg.Sched.Seed = seed
			specs = append(specs, fleet.RunSpec{
				Name:   fmt.Sprintf("seed%d-%s", seed, fabric),
				Config: cfg,
			})
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no fabrics in %q", fabricsCSV)
	}
	return specs, nil
}

func writeMetrics(path string, res *fleet.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Metrics.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// manifestRun is one run's row in the -json manifest: enough config to
// regenerate the run, the digest proving what it computed, and the
// throughput/memory observations the comparison harness consumes.
type manifestRun struct {
	Index               int     `json:"index"`
	Name                string  `json:"name"`
	Seed                uint64  `json:"seed"`
	Racks               int     `json:"racks"`
	ServersPerRack      int     `json:"servers_per_rack"`
	MultiPath           bool    `json:"multipath"`
	DurationSec         float64 `json:"duration_sec"`
	DrainSec            float64 `json:"drain_sec"`
	Digest              string  `json:"digest,omitempty"`
	WallSeconds         float64 `json:"wall_seconds"`
	Records             int64   `json:"records"`
	PeakBufferedRecords int64   `json:"peak_buffered_records"`
	EstMB               int     `json:"est_mb"`
	AdmissionWaited     bool    `json:"admission_waited"`
	Error               string  `json:"error,omitempty"`
}

type manifest struct {
	Concurrency int           `json:"concurrency"`
	PoolWorkers int           `json:"pool_workers"`
	BudgetMB    int           `json:"budget_mb"`
	WallSeconds float64       `json:"wall_seconds"`
	Failed      int           `json:"failed"`
	Runs        []manifestRun `json:"runs"`
}

func writeManifest(path string, res *fleet.Result, wall float64) error {
	m := manifest{
		Concurrency: int(res.Metrics.Value("fleet.concurrency")),
		PoolWorkers: int(res.Metrics.Value("fleet.pool.workers")),
		BudgetMB:    int(res.Metrics.Value("fleet.budget_mb")),
		WallSeconds: wall,
		Failed:      res.Failed,
	}
	for _, o := range res.Outcomes {
		r := manifestRun{
			Index:               o.Index,
			Name:                o.Name,
			Seed:                o.Config.Seed,
			Racks:               o.Config.Topology.Racks,
			ServersPerRack:      o.Config.Topology.ServersPerRack,
			MultiPath:           o.Config.Topology.MultiPath,
			DurationSec:         o.Config.Duration.Seconds(),
			DrainSec:            o.Config.DrainTime.Seconds(),
			Digest:              o.Digest,
			WallSeconds:         o.WallSeconds,
			Records:             o.Records,
			PeakBufferedRecords: o.PeakBuffered,
			EstMB:               o.EstMB,
			AdmissionWaited:     o.Waited,
		}
		if o.Err != nil {
			r.Error = o.Err.Error()
		}
		m.Runs = append(m.Runs, r)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}
