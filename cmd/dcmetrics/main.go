// Command dcmetrics validates and summarizes a metrics snapshot written
// by `dcsim -metrics` (or any WithMetricsSink consumer). It exits
// nonzero if the file does not parse or a required series prefix is
// missing, which makes it the assertion half of `make smoke-metrics`.
//
// Usage:
//
//	dcmetrics -require netsim.,cosmos.,scope.,trace. snapshot.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dctraffic"
)

func main() {
	require := flag.String("require", "", "comma-separated series-name prefixes that must be present")
	quiet := flag.Bool("q", false, "suppress the summary; validate only")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dcmetrics [-require prefixes] [-q] snapshot.json")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcmetrics:", err)
		os.Exit(1)
	}
	defer f.Close()
	snap, err := dctraffic.ReadMetrics(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcmetrics:", err)
		os.Exit(1)
	}

	if *require != "" {
		var prefixes []string
		for _, p := range strings.Split(*require, ",") {
			if p = strings.TrimSpace(p); p != "" {
				prefixes = append(prefixes, p)
			}
		}
		if err := snap.Require(prefixes...); err != nil {
			fmt.Fprintln(os.Stderr, "dcmetrics:", err)
			os.Exit(1)
		}
	}

	if !*quiet {
		fmt.Printf("%d series, %d phases\n", len(snap.Series), len(snap.Phases))
		for _, s := range snap.Series {
			switch s.Kind {
			case "histogram":
				fmt.Printf("  %-40s histogram n=%d sum=%g\n", s.Name, s.Count, s.Sum)
			default:
				fmt.Printf("  %-40s %s %g\n", s.Name, s.Kind, s.Value)
			}
		}
		for _, ph := range snap.Phases {
			fmt.Printf("  phase %-10s %.3fs\n", ph.Name, ph.Seconds)
		}
	}
}
