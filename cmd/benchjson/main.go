// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON snapshot keyed by benchmark name, so perf trajectories can
// be tracked across PRs:
//
//	go test -bench . -benchmem -run '^$' ./internal/netsim | benchjson > BENCH_netsim.json
//
// Only benchmark result lines are parsed; everything else (pkg headers,
// PASS/ok trailers) is ignored. CPU and package metadata lines are
// captured when present.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result holds one benchmark's headline metrics. Metrics missing from
// the input (e.g. allocs without -benchmem) stay zero.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the output document.
type Snapshot struct {
	Pkg        string            `json:"pkg,omitempty"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	snap := Snapshot{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Strip the -GOMAXPROCS suffix go test appends to the name.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Iterations: iters}
		// The remainder is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		snap.Benchmarks[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
