// Command dcgen is the standalone synthetic traffic generator built on
// the §4.1 empirical model: it produces server-level traffic matrices
// (and optionally flow records) with the paper's work-seeks-bandwidth and
// scatter-gather structure, without running a cluster simulation. This is
// the artifact the paper offers network designers for "simulating such
// traffic".
//
// Usage:
//
//	dcgen -racks 75 -servers 20 -windows 6 -flows synthetic.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"dctraffic"
	"dctraffic/internal/tm"
	"dctraffic/internal/topology"
)

func main() {
	racks := flag.Int("racks", 75, "number of racks")
	servers := flag.Int("servers", 20, "servers per rack")
	externals := flag.Int("externals", 30, "external hosts")
	windows := flag.Int("windows", 1, "number of 10s windows to generate")
	seed := flag.Uint64("seed", 1, "generator seed")
	flowsOut := flag.String("flows", "", "also decompose TMs into flow records (JSONL file, - for stdout)")
	heat := flag.Bool("heat", true, "print ASCII heat map of the first window")
	correlated := flag.Bool("correlated", false, "windows share conversations (Figure 10-style churn) instead of being independent")
	flag.Parse()

	p := dctraffic.PaperModelFor(dctraffic.ClusterShape{
		Racks: *racks, ServersPerRack: *servers, ExternalHosts: *externals,
	})
	rng := dctraffic.NewRNG(*seed)
	topoCfg := topology.SmallConfig()
	topoCfg.Racks = *racks
	topoCfg.ServersPerRack = *servers
	topoCfg.ExternalHosts = *externals
	top, err := topology.New(topoCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgen:", err)
		os.Exit(1)
	}

	var all []dctraffic.FlowRecord
	var nextID int64 = 1
	var gen *dctraffic.TMSeriesGen
	if *correlated {
		gen = p.NewSeriesGen(rng)
	}
	for w := 0; w < *windows; w++ {
		var m *dctraffic.Matrix
		if gen != nil {
			m = gen.Next()
		} else {
			m = p.GenerateTM(rng)
		}
		es := tm.ComputeEntryStats(m, top)
		cs := tm.ComputeCorrespondents(m, top)
		fmt.Printf("window %d: total %.2f GB, P(zero|rack)=%.3f P(zero|cross)=%.4f, correspondents %.0f/%.0f\n",
			w, m.Total()/1e9, es.PZeroWithinRack, es.PZeroAcrossRack,
			cs.MedianWithinCount, cs.MedianAcrossCount)
		if w == 0 && *heat {
			fmt.Print(dctraffic.HeatASCII(m, 60))
		}
		if *flowsOut != "" {
			recs := p.GenerateFlows(rng, m, dctraffic.DefaultFlowShape(),
				dctraffic.Time(w)*p.Window, nextID)
			if len(recs) > 0 {
				nextID = int64(recs[len(recs)-1].ID) + 1
			}
			all = append(all, recs...)
		}
	}
	if *flowsOut != "" {
		w := os.Stdout
		if *flowsOut != "-" {
			f, err := os.Create(*flowsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dcgen:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := dctraffic.WriteTrace(w, all); err != nil {
			fmt.Fprintln(os.Stderr, "dcgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d synthetic flow records\n", len(all))
	}
}
