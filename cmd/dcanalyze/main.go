// Command dcanalyze runs the full analysis pipeline and prints the
// regenerated data for every figure of the paper.
//
// By default it simulates a fresh run (congestion and application-impact
// analyses need link counters and application logs, which live only in a
// live run):
//
//	dcanalyze -racks 8 -servers 10 -duration 2h
//
// With -trace it analyzes a dcsim-written record file instead, producing
// the record-only figures (2, 3, 4, 9, 10, 11):
//
//	dcanalyze -trace trace.jsonl -racks 8 -servers 10 -duration 2h
//
// -heat additionally prints the Figure 2 ASCII heat map.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dctraffic"
	"dctraffic/internal/flows"
	"dctraffic/internal/tm"
	"dctraffic/internal/topology"
)

func main() {
	racks := flag.Int("racks", 8, "number of racks")
	servers := flag.Int("servers", 10, "servers per rack")
	duration := flag.Duration("duration", 2*time.Hour, "instrumented window")
	seed := flag.Uint64("seed", 1, "simulation seed")
	traceFile := flag.String("trace", "", "analyze this dcsim trace instead of simulating")
	heat := flag.Bool("heat", false, "print the Figure 2 ASCII heat map")
	tsvDir := flag.String("tsv", "", "also write every figure's data series as TSV files into this directory")
	paper := flag.Bool("paper", false, "use the paper-scale configuration (75 racks x 20 servers, 24h)")
	jsonOut := flag.Bool("json", false, "print the machine-readable headline digest instead of the text report")
	parallel := flag.Int("parallel", 0, "analysis worker goroutines (0 = GOMAXPROCS); results are identical at any setting")
	seq := flag.Bool("seq", false, "run the analysis pipeline on a single worker (same results, no concurrency)")
	progress := flag.Bool("progress", false, "report simulation progress, per-stage analysis timings and tomography solver effort on stderr")
	flag.Parse()

	if *traceFile != "" {
		analyzeTrace(*traceFile, *racks, *servers, *duration, *heat)
		return
	}

	cfg := dctraffic.SmallRun()
	if *paper {
		cfg = dctraffic.PaperRun()
	} else {
		cfg.Topology.Racks = *racks
		cfg.Topology.ServersPerRack = *servers
		cfg.Duration = *duration
		cfg.Sched.JobsPerHour = 150 * float64(*racks**servers) / 80
	}
	cfg.Seed = *seed
	cfg.Sched.Seed = *seed
	var runOpts []dctraffic.RunOption
	if *progress {
		runOpts = append(runOpts, dctraffic.WithProgress(func(p dctraffic.Progress) {
			fmt.Fprintf(os.Stderr, "\rsim %3.0f%%  t=%v  events=%d  records=%d",
				100*p.Frac(), p.SimTime, p.Events, p.Records)
			if p.Frac() >= 1 {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}
	rr, err := dctraffic.Run(context.Background(), cfg, runOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcanalyze:", err)
		os.Exit(1)
	}
	aopts := dctraffic.AnalyzeOptions{Parallelism: *parallel, Sequential: *seq}
	var reg *dctraffic.Registry
	if *progress {
		reg = dctraffic.NewRegistry()
		aopts.Observer = reg
	}
	rep := dctraffic.Analyze(rr, aopts)
	if reg != nil {
		snap := reg.Snapshot()
		for _, ph := range snap.Phases {
			fmt.Fprintf(os.Stderr, "%-20s %8.3fs\n", ph.Name, ph.Seconds)
		}
		// Tomography solver effort: how hard the sparsity-max simplex
		// worked, and how often window-to-window warm starts paid off.
		for _, s := range snap.Series {
			if !strings.HasPrefix(s.Name, "tomo.") {
				continue
			}
			if s.Kind == "histogram" {
				mean := 0.0
				if s.Count > 0 {
					mean = s.Sum / float64(s.Count)
				}
				fmt.Fprintf(os.Stderr, "%-32s n=%-4d sum=%-8.0f mean=%.1f\n", s.Name, s.Count, s.Sum, mean)
			} else {
				fmt.Fprintf(os.Stderr, "%-32s %.0f\n", s.Name, s.Value)
			}
		}
	}
	if *jsonOut {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcanalyze:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(rep.Text())
	}
	if *tsvDir != "" {
		if err := rep.WriteTSV(*tsvDir); err != nil {
			fmt.Fprintln(os.Stderr, "dcanalyze:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figure data written to %s\n", *tsvDir)
	}
	if *heat {
		fmt.Println("\n== Fig 2 heat map (loge bytes, rows=src, cols=dst) ==")
		fmt.Print(dctraffic.HeatASCII(rep.Fig2.TM, 60))
	}
}

// analyzeTrace covers the figures computable from flow records alone.
func analyzeTrace(path string, racks, servers int, duration time.Duration, heat bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcanalyze:", err)
		os.Exit(1)
	}
	defer f.Close()
	records, err := dctraffic.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcanalyze:", err)
		os.Exit(1)
	}
	cfg := topology.SmallConfig()
	cfg.Racks = racks
	cfg.ServersPerRack = servers
	top, err := topology.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcanalyze:", err)
		os.Exit(1)
	}
	fmt.Printf("records: %d over %v\n\n", len(records), duration)

	mid := duration / 2
	m := tm.ServerMatrix(records, top.NumHosts(), mid, mid+100*time.Second)
	ps := tm.SummarizePatterns(m, top)
	fmt.Printf("== Fig 2 patterns (100s mid-run window) ==\n")
	fmt.Printf("  within-rack share: %.2f  within-VLAN: %.2f  external: %.3f  scatter rows: %d\n",
		ps.WithinRackFraction, ps.WithinVLANFraction, ps.ExternalFraction, ps.ScatterGatherRows)
	es := tm.ComputeEntryStats(m, top)
	fmt.Printf("== Fig 3 ==\n  P(zero|rack)=%.3f  P(zero|cross)=%.4f\n", es.PZeroWithinRack, es.PZeroAcrossRack)
	cs := tm.ComputeCorrespondents(m, top)
	fmt.Printf("== Fig 4 ==\n  median correspondents: %.1f within, %.1f across\n",
		cs.MedianWithinCount, cs.MedianAcrossCount)
	s := flows.Summarize(records, duration)
	fmt.Printf("== Fig 9 ==\n  flows=%d  P(<10s)=%.3f  P(>200s)=%.4f  bytes≤25s=%.2f\n",
		s.NumFlows, s.FracShorterThan10s, s.FracLongerThan200s, s.BytesInFlowsUnder25s)
	series := tm.ServerSeries(records, top.NumHosts(), 10*time.Second, duration)
	ch := tm.ChangeSeries(series, 1)
	var nz []float64
	for _, c := range ch {
		if c != 0 {
			nz = append(nz, c)
		}
	}
	fmt.Printf("== Fig 10 ==\n  change samples=%d\n", len(nz))
	gaps := flows.ServerInterArrivals(records, top)
	fmt.Printf("== Fig 11 ==\n  arrival rate=%.0f/s  server mode=%.1f ms\n",
		flows.ArrivalRatePerSec(records, duration), flows.ModeSpacing(gaps, 2, 100, 196))
	if heat {
		fmt.Println("\n== Fig 2 heat map ==")
		fmt.Print(dctraffic.HeatASCII(m, 60))
	}
}
