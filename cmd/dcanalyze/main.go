// Command dcanalyze runs the full analysis pipeline and prints the
// regenerated data for every figure of the paper.
//
// By default it simulates a fresh run (congestion and application-impact
// analyses need link counters and application logs, which live only in a
// live run):
//
//	dcanalyze -racks 8 -servers 10 -duration 2h
//
// With -trace it streams a dcsim-written record file (JSONL, optionally
// .gz) through the bounded-memory pipeline instead, producing the
// record-only figures (2, 3, 4, 9, 10, 11, incast) without ever
// materializing the trace:
//
//	dcanalyze -trace trace.jsonl -racks 8 -servers 10 -duration 2h
//
// With -fused the simulation and the analysis run as one overlapped
// pipeline: completed flows stream from the simulator straight into
// the analysis sweep through a watermarked reorder buffer, producing
// the full figure set bit-identically to the two-phase default while
// the two dominant phases share the wall clock. -metrics writes the
// run's final observability snapshot (including the fused seam's
// trace.live.* and pipeline.* series) as JSON:
//
//	dcanalyze -fused -racks 8 -servers 10 -duration 2h -metrics run.json
//
// -mem-profile writes a heap profile captured at the sweep's peak
// buffered-record window; -max-heap-mb makes dcanalyze exit nonzero if
// the peak live heap exceeds the bound (GOMEMLIMIT is only a soft
// target, so bounded-memory smoke tests need their own check).
//
// -heat additionally prints the Figure 2 ASCII heat map.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dctraffic"
	"dctraffic/internal/topology"
)

func main() {
	racks := flag.Int("racks", 8, "number of racks")
	servers := flag.Int("servers", 10, "servers per rack")
	duration := flag.Duration("duration", 2*time.Hour, "instrumented window")
	seed := flag.Uint64("seed", 1, "simulation seed")
	traceFile := flag.String("trace", "", "stream this dcsim trace through the analysis instead of simulating")
	fused := flag.Bool("fused", false, "overlap simulation and analysis in one fused pipeline (identical figures, shared wall clock)")
	metricsOut := flag.String("metrics", "", "write the run's final metrics snapshot as JSON to this file (simulating modes only)")
	heat := flag.Bool("heat", false, "print the Figure 2 ASCII heat map")
	tsvDir := flag.String("tsv", "", "also write every figure's data series as TSV files into this directory")
	paper := flag.Bool("paper", false, "use the paper-scale configuration (75 racks x 20 servers, 24h)")
	jsonOut := flag.Bool("json", false, "print the machine-readable headline digest instead of the text report")
	parallel := flag.Int("parallel", 0, "analysis worker goroutines (0 = GOMAXPROCS); results are identical at any setting")
	seq := flag.Bool("seq", false, "run the analysis pipeline on a single worker (same results, no concurrency)")
	progress := flag.Bool("progress", false, "report simulation progress, per-stage analysis timings and tomography solver effort on stderr")
	memProfile := flag.String("mem-profile", "", "write a heap profile captured at the peak buffered-record window")
	maxHeapMB := flag.Int("max-heap-mb", 0, "exit nonzero if the peak live heap exceeds this many MiB (0 = no check)")
	flag.Parse()

	aopts := []dctraffic.AnalyzeOption{dctraffic.WithAnalyzeParallelism(*parallel)}
	if *seq {
		aopts = append(aopts, dctraffic.WithAnalyzeSequential())
	}
	var reg *dctraffic.Registry
	if *progress {
		reg = dctraffic.NewRegistry()
		aopts = append(aopts, dctraffic.WithAnalyzeObserver(reg))
	}
	hw := &heapWatch{profilePath: *memProfile, verbose: *progress}
	if *memProfile != "" || *maxHeapMB > 0 || *progress {
		aopts = append(aopts, dctraffic.WithAnalyzeProgress(hw.observe))
	}

	var rep *dctraffic.Report
	var err error
	switch {
	case *traceFile != "":
		rep, err = analyzeTrace(*traceFile, *racks, *servers, *duration, aopts)
	case *fused:
		rep, err = runFused(*paper, *racks, *servers, *duration, *seed, *progress, *metricsOut, aopts)
	default:
		rep, err = simulateAndAnalyze(*paper, *racks, *servers, *duration, *seed, *progress, *metricsOut, aopts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcanalyze:", err)
		os.Exit(1)
	}
	hw.finish()

	if reg != nil {
		snap := reg.Snapshot()
		for _, ph := range snap.Phases {
			fmt.Fprintf(os.Stderr, "%-20s %8.3fs\n", ph.Name, ph.Seconds)
		}
		// Tomography solver effort: how hard the sparsity-max simplex
		// worked, and how often window-to-window warm starts paid off.
		for _, s := range snap.Series {
			if !strings.HasPrefix(s.Name, "tomo.") {
				continue
			}
			if s.Kind == "histogram" {
				mean := 0.0
				if s.Count > 0 {
					mean = s.Sum / float64(s.Count)
				}
				fmt.Fprintf(os.Stderr, "%-32s n=%-4d sum=%-8.0f mean=%.1f\n", s.Name, s.Count, s.Sum, mean)
			} else {
				fmt.Fprintf(os.Stderr, "%-32s %.0f\n", s.Name, s.Value)
			}
		}
	}

	if *jsonOut {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcanalyze:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(rep.Text())
	}
	if *tsvDir != "" {
		if err := rep.WriteTSV(*tsvDir); err != nil {
			fmt.Fprintln(os.Stderr, "dcanalyze:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figure data written to %s\n", *tsvDir)
	}
	if *heat {
		fmt.Println("\n== Fig 2 heat map (loge bytes, rows=src, cols=dst) ==")
		fmt.Print(dctraffic.HeatASCII(rep.Fig2.TM, 60))
	}
	if *maxHeapMB > 0 {
		peakMB := hw.peakHeap >> 20
		fmt.Fprintf(os.Stderr, "peak live heap: %d MiB (limit %d MiB)\n", peakMB, *maxHeapMB)
		if peakMB > uint64(*maxHeapMB) {
			fmt.Fprintf(os.Stderr, "dcanalyze: peak heap exceeded -max-heap-mb\n")
			os.Exit(1)
		}
	}
}

// runConfigFor builds the simulated-run configuration the two-phase
// and fused paths share.
func runConfigFor(paper bool, racks, servers int, duration time.Duration, seed uint64) dctraffic.RunConfig {
	cfg := dctraffic.SmallRun()
	if paper {
		cfg = dctraffic.PaperRun()
	} else {
		cfg.Topology.Racks = racks
		cfg.Topology.ServersPerRack = servers
		cfg.Duration = duration
		cfg.Sched.JobsPerHour = 150 * float64(racks*servers) / 80
	}
	cfg.Seed = seed
	cfg.Sched.Seed = seed
	return cfg
}

// simRunOptions assembles the run options the simulating paths share:
// the -progress reporter and the -metrics snapshot sink. The returned
// closer flushes the metrics file after the run completes.
func simRunOptions(progress bool, metricsPath string) (opts []dctraffic.RunOption, closeFn func() error, err error) {
	closeFn = func() error { return nil }
	if progress {
		opts = append(opts, dctraffic.WithProgress(func(p dctraffic.Progress) {
			fmt.Fprintf(os.Stderr, "\rsim %3.0f%%  t=%v  events=%d  records=%d",
				100*p.Frac(), p.SimTime, p.Events, p.Records)
			if p.Frac() >= 1 {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, dctraffic.WithMetricsSink(f))
		closeFn = f.Close
	}
	return opts, closeFn, nil
}

// simulateAndAnalyze is the default path: fresh run, full figure set.
func simulateAndAnalyze(paper bool, racks, servers int, duration time.Duration, seed uint64, progress bool, metricsPath string, aopts []dctraffic.AnalyzeOption) (*dctraffic.Report, error) {
	cfg := runConfigFor(paper, racks, servers, duration, seed)
	runOpts, closeMetrics, err := simRunOptions(progress, metricsPath)
	if err != nil {
		return nil, err
	}
	rr, err := dctraffic.Run(context.Background(), cfg, runOpts...)
	if err != nil {
		closeMetrics()
		return nil, err
	}
	rep, err := dctraffic.AnalyzeRun(context.Background(), rr, aopts...)
	if cerr := closeMetrics(); err == nil && cerr != nil {
		return nil, cerr
	}
	return rep, err
}

// runFused overlaps the two dominant phases: the simulator's completed
// flows stream through the watermarked live source straight into the
// analysis sweep, so record-derived figures compute while the cluster
// still runs and the trace is never sorted into a second copy. With
// -progress both phases report interleaved on stderr (the "sim" line
// from the run loop, the "analyze" line from the sweep). Figures are
// bit-identical to the two-phase default.
func runFused(paper bool, racks, servers int, duration time.Duration, seed uint64, progress bool, metricsPath string, aopts []dctraffic.AnalyzeOption) (*dctraffic.Report, error) {
	cfg := runConfigFor(paper, racks, servers, duration, seed)
	runOpts, closeMetrics, err := simRunOptions(progress, metricsPath)
	if err != nil {
		return nil, err
	}
	aopts = append(aopts, dctraffic.WithRunOptions(runOpts...))
	_, rep, err := dctraffic.RunAnalyze(context.Background(), cfg, aopts...)
	if cerr := closeMetrics(); err == nil && cerr != nil {
		return nil, cerr
	}
	return rep, err
}

// analyzeTrace streams a trace file through the bounded-memory pipeline:
// records flow from the file source straight into the sweep's sliding
// window and online accumulators, so memory stays O(window) no matter
// how long the trace is. Run-only figures (5-8, tomography,
// attribution) stay zero.
func analyzeTrace(path string, racks, servers int, duration time.Duration, aopts []dctraffic.AnalyzeOption) (*dctraffic.Report, error) {
	cfg := topology.SmallConfig()
	cfg.Racks = racks
	cfg.ServersPerRack = servers
	top, err := dctraffic.NewTopology(cfg)
	if err != nil {
		return nil, err
	}
	src, err := dctraffic.OpenTraceFile(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	aopts = append(aopts,
		dctraffic.WithAnalyzeTopology(top),
		dctraffic.WithAnalyzeDuration(duration),
	)
	return dctraffic.AnalyzeSource(context.Background(), src, aopts...)
}

// heapWatch samples the live heap as the sweep's buffered-record count
// grows, capturing a heap profile at the high-water mark. Sampling only
// on ~10% peak growth keeps the ReadMemStats/GC cost to O(log peak)
// stops, not one per window boundary.
type heapWatch struct {
	profilePath  string
	verbose      bool
	sampledPeak  int
	peakHeap     uint64
	lastProgress time.Time
}

func (h *heapWatch) observe(p dctraffic.StreamProgress) {
	if h.verbose && time.Since(h.lastProgress) > 200*time.Millisecond {
		h.lastProgress = time.Now()
		pct := 0.0
		if p.Duration > 0 {
			pct = 100 * float64(p.Time) / float64(p.Duration)
			if pct > 100 {
				pct = 100
			}
		}
		fmt.Fprintf(os.Stderr, "\ranalyze %3.0f%%  records=%d  buffered=%d  peak=%d",
			pct, p.Records, p.Buffered, p.PeakBuffered)
	}
	if p.PeakBuffered <= h.sampledPeak+h.sampledPeak/10 {
		return
	}
	h.sampledPeak = p.PeakBuffered
	h.sample()
}

// sample records the current live heap and refreshes the peak profile.
func (h *heapWatch) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc <= h.peakHeap {
		return
	}
	h.peakHeap = ms.HeapAlloc
	if h.profilePath == "" {
		return
	}
	f, err := os.Create(h.profilePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcanalyze: mem-profile:", err)
		return
	}
	runtime.GC() // heap profiles reflect the last GC cycle
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "dcanalyze: mem-profile:", err)
	}
	f.Close()
}

// finish takes a final sample (the peak may be after the last window)
// and ends the progress line.
func (h *heapWatch) finish() {
	h.sample()
	if h.verbose && !h.lastProgress.IsZero() {
		fmt.Fprintln(os.Stderr)
	}
}
