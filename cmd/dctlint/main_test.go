package main

import "testing"

func TestAnnotationFormat(t *testing.T) {
	f := finding{
		File:     "internal/core/report.go",
		Line:     42,
		Column:   7,
		Analyzer: "sharedslot",
		Message:  "captured total is written by every instance of this task closure",
	}
	want := "::error file=internal/core/report.go,line=42,col=7," +
		"title=dctlint/sharedslot::captured total is written by every instance of this task closure"
	if got := annotation(f); got != want {
		t.Errorf("annotation:\n got %q\nwant %q", got, want)
	}
}

func TestAnnotationEscaping(t *testing.T) {
	f := finding{
		File:     "dir,with:odd%name.go",
		Line:     1,
		Column:   1,
		Analyzer: "mapiter",
		Message:  "100% of runs\nvary",
	}
	want := "::error file=dir%2Cwith%3Aodd%25name.go,line=1,col=1," +
		"title=dctlint/mapiter::100%25 of runs%0Avary"
	if got := annotation(f); got != want {
		t.Errorf("annotation:\n got %q\nwant %q", got, want)
	}
}
