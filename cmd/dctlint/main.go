// Command dctlint runs dctraffic's determinism analyzers over the
// module: a multichecker in the style of go vet -vettool, built on the
// stdlib-only framework in internal/lint.
//
// The paper's results are reproducible only because a simulation run is
// a pure function of its seed; dctlint mechanically enforces the
// invariants behind that (no map-order-dependent sinks, no wall-clock
// reads in sim packages, no global rand, no scheduler-ordered float
// reductions). See DESIGN.md, "Determinism".
//
// Usage:
//
//	go run ./cmd/dctlint [-list] [packages]
//
// With no package patterns it checks ./... relative to the current
// directory, which must be inside the module. Exit status is 1 when any
// finding survives //dctlint:ignore suppression.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dctraffic/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "dctlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dctlint:", err)
	os.Exit(2)
}
