// Command dctlint runs dctraffic's determinism analyzers over the
// module: a multichecker in the style of go vet -vettool, built on the
// stdlib-only framework in internal/lint.
//
// The paper's results are reproducible only because a simulation run is
// a pure function of its seed; dctlint mechanically enforces the
// invariants behind that (no map-order-dependent sinks, no wall-clock
// reads in sim packages, no global rand, no scheduler-ordered float
// reductions, and the three-rule parallel contract: task-derived
// disjoint slots, fixed-order merges, per-task RNG streams). See
// DESIGN.md, "Determinism".
//
// Usage:
//
//	go run ./cmd/dctlint [-list] [-json] [-github] [packages]
//
// With no package patterns it checks ./... relative to the current
// directory, which must be inside the module. -json prints the findings
// as a JSON array instead of text; -github prints GitHub Actions
// workflow commands so findings surface as inline PR annotations. Exit
// status is 1 when any finding survives //dctlint:ignore suppression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dctraffic/internal/lint"
)

// finding is the stable JSON shape for one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	github := flag.Bool("github", false, "emit findings as GitHub Actions error annotations")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	var findings []finding
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			findings = append(findings, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			switch {
			case *asJSON:
				// collected; printed as one array below
			case *github:
				fmt.Println(annotation(findings[len(findings)-1]))
			default:
				fmt.Println(d)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dctlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// annotation renders one finding as a GitHub Actions workflow command:
//
//	::error file=F,line=L,col=C,title=dctlint/NAME::MESSAGE
//
// Property values and the message use the Actions escaping rules (%,
// CR, LF; plus comma and colon inside properties).
func annotation(f finding) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=%s::%s",
		escapeProp(f.File), f.Line, f.Column,
		escapeProp("dctlint/"+f.Analyzer), escapeData(f.Message))
}

func escapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

func escapeProp(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dctlint:", err)
	os.Exit(2)
}
