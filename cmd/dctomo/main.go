// Command dctomo runs the §5 tomography evaluation: simulate a cluster,
// compute ground-truth ToR-to-ToR traffic matrices, derive the link
// counters they would produce, estimate TMs with tomogravity (plain and
// job-prior-augmented) and sparsity maximization, and print per-TM errors
// — the data behind Figures 12, 13 and 14.
//
// Usage:
//
//	dctomo -racks 8 -servers 10 -duration 2h -bin 10m
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"dctraffic"
	"dctraffic/internal/snmp"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/tomo"
)

func main() {
	racks := flag.Int("racks", 8, "number of racks")
	servers := flag.Int("servers", 10, "servers per rack")
	duration := flag.Duration("duration", 2*time.Hour, "instrumented window")
	bin := flag.Duration("bin", 10*time.Minute, "TM averaging window (paper: 10m)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	alpha := flag.Float64("alpha", 4, "job-prior multiplier strength")
	useSNMP := flag.Bool("snmp", false, "derive link counts from simulated 5-minute SNMP polls instead of exact per-window counters")
	flag.Parse()

	cfg := dctraffic.SmallRun()
	cfg.Topology.Racks = *racks
	cfg.Topology.ServersPerRack = *servers
	cfg.Duration = *duration
	cfg.Seed = *seed
	cfg.Sched.Seed = *seed
	cfg.Sched.JobsPerHour = 150 * float64(*racks**servers) / 80
	rr, err := dctraffic.Simulate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dctomo:", err)
		os.Exit(1)
	}

	problem := tomo.NewProblem(rr.Top)
	fmt.Printf("constraints: %d link counters over %d OD pairs (under-constrained by design)\n\n",
		problem.NumConstraints(), problem.NumPairs())
	series := tm.TorSeries(rr.Records(), rr.Top, *bin, *duration)

	// With -snmp, counters come from the polled path: cumulative values
	// every 5 minutes with jitter, reconstructed per window — including
	// the traffic the ToR TM excludes (externals), as a real NMS would see.
	var polled []snmp.Series
	if *useSNMP {
		polled = snmp.Collect(rr.Net.Stats(), rr.Top.InterSwitchLinks(), *duration,
			snmp.Config{Interval: 5 * time.Minute, JitterFrac: 0.05}, dctraffic.NewRNG(*seed).Fork("snmp"))
		fmt.Println("link counts from simulated SNMP polls (5m interval, 5% jitter)")
	}

	fmt.Println("  TM     truth-sparsity   tomogravity   +jobs   sparsity-max   SM-nonzeros")
	var eTG, eTJ, eSM []float64
	for i, truth := range series {
		if truth.Total() <= 0 {
			continue
		}
		b := problem.LinkCounts(truth)
		if *useSNMP {
			from := dctraffic.Time(i) * dctraffic.Time(*bin)
			counts, _ := snmp.WindowCounts(polled, from, from+dctraffic.Time(*bin), 64)
			b = counts
		}
		xTrue := problem.VecFromTM(truth)
		// Estimators fail independently: on SNMP-derived counts the exact
		// polytope {Ax=b, x>=0} can be infeasible (polled counters include
		// ingest/egress bytes the ToR-to-ToR model cannot explain), which
		// kills the sparsity-max LP while the least-squares methods still
		// produce estimates — a real operational difference.
		e1, e2, e3 := math.NaN(), math.NaN(), math.NaN()
		smNonZero := -1
		if tg, err := problem.Tomogravity(b); err == nil {
			e1 = tomo.RMSRE(xTrue, tg, 0.75)
			eTG = append(eTG, e1)
		}
		from := dctraffic.Time(i) * (*bin)
		mult := tomo.JobMultiplier(rr.Log, rr.Top, from, from+dctraffic.Time(*bin), *alpha)
		if tj, err := problem.TomogravityWithMultiplier(b, mult); err == nil {
			e2 = tomo.RMSRE(xTrue, tj, 0.75)
			eTJ = append(eTJ, e2)
		}
		if sm, err := problem.SparsityMax(b); err == nil {
			e3 = tomo.RMSRE(xTrue, sm, 0.75)
			eSM = append(eSM, e3)
			smNonZero = tomo.NonZeroCount(sm)
		}
		_, fracTrue := tomo.SparsityOfVec(xTrue, 0.75)
		fmt.Printf("  %3d    %6.3f           %6.2f      %6.2f      %6.2f       %4d\n",
			i, fracTrue, e1, e2, e3, smNonZero)
	}
	if len(eTG) == 0 {
		fmt.Println("no non-empty TMs — lengthen the run")
		return
	}
	fmt.Printf("\nmedians  (paper: tomogravity 0.60, range 0.35-1.84; job prior marginal; sparsity-max worse)\n")
	fmt.Printf("  tomogravity:  %.2f over %d TMs\n", stats.Median(eTG), len(eTG))
	fmt.Printf("  +job prior:   %.2f over %d TMs\n", stats.Median(eTJ), len(eTJ))
	fmt.Printf("  sparsity-max: %.2f over %d TMs (fails when polled counters are infeasible)\n", stats.Median(eSM), len(eSM))
}
