// Command dcsim runs the datacenter cluster simulation under socket-level
// instrumentation and writes the collected flow records as JSON lines —
// the measurement half of the paper's pipeline.
//
// Usage:
//
//	dcsim -racks 8 -servers 10 -duration 2h -seed 1 -out trace.jsonl
//
// Paper scale is -racks 75 -servers 20 -duration 24h (minutes of wall
// clock, a few GB of memory).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dctraffic"
)

func main() {
	racks := flag.Int("racks", 8, "number of racks")
	servers := flag.Int("servers", 10, "servers per rack")
	duration := flag.Duration("duration", 2*time.Hour, "instrumented window")
	drain := flag.Duration("drain", 30*time.Minute, "extra time to let work finish")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jobsPerHour := flag.Float64("jobs", 0, "job arrivals per hour (0 = scale with cluster)")
	out := flag.String("out", "trace.jsonl", "output flow-record file (- for stdout)")
	full := flag.Bool("full-recompute", false, "disable the incremental allocator (A/B timing; results are identical)")
	flag.Parse()

	cfg := dctraffic.SmallRun()
	cfg.Topology.Racks = *racks
	cfg.Topology.ServersPerRack = *servers
	cfg.Duration = *duration
	cfg.DrainTime = *drain
	cfg.Seed = *seed
	if *jobsPerHour > 0 {
		cfg.Sched.JobsPerHour = *jobsPerHour
	} else {
		// Keep per-server load comparable to the 80-server default.
		cfg.Sched.JobsPerHour = 150 * float64(*racks**servers) / 80
	}
	cfg.Sched.Seed = *seed
	cfg.FullRecompute = *full

	start := time.Now()
	rr, err := dctraffic.Simulate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "simulated %v over %d servers in %v wall clock\n",
		*duration, rr.Top.NumServers(), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "jobs: %d   flows: %d   bytes: %.1f GB\n",
		len(rr.Cluster.Jobs()), len(rr.Records()), rr.Net.TotalBytes()/1e9)
	o := rr.Collector.Overhead(cfg.Duration)
	fmt.Fprintf(os.Stderr, "instrumentation: %.2f%% cpu, %.2f%% disk, %.2f GB logs/server/day\n",
		o.MedianCPUPct, o.MedianDiskPct, o.LogBytesPerServerPerDay/1e9)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dctraffic.WriteTrace(w, rr.Records()); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(rr.Records()), *out)
	}
}
