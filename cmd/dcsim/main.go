// Command dcsim runs the datacenter cluster simulation under socket-level
// instrumentation and writes the collected flow records as JSON lines —
// the measurement half of the paper's pipeline.
//
// Usage:
//
//	dcsim -racks 8 -servers 10 -duration 2h -seed 1 -out trace.jsonl
//
// Paper scale is -racks 75 -servers 20 -duration 24h (minutes of wall
// clock; see EXPERIMENTS.md for measured peak heap). Add -progress for
// live status, -metrics m.json to dump the observability snapshot, and
// -pprof addr to serve net/http/pprof while the run is in flight.
// Ctrl-C cancels the run promptly at the next event-loop batch boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"time"

	"dctraffic"
	"dctraffic/internal/obs"
)

// bucketQuantile renders the upper bound of the cumulative-histogram
// bucket containing quantile q ("∞" past the last finite bound).
func bucketQuantile(h obs.Series, q float64) string {
	target := int64(q * float64(h.Count))
	for _, b := range h.Buckets {
		if b.Count >= target {
			return fmt.Sprintf("%.0f", b.LE)
		}
	}
	return "∞"
}

func main() {
	racks := flag.Int("racks", 8, "number of racks")
	servers := flag.Int("servers", 10, "servers per rack")
	duration := flag.Duration("duration", 2*time.Hour, "instrumented window")
	drain := flag.Duration("drain", 30*time.Minute, "extra time to let work finish")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jobsPerHour := flag.Float64("jobs", 0, "job arrivals per hour (0 = scale with cluster)")
	out := flag.String("out", "trace.jsonl", "output flow-record file (- for stdout)")
	full := flag.Bool("full-recompute", false, "disable the incremental allocator (A/B timing; results are identical)")
	workers := flag.Int("workers", 0, "simulate worker goroutines for the per-rack domain engine (0 = GOMAXPROCS; results are identical at any count)")
	seq := flag.Bool("seq", false, "force the sequential reference event loop (A/B determinism; results are identical)")
	progress := flag.Bool("progress", false, "print a status line per simulated 10 minutes")
	metrics := flag.String("metrics", "", "write the final metrics snapshot (JSON) to this file")
	noMetrics := flag.Bool("no-metrics", false, "disable metrics collection entirely (A/B determinism; results are identical)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	cfg := dctraffic.SmallRun()
	cfg.Topology.Racks = *racks
	cfg.Topology.ServersPerRack = *servers
	cfg.Duration = *duration
	cfg.DrainTime = *drain
	cfg.Seed = *seed
	if *jobsPerHour > 0 {
		cfg.Sched.JobsPerHour = *jobsPerHour
	} else {
		// Keep per-server load comparable to the 80-server default.
		cfg.Sched.JobsPerHour = 150 * float64(*racks**servers) / 80
	}
	cfg.Sched.Seed = *seed
	cfg.FullRecompute = *full
	cfg.Workers = *workers
	cfg.Sequential = *seq

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dcsim: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opts []dctraffic.RunOption
	if *progress {
		opts = append(opts,
			dctraffic.WithProgressInterval(10*time.Minute),
			dctraffic.WithProgress(func(p dctraffic.Progress) {
				fmt.Fprintf(os.Stderr, "sim %6v/%v (%3.0f%%)  wall %7v  events %9d  flows %7d/%d active %4d  records %7d  heap %4.0f MB\n",
					p.SimTime.Round(time.Minute), p.SimDuration, 100*p.Frac(),
					p.WallElapsed.Round(100*time.Millisecond), p.Events,
					p.FlowsCompleted, p.FlowsStarted, p.ActiveFlows,
					p.Records, float64(p.HeapBytes)/(1<<20))
			}))
	}
	var metricsFile *os.File
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
		metricsFile = f
		opts = append(opts, dctraffic.WithMetricsSink(f))
	}
	if *noMetrics {
		opts = append(opts, dctraffic.WithObserver(nil))
	}

	start := time.Now()
	rr, err := dctraffic.Run(ctx, cfg, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "simulated %v over %d servers in %v wall clock\n",
		*duration, rr.Top.NumServers(), time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "jobs: %d   flows: %d   bytes: %.1f GB\n",
		len(rr.Cluster.Jobs()), len(rr.Records()), rr.Net.TotalBytes()/1e9)
	o := rr.Collector.Overhead(cfg.Duration)
	fmt.Fprintf(os.Stderr, "instrumentation: %.2f%% cpu, %.2f%% disk, %.2f GB logs/server/day\n",
		o.MedianCPUPct, o.MedianDiskPct, o.LogBytesPerServerPerDay/1e9)
	if *progress && rr.Metrics != nil {
		m := rr.Metrics
		mode := "parallel"
		if *seq {
			mode = "sequential"
		}
		fmt.Fprintf(os.Stderr, "domain engine: %s  domains %.0f  workers %.0f  windows %.0f  barrier waits %.0f\n",
			mode,
			m.Value("netsim.parallel.domains"), m.Value("netsim.parallel.workers"),
			m.Value("netsim.parallel.windows_total"), m.Value("netsim.parallel.barrier_waits_total"))
		if h, ok := m.Get("netsim.parallel.crossdomain_events_window"); ok && h.Count > 0 {
			fmt.Fprintf(os.Stderr, "cross-domain events/window: mean %.2f  p50 ≤%s  p99 ≤%s\n",
				h.Sum/float64(h.Count), bucketQuantile(h, 0.50), bucketQuantile(h, 0.99))
		}
	}
	if metricsFile != nil {
		if err := metricsFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metrics)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	tw := dctraffic.NewTraceWriter(w)
	records := rr.Records()
	for i := range records {
		if err := tw.Write(&records[i]); err != nil {
			fmt.Fprintln(os.Stderr, "dcsim:", err)
			os.Exit(1)
		}
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(records), *out)
	}
}
