// Command dcreplay re-executes a recorded flow trace on an alternative
// fabric and reports how the same offered load would have fared — the
// "evaluate architecture choices" workflow the paper motivates. It prints
// per-flow slowdown relative to the original trace and the congestion
// profile on the new fabric.
//
// Usage:
//
//	dcsim -racks 8 -servers 10 -duration 1h -out trace.jsonl
//	dcreplay -trace trace.jsonl -racks 8 -servers 10 -uplink-x 2
//	dcreplay -trace trace.jsonl -racks 8 -servers 10 -multipath -aggs 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dctraffic"
	"dctraffic/internal/congestion"
	"dctraffic/internal/netsim"
	"dctraffic/internal/replay"
	"dctraffic/internal/topology"
)

func main() {
	traceFile := flag.String("trace", "", "dcsim trace to replay (required)")
	racks := flag.Int("racks", 8, "racks on the target fabric")
	servers := flag.Int("servers", 10, "servers per rack")
	aggs := flag.Int("aggs", 2, "aggregation switches")
	uplinkX := flag.Float64("uplink-x", 1, "multiply ToR uplink capacity by this factor")
	multipath := flag.Bool("multipath", false, "use a VL2-style multipath fabric")
	flag.Parse()
	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "dcreplay: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcreplay:", err)
		os.Exit(1)
	}
	records, err := dctraffic.ReadTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcreplay:", err)
		os.Exit(1)
	}

	cfg := topology.SmallConfig()
	cfg.Racks = *racks
	cfg.ServersPerRack = *servers
	cfg.AggSwitches = *aggs
	cfg.TorUplinkBps *= *uplinkX
	cfg.MultiPath = *multipath
	top, err := topology.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcreplay:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "replaying %d flows on %d servers (multipath=%v, uplink x%.1f)...\n",
		len(records), top.NumServers(), *multipath, *uplinkX)
	// Exact rate recomputation: batching would distort sub-millisecond
	// control flows' durations.
	res, err := replay.Run(records, top, replay.Options{
		Net: netsim.Options{StatsBinSize: time.Second},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcreplay:", err)
		os.Exit(1)
	}
	if res.Unplaceable > 0 {
		fmt.Fprintf(os.Stderr, "skipped %d flows with endpoints outside the target fabric\n", res.Unplaceable)
	}
	fmt.Printf("flow slowdown vs original fabric: median %.3f, mean %.3f (<1 means faster)\n",
		replay.MedianSlowdown(records, res.Records), replay.MeanSlowdown(records, res.Records))

	links := top.InterSwitchLinks()
	eps := congestion.Detect(res.Net.Stats(), top, 0, links)
	cdf, over10, longest := congestion.DurationStats(eps)
	fmt.Printf("congestion on target fabric: %d episodes, %d over 10s, longest %.0fs\n",
		cdf.N(), over10, longest)
	fmt.Printf("links with >=10s episode: %.2f\n",
		congestion.FracLinksWithEpisodeAtLeast(eps, links, 10*time.Second))
}
