package dctraffic_test

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"dctraffic"
)

// Simulate a small cluster and check the headline flow statistic of §4.3:
// the vast majority of flows are short.
func Example() {
	cfg := dctraffic.SmallRun()
	cfg.Duration = 15 * time.Minute
	cfg.DrainTime = 5 * time.Minute
	rr, err := dctraffic.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	rep, err := dctraffic.AnalyzeRun(context.Background(), rr)
	if err != nil {
		panic(err)
	}
	fmt.Println("most flows under 10s:", rep.Fig9.Summary.FracShorterThan10s > 0.8)
	fmt.Println("connection cap:", rep.Incast.MaxSimultaneousConnections)
	// Output:
	// most flows under 10s: true
	// connection cap: 2
}

// Generate synthetic datacenter traffic with the §4.1 empirical model —
// no cluster simulation needed.
func ExamplePaperModelFor() {
	params := dctraffic.PaperModelFor(dctraffic.ClusterShape{
		Racks: 75, ServersPerRack: 20, ExternalHosts: 30, // the paper's cluster shape
	})
	rng := dctraffic.NewRNG(1)
	m := params.GenerateTM(rng)
	fmt.Println("endpoints:", m.N())
	fmt.Println("has traffic:", m.Total() > 0)
	// Most server pairs exchange nothing (the paper's sparsity).
	possible := 1500 * 1499
	fmt.Println("sparse:", m.NonZero() < possible/10)
	// Output:
	// endpoints: 1530
	// has traffic: true
	// sparse: true
}

// Generate a correlated sequence of traffic-matrix windows: consecutive
// windows share conversations, as real job traffic does (Figure 10).
func ExampleModelParams_NewSeriesGen() {
	params := dctraffic.PaperModelFor(dctraffic.ClusterShape{Racks: 8, ServersPerRack: 10, ExternalHosts: 4})
	gen := params.NewSeriesGen(dctraffic.NewRNG(7))
	w0 := gen.Next()
	w1 := gen.Next()
	fmt.Println("both windows alive:", w0.NonZero() > 0 && w1.NonZero() > 0)
	// Output:
	// both windows alive: true
}

// Round-trip a trace through the JSONL format used by cmd/dcsim.
func ExampleWriteTrace() {
	records := []dctraffic.FlowRecord{
		{ID: 1, Src: 0, Dst: 15, Bytes: 1 << 20, Start: 0, End: time.Second},
	}
	var buf bytes.Buffer
	if err := dctraffic.WriteTrace(&buf, records); err != nil {
		panic(err)
	}
	back, err := dctraffic.ReadTrace(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println("records:", len(back), "bytes:", back[0].Bytes)
	// Output:
	// records: 1 bytes: 1048576
}
