package scope

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCompileFilterAggregate(t *testing.T) {
	spec := FilterAggregateJob("j1", "logs", 4<<30, 0.25, 8)
	w, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(w.Phases))
	}
	ext := w.Phases[0]
	if ext.Type != Extract || ext.InputBytes != 4<<30 {
		t.Fatalf("extract phase wrong: %+v", ext)
	}
	// 4 GB / 256 MB extents = 16 extract vertices.
	if len(ext.Vertices) != 16 {
		t.Fatalf("extract vertices = %d, want 16", len(ext.Vertices))
	}
	if ext.OutputBytes != 1<<30 {
		t.Fatalf("extract output = %d, want 1 GiB", ext.OutputBytes)
	}
	part := w.Phases[1]
	if !part.Pipelined {
		t.Fatal("partition over extract should be pipelined")
	}
	if len(part.Vertices) != len(ext.Vertices) {
		t.Fatalf("partition vertices = %d, want %d (co-located)", len(part.Vertices), len(ext.Vertices))
	}
	agg := w.Phases[2]
	if agg.Pipelined {
		t.Fatal("aggregate must be a barrier")
	}
	if len(agg.Vertices) != 8 {
		t.Fatalf("aggregate vertices = %d, want 8", len(agg.Vertices))
	}
	if agg.InputBytes != part.OutputBytes {
		t.Fatalf("aggregate input %d != partition output %d", agg.InputBytes, part.OutputBytes)
	}
	out := w.Phases[3]
	if out.Type != Output || out.InputBytes != agg.OutputBytes {
		t.Fatalf("output phase wrong: %+v", out)
	}
}

func TestCompileVolumeConservation(t *testing.T) {
	spec := FilterAggregateJob("j", "d", 10<<30, 0.5, 0)
	w, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Phases {
		var in, out int64
		for _, v := range p.Vertices {
			in += v.InputBytes
			out += v.OutputBytes
		}
		if in != p.InputBytes {
			t.Fatalf("phase %d vertex input sum %d != %d", p.Index, in, p.InputBytes)
		}
		if out != p.OutputBytes {
			t.Fatalf("phase %d vertex output sum %d != %d", p.Index, out, p.OutputBytes)
		}
	}
}

func TestCompileJoin(t *testing.T) {
	spec := JoinJob("join", "sales", 8<<30, 0.25)
	w, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Phases) != 6 {
		t.Fatalf("phases = %d, want 6", len(w.Phases))
	}
	rightExtract := w.Phases[2]
	if rightExtract.Type != Extract || rightExtract.InputBytes != 8<<30 {
		t.Fatalf("right leg should read the job input: %+v", rightExtract)
	}
	combine := w.Phases[4]
	if combine.Type != Combine || len(combine.Deps) != 2 {
		t.Fatalf("combine deps = %d, want 2", len(combine.Deps))
	}
	wantIn := w.Phases[1].OutputBytes + w.Phases[3].OutputBytes
	if combine.InputBytes != wantIn {
		t.Fatalf("combine input %d, want %d", combine.InputBytes, wantIn)
	}
}

func TestCompileInteractive(t *testing.T) {
	w, err := Compile(InteractiveJob("i", "d", 100<<20))
	if err != nil {
		t.Fatal(err)
	}
	if n := w.NumVertices(); n < 2 || n > 4 {
		t.Fatalf("interactive job has %d vertices, want a handful", n)
	}
	if last := w.Phases[len(w.Phases)-1]; len(last.Vertices) != 1 {
		t.Fatalf("interactive aggregate fanout %d, want 1", len(last.Vertices))
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []*JobSpec{
		{Name: "empty", InputBytes: 1},
		{Name: "noinput", Stages: []StageSpec{{Type: Extract}}},
		{Name: "notextract", InputBytes: 1, Stages: []StageSpec{{Type: Aggregate}}},
		{Name: "baddep", InputBytes: 1, Stages: []StageSpec{
			{Type: Extract}, {Type: Aggregate, Deps: []int{5}},
		}},
		{Name: "selfdep", InputBytes: 1, Stages: []StageSpec{
			{Type: Extract}, {Type: Aggregate, Deps: []int{1}},
		}},
	}
	for _, spec := range cases {
		if _, err := Compile(spec); err == nil {
			t.Errorf("job %q should fail to compile", spec.Name)
		}
	}
}

func TestPhaseTypeString(t *testing.T) {
	for _, p := range []PhaseType{Extract, Partition, Aggregate, Combine, Output} {
		if p.String() == "unknown" {
			t.Fatalf("phase %d has no name", p)
		}
	}
	if PhaseType(42).String() != "unknown" {
		t.Fatal("unknown phase type should say so")
	}
}

func TestFinalOutputBytes(t *testing.T) {
	w, err := Compile(FilterAggregateJob("j", "d", 1<<30, 0.5, 2))
	if err != nil {
		t.Fatal(err)
	}
	// 1 GiB → extract 0.5 → partition 1.0 → aggregate 0.2 → output 1.0
	gib := float64(int64(1 << 30))
	want := int64(gib * 0.5 * 0.2)
	got := w.FinalOutputBytes()
	// Integer division across vertices may shave a few bytes.
	if got < want-10 || got > want+10 {
		t.Fatalf("final output %d, want ~%d", got, want)
	}
}

// Property: compiled volumes are non-negative and phase inputs equal the
// sum of dep outputs for arbitrary chained selectivities.
func TestCompileChainProperty(t *testing.T) {
	f := func(s1, s2 uint8, input uint32) bool {
		sel1 := 0.01 + float64(s1)/255.0
		sel2 := 0.01 + float64(s2)/255.0
		in := int64(input)%(8<<30) + 1<<20
		spec := &JobSpec{
			Name: "p", Input: "d", InputBytes: in,
			Stages: []StageSpec{
				{Type: Extract, Selectivity: sel1},
				{Type: Partition, Selectivity: 1},
				{Type: Aggregate, Selectivity: sel2},
			},
		}
		w, err := Compile(spec)
		if err != nil {
			return false
		}
		for _, p := range w.Phases {
			if p.InputBytes < 0 || p.OutputBytes < 0 || len(p.Vertices) < 1 {
				return false
			}
			if p.Index > 0 {
				var dep int64
				for _, d := range p.Deps {
					dep += d.OutputBytes
				}
				if p.InputBytes != dep {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiRoundJob(t *testing.T) {
	spec := MultiRoundJob("pr", "links", 4<<30, 3)
	w, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	// extract + 3×(partition+aggregate) + output = 8 phases.
	if len(w.Phases) != 8 {
		t.Fatalf("phases = %d, want 8", len(w.Phases))
	}
	aggs := 0
	for _, p := range w.Phases {
		if p.Type == Aggregate {
			aggs++
		}
	}
	if aggs != 3 {
		t.Fatalf("aggregate rounds = %d, want 3", aggs)
	}
	// Later rounds shrink: each aggregate keeps 80%.
	if w.Phases[2].OutputBytes <= w.Phases[4].OutputBytes {
		t.Fatal("rounds should shrink volume")
	}
	// rounds < 1 clamps.
	if w2, err := Compile(MultiRoundJob("x", "d", 1<<30, 0)); err != nil || len(w2.Phases) != 4 {
		t.Fatalf("clamped rounds: %v phases, err %v", len(w2.Phases), err)
	}
}

func TestWorkflowDOT(t *testing.T) {
	w, err := Compile(FilterAggregateJob("viz", "d", 1<<30, 0.5, 2))
	if err != nil {
		t.Fatal(err)
	}
	dot := w.DOT()
	for _, want := range []string{"digraph", "extract #0", "p0 -> p1", "p2 -> p3", "style=dashed"} {
		if !containsStr(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && strings.Contains(haystack, needle)
}
