// Package scope models the high-level job layer of the paper's cluster:
// programmers write Scope scripts that the compiler turns into Dryad-style
// workflows — DAGs of phases (Extract, Partition, Aggregate, Combine,
// Output), each phase consisting of vertices that run the same computation
// over different parts of the input stream.
//
// The phase semantics drive the traffic patterns the paper reports:
//
//   - Extract parses raw data blocks; the job manager keeps it close to the
//     data, so it reads over the network only when local cores are busy.
//   - Partition can pipeline with Extract (it starts dividing output as
//     soon as an extract vertex finishes) and is co-located, so it adds no
//     network traffic of its own.
//   - Aggregate is a barrier: every aggregate vertex pulls its bucket from
//     every partition vertex — the scatter-gather pattern.
//   - Combine implements joins, pulling from two upstream phases.
//   - Output writes results into the replicated block store.
//
// This package handles job structure and data-volume accounting only; the
// scheduler (internal/sched) decides placement and generates flows.
package scope

import (
	"fmt"
	"strings"
)

// PhaseType classifies a workflow phase.
type PhaseType uint8

// The phase types of the paper's workflows.
const (
	Extract PhaseType = iota
	Partition
	Aggregate
	Combine
	Output
)

// String returns the phase-type name.
func (p PhaseType) String() string {
	switch p {
	case Extract:
		return "extract"
	case Partition:
		return "partition"
	case Aggregate:
		return "aggregate"
	case Combine:
		return "combine"
	case Output:
		return "output"
	}
	return "unknown"
}

// StageSpec describes one stage of a job script.
type StageSpec struct {
	Type PhaseType

	// Selectivity is output bytes per input byte (e.g. 0.05 for a
	// filtering extract, 1.0 for a pass-through partition).
	Selectivity float64

	// Fanout fixes the number of vertices; 0 derives it from data volume
	// (one vertex per input extent for Extract, one per TargetVertexBytes
	// otherwise).
	Fanout int

	// Deps lists upstream stage indices. Nil means the previous stage
	// (or the job input for stage 0); an explicitly-empty slice means the
	// stage reads the job input directly (a second extract leg). Combine
	// stages typically name two dependencies.
	Deps []int
}

// JobSpec is a compiled-from-script job description.
type JobSpec struct {
	Name   string
	Input  string // dataset name in the block store
	Stages []StageSpec

	// InputBytes is the logical size of the input dataset.
	InputBytes int64

	// ExtentBytes is the chunking unit used to derive Extract fanout.
	ExtentBytes int64

	// TargetVertexBytes sizes non-extract vertices; default 1 GB.
	TargetVertexBytes int64
}

// Vertex is one unit of parallel work within a phase.
type Vertex struct {
	Phase       *Phase
	Index       int
	InputBytes  int64
	OutputBytes int64
}

// Phase is one compiled stage with its vertices and dependencies.
type Phase struct {
	Index       int
	Type        PhaseType
	Deps        []*Phase
	Vertices    []*Vertex
	InputBytes  int64
	OutputBytes int64

	// Pipelined reports whether the phase consumes upstream output
	// incrementally (true for Partition over Extract) rather than
	// requiring a barrier (Aggregate, Combine).
	Pipelined bool
}

// Workflow is a compiled job: a DAG of phases.
type Workflow struct {
	Spec   *JobSpec
	Phases []*Phase
}

// Compile expands a job spec into a workflow, deriving per-phase and
// per-vertex data volumes from selectivities.
func Compile(spec *JobSpec) (*Workflow, error) {
	if len(spec.Stages) == 0 {
		return nil, fmt.Errorf("scope: job %q has no stages", spec.Name)
	}
	if spec.InputBytes <= 0 {
		return nil, fmt.Errorf("scope: job %q has no input bytes", spec.Name)
	}
	if spec.Stages[0].Type != Extract {
		return nil, fmt.Errorf("scope: job %q must start with an extract stage", spec.Name)
	}
	extent := spec.ExtentBytes
	if extent <= 0 {
		extent = 256 << 20
	}
	target := spec.TargetVertexBytes
	if target <= 0 {
		target = 1 << 30
	}
	w := &Workflow{Spec: spec}
	for i, st := range spec.Stages {
		ph := &Phase{Index: i, Type: st.Type}
		deps := st.Deps
		if deps == nil && i > 0 {
			deps = []int{i - 1}
		}
		for _, d := range deps {
			if d < 0 || d >= i {
				return nil, fmt.Errorf("scope: job %q stage %d has invalid dep %d", spec.Name, i, d)
			}
			ph.Deps = append(ph.Deps, w.Phases[d])
		}
		// Input volume: phases with no upstream dependency (stage 0, or a
		// stage declared with explicitly-empty Deps, e.g. the second leg
		// of a join) read the job input; others consume dep outputs.
		if len(ph.Deps) == 0 {
			ph.InputBytes = spec.InputBytes
		} else {
			for _, d := range ph.Deps {
				ph.InputBytes += d.OutputBytes
			}
		}
		sel := st.Selectivity
		if sel <= 0 {
			sel = 1
		}
		ph.OutputBytes = int64(float64(ph.InputBytes) * sel)
		// Vertex count.
		nv := st.Fanout
		if nv <= 0 {
			switch st.Type {
			case Extract:
				nv = int((ph.InputBytes + extent - 1) / extent)
			default:
				nv = int((ph.InputBytes + target - 1) / target)
			}
		}
		if nv < 1 {
			nv = 1
		}
		// Partition pipelines with an Extract dep and mirrors its fanout
		// (partition vertices are co-located with extract vertices).
		if st.Type == Partition && len(ph.Deps) == 1 && ph.Deps[0].Type == Extract {
			ph.Pipelined = true
			if st.Fanout <= 0 {
				nv = len(ph.Deps[0].Vertices)
			}
		}
		// Split volumes across vertices, remainder on the first.
		inEach := ph.InputBytes / int64(nv)
		outEach := ph.OutputBytes / int64(nv)
		for v := 0; v < nv; v++ {
			vx := &Vertex{Phase: ph, Index: v, InputBytes: inEach, OutputBytes: outEach}
			if v == 0 {
				vx.InputBytes += ph.InputBytes - inEach*int64(nv)
				vx.OutputBytes += ph.OutputBytes - outEach*int64(nv)
			}
			ph.Vertices = append(ph.Vertices, vx)
		}
		w.Phases = append(w.Phases, ph)
	}
	return w, nil
}

// NumVertices reports the total vertex count across phases.
func (w *Workflow) NumVertices() int {
	n := 0
	for _, p := range w.Phases {
		n += len(p.Vertices)
	}
	return n
}

// FinalOutputBytes reports the bytes produced by the last phase.
func (w *Workflow) FinalOutputBytes() int64 {
	return w.Phases[len(w.Phases)-1].OutputBytes
}

// FilterAggregateJob is the canonical map-reduce-style script: extract
// filters the input, partition buckets it, aggregate reduces it, output
// persists the result. selectivity is the extract's output/input ratio;
// reducers fixes the aggregate fanout (0 derives it from volume).
func FilterAggregateJob(name, input string, inputBytes int64, selectivity float64, reducers int) *JobSpec {
	return &JobSpec{
		Name:       name,
		Input:      input,
		InputBytes: inputBytes,
		Stages: []StageSpec{
			{Type: Extract, Selectivity: selectivity},
			{Type: Partition, Selectivity: 1},
			{Type: Aggregate, Selectivity: 0.2, Fanout: reducers},
			{Type: Output, Selectivity: 1, Fanout: reducers},
		},
	}
}

// JoinJob models a two-input join: two extract+partition legs feeding a
// combine, then an output. The second input is modeled as a fraction of
// the first (the store tracks only one dataset name; the join's network
// behaviour depends only on volumes).
func JoinJob(name, input string, inputBytes int64, rightFraction float64) *JobSpec {
	if rightFraction <= 0 {
		rightFraction = 0.3
	}
	return &JobSpec{
		Name:       name,
		Input:      input,
		InputBytes: inputBytes,
		Stages: []StageSpec{
			{Type: Extract, Selectivity: 0.4},                                // 0: left leg
			{Type: Partition, Selectivity: 1},                                // 1
			{Type: Extract, Selectivity: 0.4 * rightFraction, Deps: []int{}}, // 2: right leg (reads input again)
			{Type: Partition, Selectivity: 1, Deps: []int{2}},                // 3
			{Type: Combine, Selectivity: 0.5, Deps: []int{1, 3}},             // 4: the join
			{Type: Output, Selectivity: 1},                                   // 5
		},
	}
}

// MultiRoundJob chains several partition→aggregate rounds (iterative
// computations like PageRank-style index builds): each round shuffles the
// previous round's output again. rounds must be >= 1.
func MultiRoundJob(name, input string, inputBytes int64, rounds int) *JobSpec {
	if rounds < 1 {
		rounds = 1
	}
	spec := &JobSpec{
		Name:       name,
		Input:      input,
		InputBytes: inputBytes,
		Stages: []StageSpec{
			{Type: Extract, Selectivity: 0.6},
		},
	}
	for r := 0; r < rounds; r++ {
		spec.Stages = append(spec.Stages,
			StageSpec{Type: Partition, Selectivity: 1},
			StageSpec{Type: Aggregate, Selectivity: 0.8},
		)
	}
	spec.Stages = append(spec.Stages, StageSpec{Type: Output, Selectivity: 1})
	return spec
}

// InteractiveJob is a short exploratory script over a small slice of data:
// a single extract and aggregate with tiny output.
func InteractiveJob(name, input string, inputBytes int64) *JobSpec {
	return &JobSpec{
		Name:       name,
		Input:      input,
		InputBytes: inputBytes,
		Stages: []StageSpec{
			{Type: Extract, Selectivity: 0.1},
			{Type: Partition, Selectivity: 1},
			{Type: Aggregate, Selectivity: 0.05, Fanout: 1},
		},
	}
}

// DOT renders the workflow as a Graphviz digraph: one node per phase with
// its vertex count and data volumes, one edge per dependency. Useful for
// documenting and debugging job structures.
func (w *Workflow) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", w.Spec.Name)
	for _, p := range w.Phases {
		fmt.Fprintf(&b, "  p%d [label=\"%s #%d\\n%d vertices\\nin %s out %s\"];\n",
			p.Index, p.Type, p.Index, len(p.Vertices),
			humanBytes(p.InputBytes), humanBytes(p.OutputBytes))
	}
	for _, p := range w.Phases {
		for _, d := range p.Deps {
			style := ""
			if p.Pipelined {
				style = " [style=dashed]" // pipelined edge, no barrier
			}
			fmt.Fprintf(&b, "  p%d -> p%d%s;\n", d.Index, p.Index, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// humanBytes renders a byte count compactly.
func humanBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(v)/(1<<10))
	}
	return fmt.Sprintf("%dB", v)
}
