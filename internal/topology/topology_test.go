package topology

import (
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Topology {
	t.Helper()
	top, err := New(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{Racks: -1, ServersPerRack: 10, AggSwitches: 1},
		{Racks: 4, ServersPerRack: 10, AggSwitches: 0},
		{Racks: 2, ServersPerRack: 10, AggSwitches: 5}, // more aggs than racks
		{Racks: 2, ServersPerRack: 2, AggSwitches: 1},  // zero capacities
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should have been rejected: %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("DefaultConfig rejected: %v", err)
	}
}

func TestCounts(t *testing.T) {
	top := small(t)
	cfg := SmallConfig()
	if got := top.NumServers(); got != cfg.Racks*cfg.ServersPerRack {
		t.Fatalf("NumServers = %d", got)
	}
	if got := top.NumHosts(); got != top.NumServers()+cfg.ExternalHosts {
		t.Fatalf("NumHosts = %d", got)
	}
	// 2 links per server + 2 per rack + 2 per agg + 2 per external host.
	want := 2*top.NumServers() + 2*cfg.Racks + 2*cfg.AggSwitches + 2*cfg.ExternalHosts
	if got := top.NumLinks(); got != want {
		t.Fatalf("NumLinks = %d, want %d", got, want)
	}
}

func TestRackAndVLAN(t *testing.T) {
	top := small(t)
	cfg := top.Config()
	if top.Rack(0) != 0 || top.Rack(ServerID(cfg.ServersPerRack)) != 1 {
		t.Fatal("Rack mapping broken")
	}
	ext := ServerID(top.NumServers())
	if top.Rack(ext) != -1 || top.VLAN(ext) != -1 {
		t.Fatal("external host should have no rack or VLAN")
	}
	if !top.SameRack(0, 1) || top.SameRack(0, ServerID(cfg.ServersPerRack)) {
		t.Fatal("SameRack broken")
	}
	// Racks 0 and 1 share a VLAN in SmallConfig (RacksPerVLAN=2).
	a, b := ServerID(0), ServerID(cfg.ServersPerRack)
	if !top.SameVLAN(a, b) {
		t.Fatal("racks 0 and 1 should share a VLAN")
	}
	c := ServerID(2 * cfg.ServersPerRack)
	if top.SameVLAN(a, c) {
		t.Fatal("racks 0 and 2 should not share a VLAN")
	}
	if top.SameRack(ext, ext) {
		t.Fatal("externals never share a rack")
	}
}

func TestRackServers(t *testing.T) {
	top := small(t)
	srvs := top.RackServers(1)
	if len(srvs) != top.Config().ServersPerRack {
		t.Fatalf("rack size %d", len(srvs))
	}
	for _, s := range srvs {
		if top.Rack(s) != 1 {
			t.Fatalf("server %d not in rack 1", s)
		}
	}
}

func TestPathSameServer(t *testing.T) {
	top := small(t)
	if p := top.Path(3, 3); p != nil {
		t.Fatalf("self path should be nil, got %v", p)
	}
}

func TestPathSameRack(t *testing.T) {
	top := small(t)
	p := top.Path(0, 1)
	if len(p) != 2 {
		t.Fatalf("intra-rack path length %d, want 2 (%v)", len(p), p)
	}
	if top.Link(p[0]).Kind != ServerUp || top.Link(p[1]).Kind != ServerDown {
		t.Fatalf("intra-rack path kinds wrong: %v %v", top.Link(p[0]).Kind, top.Link(p[1]).Kind)
	}
}

func TestPathSameAgg(t *testing.T) {
	top := small(t) // SmallConfig: agg = rack % 2, so racks 0 and 2 share agg 0
	src := top.RackServers(0)[0]
	dst := top.RackServers(2)[0]
	p := top.Path(src, dst)
	if len(p) != 4 {
		t.Fatalf("same-agg path length %d, want 4 (%v)", len(p), p)
	}
	kinds := []LinkKind{ServerUp, TorUp, TorDown, ServerDown}
	for i, id := range p {
		if top.Link(id).Kind != kinds[i] {
			t.Fatalf("hop %d kind %v, want %v", i, top.Link(id).Kind, kinds[i])
		}
	}
}

func TestPathCrossAgg(t *testing.T) {
	top := small(t) // racks 0 and 1 are on different aggs
	src := top.RackServers(0)[0]
	dst := top.RackServers(1)[0]
	p := top.Path(src, dst)
	if len(p) != 6 {
		t.Fatalf("cross-agg path length %d, want 6 (%v)", len(p), p)
	}
	kinds := []LinkKind{ServerUp, TorUp, AggUp, AggDown, TorDown, ServerDown}
	for i, id := range p {
		if top.Link(id).Kind != kinds[i] {
			t.Fatalf("hop %d kind %v, want %v", i, top.Link(id).Kind, kinds[i])
		}
	}
}

func TestPathExternal(t *testing.T) {
	top := small(t)
	ext := ServerID(top.NumServers())
	p := top.Path(ext, 0)
	kinds := []LinkKind{ExtUp, AggDown, TorDown, ServerDown}
	if len(p) != len(kinds) {
		t.Fatalf("ext->server path %v", p)
	}
	for i, id := range p {
		if top.Link(id).Kind != kinds[i] {
			t.Fatalf("hop %d kind %v, want %v", i, top.Link(id).Kind, kinds[i])
		}
	}
	p = top.Path(0, ext)
	kinds = []LinkKind{ServerUp, TorUp, AggUp, ExtDown}
	if len(p) != len(kinds) {
		t.Fatalf("server->ext path %v", p)
	}
	for i, id := range p {
		if top.Link(id).Kind != kinds[i] {
			t.Fatalf("hop %d kind %v, want %v", i, top.Link(id).Kind, kinds[i])
		}
	}
}

func TestTorPath(t *testing.T) {
	top := small(t)
	if p := top.TorPath(3, 3); p != nil {
		t.Fatal("self ToR path should be nil")
	}
	p := top.TorPath(0, 2) // same agg
	if len(p) != 2 || top.Link(p[0]).Kind != TorUp || top.Link(p[1]).Kind != TorDown {
		t.Fatalf("same-agg ToR path %v", p)
	}
	p = top.TorPath(0, 1) // cross agg
	if len(p) != 4 {
		t.Fatalf("cross-agg ToR path %v", p)
	}
}

func TestInterSwitchLinks(t *testing.T) {
	top := small(t)
	cfg := top.Config()
	want := 2*cfg.Racks + 2*cfg.AggSwitches
	got := top.InterSwitchLinks()
	if len(got) != want {
		t.Fatalf("InterSwitchLinks = %d, want %d", len(got), want)
	}
	for _, id := range got {
		if !top.Link(id).Kind.InterSwitch() {
			t.Fatalf("link %d kind %v is not inter-switch", id, top.Link(id).Kind)
		}
	}
}

func TestOversubscription(t *testing.T) {
	top := small(t)
	cfg := top.Config()
	serverBps := float64(cfg.ServersPerRack) * cfg.ServerLinkBps
	if serverBps/cfg.TorUplinkBps != 4 {
		t.Fatalf("SmallConfig should be 4:1 oversubscribed, got %v:1", serverBps/cfg.TorUplinkBps)
	}
	if top.BisectionBps() != float64(cfg.AggSwitches)*cfg.AggUplinkBps {
		t.Fatal("BisectionBps broken")
	}
}

// Property: every path alternates consistently and every hop exists; the
// first link leaves the source edge and the last link enters the dest edge.
func TestPathStructureProperty(t *testing.T) {
	top := small(t)
	n := top.NumHosts()
	f := func(a, b uint8) bool {
		src := ServerID(int(a) % n)
		dst := ServerID(int(b) % n)
		p := top.Path(src, dst)
		if src == dst {
			return p == nil
		}
		if len(p) < 2 {
			return false
		}
		if id := top.ServerUplink(src); p[0] != id {
			return false
		}
		if id := top.ServerDownlink(dst); p[len(p)-1] != id {
			return false
		}
		for _, id := range p {
			if int(id) < 0 || int(id) >= top.NumLinks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkKindString(t *testing.T) {
	kinds := []LinkKind{ServerUp, ServerDown, TorUp, TorDown, AggUp, AggDown, ExtUp, ExtDown}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("bad or duplicate kind string %q", s)
		}
		seen[s] = true
	}
	if LinkKind(99).String() != "unknown" {
		t.Fatal("unknown kind should stringify to unknown")
	}
}

// AppendPathK must match PathK exactly, append after existing contents,
// and never exceed MaxPathLen links — the contract netsim's fixed
// per-flow path buffers rely on.
func TestAppendPathKMatchesPathK(t *testing.T) {
	for _, multi := range []bool{false, true} {
		cfg := SmallConfig()
		cfg.MultiPath = multi
		top := MustNew(cfg)
		n := top.NumHosts()
		f := func(a, b uint16, key uint64) bool {
			src := ServerID(int(a) % n)
			dst := ServerID(int(b) % n)
			want := top.PathK(src, dst, key)
			if len(want) > MaxPathLen {
				return false
			}
			buf := make([]LinkID, 0, MaxPathLen)
			got := top.AppendPathK(buf, src, dst, key)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			// Appending after a sentinel must preserve it.
			pre := top.AppendPathK([]LinkID{-7}, src, dst, key)
			return len(pre) == len(want)+1 && pre[0] == -7
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("multipath=%v: %v", multi, err)
		}
	}
}
