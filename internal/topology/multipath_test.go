package topology

import (
	"testing"
	"testing/quick"
)

func multipathConfig() Config {
	cfg := SmallConfig()
	cfg.MultiPath = true
	cfg.AggSwitches = 4
	return cfg
}

func TestMultiPathLinkCount(t *testing.T) {
	cfg := multipathConfig()
	top := MustNew(cfg)
	// 2 per server + 2 per (rack,agg) + 2 per agg + 2 per external.
	want := 2*top.NumServers() + 2*cfg.Racks*cfg.AggSwitches + 2*cfg.AggSwitches + 2*cfg.ExternalHosts
	if got := top.NumLinks(); got != want {
		t.Fatalf("NumLinks = %d, want %d", got, want)
	}
	// Per-agg uplink capacity is the tree budget split evenly.
	per := cfg.TorUplinkBps / float64(cfg.AggSwitches)
	if got := top.Link(top.TorUplink(0)).CapacityBps; got != per {
		t.Fatalf("per-agg uplink capacity %v, want %v", got, per)
	}
	if len(top.TorUplinks(0)) != cfg.AggSwitches || len(top.TorDownlinks(0)) != cfg.AggSwitches {
		t.Fatal("TorUplinks should list one link per agg")
	}
}

func TestMultiPathNoHomeAgg(t *testing.T) {
	top := MustNew(multipathConfig())
	if top.Agg(0) != -1 {
		t.Fatal("multipath racks have no home agg")
	}
}

func TestMultiPathECMPSpreads(t *testing.T) {
	cfg := multipathConfig()
	top := MustNew(cfg)
	src := top.RackServers(0)[0]
	dst := top.RackServers(3)[0]
	seen := map[LinkID]bool{}
	for key := uint64(0); key < 64; key++ {
		p := top.PathK(src, dst, key)
		if len(p) != 4 {
			t.Fatalf("multipath cross-rack path length %d, want 4", len(p))
		}
		seen[p[1]] = true // the ToR→agg hop
	}
	if len(seen) != cfg.AggSwitches {
		t.Fatalf("ECMP used %d of %d aggs", len(seen), cfg.AggSwitches)
	}
}

func TestMultiPathDeterministicPerKey(t *testing.T) {
	top := MustNew(multipathConfig())
	f := func(a, b uint8, key uint64) bool {
		src := ServerID(int(a) % top.NumHosts())
		dst := ServerID(int(b) % top.NumHosts())
		p1 := top.PathK(src, dst, key)
		p2 := top.PathK(src, dst, key)
		if len(p1) != len(p2) {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPathUpDownSameAgg(t *testing.T) {
	// A flow must go up to agg a and come down from the same agg a.
	cfg := multipathConfig()
	top := MustNew(cfg)
	src := top.RackServers(1)[0]
	dst := top.RackServers(5)[0]
	for key := uint64(0); key < 16; key++ {
		p := top.PathK(src, dst, key)
		up := top.Link(p[1]).Name   // torX->aggA
		down := top.Link(p[2]).Name // aggA->torY
		aggOfUp := up[len(up)-1]
		aggOfDown := down[3]
		if aggOfUp != aggOfDown {
			t.Fatalf("up via agg %c, down via agg %c: %v / %v", aggOfUp, aggOfDown, up, down)
		}
	}
}

func TestMultiPathExternalPaths(t *testing.T) {
	top := MustNew(multipathConfig())
	ext := ServerID(top.NumServers())
	p := top.PathK(ext, 0, 3)
	kinds := []LinkKind{ExtUp, AggDown, TorDown, ServerDown}
	if len(p) != len(kinds) {
		t.Fatalf("ext->server path %v", p)
	}
	for i, id := range p {
		if top.Link(id).Kind != kinds[i] {
			t.Fatalf("hop %d kind %v, want %v", i, top.Link(id).Kind, kinds[i])
		}
	}
}

func TestMultiPathTorPathUsesPairHash(t *testing.T) {
	top := MustNew(multipathConfig())
	p1 := top.TorPath(0, 3)
	p2 := top.TorPath(0, 3)
	if len(p1) != 2 || p1[0] != p2[0] || p1[1] != p2[1] {
		t.Fatalf("ToR pair path not deterministic: %v vs %v", p1, p2)
	}
}

func TestMultiPathBisection(t *testing.T) {
	cfg := multipathConfig()
	top := MustNew(cfg)
	want := float64(cfg.Racks) * cfg.TorUplinkBps / 2
	if got := top.BisectionBps(); got != want {
		t.Fatalf("bisection %v, want %v", got, want)
	}
}
