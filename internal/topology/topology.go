// Package topology models the datacenter cluster fabric of the paper's
// Figure 1: tens of servers per rack behind a top-of-rack (ToR) switch,
// ToRs connected to a small number of high-degree aggregation switches,
// aggregation switches joined by a core (IP) router, and a handful of
// external servers (data uploaders / result pullers) hanging off the core.
//
// Links are directed so that up- and down-stream utilization are tracked
// separately, matching how SNMP byte counters are reported per interface
// direction. Routing is deterministic shortest-path up/down the tree.
package topology

import (
	"fmt"
)

// ServerID identifies a server (or an external host) in the cluster.
// Cluster servers are numbered 0..NumServers-1; external hosts follow.
type ServerID int

// RackID identifies a rack and, equivalently, its ToR switch.
type RackID int

// LinkID indexes a directed link in the topology.
type LinkID int

// LinkKind classifies a directed link by its position in the tree.
type LinkKind uint8

// Link kinds, from the edge to the core.
const (
	ServerUp   LinkKind = iota // server → ToR
	ServerDown                 // ToR → server
	TorUp                      // ToR → aggregation switch
	TorDown                    // aggregation switch → ToR
	AggUp                      // aggregation switch → core router
	AggDown                    // core router → aggregation switch
	ExtUp                      // external host → core router
	ExtDown                    // core router → external host
)

// String returns the kind name.
func (k LinkKind) String() string {
	switch k {
	case ServerUp:
		return "server-up"
	case ServerDown:
		return "server-down"
	case TorUp:
		return "tor-up"
	case TorDown:
		return "tor-down"
	case AggUp:
		return "agg-up"
	case AggDown:
		return "agg-down"
	case ExtUp:
		return "ext-up"
	case ExtDown:
		return "ext-down"
	}
	return "unknown"
}

// InterSwitch reports whether the link connects two switches (the link set
// over which the paper reports congestion statistics).
func (k LinkKind) InterSwitch() bool {
	switch k {
	case TorUp, TorDown, AggUp, AggDown:
		return true
	}
	return false
}

// Link is a directed link with a capacity.
type Link struct {
	ID          LinkID
	Kind        LinkKind
	CapacityBps float64
	Name        string // human-readable endpoint description
}

// Config parameterizes a cluster topology. The zero value is not useful;
// use DefaultConfig (paper scale) or SmallConfig (test scale) and override.
type Config struct {
	Racks          int     // number of racks (= ToR switches)
	ServersPerRack int     // paper: ~20
	AggSwitches    int     // high-degree aggregation switches
	RacksPerVLAN   int     // VLANs span small numbers of racks
	ExternalHosts  int     // hosts outside the cluster, attached at the core
	ServerLinkBps  float64 // server NIC speed (paper: 1 Gbps)
	TorUplinkBps   float64 // total ToR → agg capacity (oversubscribed)
	AggUplinkBps   float64 // agg → core capacity
	ExtLinkBps     float64 // external host attachment

	// MultiPath wires every ToR to every aggregation switch (VL2-style),
	// splitting TorUplinkBps evenly across the aggs; cross-rack flows
	// then pick an agg per flow (ECMP). The paper's cluster is the
	// single-homed tree (false); the multipath variant supports
	// architecture-comparison experiments.
	MultiPath bool
}

// DefaultConfig is the paper-scale cluster: 75 racks × 20 servers ≈ 1500
// servers, 1 Gbps server links, 4:1 oversubscription at the ToR.
func DefaultConfig() Config {
	return Config{
		Racks:          75,
		ServersPerRack: 20,
		AggSwitches:    5,
		RacksPerVLAN:   5,
		ExternalHosts:  30,
		ServerLinkBps:  1e9,
		TorUplinkBps:   5e9, // 20 Gbps of servers behind 5 Gbps: 4:1
		AggUplinkBps:   40e9,
		ExtLinkBps:     1e9,
	}
}

// SmallConfig is a laptop-scale cluster used by tests and examples:
// 8 racks × 10 servers, same oversubscription structure.
func SmallConfig() Config {
	return Config{
		Racks:          8,
		ServersPerRack: 10,
		AggSwitches:    2,
		RacksPerVLAN:   2,
		ExternalHosts:  4,
		ServerLinkBps:  1e9,
		TorUplinkBps:   2.5e9, // 10 Gbps of servers behind 2.5 Gbps: 4:1
		AggUplinkBps:   10e9,
		ExtLinkBps:     1e9,
	}
}

// Topology is an immutable cluster fabric. Construct with New.
type Topology struct {
	cfg   Config
	links []Link

	// Link index blocks, precomputed for O(1) routing.
	serverUp   []LinkID // per server
	serverDown []LinkID
	torUp      []LinkID // per rack (tree) or rack×agg (multipath)
	torDown    []LinkID
	aggUp      []LinkID // per agg switch
	aggDown    []LinkID
	extUp      []LinkID // per external host
	extDown    []LinkID

	// Routing artifacts precomputed once in New and shared read-only by
	// every consumer — the fleet executor's topology cache hands one
	// Topology to many concurrent runs, so path precompute is paid per
	// distinct config, not per run: the rack-pair inter-switch path
	// table behind TorPath and the link set behind InterSwitchLinks.
	torPaths    [][]LinkID
	interSwitch []LinkID
}

// New validates cfg and builds the fabric.
func New(cfg Config) (*Topology, error) {
	if cfg.Racks <= 0 || cfg.ServersPerRack <= 0 {
		return nil, fmt.Errorf("topology: need positive racks (%d) and servers per rack (%d)", cfg.Racks, cfg.ServersPerRack)
	}
	if cfg.AggSwitches <= 0 {
		return nil, fmt.Errorf("topology: need at least one aggregation switch, got %d", cfg.AggSwitches)
	}
	if cfg.AggSwitches > cfg.Racks {
		return nil, fmt.Errorf("topology: more aggregation switches (%d) than racks (%d)", cfg.AggSwitches, cfg.Racks)
	}
	if cfg.RacksPerVLAN <= 0 {
		cfg.RacksPerVLAN = 1
	}
	if cfg.ServerLinkBps <= 0 || cfg.TorUplinkBps <= 0 || cfg.AggUplinkBps <= 0 {
		return nil, fmt.Errorf("topology: link capacities must be positive")
	}
	if cfg.ExternalHosts > 0 && cfg.ExtLinkBps <= 0 {
		return nil, fmt.Errorf("topology: external hosts need a positive link capacity")
	}

	t := &Topology{cfg: cfg}
	n := cfg.Racks * cfg.ServersPerRack
	t.serverUp = make([]LinkID, n)
	t.serverDown = make([]LinkID, n)
	for s := 0; s < n; s++ {
		rack := s / cfg.ServersPerRack
		t.serverUp[s] = t.addLink(ServerUp, cfg.ServerLinkBps, fmt.Sprintf("srv%d->tor%d", s, rack))
		t.serverDown[s] = t.addLink(ServerDown, cfg.ServerLinkBps, fmt.Sprintf("tor%d->srv%d", rack, s))
	}
	if cfg.MultiPath {
		// Every ToR multi-homed to every agg; the total uplink budget is
		// split across the aggs so tree and multipath are capacity-fair.
		per := cfg.TorUplinkBps / float64(cfg.AggSwitches)
		t.torUp = make([]LinkID, cfg.Racks*cfg.AggSwitches)
		t.torDown = make([]LinkID, cfg.Racks*cfg.AggSwitches)
		for r := 0; r < cfg.Racks; r++ {
			for a := 0; a < cfg.AggSwitches; a++ {
				t.torUp[r*cfg.AggSwitches+a] = t.addLink(TorUp, per, fmt.Sprintf("tor%d->agg%d", r, a))
				t.torDown[r*cfg.AggSwitches+a] = t.addLink(TorDown, per, fmt.Sprintf("agg%d->tor%d", a, r))
			}
		}
	} else {
		t.torUp = make([]LinkID, cfg.Racks)
		t.torDown = make([]LinkID, cfg.Racks)
		for r := 0; r < cfg.Racks; r++ {
			agg := r % cfg.AggSwitches
			t.torUp[r] = t.addLink(TorUp, cfg.TorUplinkBps, fmt.Sprintf("tor%d->agg%d", r, agg))
			t.torDown[r] = t.addLink(TorDown, cfg.TorUplinkBps, fmt.Sprintf("agg%d->tor%d", agg, r))
		}
	}
	t.aggUp = make([]LinkID, cfg.AggSwitches)
	t.aggDown = make([]LinkID, cfg.AggSwitches)
	for a := 0; a < cfg.AggSwitches; a++ {
		t.aggUp[a] = t.addLink(AggUp, cfg.AggUplinkBps, fmt.Sprintf("agg%d->core", a))
		t.aggDown[a] = t.addLink(AggDown, cfg.AggUplinkBps, fmt.Sprintf("core->agg%d", a))
	}
	t.extUp = make([]LinkID, cfg.ExternalHosts)
	t.extDown = make([]LinkID, cfg.ExternalHosts)
	for e := 0; e < cfg.ExternalHosts; e++ {
		t.extUp[e] = t.addLink(ExtUp, cfg.ExtLinkBps, fmt.Sprintf("ext%d->core", e))
		t.extDown[e] = t.addLink(ExtDown, cfg.ExtLinkBps, fmt.Sprintf("core->ext%d", e))
	}
	for _, l := range t.links {
		if l.Kind.InterSwitch() {
			t.interSwitch = append(t.interSwitch, l.ID)
		}
	}
	t.torPaths = make([][]LinkID, cfg.Racks*cfg.Racks)
	for i := 0; i < cfg.Racks; i++ {
		for j := 0; j < cfg.Racks; j++ {
			t.torPaths[i*cfg.Racks+j] = t.computeTorPath(RackID(i), RackID(j))
		}
	}
	return t, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Topology) addLink(kind LinkKind, cap float64, name string) LinkID {
	id := LinkID(len(t.links))
	t.links = append(t.links, Link{ID: id, Kind: kind, CapacityBps: cap, Name: name})
	return id
}

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

// NumServers reports the number of cluster servers (excluding externals).
func (t *Topology) NumServers() int { return t.cfg.Racks * t.cfg.ServersPerRack }

// NumHosts reports cluster servers plus external hosts.
func (t *Topology) NumHosts() int { return t.NumServers() + t.cfg.ExternalHosts }

// NumRacks reports the number of racks.
func (t *Topology) NumRacks() int { return t.cfg.Racks }

// NumLinks reports the number of directed links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Links returns all directed links. The returned slice must not be modified.
func (t *Topology) Links() []Link { return t.links }

// Link returns the link with the given id.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// IsExternal reports whether s is an external host.
func (t *Topology) IsExternal(s ServerID) bool { return int(s) >= t.NumServers() }

// externalIndex maps an external ServerID to its 0-based external index.
func (t *Topology) externalIndex(s ServerID) int { return int(s) - t.NumServers() }

// Rack returns the rack housing server s. External hosts have no rack and
// return -1.
func (t *Topology) Rack(s ServerID) RackID {
	if t.IsExternal(s) {
		return -1
	}
	return RackID(int(s) / t.cfg.ServersPerRack)
}

// Agg returns the aggregation switch serving rack r in the tree fabric;
// multipath racks have no home agg and return -1.
func (t *Topology) Agg(r RackID) int {
	if t.cfg.MultiPath {
		return -1
	}
	return int(r) % t.cfg.AggSwitches
}

// torUpLink / torDownLink return rack r's link to/from agg a, handling
// both fabrics (the tree ignores a).
func (t *Topology) torUpLink(r RackID, a int) LinkID {
	if t.cfg.MultiPath {
		return t.torUp[int(r)*t.cfg.AggSwitches+a]
	}
	return t.torUp[r]
}

func (t *Topology) torDownLink(r RackID, a int) LinkID {
	if t.cfg.MultiPath {
		return t.torDown[int(r)*t.cfg.AggSwitches+a]
	}
	return t.torDown[r]
}

// pairKey is the deterministic per-pair ECMP hash used when no flow key
// is supplied.
func pairKey(src, dst ServerID) uint64 {
	x := uint64(src)<<32 ^ uint64(dst)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// VLAN returns the VLAN index of server s (-1 for external hosts). VLANs
// group RacksPerVLAN consecutive racks.
func (t *Topology) VLAN(s ServerID) int {
	r := t.Rack(s)
	if r < 0 {
		return -1
	}
	return int(r) / t.cfg.RacksPerVLAN
}

// SameRack reports whether two hosts share a rack (false when either is
// external).
func (t *Topology) SameRack(a, b ServerID) bool {
	ra, rb := t.Rack(a), t.Rack(b)
	return ra >= 0 && ra == rb
}

// SameVLAN reports whether two hosts share a VLAN.
func (t *Topology) SameVLAN(a, b ServerID) bool {
	va, vb := t.VLAN(a), t.VLAN(b)
	return va >= 0 && va == vb
}

// RackServers returns the servers in rack r in id order.
func (t *Topology) RackServers(r RackID) []ServerID {
	out := make([]ServerID, t.cfg.ServersPerRack)
	base := int(r) * t.cfg.ServersPerRack
	for i := range out {
		out[i] = ServerID(base + i)
	}
	return out
}

// MaxPathLen is the longest path any (src, dst) pair can traverse: up a
// server link, through the ToR and agg layers, and back down. Callers that
// keep per-flow path state (netsim) size fixed buffers with it.
const MaxPathLen = 6

// Path returns the directed links traversed from src to dst, in order.
// A nil path means the hosts are the same (loopback traffic stays on box).
// On a multipath fabric the agg is chosen by a deterministic per-pair
// hash; use PathK to select per flow (ECMP).
func (t *Topology) Path(src, dst ServerID) []LinkID {
	return t.PathK(src, dst, pairKey(src, dst))
}

// PathK is Path with an explicit ECMP key (e.g. a flow id): on a
// multipath fabric the key selects the aggregation switch; the tree
// ignores it. Identical (src, dst, key) triples always yield the same
// path, so per-flow paths are reconstructible from flow records.
func (t *Topology) PathK(src, dst ServerID, key uint64) []LinkID {
	if src == dst {
		return nil
	}
	return t.AppendPathK(nil, src, dst, key)
}

// AppendPathK appends the src→dst path to buf and returns it, letting
// callers reuse per-flow buffers (at most MaxPathLen links are appended).
// Loopback pairs append nothing. Semantics otherwise match PathK.
func (t *Topology) AppendPathK(buf []LinkID, src, dst ServerID, key uint64) []LinkID {
	if src == dst {
		return buf
	}
	if !t.IsExternal(src) && !t.IsExternal(dst) {
		rs, rd := t.Rack(src), t.Rack(dst)
		if rs == rd {
			return append(buf, t.serverUp[src], t.serverDown[dst])
		}
		if t.cfg.MultiPath {
			a := int(key % uint64(t.cfg.AggSwitches))
			return append(buf, t.serverUp[src], t.torUpLink(rs, a), t.torDownLink(rd, a), t.serverDown[dst])
		}
		if t.Agg(rs) == t.Agg(rd) {
			return append(buf, t.serverUp[src], t.torUp[rs], t.torDown[rd], t.serverDown[dst])
		}
	}
	buf = t.appendUpPath(buf, src, key)
	return t.appendDownPath(buf, dst, key)
}

// appendUpPath appends the full path from a host to the core router.
func (t *Topology) appendUpPath(buf []LinkID, s ServerID, key uint64) []LinkID {
	if t.IsExternal(s) {
		return append(buf, t.extUp[t.externalIndex(s)])
	}
	r := t.Rack(s)
	a := t.Agg(r)
	if t.cfg.MultiPath {
		a = int(key % uint64(t.cfg.AggSwitches))
	}
	return append(buf, t.serverUp[s], t.torUpLink(r, a), t.aggUp[a])
}

// appendDownPath appends the full path from the core router to a host.
func (t *Topology) appendDownPath(buf []LinkID, s ServerID, key uint64) []LinkID {
	if t.IsExternal(s) {
		return append(buf, t.extDown[t.externalIndex(s)])
	}
	r := t.Rack(s)
	a := t.Agg(r)
	if t.cfg.MultiPath {
		a = int(key % uint64(t.cfg.AggSwitches))
	}
	return append(buf, t.aggDown[a], t.torDownLink(r, a), t.serverDown[s])
}

// TorPath returns the inter-switch links traversed by traffic from rack i's
// ToR to rack j's ToR. It is the routing used to build the tomography
// constraint matrix (ToR-level origin-destination flows → link counters).
// On a multipath fabric the pair-hash agg is used (per-pair routing — the
// approximation a counter-based method must make anyway). The returned
// slice comes from a table precomputed in New and must not be modified.
func (t *Topology) TorPath(i, j RackID) []LinkID {
	return t.torPaths[int(i)*t.cfg.Racks+int(j)]
}

func (t *Topology) computeTorPath(i, j RackID) []LinkID {
	if i == j {
		return nil
	}
	if t.cfg.MultiPath {
		a := int(pairKey(ServerID(i), ServerID(j)) % uint64(t.cfg.AggSwitches))
		return []LinkID{t.torUpLink(i, a), t.torDownLink(j, a)}
	}
	if t.Agg(i) == t.Agg(j) {
		return []LinkID{t.torUp[i], t.torDown[j]}
	}
	return []LinkID{t.torUp[i], t.aggUp[t.Agg(i)], t.aggDown[t.Agg(j)], t.torDown[j]}
}

// ServerUplink returns the server→ToR link of s (external hosts return
// their core attachment).
func (t *Topology) ServerUplink(s ServerID) LinkID {
	if t.IsExternal(s) {
		return t.extUp[t.externalIndex(s)]
	}
	return t.serverUp[s]
}

// ServerDownlink returns the ToR→server link of s.
func (t *Topology) ServerDownlink(s ServerID) LinkID {
	if t.IsExternal(s) {
		return t.extDown[t.externalIndex(s)]
	}
	return t.serverDown[s]
}

// TorUplink returns rack r's ToR→agg link (the first one on a multipath
// fabric; use TorUplinks for all of them).
func (t *Topology) TorUplink(r RackID) LinkID { return t.torUpLink(r, 0) }

// TorDownlink returns rack r's agg→ToR link (the first one on a multipath
// fabric).
func (t *Topology) TorDownlink(r RackID) LinkID { return t.torDownLink(r, 0) }

// TorUplinks returns all of rack r's ToR→agg links (one on a tree).
func (t *Topology) TorUplinks(r RackID) []LinkID {
	if !t.cfg.MultiPath {
		return []LinkID{t.torUp[r]}
	}
	out := make([]LinkID, t.cfg.AggSwitches)
	for a := 0; a < t.cfg.AggSwitches; a++ {
		out[a] = t.torUpLink(r, a)
	}
	return out
}

// TorDownlinks returns all of rack r's agg→ToR links (one on a tree).
func (t *Topology) TorDownlinks(r RackID) []LinkID {
	if !t.cfg.MultiPath {
		return []LinkID{t.torDown[r]}
	}
	out := make([]LinkID, t.cfg.AggSwitches)
	for a := 0; a < t.cfg.AggSwitches; a++ {
		out[a] = t.torDownLink(r, a)
	}
	return out
}

// InterSwitchLinks returns the ids of all switch-to-switch links, the set
// over which the paper reports congestion (§4.2). The set is precomputed
// in New; the returned slice is a fresh copy the caller may append to.
func (t *Topology) InterSwitchLinks() []LinkID {
	return append([]LinkID(nil), t.interSwitch...)
}

// BisectionBps reports the full-duplex bisection bandwidth of the fabric:
// on the tree, the aggregate agg→core capacity; on multipath, half the
// total ToR uplink capacity (traffic crosses the agg layer directly).
func (t *Topology) BisectionBps() float64 {
	if t.cfg.MultiPath {
		return float64(t.cfg.Racks) * t.cfg.TorUplinkBps / 2
	}
	return float64(t.cfg.AggSwitches) * t.cfg.AggUplinkBps
}
