package core

import (
	"testing"
	"time"

	"dctraffic/internal/flows"
	"dctraffic/internal/netsim"
	"dctraffic/internal/snmp"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/tomo"
)

// TestPaperScaleSmoke runs the 1500-server topology for a short window to
// verify the paper-scale configuration works end to end. Skipped with
// -short; the full day is exercised via cmd/dcsim.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale smoke test skipped in -short mode")
	}
	cfg := PaperRun()
	cfg.Duration = 10 * time.Minute
	cfg.DrainTime = 5 * time.Minute
	rr, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Top.NumServers() != 1500 {
		t.Fatalf("paper scale should be 1500 servers, got %d", rr.Top.NumServers())
	}
	if len(rr.Records()) < 1000 {
		t.Fatalf("only %d flows at paper scale in 10 minutes", len(rr.Records()))
	}
	rep := mustAnalyze(t, rr)
	if rep.Fig9.Summary.NumFlows == 0 {
		t.Fatal("analysis empty at paper scale")
	}
	// The bigger cluster must make the cross-rack zero probability climb
	// toward the paper's 0.995 relative to the small run.
	if rep.Fig3.Entries.PZeroAcrossRack < 0.97 {
		t.Fatalf("P(zero|cross) = %v at 75 racks, expected > 0.97",
			rep.Fig3.Entries.PZeroAcrossRack)
	}
}

// TestAnalyzeWithReassembly checks the §3 methodology option: merging
// same-five-tuple records can only reduce the flow count.
func TestAnalyzeWithReassembly(t *testing.T) {
	rr, rep := smallRun(t)
	merged := mustAnalyze(t, rr, WithInactivityTimeout(60*time.Second))
	if merged.Fig9.Summary.NumFlows > rep.Fig9.Summary.NumFlows {
		t.Fatalf("reassembly grew the flow count: %d > %d",
			merged.Fig9.Summary.NumFlows, rep.Fig9.Summary.NumFlows)
	}
	if merged.Fig9.Summary.NumFlows == 0 {
		t.Fatal("reassembly destroyed all flows")
	}
}

// TestNoSuperLargeFlows checks the paper's conclusion: "We did not see
// evidence of super large flows (flow sizes being determined largely by
// chunking considerations)". The largest flow should be within a small
// factor of the extent size, not an unbounded elephant.
func TestNoSuperLargeFlows(t *testing.T) {
	rr, _ := smallRun(t)
	maxFlow := flows.MaxFlowBytes(rr.Records())
	extent := rr.Store.Config().ExtentBytes
	if maxFlow > 4*extent {
		t.Fatalf("super-large flow found: %d bytes vs %d-byte extents", maxFlow, extent)
	}
	if maxFlow == 0 {
		t.Fatal("no flows at all")
	}
}

// TestMultipathReducesCongestion runs the same workload on the paper's
// tree and on a VL2-style multipath fabric with the same total ToR uplink
// budget: per-flow ECMP over four aggs should shrink long congestion on
// the ToR layer — the architecture-evaluation use the paper motivates.
func TestMultipathReducesCongestion(t *testing.T) {
	run := func(multipath bool) float64 {
		cfg := SmallRun()
		cfg.Duration = time.Hour
		cfg.DrainTime = 20 * time.Minute
		cfg.Topology.MultiPath = multipath
		if multipath {
			cfg.Topology.AggSwitches = 4
		}
		rr, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := mustAnalyze(t, rr)
		// Long episodes (>=10s) are the robust comparison: ECMP trades a
		// few saturated trunk links for many brief collisions on the
		// (4x smaller) per-agg links, so total congested seconds are
		// noisy, but sustained hot links shrink decisively.
		var longSec float64
		for _, e := range rep.Fig5.Episodes {
			if d := e.Duration().Seconds(); d >= 10 {
				longSec += d
			}
		}
		return longSec / float64(rep.Fig5.LinksMonitored)
	}
	tree := run(false)
	multi := run(true)
	if tree <= 0 {
		t.Skip("no long congestion in the tree run; cannot compare")
	}
	if multi >= tree {
		t.Fatalf("multipath long-congestion s/link (%v) should be below tree (%v)", multi, tree)
	}
}

// TestSNMPCountersDegradeTomography runs the full SNMP path: polled,
// jittered counters instead of exact per-window link counts. Tomogravity
// degrades and the exact-feasibility sparsity-max LP usually becomes
// infeasible, because polled counters include bytes (ingest/egress) the
// ToR-to-ToR flow model cannot explain.
func TestSNMPCountersDegradeTomography(t *testing.T) {
	rr, _ := smallRun(t)
	problem := tomo.NewProblem(rr.Top)
	bin := netsim.Time(10 * time.Minute)
	series := tm.TorSeries(rr.Records(), rr.Top, bin, rr.Config.Duration)
	polled := snmp.Collect(rr.Net.Stats(), rr.Top.InterSwitchLinks(), rr.Config.Duration,
		snmp.Config{Interval: 5 * time.Minute, JitterFrac: 0.05}, stats.NewRNG(9))
	var exact, fromPolls []float64
	smFailures, smAttempts := 0, 0
	for i, truth := range series {
		if truth.Total() <= 0 {
			continue
		}
		xTrue := problem.VecFromTM(truth)
		if est, err := problem.Tomogravity(problem.LinkCounts(truth)); err == nil {
			exact = append(exact, tomo.RMSRE(xTrue, est, 0.75))
		}
		from := netsim.Time(i) * bin
		counts, _ := snmp.WindowCounts(polled, from, from+bin, 64)
		if est, err := problem.Tomogravity(counts); err == nil {
			fromPolls = append(fromPolls, tomo.RMSRE(xTrue, est, 0.75))
		}
		smAttempts++
		if _, err := problem.SparsityMax(counts); err != nil {
			smFailures++
		}
	}
	if len(exact) == 0 || len(fromPolls) == 0 {
		t.Fatal("no tomography instances")
	}
	if stats.Median(fromPolls) <= stats.Median(exact) {
		t.Fatalf("polled counters should degrade tomogravity: exact %v, polled %v",
			stats.Median(exact), stats.Median(fromPolls))
	}
	if smFailures == 0 {
		t.Logf("note: sparsity-max stayed feasible on all %d polled instances", smAttempts)
	}
}

// TestAttributionFindsPaperCauses reproduces §4.2's attribution: shuffles
// (reduce pulls) should dominate bytes on hot links, and the "unexpected"
// contributors — extract network reads and evacuations — should appear.
func TestAttributionFindsPaperCauses(t *testing.T) {
	_, rep := smallRun(t)
	a := rep.Attribution
	if a.TotalBytes <= 0 {
		t.Skip("no congested bytes to attribute")
	}
	ranked := a.Ranked()
	if len(ranked) == 0 {
		t.Fatal("no kinds attributed")
	}
	if got := a.Share[netsim.KindShuffle] + a.Share[netsim.KindExtractRead]; got < 0.3 {
		t.Fatalf("shuffle+extract share %v — job traffic should drive congestion", got)
	}
	if _, ok := a.Share[netsim.KindExtractRead]; !ok {
		t.Fatal("extract reads never hit a hot link — the paper's unexpected cause is missing")
	}
}
