package core

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dctraffic/internal/trace"
)

// benchSim memoizes one shortened simulation shared by the analyze
// benchmarks, so iterations time only the analysis pipeline.
var (
	benchSimOnce sync.Once
	benchSimRR   *RunResult
	benchSimErr  error
)

func benchSim(b *testing.B) *RunResult {
	b.Helper()
	benchSimOnce.Do(func() {
		cfg := SmallRun()
		cfg.Duration = 30 * time.Minute
		cfg.DrainTime = 10 * time.Minute
		benchSimRR, benchSimErr = Simulate(cfg)
	})
	if benchSimErr != nil {
		b.Fatal(benchSimErr)
	}
	return benchSimRR
}

// BenchmarkAnalyzeSmall times the pipeline on a single worker — the
// sequential baseline of BENCH_analyze.json.
func BenchmarkAnalyzeSmall(b *testing.B) {
	rr := benchSim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeRun(context.Background(), rr, WithSequential()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeParallel times the pipeline at the default
// parallelism (GOMAXPROCS workers). Output is bit-identical to the
// sequential run; only the wall clock should move.
func BenchmarkAnalyzeParallel(b *testing.B) {
	rr := benchSim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeRun(context.Background(), rr); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFusedConfig is the end-to-end configuration the fused/two-phase
// pair times: unlike the other analyze benchmarks, these two simulate
// per iteration, because the phase overlap is the thing measured.
func benchFusedConfig() RunConfig {
	cfg := SmallRun()
	cfg.Duration = 30 * time.Minute
	cfg.DrainTime = 10 * time.Minute
	return cfg
}

// BenchmarkRunAnalyzeTwoPhase is the baseline the fused pipeline is
// judged against: simulate to completion, then analyze the materialized
// record log — the sum of the two phases.
func BenchmarkRunAnalyzeTwoPhase(b *testing.B) {
	cfg := benchFusedConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := AnalyzeRun(context.Background(), rr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAnalyzeFused times the fused pipeline end to end: the
// simulator feeds the analyzer through the live watermarked source, so
// record-derived analysis overlaps simulation and the canonical-order
// materialize/sort step disappears. Report digests are bit-identical to
// the two-phase baseline (TestRunAnalyzeMatchesTwoPhase).
func BenchmarkRunAnalyzeFused(b *testing.B) {
	cfg := benchFusedConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunAnalyze(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeStream times the bounded-memory path: the same
// records streamed from a trace file through AnalyzeSource, including
// the JSONL decode the file source pays per iteration. ReportAllocs
// makes the O(window) footprint visible next to the in-memory runs.
func BenchmarkAnalyzeStream(b *testing.B) {
	rr := benchSim(b)
	path := filepath.Join(b.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := trace.WriteJSONL(f, rr.Records()); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := trace.OpenFile(path, trace.FileOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_, err = AnalyzeSource(context.Background(), src,
			WithTopology(rr.Top), WithDuration(rr.Config.Duration))
		src.Close()
		if err != nil {
			b.Fatal(err)
		}
	}
}
