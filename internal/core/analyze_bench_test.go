package core

import (
	"sync"
	"testing"
	"time"
)

// benchSim memoizes one shortened simulation shared by the analyze
// benchmarks, so iterations time only the analysis pipeline.
var (
	benchSimOnce sync.Once
	benchSimRR   *RunResult
	benchSimErr  error
)

func benchSim(b *testing.B) *RunResult {
	b.Helper()
	benchSimOnce.Do(func() {
		cfg := SmallRun()
		cfg.Duration = 30 * time.Minute
		cfg.DrainTime = 10 * time.Minute
		benchSimRR, benchSimErr = Simulate(cfg)
	})
	if benchSimErr != nil {
		b.Fatal(benchSimErr)
	}
	return benchSimRR
}

// BenchmarkAnalyzeSmall times the pipeline on a single worker — the
// sequential baseline of BENCH_analyze.json.
func BenchmarkAnalyzeSmall(b *testing.B) {
	rr := benchSim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Analyze(rr, AnalyzeOptions{Sequential: true})
	}
}

// BenchmarkAnalyzeParallel times the pipeline at the default
// parallelism (GOMAXPROCS workers). Output is bit-identical to the
// sequential run; only the wall clock should move.
func BenchmarkAnalyzeParallel(b *testing.B) {
	rr := benchSim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Analyze(rr, AnalyzeOptions{})
	}
}
