package core

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"dctraffic/internal/trace"
)

// writeTraceFile spills rr's flow log to a JSONL file in completion
// order — the same nearly-sorted shape cmd/dcsim produces.
func writeTraceFile(t *testing.T, rr *RunResult) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, rr.Records()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// streamDigest analyzes the trace file through a FileSource (spilling
// and merging when chunk is small) and digests the full report.
func streamDigest(t *testing.T, path string, chunk int, rr *RunResult, opts ...AnalyzeOption) string {
	t.Helper()
	src, err := trace.OpenFile(path, trace.FileOptions{SortChunk: chunk, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	rep, err := AnalyzeSource(context.Background(), src, append([]AnalyzeOption{WithRun(rr)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return reportDigest(t, rep)
}

// TestAnalyzeStreamMatchesInMemory is the acceptance gate of the
// streaming redesign: a trace streamed from disk through the external
// sort must produce a report bit-identical to the in-memory path, for
// every combination of seed, GOMAXPROCS, worker count and sort-chunk
// size (512 forces multi-chunk spill-and-merge; 0 keeps the trace in
// one chunk).
func TestAnalyzeStreamMatchesInMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("two shortened simulations + a matrix of analyses")
	}
	for _, seed := range []uint64{1, 7} {
		cfg := SmallRun()
		cfg.Duration = 20 * time.Minute
		cfg.DrainTime = 10 * time.Minute
		cfg.Seed = seed
		rr, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := writeTraceFile(t, rr)
		want := reportDigest(t, mustAnalyze(t, rr, WithSequential()))

		if got := streamDigest(t, path, 512, rr, WithSequential()); got != want {
			t.Fatalf("seed %d: sequential stream digest %s != in-memory %s", seed, got, want)
		}
		prev := runtime.GOMAXPROCS(0)
		for _, gmp := range []int{1, runtime.NumCPU()} {
			runtime.GOMAXPROCS(gmp)
			for _, chunk := range []int{512, 0} {
				if got := streamDigest(t, path, chunk, rr, WithParallelism(8)); got != want {
					runtime.GOMAXPROCS(prev)
					t.Fatalf("seed %d: GOMAXPROCS=%d chunk=%d stream digest %s != in-memory %s",
						seed, gmp, chunk, got, want)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestAnalyzeStreamReassemblyMatches covers the stateful windowed
// reassembler: flow merging across the inactivity horizon must not
// depend on whether records arrive from memory or from spill-merged
// chunks.
func TestAnalyzeStreamReassemblyMatches(t *testing.T) {
	rr, _ := smallRun(t)
	path := writeTraceFile(t, rr)
	want := reportDigest(t, mustAnalyze(t, rr, WithInactivityTimeout(60*time.Second)))
	got := streamDigest(t, path, 1024, rr, WithInactivityTimeout(60*time.Second))
	if got != want {
		t.Fatalf("reassembly stream digest %s != in-memory %s", got, want)
	}
}

// TestAnalyzeTraceOnlyPathMatches pins the cmd/dcanalyze -trace mode:
// with only a topology and duration (no RunResult), the file source and
// the slice source must agree bit for bit on the record-only figures.
func TestAnalyzeTraceOnlyPathMatches(t *testing.T) {
	rr, _ := smallRun(t)
	path := writeTraceFile(t, rr)
	opts := []AnalyzeOption{WithTopology(rr.Top), WithDuration(rr.Config.Duration)}
	memRep, err := AnalyzeSource(context.Background(), rr.Source(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.OpenFile(path, trace.FileOptions{SortChunk: 777, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	fileRep, err := AnalyzeSource(context.Background(), src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportDigest(t, fileRep), reportDigest(t, memRep); got != want {
		t.Fatalf("trace-only file digest %s != slice digest %s", got, want)
	}
	if fileRep.Fig9.Summary.NumFlows == 0 {
		t.Fatal("trace-only analysis produced no flows")
	}
	if len(fileRep.Fig5.Episodes) != 0 || fileRep.Fig12.NumTMs != 0 {
		t.Fatal("trace-only analysis should leave run-gated figures empty")
	}
}

// TestAnalyzeShimEquivalence keeps the deprecated struct-options
// surface honest: Analyze must be a pure wrapper over the functional
// options it deprecates.
func TestAnalyzeShimEquivalence(t *testing.T) {
	rr, _ := smallRun(t)
	legacy := Analyze(rr, AnalyzeOptions{Parallelism: 2, TomoCold: true})
	modern := mustAnalyze(t, rr, WithParallelism(2), WithTomoCold())
	if got, want := reportDigest(t, legacy), reportDigest(t, modern); got != want {
		t.Fatalf("deprecated Analyze digest %s != AnalyzeRun digest %s", got, want)
	}
}

// TestAnalyzeSourceValidation nails the error contract of the new
// entry point: a source without a topology or duration cannot be
// analyzed.
func TestAnalyzeSourceValidation(t *testing.T) {
	src := trace.NewSliceSource(nil)
	if _, err := AnalyzeSource(context.Background(), src); err == nil {
		t.Fatal("AnalyzeSource without topology/duration: want error")
	}
	rr, _ := smallRun(t)
	if _, err := AnalyzeSource(context.Background(), rr.Source(), WithTopology(rr.Top)); err == nil {
		t.Fatal("AnalyzeSource without duration: want error")
	}
}
