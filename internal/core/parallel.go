package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dctraffic/internal/netsim"
)

// defaultParallelism resolves a zero Parallelism option: GOMAXPROCS,
// clamped to 1 on a single-proc box so the streaming pool (and its
// channel handoffs) is never spun up when there is no parallelism to
// buy with it. Mirrors netsim.DefaultWorkers; an explicit
// WithParallelism is always honored unchanged.
func defaultParallelism() int {
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return p
	}
	return 1
}

// The analysis pipeline's determinism contract, in three rules:
//
//  1. Decomposition is data-driven. Shard counts and window boundaries
//     are functions of the input size only — never of the worker count —
//     so the same record set always produces the same task graph.
//  2. Tasks own their output slots. Every task writes results into a
//     pre-sized slot indexed by its shard/window number; no two tasks
//     share a mutable location, so scheduling order cannot race or
//     reorder anything.
//  3. Merges are single-goroutine and fixed-order. After a task group
//     completes, the coordinator reduces the slots in slot order. All
//     float accumulation happens there (or inside one task over the
//     canonical record order), never across goroutines.
//
// Under these rules the worker count only decides how many tasks run at
// once — Parallelism: 1 executes the identical sharded algorithm on one
// goroutine — so Analyze output is bit-identical at any parallelism.

// task is one independent unit of analysis work. fn must touch only the
// task's own result slot plus immutable shared state (the record view,
// topology, link stats, episode index).
type task struct {
	name string
	fn   func()
}

// runTasks executes tasks on up to workers goroutines and waits for all
// of them. Tasks are claimed by atomic counter, so completion order is
// nondeterministic — which is fine, because merging happens afterwards
// on the caller's goroutine (rule 3 above). A task panic is re-raised
// on the caller once the group drains. Cancellation stops workers from
// claiming further tasks and reports ctx.Err().
func runTasks(ctx context.Context, workers int, tasks []task) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			if err := ctx.Err(); err != nil {
				return err
			}
			t.fn()
		}
		return nil
	}
	var next atomic.Int64
	var panicked atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicked.CompareAndSwap(nil, p)
				}
			}()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tasks[i].fn()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	return ctx.Err()
}

// shardRanges splits n items into [lo, hi) ranges of roughly target
// items each, capped at maxShards ranges. The shard count depends only
// on n and target (rule 1), so per-shard partial results and their
// fixed-order merge are reproducible at any worker count.
func shardRanges(n, target, maxShards int) [][2]int {
	if n <= 0 {
		return nil
	}
	if target <= 0 {
		target = 1
	}
	k := (n + target - 1) / target
	if k < 1 {
		k = 1
	}
	if k > maxShards {
		k = maxShards
	}
	out := make([][2]int, k)
	for i := 0; i < k; i++ {
		out[i] = [2]int{i * n / k, (i + 1) * n / k}
	}
	return out
}

// recordShardTarget sizes record shards (Fig 7 join, attribution,
// Fig 9 CDFs): big enough that per-shard overhead is noise, small
// enough that a paper-scale run (~2M records) fans out well. The
// streaming pipeline uses the same constant as its chunk size, so at
// trace scale a chunk task costs the same as a shard task did.
const recordShardTarget = 1 << 17

// maxRecordShards bounds the fan-out (and the slot arrays).
const maxRecordShards = 32

// streamPool runs figure-window and record-chunk tasks for the
// streaming pipeline. Unlike runTasks it accepts work incrementally —
// tasks are submitted as the sweep closes windows — but the same
// three-rule contract applies: every submitted task writes one
// pre-sized slot, and the coordinator merges completed slots in
// submission order via the per-task done channels (the "ready prefix"),
// never in completion order. The task channel's small buffer is the
// pipeline's backpressure: a slow pool blocks the sweep, bounding
// in-flight window copies and unmerged slots by O(workers), which is
// what keeps streaming analysis memory O(window).
type streamPool struct {
	ctx    context.Context
	seq    bool
	exec   netsim.Executor // external shared pool; nil → own goroutines
	sem    chan struct{}   // exec mode: caps in-flight tasks at workers
	tasks  chan func()
	wg     sync.WaitGroup
	failed atomic.Pointer[poolPanic]
	waited bool
}

// poolPanic boxes the first task panic for re-raising on the caller.
type poolPanic struct{ val any }

// newStreamPool starts workers goroutines (none when workers <= 1:
// submit then runs tasks inline, the sequential reference path).
func newStreamPool(ctx context.Context, workers int) *streamPool {
	return newStreamPoolExec(ctx, workers, nil)
}

// newStreamPoolExec is newStreamPool with an optional external
// executor. With exec non-nil the pool owns no goroutines: submit hands
// tasks to exec and a semaphore caps in-flight tasks at workers, so the
// O(window) backpressure bound is identical to the own-goroutine mode —
// a saturated pool still blocks the sweep. The ready-prefix merge
// contract is unchanged (done channels close per task, merges happen on
// the coordinator), so results are bit-identical across modes.
func newStreamPoolExec(ctx context.Context, workers int, exec netsim.Executor) *streamPool {
	p := &streamPool{ctx: ctx}
	if workers <= 1 {
		p.seq = true
		return p
	}
	if exec != nil {
		p.exec = exec
		p.sem = make(chan struct{}, workers)
		return p
	}
	p.tasks = make(chan func(), workers)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// submit schedules fn and returns a channel closed when it has run (or
// been skipped after cancellation/panic — the channel always closes, so
// ready-prefix merges never wedge). Blocks when the pool is saturated.
func (p *streamPool) submit(fn func()) <-chan struct{} {
	done := make(chan struct{})
	wrapped := func() {
		defer close(done)
		defer func() {
			if v := recover(); v != nil {
				p.failed.CompareAndSwap(nil, &poolPanic{val: v})
			}
		}()
		if p.ctx.Err() == nil && p.failed.Load() == nil {
			fn()
		}
	}
	switch {
	case p.seq:
		wrapped()
	case p.exec != nil:
		p.sem <- struct{}{} // backpressure: blocks at workers in flight
		p.wg.Add(1)
		p.exec.Go(func() {
			defer p.wg.Done()
			defer func() { <-p.sem }()
			wrapped()
		})
	default:
		p.tasks <- wrapped
	}
	return done
}

// wait drains the pool, re-raises the first task panic, and reports
// ctx.Err(). Idempotent, so error paths can call it for cleanup.
func (p *streamPool) wait() error {
	if !p.waited {
		p.waited = true
		switch {
		case p.seq:
		case p.exec != nil:
			p.wg.Wait()
		default:
			close(p.tasks)
			p.wg.Wait()
		}
	}
	if pb := p.failed.Load(); pb != nil {
		panic(pb.val)
	}
	return p.ctx.Err()
}
