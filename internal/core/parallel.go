package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// The analysis pipeline's determinism contract, in three rules:
//
//  1. Decomposition is data-driven. Shard counts and window boundaries
//     are functions of the input size only — never of the worker count —
//     so the same record set always produces the same task graph.
//  2. Tasks own their output slots. Every task writes results into a
//     pre-sized slot indexed by its shard/window number; no two tasks
//     share a mutable location, so scheduling order cannot race or
//     reorder anything.
//  3. Merges are single-goroutine and fixed-order. After a task group
//     completes, the coordinator reduces the slots in slot order. All
//     float accumulation happens there (or inside one task over the
//     canonical record order), never across goroutines.
//
// Under these rules the worker count only decides how many tasks run at
// once — Parallelism: 1 executes the identical sharded algorithm on one
// goroutine — so Analyze output is bit-identical at any parallelism.

// task is one independent unit of analysis work. fn must touch only the
// task's own result slot plus immutable shared state (the record view,
// topology, link stats, episode index).
type task struct {
	name string
	fn   func()
}

// runTasks executes tasks on up to workers goroutines and waits for all
// of them. Tasks are claimed by atomic counter, so completion order is
// nondeterministic — which is fine, because merging happens afterwards
// on the caller's goroutine (rule 3 above). A task panic is re-raised
// on the caller once the group drains. Cancellation stops workers from
// claiming further tasks and reports ctx.Err().
func runTasks(ctx context.Context, workers int, tasks []task) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			if err := ctx.Err(); err != nil {
				return err
			}
			t.fn()
		}
		return nil
	}
	var next atomic.Int64
	var panicked atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicked.CompareAndSwap(nil, p)
				}
			}()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tasks[i].fn()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	return ctx.Err()
}

// shardRanges splits n items into [lo, hi) ranges of roughly target
// items each, capped at maxShards ranges. The shard count depends only
// on n and target (rule 1), so per-shard partial results and their
// fixed-order merge are reproducible at any worker count.
func shardRanges(n, target, maxShards int) [][2]int {
	if n <= 0 {
		return nil
	}
	if target <= 0 {
		target = 1
	}
	k := (n + target - 1) / target
	if k < 1 {
		k = 1
	}
	if k > maxShards {
		k = maxShards
	}
	out := make([][2]int, k)
	for i := 0; i < k; i++ {
		out[i] = [2]int{i * n / k, (i + 1) * n / k}
	}
	return out
}

// recordShardTarget sizes record shards (Fig 7 join, attribution,
// Fig 9 CDFs): big enough that per-shard overhead is noise, small
// enough that a paper-scale run (~2M records) fans out well.
const recordShardTarget = 1 << 17

// maxRecordShards bounds the fan-out (and the slot arrays).
const maxRecordShards = 32

// tomoChainTarget sizes tomography chains: each chain walks a
// contiguous run of TM windows through one warm-started estimator, so
// longer chains amortize more cold simplex solves while more chains
// expose more parallelism. Eight windows per chain fans a paper-scale
// day (144 windows) out 18 ways with only one cold solve per chain.
const tomoChainTarget = 8

// maxTomoChains bounds the tomography fan-out (and estimator count).
const maxTomoChains = 32
