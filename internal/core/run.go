// Package core orchestrates the full reproduction pipeline: build a
// cluster, run the workload under instrumentation, and regenerate every
// table and figure of the paper from the collected logs.
//
// The two entry points are Simulate (workload → socket-level logs) and
// Analyze (logs → Report, one field per figure). cmd/dcanalyze and
// bench_test.go are thin wrappers over these.
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"dctraffic/internal/cosmos"
	"dctraffic/internal/eventlog"
	"dctraffic/internal/netsim"
	"dctraffic/internal/obs"
	"dctraffic/internal/sched"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// RunConfig assembles a full simulation.
type RunConfig struct {
	Topology topology.Config
	Store    cosmos.Config
	Sched    sched.Config
	Trace    trace.Config

	// Duration of the instrumented window.
	Duration netsim.Time

	// DrainTime lets in-flight work finish after the window (not
	// instrumented as part of Duration-based rates).
	DrainTime netsim.Time

	// UtilBinSize sizes the SNMP-like link counters (default 1 s).
	UtilBinSize netsim.Time

	// RateRecompute batches max-min recomputation for speed on long
	// runs (default exact).
	RateRecompute netsim.Time

	// FullRecompute disables the simulator's dirty-component allocator
	// and re-solves every flow on every recompute. Results are
	// identical; the knob exists for validation and A/B timing.
	FullRecompute bool

	// Workers bounds the goroutines the simulator's per-rack event-
	// domain engine may use during the simulate phase (0 = GOMAXPROCS).
	// Results are bit-identical at any worker count.
	Workers int

	// Sequential forces the simulator's single-goroutine reference
	// event loop (the A/B path for the parallel engine). Results are
	// identical; the knob exists for validation and timing.
	Sequential bool

	Seed uint64
}

// SmallRun returns a laptop-scale configuration: the 80-server topology
// with a two-hour instrumented window.
func SmallRun() RunConfig {
	sc := sched.DefaultConfig()
	return RunConfig{
		Topology:    topology.SmallConfig(),
		Store:       cosmos.Config{ReplicationFactor: 3, ExtentBytes: 64 << 20},
		Sched:       sc,
		Duration:    2 * time.Hour,
		DrainTime:   30 * time.Minute,
		UtilBinSize: time.Second,
		Seed:        1,
	}
}

// PaperRun returns the paper-scale configuration: 75 racks × 20 servers
// and a full day. Expect wall-clock seconds to minutes depending on the
// machine and roughly 1.5 GB of memory (measured via the obs runtime
// sampler: 1.24 GB peak heap — see EXPERIMENTS.md "Runtime").
func PaperRun() RunConfig {
	sc := sched.DefaultConfig()
	sc.JobsPerHour = 900 // scale arrivals with cluster size
	sc.NumDatasets = 40
	return RunConfig{
		Topology:      topology.DefaultConfig(),
		Store:         cosmos.DefaultConfig(),
		Sched:         sc,
		Duration:      24 * time.Hour,
		DrainTime:     time.Hour,
		UtilBinSize:   time.Second,
		RateRecompute: 10 * time.Millisecond,
		Seed:          1,
	}
}

// RunResult carries everything a Run produced.
type RunResult struct {
	Config    RunConfig
	Top       *topology.Topology
	Net       *netsim.Network
	Cluster   *sched.Cluster
	Store     *cosmos.Store
	Collector *trace.Collector
	Log       *eventlog.Log

	// Metrics is the final observability snapshot: every netsim /
	// cosmos / scope / trace series plus wall-clock phase timings and
	// runtime samples. Nil when metrics collection was disabled with
	// WithObserver(nil).
	Metrics *obs.Snapshot
}

// Records returns the socket-level flow log.
func (r *RunResult) Records() []trace.FlowRecord { return r.Collector.Records() }

// Source returns the flow log as a canonical-order trace.Source, the
// input AnalyzeSource streams over. Sorting cost aside, analyzing this
// source is bit-identical to analyzing the same records written to a
// trace file and read back through trace.FileSource.
func (r *RunResult) Source() *trace.SliceSource { return trace.NewSliceSource(r.Records()) }

// Progress is one run-loop progress report, delivered at simulated-time
// batch boundaries (see WithProgress).
type Progress struct {
	// SimTime is the current simulated time; SimDuration the total
	// (instrumented window plus drain).
	SimTime     netsim.Time
	SimDuration netsim.Time
	// WallElapsed is the wall-clock time since Run started.
	WallElapsed time.Duration

	Events         uint64 // simulator events processed so far
	QueueDepth     int    // pending events in the queue
	ActiveFlows    int
	FlowsStarted   int64
	FlowsCompleted int64
	Records        int // trace records collected
	Jobs           int // jobs submitted
	TotalBytes     float64
	HeapBytes      uint64 // live heap at the batch boundary
}

// Frac reports completed simulated time as a fraction in [0, 1].
func (p Progress) Frac() float64 {
	if p.SimDuration <= 0 {
		return 1
	}
	return float64(p.SimTime) / float64(p.SimDuration)
}

// runOptions collects the functional options of Run.
type runOptions struct {
	progress      func(Progress)
	progressEvery netsim.Time
	sink          io.Writer
	reg           *obs.Registry
	regSet        bool
	simExec       netsim.Executor
	top           *topology.Topology
}

// RunOption configures Run.
type RunOption func(*runOptions)

// WithProgress delivers a Progress report at every simulated-time batch
// boundary (default every simulated minute; see WithProgressInterval).
// The callback runs on the simulation goroutine and must not mutate the
// run.
func WithProgress(fn func(Progress)) RunOption {
	return func(o *runOptions) { o.progress = fn }
}

// WithProgressInterval sets the simulated-time batch length: progress
// reports, runtime samples and context-cancellation checks all happen
// on these boundaries. Values ≤ 0 keep the default (one simulated
// minute). The interval does not affect simulation results — slicing
// the event loop is exact.
func WithProgressInterval(d netsim.Time) RunOption {
	return func(o *runOptions) { o.progressEvery = d }
}

// WithMetricsSink writes the final metrics snapshot as JSON to w when
// the run completes successfully.
func WithMetricsSink(w io.Writer) RunOption {
	return func(o *runOptions) { o.sink = w }
}

// WithObserver uses the caller's registry instead of a fresh one, so
// metrics can be read mid-run (from progress callbacks) or accumulated
// across runs. Passing nil disables metrics collection entirely
// (RunResult.Metrics will be nil) — by the obs determinism contract,
// results are bit-identical either way.
func WithObserver(reg *obs.Registry) RunOption {
	return func(o *runOptions) { o.reg = reg; o.regSet = true }
}

// WithSimExecutor runs the simulator's parallel-engine phase spans on a
// caller-provided shared executor instead of goroutines the run owns —
// the seam the fleet batch executor uses to schedule many concurrent
// runs over one core budget. The per-run worker bound (RunConfig
// .Workers) still decides span granularity, and results are
// bit-identical with or without an executor (netsim.Options.Exec).
func WithSimExecutor(ex netsim.Executor) RunOption {
	return func(o *runOptions) { o.simExec = ex }
}

// WithPrebuiltTopology reuses an already-built topology instead of
// rebuilding it from RunConfig.Topology — the fleet executor's shared
// artifact cache hands identical configs the same immutable Topology so
// path precompute is paid once per distinct config, not once per run.
// The topology must have been built from a Config equal to the run's;
// prepareRun rejects a mismatch. Topology is immutable after New, so
// sharing one across concurrent runs is safe and cannot affect results.
func WithPrebuiltTopology(top *topology.Topology) RunOption {
	return func(o *runOptions) { o.top = top }
}

// Simulate builds the cluster, runs the workload for the configured
// duration plus drain, and returns the results. It is a thin wrapper
// over Run with a background context and default options.
func Simulate(cfg RunConfig) (*RunResult, error) {
	return Run(context.Background(), cfg)
}

// Run builds the cluster and runs the workload under socket-level
// instrumentation, with observability: the simulation advances in
// simulated-time batches, and at each batch boundary Run checks ctx,
// samples the Go runtime, and delivers a Progress report. On
// cancellation it returns an error wrapping ctx.Err() promptly (within
// one batch). The metrics snapshot lands in RunResult.Metrics.
func Run(ctx context.Context, cfg RunConfig, opts ...RunOption) (*RunResult, error) {
	p, err := prepareRun(cfg, opts...)
	if err != nil {
		return nil, err
	}
	return p.execute(ctx)
}

// preparedRun is a built-but-not-yet-run simulation: RunAnalyze splits
// Run at this seam so it can wire the collector's record sink and hand
// the RunResult to the analyzer before the event loop starts.
type preparedRun struct {
	rr *RunResult
	o  runOptions
	sw obs.Stopwatch

	// recordSink, when set, is fed the live record stream: the event
	// loop advances its watermark at every batch boundary. Set between
	// prepareRun and execute (see RunAnalyze).
	recordSink *trace.LiveSource
}

// prepareRun validates the config and builds the whole cluster —
// topology, network, collector, event log, store, scheduler — under the
// "build" obs phase, leaving the event loop to execute.
func prepareRun(cfg RunConfig, opts ...RunOption) (*preparedRun, error) {
	o := runOptions{progressEvery: time.Minute}
	for _, opt := range opts {
		opt(&o)
	}
	if !o.regSet {
		o.reg = obs.NewRegistry()
	}
	if o.progressEvery <= 0 {
		o.progressEvery = time.Minute
	}
	reg := o.reg
	sw := obs.NewStopwatch()

	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("core: non-positive duration %v", cfg.Duration)
	}
	if cfg.UtilBinSize <= 0 {
		cfg.UtilBinSize = time.Second
	}
	stopBuild := reg.StartPhase("build")
	top := o.top
	if top != nil && top.Config() != cfg.Topology {
		return nil, fmt.Errorf("core: prebuilt topology config %+v does not match run config %+v",
			top.Config(), cfg.Topology)
	}
	if top == nil {
		var err error
		top, err = topology.New(cfg.Topology)
		if err != nil {
			return nil, fmt.Errorf("core: topology: %w", err)
		}
	}
	net := netsim.New(top, netsim.Options{
		StatsBinSize:         cfg.UtilBinSize,
		MinRecomputeInterval: cfg.RateRecompute,
		FullRecompute:        cfg.FullRecompute,
		Workers:              cfg.Workers,
		Sequential:           cfg.Sequential,
		Exec:                 o.simExec,
	})
	collector := trace.NewCollector(top, cfg.Trace)
	net.AddObserver(collector)
	log := &eventlog.Log{}
	store := cosmos.NewStore(top, cfg.Store, stats.NewRNG(cfg.Seed).Fork("store"))
	schedCfg := cfg.Sched
	if schedCfg.Seed == 0 {
		schedCfg.Seed = cfg.Seed
	}
	cluster := sched.NewCluster(net, store, log, schedCfg)
	net.Instrument(reg)
	store.Instrument(reg)
	cluster.Instrument(reg)
	collector.Instrument(reg)
	cluster.Start(cfg.Duration)
	stopBuild()

	rr := &RunResult{
		Config:    cfg,
		Top:       top,
		Net:       net,
		Cluster:   cluster,
		Store:     store,
		Collector: collector,
		Log:       log,
	}
	return &preparedRun{rr: rr, o: o, sw: sw}, nil
}

// execute runs the prepared simulation's event loop to completion and
// finalizes the metrics snapshot.
func (p *preparedRun) execute(ctx context.Context) (*RunResult, error) {
	o := &p.o
	reg := o.reg
	rr := p.rr
	cfg := rr.Config
	net, collector, cluster := rr.Net, rr.Collector, rr.Cluster

	// The event loop, sliced into batches. Slicing is exact: running to
	// t1 then t2 executes the same events in the same order as one run
	// to t2, so batch size affects only observability granularity.
	stopSim := reg.StartPhase("simulate")
	total := cfg.Duration + cfg.DrainTime
	peakQueue := reg.Gauge("netsim.queue_depth_peak")
	peakFlows := reg.Gauge("netsim.active_flows_peak")
	for t := netsim.Time(0); t < total; {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: run canceled at simulated %v: %w", net.Now(), err)
		}
		t += o.progressEvery
		if t > total {
			t = total
		}
		net.Run(t)
		if p.recordSink != nil {
			// After Run(t) every pending event is strictly later than t,
			// so a record not yet emitted has Start > t or belongs to a
			// still-active flow; min(t+1, earliest active Start) is a
			// sound release watermark (see trace.LiveSource).
			w := t + 1
			if s, ok := net.EarliestActiveStart(); ok && s < w {
				w = s
			}
			p.recordSink.Advance(w)
		}
		peakQueue.SetMax(float64(net.Pending()))
		peakFlows.SetMax(float64(net.ActiveFlows()))
		var heap uint64
		if reg != nil || o.progress != nil {
			heap = reg.SampleRuntime().HeapBytes
		}
		if o.progress != nil {
			o.progress(Progress{
				SimTime:        t,
				SimDuration:    total,
				WallElapsed:    p.sw.Elapsed(),
				Events:         net.EventsProcessed(),
				QueueDepth:     net.Pending(),
				ActiveFlows:    net.ActiveFlows(),
				FlowsStarted:   net.FlowsStarted(),
				FlowsCompleted: net.FlowsCompleted(),
				Records:        collector.NumRecords(),
				Jobs:           len(cluster.Jobs()),
				TotalBytes:     net.TotalBytes(),
				HeapBytes:      heap,
			})
		}
	}
	net.Flush()
	stopSim()

	if reg != nil {
		reg.SampleRuntime()
		rr.Metrics = reg.Snapshot()
		if o.sink != nil {
			if err := rr.Metrics.WriteJSON(o.sink); err != nil {
				return nil, fmt.Errorf("core: metrics sink: %w", err)
			}
		}
	}
	return rr, nil
}
