// Package core orchestrates the full reproduction pipeline: build a
// cluster, run the workload under instrumentation, and regenerate every
// table and figure of the paper from the collected logs.
//
// The two entry points are Simulate (workload → socket-level logs) and
// Analyze (logs → Report, one field per figure). cmd/dcanalyze and
// bench_test.go are thin wrappers over these.
package core

import (
	"fmt"
	"time"

	"dctraffic/internal/cosmos"
	"dctraffic/internal/eventlog"
	"dctraffic/internal/netsim"
	"dctraffic/internal/sched"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// RunConfig assembles a full simulation.
type RunConfig struct {
	Topology topology.Config
	Store    cosmos.Config
	Sched    sched.Config
	Trace    trace.Config

	// Duration of the instrumented window.
	Duration netsim.Time

	// DrainTime lets in-flight work finish after the window (not
	// instrumented as part of Duration-based rates).
	DrainTime netsim.Time

	// UtilBinSize sizes the SNMP-like link counters (default 1 s).
	UtilBinSize netsim.Time

	// RateRecompute batches max-min recomputation for speed on long
	// runs (default exact).
	RateRecompute netsim.Time

	// FullRecompute disables the simulator's dirty-component allocator
	// and re-solves every flow on every recompute. Results are
	// identical; the knob exists for validation and A/B timing.
	FullRecompute bool

	Seed uint64
}

// SmallRun returns a laptop-scale configuration: the 80-server topology
// with a two-hour instrumented window.
func SmallRun() RunConfig {
	sc := sched.DefaultConfig()
	return RunConfig{
		Topology:    topology.SmallConfig(),
		Store:       cosmos.Config{ReplicationFactor: 3, ExtentBytes: 64 << 20},
		Sched:       sc,
		Duration:    2 * time.Hour,
		DrainTime:   30 * time.Minute,
		UtilBinSize: time.Second,
		Seed:        1,
	}
}

// PaperRun returns the paper-scale configuration: 75 racks × 20 servers
// and a full day. Expect minutes of wall-clock time and a few GB of RAM.
func PaperRun() RunConfig {
	sc := sched.DefaultConfig()
	sc.JobsPerHour = 900 // scale arrivals with cluster size
	sc.NumDatasets = 40
	return RunConfig{
		Topology:      topology.DefaultConfig(),
		Store:         cosmos.DefaultConfig(),
		Sched:         sc,
		Duration:      24 * time.Hour,
		DrainTime:     time.Hour,
		UtilBinSize:   time.Second,
		RateRecompute: 10 * time.Millisecond,
		Seed:          1,
	}
}

// RunResult carries everything a Simulate produced.
type RunResult struct {
	Config    RunConfig
	Top       *topology.Topology
	Net       *netsim.Network
	Cluster   *sched.Cluster
	Store     *cosmos.Store
	Collector *trace.Collector
	Log       *eventlog.Log
}

// Records returns the socket-level flow log.
func (r *RunResult) Records() []trace.FlowRecord { return r.Collector.Records() }

// Simulate builds the cluster, runs the workload for the configured
// duration plus drain, and returns the results.
func Simulate(cfg RunConfig) (*RunResult, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("core: non-positive duration %v", cfg.Duration)
	}
	if cfg.UtilBinSize <= 0 {
		cfg.UtilBinSize = time.Second
	}
	top, err := topology.New(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("core: topology: %w", err)
	}
	net := netsim.New(top, netsim.Options{
		StatsBinSize:         cfg.UtilBinSize,
		MinRecomputeInterval: cfg.RateRecompute,
		FullRecompute:        cfg.FullRecompute,
	})
	collector := trace.NewCollector(top, cfg.Trace)
	net.AddObserver(collector)
	log := &eventlog.Log{}
	store := cosmos.NewStore(top, cfg.Store, stats.NewRNG(cfg.Seed).Fork("store"))
	schedCfg := cfg.Sched
	if schedCfg.Seed == 0 {
		schedCfg.Seed = cfg.Seed
	}
	cluster := sched.NewCluster(net, store, log, schedCfg)
	cluster.Start(cfg.Duration)
	net.Run(cfg.Duration + cfg.DrainTime)
	net.Flush()
	return &RunResult{
		Config:    cfg,
		Top:       top,
		Net:       net,
		Cluster:   cluster,
		Store:     store,
		Collector: collector,
		Log:       log,
	}, nil
}
