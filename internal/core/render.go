package core

import (
	"fmt"
	"math"
	"strings"

	"dctraffic/internal/tm"
)

// Text renders the report's headline numbers as a human-readable summary,
// one section per figure, with the paper's reported values alongside for
// comparison.
func (r *Report) Text() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("== §2 Instrumentation overhead ==")
	w("  median CPU increase:        %.2f%%", r.Overhead.MedianCPUPct)
	w("  median disk increase:       %.2f%%", r.Overhead.MedianDiskPct)
	w("  cycles per network byte:    %.3f", r.Overhead.CyclesPerNetworkByte)
	w("  log volume per server/day:  %.2f GB (upload %.2f GB after %.1fx compression)",
		r.Overhead.LogBytesPerServerPerDay/1e9, r.Overhead.UploadBytesPerServerPerDay/1e9,
		r.Overhead.CompressionRatio)

	w("")
	w("== Fig 2: traffic patterns (window %v..%v) ==", r.Fig2.From, r.Fig2.To)
	w("  within-rack traffic share:  %.2f (work-seeks-bandwidth diagonal)", r.Fig2.Patterns.WithinRackFraction)
	w("  within-VLAN traffic share:  %.2f", r.Fig2.Patterns.WithinVLANFraction)
	w("  external traffic share:     %.3f (far corner)", r.Fig2.Patterns.ExternalFraction)
	w("  scatter-gather rows/cols:   %d", r.Fig2.Patterns.ScatterGatherRows)

	w("")
	w("== Fig 3: TM entry distribution ==")
	w("  P(zero | same rack):        %.3f   (paper ≈ 0.89)", r.Fig3.Entries.PZeroWithinRack)
	w("  P(zero | cross rack):       %.4f  (paper ≈ 0.995)", r.Fig3.Entries.PZeroAcrossRack)
	w("  non-zero entries:           %d within rack, %d across",
		len(r.Fig3.Entries.WithinRack), len(r.Fig3.Entries.AcrossRack))

	w("")
	w("== Fig 4: correspondents ==")
	w("  median within rack:         %.1f  (paper: 2)", r.Fig4.Stats.MedianWithinCount)
	w("  median outside rack:        %.1f  (paper: 4)", r.Fig4.Stats.MedianAcrossCount)

	w("")
	w("== Fig 5: where/when congestion happens ==")
	w("  inter-switch links:         %d", r.Fig5.LinksMonitored)
	w("  episodes detected:          %d", len(r.Fig5.Episodes))
	w("  links with ≥10s episode:    %.2f  (paper: 0.86)", r.Fig5.FracLinks10s)
	w("  links with ≥100s episode:   %.2f  (paper: 0.15)", r.Fig5.FracLinks100s)
	w("  mean concurrent hot links:  %.2f", r.Fig5.MeanConcurrent)
	w("  co-hot links (short eps):   %.2f over %d episodes (paper: correlated)",
		r.Fig5.Correlation.MeanCoHotShort, r.Fig5.Correlation.ShortEpisodes)
	w("  co-hot links (long eps):    %.2f over %d episodes (paper: localized)",
		r.Fig5.Correlation.MeanCoHotLong, r.Fig5.Correlation.LongEpisodes)

	w("")
	w("== Fig 6: congestion durations ==")
	w("  episodes:                   %d (longest %.0fs)", r.Fig6.Episodes, r.Fig6.LongestSec)
	w("  P(duration ≤ 10s):          %.2f  (paper: >0.9)", r.Fig6.FracUnder10)
	w("  episodes > 10s:             %d    (paper: 665 in a day)", r.Fig6.Over10s)

	w("")
	w("== Fig 7: flow rates under congestion ==")
	w("  median rate (overlapping):  %.3f Mbps", r.Fig7.MedianOverlapMbps)
	w("  median rate (all flows):    %.3f Mbps (paper: distributions nearly coincide)", r.Fig7.MedianAllMbps)

	w("")
	w("== Fig 8: read failures vs utilization (period %v) ==", r.Fig8.Period)
	for _, d := range r.Fig8.Days {
		w("  period %2d: congested=%5d clear=%6d  increase=%+.1f%%",
			d.Day, d.CongestedReads, d.ClearReads, d.IncreasePct)
	}
	w("  median increase:            %+.1f%%  (paper: ~110%%, i.e. 1.1x)", r.Fig8.MedianIncreasePct)

	w("")
	w("== Fig 9: flow durations ==")
	s := r.Fig9.Summary
	w("  flows:                      %d", s.NumFlows)
	w("  P(duration < 10s):          %.3f (paper: >0.8)", s.FracShorterThan10s)
	w("  P(duration > 200s):         %.4f (paper: <0.001)", s.FracLongerThan200s)
	w("  bytes in flows ≤ 25s:       %.2f (paper: >0.5)", s.BytesInFlowsUnder25s)

	w("")
	w("== Fig 10: traffic change over time (bin %v) ==", r.Fig10.Bin)
	w("  median |ΔTM|/|TM| at 10s:   %.2f", r.Fig10.MedianChange10s)
	w("  median |ΔTM|/|TM| at 100s:  %.2f (paper: large change despite flat totals)", r.Fig10.MedianChange100s)

	w("")
	w("== Fig 11: flow inter-arrivals ==")
	w("  cluster arrival rate:       %.0f flows/s", r.Fig11.ArrivalPerSec)
	w("  server-level mode spacing:  %.1f ms (paper: ~15 ms periodic modes)", r.Fig11.ModeMs)

	w("")
	w("== Fig 12: tomography error (RMSRE over top-75%% volume) ==")
	w("  TMs evaluated:              %d", r.Fig12.NumTMs)
	w("  tomogravity median:         %.2f (paper: 0.60, range 0.35–1.84)", r.Fig12.MedianTomogravity)
	w("  tomogravity+jobs median:    %.2f (paper: marginally better)", r.Fig12.MedianTomogravityJobs)
	w("  tomogravity+roles median:   %.2f (§5.3 future-work extension)", r.Fig12.MedianTomogravityRoles)
	w("  sparsity-max median:        %.2f (paper: worse than tomogravity)", r.Fig12.MedianSparsityMax)

	w("")
	w("== Fig 13: error vs ground-truth sparsity ==")
	w("  Pearson correlation:        %.2f (paper: negative)", r.Fig13.Pearson)
	w("  log fit y = %.2f %+.2f·ln(x)", r.Fig13.FitA, r.Fig13.FitB)

	w("")
	w("== Fig 14: sparsity of estimates (entries for 75%% volume) ==")
	w("  sparsity-max non-zeros:     %.0f mean (paper: ~150 ≈ 3%% at 75 ToRs)", r.Fig14.SparsityNonZeros)
	w("  heavy-hitter hits:          %.1f mean (paper: 5–20)", r.Fig14.HeavyHitterHits)

	w("")
	w("== §4.4 incast preconditions ==")
	w("  max simultaneous conns:     %d (paper default: 2)", r.Incast.MaxSimultaneousConnections)
	w("  flows within rack:          %.2f", r.Incast.FracFlowsWithinRack)
	w("  flows within VLAN:          %.2f", r.Incast.FracFlowsWithinVLAN)
	w("  mean concurrent hot links:  %.2f", r.Incast.MeanConcurrentCongestedLinks)
	w("  max synchronized fan-in:    %d senders/ms", r.Incast.MaxSyncFanIn)

	w("")
	w("== §4.2 attribution: who is on the hot links? ==")
	for _, k := range r.Attribution.Ranked() {
		w("  %-14s %5.1f%%", k.String(), r.Attribution.Share[k]*100)
	}
	w("  (paper: reduce-phase shuffles dominate; extract reads and evacuations")
	w("   are the unexpected contributors)")
	return b.String()
}

// HeatASCII renders a TM as an ASCII heat map of loge(Bytes) — a terminal
// rendition of Figure 2. Each cell aggregates a block of endpoints when
// the matrix is larger than width.
func HeatASCII(m *tm.Matrix, width int) string {
	if width <= 0 || width > m.N() {
		width = m.N()
	}
	block := (m.N() + width - 1) / width
	cells := make([][]float64, width)
	for i := range cells {
		cells[i] = make([]float64, width)
	}
	m.ForEach(func(s, d int, b float64) {
		i, j := s/block, d/block
		if i < width && j < width {
			cells[i][j] += b
		}
	})
	ramp := []byte(" .:-=+*#%@")
	var sb strings.Builder
	maxLog := 0.0
	for _, row := range cells {
		for _, v := range row {
			if v > 1 {
				if l := math.Log(v); l > maxLog {
					maxLog = l
				}
			}
		}
	}
	if maxLog == 0 {
		maxLog = 1
	}
	// Row = source, column = destination; origin top-left.
	for _, row := range cells {
		for _, v := range row {
			idx := 0
			if v > 1 {
				idx = int(math.Log(v) / maxLog * float64(len(ramp)-1))
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
				if idx < 1 {
					idx = 1
				}
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
