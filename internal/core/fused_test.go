package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"dctraffic/internal/obs"
)

// fusedTestConfig is the shortened simulation the fused tests share.
func fusedTestConfig(seed uint64) RunConfig {
	cfg := SmallRun()
	cfg.Duration = 20 * time.Minute
	cfg.DrainTime = 10 * time.Minute
	cfg.Seed = seed
	return cfg
}

// TestRunAnalyzeMatchesTwoPhase is the acceptance gate of the fused
// pipeline: RunAnalyze's report must be bit-identical to the two-phase
// simulate → materialize → analyze path, across seeds, GOMAXPROCS, the
// simulator's worker count, and the analyzer's worker count — including
// a leg with a tiny live buffer that forces backpressure stalls.
func TestRunAnalyzeMatchesTwoPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("a matrix of full simulations")
	}
	for _, seed := range []uint64{1, 7} {
		cfg := fusedTestConfig(seed)
		rr, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := reportDigest(t, mustAnalyze(t, rr, WithSequential()))

		prev := runtime.GOMAXPROCS(0)
		matrix := [][2]int{{1, 1}, {1, runtime.NumCPU()}, {runtime.NumCPU(), 1}, {runtime.NumCPU(), runtime.NumCPU()}}
		if seed != 1 {
			matrix = [][2]int{{runtime.NumCPU(), runtime.NumCPU()}} // cross-seed spot check
		}
		for _, m := range matrix {
			gmp, simWorkers := m[0], m[1]
			runtime.GOMAXPROCS(gmp)
			fcfg := cfg
			fcfg.Workers = simWorkers
			opts := []AnalyzeOption{WithParallelism(8)}
			if simWorkers == 1 {
				// A 256-record FIFO guarantees the simulator blocks on the
				// analyzer repeatedly; results must not change.
				opts = append(opts, WithLiveBuffer(256))
			}
			_, rep, err := RunAnalyze(context.Background(), fcfg, opts...)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				t.Fatalf("seed %d GOMAXPROCS=%d workers=%d: %v", seed, gmp, simWorkers, err)
			}
			if got := reportDigest(t, rep); got != want {
				runtime.GOMAXPROCS(prev)
				t.Fatalf("seed %d GOMAXPROCS=%d workers=%d: fused digest %s != two-phase %s",
					seed, gmp, simWorkers, got, want)
			}
		}
		runtime.GOMAXPROCS(prev)

		// The sequential-analyzer escape hatch through the fused path.
		_, rep, err := RunAnalyze(context.Background(), cfg, WithSequential())
		if err != nil {
			t.Fatal(err)
		}
		if got := reportDigest(t, rep); got != want {
			t.Fatalf("seed %d: sequential fused digest %s != two-phase %s", seed, got, want)
		}
	}
}

// TestRunAnalyzeReassemblyMatches covers the stateful windowed
// reassembler across the fused seam: §3 flow-boundary merging must not
// depend on whether records arrive from a sorted slice or live from the
// simulator.
func TestRunAnalyzeReassemblyMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("two full simulations")
	}
	cfg := fusedTestConfig(1)
	rr, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportDigest(t, mustAnalyze(t, rr, WithInactivityTimeout(60*time.Second)))
	_, rep, err := RunAnalyze(context.Background(), cfg, WithInactivityTimeout(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got := reportDigest(t, rep); got != want {
		t.Fatalf("fused reassembly digest %s != two-phase %s", got, want)
	}
}

// TestRunAnalyzeObservability checks the seam's metrics: the run
// registry must carry the trace.live.* gauges and the backpressure
// counter, with values consistent with a stream that actually flowed.
func TestRunAnalyzeObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	cfg := fusedTestConfig(1)
	reg := obs.NewRegistry()
	rr, _, err := RunAnalyze(context.Background(), cfg,
		WithRunOptions(WithObserver(reg)), WithLiveBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	snap := rr.Metrics
	if snap == nil {
		t.Fatal("no metrics snapshot")
	}
	if err := snap.Require("trace.live.", "pipeline."); err != nil {
		t.Fatal(err)
	}
	released := snap.Value("trace.live.released_total")
	if want := float64(len(rr.Records())); released != want {
		t.Fatalf("released_total %v, want %v (every record must pass through the seam)", released, want)
	}
	if peak := snap.Value("trace.live.buffered_peak"); peak <= 0 {
		t.Fatalf("buffered_peak %v, want > 0", peak)
	}
	if waits := snap.Value("pipeline.backpressure_waits"); waits <= 0 {
		t.Fatalf("backpressure_waits %v, want > 0 with a 64-record FIFO", waits)
	}
}

// TestRunAnalyzeCancellation cancels mid-stream and asserts the fused
// pipeline unwinds: RunAnalyze reports the cancellation (it joins the
// simulator goroutine before returning, so a hang here is a deadlock in
// the seam's error propagation).
func TestRunAnalyzeCancellation(t *testing.T) {
	cfg := fusedTestConfig(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := RunAnalyze(ctx, cfg,
			WithRunOptions(WithProgress(func(p Progress) {
				if p.SimTime >= 5*time.Minute {
					once.Do(cancel)
				}
			}), WithProgressInterval(time.Minute)))
		if err == nil {
			t.Error("canceled fused run: want error")
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled fused run: got %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("fused pipeline did not unwind after cancellation")
	}
}
