package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
)

// ReportDigest returns a hex SHA-256 fingerprint covering every field
// of the report: the headline JSON, the Figure 2 traffic-matrix entries
// bit-by-bit, and the formatted remainder of the struct (fmt prints
// maps in sorted key order, so the formatting is deterministic). Two
// reports produced by deterministically-equivalent executions — any
// worker count, streaming or in-memory, fleet or standalone — hash
// identically. The digest is what TestFleetMatchesStandalone asserts
// and what the dcsweep manifest records per run.
func ReportDigest(rep *Report) (string, error) {
	j, err := rep.JSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(j)
	if rep.Fig2.TM != nil {
		rep.Fig2.TM.ForEach(func(src, dst int, bytes float64) {
			fmt.Fprintf(h, "%d %d %x\n", src, dst, math.Float64bits(bytes))
		})
	}
	cp := *rep
	cp.Fig2.TM = nil
	fmt.Fprintf(h, "%+v", cp)
	return hex.EncodeToString(h.Sum(nil)), nil
}
