package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"testing"
	"time"

	"dctraffic/internal/obs"
)

// shortCfg is the shared shortened configuration for the Run API tests.
func shortCfg() RunConfig {
	cfg := SmallRun()
	cfg.Duration = 20 * time.Minute
	cfg.DrainTime = 10 * time.Minute
	return cfg
}

func digestOf(t *testing.T, rr *RunResult) string {
	t.Helper()
	h := sha256.New()
	for _, r := range rr.Records() {
		fmt.Fprintf(h, "%d %d %d %d %d %d %d %d %v\n",
			r.ID, r.Src, r.Dst, r.SrcPort, r.DstPort, r.Start, r.End, r.Bytes, r.Tag)
	}
	j, err := mustAnalyze(t, rr).JSON()
	if err != nil {
		t.Fatal(err)
	}
	h.Write(j)
	return hex.EncodeToString(h.Sum(nil))
}

// The obs contract: attaching or detaching the observability layer must
// not change simulation results. Same seed, observer on (with an
// aggressive progress interval, to stress batch slicing) vs observer
// off — bit-identical trace digests.
func TestObserverOnOffDigestIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two shortened simulations")
	}
	on, err := Run(context.Background(), shortCfg(),
		WithProgressInterval(13*time.Second), // deliberately odd batch size
		WithProgress(func(Progress) {}))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(context.Background(), shortCfg(), WithObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	if off.Metrics != nil {
		t.Fatal("WithObserver(nil) should disable metrics collection")
	}
	if on.Metrics == nil {
		t.Fatal("default Run should collect metrics")
	}
	if dOn, dOff := digestOf(t, on), digestOf(t, off); dOn != dOff {
		t.Fatalf("observer changed simulation results:\n  on:  %s\n  off: %s", dOn, dOff)
	}
}

func TestRunMetricsSnapshot(t *testing.T) {
	var sink bytes.Buffer
	rr, err := Run(context.Background(), shortCfg(), WithMetricsSink(&sink))
	if err != nil {
		t.Fatal(err)
	}
	snap := rr.Metrics
	if snap == nil {
		t.Fatal("no metrics snapshot")
	}
	if err := snap.Require("netsim.", "cosmos.", "scope.", "trace.", "runtime."); err != nil {
		t.Fatal(err)
	}
	// Cross-check against ground truth the result exposes directly.
	if got, want := snap.Value("trace.records_total"), float64(len(rr.Records())); got != want {
		t.Fatalf("trace.records_total = %v, want %v", got, want)
	}
	if got, want := snap.Value("netsim.bytes_total"), rr.Net.TotalBytes(); got != want {
		t.Fatalf("netsim.bytes_total = %v, want %v", got, want)
	}
	if snap.Value("netsim.events_total") <= 0 || snap.Value("scope.jobs_submitted_total") <= 0 {
		t.Fatal("hot-path counters did not move")
	}
	if len(snap.Phases) < 2 {
		t.Fatalf("want build+simulate phases, got %v", snap.Phases)
	}
	// The sink got the same snapshot, as parseable JSON.
	parsed, err := obs.ReadSnapshot(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Series) != len(snap.Series) {
		t.Fatalf("sink snapshot has %d series, result has %d", len(parsed.Series), len(snap.Series))
	}
}

func TestRunProgressReports(t *testing.T) {
	var reports []Progress
	cfg := shortCfg()
	_, err := Run(context.Background(), cfg,
		WithProgressInterval(10*time.Minute),
		WithProgress(func(p Progress) { reports = append(reports, p) }))
	if err != nil {
		t.Fatal(err)
	}
	// 30 simulated minutes at one report per 10 → exactly 3.
	if len(reports) != 3 {
		t.Fatalf("got %d progress reports, want 3", len(reports))
	}
	last := reports[len(reports)-1]
	if last.SimTime != cfg.Duration+cfg.DrainTime || last.Frac() != 1 {
		t.Fatalf("final report not at end of run: %+v", last)
	}
	if last.Events == 0 || last.FlowsCompleted == 0 || last.HeapBytes == 0 {
		t.Fatalf("final report missing counters: %+v", last)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].SimTime <= reports[i-1].SimTime {
			t.Fatal("progress sim time not monotone")
		}
	}
}

// Cancellation must surface promptly (within one batch) and wrap
// context.Canceled so callers can errors.Is it.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	rr, err := Run(ctx, shortCfg(),
		WithProgressInterval(time.Minute),
		WithProgress(func(Progress) {
			calls++
			if calls == 2 {
				cancel()
			}
		}))
	if rr != nil || err == nil {
		t.Fatal("canceled run should fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if calls != 2 {
		t.Fatalf("run kept going after cancel: %d progress calls", calls)
	}
}

// An already-canceled context returns before any simulation work.
func TestRunPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, shortCfg()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunMetricsSinkError(t *testing.T) {
	_, err := Run(context.Background(), shortCfg(), WithMetricsSink(failWriter{}))
	if err == nil || !errors.Is(err, errSink) {
		t.Fatalf("sink failure not surfaced: %v", err)
	}
}

var errSink = errors.New("sink broken")

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errSink }
