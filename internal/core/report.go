package core

import (
	"time"

	"dctraffic/internal/congestion"
	"dctraffic/internal/flows"
	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/tomo"
	"dctraffic/internal/trace"
)

// AnalyzeOptions tunes the per-figure analyses. ApplyDefaults fills zero
// fields.
type AnalyzeOptions struct {
	// Fig2Window is the short window whose server TM shows the patterns
	// (paper: 10 s).
	Fig2Window netsim.Time
	// Fig2At is the window start (default: mid-run).
	Fig2At netsim.Time

	// CongestionThreshold is C (default 0.7).
	CongestionThreshold float64

	// Fig8Period groups read attempts (paper: one day). For runs
	// shorter than two periods it is shrunk to duration/8.
	Fig8Period netsim.Time

	// Fig10Bin is the fine TM timescale (paper: 10 s) whose lag-1 and
	// lag-10 changes give the τ=10 s and τ=100 s curves.
	Fig10Bin netsim.Time

	// InactivityTimeout, when positive, applies the §3 flow-boundary
	// methodology before the flow-level analyses (Figures 9 and 11):
	// records sharing a five-tuple quiet for less than the timeout merge
	// into one flow. The simulator has exact flow boundaries, so this is
	// off by default; turn it on to study the methodology's effect.
	InactivityTimeout netsim.Time

	// TomoBin is the tomography TM timescale (paper: 10 min averages).
	TomoBin netsim.Time
	// TomoMaxTMs caps the number of tomography instances analyzed.
	TomoMaxTMs int
	// JobPriorAlpha scales the §5.3 multiplier.
	JobPriorAlpha float64
}

// ApplyDefaults returns o with zero fields replaced by defaults scaled to
// the run duration.
func (o AnalyzeOptions) ApplyDefaults(duration netsim.Time) AnalyzeOptions {
	if o.Fig2Window <= 0 {
		o.Fig2Window = 10 * time.Second
	}
	if o.Fig2At <= 0 {
		o.Fig2At = duration / 2
	}
	if o.CongestionThreshold <= 0 {
		o.CongestionThreshold = congestion.DefaultThreshold
	}
	if o.Fig8Period <= 0 {
		o.Fig8Period = 24 * time.Hour
		if duration < 2*o.Fig8Period {
			o.Fig8Period = duration / 8
			if o.Fig8Period <= 0 {
				o.Fig8Period = duration
			}
		}
	}
	if o.Fig10Bin <= 0 {
		o.Fig10Bin = 10 * time.Second
	}
	if o.TomoBin <= 0 {
		o.TomoBin = 10 * time.Minute
		if duration < 12*o.TomoBin {
			o.TomoBin = duration / 12
			if o.TomoBin <= 0 {
				o.TomoBin = duration
			}
		}
	}
	if o.TomoMaxTMs <= 0 {
		o.TomoMaxTMs = 144 // a day of 10-minute TMs
	}
	if o.JobPriorAlpha <= 0 {
		o.JobPriorAlpha = 4
	}
	return o
}

// Report holds the regenerated data for every figure in the paper.
type Report struct {
	Overhead trace.Overhead

	Fig2  Fig2Data
	Fig3  Fig3Data
	Fig4  Fig4Data
	Fig5  Fig5Data
	Fig6  Fig6Data
	Fig7  Fig7Data
	Fig8  Fig8Data
	Fig9  Fig9Data
	Fig10 Fig10Data
	Fig11 Fig11Data
	Fig12 Fig12Data
	Fig13 Fig13Data
	Fig14 Fig14Data

	Incast congestion.IncastAudit

	// Attribution is §4.2's network↔application join: which flow kinds'
	// bytes were on links while they ran hot.
	Attribution congestion.Attribution
}

// Fig2Data is the macroscopic TM snapshot: work-seeks-bandwidth +
// scatter-gather.
type Fig2Data struct {
	From, To netsim.Time
	TM       *tm.Matrix
	Patterns tm.PatternSummary
}

// Fig3Data is the distribution of non-zero TM entries by rack locality.
type Fig3Data struct {
	Entries       tm.EntryStats
	WithinDensity []stats.Point // density over loge(Bytes)
	AcrossDensity []stats.Point
}

// Fig4Data is the correspondents analysis.
type Fig4Data struct {
	Stats     tm.CorrespondentStats
	WithinCDF []stats.Point // CDF of fraction of in-rack correspondents
	AcrossCDF []stats.Point
}

// Fig5Data is when-and-where congestion happens.
type Fig5Data struct {
	Episodes       []congestion.Episode
	LinksMonitored int
	FracLinks10s   float64 // paper: 0.86
	FracLinks100s  float64 // paper: 0.15
	// MeanConcurrentShort counts how many links are simultaneously hot
	// during short episodes (correlation claim).
	MeanConcurrent float64
	// Correlation splits co-hot link counts by episode length (the paper:
	// short periods correlate across links, long ones localize).
	Correlation congestion.CorrelationStats
}

// Fig6Data is the congestion-episode duration distribution.
type Fig6Data struct {
	DurationCDF []stats.Point // seconds
	Episodes    int
	Over10s     int
	LongestSec  float64
	FracUnder10 float64 // of episodes >= 1s (paper: >90%)
}

// Fig7Data compares rates of congestion-overlapping flows to all flows.
type Fig7Data struct {
	OverlapCDF        []stats.Point // Mbps
	AllCDF            []stats.Point
	MedianOverlapMbps float64
	MedianAllMbps     float64
}

// Fig8Data is the read-failure impact of high utilization.
type Fig8Data struct {
	Period            netsim.Time
	Days              []congestion.DayImpact
	MedianIncreasePct float64
}

// Fig9Data is the flow-duration distribution.
type Fig9Data struct {
	ByFlowsCDF []stats.Point // seconds
	ByBytesCDF []stats.Point
	Summary    flows.Summary
}

// Fig10Data is traffic change over time.
type Fig10Data struct {
	Bin              netsim.Time
	Magnitude        []stats.Point // x: seconds, y: bytes/s
	Change10s        []float64     // lag-1 normalized change
	Change100s       []float64     // lag-10
	MedianChange10s  float64
	MedianChange100s float64
}

// Fig11Data is the inter-arrival analysis.
type Fig11Data struct {
	ClusterCDF    []stats.Point // ms
	TorCDF        []stats.Point
	ServerCDF     []stats.Point
	ModeMs        float64 // dominant short-gap mode at servers (paper ~15 ms)
	ArrivalPerSec float64
}

// Fig12Data is the tomography error comparison.
type Fig12Data struct {
	NumTMs                 int
	Tomogravity            []float64 // RMSRE per TM
	TomogravityJobs        []float64
	TomogravityRoles       []float64 // §5.3 future-work extension: phase-directed prior
	SparsityMax            []float64
	MedianTomogravity      float64
	MedianTomogravityJobs  float64
	MedianTomogravityRoles float64
	MedianSparsityMax      float64
}

// Fig13Data correlates tomogravity error with ground-truth sparsity.
type Fig13Data struct {
	// Per TM: x = fraction of entries for 75% volume, y = RMSRE.
	Points  []stats.Point
	Pearson float64
	// LogFit y = A + B·ln x (paper overlays a logarithmic best fit).
	FitA, FitB float64
}

// Fig14Data compares the sparsity of truth and estimates.
type Fig14Data struct {
	TruthCDF       []stats.Point // fraction of entries for 75% volume
	TomogravityCDF []stats.Point
	JobsCDF        []stats.Point
	SparsityCDF    []stats.Point
	// SparsityNonZeros is the mean non-zero count of sparsity-max
	// estimates (paper: ~150 ≈ 3% of entries at 75 ToRs).
	SparsityNonZeros float64
	// HeavyHitterHits is the mean number of sparsity-max non-zeros that
	// land on true 97th-percentile entries (paper: only 5–20).
	HeavyHitterHits float64
}

// Analyze regenerates every figure from a run.
func Analyze(rr *RunResult, opts AnalyzeOptions) *Report {
	opts = opts.ApplyDefaults(rr.Config.Duration)
	records := rr.Records()
	top := rr.Top
	duration := rr.Config.Duration
	rep := &Report{}

	rep.Overhead = rr.Collector.Overhead(duration)
	// Replace the model's compression constant with the ratio actually
	// achieved on this run's log sample.
	if ratio, err := rr.Collector.MeasuredCompression(0); err == nil && ratio > 0 {
		rep.Overhead.CompressionRatio = ratio
		rep.Overhead.UploadBytesPerServerPerDay = rep.Overhead.LogBytesPerServerPerDay / ratio
	}

	// Figure 2. The heat-map TM is the paper's 10 s snapshot; the pattern
	// shares are computed over a 10×-longer window so they are stable
	// (a single 10 s window is dominated by whichever shuffle is active).
	fig2TM := tm.ServerMatrix(records, top.NumHosts(), opts.Fig2At, opts.Fig2At+opts.Fig2Window)
	fig34TM := tm.ServerMatrix(records, top.NumHosts(), opts.Fig2At, opts.Fig2At+10*opts.Fig2Window)
	rep.Fig2 = Fig2Data{
		From: opts.Fig2At, To: opts.Fig2At + opts.Fig2Window,
		TM:       fig2TM,
		Patterns: tm.SummarizePatterns(fig34TM, top),
	}
	// Figures 3 and 4: a single window at this cluster scale is dominated
	// by whatever burst (shuffle, evacuation) happens to be active, so the
	// statistics are pooled over windows sampled across the whole run —
	// the paper's distributions likewise aggregate over many TMs.
	const fig34Samples = 16
	var es tm.EntryStats
	var zeroWithin, zeroAcross float64
	var fracWithin, fracAcross, withinCounts, acrossCounts []float64
	sampleWindow := 10 * opts.Fig2Window
	for k := 0; k < fig34Samples; k++ {
		from := duration * netsim.Time(k) / fig34Samples
		w := tm.ServerMatrix(records, top.NumHosts(), from, from+sampleWindow)
		if w.NonZero() == 0 {
			continue
		}
		wes := tm.ComputeEntryStats(w, top)
		es.WithinRack = append(es.WithinRack, wes.WithinRack...)
		es.AcrossRack = append(es.AcrossRack, wes.AcrossRack...)
		zeroWithin += wes.PZeroWithinRack
		zeroAcross += wes.PZeroAcrossRack
		wcs := tm.ComputeCorrespondents(w, top)
		fracWithin = append(fracWithin, wcs.FracWithin...)
		fracAcross = append(fracAcross, wcs.FracAcross...)
		withinCounts = append(withinCounts, wcs.MedianWithinCount)
		acrossCounts = append(acrossCounts, wcs.MedianAcrossCount)
	}
	if n := len(withinCounts); n > 0 {
		es.PZeroWithinRack = zeroWithin / float64(n)
		es.PZeroAcrossRack = zeroAcross / float64(n)
	}
	wd, ad := es.LogHistograms(30)
	rep.Fig3 = Fig3Data{Entries: es, WithinDensity: wd, AcrossDensity: ad}

	rep.Fig4 = Fig4Data{
		Stats: tm.CorrespondentStats{
			FracWithin:        fracWithin,
			FracAcross:        fracAcross,
			MedianWithinCount: stats.Median(withinCounts),
			MedianAcrossCount: stats.Median(acrossCounts),
		},
		WithinCDF: stats.NewCDF(fracWithin).Points(50),
		AcrossCDF: stats.NewCDF(fracAcross).Points(50),
	}

	// Figures 5–6: congestion on inter-switch links.
	links := top.InterSwitchLinks()
	eps := congestion.Detect(rr.Net.Stats(), top, opts.CongestionThreshold, links)
	conc := congestion.ConcurrencySeries(eps, rr.Net.Stats().BinSize(), duration)
	meanConc := 0.0
	if len(conc) > 0 {
		s := 0
		for _, v := range conc {
			s += v
		}
		meanConc = float64(s) / float64(len(conc))
	}
	rep.Fig5 = Fig5Data{
		Episodes:       eps,
		LinksMonitored: len(links),
		FracLinks10s:   congestion.FracLinksWithEpisodeAtLeast(eps, links, 10*time.Second),
		FracLinks100s:  congestion.FracLinksWithEpisodeAtLeast(eps, links, 100*time.Second),
		MeanConcurrent: meanConc,
		Correlation:    congestion.Correlate(eps),
	}

	durCDF, over10, longest := congestion.DurationStats(eps)
	rep.Fig6 = Fig6Data{
		DurationCDF: durCDF.Points(100),
		Episodes:    durCDF.N(),
		Over10s:     over10,
		LongestSec:  longest,
		FracUnder10: durCDF.P(10),
	}

	// Figure 7.
	overlap, all := congestion.OverlapRateCDFs(records, eps, top)
	rep.Fig7 = Fig7Data{
		OverlapCDF:        overlap.Points(100),
		AllCDF:            all.Points(100),
		MedianOverlapMbps: overlap.Quantile(0.5),
		MedianAllMbps:     all.Quantile(0.5),
	}

	// Figure 8.
	numPeriods := int(duration / opts.Fig8Period)
	if numPeriods < 1 {
		numPeriods = 1
	}
	days := congestion.ReadFailureImpact(rr.Log, records, eps, top, opts.Fig8Period, numPeriods)
	var increases []float64
	for _, d := range days {
		if d.CongestedReads > 0 && d.ClearReads > 0 {
			increases = append(increases, d.IncreasePct)
		}
	}
	rep.Fig8 = Fig8Data{Period: opts.Fig8Period, Days: days, MedianIncreasePct: stats.Median(increases)}

	// Figure 9. Optionally apply the §3 inactivity-timeout methodology
	// first.
	flowRecords := records
	if opts.InactivityTimeout > 0 {
		flowRecords = flows.Reassemble(records, opts.InactivityTimeout)
	}
	byFlows, byBytes := flows.DurationCDFs(flowRecords)
	rep.Fig9 = Fig9Data{
		ByFlowsCDF: byFlows.Points(100),
		ByBytesCDF: byBytes.Points(100),
		Summary:    flows.Summarize(flowRecords, duration),
	}

	// Figure 10.
	series := tm.ServerSeries(records, top.NumHosts(), opts.Fig10Bin, duration)
	mag := tm.MagnitudeSeries(series)
	magPts := make([]stats.Point, len(mag))
	binSec := opts.Fig10Bin.Seconds()
	for i, v := range mag {
		magPts[i] = stats.Point{X: float64(i) * binSec, Y: v / binSec}
	}
	ch10 := tm.ChangeSeries(series, 1)
	ch100 := tm.ChangeSeries(series, 10)
	rep.Fig10 = Fig10Data{
		Bin:              opts.Fig10Bin,
		Magnitude:        magPts,
		Change10s:        ch10,
		Change100s:       ch100,
		MedianChange10s:  stats.Median(nonZero(ch10)),
		MedianChange100s: stats.Median(nonZero(ch100)),
	}

	// Figure 11.
	cluster := flows.ClusterInterArrivals(flowRecords)
	torGaps := flows.TorInterArrivals(flowRecords, top)
	serverGaps := flows.ServerInterArrivals(flowRecords, top)
	rep.Fig11 = Fig11Data{
		ClusterCDF:    stats.NewCDF(cluster).Points(100),
		TorCDF:        stats.NewCDF(torGaps).Points(100),
		ServerCDF:     stats.NewCDF(serverGaps).Points(100),
		ModeMs:        flows.ModeSpacing(serverGaps, 2, 100, 196),
		ArrivalPerSec: flows.ArrivalRatePerSec(records, duration),
	}

	// Figures 12–14: tomography over ToR TMs.
	rep.Fig12, rep.Fig13, rep.Fig14 = analyzeTomography(rr, records, opts)

	// §4.4 audit.
	rep.Incast = congestion.AuditIncast(records, top, eps, rr.Net.Stats().BinSize(), duration,
		rr.Cluster.Config().MaxConnsPerVertex)

	// §4.2 attribution.
	rep.Attribution = congestion.Attribute(records, eps, top)

	return rep
}

// analyzeTomography evaluates the three estimators over a day of ToR TMs.
func analyzeTomography(rr *RunResult, records []trace.FlowRecord, opts AnalyzeOptions) (Fig12Data, Fig13Data, Fig14Data) {
	top := rr.Top
	duration := rr.Config.Duration
	problem := tomo.NewProblem(top)
	series := tm.TorSeries(records, top, opts.TomoBin, duration)
	if len(series) > opts.TomoMaxTMs {
		series = series[:opts.TomoMaxTMs]
	}
	var f12 Fig12Data
	var f13 Fig13Data
	truthCDF, tgCDF, jobsCDF, smCDF := &stats.CDF{}, &stats.CDF{}, &stats.CDF{}, &stats.CDF{}
	var smNonZeros, smHits []float64
	var xs, ys []float64
	for i, truth := range series {
		if truth.Total() <= 0 {
			continue
		}
		b := problem.LinkCounts(truth)
		xTrue := problem.VecFromTM(truth)

		tg, err := problem.Tomogravity(b)
		if err != nil {
			continue
		}
		from := netsim.Time(i) * opts.TomoBin
		mult := tomo.JobMultiplier(rr.Log, top, from, from+opts.TomoBin, opts.JobPriorAlpha)
		tj, err := problem.TomogravityWithMultiplier(b, mult)
		if err != nil {
			continue
		}
		roleMult := tomo.RoleAwareMultiplier(rr.Log, top, from, from+opts.TomoBin, opts.JobPriorAlpha)
		tr, err := problem.TomogravityWithMultiplier(b, roleMult)
		if err != nil {
			continue
		}
		sm, err := problem.SparsityMax(b)
		if err != nil {
			continue
		}

		f12.NumTMs++
		eTG := tomo.RMSRE(xTrue, tg, 0.75)
		f12.Tomogravity = append(f12.Tomogravity, eTG)
		f12.TomogravityJobs = append(f12.TomogravityJobs, tomo.RMSRE(xTrue, tj, 0.75))
		f12.TomogravityRoles = append(f12.TomogravityRoles, tomo.RMSRE(xTrue, tr, 0.75))
		f12.SparsityMax = append(f12.SparsityMax, tomo.RMSRE(xTrue, sm, 0.75))

		_, fracTrue := tomo.SparsityOfVec(xTrue, 0.75)
		_, fracTG := tomo.SparsityOfVec(tg, 0.75)
		_, fracTJ := tomo.SparsityOfVec(tj, 0.75)
		_, fracSM := tomo.SparsityOfVec(sm, 0.75)
		truthCDF.Add(fracTrue)
		tgCDF.Add(fracTG)
		jobsCDF.Add(fracTJ)
		smCDF.Add(fracSM)
		smNonZeros = append(smNonZeros, float64(tomo.NonZeroCount(sm)))
		smHits = append(smHits, float64(tomo.HeavyHitterOverlap(xTrue, sm, 97)))

		xs = append(xs, fracTrue)
		ys = append(ys, eTG)
	}
	f12.MedianTomogravity = stats.Median(f12.Tomogravity)
	f12.MedianTomogravityJobs = stats.Median(f12.TomogravityJobs)
	f12.MedianTomogravityRoles = stats.Median(f12.TomogravityRoles)
	f12.MedianSparsityMax = stats.Median(f12.SparsityMax)

	for i := range xs {
		f13.Points = append(f13.Points, stats.Point{X: xs[i], Y: ys[i]})
	}
	if len(xs) >= 2 {
		f13.Pearson = stats.Pearson(xs, ys)
		f13.FitA, f13.FitB = stats.LogFit(xs, ys)
	}

	f14 := Fig14Data{
		TruthCDF:         truthCDF.Points(50),
		TomogravityCDF:   tgCDF.Points(50),
		JobsCDF:          jobsCDF.Points(50),
		SparsityCDF:      smCDF.Points(50),
		SparsityNonZeros: stats.Mean(smNonZeros),
		HeavyHitterHits:  stats.Mean(smHits),
	}
	return f12, f13, f14
}

func nonZero(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if x != 0 {
			out = append(out, x)
		}
	}
	return out
}
