package core

import (
	"context"
	"time"

	"dctraffic/internal/congestion"
	"dctraffic/internal/flows"
	"dctraffic/internal/netsim"
	"dctraffic/internal/obs"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/trace"
)

// AnalyzeOptions tunes the per-figure analyses. ApplyDefaults fills zero
// fields. It remains the underlying knob set of the streaming pipeline
// (AnalyzeSource's config embeds it), but callers should prefer the
// equivalent WithX functional options.
//
// Deprecated: configure AnalyzeRun/AnalyzeSource with AnalyzeOption
// values instead of passing this struct to Analyze/AnalyzeContext.
type AnalyzeOptions struct {
	// Parallelism bounds the worker goroutines of the analysis pipeline.
	// 0 means runtime.GOMAXPROCS(0). Any value yields bit-identical
	// results (see parallel.go's determinism contract): workers only
	// decide how many of the fixed task graph's tasks run at once.
	Parallelism int

	// Sequential forces Parallelism 1 — the escape hatch for debugging
	// and for timing the pipeline without concurrency. The same sharded
	// algorithm runs on a single goroutine, so results are identical.
	Sequential bool

	// Observer, when non-nil, receives per-stage wall-clock phases
	// ("analyze.index", "analyze.figures", "analyze.congestion") and
	// pipeline counters. Like the simulator's registry it must not be
	// read concurrently; the pipeline touches it only from the
	// coordinating goroutine.
	Observer *obs.Registry

	// Fig2Window is the short window whose server TM shows the patterns
	// (paper: 10 s).
	Fig2Window netsim.Time
	// Fig2At is the window start (default: mid-run).
	Fig2At netsim.Time

	// CongestionThreshold is C (default 0.7).
	CongestionThreshold float64

	// Fig8Period groups read attempts (paper: one day). For runs
	// shorter than two periods it is shrunk to duration/8.
	Fig8Period netsim.Time

	// Fig10Bin is the fine TM timescale (paper: 10 s) whose lag-1 and
	// lag-10 changes give the τ=10 s and τ=100 s curves.
	Fig10Bin netsim.Time

	// InactivityTimeout, when positive, applies the §3 flow-boundary
	// methodology before the flow-level analyses (Figures 9 and 11):
	// records sharing a five-tuple quiet for less than the timeout merge
	// into one flow. The simulator has exact flow boundaries, so this is
	// off by default; turn it on to study the methodology's effect.
	InactivityTimeout netsim.Time

	// TomoBin is the tomography TM timescale (paper: 10 min averages).
	TomoBin netsim.Time
	// TomoMaxTMs caps the number of tomography instances analyzed.
	TomoMaxTMs int
	// JobPriorAlpha scales the §5.3 multiplier.
	JobPriorAlpha float64
	// TomoCold disables warm-starting the sparsity-max simplex across
	// consecutive tomography windows. Warm starts (the default) return a
	// different — equally valid — basic feasible solution for some
	// windows, which shifts the sparsity-max figure series; TomoCold
	// reproduces the pre-warm-start digests exactly. Tomogravity series
	// are bit-identical either way.
	TomoCold bool
}

// ApplyDefaults returns o with zero fields replaced by defaults scaled to
// the run duration.
func (o AnalyzeOptions) ApplyDefaults(duration netsim.Time) AnalyzeOptions {
	if o.Fig2Window <= 0 {
		o.Fig2Window = 10 * time.Second
	}
	if o.Fig2At <= 0 {
		o.Fig2At = duration / 2
	}
	if o.CongestionThreshold <= 0 {
		o.CongestionThreshold = congestion.DefaultThreshold
	}
	if o.Fig8Period <= 0 {
		o.Fig8Period = 24 * time.Hour
		if duration < 2*o.Fig8Period {
			o.Fig8Period = duration / 8
			if o.Fig8Period <= 0 {
				o.Fig8Period = duration
			}
		}
	}
	if o.Fig10Bin <= 0 {
		o.Fig10Bin = 10 * time.Second
	}
	if o.TomoBin <= 0 {
		o.TomoBin = 10 * time.Minute
		if duration < 12*o.TomoBin {
			o.TomoBin = duration / 12
			if o.TomoBin <= 0 {
				o.TomoBin = duration
			}
		}
	}
	if o.TomoMaxTMs <= 0 {
		o.TomoMaxTMs = 144 // a day of 10-minute TMs
	}
	if o.JobPriorAlpha <= 0 {
		o.JobPriorAlpha = 4
	}
	return o
}

// Report holds the regenerated data for every figure in the paper.
type Report struct {
	Overhead trace.Overhead

	Fig2  Fig2Data
	Fig3  Fig3Data
	Fig4  Fig4Data
	Fig5  Fig5Data
	Fig6  Fig6Data
	Fig7  Fig7Data
	Fig8  Fig8Data
	Fig9  Fig9Data
	Fig10 Fig10Data
	Fig11 Fig11Data
	Fig12 Fig12Data
	Fig13 Fig13Data
	Fig14 Fig14Data

	Incast congestion.IncastAudit

	// Attribution is §4.2's network↔application join: which flow kinds'
	// bytes were on links while they ran hot.
	Attribution congestion.Attribution
}

// Fig2Data is the macroscopic TM snapshot: work-seeks-bandwidth +
// scatter-gather.
type Fig2Data struct {
	From, To netsim.Time
	TM       *tm.Matrix
	Patterns tm.PatternSummary
}

// Fig3Data is the distribution of non-zero TM entries by rack locality.
type Fig3Data struct {
	Entries       tm.EntryStats
	WithinDensity []stats.Point // density over loge(Bytes)
	AcrossDensity []stats.Point
}

// Fig4Data is the correspondents analysis.
type Fig4Data struct {
	Stats     tm.CorrespondentStats
	WithinCDF []stats.Point // CDF of fraction of in-rack correspondents
	AcrossCDF []stats.Point
}

// Fig5Data is when-and-where congestion happens.
type Fig5Data struct {
	Episodes       []congestion.Episode
	LinksMonitored int
	FracLinks10s   float64 // paper: 0.86
	FracLinks100s  float64 // paper: 0.15
	// MeanConcurrentShort counts how many links are simultaneously hot
	// during short episodes (correlation claim).
	MeanConcurrent float64
	// Correlation splits co-hot link counts by episode length (the paper:
	// short periods correlate across links, long ones localize).
	Correlation congestion.CorrelationStats
}

// Fig6Data is the congestion-episode duration distribution.
type Fig6Data struct {
	DurationCDF []stats.Point // seconds
	Episodes    int
	Over10s     int
	LongestSec  float64
	FracUnder10 float64 // of episodes >= 1s (paper: >90%)
}

// Fig7Data compares rates of congestion-overlapping flows to all flows.
type Fig7Data struct {
	OverlapCDF        []stats.Point // Mbps
	AllCDF            []stats.Point
	MedianOverlapMbps float64
	MedianAllMbps     float64
}

// Fig8Data is the read-failure impact of high utilization.
type Fig8Data struct {
	Period            netsim.Time
	Days              []congestion.DayImpact
	MedianIncreasePct float64
}

// Fig9Data is the flow-duration distribution.
type Fig9Data struct {
	ByFlowsCDF []stats.Point // seconds
	ByBytesCDF []stats.Point
	Summary    flows.Summary
}

// Fig10Data is traffic change over time.
type Fig10Data struct {
	Bin              netsim.Time
	Magnitude        []stats.Point // x: seconds, y: bytes/s
	Change10s        []float64     // lag-1 normalized change
	Change100s       []float64     // lag-10
	MedianChange10s  float64
	MedianChange100s float64
}

// Fig11Data is the inter-arrival analysis.
type Fig11Data struct {
	ClusterCDF    []stats.Point // ms
	TorCDF        []stats.Point
	ServerCDF     []stats.Point
	ModeMs        float64 // dominant short-gap mode at servers (paper ~15 ms)
	ArrivalPerSec float64
}

// Fig12Data is the tomography error comparison.
type Fig12Data struct {
	NumTMs                 int
	Tomogravity            []float64 // RMSRE per TM
	TomogravityJobs        []float64
	TomogravityRoles       []float64 // §5.3 future-work extension: phase-directed prior
	SparsityMax            []float64
	MedianTomogravity      float64
	MedianTomogravityJobs  float64
	MedianTomogravityRoles float64
	MedianSparsityMax      float64
}

// Fig13Data correlates tomogravity error with ground-truth sparsity.
type Fig13Data struct {
	// Per TM: x = fraction of entries for 75% volume, y = RMSRE.
	Points  []stats.Point
	Pearson float64
	// LogFit y = A + B·ln x (paper overlays a logarithmic best fit).
	FitA, FitB float64
}

// Fig14Data compares the sparsity of truth and estimates.
type Fig14Data struct {
	TruthCDF       []stats.Point // fraction of entries for 75% volume
	TomogravityCDF []stats.Point
	JobsCDF        []stats.Point
	SparsityCDF    []stats.Point
	// SparsityNonZeros is the mean non-zero count of sparsity-max
	// estimates (paper: ~150 ≈ 3% of entries at 75 ToRs).
	SparsityNonZeros float64
	// HeavyHitterHits is the mean number of sparsity-max non-zeros that
	// land on true 97th-percentile entries (paper: only 5–20).
	HeavyHitterHits float64
}

// Analyze regenerates every figure from a run.
//
// Deprecated: Analyze is the legacy struct-options entry point, kept so
// existing callers keep working unchanged. New code should call
// AnalyzeRun (or AnalyzeSource over a trace.Source) with functional
// options. This shim routes through the same streaming pipeline, so
// the Report is bit-identical to the replacement's.
func Analyze(rr *RunResult, opts AnalyzeOptions) *Report {
	rep, err := AnalyzeContext(context.Background(), rr, opts)
	if err != nil {
		// Only cancellation or a malformed source can fail the pipeline,
		// and a run's own record slice is neither cancellable nor
		// malformed.
		panic(err)
	}
	return rep
}

// AnalyzeContext regenerates every figure from a run under a context.
//
// Deprecated: use AnalyzeRun, which takes the same knobs as functional
// options. This shim forwards the whole struct in one option, so the
// two are interchangeable call-for-call.
func AnalyzeContext(ctx context.Context, rr *RunResult, opts AnalyzeOptions) (*Report, error) {
	return AnalyzeRun(ctx, rr, opts.asOption())
}

// asOption adapts the legacy struct to the functional-options config:
// the config embeds AnalyzeOptions, so the struct is copied in whole.
func (o AnalyzeOptions) asOption() AnalyzeOption {
	return func(c *analyzeConfig) { c.AnalyzeOptions = o }
}
