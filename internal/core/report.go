package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"dctraffic/internal/congestion"
	"dctraffic/internal/flows"
	"dctraffic/internal/netsim"
	"dctraffic/internal/obs"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/tomo"
	"dctraffic/internal/trace"
)

// AnalyzeOptions tunes the per-figure analyses. ApplyDefaults fills zero
// fields.
type AnalyzeOptions struct {
	// Parallelism bounds the worker goroutines of the analysis pipeline.
	// 0 means runtime.GOMAXPROCS(0). Any value yields bit-identical
	// results (see parallel.go's determinism contract): workers only
	// decide how many of the fixed task graph's tasks run at once.
	Parallelism int

	// Sequential forces Parallelism 1 — the escape hatch for debugging
	// and for timing the pipeline without concurrency. The same sharded
	// algorithm runs on a single goroutine, so results are identical.
	Sequential bool

	// Observer, when non-nil, receives per-stage wall-clock phases
	// ("analyze.index", "analyze.figures", "analyze.congestion") and
	// pipeline counters. Like the simulator's registry it must not be
	// read concurrently; the pipeline touches it only from the
	// coordinating goroutine.
	Observer *obs.Registry

	// Fig2Window is the short window whose server TM shows the patterns
	// (paper: 10 s).
	Fig2Window netsim.Time
	// Fig2At is the window start (default: mid-run).
	Fig2At netsim.Time

	// CongestionThreshold is C (default 0.7).
	CongestionThreshold float64

	// Fig8Period groups read attempts (paper: one day). For runs
	// shorter than two periods it is shrunk to duration/8.
	Fig8Period netsim.Time

	// Fig10Bin is the fine TM timescale (paper: 10 s) whose lag-1 and
	// lag-10 changes give the τ=10 s and τ=100 s curves.
	Fig10Bin netsim.Time

	// InactivityTimeout, when positive, applies the §3 flow-boundary
	// methodology before the flow-level analyses (Figures 9 and 11):
	// records sharing a five-tuple quiet for less than the timeout merge
	// into one flow. The simulator has exact flow boundaries, so this is
	// off by default; turn it on to study the methodology's effect.
	InactivityTimeout netsim.Time

	// TomoBin is the tomography TM timescale (paper: 10 min averages).
	TomoBin netsim.Time
	// TomoMaxTMs caps the number of tomography instances analyzed.
	TomoMaxTMs int
	// JobPriorAlpha scales the §5.3 multiplier.
	JobPriorAlpha float64
	// TomoCold disables warm-starting the sparsity-max simplex across
	// consecutive tomography windows. Warm starts (the default) return a
	// different — equally valid — basic feasible solution for some
	// windows, which shifts the sparsity-max figure series; TomoCold
	// reproduces the pre-warm-start digests exactly. Tomogravity series
	// are bit-identical either way.
	TomoCold bool
}

// ApplyDefaults returns o with zero fields replaced by defaults scaled to
// the run duration.
func (o AnalyzeOptions) ApplyDefaults(duration netsim.Time) AnalyzeOptions {
	if o.Fig2Window <= 0 {
		o.Fig2Window = 10 * time.Second
	}
	if o.Fig2At <= 0 {
		o.Fig2At = duration / 2
	}
	if o.CongestionThreshold <= 0 {
		o.CongestionThreshold = congestion.DefaultThreshold
	}
	if o.Fig8Period <= 0 {
		o.Fig8Period = 24 * time.Hour
		if duration < 2*o.Fig8Period {
			o.Fig8Period = duration / 8
			if o.Fig8Period <= 0 {
				o.Fig8Period = duration
			}
		}
	}
	if o.Fig10Bin <= 0 {
		o.Fig10Bin = 10 * time.Second
	}
	if o.TomoBin <= 0 {
		o.TomoBin = 10 * time.Minute
		if duration < 12*o.TomoBin {
			o.TomoBin = duration / 12
			if o.TomoBin <= 0 {
				o.TomoBin = duration
			}
		}
	}
	if o.TomoMaxTMs <= 0 {
		o.TomoMaxTMs = 144 // a day of 10-minute TMs
	}
	if o.JobPriorAlpha <= 0 {
		o.JobPriorAlpha = 4
	}
	return o
}

// Report holds the regenerated data for every figure in the paper.
type Report struct {
	Overhead trace.Overhead

	Fig2  Fig2Data
	Fig3  Fig3Data
	Fig4  Fig4Data
	Fig5  Fig5Data
	Fig6  Fig6Data
	Fig7  Fig7Data
	Fig8  Fig8Data
	Fig9  Fig9Data
	Fig10 Fig10Data
	Fig11 Fig11Data
	Fig12 Fig12Data
	Fig13 Fig13Data
	Fig14 Fig14Data

	Incast congestion.IncastAudit

	// Attribution is §4.2's network↔application join: which flow kinds'
	// bytes were on links while they ran hot.
	Attribution congestion.Attribution
}

// Fig2Data is the macroscopic TM snapshot: work-seeks-bandwidth +
// scatter-gather.
type Fig2Data struct {
	From, To netsim.Time
	TM       *tm.Matrix
	Patterns tm.PatternSummary
}

// Fig3Data is the distribution of non-zero TM entries by rack locality.
type Fig3Data struct {
	Entries       tm.EntryStats
	WithinDensity []stats.Point // density over loge(Bytes)
	AcrossDensity []stats.Point
}

// Fig4Data is the correspondents analysis.
type Fig4Data struct {
	Stats     tm.CorrespondentStats
	WithinCDF []stats.Point // CDF of fraction of in-rack correspondents
	AcrossCDF []stats.Point
}

// Fig5Data is when-and-where congestion happens.
type Fig5Data struct {
	Episodes       []congestion.Episode
	LinksMonitored int
	FracLinks10s   float64 // paper: 0.86
	FracLinks100s  float64 // paper: 0.15
	// MeanConcurrentShort counts how many links are simultaneously hot
	// during short episodes (correlation claim).
	MeanConcurrent float64
	// Correlation splits co-hot link counts by episode length (the paper:
	// short periods correlate across links, long ones localize).
	Correlation congestion.CorrelationStats
}

// Fig6Data is the congestion-episode duration distribution.
type Fig6Data struct {
	DurationCDF []stats.Point // seconds
	Episodes    int
	Over10s     int
	LongestSec  float64
	FracUnder10 float64 // of episodes >= 1s (paper: >90%)
}

// Fig7Data compares rates of congestion-overlapping flows to all flows.
type Fig7Data struct {
	OverlapCDF        []stats.Point // Mbps
	AllCDF            []stats.Point
	MedianOverlapMbps float64
	MedianAllMbps     float64
}

// Fig8Data is the read-failure impact of high utilization.
type Fig8Data struct {
	Period            netsim.Time
	Days              []congestion.DayImpact
	MedianIncreasePct float64
}

// Fig9Data is the flow-duration distribution.
type Fig9Data struct {
	ByFlowsCDF []stats.Point // seconds
	ByBytesCDF []stats.Point
	Summary    flows.Summary
}

// Fig10Data is traffic change over time.
type Fig10Data struct {
	Bin              netsim.Time
	Magnitude        []stats.Point // x: seconds, y: bytes/s
	Change10s        []float64     // lag-1 normalized change
	Change100s       []float64     // lag-10
	MedianChange10s  float64
	MedianChange100s float64
}

// Fig11Data is the inter-arrival analysis.
type Fig11Data struct {
	ClusterCDF    []stats.Point // ms
	TorCDF        []stats.Point
	ServerCDF     []stats.Point
	ModeMs        float64 // dominant short-gap mode at servers (paper ~15 ms)
	ArrivalPerSec float64
}

// Fig12Data is the tomography error comparison.
type Fig12Data struct {
	NumTMs                 int
	Tomogravity            []float64 // RMSRE per TM
	TomogravityJobs        []float64
	TomogravityRoles       []float64 // §5.3 future-work extension: phase-directed prior
	SparsityMax            []float64
	MedianTomogravity      float64
	MedianTomogravityJobs  float64
	MedianTomogravityRoles float64
	MedianSparsityMax      float64
}

// Fig13Data correlates tomogravity error with ground-truth sparsity.
type Fig13Data struct {
	// Per TM: x = fraction of entries for 75% volume, y = RMSRE.
	Points  []stats.Point
	Pearson float64
	// LogFit y = A + B·ln x (paper overlays a logarithmic best fit).
	FitA, FitB float64
}

// Fig14Data compares the sparsity of truth and estimates.
type Fig14Data struct {
	TruthCDF       []stats.Point // fraction of entries for 75% volume
	TomogravityCDF []stats.Point
	JobsCDF        []stats.Point
	SparsityCDF    []stats.Point
	// SparsityNonZeros is the mean non-zero count of sparsity-max
	// estimates (paper: ~150 ≈ 3% of entries at 75 ToRs).
	SparsityNonZeros float64
	// HeavyHitterHits is the mean number of sparsity-max non-zeros that
	// land on true 97th-percentile entries (paper: only 5–20).
	HeavyHitterHits float64
}

// Analyze regenerates every figure from a run. It is AnalyzeContext with
// a background context; see AnalyzeOptions.Parallelism for the worker
// knob (results are bit-identical at any setting).
func Analyze(rr *RunResult, opts AnalyzeOptions) *Report {
	rep, err := AnalyzeContext(context.Background(), rr, opts)
	if err != nil {
		// Only cancellation can fail the pipeline, and the background
		// context cannot be canceled.
		panic(err)
	}
	return rep
}

// AnalyzeContext regenerates every figure from a run, running the
// independent figure computations concurrently on a bounded worker pool.
// It returns an error only when ctx is canceled.
//
// The pipeline has three stages, each an obs phase under
// opts.Observer:
//
//	analyze.index       build the shared RecordView (and the reassembled
//	                    flow view when InactivityTimeout is set)
//	analyze.figures     everything independent of congestion episodes:
//	                    Fig 2, the 16 Fig 3/4 sample windows, episode
//	                    detection, Fig 9 CDF shards, Fig 10 bin shards,
//	                    Fig 11, per-window tomography (Fig 12–14)
//	analyze.congestion  everything downstream of the episode set:
//	                    Fig 5–8, the §4.4 incast audit, §4.2 attribution
//
// Tasks write pre-sized slots; all merging happens here between stages,
// on this goroutine, in fixed slot order (see parallel.go), so the
// Report is bit-identical at any Parallelism.
func AnalyzeContext(ctx context.Context, rr *RunResult, opts AnalyzeOptions) (*Report, error) {
	opts = opts.ApplyDefaults(rr.Config.Duration)
	workers := opts.Parallelism
	if opts.Sequential {
		workers = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reg := opts.Observer
	top := rr.Top
	duration := rr.Config.Duration
	rep := &Report{}

	// Stage 1: the shared time index. Its (Start, ID) record order is the
	// canonical iteration order of everything below.
	stopIndex := reg.StartPhase("analyze.index")
	view := trace.NewRecordView(rr.Records(), top)
	records := view.Records()
	flowView := view
	if opts.InactivityTimeout > 0 {
		// §3 methodology: merge five-tuple records quiet for less than
		// the timeout, then index the reassembled flows the same way.
		flowView = trace.NewRecordView(flows.Reassemble(records, opts.InactivityTimeout), top)
	}
	flowRecords := flowView.Records()
	problem := tomo.NewProblem(top)
	stopIndex()
	reg.Counter("analyze.records_total").Add(int64(len(records)))
	reg.Gauge("analyze.workers").Set(float64(workers))

	// Stage 2: figure tasks that do not depend on congestion episodes.
	var tasks []task

	tasks = append(tasks, task{"overhead", func() {
		rep.Overhead = rr.Collector.Overhead(duration)
		// Replace the model's compression constant with the ratio
		// actually achieved on this run's log sample.
		if ratio, err := rr.Collector.MeasuredCompression(0); err == nil && ratio > 0 {
			rep.Overhead.CompressionRatio = ratio
			rep.Overhead.UploadBytesPerServerPerDay = rep.Overhead.LogBytesPerServerPerDay / ratio
		}
	}})

	// Figure 2. The heat-map TM is the paper's 10 s snapshot; the pattern
	// shares are computed over a 10×-longer window so they are stable
	// (a single 10 s window is dominated by whichever shuffle is active).
	tasks = append(tasks, task{"fig2", func() {
		fig2TM := tm.ServerMatrixView(view, top.NumHosts(), opts.Fig2At, opts.Fig2At+opts.Fig2Window)
		fig34TM := tm.ServerMatrixView(view, top.NumHosts(), opts.Fig2At, opts.Fig2At+10*opts.Fig2Window)
		rep.Fig2 = Fig2Data{
			From: opts.Fig2At, To: opts.Fig2At + opts.Fig2Window,
			TM:       fig2TM,
			Patterns: tm.SummarizePatterns(fig34TM, top),
		}
	}})

	// Figures 3 and 4: a single window at this cluster scale is dominated
	// by whatever burst (shuffle, evacuation) happens to be active, so the
	// statistics are pooled over windows sampled across the whole run —
	// the paper's distributions likewise aggregate over many TMs. Each
	// sample window is one task writing its own slot; the pool below
	// merges the slots in window order.
	const fig34Samples = 16
	type fig34Slot struct {
		used                   bool
		es                     tm.EntryStats
		zeroWithin, zeroAcross float64
		cs                     tm.CorrespondentStats
	}
	fig34Slots := make([]fig34Slot, fig34Samples)
	sampleWindow := 10 * opts.Fig2Window
	for k := 0; k < fig34Samples; k++ {
		k := k
		tasks = append(tasks, task{fmt.Sprintf("fig34.w%d", k), func() {
			from := duration * netsim.Time(k) / fig34Samples
			w := tm.ServerMatrixView(view, top.NumHosts(), from, from+sampleWindow)
			if w.NonZero() == 0 {
				return
			}
			s := &fig34Slots[k]
			s.used = true
			s.es = tm.ComputeEntryStats(w, top)
			s.zeroWithin = s.es.PZeroWithinRack
			s.zeroAcross = s.es.PZeroAcrossRack
			s.cs = tm.ComputeCorrespondents(w, top)
		}})
	}

	// Congestion episodes, needed by the whole third stage.
	links := top.InterSwitchLinks()
	var eps []congestion.Episode
	tasks = append(tasks, task{"detect", func() {
		eps = congestion.Detect(rr.Net.Stats(), top, opts.CongestionThreshold, links)
	}})

	// Figure 9: duration/rate CDFs sharded over the flow records, merged
	// in shard order (concatenating shard CDFs reproduces the canonical
	// add order because shards partition the view order).
	type fig9Slot struct {
		byFlows, byBytes, rates *stats.CDF
	}
	fig9Shards := shardRanges(len(flowRecords), recordShardTarget, maxRecordShards)
	fig9Slots := make([]fig9Slot, len(fig9Shards))
	for j, sh := range fig9Shards {
		j, sh := j, sh
		tasks = append(tasks, task{fmt.Sprintf("fig9.s%d", j), func() {
			chunk := flowRecords[sh[0]:sh[1]]
			byFlows, byBytes := flows.DurationCDFs(chunk)
			fig9Slots[j] = fig9Slot{byFlows: byFlows, byBytes: byBytes, rates: flows.RateCDF(chunk)}
		}})
	}

	// Figure 10: the fine TM series sharded over bin ranges. Each bin's
	// matrix accumulates exactly the view-ordered records overlapping
	// that bin, so the sharded series matches a whole-run scan
	// bit-for-bit regardless of the decomposition.
	nBins := int((duration + opts.Fig10Bin - 1) / opts.Fig10Bin)
	series := make([]*tm.Matrix, nBins)
	for j, sh := range shardRanges(nBins, 512, maxRecordShards) {
		j, sh := j, sh
		tasks = append(tasks, task{fmt.Sprintf("fig10.s%d", j), func() {
			for i := sh[0]; i < sh[1]; i++ {
				from, to := tm.SeriesBinWindow(i, opts.Fig10Bin, duration)
				series[i] = tm.ServerMatrixView(view, top.NumHosts(), from, to)
			}
		}})
	}

	// Figure 11: the three inter-arrival scopes are independent tasks;
	// the per-server / per-rack start lists come from the view's posting
	// lists, pooled in ascending ID order.
	var clusterPts, torPts, serverPts []stats.Point
	var modeMs float64
	tasks = append(tasks,
		task{"fig11.cluster", func() {
			clusterPts = stats.NewCDF(flows.ClusterInterArrivalsView(flowView)).Points(100)
		}},
		task{"fig11.tor", func() {
			torPts = stats.NewCDF(flows.TorInterArrivalsView(flowView)).Points(100)
		}},
		task{"fig11.server", func() {
			gaps := flows.ServerInterArrivalsView(flowView)
			serverPts = stats.NewCDF(gaps).Points(100)
			modeMs = flows.ModeSpacing(gaps, 2, 100, 196)
		}},
	)

	// Figures 12–14: tomography, one task per chain of consecutive ToR-TM
	// windows. Each chain owns a tomo.Estimator — a reusable solver and
	// WLS workspace — so consecutive windows warm-start the sparsity-max
	// simplex from the previous basis (unless opts.TomoCold) and the
	// steady-state window estimate allocates nothing. The immutable
	// problem is shared; each window writes its own slot and the merge
	// below replays the sequential loop in window order, including its
	// skip-on-error semantics.
	type tomoSlot struct {
		ok                               bool
		eTG, eTJ, eTR, eSM               float64
		fracTrue, fracTG, fracTJ, fracSM float64
		smNonZeros, smHits               float64
		pivots, refactors                int
		warm, fellBack                   bool
	}
	tomoWindows := int((duration + opts.TomoBin - 1) / opts.TomoBin)
	if tomoWindows > opts.TomoMaxTMs {
		tomoWindows = opts.TomoMaxTMs
	}
	tomoSlots := make([]tomoSlot, tomoWindows)
	for j, sh := range shardRanges(tomoWindows, tomoChainTarget, maxTomoChains) {
		j, sh := j, sh
		tasks = append(tasks, task{fmt.Sprintf("tomo.c%d", j), func() {
			est := problem.NewEstimator(tomo.EstimatorOptions{Cold: opts.TomoCold})
			xTrue := make([]float64, problem.NumPairs())
			var b, tg, tj, tr, sm []float64
			for i := sh[0]; i < sh[1]; i++ {
				from, to := tm.SeriesBinWindow(i, opts.TomoBin, duration)
				truth := tm.TorMatrixView(view, top, from, to)
				if truth.Total() <= 0 {
					continue
				}
				b = est.LinkCountsInto(b, truth)
				problem.VecFromTMInto(xTrue, truth)

				var err error
				tg, err = est.TomogravityInto(tg, b)
				if err != nil {
					continue
				}
				mult := tomo.JobMultiplier(rr.Log, top, from, from+opts.TomoBin, opts.JobPriorAlpha)
				tj, err = est.TomogravityWithMultiplierInto(tj, b, mult)
				if err != nil {
					continue
				}
				roleMult := tomo.RoleAwareMultiplier(rr.Log, top, from, from+opts.TomoBin, opts.JobPriorAlpha)
				tr, err = est.TomogravityWithMultiplierInto(tr, b, roleMult)
				if err != nil {
					continue
				}
				sm, err = est.SparsityMaxInto(sm, b)
				if err != nil {
					continue
				}
				st := est.SolveStats()

				s := &tomoSlots[i]
				s.ok = true
				s.eTG = tomo.RMSRE(xTrue, tg, 0.75)
				s.eTJ = tomo.RMSRE(xTrue, tj, 0.75)
				s.eTR = tomo.RMSRE(xTrue, tr, 0.75)
				s.eSM = tomo.RMSRE(xTrue, sm, 0.75)
				_, s.fracTrue = tomo.SparsityOfVec(xTrue, 0.75)
				_, s.fracTG = tomo.SparsityOfVec(tg, 0.75)
				_, s.fracTJ = tomo.SparsityOfVec(tj, 0.75)
				_, s.fracSM = tomo.SparsityOfVec(sm, 0.75)
				s.smNonZeros = float64(tomo.NonZeroCount(sm))
				s.smHits = float64(tomo.HeavyHitterOverlap(xTrue, sm, 97))
				s.pivots = st.Pivots
				s.refactors = st.Refactorizations
				s.warm = st.Warm
				s.fellBack = st.FellBack
			}
		}})
	}

	stopFigures := reg.StartPhase("analyze.figures")
	reg.Counter("analyze.tasks_total").Add(int64(len(tasks)))
	if err := runTasks(ctx, workers, tasks); err != nil {
		return nil, fmt.Errorf("core: analyze canceled: %w", err)
	}

	// Merge stage-2 slots, in slot order, on this goroutine.
	var es tm.EntryStats
	var zeroWithin, zeroAcross float64
	var fracWithin, fracAcross, withinCounts, acrossCounts []float64
	for k := range fig34Slots {
		s := &fig34Slots[k]
		if !s.used {
			continue
		}
		es.WithinRack = append(es.WithinRack, s.es.WithinRack...)
		es.AcrossRack = append(es.AcrossRack, s.es.AcrossRack...)
		zeroWithin += s.zeroWithin
		zeroAcross += s.zeroAcross
		fracWithin = append(fracWithin, s.cs.FracWithin...)
		fracAcross = append(fracAcross, s.cs.FracAcross...)
		withinCounts = append(withinCounts, s.cs.MedianWithinCount)
		acrossCounts = append(acrossCounts, s.cs.MedianAcrossCount)
	}
	if n := len(withinCounts); n > 0 {
		es.PZeroWithinRack = zeroWithin / float64(n)
		es.PZeroAcrossRack = zeroAcross / float64(n)
	}
	wd, ad := es.LogHistograms(30)
	rep.Fig3 = Fig3Data{Entries: es, WithinDensity: wd, AcrossDensity: ad}
	rep.Fig4 = Fig4Data{
		Stats: tm.CorrespondentStats{
			FracWithin:        fracWithin,
			FracAcross:        fracAcross,
			MedianWithinCount: stats.Median(withinCounts),
			MedianAcrossCount: stats.Median(acrossCounts),
		},
		WithinCDF: stats.NewCDF(fracWithin).Points(50),
		AcrossCDF: stats.NewCDF(fracAcross).Points(50),
	}

	byFlows, byBytes, rates := &stats.CDF{}, &stats.CDF{}, &stats.CDF{}
	byFlows.Grow(len(flowRecords))
	byBytes.Grow(len(flowRecords))
	rates.Grow(len(flowRecords))
	for j := range fig9Slots {
		byFlows.Merge(fig9Slots[j].byFlows)
		byBytes.Merge(fig9Slots[j].byBytes)
		rates.Merge(fig9Slots[j].rates)
	}
	rep.Fig9 = Fig9Data{
		ByFlowsCDF: byFlows.Points(100),
		ByBytesCDF: byBytes.Points(100),
		Summary: flows.Summary{
			NumFlows:             len(flowRecords),
			FracShorterThan10s:   byFlows.P(10),
			FracLongerThan200s:   1 - byFlows.P(200),
			BytesInFlowsUnder25s: byBytes.P(25),
			MedianDurationSec:    byFlows.Quantile(0.5),
			MedianRateMbps:       rates.Quantile(0.5),
			ArrivalRatePerSec:    flows.ArrivalRatePerSecView(flowView, duration),
		},
	}

	mag := tm.MagnitudeSeries(series)
	magPts := make([]stats.Point, len(mag))
	binSec := opts.Fig10Bin.Seconds()
	for i, v := range mag {
		magPts[i] = stats.Point{X: float64(i) * binSec, Y: v / binSec}
	}
	ch10 := tm.ChangeSeries(series, 1)
	ch100 := tm.ChangeSeries(series, 10)
	rep.Fig10 = Fig10Data{
		Bin:              opts.Fig10Bin,
		Magnitude:        magPts,
		Change10s:        ch10,
		Change100s:       ch100,
		MedianChange10s:  stats.Median(nonZero(ch10)),
		MedianChange100s: stats.Median(nonZero(ch100)),
	}

	rep.Fig11 = Fig11Data{
		ClusterCDF:    clusterPts,
		TorCDF:        torPts,
		ServerCDF:     serverPts,
		ModeMs:        modeMs,
		ArrivalPerSec: flows.ArrivalRatePerSecView(view, duration),
	}

	var f12 Fig12Data
	var f13 Fig13Data
	truthCDF, tgCDF, jobsCDF, smCDF := &stats.CDF{}, &stats.CDF{}, &stats.CDF{}, &stats.CDF{}
	var smNonZeros, smHits []float64
	var xs, ys []float64
	// Solver-effort series are fed here, on the coordinating goroutine,
	// because the registry is not goroutine-safe (see the determinism
	// contract in parallel.go). Slot order makes the histograms
	// deterministic too.
	pivotHist := reg.Histogram("tomo.pivots_per_window", obs.Pow2Bounds(1, 16))
	refacHist := reg.Histogram("tomo.refactorizations_per_window", obs.Pow2Bounds(1, 10))
	warmWindows := reg.Counter("tomo.windows_warm")
	coldWindows := reg.Counter("tomo.windows_cold")
	fallbackWindows := reg.Counter("tomo.windows_fallback")
	for i := range tomoSlots {
		s := &tomoSlots[i]
		if !s.ok {
			continue
		}
		pivotHist.Observe(float64(s.pivots))
		refacHist.Observe(float64(s.refactors))
		if s.warm {
			warmWindows.Inc()
		} else {
			coldWindows.Inc()
		}
		if s.fellBack {
			fallbackWindows.Inc()
		}
		f12.NumTMs++
		f12.Tomogravity = append(f12.Tomogravity, s.eTG)
		f12.TomogravityJobs = append(f12.TomogravityJobs, s.eTJ)
		f12.TomogravityRoles = append(f12.TomogravityRoles, s.eTR)
		f12.SparsityMax = append(f12.SparsityMax, s.eSM)
		truthCDF.Add(s.fracTrue)
		tgCDF.Add(s.fracTG)
		jobsCDF.Add(s.fracTJ)
		smCDF.Add(s.fracSM)
		smNonZeros = append(smNonZeros, s.smNonZeros)
		smHits = append(smHits, s.smHits)
		xs = append(xs, s.fracTrue)
		ys = append(ys, s.eTG)
	}
	f12.MedianTomogravity = stats.Median(f12.Tomogravity)
	f12.MedianTomogravityJobs = stats.Median(f12.TomogravityJobs)
	f12.MedianTomogravityRoles = stats.Median(f12.TomogravityRoles)
	f12.MedianSparsityMax = stats.Median(f12.SparsityMax)
	for i := range xs {
		f13.Points = append(f13.Points, stats.Point{X: xs[i], Y: ys[i]})
	}
	if len(xs) >= 2 {
		f13.Pearson = stats.Pearson(xs, ys)
		f13.FitA, f13.FitB = stats.LogFit(xs, ys)
	}
	rep.Fig12 = f12
	rep.Fig13 = f13
	rep.Fig14 = Fig14Data{
		TruthCDF:         truthCDF.Points(50),
		TomogravityCDF:   tgCDF.Points(50),
		JobsCDF:          jobsCDF.Points(50),
		SparsityCDF:      smCDF.Points(50),
		SparsityNonZeros: stats.Mean(smNonZeros),
		HeavyHitterHits:  stats.Mean(smHits),
	}
	stopFigures()

	// Stage 3: everything downstream of the episode set, joined against a
	// shared immutable index.
	idx := congestion.NewEpisodeIndex(eps)
	binSize := rr.Net.Stats().BinSize()
	var tasks2 []task

	tasks2 = append(tasks2, task{"fig5", func() {
		rep.Fig5 = Fig5Data{
			Episodes:       eps,
			LinksMonitored: len(links),
			FracLinks10s:   congestion.FracLinksWithEpisodeAtLeast(eps, links, 10*time.Second),
			FracLinks100s:  congestion.FracLinksWithEpisodeAtLeast(eps, links, 100*time.Second),
			MeanConcurrent: stats.MeanInt(congestion.ConcurrencySeries(eps, binSize, duration)),
			Correlation:    congestion.Correlate(eps),
		}
	}})

	tasks2 = append(tasks2, task{"fig6", func() {
		durCDF, over10, longest := congestion.DurationStats(eps)
		rep.Fig6 = Fig6Data{
			DurationCDF: durCDF.Points(100),
			Episodes:    durCDF.N(),
			Over10s:     over10,
			LongestSec:  longest,
			FracUnder10: durCDF.P(10),
		}
	}})

	// Figure 7: the flow ↔ episode join sharded over the record view.
	type fig7Slot struct {
		overlap, all *stats.CDF
	}
	recShards := shardRanges(len(records), recordShardTarget, maxRecordShards)
	fig7Slots := make([]fig7Slot, len(recShards))
	for j, sh := range recShards {
		j, sh := j, sh
		tasks2 = append(tasks2, task{fmt.Sprintf("fig7.s%d", j), func() {
			overlap, all := congestion.OverlapRateCDFsIndexed(records[sh[0]:sh[1]], idx, top)
			fig7Slots[j] = fig7Slot{overlap: overlap, all: all}
		}})
	}

	tasks2 = append(tasks2, task{"fig8", func() {
		numPeriods := int(duration / opts.Fig8Period)
		if numPeriods < 1 {
			numPeriods = 1
		}
		days := congestion.ReadFailureImpact(rr.Log, records, eps, top, opts.Fig8Period, numPeriods)
		var increases []float64
		for _, d := range days {
			if d.CongestedReads > 0 && d.ClearReads > 0 {
				increases = append(increases, d.IncreasePct)
			}
		}
		rep.Fig8 = Fig8Data{Period: opts.Fig8Period, Days: days, MedianIncreasePct: stats.Median(increases)}
	}})

	// §4.4 audit.
	tasks2 = append(tasks2, task{"incast", func() {
		rep.Incast = congestion.AuditIncast(records, top, eps, binSize, duration,
			rr.Cluster.Config().MaxConnsPerVertex)
	}})

	// §4.2 attribution: the same shards, merged in shard order with the
	// kinds in ascending order (congestion.MergeAttribution).
	attrSlots := make([]congestion.Attribution, len(recShards))
	for j, sh := range recShards {
		j, sh := j, sh
		tasks2 = append(tasks2, task{fmt.Sprintf("attr.s%d", j), func() {
			attrSlots[j] = congestion.AttributeIndexed(records[sh[0]:sh[1]], idx, top)
		}})
	}

	stopCongestion := reg.StartPhase("analyze.congestion")
	reg.Counter("analyze.tasks_total").Add(int64(len(tasks2)))
	if err := runTasks(ctx, workers, tasks2); err != nil {
		return nil, fmt.Errorf("core: analyze canceled: %w", err)
	}

	overlap, all := &stats.CDF{}, &stats.CDF{}
	for j := range fig7Slots {
		overlap.Merge(fig7Slots[j].overlap)
		all.Merge(fig7Slots[j].all)
	}
	rep.Fig7 = Fig7Data{
		OverlapCDF:        overlap.Points(100),
		AllCDF:            all.Points(100),
		MedianOverlapMbps: overlap.Quantile(0.5),
		MedianAllMbps:     all.Quantile(0.5),
	}
	rep.Attribution = congestion.MergeAttribution(attrSlots)
	stopCongestion()

	return rep, nil
}

func nonZero(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if x != 0 {
			out = append(out, x)
		}
	}
	return out
}
