package core

import "encoding/json"

// Headline is the machine-readable digest of a Report: one number per
// headline statistic, suitable for CI regression tracking and for
// comparing runs across seeds or scales.
type Headline struct {
	CPUOverheadPct       float64 `json:"cpu_overhead_pct"`
	CompressionRatio     float64 `json:"compression_ratio"`
	WithinRackShare      float64 `json:"within_rack_share"`
	WithinVLANShare      float64 `json:"within_vlan_share"`
	PZeroWithinRack      float64 `json:"p_zero_within_rack"`
	PZeroAcrossRack      float64 `json:"p_zero_across_rack"`
	MedianCorrWithin     float64 `json:"median_correspondents_within"`
	MedianCorrAcross     float64 `json:"median_correspondents_across"`
	FracLinks10s         float64 `json:"frac_links_congested_10s"`
	FracLinks100s        float64 `json:"frac_links_congested_100s"`
	FracEpisodesUnder10s float64 `json:"frac_episodes_under_10s"`
	MedianReadFailIncPct float64 `json:"median_read_failure_increase_pct"`
	FracFlowsUnder10s    float64 `json:"frac_flows_under_10s"`
	BytesInFlowsUnder25s float64 `json:"bytes_in_flows_under_25s"`
	MedianChange10s      float64 `json:"median_tm_change_10s"`
	InterArrivalModeMs   float64 `json:"inter_arrival_mode_ms"`
	TomogravityRMSRE     float64 `json:"tomogravity_median_rmsre"`
	SparsityMaxRMSRE     float64 `json:"sparsity_max_median_rmsre"`
	SparsityPearson      float64 `json:"error_vs_sparsity_pearson"`
	ConnectionCap        int     `json:"connection_cap"`
}

// Headline extracts the digest from a report.
func (r *Report) Headline() Headline {
	return Headline{
		CPUOverheadPct:       r.Overhead.MedianCPUPct,
		CompressionRatio:     r.Overhead.CompressionRatio,
		WithinRackShare:      r.Fig2.Patterns.WithinRackFraction,
		WithinVLANShare:      r.Fig2.Patterns.WithinVLANFraction,
		PZeroWithinRack:      r.Fig3.Entries.PZeroWithinRack,
		PZeroAcrossRack:      r.Fig3.Entries.PZeroAcrossRack,
		MedianCorrWithin:     r.Fig4.Stats.MedianWithinCount,
		MedianCorrAcross:     r.Fig4.Stats.MedianAcrossCount,
		FracLinks10s:         r.Fig5.FracLinks10s,
		FracLinks100s:        r.Fig5.FracLinks100s,
		FracEpisodesUnder10s: r.Fig6.FracUnder10,
		MedianReadFailIncPct: r.Fig8.MedianIncreasePct,
		FracFlowsUnder10s:    r.Fig9.Summary.FracShorterThan10s,
		BytesInFlowsUnder25s: r.Fig9.Summary.BytesInFlowsUnder25s,
		MedianChange10s:      r.Fig10.MedianChange10s,
		InterArrivalModeMs:   r.Fig11.ModeMs,
		TomogravityRMSRE:     r.Fig12.MedianTomogravity,
		SparsityMaxRMSRE:     r.Fig12.MedianSparsityMax,
		SparsityPearson:      r.Fig13.Pearson,
		ConnectionCap:        r.Incast.MaxSimultaneousConnections,
	}
}

// JSON renders the headline digest as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Headline(), "", "  ")
}
