package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"dctraffic/internal/stats"
)

// mustAnalyze runs the functional-options pipeline and fails the test on
// error — the test-side replacement for the deprecated Analyze shim.
func mustAnalyze(tb testing.TB, rr *RunResult, opts ...AnalyzeOption) *Report {
	tb.Helper()
	rep, err := AnalyzeRun(context.Background(), rr, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return rep
}

// sharedRun memoizes one small simulation + analysis across tests.
var (
	runOnce   sync.Once
	sharedRes *RunResult
	sharedRep *Report
	runErr    error
)

func smallRun(t *testing.T) (*RunResult, *Report) {
	t.Helper()
	runOnce.Do(func() {
		cfg := SmallRun()
		cfg.Duration = 90 * time.Minute
		cfg.DrainTime = 20 * time.Minute
		sharedRes, runErr = Simulate(cfg)
		if runErr == nil {
			sharedRep, runErr = AnalyzeRun(context.Background(), sharedRes)
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return sharedRes, sharedRep
}

// The incremental allocator must keep the pipeline deterministic: the
// same seed through Simulate + Analyze yields a byte-identical headline
// digest on repeated runs.
func TestSameSeedIdenticalDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("two full SmallRun simulations")
	}
	digest := func() []byte {
		rr, err := Simulate(SmallRun())
		if err != nil {
			t.Fatal(err)
		}
		j, err := mustAnalyze(t, rr).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := digest(), digest()
	if string(a) != string(b) {
		t.Fatalf("same-seed digests differ:\n%s\nvs\n%s", a, b)
	}
}

// End-to-end A/B of the dirty-component allocator against a full
// re-solve on every step: identical digests on a shortened run.
func TestIncrementalAllocatorMatchesFullDigest(t *testing.T) {
	digest := func(full bool) []byte {
		cfg := SmallRun()
		cfg.Duration = 20 * time.Minute
		cfg.DrainTime = 10 * time.Minute
		cfg.FullRecompute = full
		rr, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		j, err := mustAnalyze(t, rr).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	inc, full := digest(false), digest(true)
	if string(inc) != string(full) {
		t.Fatalf("incremental vs full recompute digests differ:\n%s\nvs\n%s", inc, full)
	}
}

func TestSimulateProducesTraffic(t *testing.T) {
	rr, _ := smallRun(t)
	if rr.Net.FlowsCompleted() < 100 {
		t.Fatalf("only %d flows completed", rr.Net.FlowsCompleted())
	}
	if len(rr.Records()) < 100 {
		t.Fatalf("only %d records collected", len(rr.Records()))
	}
	if len(rr.Cluster.Jobs()) == 0 {
		t.Fatal("no jobs ran")
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	if _, err := Simulate(RunConfig{}); err == nil {
		t.Fatal("zero duration should be rejected")
	}
	cfg := SmallRun()
	cfg.Topology.Racks = -1
	cfg.Duration = time.Minute
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("bad topology should be rejected")
	}
}

func TestOverheadIsSmall(t *testing.T) {
	_, rep := smallRun(t)
	if rep.Overhead.TotalEvents == 0 {
		t.Fatal("no instrumentation events")
	}
	// §2: instrumentation cost is small single digits percent.
	if rep.Overhead.MedianCPUPct > 5 {
		t.Fatalf("CPU overhead %v%% too high", rep.Overhead.MedianCPUPct)
	}
	if rep.Overhead.MedianDiskPct > 5 {
		t.Fatalf("disk overhead %v%%", rep.Overhead.MedianDiskPct)
	}
}

func TestFig2WorkSeeksBandwidth(t *testing.T) {
	_, rep := smallRun(t)
	p := rep.Fig2.Patterns
	// Locality-aware placement should concentrate a large share of bytes
	// inside racks and VLANs.
	if p.WithinRackFraction < 0.2 {
		t.Fatalf("within-rack share %v — no work-seeks-bandwidth diagonal", p.WithinRackFraction)
	}
	if p.WithinVLANFraction <= p.WithinRackFraction {
		t.Fatal("VLAN share must include rack share")
	}
	if rep.Fig2.TM.Total() <= 0 {
		t.Fatal("empty Fig2 window")
	}
}

func TestFig3SparsityOrdering(t *testing.T) {
	_, rep := smallRun(t)
	e := rep.Fig3.Entries
	// Cross-rack pairs must be silent more often than in-rack pairs, and
	// both should be mostly silent (the paper: 0.89 and 0.995).
	if e.PZeroAcrossRack <= e.PZeroWithinRack {
		t.Fatalf("zero-prob ordering violated: within %v, across %v",
			e.PZeroWithinRack, e.PZeroAcrossRack)
	}
	if e.PZeroWithinRack < 0.3 {
		t.Fatalf("within-rack zero probability %v implausibly low", e.PZeroWithinRack)
	}
}

func TestFig4Correspondents(t *testing.T) {
	_, rep := smallRun(t)
	s := rep.Fig4.Stats
	// Medians are small (paper: 2 and 4) — definitely far below "talks
	// to everyone".
	if s.MedianWithinCount > 8 {
		t.Fatalf("median within-rack correspondents %v too high", s.MedianWithinCount)
	}
	if s.MedianAcrossCount > 25 {
		t.Fatalf("median across-rack correspondents %v too high", s.MedianAcrossCount)
	}
}

func TestFig5CongestionExists(t *testing.T) {
	_, rep := smallRun(t)
	if len(rep.Fig5.Episodes) == 0 {
		t.Fatal("no congestion episodes — workload too light to reproduce §4.2")
	}
	if rep.Fig5.FracLinks10s <= 0 {
		t.Fatal("no link saw a ≥10s episode")
	}
	// Long congestion is rarer than short congestion.
	if rep.Fig5.FracLinks100s > rep.Fig5.FracLinks10s {
		t.Fatal("≥100s link fraction exceeds ≥10s fraction")
	}
}

func TestFig6MostEpisodesShort(t *testing.T) {
	_, rep := smallRun(t)
	if rep.Fig6.Episodes == 0 {
		t.Fatal("no episodes")
	}
	if rep.Fig6.FracUnder10 < 0.5 {
		t.Fatalf("only %v of episodes ≤ 10s; paper reports >90%%", rep.Fig6.FracUnder10)
	}
}

func TestFig8FailuresCorrelateWithCongestion(t *testing.T) {
	_, rep := smallRun(t)
	// Aggregate over periods: failures should be more likely on
	// congested paths (the stall-boost mechanism the paper observed).
	var cong, clear, congFail, clearFail float64
	for _, d := range rep.Fig8.Days {
		cong += float64(d.CongestedReads) * d.PFailCongested
		congFail += float64(d.CongestedReads)
		clear += float64(d.ClearReads) * d.PFailClear
		clearFail += float64(d.ClearReads)
	}
	if congFail == 0 || clearFail == 0 {
		t.Skip("no reads in one class; workload too small for this assertion")
	}
	pc, pl := cong/congFail, clear/clearFail
	if pc <= pl {
		t.Fatalf("P(fail|congested)=%v <= P(fail|clear)=%v", pc, pl)
	}
}

func TestFig9FlowDurations(t *testing.T) {
	_, rep := smallRun(t)
	s := rep.Fig9.Summary
	// Most flows are short (paper: >80% under 10 s).
	if s.FracShorterThan10s < 0.6 {
		t.Fatalf("only %v of flows under 10s", s.FracShorterThan10s)
	}
	// Very long flows are rare.
	if s.FracLongerThan200s > 0.05 {
		t.Fatalf("%v of flows over 200s", s.FracLongerThan200s)
	}
}

func TestFig10ChangeDespiteFlatTotals(t *testing.T) {
	_, rep := smallRun(t)
	if rep.Fig10.MedianChange10s <= 0.1 {
		t.Fatalf("median 10s change %v — TM should churn", rep.Fig10.MedianChange10s)
	}
	if len(rep.Fig10.Magnitude) == 0 {
		t.Fatal("no magnitude series")
	}
}

func TestFig11InterArrivals(t *testing.T) {
	_, rep := smallRun(t)
	if rep.Fig11.ArrivalPerSec <= 0 {
		t.Fatal("no arrivals")
	}
	if len(rep.Fig11.ServerCDF) == 0 || len(rep.Fig11.TorCDF) == 0 || len(rep.Fig11.ClusterCDF) == 0 {
		t.Fatal("missing inter-arrival CDFs")
	}
	// The stop-and-go pacing timer produces periodic modes near 15 ms.
	if rep.Fig11.ModeMs < 10 || rep.Fig11.ModeMs > 20 {
		t.Fatalf("server inter-arrival mode %v ms, want ~15 ms", rep.Fig11.ModeMs)
	}
}

func TestFig12TomographyOrdering(t *testing.T) {
	_, rep := smallRun(t)
	if rep.Fig12.NumTMs == 0 {
		t.Fatal("no tomography instances")
	}
	// The paper's key §5 findings: tomogravity errs substantially on DC
	// traffic, and sparsity maximization is worse.
	if rep.Fig12.MedianTomogravity < 0.10 {
		t.Fatalf("tomogravity median RMSRE %v — too accurate; DC TMs should break the gravity prior",
			rep.Fig12.MedianTomogravity)
	}
	if rep.Fig12.MedianSparsityMax < rep.Fig12.MedianTomogravity {
		t.Fatalf("sparsity-max (%v) should be worse than tomogravity (%v)",
			rep.Fig12.MedianSparsityMax, rep.Fig12.MedianTomogravity)
	}
	// Job prior helps at most marginally, and must not be catastrophic.
	if rep.Fig12.MedianTomogravityJobs > rep.Fig12.MedianTomogravity*2 {
		t.Fatalf("job prior made things much worse: %v vs %v",
			rep.Fig12.MedianTomogravityJobs, rep.Fig12.MedianTomogravity)
	}
}

func TestFig14SparsityOrdering(t *testing.T) {
	_, rep := smallRun(t)
	// Truth is sparser than tomogravity and denser than sparsity-max —
	// compare medians of the fraction-of-entries CDFs.
	truth := medianOfCDF(rep.Fig14.TruthCDF)
	tg := medianOfCDF(rep.Fig14.TomogravityCDF)
	sm := medianOfCDF(rep.Fig14.SparsityCDF)
	if !(sm <= truth && truth <= tg) {
		t.Fatalf("sparsity ordering violated: sm=%v truth=%v tomogravity=%v", sm, truth, tg)
	}
}

func TestIncastAudit(t *testing.T) {
	_, rep := smallRun(t)
	if rep.Incast.MaxSimultaneousConnections != 2 {
		t.Fatalf("connection cap %d, want 2", rep.Incast.MaxSimultaneousConnections)
	}
	if rep.Incast.FracFlowsWithinVLAN < rep.Incast.FracFlowsWithinRack {
		t.Fatal("VLAN fraction must include rack fraction")
	}
}

func TestReportText(t *testing.T) {
	_, rep := smallRun(t)
	txt := rep.Text()
	for _, want := range []string{"Fig 2", "Fig 9", "Fig 12", "incast", "tomogravity median"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("report text missing %q", want)
		}
	}
}

func TestHeatASCII(t *testing.T) {
	rr, rep := smallRun(t)
	heat := HeatASCII(rep.Fig2.TM, 40)
	lines := strings.Split(strings.TrimRight(heat, "\n"), "\n")
	if len(lines) != 40 {
		t.Fatalf("heat map has %d rows, want 40", len(lines))
	}
	// The map must contain some non-blank structure.
	if !strings.ContainsAny(heat, ".:-=+*#%@") {
		t.Fatal("heat map is blank")
	}
	_ = rr
}

// medianOfCDF extracts the x at y>=0.5 from CDF plot points.
func medianOfCDF(pts []stats.Point) float64 {
	for _, p := range pts {
		if p.Y >= 0.5 {
			return p.X
		}
	}
	if len(pts) > 0 {
		return pts[len(pts)-1].X
	}
	return 0
}
