package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// digestRun simulates cfg and hashes everything determinism covers:
// every reassembled flow record in the trace plus the full analysis
// report.
func digestRun(t *testing.T, cfg RunConfig) string {
	t.Helper()
	rr, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, r := range rr.Records() {
		fmt.Fprintf(h, "%d %d %d %d %d %d %d %d %v\n",
			r.ID, r.Src, r.Dst, r.SrcPort, r.DstPort, r.Start, r.End, r.Bytes, r.Tag)
	}
	j, err := mustAnalyze(t, rr).JSON()
	if err != nil {
		t.Fatal(err)
	}
	h.Write(j)
	return hex.EncodeToString(h.Sum(nil))
}

// traceDigest runs a shortened SmallRun simulation with the default
// simulate parallelism and digests it.
func traceDigest(t *testing.T) string {
	t.Helper()
	cfg := SmallRun()
	cfg.Duration = 20 * time.Minute
	cfg.DrainTime = 10 * time.Minute
	return digestRun(t, cfg)
}

// The determinism invariant must hold across parallelism settings, not
// just across repeated runs: the simulator is specified to be a pure
// function of its seed, so GOMAXPROCS=1 and GOMAXPROCS=NumCPU must
// produce byte-identical trace digests — and so must every simulate
// worker count, against the Sequential reference loop. This is the
// regression guard for anyone introducing scheduler-ordered work
// (dctlint's floatsum analyzer is the static half of the same contract).
func TestCrossGOMAXPROCSDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("many full shortened simulations")
	}
	prev := runtime.GOMAXPROCS(1)
	serial := traceDigest(t)
	runtime.GOMAXPROCS(runtime.NumCPU())
	parallel := traceDigest(t)
	runtime.GOMAXPROCS(prev)
	if serial != parallel {
		t.Fatalf("trace digest differs across GOMAXPROCS:\n  GOMAXPROCS=1:      %s\n  GOMAXPROCS=NumCPU: %s", serial, parallel)
	}

	// Simulate-phase worker matrix: {1, 2, NumCPU} workers × 2 seeds,
	// each against the Sequential reference loop.
	for _, seed := range []uint64{1, 5} {
		cfg := SmallRun()
		cfg.Duration = 15 * time.Minute
		cfg.DrainTime = 5 * time.Minute
		cfg.Seed = seed
		cfg.Sched.Seed = seed
		cfg.Sequential = true
		want := digestRun(t, cfg)
		for _, w := range []int{1, 2, runtime.NumCPU()} {
			cfg.Sequential = false
			cfg.Workers = w
			if got := digestRun(t, cfg); got != want {
				t.Fatalf("seed %d: workers=%d digest %s != sequential %s", seed, w, got, want)
			}
		}
	}
}

// TestPaperScaleWorkerDeterminism checks the same contract on the
// paper-scale topology (75 racks × 20 servers, 10 ms rate batching) over
// a shortened window: the per-rack domain decomposition must not depend
// on the fabric size.
func TestPaperScaleWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two shortened paper-scale simulations")
	}
	cfg := PaperRun()
	cfg.Duration = 10 * time.Minute
	cfg.DrainTime = 5 * time.Minute
	cfg.Sequential = true
	want := digestRun(t, cfg)
	cfg.Sequential = false
	cfg.Workers = 2
	if got := digestRun(t, cfg); got != want {
		t.Fatalf("paper-scale: workers=2 digest %s != sequential %s", got, want)
	}
}
