package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// traceDigest runs a shortened SmallRun simulation and hashes everything
// determinism covers: every reassembled flow record in the trace plus
// the full analysis report.
func traceDigest(t *testing.T) string {
	t.Helper()
	cfg := SmallRun()
	cfg.Duration = 20 * time.Minute
	cfg.DrainTime = 10 * time.Minute
	rr, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, r := range rr.Records() {
		fmt.Fprintf(h, "%d %d %d %d %d %d %d %d %v\n",
			r.ID, r.Src, r.Dst, r.SrcPort, r.DstPort, r.Start, r.End, r.Bytes, r.Tag)
	}
	j, err := Analyze(rr, AnalyzeOptions{}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	h.Write(j)
	return hex.EncodeToString(h.Sum(nil))
}

// The determinism invariant must hold across parallelism settings, not
// just across repeated runs: the simulator is specified to be a pure
// function of its seed, so GOMAXPROCS=1 and GOMAXPROCS=NumCPU must
// produce byte-identical trace digests. This is the regression guard
// for anyone introducing scheduler-ordered work (dctlint's floatsum
// analyzer is the static half of the same contract).
func TestCrossGOMAXPROCSDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full shortened simulations")
	}
	prev := runtime.GOMAXPROCS(1)
	serial := traceDigest(t)
	runtime.GOMAXPROCS(runtime.NumCPU())
	parallel := traceDigest(t)
	runtime.GOMAXPROCS(prev)
	if serial != parallel {
		t.Fatalf("trace digest differs across GOMAXPROCS:\n  GOMAXPROCS=1:      %s\n  GOMAXPROCS=NumCPU: %s", serial, parallel)
	}
}
