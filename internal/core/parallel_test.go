package core

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dctraffic/internal/obs"
)

func TestShardRangesPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1 << 17, 1<<17 + 1, 10_000_000} {
		ranges := shardRanges(n, recordShardTarget, maxRecordShards)
		if n == 0 {
			if ranges != nil {
				t.Fatalf("n=0: want nil, got %v", ranges)
			}
			continue
		}
		if len(ranges) > maxRecordShards {
			t.Fatalf("n=%d: %d shards exceeds cap", n, len(ranges))
		}
		next := 0
		for _, r := range ranges {
			if r[0] != next {
				t.Fatalf("n=%d: gap or overlap at %v (expected lo %d)", n, r, next)
			}
			next = r[1]
		}
		if next != n {
			t.Fatalf("n=%d: shards cover [0,%d)", n, next)
		}
	}
	// The decomposition is a function of the input size only — the
	// determinism contract's rule 1.
	a := shardRanges(1_000_000, recordShardTarget, maxRecordShards)
	b := shardRanges(1_000_000, recordShardTarget, maxRecordShards)
	if len(a) != len(b) {
		t.Fatal("same input, different shard count")
	}
}

func TestRunTasksExecutesAll(t *testing.T) {
	for _, workers := range []int{1, 4, 64} {
		done := make([]int32, 100)
		tasks := make([]task, len(done))
		for i := range tasks {
			i := i
			tasks[i] = task{fmt.Sprintf("t%d", i), func() { atomic.AddInt32(&done[i], 1) }}
		}
		if err := runTasks(context.Background(), workers, tasks); err != nil {
			t.Fatal(err)
		}
		for i, v := range done {
			if v != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, v)
			}
		}
	}
}

func TestRunTasksPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if p := recover(); p != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, p)
				}
			}()
			_ = runTasks(context.Background(), workers, []task{
				{"ok", func() {}},
				{"bad", func() { panic("boom") }},
			})
			t.Fatalf("workers=%d: no panic", workers)
		}()
	}
}

func TestRunTasksCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := runTasks(ctx, 1, []task{{"t", func() { ran = true }}})
	if err == nil {
		t.Fatal("canceled context: want error")
	}
	if ran {
		t.Fatal("task ran after cancellation")
	}
}

// reportDigest hashes the headline JSON plus the full rendered Report —
// every figure slice and map (fmt prints maps key-sorted, so the
// rendering is deterministic). The one nested pointer, Fig2.TM, is
// hashed entry by entry and nil'd out of the fmt pass so no addresses
// leak into the digest.
func reportDigest(t *testing.T, rep *Report) string {
	t.Helper()
	d, err := ReportDigest(rep)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAnalyzeParallelDigestIdentity is the acceptance gate of the
// deterministic-parallelism contract: the sequential escape hatch and
// the parallel pipeline must produce byte-identical reports, at
// GOMAXPROCS=1 and at NumCPU, across seeds.
func TestAnalyzeParallelDigestIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("two shortened simulations + six analyses")
	}
	for _, seed := range []uint64{1, 7} {
		cfg := SmallRun()
		cfg.Duration = 20 * time.Minute
		cfg.DrainTime = 10 * time.Minute
		cfg.Seed = seed
		rr, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq := reportDigest(t, mustAnalyze(t, rr, WithSequential()))
		prev := runtime.GOMAXPROCS(1)
		par1 := reportDigest(t, mustAnalyze(t, rr, WithParallelism(8)))
		runtime.GOMAXPROCS(runtime.NumCPU())
		parN := reportDigest(t, mustAnalyze(t, rr, WithParallelism(8)))
		runtime.GOMAXPROCS(prev)
		if seq != par1 {
			t.Fatalf("seed %d: sequential %s != parallel@GOMAXPROCS=1 %s", seed, seq, par1)
		}
		if seq != parN {
			t.Fatalf("seed %d: sequential %s != parallel@GOMAXPROCS=NumCPU %s", seed, seq, parN)
		}
	}
}

// TestAnalyzeParallelRace drives the pipeline at maximum parallelism on
// a small run — the race-detector leg (see the Makefile) that proves the
// task slots really are disjoint.
func TestAnalyzeParallelRace(t *testing.T) {
	cfg := SmallRun()
	cfg.Duration = 10 * time.Minute
	cfg.DrainTime = 5 * time.Minute
	rr, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeRun(context.Background(), rr, WithParallelism(2*runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fig2.TM == nil || len(rep.Fig10.Magnitude) == 0 || rep.Fig9.Summary.NumFlows == 0 {
		t.Fatal("parallel analysis produced an empty report")
	}
}

func TestAnalyzeContextCanceled(t *testing.T) {
	rr, _ := smallRun(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeRun(ctx, rr); err == nil {
		t.Fatal("canceled context: want error")
	}
}

// The pipeline's observability: per-stage phases and counters land in
// the caller's registry, and attaching one does not change results.
// TestAnalyzeDefaultWorkersClamp pins the analysis side of the
// default-workers heuristic: at GOMAXPROCS=1 the default parallelism
// resolves to one worker (no pool goroutines, no channel handoffs) and
// the report stays bit-identical to the explicit sequential path.
func TestAnalyzeDefaultWorkersClamp(t *testing.T) {
	rr, _ := smallRun(t)
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	if got := defaultParallelism(); got != 1 {
		t.Fatalf("defaultParallelism at GOMAXPROCS=1 = %d, want 1", got)
	}
	reg := obs.NewRegistry()
	rep, err := AnalyzeRun(context.Background(), rr, WithAnalysisObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	if v := reg.Snapshot().Value("analyze.workers"); v != 1 {
		t.Fatalf("analyze.workers = %v, want 1 (single-proc clamp)", v)
	}
	seqRep, err := AnalyzeRun(context.Background(), rr, WithSequential())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportDigest(t, rep), reportDigest(t, seqRep); got != want {
		t.Fatal("default at GOMAXPROCS=1 diverged from sequential")
	}
}

func TestAnalyzeObserverPhases(t *testing.T) {
	rr, rep := smallRun(t)
	reg := obs.NewRegistry()
	obsRep, err := AnalyzeRun(context.Background(), rr, WithAnalysisObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportDigest(t, obsRep), reportDigest(t, rep); got != want {
		t.Fatal("attaching an observer changed the report")
	}
	snap := reg.Snapshot()
	phases := map[string]bool{}
	for _, p := range snap.Phases {
		phases[p.Name] = true
	}
	for _, want := range []string{"analyze.index", "analyze.figures", "analyze.congestion"} {
		if !phases[want] {
			t.Fatalf("missing phase %q in %+v", want, snap.Phases)
		}
	}
	var recordsTotal, tasksTotal float64
	for _, s := range snap.Series {
		switch s.Name {
		case "analyze.records_total":
			recordsTotal = s.Value
		case "analyze.tasks_total":
			tasksTotal = s.Value
		}
	}
	if recordsTotal <= 0 || tasksTotal <= 0 {
		t.Fatalf("pipeline counters missing: records=%v tasks=%v", recordsTotal, tasksTotal)
	}
}
