package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

func TestWriteTSV(t *testing.T) {
	_, rep := smallRun(t)
	dir := t.TempDir()
	if err := rep.WriteTSV(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 25 {
		t.Fatalf("only %d files written", len(entries))
	}
	// Spot-check a CDF file: header plus monotone data.
	data, err := os.ReadFile(filepath.Join(dir, "fig09_byflows_cdf.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("fig09 file too short: %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seconds\tcdf") {
		t.Fatalf("missing header: %q", lines[0])
	}
	// Episodes file parses.
	data, err = os.ReadFile(filepath.Join(dir, "fig05_episodes.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "link\tstart_s\tduration_s") {
		t.Fatal("episodes header wrong")
	}
	// Summary text included for humans.
	data, err = os.ReadFile(filepath.Join(dir, "summary.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Fig 12") {
		t.Fatal("summary.txt incomplete")
	}
}

func TestWriteTSVBadDir(t *testing.T) {
	_, rep := smallRun(t)
	if err := rep.WriteTSV("/proc/definitely/not/writable"); err == nil {
		t.Fatal("expected error for unwritable dir")
	}
}

func TestApplyDefaults(t *testing.T) {
	// Long run: paper-style defaults.
	o := AnalyzeOptions{}.ApplyDefaults(48 * 3600 * 1e9)
	if o.Fig8Period != 24*3600*1e9 {
		t.Fatalf("long-run Fig8Period = %v, want a day", o.Fig8Period)
	}
	if o.TomoBin != 600*1e9 {
		t.Fatalf("long-run TomoBin = %v, want 10m", o.TomoBin)
	}
	// Short run: periods shrink.
	o = AnalyzeOptions{}.ApplyDefaults(3600 * 1e9)
	if o.Fig8Period != 3600*1e9/8 {
		t.Fatalf("short-run Fig8Period = %v", o.Fig8Period)
	}
	if o.TomoBin != 3600*1e9/12 {
		t.Fatalf("short-run TomoBin = %v", o.TomoBin)
	}
	// Explicit values survive.
	o = AnalyzeOptions{CongestionThreshold: 0.9, TomoMaxTMs: 7}.ApplyDefaults(3600 * 1e9)
	if o.CongestionThreshold != 0.9 || o.TomoMaxTMs != 7 {
		t.Fatal("explicit options were overwritten")
	}
}

func TestReportJSON(t *testing.T) {
	_, rep := smallRun(t)
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var h Headline
	if err := jsonUnmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.ConnectionCap != 2 {
		t.Fatalf("connection cap %d in JSON, want 2", h.ConnectionCap)
	}
	if h.FracFlowsUnder10s <= 0 || h.PZeroAcrossRack <= 0 {
		t.Fatalf("headline fields empty: %+v", h)
	}
}
