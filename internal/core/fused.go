package core

import (
	"context"
	"errors"

	"dctraffic/internal/trace"
)

// WithRunOptions forwards simulator options (WithProgress,
// WithObserver, WithMetricsSink, ...) to the run RunAnalyze launches.
// It is meaningful only to RunAnalyze; plain AnalyzeSource/AnalyzeRun
// ignore it.
func WithRunOptions(opts ...RunOption) AnalyzeOption {
	return func(c *analyzeConfig) { c.runOpts = append(c.runOpts, opts...) }
}

// WithLiveBuffer bounds RunAnalyze's released-record FIFO: once the
// analyzer lags the simulator by n canonical-order records, the
// simulator blocks (backpressure) until the analyzer catches up. <= 0
// selects the default (1<<15 records). Results are identical at any
// bound; the knob trades decoupling slack for memory.
func WithLiveBuffer(n int) AnalyzeOption {
	return func(c *analyzeConfig) { c.liveCap = n }
}

// withLiveSource marks the analysis as the consumer half of a fused
// pipeline (internal; set by RunAnalyze).
func withLiveSource(ls *trace.LiveSource) AnalyzeOption {
	return func(c *analyzeConfig) { c.live = ls }
}

// RunAnalyze fuses the simulate and analyze phases: it builds the
// cluster, runs the event loop on its own goroutine, and streams the
// completed-flow records through a trace.LiveSource into AnalyzeSource
// on the calling goroutine — the record-derived figures (2, 3/4, 9, 10,
// 11, the incast record pass) compute while the simulation is still
// producing, and only the run-derived work (congestion episodes,
// Figures 5–8, attribution, tomography, overhead) waits for the drain.
// End-to-end wall clock approaches max(simulate, analyze) instead of
// their sum, and the report is bit-identical to Run followed by
// AnalyzeRun at any worker count on either side (enforced by
// TestRunAnalyzeMatchesTwoPhase).
//
// Options: analysis options apply as in AnalyzeSource; WithRunOptions
// forwards simulator options; WithLiveBuffer bounds the seam's FIFO.
// Cancellation and errors propagate across the seam in both directions:
// a simulator failure surfaces from the analyzer ahead of any buffered
// records, an analyzer failure cancels the simulator, and RunAnalyze
// joins the simulator goroutine before returning either way.
func RunAnalyze(ctx context.Context, cfg RunConfig, opts ...AnalyzeOption) (*RunResult, *Report, error) {
	// Pre-scan the options for the run-side knobs (the scan writes the
	// analyze knobs into a throwaway config; AnalyzeSource re-applies
	// everything itself).
	var probe analyzeConfig
	for _, o := range opts {
		o(&probe)
	}

	live := trace.NewLiveSource(probe.liveCap)
	p, err := prepareRun(cfg, probe.runOpts...)
	if err != nil {
		return nil, nil, err
	}
	p.recordSink = live
	p.rr.Collector.SetSink(live.Emit)
	live.Instrument(p.o.reg)

	// Backstop: whatever path exits this function, no producer can stay
	// blocked in Advance afterwards. No-op when the stream completed.
	defer live.Close(nil)

	simCtx, cancelSim := context.WithCancel(ctx)
	defer cancelSim()
	simDone := make(chan error, 1)
	go func() {
		_, err := p.execute(simCtx)
		// CloseSend publishes the outcome to the consumer: a clean EOF
		// after the remaining records, or the error ahead of them.
		live.CloseSend(err)
		simDone <- err
	}()

	analyzeOpts := append([]AnalyzeOption{WithRun(p.rr)}, opts...)
	analyzeOpts = append(analyzeOpts, withLiveSource(live))
	rep, aerr := AnalyzeSource(ctx, live, analyzeOpts...)
	if aerr != nil {
		// Unblock and stop the producer, then join it.
		live.Close(aerr)
		cancelSim()
	}
	serr := <-simDone

	switch {
	case aerr == nil && serr == nil:
		return p.rr, rep, nil
	case aerr != nil && serr != nil && errors.Is(serr, context.Canceled) && ctx.Err() == nil:
		// The simulator stopped only because the analyzer failed first
		// and we canceled it: the analyzer's error is the cause.
		return nil, nil, aerr
	case serr != nil:
		return nil, nil, serr
	default:
		return nil, nil, aerr
	}
}
