package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dctraffic/internal/stats"
)

// WriteTSV writes every figure's data series into dir as tab-separated
// files, one per plotted curve, ready for gnuplot/matplotlib. The
// directory is created if missing. File names follow the paper's figure
// numbering (fig03_within_density.tsv, fig12_tomogravity_rmsre.tsv, ...).
func (r *Report) WriteTSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create tsv dir: %w", err)
	}
	files := map[string]string{
		"fig03_within_density.tsv":    pointsTSV("loge_bytes\tdensity", r.Fig3.WithinDensity),
		"fig03_across_density.tsv":    pointsTSV("loge_bytes\tdensity", r.Fig3.AcrossDensity),
		"fig04_within_cdf.tsv":        pointsTSV("frac_correspondents\tcdf", r.Fig4.WithinCDF),
		"fig04_across_cdf.tsv":        pointsTSV("frac_correspondents\tcdf", r.Fig4.AcrossCDF),
		"fig06_duration_cdf.tsv":      pointsTSV("seconds\tcdf", r.Fig6.DurationCDF),
		"fig07_overlap_rate_cdf.tsv":  pointsTSV("mbps\tcdf", r.Fig7.OverlapCDF),
		"fig07_all_rate_cdf.tsv":      pointsTSV("mbps\tcdf", r.Fig7.AllCDF),
		"fig09_byflows_cdf.tsv":       pointsTSV("seconds\tcdf", r.Fig9.ByFlowsCDF),
		"fig09_bybytes_cdf.tsv":       pointsTSV("seconds\tcdf", r.Fig9.ByBytesCDF),
		"fig10_magnitude.tsv":         pointsTSV("seconds\tbytes_per_sec", r.Fig10.Magnitude),
		"fig10_change_10s.tsv":        seriesTSV("idx\tnormalized_change", r.Fig10.Change10s),
		"fig10_change_100s.tsv":       seriesTSV("idx\tnormalized_change", r.Fig10.Change100s),
		"fig11_cluster_cdf.tsv":       pointsTSV("ms\tcdf", r.Fig11.ClusterCDF),
		"fig11_tor_cdf.tsv":           pointsTSV("ms\tcdf", r.Fig11.TorCDF),
		"fig11_server_cdf.tsv":        pointsTSV("ms\tcdf", r.Fig11.ServerCDF),
		"fig12_tomogravity_rmsre.tsv": seriesTSV("tm\trmsre", r.Fig12.Tomogravity),
		"fig12_jobs_rmsre.tsv":        seriesTSV("tm\trmsre", r.Fig12.TomogravityJobs),
		"fig12_roles_rmsre.tsv":       seriesTSV("tm\trmsre", r.Fig12.TomogravityRoles),
		"fig12_sparsity_rmsre.tsv":    seriesTSV("tm\trmsre", r.Fig12.SparsityMax),
		"fig13_error_vs_sparsity.tsv": pointsTSV("truth_sparsity\trmsre", r.Fig13.Points),
		"fig14_truth_cdf.tsv":         pointsTSV("frac_entries_75pct\tcdf", r.Fig14.TruthCDF),
		"fig14_tomogravity_cdf.tsv":   pointsTSV("frac_entries_75pct\tcdf", r.Fig14.TomogravityCDF),
		"fig14_jobs_cdf.tsv":          pointsTSV("frac_entries_75pct\tcdf", r.Fig14.JobsCDF),
		"fig14_sparsity_cdf.tsv":      pointsTSV("frac_entries_75pct\tcdf", r.Fig14.SparsityCDF),
		"fig02_heatmap.txt":           HeatASCII(r.Fig2.TM, 60),
		"fig05_episodes.tsv":          r.episodesTSV(),
		"fig08_impact.tsv":            r.impactTSV(),
		"summary.txt":                 r.Text(),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return fmt.Errorf("core: write %s: %w", name, err)
		}
	}
	return nil
}

func pointsTSV(header string, pts []stats.Point) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	for _, p := range pts {
		fmt.Fprintf(&b, "%g\t%g\n", p.X, p.Y)
	}
	return b.String()
}

func seriesTSV(header string, xs []float64) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	for i, x := range xs {
		fmt.Fprintf(&b, "%d\t%g\n", i, x)
	}
	return b.String()
}

// episodesTSV dumps Figure 5's raw episodes: link, start, duration.
func (r *Report) episodesTSV() string {
	var b strings.Builder
	b.WriteString("link\tstart_s\tduration_s\n")
	for _, e := range r.Fig5.Episodes {
		fmt.Fprintf(&b, "%d\t%g\t%g\n", e.Link, e.Start.Seconds(), e.Duration().Seconds())
	}
	return b.String()
}

// impactTSV dumps Figure 8's per-period data.
func (r *Report) impactTSV() string {
	var b strings.Builder
	b.WriteString("period\tcongested_reads\tclear_reads\tp_fail_congested\tp_fail_clear\tincrease_pct\n")
	for _, d := range r.Fig8.Days {
		fmt.Fprintf(&b, "%d\t%d\t%d\t%g\t%g\t%g\n",
			d.Day, d.CongestedReads, d.ClearReads, d.PFailCongested, d.PFailClear, d.IncreasePct)
	}
	return b.String()
}
