package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"dctraffic/internal/congestion"
	"dctraffic/internal/flows"
	"dctraffic/internal/netsim"
	"dctraffic/internal/obs"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/tomo"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// AnalyzeOption configures AnalyzeSource, mirroring dctraffic.Run's
// functional-option pattern.
type AnalyzeOption func(*analyzeConfig)

// analyzeConfig is the resolved option set. It embeds the legacy
// AnalyzeOptions struct — that struct remains the single definition of
// the per-figure knobs (and of their defaults, via ApplyDefaults); the
// WithX options and the deprecated struct-based shims both write here.
type analyzeConfig struct {
	AnalyzeOptions

	top      *topology.Topology
	duration netsim.Time
	run      *RunResult
	cdfCap   int
	progress func(StreamProgress)

	// Fused-pipeline fields (see fused.go). live marks the source as a
	// still-running simulation's LiveSource: the run-only inputs
	// (episodes, tomography, Figure 8) are deferred until the source
	// drains, because they read simulator state that is only final then.
	live    *trace.LiveSource
	liveCap int
	runOpts []RunOption

	// exec, when non-nil, runs analysis tasks on a caller-provided
	// shared pool instead of per-analysis goroutines (see
	// WithTaskExecutor).
	exec netsim.Executor
}

// WithRun supplies the run whose trace is being analyzed: its topology
// and duration, plus the run-only inputs (SNMP link stats for
// congestion episodes, the job event log for tomography priors and
// Figure 8, collector overhead). AnalyzeRun applies it for you; use it
// directly only when pairing a RunResult with a different Source.
func WithRun(rr *RunResult) AnalyzeOption {
	return func(c *analyzeConfig) {
		c.run = rr
		c.top = rr.Top
		c.duration = rr.Config.Duration
	}
}

// WithTopology supplies the cluster topology for run-less (trace file)
// analysis. Required when WithRun is absent.
func WithTopology(top *topology.Topology) AnalyzeOption {
	return func(c *analyzeConfig) { c.top = top }
}

// WithDuration supplies the trace horizon for run-less analysis.
// Required when WithRun is absent.
func WithDuration(d netsim.Time) AnalyzeOption {
	return func(c *analyzeConfig) { c.duration = d }
}

// WithParallelism bounds the analysis worker goroutines. 0 means
// runtime.GOMAXPROCS(0), clamped to 1 on a single-proc box (see
// defaultParallelism). Any value yields bit-identical results (see
// parallel.go's determinism contract).
func WithParallelism(n int) AnalyzeOption {
	return func(c *analyzeConfig) { c.Parallelism = n }
}

// WithTaskExecutor runs analysis tasks on a caller-provided shared
// executor instead of goroutines this analysis owns — the seam the
// fleet batch executor uses to schedule many concurrent pipelines over
// one core budget. The parallelism bound still applies per analysis
// (at most Parallelism tasks in flight, preserving the O(window)
// memory bound), and results stay bit-identical: tasks keep their
// disjoint slots and the coordinator still merges in submission order.
// Ignored when the effective parallelism is 1.
func WithTaskExecutor(ex netsim.Executor) AnalyzeOption {
	return func(c *analyzeConfig) { c.exec = ex }
}

// WithSequential forces Parallelism 1 — the debugging escape hatch.
// The same windowed algorithm runs inline, so results are identical.
func WithSequential() AnalyzeOption {
	return func(c *analyzeConfig) { c.Sequential = true }
}

// WithAnalysisObserver attaches a metrics registry. (WithObserver is
// taken by the simulator's RunOption of the same shape.) Like the
// simulator's registry it must not be read concurrently; the pipeline
// touches it only from the coordinating goroutine.
func WithAnalysisObserver(reg *obs.Registry) AnalyzeOption {
	return func(c *analyzeConfig) { c.Observer = reg }
}

// WithFig2Window sets the short TM snapshot window (paper: 10 s).
func WithFig2Window(w netsim.Time) AnalyzeOption {
	return func(c *analyzeConfig) { c.Fig2Window = w }
}

// WithFig2At sets the snapshot window start (default: mid-run).
func WithFig2At(t netsim.Time) AnalyzeOption {
	return func(c *analyzeConfig) { c.Fig2At = t }
}

// WithCongestionThreshold sets C (default 0.7).
func WithCongestionThreshold(c float64) AnalyzeOption {
	return func(cfg *analyzeConfig) { cfg.CongestionThreshold = c }
}

// WithFig8Period sets the read-attempt grouping period (paper: a day).
func WithFig8Period(d netsim.Time) AnalyzeOption {
	return func(c *analyzeConfig) { c.Fig8Period = d }
}

// WithFig10Bin sets the fine TM timescale (paper: 10 s).
func WithFig10Bin(d netsim.Time) AnalyzeOption {
	return func(c *analyzeConfig) { c.Fig10Bin = d }
}

// WithInactivityTimeout enables the §3 flow-boundary methodology before
// the flow-level analyses: records sharing a five-tuple quiet for less
// than the timeout merge into one flow.
func WithInactivityTimeout(d netsim.Time) AnalyzeOption {
	return func(c *analyzeConfig) { c.InactivityTimeout = d }
}

// WithTomoBin sets the tomography TM timescale (paper: 10 min).
func WithTomoBin(d netsim.Time) AnalyzeOption {
	return func(c *analyzeConfig) { c.TomoBin = d }
}

// WithTomoMaxTMs caps the tomography instances analyzed.
func WithTomoMaxTMs(n int) AnalyzeOption {
	return func(c *analyzeConfig) { c.TomoMaxTMs = n }
}

// WithJobPriorAlpha scales the §5.3 multiplier.
func WithJobPriorAlpha(a float64) AnalyzeOption {
	return func(c *analyzeConfig) { c.JobPriorAlpha = a }
}

// WithTomoCold disables warm-starting the sparsity-max simplex across
// consecutive tomography windows.
func WithTomoCold() AnalyzeOption {
	return func(c *analyzeConfig) { c.TomoCold = true }
}

// WithCDFSampleCap bounds the exact-sample count of each whole-run
// streaming CDF (flow durations/rates, inter-arrivals, Figure 7 rates)
// before it converts to a bounded quantile sketch. 0 selects
// stats.DefaultCDFSampleCap; negative keeps every CDF exact regardless
// of trace length (unbounded memory — the pre-streaming behavior).
func WithCDFSampleCap(n int) AnalyzeOption {
	return func(c *analyzeConfig) { c.cdfCap = n }
}

// StreamProgress reports the sweep's position after each window
// boundary. Buffered counts records currently held by the sliding
// WindowView — the quantity streaming analysis bounds — so callers can
// sample heap or write profiles at the peak (cmd/dcanalyze's
// -mem-profile does exactly that).
type StreamProgress struct {
	// Time is the window boundary just completed.
	Time netsim.Time
	// Duration is the analysis horizon.
	Duration netsim.Time
	// Records counts records delivered by the source so far.
	Records int64
	// Buffered counts records currently held in the sliding window.
	Buffered int
	// PeakBuffered is the high-water mark of Buffered.
	PeakBuffered int
}

// WithStreamProgress attaches a per-boundary progress callback, called
// on the coordinating goroutine.
func WithStreamProgress(fn func(StreamProgress)) AnalyzeOption {
	return func(c *analyzeConfig) { c.progress = fn }
}

// AnalyzeRun regenerates every figure from a completed run — the
// functional-options successor of Analyze/AnalyzeContext. It streams
// the run's records through AnalyzeSource; results are bit-identical
// to analyzing a written-out trace of the same run.
func AnalyzeRun(ctx context.Context, rr *RunResult, opts ...AnalyzeOption) (*Report, error) {
	return AnalyzeSource(ctx, rr.Source(), append([]AnalyzeOption{WithRun(rr)}, opts...)...)
}

// maxSweepTime seals the window view after the source drains.
const maxSweepTime = netsim.Time(math.MaxInt64)

// fig34Samples is the number of Figure 3/4 sample windows pooled across
// the run.
const fig34Samples = 16

// winKind orders window kinds within one boundary (any fixed order
// works; this one is part of the deterministic task sequence).
type winKind uint8

const (
	winFig2 winKind = iota
	winFig2Wide
	winFig34
	winFig10
	winTomo
)

// figWindow is one figure's time window in the sweep registry.
type figWindow struct {
	kind     winKind
	idx      int
	from, to netsim.Time
}

// fig34Slot holds one Figure 3/4 sample window's statistics.
type fig34Slot struct {
	used                   bool
	es                     tm.EntryStats
	zeroWithin, zeroAcross float64
	cs                     tm.CorrespondentStats
}

// tomoSlot holds one tomography window's results.
type tomoSlot struct {
	ok                               bool
	eTG, eTJ, eTR, eSM               float64
	fracTrue, fracTG, fracTJ, fracSM float64
	smNonZeros, smHits               float64
	pivots, refactors                int
	warm, fellBack                   bool
}

// chunkResult holds one record chunk's episode-join results.
type chunkResult struct {
	overlap, all *stats.CDF
	attr         congestion.Attribution
}

// tomoDeferred is one tomography window parked by the fused pipeline:
// the window slice is captured at its sweep boundary (identical to the
// two-phase slice) but solved only after the simulation drains, because
// the job event log it reads is written until then.
type tomoDeferred struct {
	idx      int
	from, to netsim.Time
	slice    []trace.FlowRecord
}

// streamAnalysis is the coordinator state of one AnalyzeSource sweep.
type streamAnalysis struct {
	cfg      *analyzeConfig
	reg      *obs.Registry
	top      *topology.Topology
	duration netsim.Time
	numHosts int
	pool     *streamPool
	taskCnt  *obs.Counter

	// fused marks a live (still-running-simulation) source: run-derived
	// work is deferred to finishRun, record-derived work streams as
	// usual. See fused.go.
	fused         bool
	pendingChunks [][]trace.FlowRecord
	tomoPending   []tomoDeferred

	src    trace.Source
	peeked *trace.FlowRecord
	eof    bool
	wv     *trace.WindowView

	wins   []figWindow
	sufMin []netsim.Time

	// run-only inputs, nil/zero in trace mode
	links   []topology.LinkID
	eps     []congestion.Episode
	epIdx   *congestion.EpisodeIndex
	binSize netsim.Time

	// per-record streaming consumers
	incast           *congestion.IncastTracker
	ia               *flows.InterArrivalTracker
	reasm            *flows.StreamReassembler
	byFlows          *stats.StreamCDF
	byBytes          *stats.StreamCDF
	rates            *stats.StreamCDF
	flowCount        int64
	flowStartsBefore int64
	rawStartsBefore  int64

	// record chunks (Figure 7 join + attribution), run mode only
	chunkBuf    []trace.FlowRecord
	chunkSlots  []*chunkResult
	chunkDone   []<-chan struct{}
	chunkNext   int
	fig7Overlap *stats.StreamCDF
	fig7All     *stats.StreamCDF
	attrParts   []congestion.Attribution

	// windowed figure slots
	fig2M        *tm.Matrix
	fig2Patterns tm.PatternSummary
	fig34Slots   []fig34Slot
	fig10Mats    []*tm.Matrix
	fig10Done    []<-chan struct{}
	fig10Next    int
	ring         *tm.ChangeRing

	// tomography: one warm-start chain on the coordinator
	tomoProblem            *tomo.Problem
	tomoEst                *tomo.Estimator
	tomoSlots              []tomoSlot
	xTrue                  []float64
	tb, ttg, ttj, ttr, tsm []float64
}

// AnalyzeSource regenerates the paper's figures from a record stream in
// bounded memory. src must deliver records in canonical (Start, ID)
// order (trace.SliceSource and trace.FileSource both do); options must
// supply a topology and duration, via WithRun or WithTopology +
// WithDuration. Without a run, the figures that need run-only inputs
// (overhead, congestion episodes and everything downstream — Figures
// 5–8, attribution, tomography) are left zero and the record-derived
// figures (2, 3, 4, 9, 10, 11, the incast locality/fan-in audit) are
// computed from the stream alone.
//
// The pipeline sweeps the source once. A window registry — Figure 2's
// snapshot, the 16 Figure 3/4 sample windows, Figure 10's TM bins, the
// tomography windows — is built up front from the duration alone
// (decomposition rule 1), sorted by closing boundary. At each boundary
// the sweep delivers records into a sliding trace.WindowView plus the
// online accumulators (streaming CDFs, inter-arrival and incast
// trackers, the windowed flow reassembler, Figure 7/attribution record
// chunks), hands each closing window its own slice copy as a pool task
// writing its own slot (rule 2), merges the completed slot prefix in
// slot order on this goroutine (rule 3), and retires every record no
// open window can reach. Whole-run statistics stay exact below the
// WithCDFSampleCap sample cap and degrade to deterministic bounded
// quantile sketches beyond it, so small-scale reports are bit-identical
// to the in-memory path at any worker count while week-long traces run
// in O(window) memory.
//
// The three obs phases are unchanged from the in-memory pipeline:
// "analyze.index" (validation, episode detection, window registry),
// "analyze.figures" (the sweep and the record-figure merges),
// "analyze.congestion" (Figures 5–8, incast, attribution).
//
// It returns an error on cancellation, on a source read failure, or on
// a source that violates the canonical order.
func AnalyzeSource(ctx context.Context, src trace.Source, opts ...AnalyzeOption) (*Report, error) {
	var cfg analyzeConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.top == nil {
		return nil, errors.New("core: AnalyzeSource needs a topology: pass WithRun or WithTopology")
	}
	if cfg.duration <= 0 {
		return nil, errors.New("core: AnalyzeSource needs a positive duration: pass WithRun or WithDuration")
	}
	cfg.AnalyzeOptions = cfg.AnalyzeOptions.ApplyDefaults(cfg.duration)
	if cfg.live != nil && cfg.run == nil {
		return nil, errors.New("core: fused analysis needs its run: use RunAnalyze")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: analyze canceled: %w", err)
	}

	workers := cfg.Parallelism
	if cfg.Sequential {
		workers = 1
	}
	if workers <= 0 {
		workers = defaultParallelism()
	}
	reg := cfg.Observer

	a := &streamAnalysis{
		cfg:      &cfg,
		reg:      reg,
		top:      cfg.top,
		duration: cfg.duration,
		numHosts: cfg.top.NumHosts(),
		src:      src,
		wv:       trace.NewWindowView(),
		fused:    cfg.live != nil,
	}

	stopIndex := reg.StartPhase("analyze.index")
	a.setup()
	stopIndex()
	reg.Gauge("analyze.workers").Set(float64(workers))
	a.taskCnt = reg.Counter("analyze.tasks_total")
	a.pool = newStreamPoolExec(ctx, workers, cfg.exec)

	stopFigures := reg.StartPhase("analyze.figures")
	if err := a.sweep(ctx); err != nil {
		a.pool.wait() // cleanup; a task panic re-raises here
		if ctx.Err() != nil {
			return nil, fmt.Errorf("core: analyze canceled: %w", ctx.Err())
		}
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	if a.fused {
		// The source hit EOF, so the producing simulation has finished:
		// the run-only inputs are final and the deferred work can run.
		if err := a.finishRun(ctx); err != nil {
			a.pool.wait()
			return nil, fmt.Errorf("core: analyze canceled: %w", err)
		}
	}
	if err := a.pool.wait(); err != nil {
		return nil, fmt.Errorf("core: analyze canceled: %w", err)
	}
	a.finalDrain()
	reg.Counter("analyze.records_total").Add(a.wv.Delivered())
	rep := &Report{}
	a.mergeFigures(rep)
	stopFigures()

	stopCongestion := reg.StartPhase("analyze.congestion")
	a.congestionFigures(rep)
	stopCongestion()
	return rep, nil
}

// setup builds the window registry, the online accumulators, and — in
// run mode — the episode index and the tomography chain.
func (a *streamAnalysis) setup() {
	cfg := a.cfg
	duration := a.duration

	a.incast = congestion.NewIncastTracker(a.top)
	a.ia = flows.NewInterArrivalTracker(a.top, cfg.cdfCap)
	a.byFlows = stats.NewStreamCDF(cfg.cdfCap)
	a.byBytes = stats.NewStreamCDF(cfg.cdfCap)
	a.rates = stats.NewStreamCDF(cfg.cdfCap)
	if cfg.InactivityTimeout > 0 {
		a.reasm = flows.NewStreamReassembler(cfg.InactivityTimeout, a.consumeFlow)
	}

	if rr := cfg.run; rr != nil {
		a.links = a.top.InterSwitchLinks()
		a.fig7Overlap = stats.NewStreamCDF(cfg.cdfCap)
		a.fig7All = stats.NewStreamCDF(cfg.cdfCap)
		a.tomoProblem = tomo.NewProblem(a.top)
		a.tomoEst = a.tomoProblem.NewEstimator(tomo.EstimatorOptions{Cold: cfg.TomoCold})
		a.xTrue = make([]float64, a.tomoProblem.NumPairs())
		if !a.fused {
			// Fused mode defers episode detection to finishRun: the link
			// stats are still being written by the simulation here.
			a.eps = congestion.Detect(rr.Net.Stats(), a.top, cfg.CongestionThreshold, a.links)
			a.epIdx = congestion.NewEpisodeIndex(a.eps)
			a.binSize = rr.Net.Stats().BinSize()
		}
	}

	// The window registry: every figure window, built from the duration
	// alone, sorted by closing boundary. The suffix-minimum of window
	// starts gives the retirement watermark once a prefix has closed.
	sampleWindow := 10 * cfg.Fig2Window
	wins := []figWindow{
		{kind: winFig2, from: cfg.Fig2At, to: cfg.Fig2At + cfg.Fig2Window},
		{kind: winFig2Wide, from: cfg.Fig2At, to: cfg.Fig2At + sampleWindow},
	}
	a.fig34Slots = make([]fig34Slot, fig34Samples)
	for k := 0; k < fig34Samples; k++ {
		from := duration * netsim.Time(k) / fig34Samples
		wins = append(wins, figWindow{kind: winFig34, idx: k, from: from, to: from + sampleWindow})
	}
	nBins := int((duration + cfg.Fig10Bin - 1) / cfg.Fig10Bin)
	a.fig10Mats = make([]*tm.Matrix, nBins)
	a.ring = tm.NewChangeRing(1, 10)
	for i := 0; i < nBins; i++ {
		from, to := tm.SeriesBinWindow(i, cfg.Fig10Bin, duration)
		wins = append(wins, figWindow{kind: winFig10, idx: i, from: from, to: to})
	}
	if cfg.run != nil {
		tomoWindows := int((duration + cfg.TomoBin - 1) / cfg.TomoBin)
		if tomoWindows > cfg.TomoMaxTMs {
			tomoWindows = cfg.TomoMaxTMs
		}
		a.tomoSlots = make([]tomoSlot, tomoWindows)
		for i := 0; i < tomoWindows; i++ {
			from, to := tm.SeriesBinWindow(i, cfg.TomoBin, duration)
			wins = append(wins, figWindow{kind: winTomo, idx: i, from: from, to: to})
		}
	}
	sort.Slice(wins, func(i, j int) bool {
		if wins[i].to != wins[j].to {
			return wins[i].to < wins[j].to
		}
		if wins[i].kind != wins[j].kind {
			return wins[i].kind < wins[j].kind
		}
		return wins[i].idx < wins[j].idx
	})
	a.wins = wins
	a.sufMin = make([]netsim.Time, len(wins)+1)
	a.sufMin[len(wins)] = maxSweepTime
	for i := len(wins) - 1; i >= 0; i-- {
		a.sufMin[i] = a.sufMin[i+1]
		if wins[i].from < a.sufMin[i] {
			a.sufMin[i] = wins[i].from
		}
	}
}

// sweep runs the boundary loop: deliver, dispatch, merge the ready
// prefix, retire.
func (a *streamAnalysis) sweep(ctx context.Context) error {
	i := 0
	for i < len(a.wins) {
		if err := ctx.Err(); err != nil {
			return err
		}
		boundary := a.wins[i].to
		if err := a.advance(boundary); err != nil {
			return err
		}
		for i < len(a.wins) && a.wins[i].to == boundary {
			a.dispatch(&a.wins[i])
			i++
		}
		a.drainReady(false)
		a.wv.Retire(a.sufMin[i])
		a.reg.Gauge("analyze.stream.peak_buffered_records").SetMax(float64(a.wv.Buffered()))
		if a.cfg.progress != nil {
			a.cfg.progress(StreamProgress{
				Time:         boundary,
				Duration:     a.duration,
				Records:      a.wv.Delivered(),
				Buffered:     a.wv.Buffered(),
				PeakBuffered: a.wv.PeakBuffered(),
			})
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Past the last window: drain the source tail into the per-record
	// consumers, flush the reassembler and the final partial chunk.
	if err := a.advance(maxSweepTime); err != nil {
		return err
	}
	if a.reasm != nil {
		a.reasm.Close()
	}
	a.flushChunk()
	return nil
}

// advance delivers every source record with Start < boundary and seals
// the delivery watermark at boundary.
func (a *streamAnalysis) advance(boundary netsim.Time) error {
	for !a.eof {
		if a.peeked == nil {
			rec, err := a.src.Next()
			if err == io.EOF {
				a.eof = true
				break
			}
			if err != nil {
				return fmt.Errorf("source: %w", err)
			}
			a.peeked = &rec
		}
		if a.peeked.Start >= boundary {
			break
		}
		r := *a.peeked
		a.peeked = nil
		if err := a.deliver(r); err != nil {
			return err
		}
	}
	a.wv.Seal(boundary)
	return nil
}

// deliver feeds one record to the window view, the per-record
// consumers, and the chunk buffer.
func (a *streamAnalysis) deliver(r trace.FlowRecord) error {
	if err := a.wv.Append(r); err != nil {
		return err
	}
	if r.Start < a.duration {
		a.rawStartsBefore++
	}
	a.incast.Observe(&r)
	if a.epIdx != nil || a.fused {
		a.chunkBuf = append(a.chunkBuf, r)
		if len(a.chunkBuf) >= recordShardTarget {
			a.flushChunk()
		}
	}
	if a.reasm != nil {
		a.reasm.Feed(r)
	} else {
		a.consumeFlow(r)
	}
	return nil
}

// consumeFlow feeds one flow record (raw, or reassembled when
// InactivityTimeout is set) to the flow-level accumulators.
func (a *streamAnalysis) consumeFlow(r trace.FlowRecord) {
	a.flowCount++
	if r.Start < a.duration {
		a.flowStartsBefore++
	}
	d := r.Duration().Seconds()
	a.byFlows.Add(d)
	a.byBytes.AddWeighted(d, float64(r.Bytes))
	if rate := r.AvgRateBps(); rate > 0 {
		a.rates.Add(rate / 1e6)
	}
	a.ia.Observe(&r)
}

// flushChunk seals the buffered record chunk. Chunk boundaries depend
// only on the record count (rule 1), so the fused and two-phase paths
// cut identical chunks; fused mode parks them until the episode index
// exists (finishRun), the two-phase path submits immediately.
func (a *streamAnalysis) flushChunk() {
	if len(a.chunkBuf) == 0 {
		return
	}
	chunk := a.chunkBuf
	a.chunkBuf = nil
	if a.epIdx == nil {
		a.pendingChunks = append(a.pendingChunks, chunk)
		return
	}
	a.submitChunk(chunk)
}

// submitChunk hands one sealed chunk to the pool as an episode-join
// task.
func (a *streamAnalysis) submitChunk(chunk []trace.FlowRecord) {
	slot := &chunkResult{}
	a.chunkSlots = append(a.chunkSlots, slot)
	a.taskCnt.Inc()
	a.chunkDone = append(a.chunkDone, a.pool.submit(func() {
		slot.overlap, slot.all = congestion.OverlapRateCDFsIndexed(chunk, a.epIdx, a.top)
		slot.attr = congestion.AttributeIndexed(chunk, a.epIdx, a.top)
	}))
}

// dispatch hands a closing window its slice copy: matrix windows go to
// the pool, tomography windows run inline so the warm-start chain stays
// on the coordinator.
func (a *streamAnalysis) dispatch(w *figWindow) {
	from, to := w.from, w.to
	slice := a.wv.Slice(from, to)
	a.taskCnt.Inc()
	switch w.kind {
	case winFig2:
		a.pool.submit(func() {
			a.fig2M = tm.ServerMatrix(slice, a.numHosts, from, to)
		})
	case winFig2Wide:
		a.pool.submit(func() {
			// The pattern shares come from a 10×-longer window so they are
			// stable (a single 10 s window is dominated by whichever
			// shuffle is active).
			wide := tm.ServerMatrix(slice, a.numHosts, from, to)
			a.fig2Patterns = tm.SummarizePatterns(wide, a.top)
		})
	case winFig34:
		k := w.idx
		a.pool.submit(func() {
			m := tm.ServerMatrix(slice, a.numHosts, from, to)
			if m.NonZero() == 0 {
				return
			}
			s := &a.fig34Slots[k]
			s.used = true
			s.es = tm.ComputeEntryStats(m, a.top)
			s.zeroWithin = s.es.PZeroWithinRack
			s.zeroAcross = s.es.PZeroAcrossRack
			s.cs = tm.ComputeCorrespondents(m, a.top)
		})
	case winFig10:
		i := w.idx
		a.fig10Done = append(a.fig10Done, a.pool.submit(func() {
			a.fig10Mats[i] = tm.ServerMatrix(slice, a.numHosts, from, to)
		}))
	case winTomo:
		if a.fused {
			// The estimator chain reads the job event log, which the
			// still-running simulation is writing: park the window's slice
			// (captured here, so it is identical to the two-phase slice)
			// and solve the chain in window order in finishRun.
			a.tomoPending = append(a.tomoPending, tomoDeferred{idx: w.idx, from: from, to: to, slice: slice})
			return
		}
		a.tomoWindow(w.idx, from, to, slice)
	}
}

// finishRun executes the run-derived work a fused sweep deferred. It
// runs after the source hit EOF — the producing simulation has
// returned, so the link stats, job event log and collector are final
// and reading them cannot race. Episode detection, the parked chunk
// submissions and the tomography chain all happen in the same order the
// two-phase path uses, so results are bit-identical.
func (a *streamAnalysis) finishRun(ctx context.Context) error {
	cfg := a.cfg
	rr := cfg.run
	a.eps = congestion.Detect(rr.Net.Stats(), a.top, cfg.CongestionThreshold, a.links)
	a.epIdx = congestion.NewEpisodeIndex(a.eps)
	a.binSize = rr.Net.Stats().BinSize()
	for _, chunk := range a.pendingChunks {
		if err := ctx.Err(); err != nil {
			return err
		}
		a.submitChunk(chunk)
	}
	a.pendingChunks = nil
	for i := range a.tomoPending {
		if err := ctx.Err(); err != nil {
			return err
		}
		d := &a.tomoPending[i]
		a.tomoWindow(d.idx, d.from, d.to, d.slice)
		d.slice = nil
	}
	a.tomoPending = nil
	return nil
}

// tomoWindow runs one tomography window through the shared warm-start
// estimator chain, replicating the sequential loop's skip-on-error
// semantics. Windows arrive in index order (the registry is sorted by
// boundary), so consecutive solvable windows warm-start exactly like a
// single chain over the whole series.
func (a *streamAnalysis) tomoWindow(i int, from, to netsim.Time, slice []trace.FlowRecord) {
	truth := tm.TorMatrix(slice, a.top, from, to)
	if truth.Total() <= 0 {
		return
	}
	est := a.tomoEst
	rr := a.cfg.run
	a.tb = est.LinkCountsInto(a.tb, truth)
	a.tomoProblem.VecFromTMInto(a.xTrue, truth)

	var err error
	a.ttg, err = est.TomogravityInto(a.ttg, a.tb)
	if err != nil {
		return
	}
	mult := tomo.JobMultiplier(rr.Log, a.top, from, from+a.cfg.TomoBin, a.cfg.JobPriorAlpha)
	a.ttj, err = est.TomogravityWithMultiplierInto(a.ttj, a.tb, mult)
	if err != nil {
		return
	}
	roleMult := tomo.RoleAwareMultiplier(rr.Log, a.top, from, from+a.cfg.TomoBin, a.cfg.JobPriorAlpha)
	a.ttr, err = est.TomogravityWithMultiplierInto(a.ttr, a.tb, roleMult)
	if err != nil {
		return
	}
	a.tsm, err = est.SparsityMaxInto(a.tsm, a.tb)
	if err != nil {
		return
	}
	st := est.SolveStats()

	s := &a.tomoSlots[i]
	s.ok = true
	s.eTG = tomo.RMSRE(a.xTrue, a.ttg, 0.75)
	s.eTJ = tomo.RMSRE(a.xTrue, a.ttj, 0.75)
	s.eTR = tomo.RMSRE(a.xTrue, a.ttr, 0.75)
	s.eSM = tomo.RMSRE(a.xTrue, a.tsm, 0.75)
	_, s.fracTrue = tomo.SparsityOfVec(a.xTrue, 0.75)
	_, s.fracTG = tomo.SparsityOfVec(a.ttg, 0.75)
	_, s.fracTJ = tomo.SparsityOfVec(a.ttj, 0.75)
	_, s.fracSM = tomo.SparsityOfVec(a.tsm, 0.75)
	s.smNonZeros = float64(tomo.NonZeroCount(a.tsm))
	s.smHits = float64(tomo.HeavyHitterOverlap(a.xTrue, a.tsm, 97))
	s.pivots = st.Pivots
	s.refactors = st.Refactorizations
	s.warm = st.Warm
	s.fellBack = st.FellBack
}

// drainReady merges the completed prefix of the ordered slot sequences
// (Figure 10 bins into the change ring, record chunks into the Figure 7
// CDFs and attribution parts), in slot order only. With block set it
// asserts completeness (used after pool.wait, when every done channel
// is closed).
func (a *streamAnalysis) drainReady(block bool) {
	for a.fig10Next < len(a.fig10Done) {
		if !ready(a.fig10Done[a.fig10Next], block) {
			break
		}
		m := a.fig10Mats[a.fig10Next]
		if m == nil {
			break // task skipped after cancellation; caller handles
		}
		a.ring.Push(m)
		a.fig10Mats[a.fig10Next] = nil
		a.fig10Next++
	}
	for a.chunkNext < len(a.chunkDone) {
		if !ready(a.chunkDone[a.chunkNext], block) {
			break
		}
		slot := a.chunkSlots[a.chunkNext]
		if slot.overlap == nil {
			break
		}
		a.fig7Overlap.MergeCDF(slot.overlap)
		a.fig7All.MergeCDF(slot.all)
		a.attrParts = append(a.attrParts, slot.attr)
		a.chunkSlots[a.chunkNext] = nil
		a.chunkNext++
	}
}

// finalDrain merges every remaining slot after the pool has drained.
func (a *streamAnalysis) finalDrain() { a.drainReady(true) }

// ready reports whether done has closed, blocking when block is set.
func ready(done <-chan struct{}, block bool) bool {
	if block {
		<-done
		return true
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// mergeFigures reduces the record-derived figure slots into the report,
// in slot order, on the coordinating goroutine (rule 3).
func (a *streamAnalysis) mergeFigures(rep *Report) {
	cfg := a.cfg

	if rr := cfg.run; rr != nil {
		rep.Overhead = rr.Collector.Overhead(a.duration)
		// Replace the model's compression constant with the ratio
		// actually achieved on this run's log sample.
		if ratio, err := rr.Collector.MeasuredCompression(0); err == nil && ratio > 0 {
			rep.Overhead.CompressionRatio = ratio
			rep.Overhead.UploadBytesPerServerPerDay = rep.Overhead.LogBytesPerServerPerDay / ratio
		}
	}

	rep.Fig2 = Fig2Data{
		From: cfg.Fig2At, To: cfg.Fig2At + cfg.Fig2Window,
		TM:       a.fig2M,
		Patterns: a.fig2Patterns,
	}

	var es tm.EntryStats
	var zeroWithin, zeroAcross float64
	var fracWithin, fracAcross, withinCounts, acrossCounts []float64
	for k := range a.fig34Slots {
		s := &a.fig34Slots[k]
		if !s.used {
			continue
		}
		es.WithinRack = append(es.WithinRack, s.es.WithinRack...)
		es.AcrossRack = append(es.AcrossRack, s.es.AcrossRack...)
		zeroWithin += s.zeroWithin
		zeroAcross += s.zeroAcross
		fracWithin = append(fracWithin, s.cs.FracWithin...)
		fracAcross = append(fracAcross, s.cs.FracAcross...)
		withinCounts = append(withinCounts, s.cs.MedianWithinCount)
		acrossCounts = append(acrossCounts, s.cs.MedianAcrossCount)
	}
	if n := len(withinCounts); n > 0 {
		es.PZeroWithinRack = zeroWithin / float64(n)
		es.PZeroAcrossRack = zeroAcross / float64(n)
	}
	wd, ad := es.LogHistograms(30)
	rep.Fig3 = Fig3Data{Entries: es, WithinDensity: wd, AcrossDensity: ad}
	rep.Fig4 = Fig4Data{
		Stats: tm.CorrespondentStats{
			FracWithin:        fracWithin,
			FracAcross:        fracAcross,
			MedianWithinCount: stats.Median(withinCounts),
			MedianAcrossCount: stats.Median(acrossCounts),
		},
		WithinCDF: stats.NewCDF(fracWithin).Points(50),
		AcrossCDF: stats.NewCDF(fracAcross).Points(50),
	}

	rep.Fig9 = Fig9Data{
		ByFlowsCDF: a.byFlows.Points(100),
		ByBytesCDF: a.byBytes.Points(100),
		Summary: flows.Summary{
			NumFlows:             int(a.flowCount),
			FracShorterThan10s:   a.byFlows.P(10),
			FracLongerThan200s:   1 - a.byFlows.P(200),
			BytesInFlowsUnder25s: a.byBytes.P(25),
			MedianDurationSec:    a.byFlows.Quantile(0.5),
			MedianRateMbps:       a.rates.Quantile(0.5),
			ArrivalRatePerSec:    float64(a.flowStartsBefore) / a.duration.Seconds(),
		},
	}

	mag := a.ring.Magnitude()
	magPts := make([]stats.Point, len(mag))
	binSec := cfg.Fig10Bin.Seconds()
	for i, v := range mag {
		magPts[i] = stats.Point{X: float64(i) * binSec, Y: v / binSec}
	}
	ch10 := a.ring.Changes(0)
	ch100 := a.ring.Changes(1)
	rep.Fig10 = Fig10Data{
		Bin:              cfg.Fig10Bin,
		Magnitude:        magPts,
		Change10s:        ch10,
		Change100s:       ch100,
		MedianChange10s:  stats.Median(nonZero(ch10)),
		MedianChange100s: stats.Median(nonZero(ch100)),
	}

	rep.Fig11 = Fig11Data{
		ClusterCDF:    a.ia.Cluster.Points(100),
		TorCDF:        a.ia.Tor.Points(100),
		ServerCDF:     a.ia.Server.Points(100),
		ModeMs:        a.ia.ModeMs(),
		ArrivalPerSec: float64(a.rawStartsBefore) / a.duration.Seconds(),
	}

	if cfg.run != nil {
		a.mergeTomo(rep)
	}
}

// mergeTomo replays the tomography slots in window order, feeding the
// solver-effort series on the coordinating goroutine (the registry is
// not goroutine-safe).
func (a *streamAnalysis) mergeTomo(rep *Report) {
	reg := a.reg
	var f12 Fig12Data
	var f13 Fig13Data
	truthCDF, tgCDF, jobsCDF, smCDF := &stats.CDF{}, &stats.CDF{}, &stats.CDF{}, &stats.CDF{}
	var smNonZeros, smHits []float64
	var xs, ys []float64
	pivotHist := reg.Histogram("tomo.pivots_per_window", obs.Pow2Bounds(1, 16))
	refacHist := reg.Histogram("tomo.refactorizations_per_window", obs.Pow2Bounds(1, 10))
	warmWindows := reg.Counter("tomo.windows_warm")
	coldWindows := reg.Counter("tomo.windows_cold")
	fallbackWindows := reg.Counter("tomo.windows_fallback")
	for i := range a.tomoSlots {
		s := &a.tomoSlots[i]
		if !s.ok {
			continue
		}
		pivotHist.Observe(float64(s.pivots))
		refacHist.Observe(float64(s.refactors))
		if s.warm {
			warmWindows.Inc()
		} else {
			coldWindows.Inc()
		}
		if s.fellBack {
			fallbackWindows.Inc()
		}
		f12.NumTMs++
		f12.Tomogravity = append(f12.Tomogravity, s.eTG)
		f12.TomogravityJobs = append(f12.TomogravityJobs, s.eTJ)
		f12.TomogravityRoles = append(f12.TomogravityRoles, s.eTR)
		f12.SparsityMax = append(f12.SparsityMax, s.eSM)
		truthCDF.Add(s.fracTrue)
		tgCDF.Add(s.fracTG)
		jobsCDF.Add(s.fracTJ)
		smCDF.Add(s.fracSM)
		smNonZeros = append(smNonZeros, s.smNonZeros)
		smHits = append(smHits, s.smHits)
		xs = append(xs, s.fracTrue)
		ys = append(ys, s.eTG)
	}
	f12.MedianTomogravity = stats.Median(f12.Tomogravity)
	f12.MedianTomogravityJobs = stats.Median(f12.TomogravityJobs)
	f12.MedianTomogravityRoles = stats.Median(f12.TomogravityRoles)
	f12.MedianSparsityMax = stats.Median(f12.SparsityMax)
	for i := range xs {
		f13.Points = append(f13.Points, stats.Point{X: xs[i], Y: ys[i]})
	}
	if len(xs) >= 2 {
		f13.Pearson = stats.Pearson(xs, ys)
		f13.FitA, f13.FitB = stats.LogFit(xs, ys)
	}
	rep.Fig12 = f12
	rep.Fig13 = f13
	rep.Fig14 = Fig14Data{
		TruthCDF:         truthCDF.Points(50),
		TomogravityCDF:   tgCDF.Points(50),
		JobsCDF:          jobsCDF.Points(50),
		SparsityCDF:      smCDF.Points(50),
		SparsityNonZeros: stats.Mean(smNonZeros),
		HeavyHitterHits:  stats.Mean(smHits),
	}
}

// congestionFigures computes everything downstream of the episode set.
// Most of it needs run-only inputs; the incast audit's record-derived
// half streams in either mode.
func (a *streamAnalysis) congestionFigures(rep *Report) {
	cfg := a.cfg
	maxConns := 0
	if rr := cfg.run; rr != nil {
		maxConns = rr.Cluster.Config().MaxConnsPerVertex

		rep.Fig5 = Fig5Data{
			Episodes:       a.eps,
			LinksMonitored: len(a.links),
			FracLinks10s:   congestion.FracLinksWithEpisodeAtLeast(a.eps, a.links, 10*timeSecond),
			FracLinks100s:  congestion.FracLinksWithEpisodeAtLeast(a.eps, a.links, 100*timeSecond),
			MeanConcurrent: stats.MeanInt(congestion.ConcurrencySeries(a.eps, a.binSize, a.duration)),
			Correlation:    congestion.Correlate(a.eps),
		}

		durCDF, over10, longest := congestion.DurationStats(a.eps)
		rep.Fig6 = Fig6Data{
			DurationCDF: durCDF.Points(100),
			Episodes:    durCDF.N(),
			Over10s:     over10,
			LongestSec:  longest,
			FracUnder10: durCDF.P(10),
		}

		rep.Fig7 = Fig7Data{
			OverlapCDF:        a.fig7Overlap.Points(100),
			AllCDF:            a.fig7All.Points(100),
			MedianOverlapMbps: a.fig7Overlap.Quantile(0.5),
			MedianAllMbps:     a.fig7All.Quantile(0.5),
		}

		numPeriods := int(a.duration / cfg.Fig8Period)
		if numPeriods < 1 {
			numPeriods = 1
		}
		days := congestion.ReadFailureImpact(rr.Log, rr.Records(), a.eps, a.top, cfg.Fig8Period, numPeriods)
		var increases []float64
		for _, d := range days {
			if d.CongestedReads > 0 && d.ClearReads > 0 {
				increases = append(increases, d.IncreasePct)
			}
		}
		rep.Fig8 = Fig8Data{Period: cfg.Fig8Period, Days: days, MedianIncreasePct: stats.Median(increases)}

		rep.Attribution = congestion.MergeAttribution(a.attrParts)
	}

	rep.Incast = a.incast.Audit(a.eps, a.binSize, a.duration, maxConns)
}

// timeSecond avoids importing time for two literals.
const timeSecond = netsim.Time(1e9)

func nonZero(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if x != 0 {
			out = append(out, x)
		}
	}
	return out
}
