package core

import (
	"context"
	"math"
	"testing"

	"dctraffic/internal/obs"
)

// bitsEqualSeries fails unless two figure series match bit for bit.
func bitsEqualSeries(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s[%d]: %v vs %v", label, i, want[i], got[i])
		}
	}
}

// TestAnalyzeTomoColdVsWarm pins the warm-start digest policy: warm
// starts may only move the sparsity-max series. Every tomogravity-family
// series must stay bit-identical to a TomoCold run (which in turn
// reproduces the pre-warm-start Problem methods bit for bit — see the
// tomo package's Estimator tests), and both runs must analyze the same
// set of windows.
func TestAnalyzeTomoColdVsWarm(t *testing.T) {
	rr, warm := smallRun(t)
	cold := mustAnalyze(t, rr, WithTomoCold())

	if warm.Fig12.NumTMs == 0 {
		t.Fatal("no tomography windows analyzed")
	}
	if warm.Fig12.NumTMs != cold.Fig12.NumTMs {
		t.Fatalf("window counts differ: warm %d vs cold %d", warm.Fig12.NumTMs, cold.Fig12.NumTMs)
	}
	bitsEqualSeries(t, "Fig12.Tomogravity", cold.Fig12.Tomogravity, warm.Fig12.Tomogravity)
	bitsEqualSeries(t, "Fig12.TomogravityJobs", cold.Fig12.TomogravityJobs, warm.Fig12.TomogravityJobs)
	bitsEqualSeries(t, "Fig12.TomogravityRoles", cold.Fig12.TomogravityRoles, warm.Fig12.TomogravityRoles)
}

// TestAnalyzeTomoSolverSeries checks the solver-effort observability:
// a default (warm) run reports per-window pivot and refactorization
// histograms covering every analyzed window plus warm/cold counters
// that partition them, and a TomoCold run reports zero warm windows.
func TestAnalyzeTomoSolverSeries(t *testing.T) {
	rr, _ := smallRun(t)

	reg := obs.NewRegistry()
	rep, err := AnalyzeRun(context.Background(), rr, WithAnalysisObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	windows := float64(rep.Fig12.NumTMs)
	pivots, ok := snap.Get("tomo.pivots_per_window")
	if !ok || float64(pivots.Count) != windows {
		t.Fatalf("pivot histogram covers %d windows, want %v", pivots.Count, windows)
	}
	refacs, ok := snap.Get("tomo.refactorizations_per_window")
	if !ok || float64(refacs.Count) != windows {
		t.Fatalf("refactorization histogram covers %d windows, want %v", refacs.Count, windows)
	}
	nWarm := snap.Value("tomo.windows_warm")
	nCold := snap.Value("tomo.windows_cold")
	if nWarm+nCold != windows {
		t.Fatalf("warm %v + cold %v != windows %v", nWarm, nCold, windows)
	}
	if nWarm == 0 {
		t.Fatal("warm repair never engaged on the default pipeline")
	}

	regCold := obs.NewRegistry()
	if _, err := AnalyzeRun(context.Background(), rr, WithAnalysisObserver(regCold), WithTomoCold()); err != nil {
		t.Fatal(err)
	}
	if v := regCold.Snapshot().Value("tomo.windows_warm"); v != 0 {
		t.Fatalf("TomoCold run reported %v warm windows", v)
	}
}
