package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONLGz streams records as gzip-compressed JSON lines — the
// "compress the logs prior to uploading" step of §2 — and returns the
// uncompressed and compressed byte counts so callers can verify the
// paper's ≥3× reduction on real data rather than assuming it.
func WriteJSONLGz(w io.Writer, records []FlowRecord) (raw, compressed int64, err error) {
	cw := &countingWriter{w: w}
	gz := gzip.NewWriter(cw)
	enc := json.NewEncoder(&countingTee{w: gz, n: &raw})
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return 0, 0, fmt.Errorf("trace: encode record %d: %w", i, err)
		}
	}
	if err := gz.Close(); err != nil {
		return 0, 0, fmt.Errorf("trace: close gzip: %w", err)
	}
	return raw, cw.n, nil
}

// ReadJSONLGz parses a gzip-compressed JSONL flow-record stream.
func ReadJSONLGz(r io.Reader) ([]FlowRecord, error) {
	gz, err := gzip.NewReader(bufio.NewReader(r))
	if err != nil {
		return nil, fmt.Errorf("trace: open gzip: %w", err)
	}
	defer gz.Close()
	return ReadJSONL(gz)
}

// MeasureCompression compresses the records to a byte sink and reports
// the achieved ratio (raw/compressed). Used by the overhead report to
// ground the §2 compression claim in this run's actual data.
func MeasureCompression(records []FlowRecord) (ratio float64, err error) {
	raw, comp, err := WriteJSONLGz(io.Discard, records)
	if err != nil {
		return 0, err
	}
	if comp == 0 {
		return 0, nil
	}
	return float64(raw) / float64(comp), nil
}

// countingWriter counts bytes passing through to w.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingTee forwards to w while accumulating the byte count into n.
type countingTee struct {
	w io.Writer
	n *int64
}

func (c *countingTee) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}
