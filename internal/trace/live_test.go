package trace

import (
	"io"
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/obs"
)

// liveRec builds a minimal record; canonical order is (Start, ID).
func liveRec(id int64, start, end netsim.Time) FlowRecord {
	return FlowRecord{ID: netsim.FlowID(id), Start: start, End: end, Bytes: 1}
}

// drainLive collects everything until EOF, failing on any other error.
func drainLive(t *testing.T, l *LiveSource) []FlowRecord {
	t.Helper()
	var out []FlowRecord
	for {
		rec, err := l.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, rec)
	}
}

// TestLiveSourceAdversarialOrder drives the reorder buffer with the
// worst completion order the simulator can produce: a long-lived
// elephant flow that starts first and ends last pins the watermark at
// its Start while dozens of later-starting flows complete (in reverse
// start order, for spite), including simultaneous starts that must
// tie-break by ID.
func TestLiveSourceAdversarialOrder(t *testing.T) {
	l := NewLiveSource(0)
	reg := obs.NewRegistry()
	l.Instrument(reg)

	const elephantStart = netsim.Time(10)
	// Mice complete first, in reverse start order; ties at Start 500.
	for i := 20; i > 0; i-- {
		l.Emit(liveRec(int64(100+i), netsim.Time(1000+10*i), netsim.Time(2000-10*netsim.Time(i))))
	}
	l.Emit(liveRec(31, 500, 1500))
	l.Emit(liveRec(30, 500, 1600)) // same Start, lower ID, emitted later
	// Watermark moves but stays pinned at the elephant's Start: nothing
	// with Start >= 10 may be released while the elephant is active.
	l.Advance(elephantStart)
	if got := l.Buffered(); got != 22 {
		t.Fatalf("buffered %d, want 22 (watermark pinned by elephant)", got)
	}
	// The elephant finally completes; the producer's next watermark
	// jumps past every buffered Start.
	l.Emit(liveRec(1, elephantStart, 5000))
	l.Advance(5001)
	l.CloseSend(nil)

	got := drainLive(t, l)
	if len(got) != 23 {
		t.Fatalf("drained %d records, want 23", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := &got[i-1], &got[i]
		if !recordLess(a, b) {
			t.Fatalf("record %d out of canonical order: (%v,%d) then (%v,%d)",
				i, a.Start, a.ID, b.Start, b.ID)
		}
	}
	if got[0].ID != 1 {
		t.Fatalf("first record ID %d, want the elephant (1)", got[0].ID)
	}
	if got[1].ID != 30 || got[2].ID != 31 {
		t.Fatalf("simultaneous starts must tie-break by ID: got %d then %d, want 30 then 31",
			got[1].ID, got[2].ID)
	}
	if peak := l.PeakBuffered(); peak != 23 {
		t.Fatalf("peak buffered %d, want 23", peak)
	}

	// A second EOF read and the idempotent CloseSend must both hold.
	if _, err := l.Next(); err != io.EOF {
		t.Fatalf("Next after drain: %v, want io.EOF", err)
	}
	l.CloseSend(nil)
}

// TestLiveSourceBackpressure fills a tiny FIFO and checks Advance
// blocks until the consumer drains, counting the waits.
func TestLiveSourceBackpressure(t *testing.T) {
	l := NewLiveSource(2)
	for i := 0; i < 6; i++ {
		l.Emit(liveRec(int64(i), netsim.Time(i), netsim.Time(100+i)))
	}
	advanced := make(chan struct{})
	go func() {
		l.Advance(100) // wants to release 6 into a FIFO of 2: must block
		l.CloseSend(nil)
		close(advanced)
	}()
	select {
	case <-advanced:
		t.Fatal("Advance returned without consumer draining a full FIFO")
	case <-time.After(20 * time.Millisecond):
	}
	got := drainLive(t, l)
	<-advanced
	if len(got) != 6 {
		t.Fatalf("drained %d, want 6", len(got))
	}
	if l.Watermark() != 100 {
		t.Fatalf("watermark %v, want 100", l.Watermark())
	}
}

// TestLiveSourceProducerError checks a failed producer preempts
// buffered records: the consumer must see the error, not a truncated
// stream that looks complete.
func TestLiveSourceProducerError(t *testing.T) {
	l := NewLiveSource(0)
	l.Emit(liveRec(1, 0, 5))
	l.Advance(10)
	wantErr := io.ErrUnexpectedEOF
	l.CloseSend(wantErr)
	if _, err := l.Next(); err != wantErr {
		t.Fatalf("Next after failed CloseSend: %v, want %v (released records must not mask the failure)", err, wantErr)
	}
}

// TestLiveSourceConsumerClose cancels from the consumer side mid-stream
// and asserts the producer goroutine unblocks and exits: Close must
// wake a Advance blocked on a full FIFO and turn further Emit/Advance
// into no-ops.
func TestLiveSourceConsumerClose(t *testing.T) {
	l := NewLiveSource(1)
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		for i := 0; i < 100; i++ {
			l.Emit(liveRec(int64(i), netsim.Time(i), netsim.Time(1000+i)))
		}
		l.Advance(1000) // blocks on the 1-record FIFO until Close
		for i := 100; i < 200; i++ {
			l.Emit(liveRec(int64(i), netsim.Time(i), netsim.Time(1000+i)))
		}
		l.Advance(2000)
		l.CloseSend(nil)
	}()
	if _, err := l.Next(); err != nil { // take one so the producer is mid-Advance
		t.Fatalf("Next: %v", err)
	}
	wantErr := io.ErrClosedPipe
	l.Close(wantErr)
	select {
	case <-producerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked after consumer Close")
	}
	if _, err := l.Next(); err != wantErr {
		t.Fatalf("Next after Close: %v, want %v", err, wantErr)
	}
	if got := l.Buffered(); got != 0 {
		t.Fatalf("buffered %d after Close, want 0 (memory released)", got)
	}
}

// TestLiveSourceEmitBelowWatermarkPanics pins the soundness check: a
// record below the watermark means the producer's frontier lied, and
// silently reordering would corrupt every downstream figure.
func TestLiveSourceEmitBelowWatermarkPanics(t *testing.T) {
	l := NewLiveSource(0)
	l.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("Emit below watermark: want panic")
		}
	}()
	l.Emit(liveRec(1, 50, 60))
}
