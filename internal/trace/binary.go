package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dctraffic/internal/netsim"
	"dctraffic/internal/topology"
)

// Binary trace codec. JSONL (Writer/Reader) stays the interchange
// format dcsim emits and dcanalyze reads; the binary codec exists for
// internal I/O on hot paths — FileSource's external-sort spill chunks
// read and write it — where parsing dominates. The stream is a 6-byte
// header (4-byte magic, a format byte, a version byte) followed by
// length-prefixed little-endian records: a uvarint payload length, then
// the fixed 78-byte v1 payload. The length prefix is what lets future
// versions grow the payload without breaking old readers' framing.
const (
	binaryFormatFixed   = 0x01 // fixed-width record payloads
	binaryVersion       = 0x01
	binaryRecordLen     = 78
	binaryRecordLenMax  = 1 << 12 // sanity bound on the length prefix
	binaryCanceledFlag  = 0x01
	binaryHeaderMagic   = "DCTB"
	binaryHeaderLen     = 6
	binaryFramedRecBuf  = binary.MaxVarintLen64 + binaryRecordLen
	binaryWriterBufSize = 1 << 16
)

// BinaryWriter streams flow records in the binary trace format.
// Call Flush when done.
type BinaryWriter struct {
	bw *bufio.Writer
	n  int
}

// NewBinaryWriter writes the format header and returns a record writer
// over w.
func NewBinaryWriter(w io.Writer) (*BinaryWriter, error) {
	bw := bufio.NewWriterSize(w, binaryWriterBufSize)
	var hdr [binaryHeaderLen]byte
	copy(hdr[:], binaryHeaderMagic)
	hdr[4] = binaryFormatFixed
	hdr[5] = binaryVersion
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: write binary header: %w", err)
	}
	return &BinaryWriter{bw: bw}, nil
}

// Write appends one record to the stream.
func (w *BinaryWriter) Write(rec *FlowRecord) error {
	var buf [binaryFramedRecBuf]byte
	n := binary.PutUvarint(buf[:], binaryRecordLen)
	p := buf[n : n+binaryRecordLen]
	le := binary.LittleEndian
	le.PutUint64(p[0:], uint64(rec.ID))
	le.PutUint64(p[8:], uint64(rec.Src))
	le.PutUint64(p[16:], uint64(rec.Dst))
	le.PutUint16(p[24:], rec.SrcPort)
	le.PutUint16(p[26:], rec.DstPort)
	le.PutUint64(p[28:], uint64(rec.Start))
	le.PutUint64(p[36:], uint64(rec.End))
	le.PutUint64(p[44:], uint64(rec.Bytes))
	le.PutUint64(p[52:], uint64(rec.Tag.Job))
	le.PutUint64(p[60:], uint64(rec.Tag.Phase))
	le.PutUint64(p[68:], uint64(rec.Tag.Vertex))
	p[76] = uint8(rec.Tag.Kind)
	var flags uint8
	if rec.Canceled {
		flags |= binaryCanceledFlag
	}
	p[77] = flags
	if _, err := w.bw.Write(buf[:n+binaryRecordLen]); err != nil {
		return fmt.Errorf("trace: write binary record %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// Count reports the number of records written so far.
func (w *BinaryWriter) Count() int { return w.n }

// Flush writes any buffered output to the underlying writer.
func (w *BinaryWriter) Flush() error { return w.bw.Flush() }

// BinaryReader streams flow records from a binary trace.
type BinaryReader struct {
	br  *bufio.Reader
	n   int
	buf [binaryRecordLenMax]byte
}

// NewBinaryReader validates the format header and returns a record
// reader over r.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReaderSize(r, binaryWriterBufSize)
	var hdr [binaryHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read binary header: %w", err)
	}
	if string(hdr[:4]) != binaryHeaderMagic {
		return nil, fmt.Errorf("trace: bad binary magic %q", hdr[:4])
	}
	if hdr[4] != binaryFormatFixed {
		return nil, fmt.Errorf("trace: unknown binary format byte %#x", hdr[4])
	}
	if hdr[5] != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary version %d", hdr[5])
	}
	return &BinaryReader{br: br}, nil
}

// Read returns the next record. It returns io.EOF (unwrapped) at the
// end of the stream; a stream truncated mid-record is an error.
func (r *BinaryReader) Read() (FlowRecord, error) {
	var rec FlowRecord
	n, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return rec, io.EOF
	}
	if err != nil {
		return rec, fmt.Errorf("trace: binary record %d length: %w", r.n, err)
	}
	if n < binaryRecordLen || n > binaryRecordLenMax {
		return rec, fmt.Errorf("trace: binary record %d has implausible length %d", r.n, n)
	}
	p := r.buf[:n]
	if _, err := io.ReadFull(r.br, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return rec, fmt.Errorf("trace: binary record %d payload: %w", r.n, err)
	}
	le := binary.LittleEndian
	rec.ID = netsim.FlowID(le.Uint64(p[0:]))
	rec.Src = topology.ServerID(le.Uint64(p[8:]))
	rec.Dst = topology.ServerID(le.Uint64(p[16:]))
	rec.SrcPort = le.Uint16(p[24:])
	rec.DstPort = le.Uint16(p[26:])
	rec.Start = netsim.Time(le.Uint64(p[28:]))
	rec.End = netsim.Time(le.Uint64(p[36:]))
	rec.Bytes = int64(le.Uint64(p[44:]))
	rec.Tag.Job = int(int64(le.Uint64(p[52:])))
	rec.Tag.Phase = int(int64(le.Uint64(p[60:])))
	rec.Tag.Vertex = int(int64(le.Uint64(p[68:])))
	rec.Tag.Kind = netsim.FlowKind(p[76])
	rec.Canceled = p[77]&binaryCanceledFlag != 0
	// Bytes beyond offset 78 belong to a future minor revision and are
	// ignored; the version byte gates incompatible changes.
	r.n++
	return rec, nil
}

// WriteBinary writes a fully-materialized record slice in the binary
// trace format — a convenience over BinaryWriter.
func WriteBinary(w io.Writer, records []FlowRecord) error {
	bw, err := NewBinaryWriter(w)
	if err != nil {
		return err
	}
	for i := range records {
		if err := bw.Write(&records[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses an entire binary flow-record stream into memory — a
// convenience over BinaryReader.
func ReadBinary(r io.Reader) ([]FlowRecord, error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	var out []FlowRecord
	for {
		rec, err := br.Read()
		if err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
