package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/topology"
)

func rig() (*netsim.Network, *Collector) {
	top := topology.MustNew(topology.SmallConfig())
	net := netsim.New(top, netsim.Options{})
	col := NewCollector(top, Config{})
	net.AddObserver(col)
	return net, col
}

func TestCollectorRecordsFlows(t *testing.T) {
	net, col := rig()
	net.StartFlow(0, 1, 10<<20, netsim.FlowTag{Job: 3, Kind: netsim.KindShuffle}, nil)
	net.StartFlow(5, 25, 1<<20, netsim.FlowTag{Kind: netsim.KindControl}, nil)
	net.RunAll()
	recs := col.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	r := recs[0]
	if r.Bytes == 0 || r.End <= r.Start {
		t.Fatalf("bad record: %+v", r)
	}
	if r.Tag.Job != 3 && recs[1].Tag.Job != 3 {
		t.Fatal("attribution tag lost")
	}
	if col.NumRecords() != 2 {
		t.Fatal("NumRecords mismatch")
	}
}

func TestRecordDurationAndRate(t *testing.T) {
	r := FlowRecord{Start: time.Second, End: 3 * time.Second, Bytes: 250_000_000}
	if r.Duration() != 2*time.Second {
		t.Fatalf("Duration = %v", r.Duration())
	}
	if got := r.AvgRateBps(); got != 1e9 {
		t.Fatalf("AvgRateBps = %v, want 1e9", got)
	}
	zero := FlowRecord{Start: time.Second, End: time.Second, Bytes: 5}
	if zero.AvgRateBps() != 0 {
		t.Fatal("zero-duration rate should be 0")
	}
}

func TestExternalHostsNotInstrumented(t *testing.T) {
	net, col := rig()
	ext := topology.ServerID(net.Top().NumServers())
	net.StartFlow(ext, 0, 1<<20, netsim.FlowTag{Kind: netsim.KindIngest}, nil)
	net.RunAll()
	// The flow is still recorded (the cluster endpoint saw it) but only
	// cluster servers accumulate events.
	if col.NumRecords() != 1 {
		t.Fatal("ingress flow not recorded")
	}
	var clusterEvents int64
	for _, e := range col.events {
		clusterEvents += e
	}
	if clusterEvents == 0 {
		t.Fatal("cluster endpoint recorded no events")
	}
}

func TestOverheadModel(t *testing.T) {
	net, col := rig()
	// Enough traffic for non-zero medians: a flow per server pair.
	for s := 0; s < 40; s++ {
		net.StartFlow(topology.ServerID(s), topology.ServerID((s+17)%80), 32<<20, netsim.FlowTag{}, nil)
	}
	net.RunAll()
	o := col.Overhead(time.Hour)
	if o.TotalEvents == 0 {
		t.Fatal("no events accounted")
	}
	if o.MedianCPUPct < 0 || o.MedianCPUPct > 10 {
		t.Fatalf("CPU overhead %v%% not plausible (paper: small single digits)", o.MedianCPUPct)
	}
	if o.MedianDiskPct < 0 || o.MedianDiskPct > 10 {
		t.Fatalf("disk overhead %v%%", o.MedianDiskPct)
	}
	if o.CompressionRatio < 3 {
		t.Fatalf("compression ratio %v, paper reports at least 3x", o.CompressionRatio)
	}
	if o.UploadBytesPerServerPerDay >= o.LogBytesPerServerPerDay {
		t.Fatal("compression should reduce upload volume")
	}
	if o.CyclesPerNetworkByte <= 0 || o.CyclesPerNetworkByte > 100 {
		t.Fatalf("cycles/byte = %v", o.CyclesPerNetworkByte)
	}
}

func TestOverheadZeroElapsed(t *testing.T) {
	_, col := rig()
	o := col.Overhead(0) // must not divide by zero
	if o.TotalEvents != 0 {
		t.Fatal("no traffic should mean no events")
	}
}

func TestEventCountsScaleWithBytes(t *testing.T) {
	net, col := rig()
	net.StartFlow(0, 1, 10<<20, netsim.FlowTag{}, nil) // 10 ops
	net.RunAll()
	// src: connect + 10 sends + close = 12; dst likewise.
	if col.events[0] != 12 || col.events[1] != 12 {
		t.Fatalf("events = %d/%d, want 12/12", col.events[0], col.events[1])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []FlowRecord{
		{ID: 1, Src: 0, Dst: 5, SrcPort: 1024, DstPort: 443, Start: time.Second,
			End: 2 * time.Second, Bytes: 99, Tag: netsim.FlowTag{Job: 7, Kind: netsim.KindShuffle}},
		{ID: 2, Src: 3, Dst: 4, Start: 0, End: time.Millisecond, Bytes: 1},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("expected 2 lines, got %d", got)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != recs[0] || back[1] != recs[1] {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected parse error")
	}
	recs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatal("empty input should give empty records")
	}
}
