package trace

import (
	"compress/gzip"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Source is a stream of flow records in canonical order: nondecreasing
// (Start, ID), the same total order RecordView sorts into (FlowIDs are
// unique, so the order is strict). Next returns io.EOF after the last
// record. Analysis consumes a Source exactly once, front to back, which
// is what lets the pipeline run in O(window) memory instead of
// O(trace).
type Source interface {
	Next() (FlowRecord, error)
}

// recordLess orders records by (Start, ID) — the canonical trace order.
func recordLess(a, b *FlowRecord) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.ID < b.ID
}

// SliceSource streams an in-memory record slice in canonical order.
// It is the adapter between the existing Collector/RunResult world and
// the streaming pipeline: NewSliceSource sorts a copy exactly the way
// NewRecordView does, so a slice-backed analysis and a file-backed one
// see the identical record sequence.
type SliceSource struct {
	recs []FlowRecord
	i    int
}

// NewSliceSource copies and canonically sorts records.
func NewSliceSource(records []FlowRecord) *SliceSource {
	recs := make([]FlowRecord, len(records))
	copy(recs, records)
	sort.Slice(recs, func(a, b int) bool { return recordLess(&recs[a], &recs[b]) })
	return &SliceSource{recs: recs}
}

// Next returns the next record or io.EOF.
func (s *SliceSource) Next() (FlowRecord, error) {
	if s.i >= len(s.recs) {
		return FlowRecord{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// Len reports the total number of records in the source.
func (s *SliceSource) Len() int { return len(s.recs) }

// FileOptions tunes FileSource's external sort.
type FileOptions struct {
	// SortChunk is the number of records sorted in memory per spill
	// chunk; <= 0 selects the default (1<<18, ~16 MB of records).
	SortChunk int
	// TempDir receives spill files; empty uses the OS default.
	TempDir string
}

const (
	defaultSortChunk = 1 << 18
	// mergeFanIn bounds open file descriptors during the k-way merge;
	// larger inputs merge in multiple passes.
	mergeFanIn = 64
)

// FileSource streams a JSONL trace file (TraceWriter output, .gz
// accepted) in canonical order without ever materializing the whole
// trace: records are read in SortChunk-sized chunks, each chunk is
// sorted and spilled to a temporary file, and the spill files are
// k-way merged (multi-pass above mergeFanIn inputs). A trace that fits
// in one chunk never touches disk. Memory is O(SortChunk) during
// loading and O(fan-in) during streaming. Spills use the binary codec
// (binary.go) — spill/merge is internal I/O, invisible to callers, and
// the fixed-width format parses several times faster than JSONL —
// while JSONL stays the interchange format of the trace file itself.
//
// Collector output is nearly sorted already (completion order), so
// spill chunks overlap only slightly and the merge heap stays shallow.
type FileSource struct {
	opts   FileOptions
	spills []string // temp files still on disk (removed on Close)

	// in-memory fast path (single chunk)
	mem *SliceSource

	// merge path
	files  []*os.File
	rds    []*BinaryReader
	h      srcHeap
	primed bool
	closed bool
}

// OpenFile opens path as a canonical-order record source. The caller
// must Close it to release spill files and descriptors.
func OpenFile(path string, opts FileOptions) (*FileSource, error) {
	if opts.SortChunk <= 0 {
		opts.SortChunk = defaultSortChunk
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open source: %w", err)
	}
	defer f.Close()
	var in io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(in)
		if err != nil {
			return nil, fmt.Errorf("trace: open gzip source: %w", err)
		}
		defer gz.Close()
		in = gz
	}
	s := &FileSource{opts: opts}
	if err := s.load(NewReader(in)); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// load reads the input into sorted spill chunks (or the in-memory fast
// path) and reduces the spill set below the merge fan-in.
func (s *FileSource) load(rd *Reader) error {
	chunk := make([]FlowRecord, 0, min(s.opts.SortChunk, 4096))
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		chunk = append(chunk, rec)
		if len(chunk) >= s.opts.SortChunk {
			if err := s.spill(chunk); err != nil {
				return err
			}
			chunk = chunk[:0]
		}
	}
	sort.Slice(chunk, func(a, b int) bool { return recordLess(&chunk[a], &chunk[b]) })
	if len(s.spills) == 0 {
		// Whole trace fit in one chunk: stream from memory, no disk.
		s.mem = &SliceSource{recs: chunk}
		return nil
	}
	if len(chunk) > 0 {
		if err := s.spillSorted(chunk); err != nil {
			return err
		}
	}
	// Multi-pass merge until one streaming pass suffices.
	for len(s.spills) > mergeFanIn {
		group := s.spills[:mergeFanIn]
		merged, err := s.mergeToFile(group)
		if err != nil {
			return err
		}
		for _, p := range group {
			os.Remove(p)
		}
		s.spills = append([]string{merged}, s.spills[mergeFanIn:]...)
	}
	return nil
}

// spill sorts a chunk and writes it to a temp file.
func (s *FileSource) spill(chunk []FlowRecord) error {
	sort.Slice(chunk, func(a, b int) bool { return recordLess(&chunk[a], &chunk[b]) })
	return s.spillSorted(chunk)
}

func (s *FileSource) spillSorted(chunk []FlowRecord) error {
	f, err := os.CreateTemp(s.opts.TempDir, "dctrace-spill-*.bin")
	if err != nil {
		return fmt.Errorf("trace: spill: %w", err)
	}
	s.spills = append(s.spills, f.Name())
	w, err := NewBinaryWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for i := range chunk {
		if err := w.Write(&chunk[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// mergeToFile k-way merges already-sorted spill files into a new spill.
func (s *FileSource) mergeToFile(paths []string) (string, error) {
	files, rds, h, err := openMerge(paths)
	if err != nil {
		return "", err
	}
	defer closeAll(files)
	out, err := os.CreateTemp(s.opts.TempDir, "dctrace-merge-*.bin")
	if err != nil {
		return "", fmt.Errorf("trace: merge spill: %w", err)
	}
	w, err := NewBinaryWriter(out)
	if err != nil {
		out.Close()
		os.Remove(out.Name())
		return "", err
	}
	for h.Len() > 0 {
		rec, err := popMerge(&h, rds)
		if err != nil {
			out.Close()
			os.Remove(out.Name())
			return "", err
		}
		if err := w.Write(&rec); err != nil {
			out.Close()
			os.Remove(out.Name())
			return "", err
		}
	}
	if err := w.Flush(); err != nil {
		out.Close()
		os.Remove(out.Name())
		return "", err
	}
	if err := out.Close(); err != nil {
		os.Remove(out.Name())
		return "", err
	}
	return out.Name(), nil
}

// prime opens the final spill set for streaming.
func (s *FileSource) prime() error {
	s.primed = true
	files, rds, h, err := openMerge(s.spills)
	if err != nil {
		return err
	}
	s.files, s.rds, s.h = files, rds, h
	return nil
}

// Next returns the next record in canonical order, or io.EOF.
func (s *FileSource) Next() (FlowRecord, error) {
	if s.closed {
		return FlowRecord{}, errors.New("trace: source closed")
	}
	if s.mem != nil {
		return s.mem.Next()
	}
	if !s.primed {
		if err := s.prime(); err != nil {
			return FlowRecord{}, err
		}
	}
	if s.h.Len() == 0 {
		return FlowRecord{}, io.EOF
	}
	return popMerge(&s.h, s.rds)
}

// Close removes spill files and closes descriptors. Safe to call more
// than once.
func (s *FileSource) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	closeAll(s.files)
	s.files = nil
	var first error
	for _, p := range s.spills {
		if err := os.Remove(p); err != nil && first == nil {
			first = err
		}
	}
	s.spills = nil
	return first
}

// srcItem is one merge-heap entry: the head record of input src.
type srcItem struct {
	rec FlowRecord
	src int
}

// srcHeap orders merge inputs by their head record's canonical order,
// ties broken by input index for determinism.
type srcHeap []srcItem

func (h srcHeap) Len() int { return len(h) }
func (h srcHeap) Less(a, b int) bool {
	if h[a].rec.Start != h[b].rec.Start || h[a].rec.ID != h[b].rec.ID {
		return recordLess(&h[a].rec, &h[b].rec)
	}
	return h[a].src < h[b].src
}
func (h srcHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *srcHeap) Push(x any)   { *h = append(*h, x.(srcItem)) }
func (h *srcHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// openMerge opens each path and seeds the merge heap with its head.
func openMerge(paths []string) ([]*os.File, []*BinaryReader, srcHeap, error) {
	files := make([]*os.File, 0, len(paths))
	rds := make([]*BinaryReader, 0, len(paths))
	var h srcHeap
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			closeAll(files)
			return nil, nil, nil, fmt.Errorf("trace: open spill: %w", err)
		}
		files = append(files, f)
		rd, err := NewBinaryReader(f)
		if err != nil {
			closeAll(files)
			return nil, nil, nil, err
		}
		rds = append(rds, rd)
		rec, err := rd.Read()
		if err == io.EOF {
			continue
		}
		if err != nil {
			closeAll(files)
			return nil, nil, nil, err
		}
		h = append(h, srcItem{rec: rec, src: i})
	}
	heap.Init(&h)
	return files, rds, h, nil
}

// popMerge pops the smallest head and refills from its input.
func popMerge(h *srcHeap, rds []*BinaryReader) (FlowRecord, error) {
	top := (*h)[0]
	next, err := rds[top.src].Read()
	switch {
	case err == io.EOF:
		heap.Pop(h)
	case err != nil:
		return FlowRecord{}, err
	default:
		(*h)[0] = srcItem{rec: next, src: top.src}
		heap.Fix(h, 0)
	}
	return top.rec, nil
}

func closeAll(files []*os.File) {
	for _, f := range files {
		f.Close()
	}
}
