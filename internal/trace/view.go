package trace

import (
	"sort"

	"dctraffic/internal/netsim"
	"dctraffic/internal/topology"
)

// RecordView is a time-indexed, start-sorted view over a flow-record
// set, built once per analysis pass and shared (read-only) by every
// figure computation. It answers the two access patterns the analyses
// repeat — "all records overlapping window [from, to)" and "all flow
// starts touching server s / rack r" — in O(log n + |answer|) instead
// of a full scan per call.
//
// The view is immutable after construction and safe for concurrent
// readers. Its record order (ascending Start, ties by ID) is the
// canonical iteration order of the analysis pipeline: every float
// accumulation over records walks this order, so results are a pure
// function of the record set, independent of collector append order
// and of how much parallelism the pipeline uses.
type RecordView struct {
	top  *topology.Topology
	recs []FlowRecord // sorted by (Start, ID)

	// maxEnd[i] is the maximum End over recs[0..i]. It is monotone
	// nondecreasing, so a binary search bounds how far before a window
	// a still-overlapping record can start.
	maxEnd []netsim.Time

	// Posting lists: flow-start times touching each cluster server /
	// rack (as source or destination, deduplicated), in start order.
	// External hosts are not instrumented (as in the paper) and have no
	// server list; flows touching them still appear under the rack of
	// their cluster endpoint.
	serverStarts [][]netsim.Time
	rackStarts   [][]netsim.Time
}

// NewRecordView indexes records against the given topology. The input
// slice is not modified; the view sorts a copy.
func NewRecordView(records []FlowRecord, top *topology.Topology) *RecordView {
	v := &RecordView{
		top:          top,
		recs:         append([]FlowRecord(nil), records...),
		serverStarts: make([][]netsim.Time, top.NumServers()),
		rackStarts:   make([][]netsim.Time, top.NumRacks()),
	}
	sort.Slice(v.recs, func(i, j int) bool {
		if v.recs[i].Start != v.recs[j].Start {
			return v.recs[i].Start < v.recs[j].Start
		}
		return v.recs[i].ID < v.recs[j].ID
	})
	v.maxEnd = make([]netsim.Time, len(v.recs))
	maxEnd := netsim.Time(0)
	for i, r := range v.recs {
		if i == 0 || r.End > maxEnd {
			maxEnd = r.End
		}
		v.maxEnd[i] = maxEnd
		if !top.IsExternal(r.Src) {
			v.serverStarts[r.Src] = append(v.serverStarts[r.Src], r.Start)
		}
		if r.Dst != r.Src && !top.IsExternal(r.Dst) {
			v.serverStarts[r.Dst] = append(v.serverStarts[r.Dst], r.Start)
		}
		rs, rd := top.Rack(r.Src), top.Rack(r.Dst)
		if rs >= 0 {
			v.rackStarts[rs] = append(v.rackStarts[rs], r.Start)
		}
		if rd >= 0 && rd != rs {
			v.rackStarts[rd] = append(v.rackStarts[rd], r.Start)
		}
	}
	return v
}

// Len reports the number of records in the view.
func (v *RecordView) Len() int { return len(v.recs) }

// Topology returns the topology the view was indexed against.
func (v *RecordView) Topology() *topology.Topology { return v.top }

// Records returns the start-sorted record slice. Callers must treat it
// as read-only.
func (v *RecordView) Records() []FlowRecord { return v.recs }

// Overlapping visits, in start order, every record whose lifetime
// intersects [from, to): records with Start < to and End > from, plus
// instantaneous records (End == Start) with Start in [from, to). These
// are exactly the records a windowed aggregation (tm.ServerMatrix-style
// spreading) draws bytes from, so slicing a window through the view
// yields bit-identical sums to filtering the full set.
func (v *RecordView) Overlapping(from, to netsim.Time, fn func(r FlowRecord)) {
	lo, hi := v.overlapRange(from, to)
	for i := lo; i < hi; i++ {
		r := v.recs[i]
		if r.End > from || (r.End == r.Start && r.Start >= from) {
			fn(r)
		}
	}
}

// overlapRange returns the candidate index range [lo, hi) for records
// overlapping [from, to): hi is the first record starting at or after
// to; lo is bounded below by both the first record that could still be
// running at from (via the monotone maxEnd index) and the first record
// starting at or after from (which covers instantaneous records).
func (v *RecordView) overlapRange(from, to netsim.Time) (lo, hi int) {
	hi = sort.Search(len(v.recs), func(i int) bool { return v.recs[i].Start >= to })
	loEnd := sort.Search(hi, func(i int) bool { return v.maxEnd[i] > from })
	loStart := sort.Search(hi, func(i int) bool { return v.recs[i].Start >= from })
	lo = loEnd
	if loStart < lo {
		lo = loStart
	}
	return lo, hi
}

// StartedBefore reports how many records have Start < t — the numerator
// of arrival-rate computations — in O(log n).
func (v *RecordView) StartedBefore(t netsim.Time) int {
	return sort.Search(len(v.recs), func(i int) bool { return v.recs[i].Start >= t })
}

// NumServers reports the number of cluster servers with a posting list.
func (v *RecordView) NumServers() int { return len(v.serverStarts) }

// ServerStarts returns the start times of flows touching cluster server
// s (as source or destination), ascending. Read-only.
func (v *RecordView) ServerStarts(s topology.ServerID) []netsim.Time {
	return v.serverStarts[s]
}

// NumRacks reports the number of racks with a posting list.
func (v *RecordView) NumRacks() int { return len(v.rackStarts) }

// RackStarts returns the start times of flows with at least one
// endpoint in rack r, ascending. Read-only.
func (v *RecordView) RackStarts(r topology.RackID) []netsim.Time {
	return v.rackStarts[r]
}
