package trace

import (
	"fmt"
	"sort"

	"dctraffic/internal/netsim"
)

// WindowView is the sliding-window counterpart of RecordView: it holds
// only the records that windows not yet retired can still reach, and it
// exposes the identical O(log n + |window|) slicing contract over that
// buffer. The analysis coordinator Appends records in canonical
// (Start, ID) order as the source delivers them, Seals the delivery
// watermark up to each window boundary, hands each closing figure
// window its own Slice copy, and Retires everything older than the
// earliest window still open — which is what makes whole-trace analysis
// O(max window span), not O(trace).
//
// The contract is enforced, not advisory: slicing a window that
// reaches below the retirement watermark or past the delivery
// watermark panics, so a scheduling bug that would silently read
// missing records fails loudly instead.
type WindowView struct {
	recs   []FlowRecord
	maxEnd []netsim.Time // maxEnd[i] = max End of recs[:i+1], parallel to recs

	low  netsim.Time // retirement watermark: slices must have from >= low
	high netsim.Time // delivery watermark: slices must have to <= high

	any       bool // order-validation state
	lastStart netsim.Time
	lastID    netsim.FlowID

	delivered   int64
	retired     int64
	peak        int
	compactBase int // buffer length right after the last compaction
}

// NewWindowView returns an empty view with both watermarks at zero.
func NewWindowView() *WindowView {
	return &WindowView{compactBase: 1024}
}

// Append adds the next record from the source. Records must arrive in
// strictly ascending (Start, ID) order — a corrupt or unsorted source
// is reported as an error rather than silently mis-indexed.
func (w *WindowView) Append(r FlowRecord) error {
	if w.any {
		if r.Start < w.lastStart || (r.Start == w.lastStart && r.ID <= w.lastID) {
			return fmt.Errorf("trace: out-of-order record %d at %v after %d at %v",
				r.ID, r.Start, w.lastID, w.lastStart)
		}
	}
	w.any = true
	w.lastStart, w.lastID = r.Start, r.ID
	me := r.End
	if n := len(w.maxEnd); n > 0 && w.maxEnd[n-1] > me {
		me = w.maxEnd[n-1]
	}
	w.recs = append(w.recs, r)
	w.maxEnd = append(w.maxEnd, me)
	w.delivered++
	if len(w.recs) > w.peak {
		w.peak = len(w.recs)
	}
	return nil
}

// Seal advances the delivery watermark to t: the caller asserts every
// record with Start < t has been Appended. Slices with to <= t become
// legal.
func (w *WindowView) Seal(t netsim.Time) {
	if t > w.high {
		w.high = t
	}
}

// overlapRange computes the buffer index range that can overlap
// [from, to), exactly as RecordView does: hi is the first record with
// Start >= to; lo starts at the first index whose running max-End
// exceeds from, clamped down to the first Start >= from so
// instantaneous records at the boundary are not skipped.
func (w *WindowView) overlapRange(from, to netsim.Time) (lo, hi int) {
	hi = sort.Search(len(w.recs), func(i int) bool { return w.recs[i].Start >= to })
	lo = sort.Search(hi, func(i int) bool { return w.maxEnd[i] > from })
	if s := sort.Search(hi, func(i int) bool { return w.recs[i].Start >= from }); s < lo {
		lo = s
	}
	return lo, hi
}

// checkWindow enforces the retirement contract for a [from, to) window.
func (w *WindowView) checkWindow(from, to netsim.Time) {
	if from < w.low {
		panic(fmt.Sprintf("trace: window [%v, %v) reaches below retirement watermark %v", from, to, w.low))
	}
	if to > w.high {
		panic(fmt.Sprintf("trace: window [%v, %v) beyond delivery watermark %v", from, to, w.high))
	}
}

// overlaps reports whether r is active in [from, to), matching
// RecordView.Overlapping's filter (instantaneous records count in the
// window containing their start).
func overlaps(r *FlowRecord, from, to netsim.Time) bool {
	if r.Start >= to {
		return false
	}
	return r.End > from || (r.End == r.Start && r.Start >= from)
}

// Overlapping calls fn for every record overlapping [from, to), in
// canonical order. The window must satisfy low <= from and to <= high.
func (w *WindowView) Overlapping(from, to netsim.Time, fn func(FlowRecord)) {
	w.checkWindow(from, to)
	lo, hi := w.overlapRange(from, to)
	for i := lo; i < hi; i++ {
		if overlaps(&w.recs[i], from, to) {
			fn(w.recs[i])
		}
	}
}

// Slice returns a fresh copy of the records overlapping [from, to), in
// canonical order. Figure tasks run on these copies, so retirement and
// compaction never race with in-flight tasks.
func (w *WindowView) Slice(from, to netsim.Time) []FlowRecord {
	w.checkWindow(from, to)
	lo, hi := w.overlapRange(from, to)
	var out []FlowRecord
	for i := lo; i < hi; i++ {
		if overlaps(&w.recs[i], from, to) {
			out = append(out, w.recs[i])
		}
	}
	return out
}

// Retire raises the retirement watermark: no future window will reach
// below t. Buffer space is reclaimed by an amortized compaction once
// the buffer has grown well past its size at the previous compaction,
// so Retire is O(1) amortized per appended record.
func (w *WindowView) Retire(t netsim.Time) {
	if t <= w.low {
		return
	}
	w.low = t
	if len(w.recs) >= 2*w.compactBase {
		w.Compact()
	}
}

// Compact immediately drops every record no window with from >= the
// retirement watermark can reach, rebuilding the max-End index.
func (w *WindowView) Compact() {
	keep := w.recs[:0]
	for i := range w.recs {
		r := &w.recs[i]
		if r.End > w.low || (r.End == r.Start && r.Start >= w.low) {
			keep = append(keep, *r)
		}
	}
	w.retired += int64(len(w.recs) - len(keep))
	clear(w.recs[len(keep):])
	w.recs = keep
	w.maxEnd = w.maxEnd[:0]
	var me netsim.Time
	for i := range w.recs {
		if w.recs[i].End > me || i == 0 {
			me = w.recs[i].End
		}
		w.maxEnd = append(w.maxEnd, me)
	}
	base := len(w.recs)
	if base < 1024 {
		base = 1024
	}
	w.compactBase = base
}

// Buffered reports the records currently held.
func (w *WindowView) Buffered() int { return len(w.recs) }

// PeakBuffered reports the high-water mark of Buffered.
func (w *WindowView) PeakBuffered() int { return w.peak }

// Delivered reports the total records appended so far.
func (w *WindowView) Delivered() int64 { return w.delivered }

// Retired reports the records dropped by compaction so far.
func (w *WindowView) Retired() int64 { return w.retired }

// Low returns the retirement watermark.
func (w *WindowView) Low() netsim.Time { return w.low }

// High returns the delivery watermark.
func (w *WindowView) High() netsim.Time { return w.high }
