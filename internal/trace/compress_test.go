package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/topology"
)

func sampleRecords(n int) []FlowRecord {
	out := make([]FlowRecord, n)
	for i := range out {
		out[i] = FlowRecord{
			ID:      netsim.FlowID(i),
			Src:     topology.ServerID(i % 80),
			Dst:     topology.ServerID((i * 7) % 80),
			SrcPort: uint16(1024 + i%60000),
			DstPort: 443,
			Start:   netsim.Time(i) * time.Millisecond,
			End:     netsim.Time(i)*time.Millisecond + time.Second,
			Bytes:   int64(1000 + i*37),
			Tag:     netsim.FlowTag{Job: i % 20, Kind: netsim.KindShuffle},
		}
	}
	return out
}

func TestGzRoundTrip(t *testing.T) {
	recs := sampleRecords(500)
	var buf bytes.Buffer
	raw, comp, err := WriteJSONLGz(&buf, recs)
	if err != nil {
		t.Fatal(err)
	}
	if raw <= 0 || comp <= 0 || int64(buf.Len()) != comp {
		t.Fatalf("raw=%d comp=%d buf=%d", raw, comp, buf.Len())
	}
	back, err := ReadJSONLGz(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records back, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestCompressionRatioAtLeast3x(t *testing.T) {
	// The paper: "Compression reduces the network bandwidth used by the
	// measurement infrastructure by at least 3x." Structured socket logs
	// compress well; verify on realistic records.
	ratio, err := MeasureCompression(sampleRecords(5000))
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 3 {
		t.Fatalf("compression ratio %.2f, paper reports at least 3x", ratio)
	}
}

func TestMeasureCompressionEmpty(t *testing.T) {
	ratio, err := MeasureCompression(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 0 {
		t.Fatalf("empty ratio = %v", ratio)
	}
}

func TestReadJSONLGzBadInput(t *testing.T) {
	if _, err := ReadJSONLGz(strings.NewReader("not gzip")); err == nil {
		t.Fatal("expected gzip header error")
	}
}
