package trace

import (
	"bytes"
	"io"
	"testing"
)

// BenchmarkWriteJSONL measures trace serialization throughput.
func BenchmarkWriteJSONL(b *testing.B) {
	recs := sampleRecords(10_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteJSONL(io.Discard, recs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadJSONL measures trace parsing throughput.
func BenchmarkReadJSONL(b *testing.B) {
	recs := sampleRecords(10_000)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadJSONL(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteBinary measures the spill codec's serialization
// throughput — the recorded number behind replacing JSONL on the
// external-sort spill path.
func BenchmarkWriteBinary(b *testing.B) {
	recs := sampleRecords(10_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteBinary(io.Discard, recs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadBinary measures the spill codec's parsing throughput.
func BenchmarkReadBinary(b *testing.B) {
	recs := sampleRecords(10_000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteJSONLGz measures compressed-upload throughput (the §2
// pipeline) and reports the achieved ratio.
func BenchmarkWriteJSONLGz(b *testing.B) {
	recs := sampleRecords(10_000)
	b.ReportAllocs()
	var raw, comp int64
	for i := 0; i < b.N; i++ {
		var err error
		raw, comp, err = WriteJSONLGz(io.Discard, recs)
		if err != nil {
			b.Fatal(err)
		}
	}
	if comp > 0 {
		b.ReportMetric(float64(raw)/float64(comp), "compression-x")
	}
}

// FuzzReadJSONL ensures arbitrary input never panics the parser.
func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleRecords(3)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{\"id\":1}\n{bad"))
	f.Add([]byte("null\nnull\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadJSONL(bytes.NewReader(data)) // must not panic
	})
}

// FuzzReadJSONLGz ensures arbitrary input never panics the gzip path.
func FuzzReadJSONLGz(f *testing.F) {
	var buf bytes.Buffer
	if _, _, err := WriteJSONLGz(&buf, sampleRecords(3)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("not gzip at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadJSONLGz(bytes.NewReader(data)) // must not panic
	})
}
