package trace

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"sync"

	"dctraffic/internal/netsim"
	"dctraffic/internal/obs"
)

// defaultLiveCapacity bounds the released-record FIFO of a LiveSource:
// once the consumer lags by this many canonical-order records, Advance
// blocks the producer (worker-bounded backpressure). ~32k records is a
// few MB — small next to the reorder heap's O(window) occupancy.
const defaultLiveCapacity = 1 << 15

// errLiveClosed is what the producer-facing methods observe after the
// consumer abandoned the stream without a specific error.
var errLiveClosed = errors.New("trace: live source closed by consumer")

// LiveSource turns a completion-order record stream into a canonical
// (Start, ID)-order Source while the producer is still running — the
// seam that fuses the simulate and analyze phases (see core.RunAnalyze).
//
// Records finalize at flow *end* but canonical order is flow *start*, so
// emitted records park in a reorder min-heap until a watermark proves no
// earlier record can still arrive. The producer owns the watermark:
// after advancing the simulation to time t, every future record has
// Start > t (events at or before t have run), and every still-active
// flow f can only yield a record with Start = f.Start, so
//
//	watermark = min(t + 1, earliest Start among still-active flows)
//
// is a sound release frontier: records with Start < watermark can never
// be preceded and move, in heap order, to a bounded FIFO the consumer
// drains. The watermark is monotone (active flows at a later t either
// were already active or started after the earlier t), so released
// batches concatenate into one strictly increasing (Start, ID) sequence
// — the Source contract — with simultaneous starts tie-broken by ID
// inside the heap. Heap occupancy is bounded by the records overlapping
// the oldest active flow, the same O(window) regime the streaming
// analyzer established.
//
// Concurrency contract: exactly one producer goroutine calls Emit,
// Advance and CloseSend; exactly one consumer goroutine calls Next and
// Close. Emit never blocks (a watermark pinned by a long-lived elephant
// flow must not deadlock the producer); Advance is where backpressure
// blocks, and it returns promptly once the consumer calls Close. Errors
// propagate both ways: CloseSend(err) surfaces err from Next ahead of
// any still-buffered records, and Close(err) makes producer calls
// no-ops so both goroutines exit.
type LiveSource struct {
	mu      sync.Mutex
	canRecv sync.Cond // consumer waits here for released records
	canSend sync.Cond // producer waits here for FIFO headroom

	buf       recHeap      // above the watermark, min-heap by (Start, ID)
	ready     []FlowRecord // released, canonical order
	head      int          // consumption index into ready
	capacity  int
	watermark netsim.Time

	sendDone bool
	sendErr  error // non-nil: producer failed; preempts buffered records
	recvDone bool
	recvErr  error

	// Telemetry, guarded by mu (the sampled closures registered by
	// Instrument read from the snapshotting goroutine). The lag
	// histogram is producer-written only, per the obs contract.
	peakBuffered int
	waits        int64
	released     int64
	lagHist      *obs.Histogram
}

// NewLiveSource returns a live reorder buffer whose released-record FIFO
// holds up to capacity records (<= 0 selects the default, 1<<15).
func NewLiveSource(capacity int) *LiveSource {
	if capacity <= 0 {
		capacity = defaultLiveCapacity
	}
	l := &LiveSource{capacity: capacity}
	l.canRecv.L = &l.mu
	l.canSend.L = &l.mu
	return l
}

// Instrument registers the seam's series: trace.live.buffered
// (current/peak reorder+FIFO occupancy), trace.live.watermark_lag
// (seconds between a record's Start and the watermark that released
// it), and pipeline.backpressure_waits (times Advance blocked on a full
// FIFO). Safe with a nil registry. Call before the producer starts; the
// histogram is written from the producer goroutine only.
func (l *LiveSource) Instrument(r *obs.Registry) {
	r.SampledGauge("trace.live.buffered", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(l.buffered())
	})
	r.SampledGauge("trace.live.buffered_peak", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(l.peakBuffered)
	})
	r.SampledCounter("trace.live.released_total", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(l.released)
	})
	r.SampledCounter("pipeline.backpressure_waits", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(l.waits)
	})
	l.lagHist = r.Histogram("trace.live.watermark_lag_seconds", obs.Pow2Bounds(1.0/1024, 24))
}

// buffered counts records currently held (reorder heap + unread FIFO).
// Caller holds mu.
func (l *LiveSource) buffered() int { return len(l.buf) + len(l.ready) - l.head }

// Emit parks one completion-order record in the reorder buffer. It
// never blocks. Emitting a record below the watermark is a producer
// bug — the watermark claimed no such record could arrive — and panics.
func (l *LiveSource) Emit(rec FlowRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.recvDone {
		return // consumer gone; drop until the producer notices
	}
	if l.sendDone {
		panic("trace: LiveSource.Emit after CloseSend")
	}
	if rec.Start < l.watermark {
		panic(fmt.Sprintf("trace: LiveSource.Emit record start %v below watermark %v (flow %d)",
			rec.Start, l.watermark, rec.ID))
	}
	heap.Push(&l.buf, rec)
	if b := l.buffered(); b > l.peakBuffered {
		l.peakBuffered = b
	}
}

// Advance raises the watermark to w (no-op if w is not ahead) and
// releases every buffered record with Start < w into the FIFO in
// canonical order. This is the backpressure point: when the FIFO is
// full, Advance blocks until the consumer drains it or abandons the
// stream with Close.
func (l *LiveSource) Advance(w netsim.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sendDone || w <= l.watermark {
		return
	}
	l.watermark = w
	for len(l.buf) > 0 && l.buf[0].Start < w {
		for len(l.ready)-l.head >= l.capacity && !l.recvDone {
			l.waits++
			l.canRecv.Signal()
			l.canSend.Wait()
		}
		if l.recvDone {
			l.buf = nil
			l.ready = nil
			l.head = 0
			return
		}
		rec := heap.Pop(&l.buf).(FlowRecord)
		l.ready = append(l.ready, rec)
		l.released++
		// The lag histogram is producer-owned (obs contract) and Advance
		// runs on the producer goroutine.
		l.lagHist.Observe((w - rec.Start).Seconds())
	}
	l.canRecv.Signal()
}

// CloseSend ends the producer side. With a nil err the remaining
// buffered records drain in canonical order and Next then reports
// io.EOF; with a non-nil err the buffer is dropped and Next reports err
// (an incomplete trace must fail the analysis, not truncate it
// silently). Idempotent; later calls are no-ops.
func (l *LiveSource) CloseSend(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sendDone {
		return
	}
	l.sendDone = true
	l.sendErr = err
	if err != nil || l.recvDone {
		l.buf = nil
		if l.recvDone {
			l.ready = nil
			l.head = 0
		}
	} else {
		// Final flush ignores the FIFO bound: the records already sit in
		// the heap, so moving them transfers memory rather than growing it.
		for len(l.buf) > 0 {
			rec := heap.Pop(&l.buf).(FlowRecord)
			l.ready = append(l.ready, rec)
			l.released++
		}
	}
	l.canRecv.Broadcast()
	l.canSend.Broadcast()
}

// Next implements Source: it blocks until a released record is
// available, the producer closes, or the consumer side is closed. After
// CloseSend(nil) it drains the remainder and returns io.EOF; a producer
// error preempts any still-buffered records.
func (l *LiveSource) Next() (FlowRecord, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.recvDone {
			return FlowRecord{}, l.recvErr
		}
		if l.sendDone && l.sendErr != nil {
			return FlowRecord{}, l.sendErr
		}
		if l.head < len(l.ready) {
			rec := l.ready[l.head]
			l.head++
			if l.head == len(l.ready) {
				l.ready = l.ready[:0]
				l.head = 0
			}
			l.canSend.Signal()
			return rec, nil
		}
		if l.sendDone {
			return FlowRecord{}, io.EOF
		}
		l.canRecv.Wait()
	}
}

// Close ends the consumer side: buffered records are dropped, blocked
// Advance calls return, and subsequent Emit/Advance calls are no-ops,
// letting the producer goroutine run to its own exit. err (or a default
// when nil) is what later Next calls report. Idempotent.
func (l *LiveSource) Close(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.recvDone {
		return
	}
	if err == nil {
		err = errLiveClosed
	}
	l.recvDone = true
	l.recvErr = err
	l.buf = nil
	l.ready = nil
	l.head = 0
	l.canRecv.Broadcast()
	l.canSend.Broadcast()
}

// Watermark reports the current release frontier (for tests and
// progress displays).
func (l *LiveSource) Watermark() netsim.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.watermark
}

// Buffered reports the records currently held across the reorder heap
// and the released FIFO.
func (l *LiveSource) Buffered() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buffered()
}

// PeakBuffered reports the high-water mark of Buffered.
func (l *LiveSource) PeakBuffered() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peakBuffered
}

// recHeap is a min-heap of records in canonical (Start, ID) order.
type recHeap []FlowRecord

func (h recHeap) Len() int           { return len(h) }
func (h recHeap) Less(a, b int) bool { return recordLess(&h[a], &h[b]) }
func (h recHeap) Swap(a, b int)      { h[a], h[b] = h[b], h[a] }
func (h *recHeap) Push(x any)        { *h = append(*h, x.(FlowRecord)) }
func (h *recHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}
