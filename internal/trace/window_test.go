package trace

import (
	"testing"
	"time"

	"dctraffic/internal/netsim"
)

// feedWindow appends records (canonically sorted) and seals up to t.
func feedWindow(t *testing.T, w *WindowView, recs []FlowRecord, seal netsim.Time) {
	t.Helper()
	for _, r := range canonicalCopy(recs) {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Seal(seal)
}

// WindowView.Overlapping must agree with RecordView.Overlapping —
// identical record sequence for every window — since windowed figure
// tasks were rebased from the one onto the other.
func TestWindowViewMatchesRecordView(t *testing.T) {
	top := testTopology(t)
	horizon := netsim.Time(10 * time.Minute)
	recs := randomRecords(t, top, 5000, horizon)
	rv := NewRecordView(recs, top)
	wv := NewWindowView()
	feedWindow(t, wv, recs, horizon*2)

	windows := [][2]netsim.Time{
		{0, horizon},
		{0, netsim.Time(time.Second)},
		{horizon / 2, horizon/2 + netsim.Time(10*time.Second)},
		{horizon - netsim.Time(time.Minute), horizon},
		{horizon / 3, horizon / 2},
	}
	for _, win := range windows {
		var want, got []FlowRecord
		rv.Overlapping(win[0], win[1], func(r FlowRecord) { want = append(want, r) })
		wv.Overlapping(win[0], win[1], func(r FlowRecord) { got = append(got, r) })
		if len(want) != len(got) {
			t.Fatalf("window [%v,%v): %d records via WindowView, want %d", win[0], win[1], len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("window [%v,%v): record %d mismatch", win[0], win[1], i)
			}
		}
		slice := wv.Slice(win[0], win[1])
		if len(slice) != len(want) {
			t.Fatalf("Slice [%v,%v): %d records, want %d", win[0], win[1], len(slice), len(want))
		}
	}
}

// Retirement must actually reclaim memory, and slices over retired or
// undelivered spans must panic — the enforcement half of the
// WindowView contract.
func TestWindowViewRetirementContract(t *testing.T) {
	top := testTopology(t)
	horizon := netsim.Time(10 * time.Minute)
	recs := randomRecords(t, top, 5000, horizon)
	wv := NewWindowView()
	feedWindow(t, wv, recs, horizon)

	before := wv.Buffered()
	mid := horizon / 2
	wv.Retire(mid)
	wv.Compact()
	if wv.Buffered() >= before {
		t.Fatalf("compaction did not shrink buffer: %d -> %d", before, wv.Buffered())
	}
	if wv.Retired() == 0 {
		t.Fatal("no records reported retired")
	}

	// Windows at or above the watermark still work and match a fresh view.
	rv := NewRecordView(recs, top)
	var want, got []FlowRecord
	rv.Overlapping(mid, horizon, func(r FlowRecord) { want = append(want, r) })
	wv.Overlapping(mid, horizon, func(r FlowRecord) { got = append(got, r) })
	if len(want) != len(got) {
		t.Fatalf("post-retirement window: %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("post-retirement window: record %d mismatch", i)
		}
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("slice below retirement watermark", func() { wv.Slice(mid-1, horizon) })
	mustPanic("slice beyond delivery watermark", func() { wv.Slice(mid, horizon+1) })
}

// Appending out of canonical order must be rejected.
func TestWindowViewRejectsOutOfOrder(t *testing.T) {
	wv := NewWindowView()
	a := FlowRecord{ID: 2, Start: netsim.Time(100), End: netsim.Time(200)}
	b := FlowRecord{ID: 1, Start: netsim.Time(50), End: netsim.Time(60)}
	if err := wv.Append(a); err != nil {
		t.Fatal(err)
	}
	if err := wv.Append(b); err == nil {
		t.Fatal("earlier Start accepted after later one")
	}
	dup := FlowRecord{ID: 2, Start: netsim.Time(100), End: netsim.Time(300)}
	if err := wv.Append(dup); err == nil {
		t.Fatal("duplicate (Start, ID) accepted")
	}
}

// Long-lived records must survive compaction as long as any future
// window can reach them, and instantaneous records exactly at the
// watermark stay visible.
func TestWindowViewCompactKeepsReachable(t *testing.T) {
	wv := NewWindowView()
	long := FlowRecord{ID: 1, Start: 0, End: netsim.Time(time.Hour)}
	inst := FlowRecord{ID: 2, Start: netsim.Time(time.Minute), End: netsim.Time(time.Minute)}
	gone := FlowRecord{ID: 3, Start: netsim.Time(2 * time.Second), End: netsim.Time(30 * time.Second)}
	for _, r := range []FlowRecord{long, gone, inst} {
		if err := wv.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	wv.Seal(netsim.Time(2 * time.Hour))
	wv.Retire(netsim.Time(time.Minute))
	wv.Compact()
	if wv.Buffered() != 2 {
		t.Fatalf("buffered %d after compaction, want 2 (long + boundary-instantaneous)", wv.Buffered())
	}
	got := wv.Slice(netsim.Time(time.Minute), netsim.Time(2*time.Minute))
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("post-compaction slice wrong: %+v", got)
	}
}
