package trace

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"dctraffic/internal/netsim"
)

// drain reads a source to EOF.
func drain(t *testing.T, src Source) []FlowRecord {
	t.Helper()
	var out []FlowRecord
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

// canonicalCopy sorts a copy of records by (Start, ID).
func canonicalCopy(records []FlowRecord) []FlowRecord {
	out := make([]FlowRecord, len(records))
	copy(out, records)
	sort.Slice(out, func(a, b int) bool { return recordLess(&out[a], &out[b]) })
	return out
}

func TestSliceSourceCanonicalOrder(t *testing.T) {
	top := testTopology(t)
	recs := randomRecords(t, top, 2000, netsim.Time(5*time.Minute))
	// Shuffle away from insertion order to prove sorting happens.
	for i := range recs {
		j := (i * 7919) % len(recs)
		recs[i], recs[j] = recs[j], recs[i]
	}
	got := drain(t, NewSliceSource(recs))
	want := canonicalCopy(recs)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// writeTraceFile writes records (in the given order) as a JSONL file.
func writeTraceFile(t *testing.T, records []FlowRecord) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for i := range records {
		if err := w.Write(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// FileSource must deliver the identical canonical sequence as
// SliceSource over the same records, at every chunk size — including
// chunk sizes that force multi-spill external merges — because digest
// identity between the in-memory and streaming analysis paths rests on
// exactly this.
func TestFileSourceMatchesSliceSourceAcrossChunkSizes(t *testing.T) {
	top := testTopology(t)
	recs := randomRecords(t, top, 3000, netsim.Time(5*time.Minute))
	path := writeTraceFile(t, recs)
	want := drain(t, NewSliceSource(recs))

	for _, chunk := range []int{0, 7, 64, 1000, 100000} {
		src, err := OpenFile(path, FileOptions{SortChunk: chunk, TempDir: t.TempDir()})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		got := drain(t, src)
		if err := src.Close(); err != nil {
			t.Fatalf("chunk %d: close: %v", chunk, err)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: got %d records, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: record %d: %+v != %+v", chunk, i, got[i], want[i])
			}
		}
	}
}

// A tiny chunk size with thousands of records exercises the multi-pass
// merge (spill count far above the fan-in); spill files must all be
// gone after Close.
func TestFileSourceSpillCleanup(t *testing.T) {
	top := testTopology(t)
	recs := randomRecords(t, top, 2000, netsim.Time(2*time.Minute))
	path := writeTraceFile(t, recs)
	tmp := t.TempDir()
	src, err := OpenFile(path, FileOptions{SortChunk: 10, TempDir: tmp})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, src); len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(tmp, "dctrace-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("spill files left behind: %v", left)
	}
}

func TestFileSourceEmptyAndMissing(t *testing.T) {
	path := writeTraceFile(t, nil)
	src, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("empty trace: want io.EOF, got %v", err)
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope.jsonl"), FileOptions{}); err == nil {
		t.Fatal("missing file should error")
	}
}
