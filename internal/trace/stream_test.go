package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	recs := sampleRecords(100)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(recs) {
		t.Fatalf("writer count %d, want %d", w.Count(), len(recs))
	}

	r := NewReader(&buf)
	var back []FlowRecord
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		back = append(back, rec)
	}
	if len(back) != len(recs) {
		t.Fatalf("read %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d round-trip mismatch: %+v != %+v", i, back[i], recs[i])
		}
	}
}

// The slice convenience functions are reimplemented over the streaming
// pair; the wire format must be the same either way.
func TestSliceAndStreamFormatsAgree(t *testing.T) {
	recs := sampleRecords(10)
	var slice, stream bytes.Buffer
	if err := WriteJSONL(&slice, recs); err != nil {
		t.Fatal(err)
	}
	w := NewWriter(&stream)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if slice.String() != stream.String() {
		t.Fatal("slice and streaming writers produced different bytes")
	}
	back, err := ReadJSONL(&slice)
	if err != nil || len(back) != len(recs) {
		t.Fatalf("ReadJSONL: %v (%d records)", err, len(back))
	}
}

func TestReaderBadInput(t *testing.T) {
	r := NewReader(strings.NewReader("{\"id\":1}\nnot json\n"))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first record should parse: %v", err)
	}
	_, err := r.Read()
	if err == nil || err == io.EOF {
		t.Fatal("malformed line should error")
	}
	if !strings.Contains(err.Error(), "record 1") {
		t.Fatalf("error should name the record index: %v", err)
	}
}
