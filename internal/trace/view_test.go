package trace

import (
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// randomRecords builds a record set with the shapes that stress the
// index: long flows spanning many windows, instantaneous records, flows
// touching external hosts, and duplicate start times.
func randomRecords(t *testing.T, top *topology.Topology, n int, horizon netsim.Time) []FlowRecord {
	t.Helper()
	rng := stats.NewRNG(42).Fork("view_test")
	hosts := top.NumHosts()
	out := make([]FlowRecord, n)
	for i := range out {
		start := netsim.Time(rng.Float64() * float64(horizon))
		var dur netsim.Time
		switch rng.IntN(4) {
		case 0: // instantaneous
		case 1: // long-lived
			dur = netsim.Time(rng.Float64() * float64(horizon) / 4)
		default: // short
			dur = netsim.Time(rng.Float64() * float64(10*time.Second))
		}
		out[i] = FlowRecord{
			ID:    netsim.FlowID(i),
			Src:   topology.ServerID(rng.IntN(hosts)),
			Dst:   topology.ServerID(rng.IntN(hosts)),
			Start: start,
			End:   start + dur,
			Bytes: int64(rng.IntN(1 << 20)),
		}
	}
	return out
}

func testTopology(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.New(topology.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// The overlap query must agree with the naive full-scan filter — the
// exact predicate windowed aggregations (tm spreading) draw bytes from —
// for every window, and visit records in view order.
func TestViewOverlappingMatchesNaiveFilter(t *testing.T) {
	top := testTopology(t)
	horizon := netsim.Time(10 * time.Minute)
	recs := randomRecords(t, top, 5000, horizon)
	v := NewRecordView(recs, top)

	windows := [][2]netsim.Time{
		{0, horizon},
		{0, time.Second},
		{horizon / 2, horizon/2 + 10*time.Second},
		{horizon - time.Second, horizon},
		{horizon, horizon + time.Minute}, // beyond the data
		{horizon / 3, horizon / 3},       // empty window
	}
	rng := stats.NewRNG(7).Fork("windows")
	for i := 0; i < 50; i++ {
		from := netsim.Time(rng.Float64() * float64(horizon))
		windows = append(windows, [2]netsim.Time{from, from + netsim.Time(rng.Float64()*float64(time.Minute))})
	}

	for _, w := range windows {
		from, to := w[0], w[1]
		var naive []netsim.FlowID
		for _, r := range v.Records() { // view order is the canonical order
			if r.Start < to && (r.End > from || (r.End == r.Start && r.Start >= from)) {
				naive = append(naive, r.ID)
			}
		}
		var got []netsim.FlowID
		v.Overlapping(from, to, func(r FlowRecord) { got = append(got, r.ID) })
		if len(got) != len(naive) {
			t.Fatalf("window [%v,%v): %d visited, want %d", from, to, len(got), len(naive))
		}
		for i := range got {
			if got[i] != naive[i] {
				t.Fatalf("window [%v,%v): record %d is %v, want %v (order or membership mismatch)",
					from, to, i, got[i], naive[i])
			}
		}
	}
}

func TestViewRecordsSorted(t *testing.T) {
	top := testTopology(t)
	recs := randomRecords(t, top, 2000, netsim.Time(5*time.Minute))
	v := NewRecordView(recs, top)
	if v.Len() != len(recs) {
		t.Fatalf("view has %d records, want %d", v.Len(), len(recs))
	}
	prev := v.Records()[0]
	for _, r := range v.Records()[1:] {
		if r.Start < prev.Start || (r.Start == prev.Start && r.ID <= prev.ID) {
			t.Fatalf("records not sorted by (Start, ID): %v after %v", r, prev)
		}
		prev = r
	}
}

func TestViewStartedBefore(t *testing.T) {
	top := testTopology(t)
	horizon := netsim.Time(5 * time.Minute)
	recs := randomRecords(t, top, 2000, horizon)
	v := NewRecordView(recs, top)
	for _, cut := range []netsim.Time{0, time.Second, horizon / 2, horizon, horizon * 2} {
		want := 0
		for _, r := range recs {
			if r.Start < cut {
				want++
			}
		}
		if got := v.StartedBefore(cut); got != want {
			t.Fatalf("StartedBefore(%v) = %d, want %d", cut, got, want)
		}
	}
}

// Posting lists must carry exactly the start times the map-based
// inter-arrival functions collect, already sorted.
func TestViewPostingLists(t *testing.T) {
	top := testTopology(t)
	recs := randomRecords(t, top, 3000, netsim.Time(5*time.Minute))
	v := NewRecordView(recs, top)

	wantServer := make(map[topology.ServerID][]netsim.Time)
	wantRack := make(map[topology.RackID][]netsim.Time)
	for _, r := range v.Records() {
		if !top.IsExternal(r.Src) {
			wantServer[r.Src] = append(wantServer[r.Src], r.Start)
		}
		if r.Dst != r.Src && !top.IsExternal(r.Dst) {
			wantServer[r.Dst] = append(wantServer[r.Dst], r.Start)
		}
		rs, rd := top.Rack(r.Src), top.Rack(r.Dst)
		if rs >= 0 {
			wantRack[rs] = append(wantRack[rs], r.Start)
		}
		if rd >= 0 && rd != rs {
			wantRack[rd] = append(wantRack[rd], r.Start)
		}
	}
	if v.NumServers() != top.NumServers() || v.NumRacks() != top.NumRacks() {
		t.Fatalf("posting list sizes %d/%d, want %d/%d",
			v.NumServers(), v.NumRacks(), top.NumServers(), top.NumRacks())
	}
	for s := 0; s < v.NumServers(); s++ {
		got := v.ServerStarts(topology.ServerID(s))
		want := wantServer[topology.ServerID(s)]
		if len(got) != len(want) {
			t.Fatalf("server %d: %d starts, want %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("server %d start %d: %v, want %v", s, i, got[i], want[i])
			}
			if i > 0 && got[i] < got[i-1] {
				t.Fatalf("server %d starts not sorted", s)
			}
		}
	}
	for rk := 0; rk < v.NumRacks(); rk++ {
		got := v.RackStarts(topology.RackID(rk))
		want := wantRack[topology.RackID(rk)]
		if len(got) != len(want) {
			t.Fatalf("rack %d: %d starts, want %d", rk, len(got), len(want))
		}
	}
}

// The view must not alias the caller's slice: mutating the input after
// construction cannot corrupt the index.
func TestViewCopiesInput(t *testing.T) {
	top := testTopology(t)
	recs := randomRecords(t, top, 100, netsim.Time(time.Minute))
	v := NewRecordView(recs, top)
	before := v.Records()[0]
	for i := range recs {
		recs[i].Bytes = -1
	}
	if v.Records()[0] != before {
		t.Fatal("view aliases the input slice")
	}
}
