package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"dctraffic/internal/netsim"
)

// TestBinaryRoundTrip checks every field survives the fixed-width
// codec, including negative tag values, the canceled flag and the port
// pair.
func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords(1000)
	recs[0].Canceled = true
	recs[1].Tag = netsim.FlowTag{Job: -3, Phase: 7, Vertex: 1 << 30, Kind: netsim.KindEvacuate}
	recs[2].Start, recs[2].End = -5, -1 // relative times may be negative
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("binary round trip altered records")
	}
	// The whole point of the codec: meaningfully smaller than JSONL.
	var jbuf bytes.Buffer
	if err := WriteJSONL(&jbuf, recs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= jbuf.Len() {
		t.Fatalf("binary %d bytes >= JSONL %d bytes", buf.Len(), jbuf.Len())
	}
}

// TestBinaryEmpty round-trips a record-less stream (header only).
func TestBinaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d records from empty stream", len(got))
	}
}

// TestBinaryRejects pins the error paths: bad magic, unknown version,
// and truncation mid-record (which must NOT read as a clean EOF).
func TestBinaryRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleRecords(3)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), data...)
	bad[5] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-7])); err == nil {
		t.Fatal("mid-record truncation read as clean EOF")
	}
	if _, err := ReadBinary(bytes.NewReader(data[:3])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// TestBinaryReaderStreams checks the incremental reader agrees with the
// batch helper and terminates with an unwrapped io.EOF.
func TestBinaryReaderStreams(t *testing.T) {
	recs := sampleRecords(10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	rd, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		rec, err := rd.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("tail read: %v, want io.EOF", err)
	}
}

// FuzzReadBinary mirrors FuzzReadJSONL for the binary codec: arbitrary
// input never panics, and any input that decodes cleanly re-encodes to
// an identical record sequence.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleRecords(3)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:binaryHeaderLen])
	f.Add(buf.Bytes()[:buf.Len()-5])
	f.Add([]byte(""))
	f.Add([]byte("DCTB"))
	f.Add([]byte("DCTB\x01\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadBinary(bytes.NewReader(data)) // must not panic
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, recs); err != nil {
			t.Fatalf("re-encode of valid decode failed: %v", err)
		}
		again, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(recs) || (len(recs) > 0 && !reflect.DeepEqual(again, recs)) {
			t.Fatal("binary codec round trip unstable")
		}
	})
}
