// Package trace is the measurement substrate of the reproduction — the
// analog of the paper's ETW-based socket-level instrumentation (§2).
//
// A Collector observes the simulated network as the paper's per-server
// agents observed production sockets: it captures one logical record per
// flow (with the socket-level op counts that flow would have generated —
// one event per application read or write, aggregating over packets and
// skipping network chatter), accounts the instrumentation overhead per
// server (CPU, disk, log volume, compression), and exposes the flow
// records every analysis in this repository consumes.
//
// Uploads of measurement data are accounted in bytes but deliberately not
// injected into the simulated network, so the measurement infrastructure
// does not perturb the traffic characterization — mirroring the paper's
// treatment, which reports overhead separately.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dctraffic/internal/netsim"
	"dctraffic/internal/obs"
	"dctraffic/internal/topology"
)

// FlowRecord is the socket-level log's view of one flow: the five-tuple,
// lifetime, byte count and application attribution.
type FlowRecord struct {
	ID      netsim.FlowID     `json:"id"`
	Src     topology.ServerID `json:"src"`
	Dst     topology.ServerID `json:"dst"`
	SrcPort uint16            `json:"sport"`
	DstPort uint16            `json:"dport"`
	Start   netsim.Time       `json:"start"`
	End     netsim.Time       `json:"end"`
	Bytes   int64             `json:"bytes"`
	Tag     netsim.FlowTag    `json:"tag"`
	// Canceled marks transfers aborted mid-flight (killed jobs); Bytes
	// then holds what actually moved.
	Canceled bool `json:"canceled,omitempty"`
}

// Duration returns the flow lifetime.
func (r FlowRecord) Duration() netsim.Time { return r.End - r.Start }

// AvgRateBps returns the average rate in bits per second (0 for
// zero-duration flows).
func (r FlowRecord) AvgRateBps() float64 {
	d := r.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / d
}

// Config tunes the collector's overhead model. Zero fields take defaults.
type Config struct {
	// OpBytes is the application read/write size: one socket event is
	// logged per OpBytes transferred. Default 1 MiB.
	OpBytes int64

	// EventLogBytes is the on-disk size of one logged event before
	// compression. Default 64 bytes.
	EventLogBytes int64

	// CyclesPerEvent models the CPU cost of capturing and parsing one
	// socket event. Default 2500 cycles.
	CyclesPerEvent float64

	// ServerHz is a server's total cycle budget per second (cores ×
	// clock). Default 4 cores × 2.4 GHz.
	ServerHz float64

	// DiskBps is the server's disk bandwidth, for disk-utilization
	// overhead. Default 500 MB/s.
	DiskBps float64

	// CompressionRatio divides log bytes before upload. The paper
	// measured at least 3x; default 3.5.
	CompressionRatio float64
}

func (c Config) withDefaults() Config {
	if c.OpBytes <= 0 {
		c.OpBytes = 1 << 20
	}
	if c.EventLogBytes <= 0 {
		c.EventLogBytes = 64
	}
	if c.CyclesPerEvent <= 0 {
		c.CyclesPerEvent = 2500
	}
	if c.ServerHz <= 0 {
		c.ServerHz = 4 * 2.4e9
	}
	if c.DiskBps <= 0 {
		c.DiskBps = 500e6
	}
	if c.CompressionRatio <= 0 {
		c.CompressionRatio = 3.5
	}
	return c
}

// Collector implements netsim.Observer, building the cluster-wide socket
// log. Register with Network.AddObserver before running the workload.
type Collector struct {
	cfg Config
	top *topology.Topology

	records []FlowRecord

	// Per-server accounting (cluster servers only; external hosts are
	// not instrumented, as in the paper).
	events   []int64 // socket events captured
	netBytes []int64 // network bytes observed
	started  int64

	// Metric handles (nil when uninstrumented; methods are nil-safe).
	metRecords      *obs.Counter
	metSocketEvents *obs.Counter

	// sink, when set, receives each record as it is appended (see
	// SetSink).
	sink func(FlowRecord)
}

// NewCollector builds a collector for the topology.
func NewCollector(top *topology.Topology, cfg Config) *Collector {
	return &Collector{
		cfg:      cfg.withDefaults(),
		top:      top,
		events:   make([]int64, top.NumServers()),
		netBytes: make([]int64, top.NumServers()),
	}
}

// Instrument registers the collector's trace.* series with the
// registry. Write-only from the collector's perspective (see the obs
// package contract); safe to call with a nil registry.
func (c *Collector) Instrument(r *obs.Registry) {
	c.metRecords = r.Counter("trace.records_total")
	c.metSocketEvents = r.Counter("trace.socket_events_total")
}

// FlowStarted implements netsim.Observer.
func (c *Collector) FlowStarted(f *netsim.Flow) {
	c.started++
	// Connection-establishment events at both instrumented endpoints.
	c.account(f.Src, 1, 0)
	c.account(f.Dst, 1, 0)
}

// FlowEnded implements netsim.Observer: the flow's socket events are
// attributed to its endpoints. Canceled flows are logged with the bytes
// that actually moved before the abort.
func (c *Collector) FlowEnded(f *netsim.Flow) {
	moved := f.Bytes
	if f.Canceled {
		moved = int64(f.Transferred())
	}
	ops := moved / c.cfg.OpBytes
	if moved%c.cfg.OpBytes != 0 || moved == 0 {
		ops++
	}
	// Sends at the source, receives at the destination, plus one close
	// event each.
	c.account(f.Src, ops+1, moved)
	c.account(f.Dst, ops+1, moved)
	rec := FlowRecord{
		ID: f.ID, Src: f.Src, Dst: f.Dst,
		SrcPort: f.SrcPort, DstPort: f.DstPort,
		Start: f.Start, End: f.End, Bytes: moved, Tag: f.Tag,
		Canceled: f.Canceled,
	}
	c.records = append(c.records, rec)
	c.metRecords.Inc()
	if c.sink != nil {
		c.sink(rec)
	}
}

// SetSink registers a callback invoked with each record as it is
// appended to the log. FlowEnded callbacks run on the simulation's
// coordinator goroutine after the fixed-order completion merge, so the
// sink sees records in the same deterministic completion order
// Records() accumulates — this is the emission path core.RunAnalyze
// feeds a LiveSource from. The sink must not block unboundedly on the
// consumer (LiveSource.Emit never does).
func (c *Collector) SetSink(fn func(FlowRecord)) { c.sink = fn }

func (c *Collector) account(s topology.ServerID, events, bytes int64) {
	if c.top.IsExternal(s) {
		return
	}
	c.events[s] += events
	c.netBytes[s] += bytes
	c.metSocketEvents.Add(events)
}

// Records returns the completed-flow log in completion order. The slice is
// shared; callers must not modify it.
func (c *Collector) Records() []FlowRecord { return c.records }

// NumRecords reports the number of completed flows captured.
func (c *Collector) NumRecords() int { return len(c.records) }

// Overhead summarizes the §2 instrumentation cost model over a run of the
// given length.
type Overhead struct {
	// MedianCPUPct is the median per-server CPU utilization increase.
	MedianCPUPct float64
	// MedianDiskPct is the median per-server disk utilization increase.
	MedianDiskPct float64
	// CyclesPerNetworkByte is the extra CPU cycles per byte of network
	// traffic.
	CyclesPerNetworkByte float64
	// LogBytesPerServerPerDay is the median uncompressed log production.
	LogBytesPerServerPerDay float64
	// UploadBytesPerServerPerDay is after compression.
	UploadBytesPerServerPerDay float64
	// CompressionRatio echoes the model constant.
	CompressionRatio float64
	// TotalEvents is the cluster-wide socket event count.
	TotalEvents int64
}

// Overhead computes the overhead report for a run lasting elapsed.
func (c *Collector) Overhead(elapsed netsim.Time) Overhead {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	n := len(c.events)
	cpu := make([]float64, n)
	disk := make([]float64, n)
	logRate := make([]float64, n)
	var totalEvents, totalNetBytes int64
	for i := 0; i < n; i++ {
		ev := float64(c.events[i])
		totalEvents += c.events[i]
		totalNetBytes += c.netBytes[i]
		evPerSec := ev / secs
		cpu[i] = evPerSec * c.cfg.CyclesPerEvent / c.cfg.ServerHz * 100
		bytesPerSec := ev * float64(c.cfg.EventLogBytes) / secs
		disk[i] = bytesPerSec / c.cfg.DiskBps * 100
		logRate[i] = ev * float64(c.cfg.EventLogBytes) / secs * 86400
	}
	o := Overhead{
		MedianCPUPct:     median(cpu),
		MedianDiskPct:    median(disk),
		CompressionRatio: c.cfg.CompressionRatio,
		TotalEvents:      totalEvents,
	}
	o.LogBytesPerServerPerDay = median(logRate)
	o.UploadBytesPerServerPerDay = o.LogBytesPerServerPerDay / c.cfg.CompressionRatio
	if totalNetBytes > 0 {
		o.CyclesPerNetworkByte = float64(totalEvents) * c.cfg.CyclesPerEvent / float64(totalNetBytes) / 2
	}
	return o
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	// insertion sort is fine for per-server arrays
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// MeasuredCompression gzip-compresses a sample of the collected records
// (up to limit; 0 means 100k) and returns the achieved ratio, grounding
// the §2 "at least 3x" claim in this run's data. Returns 0 with no error
// when nothing was collected.
func (c *Collector) MeasuredCompression(limit int) (float64, error) {
	if limit <= 0 {
		limit = 100_000
	}
	recs := c.records
	if len(recs) > limit {
		recs = recs[:limit]
	}
	return MeasureCompression(recs)
}

// Writer streams flow records to an io.Writer one JSON line at a time
// (the format cmd/dcsim emits and cmd/dcanalyze reads), so a
// paper-scale trace never needs to be fully materialized in memory.
// Call Flush when done.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter returns a streaming JSONL trace writer over w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record to the stream.
func (w *Writer) Write(rec *FlowRecord) error {
	if err := w.enc.Encode(rec); err != nil {
		return fmt.Errorf("trace: encode record %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// Count reports the number of records written so far.
func (w *Writer) Count() int { return w.n }

// Flush writes any buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams flow records from a JSONL trace one record at a time.
type Reader struct {
	dec *json.Decoder
	n   int
}

// NewReader returns a streaming JSONL trace reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Read returns the next record. It returns io.EOF (unwrapped) at the
// end of the stream.
func (r *Reader) Read() (FlowRecord, error) {
	var rec FlowRecord
	if err := r.dec.Decode(&rec); err == io.EOF {
		return rec, io.EOF
	} else if err != nil {
		return rec, fmt.Errorf("trace: decode record %d: %w", r.n, err)
	}
	r.n++
	return rec, nil
}

// WriteJSONL writes a fully-materialized record slice as JSONL — a
// convenience over Writer for in-memory traces.
func WriteJSONL(w io.Writer, records []FlowRecord) error {
	tw := NewWriter(w)
	for i := range records {
		if err := tw.Write(&records[i]); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ReadJSONL parses an entire JSONL flow-record stream into memory — a
// convenience over Reader for small traces.
func ReadJSONL(r io.Reader) ([]FlowRecord, error) {
	tr := NewReader(r)
	var out []FlowRecord
	for {
		rec, err := tr.Read()
		if err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
