package cosmos

import (
	"testing"
	"testing/quick"

	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	top := topology.MustNew(topology.SmallConfig())
	return NewStore(top, DefaultConfig(), stats.NewRNG(1))
}

func TestCreateExtentPlacement(t *testing.T) {
	s := newStore(t)
	e, transfers := s.CreateExtent(1<<20, 5)
	if e.Replicas[0] != 5 {
		t.Fatalf("primary = %d, want 5", e.Replicas[0])
	}
	if len(transfers) != 2 {
		t.Fatalf("got %d replication transfers, want 2", len(transfers))
	}
	top := topology.MustNew(topology.SmallConfig())
	// Second replica in the same rack, third in a different rack.
	if top.Rack(transfers[0].Dst) != top.Rack(5) {
		t.Errorf("second replica rack %d, want same rack as primary", top.Rack(transfers[0].Dst))
	}
	if top.Rack(transfers[1].Dst) == top.Rack(5) {
		t.Errorf("third replica should be off-rack")
	}
	// Replicas materialize only on commit.
	if len(e.Replicas) != 1 {
		t.Fatalf("uncommitted extent has %d replicas", len(e.Replicas))
	}
	for _, tr := range transfers {
		if err := s.CommitTransfer(tr); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.Replicas) != 3 {
		t.Fatalf("committed extent has %d replicas, want 3", len(e.Replicas))
	}
}

func TestCreateExtentRandomPrimary(t *testing.T) {
	s := newStore(t)
	e, _ := s.CreateExtent(100, -1)
	if e.Replicas[0] < 0 || int(e.Replicas[0]) >= 80 {
		t.Fatalf("random primary %d out of range", e.Replicas[0])
	}
}

func TestCreateExtentPanicsOnZeroBytes(t *testing.T) {
	s := newStore(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.CreateExtent(0, 0)
}

func TestCommitTransferIdempotent(t *testing.T) {
	s := newStore(t)
	_, transfers := s.CreateExtent(100, 0)
	if err := s.CommitTransfer(transfers[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitTransfer(transfers[0]); err != nil {
		t.Fatal(err)
	}
	e := s.Extent(transfers[0].Extent)
	if len(e.Replicas) != 2 {
		t.Fatalf("double commit duplicated replica: %v", e.Replicas)
	}
	if err := s.CommitTransfer(Transfer{Extent: 999}); err == nil {
		t.Fatal("commit of unknown extent should fail")
	}
}

func TestPickReplicaPreference(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	s := NewStore(top, DefaultConfig(), stats.NewRNG(2))
	e := &Extent{ID: 1, Bytes: 100, Replicas: []topology.ServerID{0, 11, 45}}
	// Reader holds a replica: local wins.
	if r, ok := s.PickReplica(e, 11); !ok || r != 11 {
		t.Fatalf("local replica not preferred: %v", r)
	}
	// Reader in rack 0 (servers 0-9): same-rack replica 0 wins.
	if r, ok := s.PickReplica(e, 3); !ok || r != 0 {
		t.Fatalf("same-rack replica not preferred: %v", r)
	}
	// Reader in rack 1 (10-19): replica 11 shares the rack.
	if r, ok := s.PickReplica(e, 15); !ok || r != 11 {
		t.Fatalf("same-rack replica not preferred: %v", r)
	}
	// Reader in rack 4 (40-49): replica 45 shares the rack.
	if r, ok := s.PickReplica(e, 42); !ok || r != 45 {
		t.Fatalf("same-rack replica not preferred: %v", r)
	}
	// No replicas.
	if _, ok := s.PickReplica(&Extent{}, 0); ok {
		t.Fatal("empty extent should have no replica")
	}
}

func TestPickReplicaVLANFallback(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig()) // RacksPerVLAN=2
	s := NewStore(top, DefaultConfig(), stats.NewRNG(3))
	// Replica on rack 1; reader on rack 0 (same VLAN), other replica rack 5.
	e := &Extent{ID: 1, Bytes: 100, Replicas: []topology.ServerID{55, 12}}
	if r, ok := s.PickReplica(e, 2); !ok || r != 12 {
		t.Fatalf("same-VLAN replica not preferred: %v", r)
	}
}

func TestSeedDatasetFullyReplicated(t *testing.T) {
	s := newStore(t)
	d := s.SeedDataset("web-pages", 5<<28) // 5 extents of 256 MB
	if len(d.Extents) != 5 {
		t.Fatalf("dataset has %d extents, want 5", len(d.Extents))
	}
	for _, id := range d.Extents {
		e := s.Extent(id)
		if len(e.Replicas) != 3 {
			t.Fatalf("extent %d has %d replicas, want 3", id, len(e.Replicas))
		}
	}
	if s.Dataset("web-pages") != d {
		t.Fatal("dataset not registered")
	}
	if got := s.DatasetBytes(d); got != 5<<28 {
		t.Fatalf("DatasetBytes = %d", got)
	}
}

func TestCreateDatasetTailExtent(t *testing.T) {
	s := newStore(t)
	d, _ := s.CreateDataset("tail", (256<<20)+100)
	if len(d.Extents) != 2 {
		t.Fatalf("dataset has %d extents, want 2", len(d.Extents))
	}
	if s.Extent(d.Extents[1]).Bytes != 100 {
		t.Fatalf("tail extent = %d bytes, want 100", s.Extent(d.Extents[1]).Bytes)
	}
}

func TestServerIndexes(t *testing.T) {
	s := newStore(t)
	d := s.SeedDataset("x", 1<<28)
	var total int64
	for srv := 0; srv < 80; srv++ {
		total += s.ServerBytes(topology.ServerID(srv))
	}
	want := s.DatasetBytes(d) * 3 // replication factor
	if total != want {
		t.Fatalf("sum of server bytes %d, want %d", total, want)
	}
}

func TestEvacuate(t *testing.T) {
	s := newStore(t)
	s.SeedDataset("big", 20<<28)
	// Find a server holding data.
	var victim topology.ServerID = -1
	for srv := 0; srv < 80; srv++ {
		if s.ServerBytes(topology.ServerID(srv)) > 0 {
			victim = topology.ServerID(srv)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no server holds data")
	}
	held := len(s.ServerExtents(victim))
	transfers := s.Evacuate(victim)
	if len(transfers) != held {
		t.Fatalf("evacuation plans %d transfers for %d extents", len(transfers), held)
	}
	for _, tr := range transfers {
		if tr.Src != victim {
			t.Fatalf("evacuation transfer sources from %d, want %d", tr.Src, victim)
		}
		if tr.Dst == victim || s.Extent(tr.Extent).HasReplica(tr.Dst) {
			t.Fatalf("bad evacuation target %d", tr.Dst)
		}
		if err := s.CommitTransfer(tr); err != nil {
			t.Fatal(err)
		}
		s.DropReplica(tr.Extent, victim)
	}
	if got := s.ServerBytes(victim); got != 0 {
		t.Fatalf("victim still holds %d bytes after evacuation", got)
	}
	// Replication factor restored.
	for _, tr := range transfers {
		if n := len(s.Extent(tr.Extent).Replicas); n != 3 {
			t.Fatalf("extent %d has %d replicas after evacuation", tr.Extent, n)
		}
	}
}

func TestDropReplicaUnknownExtentNoop(t *testing.T) {
	s := newStore(t)
	s.DropReplica(12345, 0) // must not panic
}

// Property: replicas of any committed extent are distinct servers, and the
// replication factor never exceeds the configured one.
func TestReplicaInvariantsProperty(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	f := func(seed uint64) bool {
		s := NewStore(top, DefaultConfig(), stats.NewRNG(seed))
		r := stats.NewRNG(seed + 1)
		for i := 0; i < 20; i++ {
			pref := topology.ServerID(r.IntN(top.NumServers()))
			e, trs := s.CreateExtent(int64(1+r.IntN(1<<20)), pref)
			for _, tr := range trs {
				if err := s.CommitTransfer(tr); err != nil {
					return false
				}
			}
			if len(e.Replicas) > 3 {
				return false
			}
			seen := map[topology.ServerID]bool{}
			for _, rep := range e.Replicas {
				if seen[rep] || int(rep) >= top.NumServers() || rep < 0 {
					return false
				}
				seen[rep] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTinyClusterReplication(t *testing.T) {
	// Replication factor is clamped to the cluster size.
	top := topology.MustNew(topology.Config{
		Racks: 1, ServersPerRack: 2, AggSwitches: 1, RacksPerVLAN: 1,
		ServerLinkBps: 1e9, TorUplinkBps: 1e9, AggUplinkBps: 1e9,
	})
	s := NewStore(top, DefaultConfig(), stats.NewRNG(5))
	if s.Config().ReplicationFactor != 2 {
		t.Fatalf("replication factor %d, want clamped 2", s.Config().ReplicationFactor)
	}
	d := s.SeedDataset("t", 100)
	e := s.Extent(d.Extents[0])
	if len(e.Replicas) != 2 {
		t.Fatalf("replicas = %v", e.Replicas)
	}
}

func TestPickReplicaRandomFallback(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	s := NewStore(top, DefaultConfig(), stats.NewRNG(9))
	// Replicas far from the reader's rack AND VLAN: random pick among them.
	e := &Extent{ID: 1, Bytes: 1, Replicas: []topology.ServerID{60, 70}}
	seen := map[topology.ServerID]bool{}
	for i := 0; i < 50; i++ {
		r, ok := s.PickReplica(e, 5) // rack 0, VLAN 0
		if !ok || (r != 60 && r != 70) {
			t.Fatalf("bad pick %v", r)
		}
		seen[r] = true
	}
	if len(seen) != 2 {
		t.Fatal("random fallback never varied")
	}
}

func TestCreateDatasetPanicsOnZero(t *testing.T) {
	s := newStore(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.CreateDataset("zero", 0)
}

func TestSeedDatasetNearEmptyRacksFallsBack(t *testing.T) {
	s := newStore(t)
	d := s.SeedDatasetNear("fb", 1<<20, nil)
	if d == nil || len(d.Extents) != 1 {
		t.Fatal("nil racks should fall back to SeedDataset")
	}
}

func TestSeedDatasetNearPanicsOnZeroBytes(t *testing.T) {
	s := newStore(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SeedDatasetNear("z", 0, []topology.RackID{0})
}

func TestNumExtentsAndServerExtents(t *testing.T) {
	s := newStore(t)
	before := s.NumExtents()
	e, _ := s.CreateExtent(100, 3)
	if s.NumExtents() != before+1 {
		t.Fatal("NumExtents did not grow")
	}
	found := false
	for _, id := range s.ServerExtents(3) {
		if id == e.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("primary not indexed under its server")
	}
	if s.Extent(99999) != nil {
		t.Fatal("unknown extent should be nil")
	}
}

// TestEvacuateDeterministic builds two same-seed stores (whose byServer
// maps have independent iteration orders) and checks that they plan
// identical evacuations: same transfer order and, because pickEvacTarget
// draws from the RNG per extent, same destinations. Map-order iteration
// here once made every paper-scale run diverge at the first evacuation.
func TestEvacuateDeterministic(t *testing.T) {
	plan := func() []Transfer {
		s := newStore(t)
		s.SeedDataset("big", 20<<28)
		var victim topology.ServerID = -1
		for srv := 0; srv < 80; srv++ {
			if s.ServerBytes(topology.ServerID(srv)) > 0 {
				victim = topology.ServerID(srv)
				break
			}
		}
		if victim < 0 {
			t.Fatal("no server holds data")
		}
		return s.Evacuate(victim)
	}
	a, b := plan(), plan()
	if len(a) != len(b) {
		t.Fatalf("plans differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transfer %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
