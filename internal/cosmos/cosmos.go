// Package cosmos models the replicated block-store layer of the paper's
// cluster: all job inputs and outputs live in fixed-size extents, each
// replicated (default three ways) across the same commodity servers that
// run computation. Replica placement is rack-aware in the GFS style — one
// replica near the writer, one elsewhere in the writer's rack, one in a
// different rack — which is one of the two structural reasons traffic is
// rack-local (the other being locality-aware vertex placement).
//
// The paper attributes several traffic sources directly to this layer:
// flow sizes "determined largely by chunking considerations", replica
// creation, and evacuation events when flaky servers are drained.
//
// The store is a pure placement bookkeeper: it decides where replicas live
// and which transfers are needed, and the cluster layer turns those
// decisions into simulated flows.
package cosmos

import (
	"fmt"
	"slices"

	"dctraffic/internal/obs"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// ExtentID identifies an extent.
type ExtentID int64

// Extent is one replicated chunk of a dataset.
type Extent struct {
	ID       ExtentID
	Bytes    int64
	Replicas []topology.ServerID // first is the primary
}

// HasReplica reports whether server s holds a replica.
func (e *Extent) HasReplica(s topology.ServerID) bool {
	for _, r := range e.Replicas {
		if r == s {
			return true
		}
	}
	return false
}

// Dataset is a named ordered collection of extents (a stored stream).
type Dataset struct {
	Name    string
	Extents []ExtentID
}

// Transfer is a byte movement the store needs performed (replication or
// evacuation). The cluster layer executes transfers as flows and calls
// Store.CommitTransfer when they complete.
type Transfer struct {
	Extent   ExtentID
	Src, Dst topology.ServerID
	Bytes    int64
}

// Config tunes the store.
type Config struct {
	ReplicationFactor int   // default 3
	ExtentBytes       int64 // default 256 MB, the chunking unit
}

// DefaultConfig returns production-like defaults.
func DefaultConfig() Config {
	return Config{ReplicationFactor: 3, ExtentBytes: 256 << 20}
}

// Store tracks extent placement across the cluster.
type Store struct {
	top      *topology.Topology
	cfg      Config
	rng      *stats.RNG
	extents  map[ExtentID]*Extent
	byServer map[topology.ServerID]map[ExtentID]bool
	datasets map[string]*Dataset
	nextID   ExtentID

	// Metric handles (nil when uninstrumented; methods are nil-safe).
	metReplPlannedBytes *obs.Counter
	metEvacPlannedBytes *obs.Counter
	metCommittedBytes   *obs.Counter
	metExtentsCreated   *obs.Counter
}

// NewStore creates an empty store over the topology. rng drives placement
// randomization.
func NewStore(top *topology.Topology, cfg Config, rng *stats.RNG) *Store {
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.ExtentBytes <= 0 {
		cfg.ExtentBytes = 256 << 20
	}
	if cfg.ReplicationFactor > top.NumServers() {
		cfg.ReplicationFactor = top.NumServers()
	}
	return &Store{
		top:      top,
		cfg:      cfg,
		rng:      rng,
		extents:  make(map[ExtentID]*Extent),
		byServer: make(map[topology.ServerID]map[ExtentID]bool),
		datasets: make(map[string]*Dataset),
	}
}

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// Instrument registers the store's cosmos.* series with the registry.
// Write-only from the store's perspective (see the obs package
// contract); safe to call with a nil registry.
func (s *Store) Instrument(r *obs.Registry) {
	s.metReplPlannedBytes = r.Counter("cosmos.replication_planned_bytes_total")
	s.metEvacPlannedBytes = r.Counter("cosmos.evacuation_planned_bytes_total")
	s.metCommittedBytes = r.Counter("cosmos.transfer_committed_bytes_total")
	s.metExtentsCreated = r.Counter("cosmos.extents_created_total")
	r.SampledGauge("cosmos.extents", func() float64 { return float64(len(s.extents)) })
	r.SampledGauge("cosmos.datasets", func() float64 { return float64(len(s.datasets)) })
}

// NumExtents reports the number of stored extents.
func (s *Store) NumExtents() int { return len(s.extents) }

// Extent returns the extent with the given id, or nil.
func (s *Store) Extent(id ExtentID) *Extent { return s.extents[id] }

// Dataset returns the dataset with the given name, or nil.
func (s *Store) Dataset(name string) *Dataset { return s.datasets[name] }

// ServerExtents returns the ids of extents with a replica on s, in
// ascending id order.
func (s *Store) ServerExtents(srv topology.ServerID) []ExtentID {
	m := s.byServer[srv]
	out := make([]ExtentID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// ServerBytes reports the bytes of replica data held by a server.
func (s *Store) ServerBytes(srv topology.ServerID) int64 {
	var total int64
	for id := range s.byServer[srv] {
		total += s.extents[id].Bytes
	}
	return total
}

// CreateExtent allocates an extent of the given size with its primary
// replica on (or near) preferred, plus rack-aware secondaries. Pass -1 to
// let the store pick a random primary. Only the primary replica is
// materialized; PendingReplications returns the transfers needed to build
// the secondaries, which the caller executes and commits.
func (s *Store) CreateExtent(bytes int64, preferred topology.ServerID) (*Extent, []Transfer) {
	if bytes <= 0 {
		panic("cosmos: extent size must be positive")
	}
	primary := preferred
	if primary < 0 || int(primary) >= s.top.NumServers() {
		primary = topology.ServerID(s.rng.IntN(s.top.NumServers()))
	}
	e := &Extent{ID: s.nextID, Bytes: bytes, Replicas: []topology.ServerID{primary}}
	s.nextID++
	s.extents[e.ID] = e
	s.index(primary, e.ID)
	s.metExtentsCreated.Inc()

	var transfers []Transfer
	for 1+len(transfers) < s.cfg.ReplicationFactor {
		dst := s.pickReplicaTarget(e, 1+len(transfers))
		if dst < 0 {
			break
		}
		transfers = append(transfers, Transfer{Extent: e.ID, Src: primary, Dst: dst, Bytes: bytes})
		s.metReplPlannedBytes.Add(bytes)
		// Reserve so subsequent picks avoid it; un-reserved below.
		e.Replicas = append(e.Replicas, dst)
	}
	// Un-reserve: replicas materialize only on CommitTransfer.
	e.Replicas = e.Replicas[:1]
	return e, transfers
}

// pickReplicaTarget chooses the n-th replica location: n==1 same rack as
// primary, n>=2 a different rack. Returns -1 when no candidate exists.
func (s *Store) pickReplicaTarget(e *Extent, n int) topology.ServerID {
	primary := e.Replicas[0]
	rack := s.top.Rack(primary)
	tryPick := func(candidates []topology.ServerID) topology.ServerID {
		// Random start, linear probe over candidates avoiding existing
		// replicas.
		if len(candidates) == 0 {
			return -1
		}
		start := s.rng.IntN(len(candidates))
		for i := 0; i < len(candidates); i++ {
			c := candidates[(start+i)%len(candidates)]
			if !e.HasReplica(c) {
				return c
			}
		}
		return -1
	}
	if n == 1 {
		if c := tryPick(s.top.RackServers(rack)); c >= 0 {
			return c
		}
	}
	// Different rack: sample random racks.
	for attempt := 0; attempt < 8; attempt++ {
		r := topology.RackID(s.rng.IntN(s.top.NumRacks()))
		if r == rack {
			continue
		}
		if c := tryPick(s.top.RackServers(r)); c >= 0 {
			return c
		}
	}
	// Fall back to any server.
	all := make([]topology.ServerID, s.top.NumServers())
	for i := range all {
		all[i] = topology.ServerID(i)
	}
	return tryPick(all)
}

// CommitTransfer records that a replication/evacuation transfer finished:
// the destination now holds a replica.
func (s *Store) CommitTransfer(t Transfer) error {
	e := s.extents[t.Extent]
	if e == nil {
		return fmt.Errorf("cosmos: commit for unknown extent %d", t.Extent)
	}
	if e.HasReplica(t.Dst) {
		return nil // idempotent
	}
	e.Replicas = append(e.Replicas, t.Dst)
	s.index(t.Dst, e.ID)
	s.metCommittedBytes.Add(t.Bytes)
	return nil
}

// DropReplica removes the replica of extent id held by srv (used after an
// evacuated server's data has been copied away).
func (s *Store) DropReplica(id ExtentID, srv topology.ServerID) {
	e := s.extents[id]
	if e == nil {
		return
	}
	for i, r := range e.Replicas {
		if r == srv {
			e.Replicas = append(e.Replicas[:i], e.Replicas[i+1:]...)
			break
		}
	}
	if m := s.byServer[srv]; m != nil {
		delete(m, id)
	}
}

// PickReplica returns the replica of e a reader on srv should fetch from,
// preferring local, then same-rack, then same-VLAN, then any replica.
// It returns (-1, false) when the extent has no replicas.
func (s *Store) PickReplica(e *Extent, reader topology.ServerID) (topology.ServerID, bool) {
	if len(e.Replicas) == 0 {
		return -1, false
	}
	var sameRack, sameVLAN topology.ServerID = -1, -1
	for _, r := range e.Replicas {
		if r == reader {
			return r, true
		}
		if sameRack < 0 && s.top.SameRack(reader, r) {
			sameRack = r
		}
		if sameVLAN < 0 && s.top.SameVLAN(reader, r) {
			sameVLAN = r
		}
	}
	if sameRack >= 0 {
		return sameRack, true
	}
	if sameVLAN >= 0 {
		return sameVLAN, true
	}
	return e.Replicas[s.rng.IntN(len(e.Replicas))], true
}

// CreateDataset stores a dataset of totalBytes split into extent-sized
// chunks, spread across the cluster with random primaries. It returns the
// dataset and the replication transfers needed (already-committed
// primaries hold the data; callers may execute transfers lazily or commit
// them immediately for pre-existing data).
func (s *Store) CreateDataset(name string, totalBytes int64) (*Dataset, []Transfer) {
	if totalBytes <= 0 {
		panic("cosmos: dataset size must be positive")
	}
	d := &Dataset{Name: name}
	var transfers []Transfer
	for remaining := totalBytes; remaining > 0; {
		sz := s.cfg.ExtentBytes
		if remaining < sz {
			sz = remaining
		}
		e, tr := s.CreateExtent(sz, -1)
		d.Extents = append(d.Extents, e.ID)
		transfers = append(transfers, tr...)
		remaining -= sz
	}
	s.datasets[name] = d
	return d, transfers
}

// SeedDataset creates a dataset whose replicas are fully materialized
// without network transfers — the state of data that was ingested before
// the measured window.
func (s *Store) SeedDataset(name string, totalBytes int64) *Dataset {
	d, transfers := s.CreateDataset(name, totalBytes)
	for _, t := range transfers {
		if err := s.CommitTransfer(t); err != nil {
			panic(err) // transfers we just created cannot be unknown
		}
	}
	return d
}

// SeedDatasetNear creates a fully-replicated dataset whose primary
// replicas are concentrated on the given racks. Real cluster data has this
// shape: it was written locally by the co-located vertices of earlier jobs,
// which is what makes subsequent work able to seek bandwidth near its
// input.
func (s *Store) SeedDatasetNear(name string, totalBytes int64, racks []topology.RackID) *Dataset {
	if len(racks) == 0 {
		return s.SeedDataset(name, totalBytes)
	}
	if totalBytes <= 0 {
		panic("cosmos: dataset size must be positive")
	}
	d := &Dataset{Name: name}
	for remaining := totalBytes; remaining > 0; {
		sz := s.cfg.ExtentBytes
		if remaining < sz {
			sz = remaining
		}
		rack := racks[s.rng.IntN(len(racks))]
		servers := s.top.RackServers(rack)
		preferred := servers[s.rng.IntN(len(servers))]
		e, transfers := s.CreateExtent(sz, preferred)
		for _, t := range transfers {
			if err := s.CommitTransfer(t); err != nil {
				panic(err)
			}
		}
		d.Extents = append(d.Extents, e.ID)
		remaining -= sz
	}
	s.datasets[name] = d
	return d
}

// Evacuate plans the drain of a server: every replica it holds must be
// copied to another server before the machine is re-imaged. The returned
// transfers source from the evacuating server (it is still up, and the
// automated management system copies "the usable blocks on that server").
// Call CommitTransfer then DropReplica as each completes.
func (s *Store) Evacuate(srv topology.ServerID) []Transfer {
	// Plan in ascending extent order: byServer is a map, and both the
	// transfer order and the RNG draws consumed by pickEvacTarget must
	// not depend on map iteration order, or same-seed runs diverge at
	// the first evacuation.
	var out []Transfer
	for _, id := range s.ServerExtents(srv) {
		e := s.extents[id]
		dst := s.pickEvacTarget(e, srv)
		if dst < 0 {
			continue
		}
		out = append(out, Transfer{Extent: id, Src: srv, Dst: dst, Bytes: e.Bytes})
		s.metEvacPlannedBytes.Add(e.Bytes)
	}
	return out
}

// pickEvacTarget finds a server not already holding a replica, preferring
// a rack other than the evacuating server's (re-creating the diversity the
// lost replica provided).
func (s *Store) pickEvacTarget(e *Extent, leaving topology.ServerID) topology.ServerID {
	for attempt := 0; attempt < 16; attempt++ {
		c := topology.ServerID(s.rng.IntN(s.top.NumServers()))
		if c == leaving || e.HasReplica(c) {
			continue
		}
		if attempt < 8 && s.top.SameRack(c, leaving) {
			continue
		}
		return c
	}
	return -1
}

// DatasetBytes reports the logical (un-replicated) size of a dataset.
func (s *Store) DatasetBytes(d *Dataset) int64 {
	var total int64
	for _, id := range d.Extents {
		total += s.extents[id].Bytes
	}
	return total
}

func (s *Store) index(srv topology.ServerID, id ExtentID) {
	m := s.byServer[srv]
	if m == nil {
		m = make(map[ExtentID]bool)
		s.byServer[srv] = m
	}
	m[id] = true
}
