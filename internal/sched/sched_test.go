package sched

import (
	"testing"
	"time"

	"dctraffic/internal/cosmos"
	"dctraffic/internal/eventlog"
	"dctraffic/internal/netsim"
	"dctraffic/internal/scope"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// testRig builds a small cluster with modest data sizes so tests run fast.
func testRig(seed uint64) (*Cluster, *netsim.Network, *eventlog.Log) {
	top := topology.MustNew(topology.SmallConfig())
	net := netsim.New(top, netsim.Options{})
	log := &eventlog.Log{}
	store := cosmos.NewStore(top, cosmos.Config{ReplicationFactor: 3, ExtentBytes: 64 << 20}, stats.NewRNG(seed).Fork("store"))
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.NumDatasets = 4
	cfg.DatasetMedian = 512 << 20
	cfg.DatasetP90 = 2 << 30
	cfg.BatchInputMedian = 256 << 20
	cfg.BatchInputP90 = 1 << 30
	cfg.InteractiveInputMedian = 64 << 20
	cfg.InteractiveInputP90 = 128 << 20
	cfg.IngestBytes = 128 << 20
	cl := NewCluster(net, store, log, cfg)
	return cl, net, log
}

type flowCounter struct {
	byKind map[netsim.FlowKind]int
	total  int
}

func (f *flowCounter) FlowStarted(fl *netsim.Flow) {
	if f.byKind == nil {
		f.byKind = map[netsim.FlowKind]int{}
	}
	f.byKind[fl.Tag.Kind]++
	f.total++
}
func (f *flowCounter) FlowEnded(*netsim.Flow) {}

func TestSingleJobCompletes(t *testing.T) {
	cl, net, log := testRig(1)
	fc := &flowCounter{}
	net.AddObserver(fc)
	spec := scope.FilterAggregateJob("test", "dataset-00", 256<<20, 0.5, 4)
	j, err := cl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	net.Run(time.Hour)
	if !j.Done() {
		t.Fatal("job did not finish within an hour of simulated time")
	}
	if j.Killed {
		t.Fatal("job was killed")
	}
	if log.CountType(eventlog.JobCompleted) != 1 {
		t.Fatal("missing JobCompleted record")
	}
	// All four phases should have started and completed.
	if got := log.CountType(eventlog.PhaseCompleted); got != 4 {
		t.Fatalf("PhaseCompleted count = %d, want 4", got)
	}
	// The job must have produced shuffle and control traffic, and output
	// replication.
	if fc.byKind[netsim.KindShuffle] == 0 {
		t.Fatal("no shuffle flows — scatter-gather missing")
	}
	if fc.byKind[netsim.KindControl] == 0 {
		t.Fatal("no control flows")
	}
	if fc.byKind[netsim.KindReplicate] == 0 {
		t.Fatal("no replication flows for job output")
	}
	if j.Duration() <= 0 {
		t.Fatal("job duration not recorded")
	}
}

func TestSubmitUnknownDataset(t *testing.T) {
	cl, _, _ := testRig(2)
	if _, err := cl.Submit(scope.FilterAggregateJob("x", "nope", 1<<20, 0.5, 1)); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestVerticesDontExceedConnCap(t *testing.T) {
	cl, net, _ := testRig(3)
	spec := scope.FilterAggregateJob("cap", "dataset-00", 512<<20, 1.0, 6)
	if _, err := cl.Submit(spec); err != nil {
		t.Fatal(err)
	}
	net.Run(2 * time.Hour)
	if got := cl.MaxConcurrentPulls(); got > cl.Config().MaxConnsPerVertex {
		t.Fatalf("a vertex opened %d simultaneous pulls, cap is %d", got, cl.Config().MaxConnsPerVertex)
	}
	if cl.MaxConcurrentPulls() == 0 {
		t.Fatal("no pulls recorded")
	}
}

func TestWorkSeeksBandwidthLocality(t *testing.T) {
	cl, net, _ := testRig(4)
	for i := 0; i < 6; i++ {
		spec := scope.FilterAggregateJob("loc", "dataset-00", 256<<20, 0.8, 4)
		if _, err := cl.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(2 * time.Hour)
	local, rack, vlan, remote := cl.ReadLocality()
	near := local + rack + vlan
	if near == 0 {
		t.Fatal("no reads recorded")
	}
	// The locality-preferring scheduler must keep most reads near the
	// data (the work-seeks-bandwidth pattern).
	frac := float64(near) / float64(near+remote)
	if frac < 0.5 {
		t.Fatalf("only %.2f of reads are local/rack/VLAN; placement is not seeking bandwidth", frac)
	}
}

func TestJobKilledWhenReadsAlwaysFail(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	net := netsim.New(top, netsim.Options{})
	log := &eventlog.Log{}
	store := cosmos.NewStore(top, cosmos.Config{ReplicationFactor: 3, ExtentBytes: 64 << 20}, stats.NewRNG(7))
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.NumDatasets = 1
	cfg.DatasetMedian = 256 << 20
	cfg.DatasetP90 = 512 << 20
	cfg.ReadFailBase = 1.0 // every read fails
	cfg.MaxReadRetries = 1
	cl := NewCluster(net, store, log, cfg)
	j, err := cl.Submit(scope.FilterAggregateJob("doomed", "dataset-00", 128<<20, 0.5, 2))
	if err != nil {
		t.Fatal(err)
	}
	net.Run(time.Hour)
	if !j.Killed {
		t.Fatal("job should have been killed")
	}
	if log.CountType(eventlog.JobKilled) != 1 {
		t.Fatal("missing JobKilled record")
	}
	// Failed read attempts must be logged for Figure 8 analysis.
	_, failures, _ := log.ReadFailureStats(0, time.Hour)
	if failures == 0 {
		t.Fatal("no failed read attempts logged")
	}
	// No core leak: all cores free once everything drains.
	for s, busy := range cl.coresBusy {
		if busy != 0 {
			t.Fatalf("server %d still holds %d cores", s, busy)
		}
	}
}

func TestWorkloadRun(t *testing.T) {
	cl, net, log := testRig(5)
	dur := 30 * time.Minute
	cl.Start(dur)
	net.Run(dur + 30*time.Minute) // drain
	if len(cl.Jobs()) == 0 {
		t.Fatal("no jobs arrived in 30 minutes")
	}
	done := 0
	for _, j := range cl.Jobs() {
		if j.Done() {
			done++
		}
	}
	if done == 0 {
		t.Fatal("no job finished")
	}
	if log.CountType(eventlog.JobSubmitted) != len(cl.Jobs()) {
		t.Fatal("submission records mismatch")
	}
	if net.FlowsCompleted() == 0 {
		t.Fatal("workload generated no traffic")
	}
	// Membership records exist for the tomography job prior.
	if len(log.Membership()) == 0 {
		t.Fatal("no job membership records")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	run := func() (int64, int) {
		cl, net, log := testRig(42)
		cl.Start(20 * time.Minute)
		net.Run(40 * time.Minute)
		return net.FlowsStarted(), len(log.Records())
	}
	f1, r1 := run()
	f2, r2 := run()
	if f1 != f2 || r1 != r2 {
		t.Fatalf("workload not deterministic: (%d,%d) vs (%d,%d)", f1, r1, f2, r2)
	}
}

func TestEvacuationGeneratesTraffic(t *testing.T) {
	cl, net, log := testRig(6)
	fc := &flowCounter{}
	net.AddObserver(fc)
	net.Schedule(0, func() { cl.runEvacuation() })
	net.Run(time.Hour)
	if fc.byKind[netsim.KindEvacuate] == 0 {
		t.Fatal("evacuation produced no flows")
	}
	if log.CountType(eventlog.EvacuationStarted) != 1 || log.CountType(eventlog.EvacuationCompleted) != 1 {
		t.Fatal("evacuation lifecycle not logged")
	}
}

func TestIngestCreatesDataset(t *testing.T) {
	cl, net, _ := testRig(8)
	fc := &flowCounter{}
	net.AddObserver(fc)
	net.Schedule(0, func() { cl.runIngest(0) })
	net.Run(2 * time.Hour)
	if fc.byKind[netsim.KindIngest] == 0 {
		t.Fatal("ingest produced no flows")
	}
	if cl.store.Dataset("ingest-0") == nil {
		t.Fatal("ingest dataset not registered")
	}
}

func TestArrivalRateDiurnalAndWeekend(t *testing.T) {
	cl, _, _ := testRig(9)
	peak := cl.arrivalRate(12 * time.Hour) // mid-day, day 0
	trough := cl.arrivalRate(0)            // midnight
	if peak <= trough {
		t.Fatalf("no diurnal swing: peak %v <= trough %v", peak, trough)
	}
	weekday := cl.arrivalRate(2*24*time.Hour + 12*time.Hour) // day 2
	weekend := cl.arrivalRate(5*24*time.Hour + 12*time.Hour) // day 5
	if weekend >= weekday {
		t.Fatalf("no weekend dip: weekend %v >= weekday %v", weekend, weekday)
	}
}

func TestJoinJobCompletes(t *testing.T) {
	cl, net, _ := testRig(10)
	j, err := cl.Submit(scope.JoinJob("jn", "dataset-01", 256<<20, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	net.Run(2 * time.Hour)
	if !j.Done() || j.Killed {
		t.Fatalf("join job done=%v killed=%v", j.Done(), j.Killed)
	}
}

func TestInteractiveJobFast(t *testing.T) {
	cl, net, _ := testRig(11)
	j, err := cl.Submit(scope.InteractiveJob("i", "dataset-00", 64<<20))
	if err != nil {
		t.Fatal(err)
	}
	net.Run(time.Hour)
	if !j.Done() || j.Killed {
		t.Fatal("interactive job failed")
	}
	if j.Duration() > 10*time.Minute {
		t.Fatalf("interactive job took %v", j.Duration())
	}
}

func TestCoreAccountingNeverNegative(t *testing.T) {
	cl, net, _ := testRig(12)
	cl.Start(10 * time.Minute)
	net.Run(30 * time.Minute)
	for s, busy := range cl.coresBusy {
		if busy < 0 {
			t.Fatalf("server %d has negative busy cores", s)
		}
		if busy > cl.Config().CoresPerServer {
			t.Fatalf("server %d exceeds core count: %d", s, busy)
		}
	}
}
