package sched

import (
	"fmt"
	"math"
	"time"

	"dctraffic/internal/cosmos"
	"dctraffic/internal/eventlog"
	"dctraffic/internal/netsim"
	"dctraffic/internal/obs"
	"dctraffic/internal/scope"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// Cluster is the job manager: it owns the mapping from workload to network
// activity. One Cluster drives one netsim.Network.
type Cluster struct {
	cfg   Config
	net   *netsim.Network
	top   *topology.Topology
	store *cosmos.Store
	log   *eventlog.Log
	rng   *stats.RNG

	coresBusy []int
	waiting   []func() bool // queued vertex starts; retried when a core frees

	datasets    []*cosmos.Dataset
	datasetZipf *stats.Zipf

	jobs      []*Job
	nextJobID int

	// Counters for the §4.4 incast-preconditions audit.
	localReads         int64
	rackReads          int64
	vlanReads          int64
	remoteReads        int64
	maxConcurrentPulls int

	// Metric handles for the scope-layer series (nil when
	// uninstrumented; methods are nil-safe).
	metJobsSubmitted   *obs.Counter
	metJobsCompleted   *obs.Counter
	metJobsKilled      *obs.Counter
	metPhasesStarted   *obs.Counter
	metPhasesCompleted *obs.Counter
	metVerticesStarted *obs.Counter
	metVertexFanout    *obs.Histogram
}

// NewCluster wires a job manager over a network, block store and log.
// Datasets are seeded immediately (fully replicated, no traffic).
func NewCluster(net *netsim.Network, store *cosmos.Store, log *eventlog.Log, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:       cfg,
		net:       net,
		top:       net.Top(),
		store:     store,
		log:       log,
		rng:       stats.NewRNG(cfg.Seed).Fork("sched"),
		coresBusy: make([]int, net.Top().NumServers()),
		nextJobID: 1, // 0 means "unattributed" in flow tags
	}
	sizeDist := stats.LognormalFromMedianP90(float64(cfg.DatasetMedian), float64(cfg.DatasetP90))
	dsRNG := c.rng.Fork("datasets")
	for i := 0; i < cfg.NumDatasets; i++ {
		bytes := int64(sizeDist.Sample(dsRNG))
		if bytes < store.Config().ExtentBytes {
			bytes = store.Config().ExtentBytes
		}
		// Concentrate each dataset on a few contiguous racks (a VLAN's
		// worth), the footprint left by the co-located job that wrote it.
		span := 1 + int(bytes/(64*store.Config().ExtentBytes))
		if span > 3 {
			span = 3
		}
		if max := c.top.NumRacks() / 2; span > max && max > 0 {
			span = max
		}
		start := dsRNG.IntN(c.top.NumRacks())
		var racks []topology.RackID
		for r := 0; r < span; r++ {
			racks = append(racks, topology.RackID((start+r)%c.top.NumRacks()))
		}
		d := store.SeedDatasetNear(fmt.Sprintf("dataset-%02d", i), bytes, racks)
		c.datasets = append(c.datasets, d)
	}
	c.datasetZipf = stats.NewZipf(cfg.NumDatasets, cfg.DatasetZipfSkew)
	return c
}

// Config returns the effective (default-filled) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Instrument registers the scope.* workload series with the registry:
// job lifecycle counts, phase starts/finishes and the per-phase vertex
// fan-out histogram. Write-only from the scheduler's perspective (see
// the obs package contract); safe to call with a nil registry.
func (c *Cluster) Instrument(r *obs.Registry) {
	c.metJobsSubmitted = r.Counter("scope.jobs_submitted_total")
	c.metJobsCompleted = r.Counter("scope.jobs_completed_total")
	c.metJobsKilled = r.Counter("scope.jobs_killed_total")
	c.metPhasesStarted = r.Counter("scope.phases_started_total")
	c.metPhasesCompleted = r.Counter("scope.phases_completed_total")
	c.metVerticesStarted = r.Counter("scope.vertices_started_total")
	c.metVertexFanout = r.Histogram("scope.vertex_fanout", obs.Pow2Bounds(1, 14))
	r.SampledCounter("scope.reads_local_total", func() float64 { return float64(c.localReads) })
	r.SampledCounter("scope.reads_rack_total", func() float64 { return float64(c.rackReads) })
	r.SampledCounter("scope.reads_vlan_total", func() float64 { return float64(c.vlanReads) })
	r.SampledCounter("scope.reads_remote_total", func() float64 { return float64(c.remoteReads) })
	r.SampledGauge("scope.waiting_vertex_starts", func() float64 { return float64(len(c.waiting)) })
}

// Jobs returns all jobs submitted so far.
func (c *Cluster) Jobs() []*Job { return c.jobs }

// ReadLocality reports how many vertex input reads were served locally,
// from the same rack, from the same VLAN, and from farther away — the
// §4.4 locality audit.
func (c *Cluster) ReadLocality() (local, rack, vlan, remote int64) {
	return c.localReads, c.rackReads, c.vlanReads, c.remoteReads
}

// MaxConcurrentPulls reports the largest number of simultaneous input
// connections any vertex opened (bounded by MaxConnsPerVertex).
func (c *Cluster) MaxConcurrentPulls() int { return c.maxConcurrentPulls }

// Start schedules the full workload — job arrivals, ingest, evacuations —
// over [0, duration). Call net.Run(duration) afterwards to execute.
func (c *Cluster) Start(duration netsim.Time) {
	c.scheduleArrivals(duration)
	c.scheduleIngest(duration)
	c.scheduleEvacuations(duration)
}

// arrivalRate is the non-homogeneous job arrival rate (jobs/hour) at t:
// a diurnal sinusoid with a weekend dip.
func (c *Cluster) arrivalRate(t netsim.Time) float64 {
	day := float64(t) / float64(24*time.Hour)
	phase := 2 * math.Pi * (day - 0.25) // peak mid-day
	rate := c.cfg.JobsPerHour * (1 + c.cfg.DiurnalAmplitude*math.Sin(phase))
	if int(day)%7 >= 5 {
		rate *= c.cfg.WeekendFactor
	}
	if rate < 0 {
		rate = 0
	}
	return rate
}

// scheduleArrivals draws a non-homogeneous Poisson process by thinning.
func (c *Cluster) scheduleArrivals(duration netsim.Time) {
	r := c.rng.Fork("arrivals")
	lambdaMax := c.cfg.JobsPerHour * (1 + c.cfg.DiurnalAmplitude)
	if lambdaMax <= 0 {
		return
	}
	meanGap := float64(time.Hour) / lambdaMax
	for t := netsim.Time(0); t < duration; {
		t += netsim.Time(stats.Exponential{Rate: 1 / meanGap}.Sample(r))
		if t >= duration {
			break
		}
		if r.Float64() > c.arrivalRate(t)/lambdaMax {
			continue // thinned out
		}
		at := t
		c.net.Schedule(at, func() { c.submitRandomJob() })
	}
}

// submitRandomJob draws a job from the configured mix and submits it.
func (c *Cluster) submitRandomJob() {
	r := c.rng
	id := c.nextJobID
	var spec *scope.JobSpec
	switch {
	case r.Bool(c.cfg.InteractiveFraction):
		bytes := c.sampleInput(c.cfg.InteractiveInputMedian, c.cfg.InteractiveInputP90)
		spec = scope.InteractiveJob(fmt.Sprintf("adhoc-%d", id), c.pickDataset(), bytes)
	case r.Bool(c.cfg.JoinFraction / (1 - c.cfg.InteractiveFraction)):
		bytes := c.sampleInput(c.cfg.BatchInputMedian, c.cfg.BatchInputP90)
		spec = scope.JoinJob(fmt.Sprintf("join-%d", id), c.pickDataset(), bytes, 0.3)
	case c.cfg.PipelineFraction > 0 && r.Bool(c.cfg.PipelineFraction):
		// Long-running production pipelines: several shuffle rounds.
		bytes := c.sampleInput(c.cfg.BatchInputMedian, c.cfg.BatchInputP90)
		spec = scope.MultiRoundJob(fmt.Sprintf("pipeline-%d", id), c.pickDataset(), bytes, 2+r.IntN(2))
	default:
		bytes := c.sampleInput(c.cfg.BatchInputMedian, c.cfg.BatchInputP90)
		sel := 0.05 + 0.45*r.Float64()
		spec = scope.FilterAggregateJob(fmt.Sprintf("index-%d", id), c.pickDataset(), bytes, sel, 0)
	}
	if _, err := c.Submit(spec); err != nil {
		// Workload templates always compile; a failure here is a bug.
		panic(err)
	}
}

func (c *Cluster) sampleInput(median, p90 int64) int64 {
	d := stats.LognormalFromMedianP90(float64(median), float64(p90))
	b := int64(d.Sample(c.rng))
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

func (c *Cluster) pickDataset() string {
	return c.datasets[c.datasetZipf.Sample(c.rng)].Name
}

// scheduleIngest arranges periodic dataset uploads from external hosts.
func (c *Cluster) scheduleIngest(duration netsim.Time) {
	if c.cfg.IngestPerHour <= 0 || c.top.NumHosts() == c.top.NumServers() {
		return
	}
	r := c.rng.Fork("ingest")
	meanGap := float64(time.Hour) / c.cfg.IngestPerHour
	seq := 0
	for t := netsim.Time(stats.Exponential{Rate: 1 / meanGap}.Sample(r)); t < duration; t += netsim.Time(stats.Exponential{Rate: 1 / meanGap}.Sample(r)) {
		at := t
		n := seq
		seq++
		c.net.Schedule(at, func() { c.runIngest(n) })
	}
}

// runIngest uploads a new dataset from a random external host: one flow
// per extent into the chosen primary, then in-cluster replication.
func (c *Cluster) runIngest(seq int) {
	r := c.rng
	ext := topology.ServerID(c.top.NumServers() + r.IntN(c.top.NumHosts()-c.top.NumServers()))
	name := fmt.Sprintf("ingest-%d", seq)
	d, transfers := c.store.CreateDataset(name, c.cfg.IngestBytes)
	// Upload each extent primary from the external host, paced serially
	// (uploaders stream extents one at a time), then replicate.
	var uploadNext func(i int)
	uploadNext = func(i int) {
		if i >= len(d.Extents) {
			return
		}
		e := c.store.Extent(d.Extents[i])
		c.net.StartFlow(ext, e.Replicas[0], e.Bytes, netsim.FlowTag{Kind: netsim.KindIngest}, func(*netsim.Flow) {
			uploadNext(i + 1)
		})
	}
	uploadNext(0)
	c.runTransfers(transfers, netsim.KindIngest, 2, nil)
}

// scheduleEvacuations arranges random server drains.
func (c *Cluster) scheduleEvacuations(duration netsim.Time) {
	if c.cfg.EvacuationsPerDay <= 0 {
		return
	}
	r := c.rng.Fork("evac")
	meanGap := float64(24*time.Hour) / c.cfg.EvacuationsPerDay
	for t := netsim.Time(stats.Exponential{Rate: 1 / meanGap}.Sample(r)); t < duration; t += netsim.Time(stats.Exponential{Rate: 1 / meanGap}.Sample(r)) {
		at := t
		c.net.Schedule(at, func() { c.runEvacuation() })
	}
}

// runEvacuation drains a random server: every block it holds is copied
// off, with bounded parallelism, before the machine is handed to a human.
func (c *Cluster) runEvacuation() {
	victim := topology.ServerID(c.rng.IntN(c.top.NumServers()))
	transfers := c.store.Evacuate(victim)
	if len(transfers) == 0 {
		return
	}
	c.log.Append(eventlog.Record{
		Time: c.net.Now(), Type: eventlog.EvacuationStarted, Server: victim,
		Name: fmt.Sprintf("%d extents", len(transfers)),
	})
	c.runTransfers(transfers, netsim.KindEvacuate, 4, func() {
		c.log.Append(eventlog.Record{
			Time: c.net.Now(), Type: eventlog.EvacuationCompleted, Server: victim,
		})
	})
}

// runTransfers executes store transfers as flows with at most parallel in
// flight, committing each on completion; done (optional) runs when all
// finish.
func (c *Cluster) runTransfers(transfers []cosmos.Transfer, kind netsim.FlowKind, parallel int, done func()) {
	if len(transfers) == 0 {
		if done != nil {
			done()
		}
		return
	}
	if parallel < 1 {
		parallel = 1
	}
	next := 0
	outstanding := 0
	var launch func()
	var onDone func(*netsim.Flow)
	onDone = func(*netsim.Flow) {
		outstanding--
		launch()
	}
	launch = func() {
		for outstanding < parallel && next < len(transfers) {
			t := transfers[next]
			next++
			outstanding++
			c.net.StartFlow(t.Src, t.Dst, t.Bytes, netsim.FlowTag{Kind: kind}, func(f *netsim.Flow) {
				if !f.Canceled {
					if err := c.store.CommitTransfer(t); err != nil {
						panic(err) // transfers come from the store; unknown extents are impossible
					}
					if kind == netsim.KindEvacuate {
						c.store.DropReplica(t.Extent, t.Src)
					}
				}
				onDone(f)
			})
		}
		if outstanding == 0 && next >= len(transfers) && done != nil {
			done()
			done = nil
		}
	}
	launch()
}

// --- core accounting -------------------------------------------------

// tryAcquireCore takes a core on srv, returning false when none is free.
func (c *Cluster) tryAcquireCore(srv topology.ServerID) bool {
	if c.coresBusy[srv] >= c.cfg.CoresPerServer {
		return false
	}
	c.coresBusy[srv]++
	return true
}

// releaseCore frees a core and retries queued vertex starts.
func (c *Cluster) releaseCore(srv topology.ServerID) {
	c.coresBusy[srv]--
	if c.coresBusy[srv] < 0 {
		panic("sched: core release underflow")
	}
	// Retry waiting starts; keep the ones that still cannot run.
	if len(c.waiting) == 0 {
		return
	}
	var still []func() bool
	for _, w := range c.waiting {
		if !w() {
			still = append(still, w)
		}
	}
	c.waiting = still
}

// enqueueWaiting registers a vertex start to retry when cores free up.
// The callback returns true once it has successfully started.
func (c *Cluster) enqueueWaiting(start func() bool) {
	c.waiting = append(c.waiting, start)
}

// freeServer finds a server with a free core, preferring the given
// candidates tiers in order; each tier is tried before widening. Returns
// -1 if every core in the cluster is busy.
func (c *Cluster) freeServer(tiers ...[]topology.ServerID) topology.ServerID {
	for _, tier := range tiers {
		if len(tier) == 0 {
			continue
		}
		start := c.rng.IntN(len(tier))
		for i := 0; i < len(tier); i++ {
			s := tier[(start+i)%len(tier)]
			if c.coresBusy[s] < c.cfg.CoresPerServer {
				return s
			}
		}
	}
	// Any server at all.
	n := c.top.NumServers()
	start := c.rng.IntN(n)
	for i := 0; i < n; i++ {
		s := topology.ServerID((start + i) % n)
		if c.coresBusy[s] < c.cfg.CoresPerServer {
			return s
		}
	}
	return -1
}

// rackTier lists the servers in srv's rack; vlanTier the servers in its
// VLAN (excluding the rack, to keep tiers disjoint in spirit).
func (c *Cluster) rackTier(srv topology.ServerID) []topology.ServerID {
	r := c.top.Rack(srv)
	if r < 0 {
		return nil
	}
	return c.top.RackServers(r)
}

func (c *Cluster) vlanTier(srv topology.ServerID) []topology.ServerID {
	v := c.top.VLAN(srv)
	if v < 0 {
		return nil
	}
	var out []topology.ServerID
	rpv := c.top.Config().RacksPerVLAN
	for r := v * rpv; r < (v+1)*rpv && r < c.top.NumRacks(); r++ {
		out = append(out, c.top.RackServers(topology.RackID(r))...)
	}
	return out
}

// pacingGap samples the stop-and-go delay before a vertex opens its next
// connection (used for retry backoff).
func (c *Cluster) pacingGap() netsim.Time {
	j := c.cfg.PacingJitter
	f := 1 - j + 2*j*c.rng.Float64()
	return netsim.Time(float64(c.cfg.FlowPacing) * f)
}

// delayToNextTick returns the time until the vertex's next pacing-timer
// tick: connections open only on multiples of FlowPacing since the vertex
// began, the application-level rate limiting of §4.3.
func (c *Cluster) delayToNextTick(began netsim.Time) netsim.Time {
	if c.cfg.FlowPacing <= 0 {
		return 0
	}
	elapsed := c.net.Now() - began
	ticks := elapsed/c.cfg.FlowPacing + 1
	return ticks*c.cfg.FlowPacing - elapsed
}

// noteRead classifies the locality of a read for the §4.4 audit.
func (c *Cluster) noteRead(src, dst topology.ServerID) {
	switch {
	case src == dst:
		c.localReads++
	case c.top.SameRack(src, dst):
		c.rackReads++
	case c.top.SameVLAN(src, dst):
		c.vlanReads++
	default:
		c.remoteReads++
	}
}
