// Package sched is the cluster's job manager and workload generator: it
// admits Scope jobs, places their vertices with the locality preferences
// that produce the paper's work-seeks-bandwidth pattern, executes phase
// DAGs over the simulated network (generating scatter-gather shuffles,
// replication, evacuation, ingest and egress traffic), and writes the
// application-level logs used for attribution.
//
// The engineering decisions the paper credits for its findings are
// explicit knobs here:
//
//   - vertex placement prefers same server > same rack > same VLAN > any
//     (work-seeks-bandwidth, §4.1);
//   - extract vertices fall back to network reads only when every replica
//     holder's cores are busy (§4.2's unexpected congestion source);
//   - each vertex opens at most MaxConnsPerVertex simultaneous connections
//     (default 2) and paces new flows stop-and-go (§4.3's ~15 ms
//     inter-arrival modes, §4.4's incast avoidance);
//   - jobs that cannot read input are killed and logged (Figure 8);
//   - flaky servers are evacuated by the automated management system.
package sched

import (
	"time"

	"dctraffic/internal/netsim"
)

// Config parameterizes the workload. DefaultConfig returns values tuned
// for the laptop-scale topology (topology.SmallConfig); scale JobsPerHour
// and dataset sizes with cluster size.
type Config struct {
	Seed uint64

	// Workload mix.
	JobsPerHour         float64 // base Poisson arrival rate
	InteractiveFraction float64 // short exploratory jobs
	JoinFraction        float64 // two-input combine jobs
	PipelineFraction    float64 // multi-round shuffle pipelines (0 disables)
	DiurnalAmplitude    float64 // arrival-rate swing over the day, 0..1
	WeekendFactor       float64 // arrival multiplier on days 5 and 6

	// Input sizes (lognormal, by job class).
	BatchInputMedian       int64
	BatchInputP90          int64
	InteractiveInputMedian int64
	InteractiveInputP90    int64

	// Datasets seeded into the store before the run.
	NumDatasets     int
	DatasetMedian   int64
	DatasetP90      int64
	DatasetZipfSkew float64

	// Server resources.
	CoresPerServer int
	ComputeBps     float64 // per-vertex processing speed
	DiskBps        float64 // local read speed

	// Connection management (the §4.4 incast-avoidance decisions).
	MaxConnsPerVertex int
	FlowPacing        netsim.Time // stop-and-go gap between new flows
	PacingJitter      float64     // +- fraction of FlowPacing

	// Read failures (Figure 8). A read attempt fails with probability
	// ReadFailBase, plus ReadFailStallBoost scaled by how far the
	// observed flow rate fell below StallRateBps.
	ReadFailBase       float64
	ReadFailStallBoost float64
	StallRateBps       float64
	MaxReadRetries     int

	// Background activity.
	EvacuationsPerDay float64
	IngestPerHour     float64 // dataset uploads from external hosts
	IngestBytes       int64
	EgressProbability float64 // chance a finished job's output is pulled out

	ControlFlowBytes int64 // job-manager chatter per vertex event

	// RandomPlacement disables every locality preference (ablation knob):
	// extract and shuffle vertices land on uniformly random free-core
	// servers. Used to demonstrate that the work-seeks-bandwidth diagonal
	// of Figure 2 is a consequence of placement policy, not topology.
	RandomPlacement bool
}

// DefaultConfig returns a workload sized for the 80-server SmallConfig
// topology. The mix keeps the fabric busy enough that oversubscribed ToR
// uplinks congest several times per simulated hour, as in the paper.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		JobsPerHour:         150,
		InteractiveFraction: 0.45,
		JoinFraction:        0.15,
		DiurnalAmplitude:    0.5,
		WeekendFactor:       0.25,

		BatchInputMedian:       2 << 30,
		BatchInputP90:          16 << 30,
		InteractiveInputMedian: 128 << 20,
		InteractiveInputP90:    1 << 30,

		NumDatasets:     12,
		DatasetMedian:   8 << 30,
		DatasetP90:      48 << 30,
		DatasetZipfSkew: 1.1,

		CoresPerServer: 4,
		ComputeBps:     300e6,
		DiskBps:        500e6,

		MaxConnsPerVertex: 2,
		FlowPacing:        15 * time.Millisecond,
		PacingJitter:      0.2,

		ReadFailBase:       0.002,
		ReadFailStallBoost: 0.03,
		StallRateBps:       100e6,
		MaxReadRetries:     2,

		EvacuationsPerDay: 6,
		IngestPerHour:     4,
		IngestBytes:       2 << 30,
		EgressProbability: 0.3,

		ControlFlowBytes: 2 << 10,
	}
}

// withDefaults fills zero fields from DefaultConfig so partially-specified
// configs behave sensibly.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.JobsPerHour == 0 {
		c.JobsPerHour = d.JobsPerHour
	}
	if c.InteractiveFraction == 0 {
		c.InteractiveFraction = d.InteractiveFraction
	}
	if c.JoinFraction == 0 {
		c.JoinFraction = d.JoinFraction
	}
	if c.WeekendFactor == 0 {
		c.WeekendFactor = d.WeekendFactor
	}
	if c.BatchInputMedian == 0 {
		c.BatchInputMedian = d.BatchInputMedian
	}
	if c.BatchInputP90 == 0 {
		c.BatchInputP90 = d.BatchInputP90
	}
	if c.InteractiveInputMedian == 0 {
		c.InteractiveInputMedian = d.InteractiveInputMedian
	}
	if c.InteractiveInputP90 == 0 {
		c.InteractiveInputP90 = d.InteractiveInputP90
	}
	if c.NumDatasets == 0 {
		c.NumDatasets = d.NumDatasets
	}
	if c.DatasetMedian == 0 {
		c.DatasetMedian = d.DatasetMedian
	}
	if c.DatasetP90 == 0 {
		c.DatasetP90 = d.DatasetP90
	}
	if c.DatasetZipfSkew == 0 {
		c.DatasetZipfSkew = d.DatasetZipfSkew
	}
	if c.CoresPerServer == 0 {
		c.CoresPerServer = d.CoresPerServer
	}
	if c.ComputeBps == 0 {
		c.ComputeBps = d.ComputeBps
	}
	if c.DiskBps == 0 {
		c.DiskBps = d.DiskBps
	}
	if c.MaxConnsPerVertex == 0 {
		c.MaxConnsPerVertex = d.MaxConnsPerVertex
	}
	if c.FlowPacing == 0 {
		c.FlowPacing = d.FlowPacing
	}
	if c.PacingJitter == 0 {
		c.PacingJitter = d.PacingJitter
	}
	if c.ReadFailBase == 0 {
		c.ReadFailBase = d.ReadFailBase
	}
	if c.ReadFailStallBoost == 0 {
		c.ReadFailStallBoost = d.ReadFailStallBoost
	}
	if c.StallRateBps == 0 {
		c.StallRateBps = d.StallRateBps
	}
	if c.MaxReadRetries == 0 {
		c.MaxReadRetries = d.MaxReadRetries
	}
	if c.IngestBytes == 0 {
		c.IngestBytes = d.IngestBytes
	}
	if c.ControlFlowBytes == 0 {
		c.ControlFlowBytes = d.ControlFlowBytes
	}
	return c
}
