package sched

import (
	"testing"
	"time"

	"dctraffic/internal/cosmos"
	"dctraffic/internal/eventlog"
	"dctraffic/internal/netsim"
	"dctraffic/internal/scope"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// ablationRig runs a fixed workload under a mutated config and reports
// read locality and total fabric bytes.
func ablationRig(t *testing.T, seed uint64, mutate func(*Config)) (nearFrac float64, fabricGB float64) {
	t.Helper()
	top := topology.MustNew(topology.SmallConfig())
	net := netsim.New(top, netsim.Options{})
	log := &eventlog.Log{}
	store := cosmos.NewStore(top, cosmos.Config{ReplicationFactor: 3, ExtentBytes: 64 << 20}, stats.NewRNG(seed).Fork("store"))
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.NumDatasets = 4
	cfg.DatasetMedian = 1 << 30
	cfg.DatasetP90 = 4 << 30
	cfg.BatchInputMedian = 512 << 20
	cfg.BatchInputP90 = 2 << 30
	mutate(&cfg)
	cl := NewCluster(net, store, log, cfg)
	cl.Start(20 * time.Minute)
	net.Run(40 * time.Minute)
	l, rk, v, rm := cl.ReadLocality()
	total := l + rk + v + rm
	if total == 0 {
		t.Fatal("no reads at all")
	}
	return float64(l+rk+v) / float64(total), net.TotalBytes() / 1e9
}

func TestAblationRandomPlacementDestroysLocality(t *testing.T) {
	nearNormal, bytesNormal := ablationRig(t, 21, func(*Config) {})
	nearRandom, bytesRandom := ablationRig(t, 21, func(c *Config) { c.RandomPlacement = true })
	if nearRandom >= nearNormal {
		t.Fatalf("random placement should reduce near reads: %v vs %v", nearRandom, nearNormal)
	}
	// Losing locality turns local disk reads into network transfers, so
	// fabric traffic must grow substantially.
	if bytesRandom < bytesNormal*1.2 {
		t.Fatalf("random placement fabric bytes %vGB vs %vGB — expected a clear increase",
			bytesRandom, bytesNormal)
	}
}

func TestAblationConnectionCap(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	net := netsim.New(top, netsim.Options{})
	log := &eventlog.Log{}
	store := cosmos.NewStore(top, cosmos.Config{ReplicationFactor: 3, ExtentBytes: 64 << 20}, stats.NewRNG(31))
	cfg := DefaultConfig()
	cfg.Seed = 31
	cfg.NumDatasets = 2
	cfg.DatasetMedian = 2 << 30
	cfg.DatasetP90 = 4 << 30
	cfg.MaxConnsPerVertex = 32
	cl := NewCluster(net, store, log, cfg)
	spec := testShuffleHeavySpec()
	if _, err := cl.Submit(spec); err != nil {
		t.Fatal(err)
	}
	net.Run(2 * time.Hour)
	// With the cap lifted, vertices fan in much wider than 2 — the incast
	// precondition the production default suppresses.
	if got := cl.MaxConcurrentPulls(); got <= 2 {
		t.Fatalf("uncapped vertex peaked at %d conns; ablation had no effect", got)
	}
}

func TestQuantizedPacingCreatesModes(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	net := netsim.New(top, netsim.Options{})
	log := &eventlog.Log{}
	store := cosmos.NewStore(top, cosmos.Config{ReplicationFactor: 3, ExtentBytes: 64 << 20}, stats.NewRNG(41))
	cfg := DefaultConfig()
	cfg.Seed = 41
	cfg.NumDatasets = 2
	cfg.DatasetMedian = 1 << 30
	cfg.DatasetP90 = 2 << 30
	cl := NewCluster(net, store, log, cfg)
	// Record shuffle flow starts per destination server.
	starts := map[topology.ServerID][]netsim.Time{}
	net.AddObserver(obsFunc(func(f *netsim.Flow) {
		if f.Tag.Kind == netsim.KindShuffle {
			starts[f.Dst] = append(starts[f.Dst], f.Start)
		}
	}))
	if _, err := cl.Submit(testShuffleHeavySpec()); err != nil {
		t.Fatal(err)
	}
	net.Run(2 * time.Hour)
	// Gaps between successive shuffle pulls at a vertex must be multiples
	// of the 15 ms pacing quantum (modulo the quantization within a tick).
	quantum := cfg.FlowPacing
	onTick, total := 0, 0
	for _, ts := range starts {
		for i := 1; i < len(ts); i++ {
			gap := ts[i] - ts[i-1]
			if gap <= 0 {
				continue
			}
			total++
			rem := gap % quantum
			if rem < time.Millisecond || quantum-rem < time.Millisecond {
				onTick++
			}
		}
	}
	if total == 0 {
		t.Fatal("no shuffle gaps observed")
	}
	if frac := float64(onTick) / float64(total); frac < 0.5 {
		t.Fatalf("only %.2f of pull gaps fall on pacing ticks", frac)
	}
}

// obsFunc adapts a function to netsim.Observer.
type obsFunc func(*netsim.Flow)

func (f obsFunc) FlowStarted(fl *netsim.Flow) { f(fl) }
func (obsFunc) FlowEnded(*netsim.Flow)        {}

// testShuffleHeavySpec is a wide aggregate over a sizable input.
func testShuffleHeavySpec() *scope.JobSpec {
	return scope.FilterAggregateJob("shuffle-heavy", "dataset-00", 1<<30, 1.0, 8)
}

func TestKilledJobCancelsFlows(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	net := netsim.New(top, netsim.Options{})
	log := &eventlog.Log{}
	store := cosmos.NewStore(top, cosmos.Config{ReplicationFactor: 3, ExtentBytes: 64 << 20}, stats.NewRNG(51))
	cfg := DefaultConfig()
	cfg.Seed = 51
	cfg.NumDatasets = 1
	cfg.DatasetMedian = 512 << 20
	cfg.DatasetP90 = 1 << 30
	cl := NewCluster(net, store, log, cfg)
	canceled := 0
	net.AddObserver(obsFunc(func(*netsim.Flow) {}))
	j, err := cl.Submit(scope.FilterAggregateJob("victim", "dataset-00", 256<<20, 1.0, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Kill the job shortly after its extract reads start (the 256 MB job
	// finishes within ~2 simulated seconds, so kill very early).
	net.After(500*time.Millisecond, func() {
		if j.Done() {
			t.Fatal("job finished before the kill; tighten the timing")
		}
		cl.killJob(j, "operator abort")
		// Any of the job's flows still active would be a reaping bug.
		n := net.CancelWhere(func(f *netsim.Flow) bool {
			if f.Tag.Job == j.ID {
				t.Logf("survivor: %v", f)
			}
			return f.Tag.Job == j.ID
		})
		if n != 0 {
			t.Errorf("%d flows of the killed job survived the reap", n)
		}
		canceled++
	})
	net.Run(time.Hour)
	if canceled != 1 || !j.Killed {
		t.Fatal("kill path did not run")
	}
	// All cores eventually free (no leaked vertices).
	for s, busy := range cl.coresBusy {
		if busy != 0 {
			t.Fatalf("server %d leaks %d cores after kill", s, busy)
		}
	}
}

func TestPipelineJobsOptIn(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	net := netsim.New(top, netsim.Options{})
	log := &eventlog.Log{}
	store := cosmos.NewStore(top, cosmos.Config{ReplicationFactor: 3, ExtentBytes: 64 << 20}, stats.NewRNG(61))
	cfg := DefaultConfig()
	cfg.Seed = 61
	cfg.NumDatasets = 2
	cfg.DatasetMedian = 1 << 30
	cfg.DatasetP90 = 2 << 30
	cfg.PipelineFraction = 1.0 // every non-interactive, non-join job is a pipeline
	cfg.InteractiveFraction = 0.01
	cfg.JoinFraction = 0.01
	cl := NewCluster(net, store, log, cfg)
	cl.Start(10 * time.Minute)
	net.Run(time.Hour)
	found := false
	for _, j := range cl.Jobs() {
		if len(j.WF.Phases) >= 6 { // extract + >=2 rounds + output
			found = true
			if !j.Done() {
				t.Fatalf("pipeline job %d did not finish", j.ID)
			}
		}
	}
	if !found {
		t.Fatal("no multi-round pipeline jobs ran")
	}
}
