package sched

import (
	"fmt"

	"dctraffic/internal/cosmos"
	"dctraffic/internal/eventlog"
	"dctraffic/internal/netsim"
	"dctraffic/internal/scope"
	"dctraffic/internal/topology"
)

// vertexLoc records where a completed vertex left its output.
type vertexLoc struct {
	Server topology.ServerID
	Bytes  int64 // output bytes available at Server
}

// Job is one executing workflow.
type Job struct {
	ID      int
	Spec    *scope.JobSpec
	WF      *scope.Workflow
	Manager topology.ServerID // server running the job manager process

	Submit netsim.Time
	Start  netsim.Time
	End    netsim.Time
	Killed bool

	inputExtents []cosmos.ExtentID
	locs         [][]vertexLoc // per phase: completed vertex output locations
	outstanding  []int         // per phase: vertices not yet finished
	started      []bool        // per phase
	completed    []bool        // per phase
	finished     bool
}

// Done reports whether the job finished (completed or killed).
func (j *Job) Done() bool { return j.finished }

// Duration returns the job's wall-clock time (0 if still running).
func (j *Job) Duration() netsim.Time {
	if !j.finished {
		return 0
	}
	return j.End - j.Submit
}

// Submit compiles and admits a job now. The job's extract vertices read a
// contiguous slice of the named dataset sized to the spec's InputBytes.
func (c *Cluster) Submit(spec *scope.JobSpec) (*Job, error) {
	ds := c.store.Dataset(spec.Input)
	if ds == nil {
		return nil, fmt.Errorf("sched: job %q reads unknown dataset %q", spec.Name, spec.Input)
	}
	extentBytes := c.store.Config().ExtentBytes
	want := int((spec.InputBytes + extentBytes - 1) / extentBytes)
	if want < 1 {
		want = 1
	}
	if want > len(ds.Extents) {
		want = len(ds.Extents)
	}
	start := 0
	if len(ds.Extents) > want {
		start = c.rng.IntN(len(ds.Extents) - want + 1)
	}
	chosen := ds.Extents[start : start+want]
	var total int64
	for _, id := range chosen {
		total += c.store.Extent(id).Bytes
	}
	spec.InputBytes = total
	spec.ExtentBytes = extentBytes
	wf, err := scope.Compile(spec)
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:           c.nextJobID,
		Spec:         spec,
		WF:           wf,
		Manager:      topology.ServerID(c.rng.IntN(c.top.NumServers())),
		Submit:       c.net.Now(),
		Start:        c.net.Now(),
		inputExtents: chosen,
		locs:         make([][]vertexLoc, len(wf.Phases)),
		outstanding:  make([]int, len(wf.Phases)),
		started:      make([]bool, len(wf.Phases)),
		completed:    make([]bool, len(wf.Phases)),
	}
	c.nextJobID++
	for i, p := range wf.Phases {
		j.outstanding[i] = len(p.Vertices)
		j.locs[i] = make([]vertexLoc, 0, len(p.Vertices))
	}
	c.jobs = append(c.jobs, j)
	c.metJobsSubmitted.Inc()
	c.log.Append(eventlog.Record{Time: c.net.Now(), Type: eventlog.JobSubmitted, Job: j.ID, Name: spec.Name})
	c.log.Append(eventlog.Record{Time: c.net.Now(), Type: eventlog.JobStarted, Job: j.ID})
	for i, p := range wf.Phases {
		if len(p.Deps) == 0 {
			c.startPhase(j, i)
		}
	}
	return j, nil
}

// startPhase launches every vertex of phase p.
func (c *Cluster) startPhase(j *Job, p int) {
	if j.started[p] || j.Killed {
		return
	}
	j.started[p] = true
	ph := j.WF.Phases[p]
	c.metPhasesStarted.Inc()
	c.metVertexFanout.Observe(float64(len(ph.Vertices)))
	c.metVerticesStarted.Add(int64(len(ph.Vertices)))
	c.log.Append(eventlog.Record{Time: c.net.Now(), Type: eventlog.PhaseStarted, Job: j.ID, Phase: p, Name: ph.Type.String()})
	switch ph.Type {
	case scope.Extract:
		for vi := range ph.Vertices {
			c.startExtractVertex(j, p, vi)
		}
	case scope.Partition:
		// Pipelined and co-located with its dependency: the transform is
		// local, so the phase completes immediately, inheriting the dep's
		// output locations scaled to the partition's volumes.
		c.completePartition(j, p)
	case scope.Aggregate, scope.Combine:
		for vi := range ph.Vertices {
			c.startShuffleVertex(j, p, vi)
		}
	case scope.Output:
		for vi := range ph.Vertices {
			c.startOutputVertex(j, p, vi)
		}
	}
}

// completePartition materializes a pipelined partition phase in place.
func (c *Cluster) completePartition(j *Job, p int) {
	ph := j.WF.Phases[p]
	depLocs := c.upstreamLocs(j, ph)
	for vi, v := range ph.Vertices {
		server := j.Manager
		if len(depLocs) > 0 {
			server = depLocs[vi%len(depLocs)].Server
		}
		j.locs[p] = append(j.locs[p], vertexLoc{Server: server, Bytes: v.OutputBytes})
		j.outstanding[p]--
	}
	c.phaseMaybeComplete(j, p)
}

// upstreamLocs concatenates the output locations of a phase's deps.
func (c *Cluster) upstreamLocs(j *Job, ph *scope.Phase) []vertexLoc {
	var out []vertexLoc
	for _, d := range ph.Deps {
		out = append(out, j.locs[d.Index]...)
	}
	return out
}

// startExtractVertex places and runs one extract vertex. Placement
// prefers a replica holder with a free core (local read); otherwise the
// primary's rack, VLAN, then anywhere — generating the occasional remote
// extract reads the paper observed on hot machines.
func (c *Cluster) startExtractVertex(j *Job, p, vi int) {
	ph := j.WF.Phases[p]
	v := ph.Vertices[vi]
	ext := c.store.Extent(j.inputExtents[vi%len(j.inputExtents)])

	place := func() bool {
		if j.Killed {
			// Job died while queued; drop the vertex.
			c.vertexAbandoned(j, p)
			return true
		}
		if !c.cfg.RandomPlacement {
			// Tier 1: replica holders (local read).
			for _, rep := range ext.Replicas {
				if c.tryAcquireCore(rep) {
					c.runExtract(j, p, vi, v, ext, rep)
					return true
				}
			}
		}
		// Tier 2+: near the primary, then anywhere (remote read); the
		// ablation skips straight to "anywhere".
		var s topology.ServerID
		if c.cfg.RandomPlacement {
			s = c.freeServer()
		} else {
			primary := ext.Replicas[0]
			s = c.freeServer(c.rackTier(primary), c.vlanTier(primary))
		}
		if s < 0 {
			return false
		}
		if !c.tryAcquireCore(s) {
			return false
		}
		c.runExtract(j, p, vi, v, ext, s)
		return true
	}
	if !place() {
		c.enqueueWaiting(place)
	}
}

// runExtract performs the read (+ possible retries) and compute of an
// extract vertex on server s, which already holds a core.
func (c *Cluster) runExtract(j *Job, p, vi int, v *scope.Vertex, ext *cosmos.Extent, s topology.ServerID) {
	began := c.net.Now()
	c.log.Append(eventlog.Record{Time: began, Type: eventlog.VertexStarted, Job: j.ID, Phase: p, Vertex: vi, Server: s})
	c.controlFlow(j.Manager, s, j)

	finish := func() {
		c.computeThenFinish(j, p, vi, v, s, began)
	}
	c.readInput(j, p, vi, s, ext, v.InputBytes, netsim.KindExtractRead, c.cfg.MaxReadRetries, finish)
}

// readInput performs one input read of bytes from the best replica of ext
// onto server s, retrying on failure; exhausting retries kills the job.
func (c *Cluster) readInput(j *Job, p, vi int, s topology.ServerID, ext *cosmos.Extent, bytes int64, kind netsim.FlowKind, retries int, finish func()) {
	src, ok := c.store.PickReplica(ext, s)
	if !ok {
		c.killJob(j, "input extent lost")
		c.releaseCore(s)
		c.vertexAbandoned(j, p)
		return
	}
	c.transferRead(j, p, vi, src, s, bytes, kind, retries, func() { finish() }, func() {
		c.releaseCore(s)
		c.vertexAbandoned(j, p)
	})
}

// transferRead moves bytes from src to dst as a read attempt, retrying on
// sampled failure; onFail runs after the job is killed.
func (c *Cluster) transferRead(j *Job, p, vi int, src, dst topology.ServerID, bytes int64, kind netsim.FlowKind, retries int, onOK func(), onFail func()) {
	if j.Killed {
		// The job died while this read was queued or backing off.
		onFail()
		return
	}
	c.noteRead(src, dst)
	start := c.net.Now()
	if src == dst {
		// Local disk read.
		dur := netsim.Time(float64(bytes) / c.cfg.DiskBps * 1e9)
		c.net.After(dur, func() {
			failed := c.rng.Bool(c.cfg.ReadFailBase)
			c.log.AppendRead(eventlog.ReadAttempt{
				Job: j.ID, Phase: p, Vertex: vi, Src: src, Dst: dst, Flow: -1,
				Start: start, End: c.net.Now(), Failed: failed,
			})
			if !failed {
				onOK()
				return
			}
			c.retryOrKill(j, p, vi, src, dst, bytes, kind, retries, onOK, onFail)
		})
		return
	}
	tag := netsim.FlowTag{Job: j.ID, Phase: p, Vertex: vi, Kind: kind}
	c.net.StartFlow(src, dst, bytes, tag, func(f *netsim.Flow) {
		if f.Canceled {
			// Job killed elsewhere; unwind this vertex's resources.
			onFail()
			return
		}
		failed := c.sampleReadFailure(f)
		c.log.AppendRead(eventlog.ReadAttempt{
			Job: j.ID, Phase: p, Vertex: vi, Src: src, Dst: dst, Flow: f.ID,
			Start: f.Start, End: f.End, Failed: failed,
		})
		if !failed {
			onOK()
			return
		}
		c.retryOrKill(j, p, vi, src, dst, bytes, kind, retries, onOK, onFail)
	})
}

func (c *Cluster) retryOrKill(j *Job, p, vi int, src, dst topology.ServerID, bytes int64, kind netsim.FlowKind, retries int, onOK func(), onFail func()) {
	if retries > 0 && !j.Killed {
		c.net.After(c.pacingGap()*4, func() {
			c.transferRead(j, p, vi, src, dst, bytes, kind, retries-1, onOK, onFail)
		})
		return
	}
	c.killJob(j, "unable to read input")
	onFail()
}

// sampleReadFailure decides whether a completed network read "failed":
// a baseline probability, boosted when the flow's achieved rate indicates
// it was stuck behind congestion.
func (c *Cluster) sampleReadFailure(f *netsim.Flow) bool {
	p := c.cfg.ReadFailBase
	dur := f.End - f.Start
	if dur > 0 && f.Bytes > 0 {
		rate := float64(f.Bytes) * 8 / dur.Seconds()
		if rate < c.cfg.StallRateBps {
			p += c.cfg.ReadFailStallBoost * (1 - rate/c.cfg.StallRateBps)
		}
	}
	return c.rng.Bool(p)
}

// killJob marks a job failed; in-flight vertices drain but no new phases
// start.
func (c *Cluster) killJob(j *Job, reason string) {
	if j.Killed || j.finished {
		return
	}
	j.Killed = true
	j.finished = true
	j.End = c.net.Now()
	c.metJobsKilled.Inc()
	c.log.Append(eventlog.Record{Time: c.net.Now(), Type: eventlog.JobKilled, Job: j.ID, Name: reason})
	// Reap the dead job's in-flight transfers; their callbacks observe
	// Canceled and unwind vertex resources.
	c.net.CancelWhere(func(f *netsim.Flow) bool { return f.Tag.Job == j.ID })
}

// computeThenFinish burns compute time proportional to input volume, then
// finishes the vertex.
func (c *Cluster) computeThenFinish(j *Job, p, vi int, v *scope.Vertex, s topology.ServerID, began netsim.Time) {
	jitter := 0.7 + 0.6*c.rng.Float64()
	dur := netsim.Time(float64(v.InputBytes) / c.cfg.ComputeBps * jitter * 1e9)
	if min := netsim.Time(50e6); dur < min { // 50 ms floor
		dur = min
	}
	c.net.After(dur, func() {
		c.finishVertex(j, p, vi, v, s, began)
	})
}

// finishVertex records output location, emits logs, releases the core and
// advances the phase.
func (c *Cluster) finishVertex(j *Job, p, vi int, v *scope.Vertex, s topology.ServerID, began netsim.Time) {
	now := c.net.Now()
	c.log.Append(eventlog.Record{Time: now, Type: eventlog.VertexCompleted, Job: j.ID, Phase: p, Vertex: vi, Server: s})
	c.log.AppendMembership(eventlog.JobMembership{Job: j.ID, Phase: p, Server: s, Start: began, End: now})
	c.controlFlow(s, j.Manager, j)
	j.locs[p] = append(j.locs[p], vertexLoc{Server: s, Bytes: v.OutputBytes})
	c.releaseCore(s)
	j.outstanding[p]--
	c.phaseMaybeComplete(j, p)
}

// vertexAbandoned accounts for a vertex that will never finish (job
// killed) so bookkeeping still converges.
func (c *Cluster) vertexAbandoned(j *Job, p int) {
	j.outstanding[p]--
	c.phaseMaybeComplete(j, p)
}

// phaseMaybeComplete fires when the last vertex of a phase lands.
func (c *Cluster) phaseMaybeComplete(j *Job, p int) {
	if j.outstanding[p] > 0 || j.completed[p] {
		return
	}
	j.completed[p] = true
	if !j.Killed {
		c.metPhasesCompleted.Inc()
		c.log.Append(eventlog.Record{Time: c.net.Now(), Type: eventlog.PhaseCompleted, Job: j.ID, Phase: p})
	}
	// Start phases whose deps are now all complete.
	for q, ph := range j.WF.Phases {
		if j.started[q] || len(ph.Deps) == 0 {
			continue
		}
		ready := true
		for _, d := range ph.Deps {
			if !j.completed[d.Index] {
				ready = false
				break
			}
		}
		if ready {
			c.startPhase(j, q)
		}
	}
	// Job done?
	if p == len(j.WF.Phases)-1 && !j.Killed {
		c.completeJob(j)
	}
}

// completeJob logs completion and possibly streams results out to an
// external host.
func (c *Cluster) completeJob(j *Job) {
	if j.finished {
		return
	}
	j.finished = true
	j.End = c.net.Now()
	c.metJobsCompleted.Inc()
	c.log.Append(eventlog.Record{Time: j.End, Type: eventlog.JobCompleted, Job: j.ID})
	if c.top.NumHosts() > c.top.NumServers() && c.rng.Bool(c.cfg.EgressProbability) {
		ext := topology.ServerID(c.top.NumServers() + c.rng.IntN(c.top.NumHosts()-c.top.NumServers()))
		extentBytes := c.store.Config().ExtentBytes
		for _, loc := range j.locs[len(j.WF.Phases)-1] {
			// Results stream out one extent-sized chunk per flow,
			// sequentially (the puller reads the stored extents in order).
			loc := loc
			var pullNext func(remaining int64)
			pullNext = func(remaining int64) {
				if remaining <= 0 {
					return
				}
				sz := extentBytes
				if remaining < sz {
					sz = remaining
				}
				c.net.StartFlow(loc.Server, ext, sz, netsim.FlowTag{Job: j.ID, Kind: netsim.KindEgress}, func(f *netsim.Flow) {
					if !f.Canceled {
						pullNext(remaining - sz)
					}
				})
			}
			pullNext(loc.Bytes)
		}
	}
}

// controlFlow sends a small job-manager control message.
func (c *Cluster) controlFlow(src, dst topology.ServerID, j *Job) {
	if src == dst || c.cfg.ControlFlowBytes <= 0 {
		return
	}
	c.net.StartFlow(src, dst, c.cfg.ControlFlowBytes, netsim.FlowTag{Job: j.ID, Kind: netsim.KindControl}, nil)
}

// --- shuffle (aggregate / combine) vertices ---------------------------

// startShuffleVertex places an aggregate or combine vertex near its input
// data and pulls its bucket from every upstream vertex — the
// scatter-gather pattern — with a bounded connection count and stop-and-go
// pacing.
func (c *Cluster) startShuffleVertex(j *Job, p, vi int) {
	ph := j.WF.Phases[p]
	v := ph.Vertices[vi]
	ups := c.upstreamLocs(j, ph)

	place := func() bool {
		if j.Killed {
			c.vertexAbandoned(j, p)
			return true
		}
		s := c.placeNearData(ups)
		if s < 0 {
			return false
		}
		if !c.tryAcquireCore(s) {
			return false
		}
		c.runShuffle(j, p, vi, v, s, ups)
		return true
	}
	if !place() {
		c.enqueueWaiting(place)
	}
}

// placeNearData picks a free-core server preferring the upstream servers
// themselves, then their racks, then their VLANs (work-seeks-bandwidth).
// Under the RandomPlacement ablation it picks any free-core server.
func (c *Cluster) placeNearData(ups []vertexLoc) topology.ServerID {
	if c.cfg.RandomPlacement {
		return c.freeServer()
	}
	var tier1 []topology.ServerID
	rackSeen := map[topology.RackID]bool{}
	var tier2 []topology.ServerID
	vlanSeen := map[int]bool{}
	var tier3 []topology.ServerID
	for _, u := range ups {
		tier1 = append(tier1, u.Server)
		if r := c.top.Rack(u.Server); r >= 0 && !rackSeen[r] {
			rackSeen[r] = true
			tier2 = append(tier2, c.top.RackServers(r)...)
		}
		if vl := c.top.VLAN(u.Server); vl >= 0 && !vlanSeen[vl] {
			vlanSeen[vl] = true
			tier3 = append(tier3, c.vlanTier(u.Server)...)
		}
	}
	return c.freeServer(tier1, tier2, tier3)
}

// runShuffle executes the pulls and compute of a shuffle vertex on s.
func (c *Cluster) runShuffle(j *Job, p, vi int, v *scope.Vertex, s topology.ServerID, ups []vertexLoc) {
	began := c.net.Now()
	c.log.Append(eventlog.Record{Time: began, Type: eventlog.VertexStarted, Job: j.ID, Phase: p, Vertex: vi, Server: s})
	c.controlFlow(j.Manager, s, j)

	ph := j.WF.Phases[p]
	// Each upstream vertex contributes this vertex's bucket share.
	share := 0.0
	if ph.InputBytes > 0 {
		share = float64(v.InputBytes) / float64(ph.InputBytes)
	}
	type pull struct {
		src   topology.ServerID
		bytes int64
	}
	var pulls []pull
	for _, u := range ups {
		b := int64(float64(u.Bytes) * share)
		if b <= 0 {
			continue
		}
		pulls = append(pulls, pull{src: u.Server, bytes: b})
	}
	if len(pulls) == 0 {
		c.computeThenFinish(j, p, vi, v, s, began)
		return
	}

	active, next, failedVertex := 0, 0, false
	var pump func()
	onPullDone := func(ok bool) {
		active--
		if !ok {
			failedVertex = true
		}
		if failedVertex {
			if active == 0 {
				// Core already released by the failure path.
				return
			}
			return
		}
		if next >= len(pulls) && active == 0 {
			c.computeThenFinish(j, p, vi, v, s, began)
			return
		}
		// Stop-and-go: the application opens new connections only on the
		// ticks of its internal timer, so the next pull starts at the
		// next pacing-quantum boundary. This clocking is what produces
		// the periodic inter-arrival modes of Figure 11 (~15 ms apart).
		c.net.After(c.delayToNextTick(began), func() {
			if !failedVertex {
				pump()
			}
		})
	}
	pump = func() {
		for active < c.cfg.MaxConnsPerVertex && next < len(pulls) {
			pl := pulls[next]
			next++
			active++
			if active > c.maxConcurrentPulls {
				c.maxConcurrentPulls = active
			}
			c.transferRead(j, p, vi, pl.src, s, pl.bytes, netsim.KindShuffle, c.cfg.MaxReadRetries,
				func() { onPullDone(true) },
				func() {
					// Job killed: release resources exactly once, even if
					// several in-flight pulls fail.
					active--
					if failedVertex {
						return
					}
					failedVertex = true
					c.releaseCore(s)
					c.vertexAbandoned(j, p)
				})
		}
	}
	pump()
}

// --- output vertices ---------------------------------------------------

// startOutputVertex writes a vertex's results to the local block store
// (outputs are always written to the local disk) and kicks off background
// replication.
func (c *Cluster) startOutputVertex(j *Job, p, vi int) {
	ph := j.WF.Phases[p]
	v := ph.Vertices[vi]
	ups := c.upstreamLocs(j, ph)
	server := j.Manager
	if len(ups) > 0 {
		server = ups[vi%len(ups)].Server
	}
	began := c.net.Now()
	c.log.Append(eventlog.Record{Time: began, Type: eventlog.VertexStarted, Job: j.ID, Phase: p, Vertex: vi, Server: server})
	writeBytes := v.OutputBytes
	if writeBytes <= 0 {
		writeBytes = 1
	}
	dur := netsim.Time(float64(writeBytes) / c.cfg.DiskBps * 1e9)
	c.net.After(dur, func() {
		// Chunk the output into extents — the chunking that, per the
		// paper's conclusion, keeps flow sizes bounded (no super-large
		// flows): replication moves one extent per flow.
		extent := c.store.Config().ExtentBytes
		var transfers []cosmos.Transfer
		for remaining := writeBytes; remaining > 0; {
			sz := extent
			if remaining < sz {
				sz = remaining
			}
			_, tr := c.store.CreateExtent(sz, server)
			transfers = append(transfers, tr...)
			remaining -= sz
		}
		c.runTransfers(transfers, netsim.KindReplicate, 2, nil)
		c.finishOutputVertex(j, p, vi, v, server, began)
	})
}

// finishOutputVertex is finishVertex without core accounting (output
// writes are I/O, not core-bound in this model).
func (c *Cluster) finishOutputVertex(j *Job, p, vi int, v *scope.Vertex, s topology.ServerID, began netsim.Time) {
	now := c.net.Now()
	c.log.Append(eventlog.Record{Time: now, Type: eventlog.VertexCompleted, Job: j.ID, Phase: p, Vertex: vi, Server: s})
	c.log.AppendMembership(eventlog.JobMembership{Job: j.ID, Phase: p, Server: s, Start: began, End: now})
	j.locs[p] = append(j.locs[p], vertexLoc{Server: s, Bytes: v.OutputBytes})
	j.outstanding[p]--
	c.phaseMaybeComplete(j, p)
}
