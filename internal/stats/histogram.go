package stats

import (
	"math"
)

// Histogram is a fixed-bin histogram over [Lo, Hi) with equal-width bins.
// Samples outside the range are counted in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Counts    []float64
	Underflow float64
	Overflow  float64
}

// NewHistogram creates a histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, n)}
}

// Add records one observation with weight 1.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// AddWeighted records one observation with weight w.
func (h *Histogram) AddWeighted(x, w float64) {
	switch {
	case x < h.Lo:
		h.Underflow += w
	case x >= h.Hi:
		h.Overflow += w
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard FP edge at x == Hi-ulp
			i--
		}
		h.Counts[i] += w
	}
}

// Total reports the total in-range weight.
func (h *Histogram) Total() float64 {
	t := 0.0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the histogram normalized to a probability density
// (in-range mass integrates to 1) as plot points.
func (h *Histogram) Density() []Point {
	t := h.Total()
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	pts := make([]Point, len(h.Counts))
	for i, c := range h.Counts {
		y := 0.0
		if t > 0 {
			y = c / t / w
		}
		pts[i] = Point{X: h.BinCenter(i), Y: y}
	}
	return pts
}

// Frequencies returns raw bin counts as plot points.
func (h *Histogram) Frequencies() []Point {
	pts := make([]Point, len(h.Counts))
	for i, c := range h.Counts {
		pts[i] = Point{X: h.BinCenter(i), Y: c}
	}
	return pts
}

// LogHistogram bins observations by natural log, i.e. bin i covers
// [exp(Lo + i·w), exp(Lo + (i+1)·w)). The paper's Figure 3 plots the
// distribution of loge(Bytes) of traffic-matrix entries; AddBytes places a
// raw byte count into the right log bin.
type LogHistogram struct {
	H Histogram
}

// NewLogHistogram creates n bins covering loge values in [lo, hi), e.g.
// NewLogHistogram(0, 28, 56) covers byte counts from 1 to e^28.
func NewLogHistogram(lo, hi float64, n int) *LogHistogram {
	return &LogHistogram{H: *NewHistogram(lo, hi, n)}
}

// AddBytes records a raw (positive) value by its natural logarithm.
func (l *LogHistogram) AddBytes(v float64) {
	if v <= 0 {
		l.H.Underflow++
		return
	}
	l.H.Add(math.Log(v))
}

// Density returns the normalized density over loge(value).
func (l *LogHistogram) Density() []Point { return l.H.Density() }

// Frequencies returns raw bin counts over loge(value).
func (l *LogHistogram) Frequencies() []Point { return l.H.Frequencies() }

// Total reports total in-range weight.
func (l *LogHistogram) Total() float64 { return l.H.Total() }
