package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasic(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.P(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.P(1) != 0 || c.Quantile(0.5) != 0 || c.Points(5) != nil {
		t.Fatal("empty CDF should return zeros")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if q := c.Quantile(0.5); q != 30 {
		t.Fatalf("Quantile(0.5) = %v, want 30", q)
	}
	if q := c.Quantile(1); q != 50 {
		t.Fatalf("Quantile(1) = %v, want 50", q)
	}
	if q := c.Quantile(0); q != 10 {
		t.Fatalf("Quantile(0) = %v, want 10", q)
	}
}

func TestCDFWeighted(t *testing.T) {
	c := &CDF{}
	c.AddWeighted(1, 1)
	c.AddWeighted(100, 9)
	if p := c.P(1); math.Abs(p-0.1) > 1e-12 {
		t.Fatalf("weighted P(1) = %v, want 0.1", p)
	}
	if q := c.Quantile(0.5); q != 100 {
		t.Fatalf("weighted Quantile(0.5) = %v, want 100", q)
	}
}

func TestCDFDuplicates(t *testing.T) {
	c := NewCDF([]float64{5, 5, 5, 10})
	if p := c.P(5); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("P(5) with ties = %v, want 0.75", p)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	c := NewCDF([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("last CDF point should be 1, got %v", pts[len(pts)-1].Y)
	}
}

func TestCDFNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&CDF{}).AddWeighted(1, -1)
}

// Property: P is monotone nondecreasing and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = float64(i)
			}
		}
		c := NewCDF(raw)
		if a > b {
			a, b = b, a
		}
		pa, pb := c.P(a), c.P(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile and P are approximately inverse on sample points.
func TestCDFQuantileInverseProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i := range raw {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(i)
			}
			xs[i] = v
		}
		c := NewCDF(xs)
		sort.Float64s(xs)
		for _, q := range []float64{0.1, 0.5, 0.9, 1} {
			x := c.Quantile(q)
			if c.P(x) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTSVRendering(t *testing.T) {
	s := TSV([]Point{{X: 1, Y: 0.5}, {X: 2, Y: 1}})
	if s != "1\t0.5\n2\t1\n" {
		t.Fatalf("TSV = %q", s)
	}
	if TSV(nil) != "" {
		t.Fatal("empty TSV should be empty")
	}
}

func TestCDFPointsRequestMoreThanSamples(t *testing.T) {
	c := NewCDF([]float64{1, 2})
	pts := c.Points(10)
	if len(pts) != 2 {
		t.Fatalf("points = %d, want clamped to 2", len(pts))
	}
}
