package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestEmptySlices(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty-slice statistics should be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("Min/Max of empty slice should be ±Inf")
	}
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("Summarize(nil) should be zero")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if p := Percentile(xs, 50); p != 25 {
		t.Fatalf("P50 = %v, want 25", p)
	}
	if p := Percentile(xs, 0); p != 10 {
		t.Fatalf("P0 = %v, want 10", p)
	}
	if p := Percentile(xs, 100); p != 40 {
		t.Fatalf("P100 = %v, want 40", p)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 || s.P50 != 50 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.P10 != 10 || s.P90 != 90 {
		t.Fatalf("P10/P90 = %v/%v, want 10/90", s.P10, s.P90)
	}
	if s.Total != 5050 {
		t.Fatalf("Total = %v, want 5050", s.Total)
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(i)
			}
			xs[i] = v
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count %v, want 1", i, c)
		}
	}
	h.Add(-1)
	h.Add(10)
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("under/overflow = %v/%v, want 1/1", h.Underflow, h.Overflow)
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %v, want 10", h.Total())
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h := NewHistogram(0, 4, 8)
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		h.Add(r.Float64() * 4)
	}
	w := 0.5 // bin width
	integral := 0.0
	for _, p := range h.Density() {
		integral += p.Y * w
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("density integral %v, want 1", integral)
	}
}

func TestLogHistogram(t *testing.T) {
	l := NewLogHistogram(0, 28, 28)
	l.AddBytes(math.Exp(5.5))
	l.AddBytes(math.Exp(5.2))
	l.AddBytes(math.Exp(20.1))
	l.AddBytes(0) // non-positive goes to underflow
	if l.H.Counts[5] != 2 {
		t.Fatalf("log bin 5 = %v, want 2", l.H.Counts[5])
	}
	if l.H.Counts[20] != 1 {
		t.Fatalf("log bin 20 = %v, want 1", l.H.Counts[20])
	}
	if l.H.Underflow != 1 {
		t.Fatalf("underflow = %v, want 1", l.H.Underflow)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v, want -1", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r := Pearson(xs, flat); r != 0 {
		t.Fatalf("zero-variance correlation = %v, want 0", r)
	}
}

func TestLinFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b := LinFit(xs, ys)
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("LinFit = (%v, %v), want (1, 2)", a, b)
	}
}

func TestLogFit(t *testing.T) {
	// y = 2 + 3 ln x
	var xs, ys []float64
	for _, x := range []float64{1, 2, 4, 8, 16} {
		xs = append(xs, x)
		ys = append(ys, 2+3*math.Log(x))
	}
	a, b := LogFit(xs, ys)
	if math.Abs(a-2) > 1e-9 || math.Abs(b-3) > 1e-9 {
		t.Fatalf("LogFit = (%v, %v), want (2, 3)", a, b)
	}
	// Non-positive x values are skipped, not fatal.
	a2, b2 := LogFit([]float64{-1, 0, 1, 2, 4, 8, 16}, append([]float64{9, 9}, ys...))
	if math.Abs(a2-2) > 1e-9 || math.Abs(b2-3) > 1e-9 {
		t.Fatalf("LogFit with skips = (%v, %v), want (2, 3)", a2, b2)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(a, a); d != 0 {
		t.Fatalf("KS of identical samples = %v, want 0", d)
	}
	b := []float64{100, 200, 300}
	if d := KolmogorovSmirnov(a, b); d != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
	if d := KolmogorovSmirnov(nil, a); d != 1 {
		t.Fatalf("KS with empty sample = %v, want 1", d)
	}
	// Same distribution, different draws: KS small for large n.
	r := NewRNG(30)
	x := make([]float64, 5000)
	y := make([]float64, 5000)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = r.NormFloat64()
	}
	if d := KolmogorovSmirnov(x, y); d > 0.05 {
		t.Fatalf("KS of same-distribution samples = %v, want small", d)
	}
	// Shifted distribution: KS large.
	for i := range y {
		y[i] += 2
	}
	if d := KolmogorovSmirnov(x, y); d < 0.5 {
		t.Fatalf("KS of shifted samples = %v, want large", d)
	}
}
