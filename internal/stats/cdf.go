package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function built from samples.
// The zero value is an empty CDF; Add samples then call any query method
// (queries sort lazily).
type CDF struct {
	xs     []float64
	ws     []float64 // optional weights, parallel to xs; nil means weight 1
	sorted bool
	totalW float64
}

// NewCDF builds a CDF from unweighted samples. The input is copied.
func NewCDF(samples []float64) *CDF {
	c := &CDF{}
	c.Grow(len(samples))
	for _, x := range samples {
		c.Add(x)
	}
	return c
}

// Add appends one unweighted sample.
func (c *CDF) Add(x float64) { c.AddWeighted(x, 1) }

// AddWeighted appends a sample with the given non-negative weight. Weighted
// CDFs express "fraction of bytes" style distributions (e.g. Figure 9's
// bytes-weighted flow-duration CDF).
func (c *CDF) AddWeighted(x, w float64) {
	if w < 0 {
		panic("stats: negative CDF weight")
	}
	c.xs = append(c.xs, x)
	c.ws = append(c.ws, w)
	c.totalW += w
	c.sorted = false
}

// Grow pre-allocates capacity for n additional samples, saving the
// append-regrowth copies when the caller knows the sample count up
// front (e.g. one CDF sample per record in a shard).
func (c *CDF) Grow(n int) {
	if n <= 0 || len(c.xs)+n <= cap(c.xs) {
		return
	}
	xs := make([]float64, len(c.xs), len(c.xs)+n)
	ws := make([]float64, len(c.ws), len(c.ws)+n)
	copy(xs, c.xs)
	copy(ws, c.ws)
	c.xs, c.ws = xs, ws
}

// Merge appends every sample of o, in o's insertion order. It is the
// fixed-order reduction step of shard-and-merge CDF construction: build
// one CDF per shard, then Merge them in shard order on a single
// goroutine, and the combined CDF is a pure function of the shard
// decomposition — independent of how the shards were scheduled.
func (c *CDF) Merge(o *CDF) {
	if o == nil || len(o.xs) == 0 {
		return
	}
	c.xs = append(c.xs, o.xs...)
	c.ws = append(c.ws, o.ws...)
	c.totalW += o.totalW
	c.sorted = false
}

// N reports the number of samples.
func (c *CDF) N() int { return len(c.xs) }

// TotalWeight reports the sum of sample weights, summed in canonical
// order so the result is independent of insertion order.
func (c *CDF) TotalWeight() float64 {
	c.ensureSorted()
	return c.totalW
}

// ensureSorted puts the samples into canonical order — ascending x,
// ties by ascending weight — and recomputes the total weight by summing
// in that order. Queries are therefore pure functions of the weighted
// sample multiset: two CDFs holding the same samples answer identically
// no matter how the samples were sharded, chunked or merge-ordered on
// the way in. (Insertion order only matters before the first query.)
func (c *CDF) ensureSorted() {
	if c.sorted {
		return
	}
	idx := make([]int, len(c.xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if c.xs[idx[a]] != c.xs[idx[b]] {
			return c.xs[idx[a]] < c.xs[idx[b]]
		}
		return c.ws[idx[a]] < c.ws[idx[b]]
	})
	xs := make([]float64, len(c.xs))
	ws := make([]float64, len(c.ws))
	totalW := 0.0
	for i, j := range idx {
		xs[i] = c.xs[j]
		ws[i] = c.ws[j]
		totalW += ws[i]
	}
	c.xs, c.ws = xs, ws
	c.totalW = totalW
	c.sorted = true
}

// P returns the fraction of total weight at or below x: P(X <= x).
// It returns 0 for an empty CDF.
func (c *CDF) P(x float64) float64 {
	if len(c.xs) == 0 || c.totalW == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.xs, x)
	// Advance over ties equal to x (SearchFloat64s gives first >= x).
	w := 0.0
	for j := 0; j < i; j++ {
		w += c.ws[j]
	}
	for j := i; j < len(c.xs) && c.xs[j] == x; j++ {
		w += c.ws[j]
	}
	return w / c.totalW
}

// Quantile returns the smallest sample x with P(X <= x) >= q, for q in
// (0, 1]. Quantile(0) returns the minimum sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	c.ensureSorted()
	if q <= 0 {
		return c.xs[0]
	}
	target := q * c.totalW
	w := 0.0
	for i, x := range c.xs {
		w += c.ws[i]
		if w >= target {
			return x
		}
	}
	return c.xs[len(c.xs)-1]
}

// Points returns up to n (x, P(X<=x)) pairs evenly spaced in rank, suitable
// for plotting. It always includes the first and last samples.
func (c *CDF) Points(n int) []Point {
	if len(c.xs) == 0 || n <= 0 {
		return nil
	}
	c.ensureSorted()
	if n > len(c.xs) {
		n = len(c.xs)
	}
	pts := make([]Point, 0, n)
	cum := make([]float64, len(c.xs))
	w := 0.0
	for i := range c.xs {
		w += c.ws[i]
		cum[i] = w / c.totalW
	}
	for k := 0; k < n; k++ {
		i := k * (len(c.xs) - 1) / max(n-1, 1)
		pts = append(pts, Point{X: c.xs[i], Y: cum[i]})
	}
	return pts
}

// Point is an (x, y) pair of a plotted series.
type Point struct {
	X, Y float64
}

// TSV renders points as tab-separated "x\ty" lines.
func TSV(pts []Point) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%g\t%g\n", p.X, p.Y)
	}
	return b.String()
}
