package stats

import (
	"fmt"
	"math"
)

// Dist is a one-dimensional probability distribution that can be sampled
// with an explicit random stream. Implementations are immutable and safe
// for concurrent use with distinct RNGs.
type Dist interface {
	// Sample draws one variate using r.
	Sample(r *RNG) float64
	// Mean reports the distribution mean (may be +Inf for heavy tails).
	Mean() float64
}

// Exponential is an exponential distribution with the given Rate (λ).
type Exponential struct {
	Rate float64
}

// Sample draws an exponential variate.
func (d Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() / d.Rate }

// Mean reports 1/λ.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

// Lognormal is a lognormal distribution: exp(N(Mu, Sigma²)).
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws a lognormal variate.
func (d Lognormal) Sample(r *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

// Mean reports exp(μ + σ²/2).
func (d Lognormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// LognormalFromMedianP90 constructs a lognormal from its median and 90th
// percentile, a convenient parameterization for workload knobs.
func LognormalFromMedianP90(median, p90 float64) Lognormal {
	if median <= 0 || p90 <= median {
		panic(fmt.Sprintf("stats: invalid lognormal median=%v p90=%v", median, p90))
	}
	// ln X ~ N(ln median, σ²); P90 of N is μ + 1.2815516σ.
	sigma := (math.Log(p90) - math.Log(median)) / 1.2815515655446004
	return Lognormal{Mu: math.Log(median), Sigma: sigma}
}

// Pareto is a (bounded) Pareto distribution with scale Xm, shape Alpha and
// optional upper truncation Max (0 means unbounded).
type Pareto struct {
	Xm    float64
	Alpha float64
	Max   float64
}

// Sample draws a Pareto variate by inversion; when Max > 0 the inverse CDF
// of the truncated distribution is used (no rejection loop).
func (d Pareto) Sample(r *RNG) float64 {
	u := r.Float64()
	if d.Max > 0 {
		// Truncated Pareto inverse CDF.
		hm := math.Pow(d.Xm/d.Max, d.Alpha)
		return d.Xm / math.Pow(1-u*(1-hm), 1/d.Alpha)
	}
	return d.Xm / math.Pow(1-u, 1/d.Alpha)
}

// Mean reports the distribution mean (+Inf when Alpha <= 1 and unbounded).
func (d Pareto) Mean() float64 {
	if d.Max > 0 {
		if d.Alpha == 1 {
			return d.Xm * math.Log(d.Max/d.Xm) / (1 - d.Xm/d.Max)
		}
		a := d.Alpha
		num := math.Pow(d.Xm, a) / (1 - math.Pow(d.Xm/d.Max, a))
		return num * a / (a - 1) * (1/math.Pow(d.Xm, a-1) - 1/math.Pow(d.Max, a-1))
	}
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (d Uniform) Sample(r *RNG) float64 { return d.Lo + r.Float64()*(d.Hi-d.Lo) }

// Mean reports the midpoint.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// Constant is a degenerate distribution that always returns V.
type Constant struct {
	V float64
}

// Sample returns V.
func (d Constant) Sample(*RNG) float64 { return d.V }

// Mean returns V.
func (d Constant) Mean() float64 { return d.V }

// Poisson draws a Poisson-distributed count with the given mean. It uses
// Knuth's method for small means and a normal approximation with continuity
// correction for large means, which is adequate for workload generation.
func Poisson(r *RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf samples an integer in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes nothing; for hot paths use NewZipf.
type Zipf struct {
	n       int
	cum     []float64 // cumulative weights, normalized
	S       float64
	created bool
}

// NewZipf constructs a Zipf sampler over [0,n) with exponent s >= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf needs n > 0")
	}
	z := &Zipf{n: n, S: s, created: true}
	z.cum = make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z
}

// Sample draws a rank in [0,n).
func (z *Zipf) Sample(r *RNG) int {
	if !z.created {
		panic("stats: use NewZipf")
	}
	u := r.Float64()
	// Binary search the cumulative table.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N reports the support size.
func (z *Zipf) N() int { return z.n }
