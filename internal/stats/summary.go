package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanInt returns the arithmetic mean of an integer series, or 0 for an
// empty slice. The sum is exact (integer), so the result does not depend
// on accumulation order.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// percentileSorted computes a percentile over an already-sorted slice.
func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary holds the descriptive statistics reported throughout the paper.
type Summary struct {
	N             int
	Mean, StdDev  float64
	Min, Max      float64
	P10, P50, P90 float64
	P99           float64
	Total         float64
}

// Summarize computes a Summary of xs in one pass over a sorted copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		StdDev: StdDev(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		P10:    percentileSorted(s, 10),
		P50:    percentileSorted(s, 50),
		P90:    percentileSorted(s, 90),
		P99:    percentileSorted(s, 99),
		Total:  Sum(s),
	}
}
