package stats

import "sort"

// DefaultCDFSampleCap is the number of exact samples a StreamCDF holds
// before switching to the bounded quantile sketch. At 16 bytes per
// weighted sample this caps each whole-run CDF near 8 MB regardless of
// trace length; below the cap results are bit-identical to CDF.
const DefaultCDFSampleCap = 1 << 19

// defaultSketchBuffer is the per-level buffer size of QuantileSketch.
// With buffers of B samples the rank-error bound after N insertions of
// uniform weight w is about w·log2(N/B)/2, i.e. a relative rank error
// of roughly log2(N/B)/(2B) — under 0.2% for a week-long paper-scale
// trace.
const defaultSketchBuffer = 4096

type sketchSample struct {
	x, w float64
}

// sortSamples orders samples canonically: ascending x, ties by
// ascending weight. Equal (x, w) pairs are interchangeable bit-for-bit,
// so the unstable sort still yields a deterministic sequence.
func sortSamples(s []sketchSample) {
	sort.Slice(s, func(a, b int) bool {
		if s[a].x != s[b].x {
			return s[a].x < s[b].x
		}
		return s[a].w < s[b].w
	})
}

// QuantileSketch is a deterministic bounded-memory summary of a weighted
// sample stream, in the Manku–Rajagopalan–Lindsay collapse-and-promote
// family. Samples fill a level-0 buffer of b entries; a full buffer is
// sorted and promoted, and when two sorted runs meet at the same level
// they are merged and compacted to half size by keeping alternate
// elements (the kept element absorbs its dropped neighbour's weight).
// Which alternate survives flips per level on each compaction — a
// deterministic stand-in for the random offset of randomized sketches,
// chosen so identical insertion sequences always produce identical
// summaries (the repo-wide determinism contract).
//
// The sketch tracks its own rank-error bound: each compaction can shift
// the rank of any value by at most the largest sample weight in the
// compacted run, accumulated in errW. ErrorBound reports errW as a
// fraction of total weight; observed rank error is typically far below
// it.
type QuantileSketch struct {
	b      int
	buf    []sketchSample   // level-0 insertion buffer, unsorted
	levels [][]sketchSample // levels[i] is a sorted run of ≤ b samples, or nil
	flips  []bool           // per-level alternation state
	n      int64
	errW   float64

	// materialized query cache, rebuilt after mutation
	mat    []sketchSample
	cum    []float64
	totalW float64
}

// NewQuantileSketch returns a sketch with per-level buffers of b
// samples; b <= 0 selects the default.
func NewQuantileSketch(b int) *QuantileSketch {
	if b <= 0 {
		b = defaultSketchBuffer
	}
	if b%2 != 0 {
		b++ // compaction pairs elements; keep runs even-sized
	}
	return &QuantileSketch{b: b}
}

// Add inserts one weighted sample. Negative weights panic, mirroring CDF.
func (s *QuantileSketch) Add(x, w float64) {
	if w < 0 {
		panic("stats: negative sketch weight")
	}
	s.n++
	s.mat = nil
	s.buf = append(s.buf, sketchSample{x, w})
	if len(s.buf) >= s.b {
		s.flush()
	}
}

// flush sorts the level-0 buffer and promotes it with carry.
func (s *QuantileSketch) flush() {
	carry := make([]sketchSample, len(s.buf))
	copy(carry, s.buf)
	s.buf = s.buf[:0]
	sortSamples(carry)
	for l := 0; ; l++ {
		if l >= len(s.levels) {
			s.levels = append(s.levels, nil)
			s.flips = append(s.flips, false)
		}
		if s.levels[l] == nil {
			s.levels[l] = carry
			return
		}
		merged := mergeSorted(s.levels[l], carry)
		s.levels[l] = nil
		maxW := 0.0
		for _, v := range merged {
			if v.w > maxW {
				maxW = v.w
			}
		}
		s.errW += maxW
		carry = compactRun(merged, s.flips[l])
		s.flips[l] = !s.flips[l]
	}
}

// mergeSorted merges two canonically sorted runs, preserving order.
func mergeSorted(a, b []sketchSample) []sketchSample {
	out := make([]sketchSample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		if ai.x < bj.x || (ai.x == bj.x && ai.w <= bj.w) {
			out = append(out, ai)
			i++
		} else {
			out = append(out, bj)
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// compactRun halves a sorted run: each adjacent pair keeps one element
// (the even- or odd-indexed one, by flip) carrying the pair's combined
// weight. An odd trailing element survives unchanged.
func compactRun(run []sketchSample, flip bool) []sketchSample {
	keep := 0
	if flip {
		keep = 1
	}
	out := make([]sketchSample, 0, (len(run)+1)/2)
	i := 0
	for ; i+1 < len(run); i += 2 {
		kept := run[i+keep]
		kept.w = run[i].w + run[i+1].w
		out = append(out, kept)
	}
	if i < len(run) {
		out = append(out, run[i])
	}
	return out
}

// materialize gathers every retained sample in canonical order and
// precomputes the cumulative weights queries walk.
func (s *QuantileSketch) materialize() {
	if s.mat != nil {
		return
	}
	total := len(s.buf)
	for _, lv := range s.levels {
		total += len(lv)
	}
	mat := make([]sketchSample, 0, total)
	mat = append(mat, s.buf...)
	for _, lv := range s.levels {
		mat = append(mat, lv...)
	}
	sortSamples(mat)
	cum := make([]float64, len(mat))
	w := 0.0
	for i, v := range mat {
		w += v.w
		cum[i] = w
	}
	s.mat, s.cum, s.totalW = mat, cum, w
}

// N reports the number of samples inserted (not retained).
func (s *QuantileSketch) N() int64 { return s.n }

// TotalWeight reports the summed weight of retained samples, which
// equals the inserted total up to float association (compaction merges
// pair weights, never drops them).
func (s *QuantileSketch) TotalWeight() float64 {
	s.materialize()
	return s.totalW
}

// ErrorBound reports the accumulated worst-case rank error as a
// fraction of total weight: for any x, the reported P(X <= x) is within
// ErrorBound of the exact fraction.
func (s *QuantileSketch) ErrorBound() float64 {
	s.materialize()
	if s.totalW == 0 {
		return 0
	}
	return s.errW / s.totalW
}

// P returns the estimated fraction of total weight at or below x.
func (s *QuantileSketch) P(x float64) float64 {
	s.materialize()
	if len(s.mat) == 0 || s.totalW == 0 {
		return 0
	}
	// Last retained sample with value <= x.
	i := sort.Search(len(s.mat), func(i int) bool { return s.mat[i].x > x })
	if i == 0 {
		return 0
	}
	return s.cum[i-1] / s.totalW
}

// Quantile returns the smallest retained sample x with estimated
// P(X <= x) >= q, for q in (0, 1]. Quantile(0) returns the minimum.
func (s *QuantileSketch) Quantile(q float64) float64 {
	s.materialize()
	if len(s.mat) == 0 {
		return 0
	}
	if q <= 0 {
		return s.mat[0].x
	}
	target := q * s.totalW
	i := sort.Search(len(s.cum), func(i int) bool { return s.cum[i] >= target })
	if i >= len(s.mat) {
		i = len(s.mat) - 1
	}
	return s.mat[i].x
}

// Points returns up to n (x, P(X<=x)) pairs evenly spaced in retained
// rank, mirroring CDF.Points.
func (s *QuantileSketch) Points(n int) []Point {
	s.materialize()
	if len(s.mat) == 0 || n <= 0 {
		return nil
	}
	if n > len(s.mat) {
		n = len(s.mat)
	}
	pts := make([]Point, 0, n)
	for k := 0; k < n; k++ {
		i := k * (len(s.mat) - 1) / max(n-1, 1)
		pts = append(pts, Point{X: s.mat[i].x, Y: s.cum[i] / s.totalW})
	}
	return pts
}

// StreamCDF is a CDF accumulator for unbounded record streams. Below
// cap samples it is an exact CDF — queries bit-identical to CDF — and
// on the insertion that would exceed cap it converts to a
// QuantileSketch, replaying the exact samples in insertion order so the
// conversion, like everything else here, is a pure function of the
// input sequence. cap <= 0 means never sketch (fully exact).
//
// It intentionally offers no Merge-with-StreamCDF: whole-run streaming
// statistics are accumulated on the coordinator in canonical record
// order, and shard-built exact CDFs merge in via MergeCDF in slot
// order, keeping the three-rule determinism contract intact.
type StreamCDF struct {
	cap   int
	n     int64
	exact *CDF
	sk    *QuantileSketch
}

// NewStreamCDF returns a StreamCDF that sketches beyond cap samples;
// cap < 0 never sketches, cap == 0 selects DefaultCDFSampleCap.
func NewStreamCDF(cap int) *StreamCDF {
	if cap == 0 {
		cap = DefaultCDFSampleCap
	}
	return &StreamCDF{cap: cap, exact: &CDF{}}
}

// Add appends one unweighted sample.
func (c *StreamCDF) Add(x float64) { c.AddWeighted(x, 1) }

// AddWeighted appends a weighted sample, converting to the sketch when
// the exact sample cap is crossed.
func (c *StreamCDF) AddWeighted(x, w float64) {
	c.n++
	if c.sk != nil {
		c.sk.Add(x, w)
		return
	}
	if c.cap > 0 && c.exact.N() >= c.cap {
		c.convert()
		c.sk.Add(x, w)
		return
	}
	c.exact.AddWeighted(x, w)
}

// convert replays the exact samples into a fresh sketch, in insertion
// order, and drops the exact copy.
func (c *StreamCDF) convert() {
	sk := NewQuantileSketch(0)
	for i := range c.exact.xs {
		sk.Add(c.exact.xs[i], c.exact.ws[i])
	}
	c.sk = sk
	c.exact = nil
}

// MergeCDF appends every sample of an exact CDF in its insertion order.
// Used to fold shard-built CDFs into a stream accumulator in slot order.
func (c *StreamCDF) MergeCDF(o *CDF) {
	if o == nil {
		return
	}
	for i := range o.xs {
		c.AddWeighted(o.xs[i], o.ws[i])
	}
}

// N reports the number of samples inserted.
func (c *StreamCDF) N() int64 { return c.n }

// Sketched reports whether the accumulator has crossed into sketch mode.
func (c *StreamCDF) Sketched() bool { return c.sk != nil }

// ErrorBound reports the rank-error bound: 0 while exact, the sketch's
// bound after conversion.
func (c *StreamCDF) ErrorBound() float64 {
	if c.sk == nil {
		return 0
	}
	return c.sk.ErrorBound()
}

// P returns the fraction of total weight at or below x.
func (c *StreamCDF) P(x float64) float64 {
	if c.sk != nil {
		return c.sk.P(x)
	}
	return c.exact.P(x)
}

// Quantile returns the smallest sample x with P(X <= x) >= q.
func (c *StreamCDF) Quantile(q float64) float64 {
	if c.sk != nil {
		return c.sk.Quantile(q)
	}
	return c.exact.Quantile(q)
}

// Points returns up to n plot points, mirroring CDF.Points.
func (c *StreamCDF) Points(n int) []Point {
	if c.sk != nil {
		return c.sk.Points(n)
	}
	return c.exact.Points(n)
}
