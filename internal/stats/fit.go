package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of the paired samples
// xs and ys. It returns 0 when either side has zero variance or the slices
// are shorter than two elements. It panics if the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinFit fits y = a + b·x by ordinary least squares and returns (a, b).
// With fewer than two points it returns (y0, 0).
func LinFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) {
		panic("stats: LinFit length mismatch")
	}
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return ys[0], 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return my, 0
	}
	b = sxy / sxx
	return my - b*mx, b
}

// KolmogorovSmirnov returns the two-sample KS statistic: the maximum
// absolute difference between the empirical CDFs of a and b. Used to
// quantify how closely model-generated distributions match measured ones.
// Returns 1 when either sample is empty (maximal distance by convention).
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	maxD := 0.0
	for i < len(as) && j < len(bs) {
		var x float64
		if as[i] <= bs[j] {
			x = as[i]
		} else {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		d := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// LogFit fits y = a + b·ln(x) by least squares over the points with x > 0
// and returns (a, b). The paper's Figure 13 overlays such a logarithmic
// best-fit on the error-vs-sparsity scatter.
func LogFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) {
		panic("stats: LogFit length mismatch")
	}
	var lx, ly []float64
	for i, x := range xs {
		if x > 0 {
			lx = append(lx, math.Log(x))
			ly = append(ly, ys[i])
		}
	}
	return LinFit(lx, ly)
}
