package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	f1 := parent.Fork("alpha")
	f2 := parent.Fork("beta")
	f1again := NewRNG(7).Fork("alpha")
	if f1.Uint64() != f1again.Uint64() {
		t.Fatal("fork with the same label from the same seed is not reproducible")
	}
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with distinct labels produced the same stream")
	}
}

func TestForkDoesNotConsumeParent(t *testing.T) {
	p1, p2 := NewRNG(9), NewRNG(9)
	p1.Fork("x")
	p1.ForkN("y", 3)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("forking consumed randomness from the parent stream")
	}
}

func TestForkNDistinct(t *testing.T) {
	parent := NewRNG(11)
	seen := map[uint64]int{}
	for i := 0; i < 200; i++ {
		v := parent.ForkN("server", i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("ForkN(%d) and ForkN(%d) produced the same first draw", i, j)
		}
		seen[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 returned %v outside [0,1)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(5)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v, want ~0.3", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestInt64NAndShuffle(t *testing.T) {
	r := NewRNG(21)
	for i := 0; i < 1000; i++ {
		if v := r.Int64N(7); v < 0 || v >= 7 {
			t.Fatalf("Int64N out of range: %d", v)
		}
	}
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, v := range xs {
		if seen[v] {
			t.Fatal("shuffle duplicated an element")
		}
		seen[v] = true
	}
	if r.Seed() == 0 {
		t.Fatal("seed not recorded")
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=0")
		}
	}()
	NewZipf(0, 1)
}
