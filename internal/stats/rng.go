// Package stats provides deterministic randomness, probability
// distributions, and descriptive statistics used throughout dctraffic.
//
// Every stochastic component of the simulator draws from an RNG created by
// NewRNG or forked with (*RNG).Fork, so that a whole simulation run is a
// pure function of its seed. Forked streams are independent: forking uses a
// splitmix64 step over the parent seed plus a label hash, so two streams
// with different labels never collide even when forked from the same parent.
package stats

import (
	"hash/fnv"
	"math/rand/v2"
)

// RNG is a deterministic random number stream.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	src  *rand.Rand
	seed uint64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{
		src:  rand.New(rand.NewPCG(splitmix64(seed), splitmix64(seed^0x9e3779b97f4a7c15))),
		seed: seed,
	}
}

// Seed reports the seed this stream was created with.
func (r *RNG) Seed() uint64 { return r.seed }

// Fork derives an independent stream identified by label. Forking does not
// consume randomness from the parent, so adding a new consumer does not
// perturb existing ones — a property the simulator relies on for
// reproducible experiments when components are added.
func (r *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	return NewRNG(splitmix64(r.seed ^ h.Sum64()))
}

// ForkN derives an independent stream identified by label and an index,
// for per-entity streams (per server, per job, ...).
func (r *RNG) ForkN(label string, n int) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	return NewRNG(splitmix64(r.seed^h.Sum64()) + splitmix64(uint64(n)+0x5bf03635))
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform int64 in [0,n). It panics if n <= 0.
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.src.Float64() < p }

// splitmix64 is the finalizer of the SplitMix64 generator; it is a strong
// 64-bit mixing function used to decorrelate seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
