package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleN(d Dist, n int, seed uint64) []float64 {
	r := NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return xs
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Rate: 0.5}
	xs := sampleN(d, 200000, 1)
	if m := Mean(xs); math.Abs(m-2) > 0.05 {
		t.Fatalf("exponential(0.5) sample mean %v, want ~2", m)
	}
}

func TestLognormalMedian(t *testing.T) {
	d := Lognormal{Mu: math.Log(10), Sigma: 1.3}
	xs := sampleN(d, 200000, 2)
	if med := Median(xs); math.Abs(med-10)/10 > 0.05 {
		t.Fatalf("lognormal median %v, want ~10", med)
	}
}

func TestLognormalFromMedianP90(t *testing.T) {
	d := LognormalFromMedianP90(100, 1000)
	xs := sampleN(d, 400000, 3)
	med, p90 := Median(xs), Percentile(xs, 90)
	if math.Abs(med-100)/100 > 0.05 {
		t.Fatalf("median %v, want ~100", med)
	}
	if math.Abs(p90-1000)/1000 > 0.08 {
		t.Fatalf("p90 %v, want ~1000", p90)
	}
}

func TestLognormalFromMedianP90Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p90 <= median")
		}
	}()
	LognormalFromMedianP90(10, 5)
}

func TestParetoSupport(t *testing.T) {
	d := Pareto{Xm: 4, Alpha: 1.2, Max: 1e6}
	r := NewRNG(4)
	for i := 0; i < 100000; i++ {
		v := d.Sample(r)
		if v < 4 || v > 1e6 {
			t.Fatalf("truncated Pareto sample %v outside [4, 1e6]", v)
		}
	}
}

func TestParetoUnboundedMean(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 2.5}
	xs := sampleN(d, 500000, 5)
	want := d.Mean() // 2.5/1.5
	if m := Mean(xs); math.Abs(m-want)/want > 0.05 {
		t.Fatalf("Pareto sample mean %v, want ~%v", m, want)
	}
	if h := (Pareto{Xm: 1, Alpha: 0.9}); !math.IsInf(h.Mean(), 1) {
		t.Fatal("heavy Pareto mean should be +Inf")
	}
}

func TestParetoIsHeavyTailed(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 1.1, Max: 1e9}
	xs := sampleN(d, 200000, 6)
	// For a heavy tail the max should dominate the median by orders of
	// magnitude.
	if Max(xs) < 1000*Median(xs) {
		t.Fatalf("expected heavy tail: max=%v median=%v", Max(xs), Median(xs))
	}
}

func TestUniformAndConstant(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 6}
	xs := sampleN(u, 100000, 7)
	if m := Mean(xs); math.Abs(m-4) > 0.05 {
		t.Fatalf("uniform mean %v, want ~4", m)
	}
	if Min(xs) < 2 || Max(xs) >= 6 {
		t.Fatalf("uniform out of range: [%v, %v]", Min(xs), Max(xs))
	}
	c := Constant{V: 3.5}
	if c.Sample(NewRNG(1)) != 3.5 || c.Mean() != 3.5 {
		t.Fatal("Constant misbehaved")
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(8)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		n := 60000
		s := 0
		for i := 0; i < n; i++ {
			s += Poisson(r, mean)
		}
		got := float64(s) / float64(n)
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("Poisson(%v) sample mean %v", mean, got)
		}
	}
	if Poisson(r, 0) != 0 || Poisson(r, -1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.0)
	r := NewRNG(9)
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[50]*10 {
		t.Fatalf("Zipf rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	// s=0 must be uniform-ish.
	u := NewZipf(10, 0)
	uc := make([]int, 10)
	for i := 0; i < 100000; i++ {
		uc[u.Sample(r)]++
	}
	for i, c := range uc {
		if math.Abs(float64(c)-10000) > 600 {
			t.Fatalf("Zipf(s=0) bin %d count %d, want ~10000", i, c)
		}
	}
}

func TestZipfSampleInRange(t *testing.T) {
	f := func(seed uint64) bool {
		z := NewZipf(37, 1.2)
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := z.Sample(r)
			if v < 0 || v >= 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: lognormal samples are always positive, Pareto samples >= Xm.
func TestPositivityProperties(t *testing.T) {
	f := func(seed uint64, mu float64, sigmaRaw float64) bool {
		sigma := math.Mod(math.Abs(sigmaRaw), 3)
		mu = math.Mod(mu, 10)
		r := NewRNG(seed)
		ln := Lognormal{Mu: mu, Sigma: sigma}
		pa := Pareto{Xm: 2, Alpha: 1.5}
		for i := 0; i < 50; i++ {
			if ln.Sample(r) <= 0 {
				return false
			}
			if pa.Sample(r) < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
