package stats

import (
	"math"
	"testing"
)

// exactRankP computes the exact weighted P(X <= x) over samples.
func exactRankP(xs, ws []float64, x float64) float64 {
	w, total := 0.0, 0.0
	for i := range xs {
		total += ws[i]
		if xs[i] <= x {
			w += ws[i]
		}
	}
	if total == 0 {
		return 0
	}
	return w / total
}

// TestSketchErrorBound drives the sketch well past many compactions and
// checks that the observed rank error at every probe stays within the
// sketch's self-reported bound, for both uniform and heavily skewed
// weights.
func TestSketchErrorBound(t *testing.T) {
	for _, tc := range []struct {
		name     string
		weighted bool
	}{
		{"uniform", false},
		{"skewed", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := NewRNG(42)
			const n = 200_000
			sk := NewQuantileSketch(512)
			xs := make([]float64, 0, n)
			ws := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				x := rng.ExpFloat64() * 100
				w := 1.0
				if tc.weighted {
					// Heavy-tailed weights: mostly small, occasionally large.
					w = math.Exp(rng.NormFloat64() * 2)
				}
				xs = append(xs, x)
				ws = append(ws, w)
				sk.Add(x, w)
			}
			bound := sk.ErrorBound()
			if bound <= 0 || bound >= 0.5 {
				t.Fatalf("implausible error bound %g", bound)
			}
			worst := 0.0
			for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				x := sk.Quantile(q)
				got := sk.P(x)
				want := exactRankP(xs, ws, x)
				if err := math.Abs(got - want); err > worst {
					worst = err
				}
			}
			if worst > bound {
				t.Fatalf("observed rank error %g exceeds reported bound %g", worst, bound)
			}
			t.Logf("%s: n=%d retained-levels=%d bound=%g worst-observed=%g",
				tc.name, n, len(sk.levels), bound, worst)
		})
	}
}

// TestSketchDeterminism: identical insertion sequences must produce
// identical summaries, including after many compactions.
func TestSketchDeterminism(t *testing.T) {
	build := func() *QuantileSketch {
		rng := NewRNG(7)
		sk := NewQuantileSketch(256)
		for i := 0; i < 50_000; i++ {
			sk.Add(rng.Float64()*1000, 1+rng.Float64())
		}
		return sk
	}
	a, b := build(), build()
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.999, 1} {
		qa, qb := a.Quantile(q), b.Quantile(q)
		if math.Float64bits(qa) != math.Float64bits(qb) {
			t.Fatalf("Quantile(%g) differs: %g vs %g", q, qa, qb)
		}
	}
	pa, pb := a.Points(100), b.Points(100)
	if len(pa) != len(pb) {
		t.Fatalf("Points length differs: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if math.Float64bits(pa[i].X) != math.Float64bits(pb[i].X) ||
			math.Float64bits(pa[i].Y) != math.Float64bits(pb[i].Y) {
			t.Fatalf("Points[%d] differs: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

// TestStreamCDFExactBelowCap: a StreamCDF that never crosses its cap
// must answer bit-identically to a plain CDF over the same insertions.
func TestStreamCDFExactBelowCap(t *testing.T) {
	rng := NewRNG(3)
	sc := NewStreamCDF(10_000)
	ref := &CDF{}
	for i := 0; i < 5_000; i++ {
		x := rng.NormFloat64() * 10
		w := 1 + rng.Float64()
		sc.AddWeighted(x, w)
		ref.AddWeighted(x, w)
	}
	if sc.Sketched() {
		t.Fatal("StreamCDF sketched below cap")
	}
	if sc.ErrorBound() != 0 {
		t.Fatalf("exact StreamCDF reports nonzero error bound %g", sc.ErrorBound())
	}
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		a, b := sc.Quantile(q), ref.Quantile(q)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("Quantile(%g): stream %g != exact %g", q, a, b)
		}
	}
	for _, x := range []float64{-30, -5, 0, 5, 30} {
		a, b := sc.P(x), ref.P(x)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("P(%g): stream %g != exact %g", x, a, b)
		}
	}
	pa, pb := sc.Points(64), ref.Points(64)
	if len(pa) != len(pb) {
		t.Fatalf("Points length: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("Points[%d]: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

// TestStreamCDFSketchConversion: crossing the cap converts to a sketch
// whose answers stay within the reported bound of the exact answers.
func TestStreamCDFSketchConversion(t *testing.T) {
	rng := NewRNG(11)
	sc := NewStreamCDF(1_000)
	var xs, ws []float64
	for i := 0; i < 50_000; i++ {
		x := rng.ExpFloat64()
		xs = append(xs, x)
		ws = append(ws, 1)
		sc.Add(x)
	}
	if !sc.Sketched() {
		t.Fatal("StreamCDF did not sketch past cap")
	}
	if sc.N() != 50_000 {
		t.Fatalf("N = %d, want 50000", sc.N())
	}
	bound := sc.ErrorBound()
	if bound <= 0 {
		t.Fatal("sketched StreamCDF reports zero error bound")
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		x := sc.Quantile(q)
		if err := math.Abs(sc.P(x) - exactRankP(xs, ws, x)); err > bound {
			t.Fatalf("q=%g: rank error %g exceeds bound %g", q, err, bound)
		}
	}
}

// TestStreamCDFNeverSketch: cap < 0 keeps the accumulator exact forever.
func TestStreamCDFNeverSketch(t *testing.T) {
	sc := NewStreamCDF(-1)
	for i := 0; i < DefaultCDFSampleCap/64; i++ {
		sc.Add(float64(i))
	}
	if sc.Sketched() {
		t.Fatal("cap<0 StreamCDF sketched")
	}
}

// TestCDFCanonicalOrder: CDFs holding the same weighted multiset must
// answer identically regardless of insertion order — the property that
// makes chunked streaming merges digest-compatible with sharded ones.
func TestCDFCanonicalOrder(t *testing.T) {
	rng := NewRNG(5)
	n := 1000
	xs := make([]float64, n)
	ws := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ws[i] = 1 + rng.Float64()
	}
	a, b := &CDF{}, &CDF{}
	for i := 0; i < n; i++ {
		a.AddWeighted(xs[i], ws[i])
		b.AddWeighted(xs[n-1-i], ws[n-1-i]) // reversed order
	}
	if math.Float64bits(a.TotalWeight()) != math.Float64bits(b.TotalWeight()) {
		t.Fatalf("TotalWeight differs across insertion orders: %g vs %g",
			a.TotalWeight(), b.TotalWeight())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if math.Float64bits(a.Quantile(q)) != math.Float64bits(b.Quantile(q)) {
			t.Fatalf("Quantile(%g) differs across insertion orders", q)
		}
	}
	pa, pb := a.Points(50), b.Points(50)
	for i := range pa {
		if math.Float64bits(pa[i].Y) != math.Float64bits(pb[i].Y) {
			t.Fatalf("Points[%d].Y differs across insertion orders", i)
		}
	}
}
