package obs

import (
	"fmt"
	"sort"
)

// SnapshotPart is one input to MergeSnapshots: a snapshot whose series
// (and phase) names are prepended with Prefix in the merged output.
// Multiple parts may share a prefix (a run exports separate simulation
// and analysis registries) as long as the prefixed names stay unique.
type SnapshotPart struct {
	Prefix string
	Snap   *Snapshot
}

// MergeSnapshots combines per-run snapshots into one deterministic,
// name-sorted snapshot — the fleet executor's merged metrics file, one
// `runN.`-prefixed section per run plus unprefixed fleet series, all
// consumable by cmd/dcmetrics. Nil snapshots are skipped (a run that
// failed before its snapshot still merges cleanly); a full-name
// collision is an error, so a typo'd prefix cannot silently drop
// series. Phases keep per-part completion order, parts in argument
// order.
func MergeSnapshots(parts ...SnapshotPart) (*Snapshot, error) {
	out := &Snapshot{}
	seen := make(map[string]struct{})
	for _, p := range parts {
		if p.Snap == nil {
			continue
		}
		for _, se := range p.Snap.Series {
			se.Name = p.Prefix + se.Name
			if _, dup := seen[se.Name]; dup {
				return nil, fmt.Errorf("obs: merge: duplicate series %q", se.Name)
			}
			seen[se.Name] = struct{}{}
			out.Series = append(out.Series, se)
		}
		for _, ph := range p.Snap.Phases {
			ph.Name = p.Prefix + ph.Name
			out.Phases = append(out.Phases, ph)
		}
	}
	sort.Slice(out.Series, func(i, j int) bool {
		return out.Series[i].Name < out.Series[j].Name
	})
	return out, nil
}

// AggregateSnapshots folds same-named series across snapshots into one
// cross-run rollup: counters sum, gauges take the max (peaks stay
// peaks), histograms sum element-wise when their bucket bounds match
// (cumulative counts stay cumulative) and degrade to Count+Sum-only
// when they don't. Nil snapshots are skipped; series missing from some
// snapshots aggregate over the ones that have them. The result is
// name-sorted and carries no phases (wall-clock timings don't add
// across concurrent runs). The fleet merged snapshot includes this
// rollup unprefixed, so prefix checks like `dcmetrics -require netsim.`
// keep working against a fleet file.
func AggregateSnapshots(snaps ...*Snapshot) *Snapshot {
	type agg struct{ s Series }
	byName := make(map[string]*agg)
	var order []string
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		for _, se := range sn.Series {
			a, ok := byName[se.Name]
			if !ok {
				cp := se
				cp.Buckets = append([]Bucket(nil), se.Buckets...)
				byName[se.Name] = &agg{s: cp}
				order = append(order, se.Name)
				continue
			}
			switch a.s.Kind {
			case "counter":
				a.s.Value += se.Value
			case "gauge":
				if se.Value > a.s.Value {
					a.s.Value = se.Value
				}
			case "histogram":
				a.s.Count += se.Count
				a.s.Sum += se.Sum
				if bucketsAlign(a.s.Buckets, se.Buckets) {
					for i := range a.s.Buckets {
						a.s.Buckets[i].Count += se.Buckets[i].Count
					}
				} else {
					a.s.Buckets = nil
				}
			default:
				a.s.Value += se.Value
			}
		}
	}
	out := &Snapshot{Series: make([]Series, 0, len(order))}
	sort.Strings(order)
	for _, name := range order {
		out.Series = append(out.Series, byName[name].s)
	}
	return out
}

// bucketsAlign reports whether two cumulative bucket sets share the
// same bounds, making element-wise summation meaningful.
func bucketsAlign(a, b []Bucket) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].LE != b[i].LE {
			return false
		}
	}
	return true
}
