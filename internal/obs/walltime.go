// Wall-clock collectors. This file is why internal/obs is exempted from
// the dctlint walltime analyzer: relating simulated progress to the
// host clock (phase timers, events/sec, heap growth) requires reading
// time.Now, and doing it here — outside every simulated-time path,
// never read back by sim logic — keeps the rest of internal/ provably
// clock-free. Do not import this package's wall-clock helpers from code
// that runs inside the event loop.

package obs

import (
	"runtime"
	"time"
)

// Stopwatch measures elapsed wall-clock time. The zero value is not
// ready; create with NewStopwatch.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch returns a running stopwatch.
func NewStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the wall-clock time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// StartPhase begins a named wall-clock phase timer; the returned stop
// function records the timing into the registry (exported in
// Snapshot.Phases, in completion order). Stop is idempotent. On a nil
// receiver the returned stop is a no-op.
func (r *Registry) StartPhase(name string) (stop func()) {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	done := false
	return func() {
		if done {
			return
		}
		done = true
		r.phases = append(r.phases, PhaseTiming{
			Name:    name,
			Seconds: time.Since(start).Seconds(),
		})
	}
}

// RuntimeSample is one reading of the Go runtime's own telemetry.
type RuntimeSample struct {
	HeapBytes  uint64 // live heap (MemStats.HeapAlloc)
	SysBytes   uint64 // total bytes obtained from the OS
	NumGC      uint32
	Goroutines int
}

// SampleRuntime reads heap and goroutine telemetry, updates the
// registry's runtime.* gauges (including the running heap peak), and
// returns the sample. Safe on a nil receiver (the sample is still
// taken). Call it from batch boundaries, not from inside the event
// loop: ReadMemStats briefly stops the world.
func (r *Registry) SampleRuntime() RuntimeSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSample{
		HeapBytes:  ms.HeapAlloc,
		SysBytes:   ms.Sys,
		NumGC:      ms.NumGC,
		Goroutines: runtime.NumGoroutine(),
	}
	if r == nil {
		return s
	}
	r.Gauge("runtime.heap_bytes").Set(float64(s.HeapBytes))
	r.Gauge("runtime.heap_peak_bytes").SetMax(float64(s.HeapBytes))
	r.Gauge("runtime.sys_bytes").Set(float64(s.SysBytes))
	r.Gauge("runtime.goroutines").Set(float64(s.Goroutines))
	r.Gauge("runtime.gc_cycles").Set(float64(s.NumGC))
	return s
}
