package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("a.b")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("a.g")
	g.Set(3)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("a.h", Pow2Bounds(1, 4))
	h.Observe(2)
	if h.Count() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	r.SampledCounter("a.s", func() float64 { return 1 })
	r.SampledGauge("a.sg", func() float64 { return 1 })
	stop := r.StartPhase("x")
	stop()
	if s := r.Snapshot(); s != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	r.SampleRuntime() // must not panic
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("netsim.events_total")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if again := r.Counter("netsim.events_total"); again != c {
		t.Fatal("re-registration must return the same counter")
	}

	g := r.Gauge("netsim.queue_depth")
	g.Set(7)
	g.SetMax(3) // lower: ignored
	if g.Value() != 7 {
		t.Fatalf("gauge = %v, want 7", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Fatalf("gauge = %v, want 11", g.Value())
	}

	h := r.Histogram("scope.vertex_fanout", []float64{1, 2, 4, 8})
	for _, v := range []float64{1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	s := r.Snapshot()
	se, ok := s.Get("scope.vertex_fanout")
	if !ok || se.Kind != "histogram" {
		t.Fatalf("missing histogram series: %+v", se)
	}
	// Cumulative buckets: ≤1:1, ≤2:2, ≤4:3, ≤8:3 (100 overflows).
	want := []int64{1, 2, 3, 3}
	for i, b := range se.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d count=%d want %d", i, b.Count, want[i])
		}
	}
}

func TestSnapshotSortedAndSampled(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of name order.
	r.Counter("z.last").Inc()
	r.SampledCounter("m.sampled", func() float64 { return 17 })
	r.SampledGauge("m.depth", func() float64 { return 3 })
	r.Counter("a.first").Add(2)
	s := r.Snapshot()
	var names []string
	for _, se := range s.Series {
		names = append(names, se.Name)
	}
	if strings.Join(names, ",") != "a.first,m.depth,m.sampled,z.last" {
		t.Fatalf("snapshot not sorted: %v", names)
	}
	if s.Value("m.sampled") != 17 {
		t.Fatalf("sampled counter = %v", s.Value("m.sampled"))
	}
	if se, _ := s.Get("m.depth"); se.Kind != "gauge" || se.Value != 3 {
		t.Fatalf("sampled gauge = %+v", se)
	}
}

func TestSnapshotJSONRoundTripAndRequire(t *testing.T) {
	r := NewRegistry()
	r.Counter("netsim.events_total").Add(10)
	r.Counter("trace.records_total").Add(3)
	r.Histogram("scope.vertex_fanout", Pow2Bounds(1, 3)).Observe(2)
	stop := r.StartPhase("simulate")
	stop()
	stop() // idempotent
	r.SampleRuntime()
	s := r.Snapshot()

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Value("netsim.events_total") != 10 {
		t.Fatalf("round-trip lost counter: %v", back.Value("netsim.events_total"))
	}
	if len(back.Phases) != 1 || back.Phases[0].Name != "simulate" {
		t.Fatalf("round-trip lost phases: %+v", back.Phases)
	}
	if err := back.Require("netsim.", "trace.", "scope.", "runtime."); err != nil {
		t.Fatal(err)
	}
	if err := back.Require("cosmos."); err == nil {
		t.Fatal("Require must fail on a missing prefix")
	}
	if v := back.Value("runtime.heap_peak_bytes"); v <= 0 {
		t.Fatalf("runtime sampler recorded no heap peak: %v", v)
	}
}

func TestRegistryReuseAccumulates(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.total").Add(2)
	// A second "run" registering the same name keeps accumulating.
	r.Counter("x.total").Add(3)
	if v := r.Snapshot().Value("x.total"); v != 5 {
		t.Fatalf("x.total = %v, want 5", v)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering a name as two kinds must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup")
	r.Gauge("dup")
}
