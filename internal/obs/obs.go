// Package obs is the observability layer of the simulator: a
// zero-dependency metrics registry (counters, gauges, histograms and
// sampled functions) plus the wall-clock collectors in walltime.go
// (phase timers, runtime samples).
//
// Determinism contract: obs is write-only from the simulation's point of
// view. Subsystems feed instruments; nothing in a simulated-time path
// ever reads one back, so attaching or detaching a Registry cannot
// change a run's results (regression-tested in internal/core). Metric
// values are read only at batch boundaries of the driving run loop and
// at Snapshot time. This package is the one internal/ package exempted
// from the dctlint walltime analyzer — it exists precisely to relate
// simulated progress to the host clock — and that exemption is safe
// because of the write-only contract above.
//
// Every instrument is registered under a dotted name
// ("netsim.events_total"); registration order is the caller's fixed
// source order, and Snapshot exports series det-sorted by name, so
// snapshots of same-shaped runs are structurally identical.
//
// A nil *Registry is valid everywhere: registration methods return nil
// instruments and every instrument method is a no-op on a nil receiver,
// so subsystems instrument unconditionally and pay one predictable
// nil-check when observability is off.
package obs

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing int64 instrument.
type Counter struct {
	v int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value float64 instrument.
type Gauge struct {
	v float64
}

// Set records v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// SetMax records v only if it exceeds the current value — a running
// maximum (peak queue depth, peak heap). No-op on a nil receiver.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	if v > g.v {
		g.v = v
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets with upper bounds
// (cumulative on export, Prometheus-style; the implicit +Inf bucket is
// the total count).
type Histogram struct {
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	// Linear scan: bucket counts are small (≤ ~32) and the branch
	// predictor does well on skewed workloads.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Pow2Bounds returns n histogram bounds lo, 2lo, 4lo, … — the standard
// bucketing for fan-outs and component sizes.
func Pow2Bounds(lo float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo
		lo *= 2
	}
	return out
}

// instrument is one registered series.
type instrument struct {
	name        string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	sampled     func() float64
	sampledKind string
}

// Registry holds the instruments of one run. It is not goroutine-safe:
// the simulator is single-goroutine and the registry is driven from the
// same run loop. Create with NewRegistry; a nil *Registry disables
// collection (see the package comment).
type Registry struct {
	byName map[string]*instrument
	order  []*instrument // registration order
	phases []PhaseTiming
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*instrument)}
}

// lookup returns the existing instrument for name, or registers a new
// one built by mk. Re-registering a name returns the existing
// instrument, so a registry can be reused across runs and keep
// accumulating; registering the same name as a different instrument
// kind panics (a wiring bug, not a runtime condition).
func (r *Registry) lookup(name string, mk func() *instrument) *instrument {
	if in, ok := r.byName[name]; ok {
		return in
	}
	in := mk()
	r.byName[name] = in
	r.order = append(r.order, in)
	return in
}

// Counter registers (or fetches) the counter with the given name.
// Returns nil on a nil receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	in := r.lookup(name, func() *instrument {
		return &instrument{name: name, counter: &Counter{}}
	})
	if in.counter == nil {
		panic(fmt.Sprintf("obs: %q already registered as a non-counter", name))
	}
	return in.counter
}

// Gauge registers (or fetches) the gauge with the given name. Returns
// nil on a nil receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	in := r.lookup(name, func() *instrument {
		return &instrument{name: name, gauge: &Gauge{}}
	})
	if in.gauge == nil {
		panic(fmt.Sprintf("obs: %q already registered as a non-gauge", name))
	}
	return in.gauge
}

// Histogram registers (or fetches) the histogram with the given name
// and bucket upper bounds (ascending). Returns nil on a nil receiver.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	in := r.lookup(name, func() *instrument {
		return &instrument{name: name, hist: &Histogram{
			bounds: bounds,
			counts: make([]int64, len(bounds)),
		}}
	})
	if in.hist == nil {
		panic(fmt.Sprintf("obs: %q already registered as a non-histogram", name))
	}
	return in.hist
}

// SampledCounter registers a cumulative series whose value is read by
// calling fn at Snapshot time — the zero-hot-path-cost way to export
// counts a subsystem already maintains natively. No-op on a nil
// receiver.
func (r *Registry) SampledCounter(name string, fn func() float64) {
	r.sampledSeries(name, "counter", fn)
}

// SampledGauge registers an instantaneous series read by calling fn at
// Snapshot time (queue depth, active flows). No-op on a nil receiver.
func (r *Registry) SampledGauge(name string, fn func() float64) {
	r.sampledSeries(name, "gauge", fn)
}

func (r *Registry) sampledSeries(name, kind string, fn func() float64) {
	if r == nil {
		return
	}
	in := r.lookup(name, func() *instrument {
		return &instrument{name: name, sampled: fn, sampledKind: kind}
	})
	if in.sampled == nil {
		panic(fmt.Sprintf("obs: %q already registered as a non-sampled series", name))
	}
	in.sampled = fn // re-registration rebinds to the current subsystem
	in.sampledKind = kind
}

// Snapshot exports every registered series, sorted by name, plus the
// recorded phase timings. Sampled series are evaluated now.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Series: make([]Series, 0, len(r.order)),
		Phases: append([]PhaseTiming(nil), r.phases...),
	}
	for _, in := range r.order {
		se := Series{Name: in.name}
		switch {
		case in.counter != nil:
			se.Kind = "counter"
			se.Value = float64(in.counter.v)
		case in.gauge != nil:
			se.Kind = "gauge"
			se.Value = in.gauge.v
		case in.sampled != nil:
			se.Kind = in.sampledKind
			se.Value = in.sampled()
		case in.hist != nil:
			se.Kind = "histogram"
			se.Count = in.hist.n
			se.Sum = in.hist.sum
			cum := int64(0)
			for i, b := range in.hist.bounds {
				cum += in.hist.counts[i]
				se.Buckets = append(se.Buckets, Bucket{LE: b, Count: cum})
			}
		}
		s.Series = append(s.Series, se)
	}
	sort.Slice(s.Series, func(i, j int) bool { return s.Series[i].Name < s.Series[j].Name })
	return s
}
