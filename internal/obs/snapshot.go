package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Bucket is one cumulative histogram bucket: Count observations were
// ≤ LE.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Series is one exported metric.
type Series struct {
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value holds counter/gauge values; zero for histograms.
	Value float64 `json:"value"`
	// Count, Sum and Buckets are set for histograms only.
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// PhaseTiming is one wall-clock phase measurement.
type PhaseTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Snapshot is the exported state of a Registry: series sorted by name
// plus phase timings in completion order. Series values and ordering
// are deterministic for a given seed; phase Seconds are wall-clock and
// vary run to run.
type Snapshot struct {
	Series []Series      `json:"series"`
	Phases []PhaseTiming `json:"phases,omitempty"`
}

// Get returns the series with the given name.
func (s *Snapshot) Get(name string) (Series, bool) {
	if s == nil {
		return Series{}, false
	}
	for _, se := range s.Series {
		if se.Name == name {
			return se, true
		}
	}
	return Series{}, false
}

// Value returns the value of the named counter/gauge series (0 if
// absent).
func (s *Snapshot) Value(name string) float64 {
	se, _ := s.Get(name)
	return se.Value
}

// Require verifies that for every given prefix at least one series with
// that prefix exists, returning an error naming the first missing one.
// Used by the smoke-metrics check.
func (s *Snapshot) Require(prefixes ...string) error {
	if s == nil {
		return fmt.Errorf("obs: nil snapshot")
	}
	for _, p := range prefixes {
		found := false
		for _, se := range s.Series {
			if strings.HasPrefix(se.Name, p) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("obs: snapshot has no series with prefix %q", p)
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot parses a snapshot previously written with WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return &s, nil
}
