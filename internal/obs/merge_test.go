package obs

import (
	"sort"
	"testing"
)

func snapOf(series ...Series) *Snapshot { return &Snapshot{Series: series} }

func TestMergeSnapshotsPrefixesAndSorts(t *testing.T) {
	a := snapOf(Series{Name: "netsim.events_total", Kind: "counter", Value: 10})
	a.Phases = []PhaseTiming{{Name: "build", Seconds: 0.5}}
	b := snapOf(Series{Name: "analyze.tasks_total", Kind: "counter", Value: 3})
	fleet := snapOf(Series{Name: "fleet.runs_total", Kind: "counter", Value: 2})

	m, err := MergeSnapshots(
		SnapshotPart{Prefix: "", Snap: fleet},
		SnapshotPart{Prefix: "run1.", Snap: b},
		SnapshotPart{Prefix: "run0.", Snap: a},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fleet.runs_total", "run0.netsim.events_total", "run1.analyze.tasks_total"}
	if len(m.Series) != len(want) {
		t.Fatalf("got %d series, want %d", len(m.Series), len(want))
	}
	for i, n := range want {
		if m.Series[i].Name != n {
			t.Fatalf("series[%d] = %q, want %q", i, m.Series[i].Name, n)
		}
	}
	if !sort.SliceIsSorted(m.Series, func(i, j int) bool { return m.Series[i].Name < m.Series[j].Name }) {
		t.Fatal("merged series not name-sorted")
	}
	if len(m.Phases) != 1 || m.Phases[0].Name != "run0.build" {
		t.Fatalf("phases = %+v, want one run0.build", m.Phases)
	}
	if err := m.Require("fleet.", "run0.netsim.", "run1.analyze."); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSnapshotsSkipsNil(t *testing.T) {
	a := snapOf(Series{Name: "x", Kind: "gauge", Value: 1})
	m, err := MergeSnapshots(
		SnapshotPart{Prefix: "run0.", Snap: nil},
		SnapshotPart{Prefix: "run1.", Snap: a},
		SnapshotPart{Prefix: "", Snap: nil},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Series) != 1 || m.Series[0].Name != "run1.x" {
		t.Fatalf("got %+v, want only run1.x", m.Series)
	}
}

func TestMergeSnapshotsCollision(t *testing.T) {
	a := snapOf(Series{Name: "netsim.events_total", Kind: "counter", Value: 1})
	b := snapOf(Series{Name: "netsim.events_total", Kind: "counter", Value: 2})

	if _, err := MergeSnapshots(
		SnapshotPart{Prefix: "run0.", Snap: a},
		SnapshotPart{Prefix: "run0.", Snap: b},
	); err == nil {
		t.Fatal("same prefix + same name: want collision error, got nil")
	}
	// Distinct prefixes over the same names are the normal per-run case.
	if _, err := MergeSnapshots(
		SnapshotPart{Prefix: "run0.", Snap: a},
		SnapshotPart{Prefix: "run1.", Snap: b},
	); err != nil {
		t.Fatalf("distinct prefixes: unexpected error %v", err)
	}
	// A prefix that happens to extend another's name must also collide.
	c := snapOf(Series{Name: "x.y", Kind: "counter", Value: 1})
	d := snapOf(Series{Name: "y", Kind: "counter", Value: 2})
	if _, err := MergeSnapshots(
		SnapshotPart{Prefix: "", Snap: c},
		SnapshotPart{Prefix: "x.", Snap: d},
	); err == nil {
		t.Fatal("prefixed name colliding with literal name: want error, got nil")
	}
}

func TestAggregateSnapshots(t *testing.T) {
	h1 := Series{Name: "h", Kind: "histogram", Count: 2, Sum: 3,
		Buckets: []Bucket{{LE: 1, Count: 1}, {LE: 2, Count: 2}}}
	h2 := Series{Name: "h", Kind: "histogram", Count: 1, Sum: 2,
		Buckets: []Bucket{{LE: 1, Count: 0}, {LE: 2, Count: 1}}}
	a := snapOf(
		Series{Name: "c", Kind: "counter", Value: 5},
		Series{Name: "g", Kind: "gauge", Value: 7},
		h1,
	)
	b := snapOf(
		Series{Name: "c", Kind: "counter", Value: 2},
		Series{Name: "g", Kind: "gauge", Value: 3},
		h2,
		Series{Name: "only_b", Kind: "counter", Value: 1},
	)

	got := AggregateSnapshots(a, nil, b)
	if v := got.Value("c"); v != 7 {
		t.Fatalf("counter c = %v, want 7 (sum)", v)
	}
	if v := got.Value("g"); v != 7 {
		t.Fatalf("gauge g = %v, want 7 (max)", v)
	}
	if v := got.Value("only_b"); v != 1 {
		t.Fatalf("only_b = %v, want 1", v)
	}
	h, ok := got.Get("h")
	if !ok || h.Count != 3 || h.Sum != 5 {
		t.Fatalf("histogram h = %+v, want Count 3 Sum 5", h)
	}
	if len(h.Buckets) != 2 || h.Buckets[0].Count != 1 || h.Buckets[1].Count != 3 {
		t.Fatalf("histogram buckets = %+v, want cumulative [1 3]", h.Buckets)
	}
	if !sort.SliceIsSorted(got.Series, func(i, j int) bool { return got.Series[i].Name < got.Series[j].Name }) {
		t.Fatal("aggregate not name-sorted")
	}
}

func TestAggregateSnapshotsMismatchedBuckets(t *testing.T) {
	a := snapOf(Series{Name: "h", Kind: "histogram", Count: 1, Sum: 1,
		Buckets: []Bucket{{LE: 1, Count: 1}}})
	b := snapOf(Series{Name: "h", Kind: "histogram", Count: 1, Sum: 2,
		Buckets: []Bucket{{LE: 4, Count: 1}}})
	h, ok := AggregateSnapshots(a, b).Get("h")
	if !ok {
		t.Fatal("h missing")
	}
	if h.Count != 2 || h.Sum != 3 {
		t.Fatalf("h = %+v, want Count 2 Sum 3", h)
	}
	if h.Buckets != nil {
		t.Fatalf("mismatched bounds must drop buckets, got %+v", h.Buckets)
	}
}
