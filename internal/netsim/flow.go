package netsim

import (
	"fmt"

	"dctraffic/internal/topology"
)

// FlowID identifies a flow within one simulation run.
type FlowID int64

// FlowKind attributes a flow to the application activity that produced it,
// mirroring the network↔application join of §4.2.
type FlowKind uint8

// Flow kinds, named after the paper's traffic sources.
const (
	KindOther       FlowKind = iota
	KindShuffle              // partition → aggregate data pull (reduce traffic)
	KindExtractRead          // extract vertex reading a non-local block
	KindReplicate            // block-store replica creation
	KindEvacuate             // automated server evacuation
	KindIngest               // external host uploading new data
	KindEgress               // external host pulling results
	KindControl              // job control chatter
)

// String returns the kind name.
func (k FlowKind) String() string {
	switch k {
	case KindShuffle:
		return "shuffle"
	case KindExtractRead:
		return "extract-read"
	case KindReplicate:
		return "replicate"
	case KindEvacuate:
		return "evacuate"
	case KindIngest:
		return "ingest"
	case KindEgress:
		return "egress"
	case KindControl:
		return "control"
	}
	return "other"
}

// FlowTag carries application attribution for a flow: which job, phase and
// vertex caused it. Zero values mean "not attributable".
type FlowTag struct {
	Job    int
	Phase  int
	Vertex int
	Kind   FlowKind
}

// Flow is one fluid transfer between two hosts. Flows are created by
// Network.StartFlow and owned by the network until completion.
type Flow struct {
	ID    FlowID
	Src   topology.ServerID
	Dst   topology.ServerID
	Bytes int64 // total transfer size
	Tag   FlowTag

	// SrcPort and DstPort complete the five-tuple; the simulator assigns
	// an ephemeral source port, so distinct transfers are distinct flows
	// in the §4 sense.
	SrcPort, DstPort uint16

	Start Time
	End   Time // set when done; zero while active

	// Canceled marks a flow aborted before completing (its job was
	// killed); Transferred reports what actually moved.
	Canceled bool

	path      []topology.LinkID // aliases pathBuf; at most MaxPathLen links
	remaining float64           // bytes left
	rate      float64           // bytes/sec under the current allocation
	done      func(*Flow)
	idx       int // index in Network.active, -1 once finished

	// dom is the event domain owning the flow (0 = shared core, r+1 =
	// rack r; see domain.go); domIdx is its position in that domain's
	// flow list, kept current by swap-removal (-1 once retired).
	dom    int32
	domIdx int32

	// pathBuf backs path so flow creation does not allocate a path slice.
	pathBuf [topology.MaxPathLen]topology.LinkID

	// linkIdx[i] is the flow's position in Network.linkFlows[path[i]],
	// kept current by swap-removal so retiring a flow is O(len(path)).
	linkIdx [topology.MaxPathLen]int32

	// mark and frozen are scratch for the incremental max-min solver:
	// mark stamps the component generation that last visited the flow,
	// frozen flags flows already fixed at their bottleneck share.
	mark   uint64
	frozen bool
}

// Active reports whether the flow is still transferring.
func (f *Flow) Active() bool { return f.idx >= 0 }

// Rate returns the current allocated rate in bits per second.
func (f *Flow) Rate() float64 { return f.rate * 8 }

// Remaining returns the bytes not yet transferred.
func (f *Flow) Remaining() float64 { return f.remaining }

// Transferred returns the bytes actually moved so far (equals Bytes for a
// completed flow, less for canceled or active ones).
func (f *Flow) Transferred() float64 { return float64(f.Bytes) - f.remaining }

// Duration returns the flow's lifetime; for active flows it is the time
// since start at the supplied now.
func (f *Flow) Duration(now Time) Time {
	if f.Active() {
		return now - f.Start
	}
	return f.End - f.Start
}

// Path returns the directed links the flow traverses (nil for loopback).
func (f *Flow) Path() []topology.LinkID { return f.path }

// String renders a compact description for logs and tests.
func (f *Flow) String() string {
	return fmt.Sprintf("flow %d %d->%d %dB kind=%s", f.ID, f.Src, f.Dst, f.Bytes, f.Tag.Kind)
}
