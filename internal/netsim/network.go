package netsim

import (
	"math"
	"slices"
	"time"

	"dctraffic/internal/obs"
	"dctraffic/internal/topology"
)

// Options tunes the network simulator. The zero value is usable; see the
// field comments for defaults.
type Options struct {
	// MinRecomputeInterval batches rate recomputation: bandwidth shares
	// are recomputed at most once per interval even under heavy flow
	// churn. Zero recomputes on every arrival and completion (exact
	// fluid model). Large simulations use ~10ms.
	MinRecomputeInterval Time

	// LocalBps is the transfer speed of loopback flows (src == dst),
	// which model local disk reads and never touch the fabric.
	// Default 8 Gbps.
	LocalBps float64

	// StatsBinSize enables per-link byte accounting in bins of this
	// size (the SNMP-like counters used by congestion analysis and
	// tomography). Zero disables binned stats; totals are always kept.
	StatsBinSize Time

	// StatsLinks selects which links are binned. Nil tracks the
	// inter-switch links (the paper's congestion link set) plus all
	// server up/downlinks when the topology is small (<= 512 hosts).
	StatsLinks []topology.LinkID

	// FullRecompute disables the dirty-component optimization and
	// re-solves every flow on every recompute, as the original
	// allocator did. The results are identical (components not sharing
	// links with changed flows cannot change under max-min); the knob
	// exists for validation and A/B timing.
	FullRecompute bool

	// Workers bounds the goroutines the per-rack event-domain engine
	// may use during Run (0 = DefaultWorkers(), capped at the domain
	// count). Results are bit-identical at any worker count.
	Workers int

	// Exec, when non-nil, runs the engine's phase spans on a
	// caller-provided executor instead of goroutines the engine owns —
	// the seam the fleet batch executor uses to share one bounded pool
	// across concurrent Networks. Span closures never block on the
	// executor, so a bounded pool cannot deadlock on them. Results are
	// bit-identical with or without an executor.
	Exec Executor

	// Sequential forces every allocation-step phase to run inline on
	// the event-loop goroutine — the A/B reference path for the
	// parallel engine. Results are identical; the knob exists for
	// validation and timing.
	Sequential bool
}

// Observer receives flow lifecycle notifications. The instrumentation
// layer (internal/trace) implements this to build socket-level logs.
type Observer interface {
	FlowStarted(*Flow)
	FlowEnded(*Flow)
}

// Network simulates fluid flows over a topology. Create with New; drive by
// scheduling workload events on the embedded Sim and calling Run.
//
// Rate allocation is incremental: per-link flow lists are maintained at
// flow start/retire time, and a recompute re-solves only the connected
// components (over link sharing) of flows whose membership changed since
// the last recompute. All solver scratch lives on the Network, so
// steady-state recomputation performs no allocations.
//
// Mutable state is partitioned into per-rack event domains (domain.go)
// so the phases of an allocation step can run concurrently; the event
// loop itself and every merge stay on the Run caller's goroutine.
type Network struct {
	Sim
	top  *topology.Topology
	opts Options

	active   []*Flow
	nextID   FlowID
	nextPort uint16

	linkCapB  []float64 // bytes/sec capacity per link
	linkRateB []float64 // current aggregate bytes/sec per link
	linkBytes []float64 // cumulative bytes per link

	// linkFlows[l] holds the active flows crossing link l, maintained
	// incrementally by StartFlow and retire (swap-removal via
	// Flow.linkIdx). Ordering is arbitrary but deterministic.
	linkFlows [][]*Flow

	// Event domains: doms[0] is the shared core, doms[r+1] is rack r.
	// linkDomain maps each link to its owner; linkActivePos[l] is l's
	// index in its owner's activeLinks (-1 if absent); activeLinkCount
	// sums the per-domain lists.
	doms            []domain
	linkDomain      []int32
	linkActivePos   []int32
	activeLinkCount int

	// Dirty tracking: links whose flow membership changed since the
	// last recompute. seedMark dedupes; seedLinks lists them.
	seedLinks []topology.LinkID
	seedMark  []bool

	// Solver scratch, reused across recomputes (zero-alloc steady state).
	linkAlloc    []float64   // progressive-filling allocation per link
	linkUnfrozen []int32     // unfrozen flows per link
	linkComp     []uint64    // generation stamp: link gathered this solve
	comps        []component // dirty components of the current step
	fullComp     []topology.LinkID
	fullCand     []topology.LinkID
	compGen      uint64

	// pendingLocal holds loopback flows started since the last
	// recompute; they get LocalBps at the next recompute, exactly when
	// the full solver used to assign it.
	pendingLocal []*Flow

	// finished is completeFinished's scratch for the flows retired this
	// window, in the canonical active-scan order their callbacks run in.
	finished []*Flow

	lastAdvance        Time
	lastRecompute      Time
	dirty              bool
	recomputeScheduled bool
	completionGen      uint64

	observers []Observer
	stats     *LinkStats

	totalBytes     float64
	flowsStarted   int64
	flowsCompleted int64
	flowsCanceled  int64

	// Parallel engine state: workersN is the resolved worker budget,
	// eng the pool (nil outside Run or on the sequential path), and the
	// counters feed the netsim.parallel.* series. windowCross counts
	// cross-domain interactions (core-owned flow starts/ends, multi-
	// domain component solves) accumulated toward the current window.
	workersN     int
	eng          *parEngine
	windows      int64
	barrierWaits int64
	windowCross  int64

	// Allocator telemetry (see Instrument). Plain counters cost nothing
	// on the hot path and are exported as sampled series; the histograms
	// are obs handles with a nil-safe Observe.
	recomputesDirty int64
	recomputesFull  int64
	metCompLinks    *obs.Histogram
	metCrossWindow  *obs.Histogram
}

// New builds a network over the topology.
func New(top *topology.Topology, opts Options) *Network {
	if opts.LocalBps <= 0 {
		opts.LocalBps = 8e9
	}
	nl := top.NumLinks()
	n := &Network{
		top:           top,
		opts:          opts,
		linkCapB:      make([]float64, nl),
		linkRateB:     make([]float64, nl),
		linkBytes:     make([]float64, nl),
		linkFlows:     make([][]*Flow, nl),
		seedMark:      make([]bool, nl),
		linkAlloc:     make([]float64, nl),
		linkUnfrozen:  make([]int32, nl),
		linkComp:      make([]uint64, nl),
		linkActivePos: make([]int32, nl),
	}
	for i := range n.linkActivePos {
		n.linkActivePos[i] = -1
	}
	for _, l := range top.Links() {
		n.linkCapB[l.ID] = l.CapacityBps / 8
	}
	n.buildDomains(top)
	n.workersN = opts.Workers
	if n.workersN <= 0 {
		n.workersN = DefaultWorkers()
	}
	if n.workersN > len(n.doms) {
		n.workersN = len(n.doms)
	}
	if opts.StatsBinSize > 0 {
		links := opts.StatsLinks
		if links == nil {
			links = top.InterSwitchLinks()
			if top.NumHosts() <= 512 {
				for s := 0; s < top.NumHosts(); s++ {
					sid := topology.ServerID(s)
					links = append(links, top.ServerUplink(sid), top.ServerDownlink(sid))
				}
			}
		}
		n.stats = newLinkStats(opts.StatsBinSize, nl, links)
	}
	return n
}

// Top returns the topology.
func (n *Network) Top() *topology.Topology { return n.top }

// Instrument registers the simulator's netsim.* series with the
// registry. Counters the simulator maintains natively are exported as
// sampled series (zero hot-path cost); the dirty-component size and
// cross-domain-event histograms get handles with a nil-safe Observe.
// Metrics are write-only from the simulation's perspective — nothing
// here feeds back into event order, RNG draws or rates — so
// instrumenting a run cannot change its results. Safe to call with a
// nil registry.
func (n *Network) Instrument(r *obs.Registry) {
	r.SampledCounter("netsim.events_total", func() float64 { return float64(n.EventsProcessed()) })
	r.SampledGauge("netsim.queue_depth", func() float64 { return float64(n.Pending()) })
	r.SampledGauge("netsim.active_flows", func() float64 { return float64(len(n.active)) })
	r.SampledCounter("netsim.flows_started_total", func() float64 { return float64(n.flowsStarted) })
	r.SampledCounter("netsim.flows_completed_total", func() float64 { return float64(n.flowsCompleted) })
	r.SampledCounter("netsim.flows_canceled_total", func() float64 { return float64(n.flowsCanceled) })
	r.SampledCounter("netsim.bytes_total", func() float64 { return n.totalBytes })
	r.SampledCounter("netsim.recomputes_dirty_total", func() float64 { return float64(n.recomputesDirty) })
	r.SampledCounter("netsim.recomputes_full_total", func() float64 { return float64(n.recomputesFull) })
	n.metCompLinks = r.Histogram("netsim.recompute_component_links", obs.Pow2Bounds(1, 16))
	// Parallel-engine telemetry: the domain count, the resolved worker
	// budget, window advances (allocation steps), barriers the
	// coordinator waited on, and how many cross-domain interactions
	// each window carried (the conservative scheme's coupling cost).
	r.SampledGauge("netsim.parallel.domains", func() float64 { return float64(len(n.doms)) })
	r.SampledGauge("netsim.parallel.workers", func() float64 { return float64(n.workersN) })
	r.SampledCounter("netsim.parallel.windows_total", func() float64 { return float64(n.windows) })
	r.SampledCounter("netsim.parallel.barrier_waits_total", func() float64 { return float64(n.barrierWaits) })
	n.metCrossWindow = r.Histogram("netsim.parallel.crossdomain_events_window", obs.Pow2Bounds(1, 14))
}

// AddObserver registers a flow lifecycle observer.
func (n *Network) AddObserver(o Observer) { n.observers = append(n.observers, o) }

// Stats returns the binned link statistics, or nil if disabled.
func (n *Network) Stats() *LinkStats { return n.stats }

// ActiveFlows reports the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.active) }

// EarliestActiveStart returns the minimum Start time among in-flight
// flows (false when none are active). Together with the simulation
// clock it bounds the release watermark of a live record stream: any
// record still to come belongs either to an active flow (Start >= this
// minimum) or to a flow not yet started (Start > the clock).
func (n *Network) EarliestActiveStart() (Time, bool) {
	if len(n.active) == 0 {
		return 0, false
	}
	earliest := n.active[0].Start
	for _, f := range n.active[1:] {
		if f.Start < earliest {
			earliest = f.Start
		}
	}
	return earliest, true
}

// FlowsStarted reports the cumulative number of flows started.
func (n *Network) FlowsStarted() int64 { return n.flowsStarted }

// FlowsCompleted reports the cumulative number of flows completed.
func (n *Network) FlowsCompleted() int64 { return n.flowsCompleted }

// TotalBytes reports the cumulative bytes moved over the fabric and
// loopback.
func (n *Network) TotalBytes() float64 { return n.totalBytes }

// LinkTotalBytes reports the cumulative bytes carried by a link.
func (n *Network) LinkTotalBytes(id topology.LinkID) float64 { return n.linkBytes[id] }

// StartFlow begins a transfer of bytes from src to dst and returns the
// flow. done, if non-nil, runs when the transfer completes. A zero-byte
// flow completes at the next simulation instant.
func (n *Network) StartFlow(src, dst topology.ServerID, bytes int64, tag FlowTag, done func(*Flow)) *Flow {
	if bytes < 0 {
		panic("netsim: negative flow size")
	}
	n.nextPort++
	if n.nextPort < 1024 {
		n.nextPort = 1024
	}
	f := &Flow{
		ID:        n.nextID,
		Src:       src,
		Dst:       dst,
		Bytes:     bytes,
		Tag:       tag,
		SrcPort:   n.nextPort,
		DstPort:   443, // services listen on a well-known port
		Start:     n.Now(),
		remaining: float64(bytes),
		done:      done,
		idx:       len(n.active),
	}
	f.path = n.top.AppendPathK(f.pathBuf[:0], src, dst, uint64(f.ID))
	n.nextID++
	n.flowsStarted++
	n.active = append(n.active, f)
	f.dom = n.flowDomain(src, dst)
	d := &n.doms[f.dom]
	f.domIdx = int32(len(d.flows))
	d.flows = append(d.flows, f)
	if f.dom == coreDomain && len(f.path) > 0 {
		n.windowCross++
	}
	if len(f.path) == 0 {
		// Loopback: rate is assigned at the next recompute, matching
		// when a full re-solve would have assigned it.
		n.pendingLocal = append(n.pendingLocal, f)
	} else {
		for i, l := range f.path {
			f.linkIdx[i] = int32(len(n.linkFlows[l]))
			n.linkFlows[l] = append(n.linkFlows[l], f)
			n.seedLink(l)
		}
	}
	for _, o := range n.observers {
		o.FlowStarted(f)
	}
	n.markDirty()
	return f
}

// seedLink records that link l's flow membership changed, so the next
// recompute re-solves the component containing it.
func (n *Network) seedLink(l topology.LinkID) {
	if !n.seedMark[l] {
		n.seedMark[l] = true
		n.seedLinks = append(n.seedLinks, l)
	}
}

// retire unlinks an active flow from the active set, its owner domain's
// flow list and the per-link flow lists, seeding its links for the next
// recompute. Observer and callback delivery is the caller's job.
func (n *Network) retire(f *Flow) {
	last := len(n.active) - 1
	i := f.idx
	n.active[i] = n.active[last]
	n.active[i].idx = i
	n.active[last] = nil
	n.active = n.active[:last]
	f.idx = -1
	d := &n.doms[f.dom]
	lastD := len(d.flows) - 1
	j := int(f.domIdx)
	movedD := d.flows[lastD]
	d.flows[j] = movedD
	movedD.domIdx = int32(j)
	d.flows[lastD] = nil
	d.flows = d.flows[:lastD]
	f.domIdx = -1
	for i, l := range f.path {
		fl := n.linkFlows[l]
		j := int(f.linkIdx[i])
		lastJ := len(fl) - 1
		moved := fl[lastJ]
		fl[j] = moved
		fl[lastJ] = nil
		n.linkFlows[l] = fl[:lastJ]
		if moved != f {
			for k, ml := range moved.path {
				if ml == l {
					moved.linkIdx[k] = int32(j)
					break
				}
			}
		}
		n.seedLink(l)
	}
}

// markDirty schedules a rate recomputation, batched by
// MinRecomputeInterval.
func (n *Network) markDirty() {
	n.dirty = true
	if n.recomputeScheduled {
		return
	}
	at := n.Now()
	if min := n.opts.MinRecomputeInterval; min > 0 && n.lastRecompute+min > at {
		at = n.lastRecompute + min
	}
	n.recomputeScheduled = true
	n.Schedule(at, n.recomputeEvent)
}

func (n *Network) recomputeEvent() {
	n.recomputeScheduled = false
	if !n.dirty {
		return
	}
	n.dirty = false
	n.step()
}

// step advances flow progress under the old rates, completes finished
// flows, recomputes max-min shares, and schedules the next completion.
// One step is one synchronization window of the parallel engine: the
// phases inside it fan out over domains (or components) and merge at
// barriers in domain (or component) order, so the window's outcome is
// bit-identical at any worker count.
func (n *Network) step() {
	n.advance()
	n.completeFinished()
	n.lastRecompute = n.Now()
	for _, f := range n.pendingLocal {
		if f.Active() {
			f.rate = n.opts.LocalBps / 8
		}
	}
	n.pendingLocal = n.pendingLocal[:0]
	if n.opts.FullRecompute {
		n.recomputeRates()
	} else {
		n.recomputeDirty()
	}
	n.scheduleNextCompletion()
	n.windows++
	n.metCrossWindow.Observe(float64(n.windowCross))
	n.windowCross = 0
}

// advance accrues progress and link bytes for the time since the last
// advance, under the rates frozen then. Each domain advances its own
// flows and owned loaded links; the per-domain byte partials are folded
// in domain order, so the sum's rounding is independent of worker count.
func (n *Network) advance() {
	now := n.Now()
	if now <= n.lastAdvance {
		return
	}
	dt := (now - n.lastAdvance).Seconds()
	if e := n.eng; e != nil && len(n.active)+n.activeLinkCount >= parMinPhaseWork {
		e.now, e.dt = now, dt
		e.dispatch(phaseAdvance)
	} else {
		for i := range n.doms {
			n.advanceDomain(&n.doms[i], now, dt)
		}
	}
	for i := range n.doms {
		n.totalBytes += n.doms[i].bytesPartial
	}
	n.lastAdvance = now
}

// completeFinished retires flows whose remaining bytes reached zero.
const finishEps = 1e-3 // bytes

// completeFinished runs entirely on the coordinator, deliberately: the
// finish test is a cheap epsilon compare, and the completion callbacks
// feed the workload layers, whose RNG draws are interleaved in callback
// order. Keeping the exact active-scan order of the sequential reference
// path (retire everything first, then deliver observers and callbacks in
// retirement order) makes the engine-off build bit-identical to the
// pre-engine simulator and the engine-on build bit-identical to
// engine-off — completion order never depends on the domain partition or
// the worker count.
func (n *Network) completeFinished() {
	finished := n.finished[:0]
	for i := 0; i < len(n.active); {
		f := n.active[i]
		if f.remaining <= finishEps {
			f.remaining = 0
			f.End = n.Now()
			n.retire(f)
			finished = append(finished, f)
			continue
		}
		i++
	}
	n.finished = finished
	for _, f := range finished {
		n.flowsCompleted++
		if f.dom == coreDomain && len(f.path) > 0 {
			n.windowCross++
		}
		for _, o := range n.observers {
			o.FlowEnded(f)
		}
		if f.done != nil {
			f.done(f)
		}
	}
}

// recomputeDirty re-solves max-min shares for the connected components of
// flows sharing links with any flow that started or ended since the last
// recompute. Flows in disjoint components keep their rates, which is
// exact: a max-min allocation is separable across link-disjoint
// components, so allocations outside the affected ones cannot change —
// the same separability that lets component solves run concurrently.
func (n *Network) recomputeDirty() {
	comps := n.gatherComponents()
	if len(comps) == 0 {
		return
	}
	n.recomputesDirty++
	unfrozen := 0
	for i := range comps {
		unfrozen += comps[i].unfrozen
		n.metCompLinks.Observe(float64(len(comps[i].links)))
		if comps[i].multiDomain {
			n.windowCross++
		}
	}
	if e := n.eng; e != nil && len(comps) >= 2 && unfrozen >= parMinSolveWork {
		e.comps = comps
		e.dispatch(phaseSolve)
		e.comps = nil
	} else {
		for i := range comps {
			n.solveComp(&comps[i])
		}
	}
	// Publish in component order on the coordinator: rates and the
	// active-link lists are shared state.
	for i := range comps {
		n.publish(comps[i].links)
	}
}

// recomputeRates re-solves every active flow from scratch (the
// FullRecompute path, also used by benchmarks as the worst-case solve).
func (n *Network) recomputeRates() {
	n.recomputesFull++
	// Drop the dirty bookkeeping: a full solve covers everything.
	for _, l := range n.seedLinks {
		n.seedMark[l] = false
	}
	n.seedLinks = n.seedLinks[:0]
	// Rates on links whose last flow retired since the previous solve
	// are republished by solve only if the link is gathered again, so
	// clear the whole active set first.
	for di := range n.doms {
		d := &n.doms[di]
		for _, l := range d.activeLinks {
			n.linkRateB[l] = 0
			n.linkActivePos[l] = -1
		}
		d.activeLinks = d.activeLinks[:0]
	}
	n.activeLinkCount = 0
	n.compGen++
	gen := n.compGen
	comp := n.fullComp[:0]
	unfrozen := 0
	localB := n.opts.LocalBps / 8
	for _, f := range n.active {
		if len(f.path) == 0 {
			f.rate = localB
			continue
		}
		f.frozen = false
		unfrozen++
		for _, l := range f.path {
			if n.linkComp[l] != gen {
				n.linkComp[l] = gen
				comp = append(comp, l)
			}
		}
	}
	slices.Sort(comp)
	n.fullComp = comp
	n.fullCand = n.solve(comp, unfrozen, n.fullCand)
	n.publish(comp)
}

// solve assigns max-min fair rates to the flows on links by progressive
// filling: repeatedly find the most-contended link, fix its flows at the
// fair share, remove them, and continue. links must be in ascending id
// order (deterministic tie-breaks) and closed under flow link-sharing;
// unfrozen is the number of distinct flows on them. cand is the caller's
// candidate scratch (returned for reuse), so solves of disjoint link
// sets can run concurrently: all other writes — linkAlloc, linkUnfrozen,
// flow rates — land on the solved links and their flows only.
func (n *Network) solve(links []topology.LinkID, unfrozen int, cand []topology.LinkID) []topology.LinkID {
	for _, l := range links {
		n.linkAlloc[l] = 0
		n.linkUnfrozen[l] = int32(len(n.linkFlows[l]))
	}
	cand = append(cand[:0], links...)
	scratch := cand
	for unfrozen > 0 {
		// Find the bottleneck link: minimal fair share among links with
		// unfrozen flows, lowest id winning ties. Saturated links are
		// compacted out in passing (order is preserved).
		var bottleneck topology.LinkID = -1
		best := math.Inf(1)
		w := 0
		for _, l := range cand {
			if n.linkUnfrozen[l] == 0 {
				continue
			}
			cand[w] = l
			w++
			share := (n.linkCapB[l] - n.linkAlloc[l]) / float64(n.linkUnfrozen[l])
			if share < best {
				best = share
				bottleneck = l
			}
		}
		cand = cand[:w]
		if bottleneck < 0 {
			break
		}
		if best < 0 {
			best = 0
		}
		for _, f := range n.linkFlows[bottleneck] {
			if f.frozen {
				continue
			}
			f.frozen = true
			unfrozen--
			f.rate = best
			for _, l := range f.path {
				n.linkUnfrozen[l]--
				n.linkAlloc[l] += best
			}
		}
	}
	return scratch
}

// publish copies the solved allocations into the live rate array and
// maintains the owner domains' active-link lists. Runs on the
// coordinator only, in component order — rates and list membership are
// shared state the advance phase reads next window.
func (n *Network) publish(links []topology.LinkID) {
	for _, l := range links {
		r := n.linkAlloc[l]
		n.linkRateB[l] = r
		d := &n.doms[n.linkDomain[l]]
		pos := n.linkActivePos[l]
		if r != 0 && pos < 0 {
			n.linkActivePos[l] = int32(len(d.activeLinks))
			d.activeLinks = append(d.activeLinks, l)
			n.activeLinkCount++
		} else if r == 0 && pos >= 0 {
			last := len(d.activeLinks) - 1
			moved := d.activeLinks[last]
			d.activeLinks[pos] = moved
			n.linkActivePos[moved] = pos
			d.activeLinks = d.activeLinks[:last]
			n.linkActivePos[l] = -1
			n.activeLinkCount--
		}
	}
}

// scheduleNextCompletion arms a single timer for the earliest projected
// flow completion; a generation counter invalidates stale timers. The
// per-domain minima merge to the same value as a flat scan (min is
// order-insensitive), so the timer fires at the same instant on every
// path.
func (n *Network) scheduleNextCompletion() {
	n.completionGen++
	gen := n.completionGen
	if e := n.eng; e != nil && len(n.active) >= parMinPhaseWork {
		e.dispatch(phaseMin)
	} else {
		for i := range n.doms {
			n.minDomain(&n.doms[i])
		}
	}
	best := math.Inf(1)
	for i := range n.doms {
		if n.doms[i].minCompl < best {
			best = n.doms[i].minCompl
		}
	}
	if math.IsInf(best, 1) {
		return
	}
	dt := Time(best * float64(time.Second))
	dt++ // round up so the flow is strictly done when the timer fires
	n.Schedule(n.Now()+dt, func() {
		if gen != n.completionGen {
			return
		}
		n.step()
	})
}

// Cancel aborts an active flow: progress accounting is brought up to
// date, the flow is retired with Canceled set and observers are notified
// via FlowEnded. The completion callback IS invoked (with Canceled set)
// so resource bookkeeping tied to the flow can unwind; callers must check
// Flow.Canceled. Canceling an already-finished flow is a no-op.
func (n *Network) Cancel(f *Flow) {
	if !f.Active() {
		return
	}
	n.advance()
	n.retire(f)
	f.Canceled = true
	f.End = n.Now()
	n.flowsCanceled++
	if f.dom == coreDomain && len(f.path) > 0 {
		n.windowCross++
	}
	for _, o := range n.observers {
		o.FlowEnded(f)
	}
	if f.done != nil {
		f.done(f)
	}
	n.markDirty() // freed bandwidth reallocates
}

// CancelWhere aborts every active flow matching pred and reports how many
// were canceled. Used by the job manager to reap a killed job's transfers.
// The batch advances accounting once up front, so reaping is
// O(victims × path), not O(victims × links).
func (n *Network) CancelWhere(pred func(*Flow) bool) int {
	// Collect first: retiring mutates n.active.
	var victims []*Flow
	for _, f := range n.active {
		if pred(f) {
			victims = append(victims, f)
		}
	}
	if len(victims) == 0 {
		return 0
	}
	n.advance()
	for _, f := range victims {
		if !f.Active() { // a prior victim's callback may have canceled it
			continue
		}
		n.retire(f)
		f.Canceled = true
		f.End = n.Now()
		n.flowsCanceled++
		if f.dom == coreDomain && len(f.path) > 0 {
			n.windowCross++
		}
		for _, o := range n.observers {
			o.FlowEnded(f)
		}
		if f.done != nil {
			f.done(f)
		}
		// Mark after every victim's callback, not once at the end: the
		// recompute event must enter the queue before anything a LATER
		// victim's callback schedules for the same instant, or the
		// same-timestamp event order (and hence the whole closed-loop
		// simulation) changes. Only the first call schedules; the rest
		// are cheap no-ops.
		n.markDirty()
	}
	return len(victims)
}

// LinkRateBps reports the instantaneous allocated rate on a link in bits
// per second (as of the last recomputation).
func (n *Network) LinkRateBps(id topology.LinkID) float64 { return n.linkRateB[id] * 8 }

// Flush advances accounting to the current time; call before reading
// byte counters mid-run.
func (n *Network) Flush() { n.advance() }
