package netsim

import (
	"math"
	"sort"
	"time"

	"dctraffic/internal/topology"
)

// Options tunes the network simulator. The zero value is usable; see the
// field comments for defaults.
type Options struct {
	// MinRecomputeInterval batches rate recomputation: bandwidth shares
	// are recomputed at most once per interval even under heavy flow
	// churn. Zero recomputes on every arrival and completion (exact
	// fluid model). Large simulations use ~10ms.
	MinRecomputeInterval Time

	// LocalBps is the transfer speed of loopback flows (src == dst),
	// which model local disk reads and never touch the fabric.
	// Default 8 Gbps.
	LocalBps float64

	// StatsBinSize enables per-link byte accounting in bins of this
	// size (the SNMP-like counters used by congestion analysis and
	// tomography). Zero disables binned stats; totals are always kept.
	StatsBinSize Time

	// StatsLinks selects which links are binned. Nil tracks the
	// inter-switch links (the paper's congestion link set) plus all
	// server up/downlinks when the topology is small (<= 512 hosts).
	StatsLinks []topology.LinkID
}

// Observer receives flow lifecycle notifications. The instrumentation
// layer (internal/trace) implements this to build socket-level logs.
type Observer interface {
	FlowStarted(*Flow)
	FlowEnded(*Flow)
}

// Network simulates fluid flows over a topology. Create with New; drive by
// scheduling workload events on the embedded Sim and calling Run.
type Network struct {
	Sim
	top  *topology.Topology
	opts Options

	active   []*Flow
	nextID   FlowID
	nextPort uint16

	linkCapB  []float64 // bytes/sec capacity per link
	linkRateB []float64 // current aggregate bytes/sec per link
	linkBytes []float64 // cumulative bytes per link

	lastAdvance        Time
	lastRecompute      Time
	dirty              bool
	recomputeScheduled bool
	completionGen      uint64

	observers []Observer
	stats     *LinkStats

	totalBytes     float64
	flowsStarted   int64
	flowsCompleted int64
}

// New builds a network over the topology.
func New(top *topology.Topology, opts Options) *Network {
	if opts.LocalBps <= 0 {
		opts.LocalBps = 8e9
	}
	n := &Network{
		top:       top,
		opts:      opts,
		linkCapB:  make([]float64, top.NumLinks()),
		linkRateB: make([]float64, top.NumLinks()),
		linkBytes: make([]float64, top.NumLinks()),
	}
	for _, l := range top.Links() {
		n.linkCapB[l.ID] = l.CapacityBps / 8
	}
	if opts.StatsBinSize > 0 {
		links := opts.StatsLinks
		if links == nil {
			links = top.InterSwitchLinks()
			if top.NumHosts() <= 512 {
				for s := 0; s < top.NumHosts(); s++ {
					sid := topology.ServerID(s)
					links = append(links, top.ServerUplink(sid), top.ServerDownlink(sid))
				}
			}
		}
		n.stats = newLinkStats(opts.StatsBinSize, top.NumLinks(), links)
	}
	return n
}

// Top returns the topology.
func (n *Network) Top() *topology.Topology { return n.top }

// AddObserver registers a flow lifecycle observer.
func (n *Network) AddObserver(o Observer) { n.observers = append(n.observers, o) }

// Stats returns the binned link statistics, or nil if disabled.
func (n *Network) Stats() *LinkStats { return n.stats }

// ActiveFlows reports the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.active) }

// FlowsStarted reports the cumulative number of flows started.
func (n *Network) FlowsStarted() int64 { return n.flowsStarted }

// FlowsCompleted reports the cumulative number of flows completed.
func (n *Network) FlowsCompleted() int64 { return n.flowsCompleted }

// TotalBytes reports the cumulative bytes moved over the fabric and
// loopback.
func (n *Network) TotalBytes() float64 { return n.totalBytes }

// LinkTotalBytes reports the cumulative bytes carried by a link.
func (n *Network) LinkTotalBytes(id topology.LinkID) float64 { return n.linkBytes[id] }

// StartFlow begins a transfer of bytes from src to dst and returns the
// flow. done, if non-nil, runs when the transfer completes. A zero-byte
// flow completes at the next simulation instant.
func (n *Network) StartFlow(src, dst topology.ServerID, bytes int64, tag FlowTag, done func(*Flow)) *Flow {
	if bytes < 0 {
		panic("netsim: negative flow size")
	}
	n.nextPort++
	if n.nextPort < 1024 {
		n.nextPort = 1024
	}
	f := &Flow{
		ID:        n.nextID,
		Src:       src,
		Dst:       dst,
		Bytes:     bytes,
		Tag:       tag,
		SrcPort:   n.nextPort,
		DstPort:   443, // services listen on a well-known port
		Start:     n.Now(),
		path:      n.top.PathK(src, dst, uint64(n.nextID)),
		remaining: float64(bytes),
		done:      done,
		idx:       len(n.active),
	}
	n.nextID++
	n.flowsStarted++
	n.active = append(n.active, f)
	for _, o := range n.observers {
		o.FlowStarted(f)
	}
	n.markDirty()
	return f
}

// markDirty schedules a rate recomputation, batched by
// MinRecomputeInterval.
func (n *Network) markDirty() {
	n.dirty = true
	if n.recomputeScheduled {
		return
	}
	at := n.Now()
	if min := n.opts.MinRecomputeInterval; min > 0 && n.lastRecompute+min > at {
		at = n.lastRecompute + min
	}
	n.recomputeScheduled = true
	n.Schedule(at, n.recomputeEvent)
}

func (n *Network) recomputeEvent() {
	n.recomputeScheduled = false
	if !n.dirty {
		return
	}
	n.dirty = false
	n.step()
}

// step advances flow progress under the old rates, completes finished
// flows, recomputes max-min shares, and schedules the next completion.
func (n *Network) step() {
	n.advance()
	n.completeFinished()
	n.recomputeRates()
	n.scheduleNextCompletion()
}

// advance accrues progress and link bytes for the time since the last
// advance, under the rates computed at that time.
func (n *Network) advance() {
	now := n.Now()
	if now <= n.lastAdvance {
		return
	}
	dt := (now - n.lastAdvance).Seconds()
	for l, r := range n.linkRateB {
		if r == 0 {
			continue
		}
		n.linkBytes[l] += r * dt
		if n.stats != nil {
			n.stats.record(topology.LinkID(l), n.lastAdvance, now, r)
		}
	}
	for _, f := range n.active {
		if f.rate > 0 {
			moved := f.rate * dt
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			n.totalBytes += moved
		}
	}
	n.lastAdvance = now
}

// completeFinished retires flows whose remaining bytes reached zero.
const finishEps = 1e-3 // bytes

func (n *Network) completeFinished() {
	var finished []*Flow
	for i := 0; i < len(n.active); {
		f := n.active[i]
		if f.remaining <= finishEps {
			f.remaining = 0
			f.End = n.Now()
			// Swap-remove, fixing the moved flow's index.
			last := len(n.active) - 1
			n.active[i] = n.active[last]
			n.active[i].idx = i
			n.active[last] = nil
			n.active = n.active[:last]
			f.idx = -1
			finished = append(finished, f)
			continue
		}
		i++
	}
	for _, f := range finished {
		n.flowsCompleted++
		for _, o := range n.observers {
			o.FlowEnded(f)
		}
		if f.done != nil {
			f.done(f)
		}
	}
}

// recomputeRates assigns max-min fair rates to all active flows by
// progressive filling: repeatedly find the most-contended link, fix its
// flows at the fair share, remove them, and continue.
func (n *Network) recomputeRates() {
	n.lastRecompute = n.Now()
	for l := range n.linkRateB {
		n.linkRateB[l] = 0
	}
	if len(n.active) == 0 {
		return
	}
	localB := n.opts.LocalBps / 8

	// Index flows per link; loopback flows get the local rate directly.
	type linkState struct {
		unfrozen int
		alloc    float64
	}
	states := make(map[topology.LinkID]*linkState)
	flowsOn := make(map[topology.LinkID][]*Flow)
	var linkIDs []topology.LinkID // deterministic iteration order
	unfrozen := 0
	frozen := make(map[FlowID]bool, len(n.active))
	for _, f := range n.active {
		if len(f.path) == 0 {
			f.rate = localB
			frozen[f.ID] = true
			continue
		}
		unfrozen++
		for _, l := range f.path {
			st := states[l]
			if st == nil {
				st = &linkState{}
				states[l] = st
				linkIDs = append(linkIDs, l)
			}
			st.unfrozen++
			flowsOn[l] = append(flowsOn[l], f)
		}
	}
	sort.Slice(linkIDs, func(i, j int) bool { return linkIDs[i] < linkIDs[j] })
	for unfrozen > 0 {
		// Find the bottleneck link: minimal fair share among links with
		// unfrozen flows. Iterate in link-id order so tie-breaking (and
		// therefore floating-point rounding) is deterministic.
		var bottleneck topology.LinkID = -1
		best := math.Inf(1)
		for _, l := range linkIDs {
			st := states[l]
			if st.unfrozen == 0 {
				continue
			}
			share := (n.linkCapB[l] - st.alloc) / float64(st.unfrozen)
			if share < best {
				best = share
				bottleneck = l
			}
		}
		if bottleneck < 0 {
			break
		}
		if best < 0 {
			best = 0
		}
		for _, f := range flowsOn[bottleneck] {
			if frozen[f.ID] {
				continue
			}
			frozen[f.ID] = true
			unfrozen--
			f.rate = best
			for _, l := range f.path {
				st := states[l]
				st.unfrozen--
				st.alloc += best
			}
		}
	}
	for l, st := range states {
		n.linkRateB[l] = st.alloc
	}
}

// scheduleNextCompletion arms a single timer for the earliest projected
// flow completion; a generation counter invalidates stale timers.
func (n *Network) scheduleNextCompletion() {
	n.completionGen++
	gen := n.completionGen
	best := math.Inf(1)
	for _, f := range n.active {
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < best {
				best = t
			}
		}
	}
	if math.IsInf(best, 1) {
		return
	}
	dt := Time(best * float64(time.Second))
	dt++ // round up so the flow is strictly done when the timer fires
	n.Schedule(n.Now()+dt, func() {
		if gen != n.completionGen {
			return
		}
		n.step()
	})
}

// Cancel aborts an active flow: progress accounting is brought up to
// date, the flow is retired with Canceled set and observers are notified
// via FlowEnded. The completion callback IS invoked (with Canceled set)
// so resource bookkeeping tied to the flow can unwind; callers must check
// Flow.Canceled. Canceling an already-finished flow is a no-op.
func (n *Network) Cancel(f *Flow) {
	if !f.Active() {
		return
	}
	n.advance()
	last := len(n.active) - 1
	i := f.idx
	n.active[i] = n.active[last]
	n.active[i].idx = i
	n.active[last] = nil
	n.active = n.active[:last]
	f.idx = -1
	f.Canceled = true
	f.End = n.Now()
	for _, o := range n.observers {
		o.FlowEnded(f)
	}
	if f.done != nil {
		f.done(f)
	}
	n.markDirty() // freed bandwidth reallocates
}

// CancelWhere aborts every active flow matching pred and reports how many
// were canceled. Used by the job manager to reap a killed job's transfers.
func (n *Network) CancelWhere(pred func(*Flow) bool) int {
	// Collect first: Cancel mutates n.active.
	var victims []*Flow
	for _, f := range n.active {
		if pred(f) {
			victims = append(victims, f)
		}
	}
	for _, f := range victims {
		n.Cancel(f)
	}
	return len(victims)
}

// LinkRateBps reports the instantaneous allocated rate on a link in bits
// per second (as of the last recomputation).
func (n *Network) LinkRateBps(id topology.LinkID) float64 { return n.linkRateB[id] * 8 }

// Flush advances accounting to the current time; call before reading
// byte counters mid-run.
func (n *Network) Flush() { n.advance() }
