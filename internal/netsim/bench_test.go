package netsim

import (
	"testing"
	"time"

	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// BenchmarkFlowChurn measures simulator throughput in flows completed per
// benchmark op: a churning mix of small and medium flows on the small
// topology with exact rate recomputation.
func BenchmarkFlowChurn(b *testing.B) {
	top := topology.MustNew(topology.SmallConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := New(top, Options{})
		r := stats.NewRNG(uint64(i))
		for f := 0; f < 1000; f++ {
			src := topology.ServerID(r.IntN(top.NumHosts()))
			dst := topology.ServerID(r.IntN(top.NumHosts()))
			n.After(Time(r.IntN(1000))*time.Millisecond, func() {
				n.StartFlow(src, dst, int64(1+r.IntN(4_000_000)), FlowTag{}, nil)
			})
		}
		n.RunAll()
		if n.FlowsCompleted() != 1000 {
			b.Fatal("flows lost")
		}
	}
}

// BenchmarkFlowChurnBatched is the same workload under 10 ms rate
// batching — the configuration used for day-scale runs.
func BenchmarkFlowChurnBatched(b *testing.B) {
	top := topology.MustNew(topology.SmallConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := New(top, Options{MinRecomputeInterval: 10 * time.Millisecond})
		r := stats.NewRNG(uint64(i))
		for f := 0; f < 1000; f++ {
			src := topology.ServerID(r.IntN(top.NumHosts()))
			dst := topology.ServerID(r.IntN(top.NumHosts()))
			n.After(Time(r.IntN(1000))*time.Millisecond, func() {
				n.StartFlow(src, dst, int64(1+r.IntN(4_000_000)), FlowTag{}, nil)
			})
		}
		n.RunAll()
	}
}

// BenchmarkMaxMinRecompute isolates the progressive-filling allocation
// with 500 concurrent flows.
func BenchmarkMaxMinRecompute(b *testing.B) {
	top := topology.MustNew(topology.SmallConfig())
	n := New(top, Options{})
	r := stats.NewRNG(1)
	for f := 0; f < 500; f++ {
		src := topology.ServerID(r.IntN(top.NumHosts()))
		dst := topology.ServerID(r.IntN(top.NumHosts()))
		n.StartFlow(src, dst, 1<<40, FlowTag{}, nil) // effectively infinite
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.recomputeRates()
	}
}
