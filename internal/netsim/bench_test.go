package netsim

import (
	"testing"
	"time"

	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// BenchmarkScheduleRun isolates the event core: schedule 4096 callbacks
// across 64 distinct instants (FIFO runs within each) and drain the
// queue. allocs/op is the interesting number — the value-slice heap
// schedules without a per-event allocation, so steady state amortizes to
// the queue's growth reallocations only.
func BenchmarkScheduleRun(b *testing.B) {
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Sim
		for j := 0; j < 4096; j++ {
			s.Schedule(Time(j%64)*time.Millisecond, fn)
		}
		s.RunAll()
		if s.EventsProcessed() != 4096 {
			b.Fatal("events lost")
		}
	}
}

// BenchmarkFlowChurn measures simulator throughput in flows completed per
// benchmark op: a churning mix of small and medium flows on the small
// topology with exact rate recomputation.
func BenchmarkFlowChurn(b *testing.B) {
	top := topology.MustNew(topology.SmallConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := New(top, Options{})
		r := stats.NewRNG(uint64(i))
		for f := 0; f < 1000; f++ {
			src := topology.ServerID(r.IntN(top.NumHosts()))
			dst := topology.ServerID(r.IntN(top.NumHosts()))
			n.After(Time(r.IntN(1000))*time.Millisecond, func() {
				n.StartFlow(src, dst, int64(1+r.IntN(4_000_000)), FlowTag{}, nil)
			})
		}
		n.RunAll()
		if n.FlowsCompleted() != 1000 {
			b.Fatal("flows lost")
		}
	}
}

// BenchmarkFlowChurnBatched is the same workload under 10 ms rate
// batching — the configuration used for day-scale runs.
func BenchmarkFlowChurnBatched(b *testing.B) {
	top := topology.MustNew(topology.SmallConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := New(top, Options{MinRecomputeInterval: 10 * time.Millisecond})
		r := stats.NewRNG(uint64(i))
		for f := 0; f < 1000; f++ {
			src := topology.ServerID(r.IntN(top.NumHosts()))
			dst := topology.ServerID(r.IntN(top.NumHosts()))
			n.After(Time(r.IntN(1000))*time.Millisecond, func() {
				n.StartFlow(src, dst, int64(1+r.IntN(4_000_000)), FlowTag{}, nil)
			})
		}
		n.RunAll()
	}
}

// simulateWorkload drives a paper-scale closed-loop churn: flows are 90%
// rack-local (the paper's work-seeks-bandwidth locality) and completion
// callbacks chain replacements, under the day-scale 10 ms rate batching.
// Shared by BenchmarkSimulate and BenchmarkSimulateParallel so the two
// time exactly the same (bit-identical) simulation.
func simulateWorkload(b *testing.B, opts Options) {
	cfg := topology.DefaultConfig()
	top := topology.MustNew(cfg)
	opts.MinRecomputeInterval = 10 * time.Millisecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := New(top, opts)
		r := stats.NewRNG(1)
		spr := cfg.ServersPerRack
		pair := func() (topology.ServerID, topology.ServerID) {
			if r.Float64() < 0.9 {
				rack := r.IntN(cfg.Racks)
				return topology.ServerID(rack*spr + r.IntN(spr)),
					topology.ServerID(rack*spr + r.IntN(spr))
			}
			return topology.ServerID(r.IntN(top.NumHosts())), topology.ServerID(r.IntN(top.NumHosts()))
		}
		var chain func(depth int) func(*Flow)
		chain = func(depth int) func(*Flow) {
			if depth <= 0 {
				return nil
			}
			return func(*Flow) {
				src, dst := pair()
				n.StartFlow(src, dst, int64(1+r.IntN(30_000_000)), FlowTag{}, chain(depth-1))
			}
		}
		for f := 0; f < 2500; f++ {
			n.After(Time(r.IntN(500))*time.Millisecond, func() {
				src, dst := pair()
				n.StartFlow(src, dst, int64(1+r.IntN(30_000_000)), FlowTag{}, chain(2))
			})
		}
		n.RunAll()
		if n.FlowsCompleted() != 7500 {
			b.Fatalf("flows lost: %d", n.FlowsCompleted())
		}
	}
}

// BenchmarkSimulate is the paper-scale simulate phase on the sequential
// reference path: DefaultConfig (75 racks × 20 servers) under a churning
// closed-loop workload of 7500 rack-local-heavy flows.
func BenchmarkSimulate(b *testing.B) {
	simulateWorkload(b, Options{Sequential: true})
}

// BenchmarkSimulateParallel is the identical workload on the per-rack
// domain engine at the default worker count (GOMAXPROCS). The traces are
// bit-identical to BenchmarkSimulate; only wall clock may differ.
func BenchmarkSimulateParallel(b *testing.B) {
	simulateWorkload(b, Options{})
}

// BenchmarkMaxMinRecompute isolates the progressive-filling allocation
// with 500 concurrent flows (the worst case: a full re-solve of every
// flow, as if all of them just changed).
func BenchmarkMaxMinRecompute(b *testing.B) {
	top := topology.MustNew(topology.SmallConfig())
	n := New(top, Options{})
	r := stats.NewRNG(1)
	for f := 0; f < 500; f++ {
		src := topology.ServerID(r.IntN(top.NumHosts()))
		dst := topology.ServerID(r.IntN(top.NumHosts()))
		n.StartFlow(src, dst, 1<<40, FlowTag{}, nil) // effectively infinite
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.recomputeRates()
	}
}

// BenchmarkMaxMinRecomputeLarge is the full re-solve at paper scale: the
// DefaultConfig topology (1500 servers) carrying 5000 concurrent flows.
func BenchmarkMaxMinRecomputeLarge(b *testing.B) {
	top := topology.MustNew(topology.DefaultConfig())
	n := New(top, Options{})
	r := stats.NewRNG(1)
	for f := 0; f < 5000; f++ {
		src := topology.ServerID(r.IntN(top.NumHosts()))
		dst := topology.ServerID(r.IntN(top.NumHosts()))
		n.StartFlow(src, dst, 1<<40, FlowTag{}, nil)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.recomputeRates()
	}
}

// BenchmarkIncrementalRecompute measures the dirty-component path: one
// rack-local flow arrives into (and is then reaped from) a steady state
// of 5000 rack-local flows at paper scale. Only the arrival's rack
// component is re-solved, so the cost is proportional to the component
// (~67 flows), not the cluster — compare BenchmarkMaxMinRecomputeLarge,
// which re-solves all 5000. Rack-local steady state mirrors the paper's
// work-seeks-bandwidth locality; fully random traffic instead couples
// every rack through the agg links into one component, degenerating to
// the Large case. The Flow object accounts for the per-op allocations.
func BenchmarkIncrementalRecompute(b *testing.B) {
	cfg := topology.DefaultConfig()
	top := topology.MustNew(cfg)
	n := New(top, Options{})
	r := stats.NewRNG(1)
	spr := cfg.ServersPerRack
	for f := 0; f < 5000; f++ {
		rack := f % cfg.Racks
		src := topology.ServerID(rack*spr + r.IntN(spr))
		dst := topology.ServerID(rack*spr + (int(src)+1+r.IntN(spr-1))%spr)
		n.StartFlow(src, dst, 1<<40, FlowTag{}, nil)
	}
	n.recomputeDirty() // reach steady state
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rack := i % cfg.Racks
		src := topology.ServerID(rack*spr + r.IntN(spr))
		dst := topology.ServerID(rack*spr + (int(src)+1+r.IntN(spr-1))%spr)
		f := n.StartFlow(src, dst, 1<<40, FlowTag{}, nil)
		n.recomputeDirty()
		n.Cancel(f)
		n.recomputeDirty()
	}
}
