package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// Max-min allocation invariants, checked after a recompute:
//  1. feasibility — no link carries more than its capacity;
//  2. bottleneck property — every fabric flow crosses at least one
//     saturated link on which it has a maximal rate. Together these
//     certify the allocation is the (unique) max-min fair one.
func checkMaxMinInvariants(t *testing.T, n *Network) {
	t.Helper()
	const rel = 1e-9
	top := n.Top()
	for _, l := range top.Links() {
		if n.LinkRateBps(l.ID) > l.CapacityBps*(1+rel)+1 {
			t.Fatalf("link %s over capacity: %v > %v", l.Name, n.LinkRateBps(l.ID), l.CapacityBps)
		}
	}
	// Maximal rate per link among the flows crossing it.
	maxRate := make(map[topology.LinkID]float64)
	for _, f := range n.active {
		for _, l := range f.path {
			if f.rate > maxRate[l] {
				maxRate[l] = f.rate
			}
		}
	}
	for _, f := range n.active {
		if len(f.path) == 0 {
			continue // loopback: pinned at LocalBps, not allocated
		}
		bottlenecked := false
		for _, l := range f.path {
			saturated := n.linkRateB[l] >= n.linkCapB[l]*(1-1e-9)-1
			maximal := f.rate >= maxRate[l]*(1-1e-9)
			if saturated && maximal {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			t.Fatalf("%v (rate %v) has no bottleneck link", f, f.Rate())
		}
	}
}

// Property: after arbitrary arrivals the incremental allocator satisfies
// the max-min invariants.
func TestMaxMinInvariantsProperty(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := New(top, Options{})
		nf := 1 + r.IntN(60)
		for i := 0; i < nf; i++ {
			src := topology.ServerID(r.IntN(top.NumHosts()))
			dst := topology.ServerID(r.IntN(top.NumHosts()))
			n.StartFlow(src, dst, 1<<40, FlowTag{}, nil)
		}
		n.Run(0) // compute rates only
		checkMaxMinInvariants(t, n)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Invariants must also hold mid-run, after completions and cancels have
// reshaped the active set through many dirty-component recomputes.
func TestMaxMinInvariantsAfterChurn(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	r := stats.NewRNG(7)
	n := New(top, Options{})
	var cancelable []*Flow
	for i := 0; i < 300; i++ {
		src := topology.ServerID(r.IntN(top.NumHosts()))
		dst := topology.ServerID(r.IntN(top.NumHosts()))
		bytes := int64(1_000_000 + r.IntN(100_000_000))
		at := Time(r.IntN(2000)) * time.Millisecond
		n.After(at, func() {
			f := n.StartFlow(src, dst, bytes, FlowTag{}, nil)
			if len(cancelable) < 30 {
				cancelable = append(cancelable, f)
			}
		})
	}
	n.After(1500*time.Millisecond, func() {
		for _, f := range cancelable {
			n.Cancel(f)
		}
	})
	for ms := 500; ms <= 2500; ms += 500 {
		n.After(Time(ms)*time.Millisecond, func() {
			checkMaxMinInvariants(t, n)
		})
	}
	n.RunAll()
	if n.ActiveFlows() != 0 {
		t.Fatalf("%d flows never finished", n.ActiveFlows())
	}
}

// Property: the incremental dirty-component allocator and a full
// re-solve on every step produce bit-identical simulations — same
// completion times, same per-link byte totals, same total bytes — on
// random workloads with churn, in both exact and batched recompute modes.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	run := func(seed uint64, full bool, batch Time) (float64, []float64, []Time) {
		r := stats.NewRNG(seed)
		n := New(top, Options{FullRecompute: full, MinRecomputeInterval: batch})
		var ends []Time
		nf := 3 + r.IntN(25)
		for i := 0; i < nf; i++ {
			src := topology.ServerID(r.IntN(top.NumHosts()))
			dst := topology.ServerID(r.IntN(top.NumHosts()))
			bytes := int64(1000 + r.IntN(50_000_000))
			start := Time(r.IntN(1000)) * time.Millisecond
			cancelAfter := Time(0)
			if r.IntN(4) == 0 {
				cancelAfter = Time(1+r.IntN(500)) * time.Millisecond
			}
			n.After(start, func() {
				f := n.StartFlow(src, dst, bytes, FlowTag{}, func(f *Flow) {
					ends = append(ends, f.End)
				})
				if cancelAfter > 0 {
					n.After(cancelAfter, func() { n.Cancel(f) })
				}
			})
		}
		n.RunAll()
		linkBytes := make([]float64, top.NumLinks())
		for l := range linkBytes {
			linkBytes[l] = n.LinkTotalBytes(topology.LinkID(l))
		}
		return n.TotalBytes(), linkBytes, ends
	}
	f := func(seed uint64, batched bool) bool {
		var batch Time
		if batched {
			batch = 20 * time.Millisecond
		}
		ib, il, ie := run(seed, false, batch)
		fb, fl, fe := run(seed, true, batch)
		if ib != fb || len(ie) != len(fe) {
			return false
		}
		for i := range ie {
			if ie[i] != fe[i] {
				return false
			}
		}
		for l := range il {
			if il[l] != fl[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// A canceled flow must vanish from the per-link flow lists, and the moved
// flow's back-indices must stay correct through many swap-removals.
func TestLinkFlowListConsistency(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	r := stats.NewRNG(3)
	n := New(top, Options{})
	var flows []*Flow
	for i := 0; i < 200; i++ {
		src := topology.ServerID(r.IntN(top.NumHosts()))
		dst := topology.ServerID(r.IntN(top.NumHosts()))
		flows = append(flows, n.StartFlow(src, dst, 1<<40, FlowTag{}, nil))
	}
	// Cancel half in random order.
	for i := 0; i < 100; i++ {
		n.Cancel(flows[r.IntN(len(flows))])
	}
	// Every remaining active flow must be exactly where linkIdx says,
	// and list membership must match path membership.
	total := 0
	for l, fl := range n.linkFlows {
		total += len(fl)
		for j, f := range fl {
			if !f.Active() {
				t.Fatalf("retired flow %v still on link %d", f, l)
			}
			found := false
			for k, pl := range f.path {
				if int(pl) == l {
					if int(f.linkIdx[k]) != j {
						t.Fatalf("flow %v linkIdx stale: link %d says %d, list has it at %d", f, l, f.linkIdx[k], j)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("flow %v on link %d not in its path", f, l)
			}
		}
	}
	want := 0
	for _, f := range flows {
		if f.Active() {
			want += len(f.path)
		}
	}
	if total != want {
		t.Fatalf("link lists hold %d entries, active paths have %d", total, want)
	}
}
