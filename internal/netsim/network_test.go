package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

func newNet(t *testing.T, opts Options) *Network {
	t.Helper()
	return New(topology.MustNew(topology.SmallConfig()), opts)
}

func approxDur(got, want Time, tol Time) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestSingleFlowFullRate(t *testing.T) {
	n := newNet(t, Options{})
	// 125 MB over a 1 Gbps server link: exactly 1 second.
	var end Time
	n.StartFlow(0, 1, 125_000_000, FlowTag{}, func(f *Flow) { end = f.End })
	n.RunAll()
	if !approxDur(end, time.Second, time.Millisecond) {
		t.Fatalf("single flow completed at %v, want ~1s", end)
	}
	if n.FlowsCompleted() != 1 || n.ActiveFlows() != 0 {
		t.Fatalf("completed=%d active=%d", n.FlowsCompleted(), n.ActiveFlows())
	}
}

func TestTwoFlowsShareUplink(t *testing.T) {
	n := newNet(t, Options{})
	// Two flows out of server 0 share its 1 Gbps uplink: each ~0.5 Gbps.
	var ends []Time
	done := func(f *Flow) { ends = append(ends, f.End) }
	n.StartFlow(0, 1, 125_000_000, FlowTag{}, done)
	n.StartFlow(0, 2, 125_000_000, FlowTag{}, done)
	n.RunAll()
	if len(ends) != 2 {
		t.Fatalf("completed %d flows", len(ends))
	}
	for _, e := range ends {
		if !approxDur(e, 2*time.Second, 2*time.Millisecond) {
			t.Fatalf("shared flows completed at %v, want ~2s", e)
		}
	}
}

func TestReallocationAfterCompletion(t *testing.T) {
	n := newNet(t, Options{})
	var end1, end2 Time
	n.StartFlow(0, 1, 125_000_000, FlowTag{}, func(f *Flow) { end1 = f.End })
	n.StartFlow(0, 2, 62_500_000, FlowTag{}, func(f *Flow) { end2 = f.End })
	n.RunAll()
	// Flow 2 (half the size) finishes at ~1s; flow 1 then gets the full
	// link and finishes its remaining half at full speed: ~1.5s.
	if !approxDur(end2, time.Second, 2*time.Millisecond) {
		t.Fatalf("small flow completed at %v, want ~1s", end2)
	}
	if !approxDur(end1, 1500*time.Millisecond, 3*time.Millisecond) {
		t.Fatalf("large flow completed at %v, want ~1.5s", end1)
	}
}

func TestMaxMinTorBottleneck(t *testing.T) {
	n := newNet(t, Options{})
	top := n.Top()
	// 5 cross-rack flows from rack 0 to rack 2 (same agg in SmallConfig):
	// ToR uplink is 2.5 Gbps, so each gets 0.5 Gbps. A 6th intra-rack flow
	// from an unused server keeps its full 1 Gbps.
	src := top.RackServers(0)
	dst := top.RackServers(2)
	for i := 0; i < 5; i++ {
		n.StartFlow(src[i], dst[i], 1, FlowTag{}, nil)
	}
	intra := n.StartFlow(src[6], src[7], 1, FlowTag{}, nil)
	n.Schedule(0, func() {}) // force the recompute event to fire
	n.Run(0)
	crossWant := 2.5e9 / 5
	for _, f := range []*Flow{intra} {
		if math.Abs(f.Rate()-1e9) > 1 {
			t.Fatalf("intra-rack rate %v, want 1 Gbps", f.Rate())
		}
	}
	// All cross flows should carry the ToR fair share.
	sum := 0.0
	rate := n.LinkRateBps(top.TorUplink(0))
	sum += rate
	if math.Abs(rate-2.5e9) > 1 {
		t.Fatalf("ToR uplink allocated %v, want 2.5 Gbps", rate)
	}
	_ = crossWant
}

func TestWaterFillingSecondLevel(t *testing.T) {
	n := newNet(t, Options{})
	top := n.Top()
	// Saturate the ToR-0 uplink with 5 cross-rack flows, plus one more
	// cross-rack flow from rack 3 to the same destination server: the
	// destination's 1 Gbps downlink is shared between one ToR-0 flow
	// (0.4167 Gbps after refill) and the rack-3 flow.
	src0 := top.RackServers(0)
	dst := top.RackServers(2)
	for i := 0; i < 5; i++ {
		n.StartFlow(src0[i], dst[i], 1, FlowTag{}, nil)
	}
	other := n.StartFlow(top.RackServers(4)[0], dst[0], 1, FlowTag{}, nil)
	n.Run(0)
	// All six flows funnel into rack 2's ToR downlink (2.5 Gbps), which is
	// the true bottleneck: 2.5G / 6 ≈ 0.4167 Gbps per flow, below both the
	// ToR-0 uplink share (0.5G) and the dst[0] downlink share (0.5G).
	want := 2.5e9 / 6
	if r := other.Rate(); math.Abs(r-want) > 1e3 {
		t.Fatalf("second-level flow rate %v, want ~%v", r, want)
	}
	if got := n.LinkRateBps(top.TorDownlink(2)); math.Abs(got-2.5e9) > 1e3 {
		t.Fatalf("bottleneck ToR downlink carries %v, want 2.5 Gbps", got)
	}
	total := n.LinkRateBps(top.ServerDownlink(dst[0]))
	if total > 1e9+1 {
		t.Fatalf("downlink oversubscribed: %v bps", total)
	}
}

func TestLoopbackFlow(t *testing.T) {
	n := newNet(t, Options{LocalBps: 8e9})
	var end Time
	n.StartFlow(3, 3, 1_000_000_000, FlowTag{}, func(f *Flow) { end = f.End })
	n.RunAll()
	if !approxDur(end, time.Second, 2*time.Millisecond) {
		t.Fatalf("loopback completed at %v, want ~1s", end)
	}
	// Loopback must not touch the fabric.
	for _, l := range n.Top().Links() {
		if n.LinkTotalBytes(l.ID) > 0 {
			t.Fatalf("loopback leaked onto link %v", l.Name)
		}
	}
}

func TestZeroByteFlow(t *testing.T) {
	n := newNet(t, Options{})
	fired := false
	n.StartFlow(0, 1, 0, FlowTag{}, func(f *Flow) {
		fired = true
		if f.End != f.Start {
			t.Errorf("zero-byte flow took %v", f.End-f.Start)
		}
	})
	n.RunAll()
	if !fired {
		t.Fatal("zero-byte flow never completed")
	}
}

func TestNegativeFlowPanics(t *testing.T) {
	n := newNet(t, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.StartFlow(0, 1, -1, FlowTag{}, nil)
}

type recObserver struct {
	started, ended []FlowID
}

func (r *recObserver) FlowStarted(f *Flow) { r.started = append(r.started, f.ID) }
func (r *recObserver) FlowEnded(f *Flow)   { r.ended = append(r.ended, f.ID) }

func TestObserver(t *testing.T) {
	n := newNet(t, Options{})
	obs := &recObserver{}
	n.AddObserver(obs)
	n.StartFlow(0, 1, 1000, FlowTag{}, nil)
	n.StartFlow(2, 3, 1000, FlowTag{}, nil)
	n.RunAll()
	if len(obs.started) != 2 || len(obs.ended) != 2 {
		t.Fatalf("observer saw %d starts, %d ends", len(obs.started), len(obs.ended))
	}
}

func TestChainedFlows(t *testing.T) {
	// A flow's completion callback starts the next flow — the scheduler
	// pattern used by job phases.
	n := newNet(t, Options{})
	var secondEnd Time
	n.StartFlow(0, 1, 125_000_000, FlowTag{}, func(*Flow) {
		n.StartFlow(1, 2, 125_000_000, FlowTag{}, func(f *Flow) { secondEnd = f.End })
	})
	n.RunAll()
	if !approxDur(secondEnd, 2*time.Second, 5*time.Millisecond) {
		t.Fatalf("chained flow completed at %v, want ~2s", secondEnd)
	}
}

func TestLinkByteConservation(t *testing.T) {
	n := newNet(t, Options{})
	top := n.Top()
	const bytes = 10_000_000
	n.StartFlow(0, 1, bytes, FlowTag{}, nil)
	n.RunAll()
	up := n.LinkTotalBytes(top.ServerUplink(0))
	down := n.LinkTotalBytes(top.ServerDownlink(1))
	if math.Abs(up-bytes) > 1 || math.Abs(down-bytes) > 1 {
		t.Fatalf("link bytes up=%v down=%v, want %v", up, down, bytes)
	}
}

func TestLinkStatsBinning(t *testing.T) {
	n := newNet(t, Options{StatsBinSize: time.Second})
	top := n.Top()
	// 312.5 MB at 1 Gbps = 2.5 s: bins should hold 125 MB, 125 MB, 62.5 MB.
	n.StartFlow(0, 1, 312_500_000, FlowTag{}, nil)
	n.RunAll()
	bins := n.Stats().Bytes(top.ServerUplink(0))
	if len(bins) != 3 {
		t.Fatalf("got %d bins, want 3: %v", len(bins), bins)
	}
	want := []float64{125e6, 125e6, 62.5e6}
	for i, w := range want {
		if math.Abs(bins[i]-w) > 1e3 {
			t.Fatalf("bin %d = %v, want %v", i, bins[i], w)
		}
	}
	util := n.Stats().Utilization(top.ServerUplink(0), 1e9, 3)
	if math.Abs(util[0]-1) > 1e-3 || math.Abs(util[2]-0.5) > 1e-3 {
		t.Fatalf("utilization = %v", util)
	}
}

func TestStatsTrackedLinks(t *testing.T) {
	n := newNet(t, Options{StatsBinSize: time.Second})
	st := n.Stats()
	if st == nil {
		t.Fatal("stats disabled")
	}
	// SmallConfig has <= 512 hosts, so server links are tracked too.
	if !st.Tracked(n.Top().TorUplink(0)) || !st.Tracked(n.Top().ServerUplink(0)) {
		t.Fatal("expected ToR and server links tracked")
	}
	if len(st.TrackedLinks()) == 0 {
		t.Fatal("no tracked links")
	}
}

func TestMinRecomputeIntervalStillCompletes(t *testing.T) {
	n := newNet(t, Options{MinRecomputeInterval: 10 * time.Millisecond})
	var completed int
	for i := 0; i < 20; i++ {
		src := topology.ServerID(i % 8)
		dst := topology.ServerID((i + 13) % 40)
		delay := Time(i) * time.Millisecond
		n.After(delay, func() {
			n.StartFlow(src, dst, 1_000_000, FlowTag{}, func(*Flow) { completed++ })
		})
	}
	n.RunAll()
	if completed != 20 {
		t.Fatalf("completed %d of 20 flows under batched recompute", completed)
	}
}

// Property: with random workloads every flow completes, transfers exactly
// its bytes, and per-link totals equal the sum of the flows that crossed
// them.
func TestConservationProperty(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := New(top, Options{})
		wantLink := make([]float64, top.NumLinks())
		var flows []*Flow
		nf := 3 + r.IntN(12)
		for i := 0; i < nf; i++ {
			src := topology.ServerID(r.IntN(top.NumHosts()))
			dst := topology.ServerID(r.IntN(top.NumHosts()))
			bytes := int64(1000 + r.IntN(50_000_000))
			start := Time(r.IntN(1000)) * time.Millisecond
			n.After(start, func() {
				fl := n.StartFlow(src, dst, bytes, FlowTag{}, nil)
				flows = append(flows, fl)
				for _, l := range fl.Path() {
					wantLink[l] += float64(bytes)
				}
			})
		}
		n.RunAll()
		if n.ActiveFlows() != 0 || int(n.FlowsCompleted()) != nf {
			return false
		}
		for _, fl := range flows {
			if fl.Remaining() != 0 || fl.End < fl.Start {
				return false
			}
		}
		for l := range wantLink {
			got := n.LinkTotalBytes(topology.LinkID(l))
			if math.Abs(got-wantLink[l]) > 1+1e-6*wantLink[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocated link rates never exceed capacity.
func TestCapacityRespectedProperty(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := New(top, Options{})
		nf := 5 + r.IntN(30)
		for i := 0; i < nf; i++ {
			src := topology.ServerID(r.IntN(top.NumHosts()))
			dst := topology.ServerID(r.IntN(top.NumHosts()))
			n.StartFlow(src, dst, int64(1+r.IntN(1_000_000_000)), FlowTag{}, nil)
		}
		n.Run(0) // compute rates only
		for _, l := range top.Links() {
			if n.LinkRateBps(l.ID) > l.CapacityBps*(1+1e-9)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Time, float64) {
		top := topology.MustNew(topology.SmallConfig())
		n := New(top, Options{})
		r := stats.NewRNG(99)
		var lastEnd Time
		for i := 0; i < 50; i++ {
			src := topology.ServerID(r.IntN(top.NumHosts()))
			dst := topology.ServerID(r.IntN(top.NumHosts()))
			bytes := int64(1000 + r.IntN(20_000_000))
			n.After(Time(r.IntN(500))*time.Millisecond, func() {
				n.StartFlow(src, dst, bytes, FlowTag{}, func(f *Flow) {
					if f.End > lastEnd {
						lastEnd = f.End
					}
				})
			})
		}
		n.RunAll()
		return lastEnd, n.TotalBytes()
	}
	e1, b1 := run()
	e2, b2 := run()
	if e1 != e2 || b1 != b2 {
		t.Fatalf("simulation is not deterministic: (%v,%v) vs (%v,%v)", e1, b1, e2, b2)
	}
}

func TestFlowAccessors(t *testing.T) {
	n := newNet(t, Options{})
	f := n.StartFlow(0, 1, 1000, FlowTag{Job: 7, Kind: KindShuffle}, nil)
	if !f.Active() {
		t.Fatal("new flow should be active")
	}
	if f.Duration(n.Now()) != 0 {
		t.Fatal("duration at start should be 0")
	}
	if f.String() == "" || f.Tag.Kind.String() != "shuffle" {
		t.Fatal("string renderings broken")
	}
	n.RunAll()
	if f.Active() || f.Duration(0) != f.End-f.Start {
		t.Fatal("completed flow state wrong")
	}
}

func TestFlowKindStrings(t *testing.T) {
	kinds := []FlowKind{KindOther, KindShuffle, KindExtractRead, KindReplicate,
		KindEvacuate, KindIngest, KindEgress, KindControl}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

// Batched recomputation must conserve per-flow bytes exactly, like the
// exact mode; only the timing granularity differs.
func TestBatchedConservationProperty(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := New(top, Options{MinRecomputeInterval: 20 * time.Millisecond})
		nf := 3 + r.IntN(10)
		for i := 0; i < nf; i++ {
			src := topology.ServerID(r.IntN(top.NumHosts()))
			dst := topology.ServerID(r.IntN(top.NumHosts()))
			bytes := int64(1000 + r.IntN(5_000_000))
			n.After(Time(r.IntN(200))*time.Millisecond, func() {
				n.StartFlow(src, dst, bytes, FlowTag{}, nil)
			})
		}
		n.RunAll()
		return n.ActiveFlows() == 0 && int(n.FlowsCompleted()) == nf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationNeverExceedsCapacity(t *testing.T) {
	n := newNet(t, Options{StatsBinSize: 100 * time.Millisecond})
	top := n.Top()
	// Saturate several paths simultaneously.
	for i := 0; i < 20; i++ {
		n.StartFlow(topology.ServerID(i%40), topology.ServerID((i+40)%80), 50_000_000, FlowTag{}, nil)
	}
	n.RunAll()
	bins := n.Stats().Bins()
	for _, l := range top.Links() {
		if !n.Stats().Tracked(l.ID) {
			continue
		}
		for i, u := range n.Stats().Utilization(l.ID, l.CapacityBps, bins) {
			if u > 1.0001 {
				t.Fatalf("link %s bin %d utilization %v > 1", l.Name, i, u)
			}
		}
	}
}

func TestCancelFlow(t *testing.T) {
	n := newNet(t, Options{})
	obs := &recObserver{}
	n.AddObserver(obs)
	var canceled *Flow
	doneRan := false
	f := n.StartFlow(0, 1, 125_000_000, FlowTag{Job: 3}, func(fl *Flow) {
		doneRan = true
		canceled = fl
	})
	// Cancel halfway through the transfer.
	n.After(500*time.Millisecond, func() { n.Cancel(f) })
	n.RunAll()
	if !doneRan || canceled == nil || !canceled.Canceled {
		t.Fatal("cancel callback not delivered")
	}
	if n.ActiveFlows() != 0 {
		t.Fatal("canceled flow still active")
	}
	// Half the bytes moved.
	moved := canceled.Transferred()
	if math.Abs(moved-62_500_000) > 1e6 {
		t.Fatalf("transferred %v bytes, want ~62.5 MB", moved)
	}
	if len(obs.ended) != 1 {
		t.Fatal("observer missed the canceled flow")
	}
	// Canceling again is a no-op.
	n.Cancel(f)
}

func TestCancelFreesBandwidth(t *testing.T) {
	n := newNet(t, Options{})
	var end Time
	slow := n.StartFlow(0, 1, 125_000_000, FlowTag{Job: 1}, nil)
	n.StartFlow(0, 2, 125_000_000, FlowTag{Job: 2}, func(f *Flow) { end = f.End })
	// At 1s, cancel the first flow: the second jumps from 0.5 to 1 Gbps
	// and finishes its remaining 62.5 MB in 0.5s -> total 1.5s.
	n.After(time.Second, func() { n.Cancel(slow) })
	n.RunAll()
	if !approxDur(end, 1500*time.Millisecond, 5*time.Millisecond) {
		t.Fatalf("survivor completed at %v, want ~1.5s", end)
	}
}

func TestCancelWhere(t *testing.T) {
	n := newNet(t, Options{})
	for i := 0; i < 6; i++ {
		job := 1
		if i >= 4 {
			job = 2
		}
		n.StartFlow(topology.ServerID(i), topology.ServerID(40+i), 1<<30, FlowTag{Job: job}, nil)
	}
	n.Run(0)
	got := n.CancelWhere(func(f *Flow) bool { return f.Tag.Job == 1 })
	if got != 4 {
		t.Fatalf("canceled %d flows, want 4", got)
	}
	if n.ActiveFlows() != 2 {
		t.Fatalf("%d flows still active, want 2", n.ActiveFlows())
	}
}
