package netsim

import (
	"testing"
	"time"
)

func TestSimOrdering(t *testing.T) {
	var s Sim
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", s.Now())
	}
}

func TestSimFIFOAtSameTime(t *testing.T) {
	var s Sim
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSimRunUntil(t *testing.T) {
	var s Sim
	ran := 0
	s.Schedule(1*time.Second, func() { ran++ })
	s.Schedule(5*time.Second, func() { ran++ })
	s.Run(2 * time.Second)
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run(10 * time.Second)
	if ran != 2 || s.Now() != 10*time.Second {
		t.Fatalf("ran=%d now=%v", ran, s.Now())
	}
}

func TestSimEventAtBoundaryRuns(t *testing.T) {
	var s Sim
	ran := false
	s.Schedule(2*time.Second, func() { ran = true })
	s.Run(2 * time.Second)
	if !ran {
		t.Fatal("event exactly at the until boundary should run")
	}
}

func TestSimAfter(t *testing.T) {
	var s Sim
	var at Time
	s.Schedule(time.Second, func() {
		s.After(500*time.Millisecond, func() { at = s.Now() })
	})
	s.RunAll()
	if at != 1500*time.Millisecond {
		t.Fatalf("After fired at %v, want 1.5s", at)
	}
}

func TestSimPastEventsRunNow(t *testing.T) {
	var s Sim
	var at Time
	s.Schedule(2*time.Second, func() {
		s.Schedule(time.Second, func() { at = s.Now() }) // in the past
	})
	s.RunAll()
	if at != 2*time.Second {
		t.Fatalf("past event fired at %v, want 2s", at)
	}
}

func TestSimStop(t *testing.T) {
	var s Sim
	ran := 0
	s.Schedule(1*time.Second, func() { ran++; s.Stop() })
	s.Schedule(2*time.Second, func() { ran++ })
	s.RunAll()
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop: ran=%d", ran)
	}
	s.RunAll() // resumes
	if ran != 2 {
		t.Fatalf("second RunAll should resume: ran=%d", ran)
	}
}
