package netsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"dctraffic/internal/obs"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// digestObserver hashes every flow lifecycle fact determinism covers:
// identity, endpoints, ports, timing, cancellation and the exact float
// bits of the bytes moved. Two runs agree on the digest iff their traces
// are bit-identical.
type digestObserver struct {
	h     [32]byte
	count int
}

func (d *digestObserver) FlowStarted(f *Flow) {}
func (d *digestObserver) FlowEnded(f *Flow) {
	s := fmt.Sprintf("%x|%d %d %d %d %d %d %d %v %016x\n",
		d.h, f.ID, f.Src, f.Dst, f.SrcPort, f.DstPort, f.Start, f.End,
		f.Canceled, math.Float64bits(f.Transferred()))
	d.h = sha256.Sum256([]byte(s))
	d.count++
}

// synthConfig is one randomized small-cluster workload variant.
type synthConfig struct {
	seed      uint64
	batched   bool // 10 ms MinRecomputeInterval (day-scale configuration)
	rackLocal bool // 80% same-rack pairs (work-seeks-bandwidth shape)
	evacuate  bool // periodic CancelWhere storms with bulk restarts
}

// runSynthetic drives a closed-loop random workload: an initial wave of
// flows whose completion callbacks chain replacement flows (so RNG draws
// happen in event order, exercising the canonical merge order), plus
// optional evacuation storms. Returns the trace digest.
func runSynthetic(t *testing.T, sc synthConfig, opts Options) (string, int) {
	t.Helper()
	top := topology.MustNew(topology.SmallConfig())
	if sc.batched {
		opts.MinRecomputeInterval = 10 * time.Millisecond
	}
	n := New(top, opts)
	d := &digestObserver{}
	n.AddObserver(d)
	r := stats.NewRNG(sc.seed)
	hosts := top.NumHosts()
	servers := top.NumServers()
	spr := top.Config().ServersPerRack

	pair := func() (topology.ServerID, topology.ServerID) {
		if sc.rackLocal && r.Float64() < 0.8 {
			rack := r.IntN(top.NumRacks())
			src := topology.ServerID(rack*spr + r.IntN(spr))
			dst := topology.ServerID(rack*spr + r.IntN(spr))
			return src, dst
		}
		return topology.ServerID(r.IntN(hosts)), topology.ServerID(r.IntN(hosts))
	}
	var chain func(depth, job int) func(*Flow)
	chain = func(depth, job int) func(*Flow) {
		if depth <= 0 {
			return nil
		}
		return func(f *Flow) {
			if f.Canceled {
				return
			}
			src, dst := pair()
			n.StartFlow(src, dst, int64(1+r.IntN(4_000_000)), FlowTag{Job: job}, chain(depth-1, job))
		}
	}
	const initial = 400
	for i := 0; i < initial; i++ {
		i := i
		n.After(Time(r.IntN(300))*time.Millisecond, func() {
			src, dst := pair()
			n.StartFlow(src, dst, int64(1+r.IntN(6_000_000)), FlowTag{Job: i % 7}, chain(2, i%7))
		})
	}
	if sc.evacuate {
		// Periodic evacuation: reap one job's transfers, then bulk-restart
		// them as evacuation traffic off the victim server.
		for k := 0; k < 8; k++ {
			k := k
			n.After(Time(150+100*k)*time.Millisecond, func() {
				job := k % 7
				n.CancelWhere(func(f *Flow) bool { return f.Tag.Job == job && f.Tag.Kind != KindEvacuate })
				victim := topology.ServerID(r.IntN(servers))
				for i := 0; i < 40; i++ {
					dst := topology.ServerID(r.IntN(servers))
					n.StartFlow(victim, dst, int64(1+r.IntN(2_000_000)),
						FlowTag{Job: job, Kind: KindEvacuate}, chain(1, job))
				}
			})
		}
	}
	n.RunAll()
	if got := d.count; got < initial {
		t.Fatalf("workload too small: %d flows ended", got)
	}
	return hex.EncodeToString(d.h[:]), d.count
}

// TestParallelMatchesSequential is the property test for the three-rule
// determinism contract: on ≥20 random small-cluster workloads — churny,
// rack-local, evacuation-heavy, exact and batched — the parallel engine
// at worker counts {1, 2, 3, NumCPU} produces traces bit-identical to
// Options.Sequential.
func TestParallelMatchesSequential(t *testing.T) {
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	for seed := uint64(1); seed <= 20; seed++ {
		sc := synthConfig{
			seed:      seed,
			batched:   seed%2 == 0,
			rackLocal: seed%3 != 0,
			evacuate:  seed%4 == 0 || seed >= 16, // ≥ 9 evacuation-heavy variants
		}
		want, wantN := runSynthetic(t, sc, Options{Sequential: true})
		for _, w := range workerCounts {
			got, gotN := runSynthetic(t, sc, Options{Workers: w})
			if got != want {
				t.Fatalf("seed %d (batched=%v rackLocal=%v evacuate=%v): workers=%d digest %s != sequential %s (%d vs %d flows)",
					seed, sc.batched, sc.rackLocal, sc.evacuate, w, got, want, gotN, wantN)
			}
		}
	}
}

// chanExec is a minimal external executor: a fixed worker set draining
// one FIFO, the same shape internal/fleet injects via Options.Exec.
type chanExec struct{ tasks chan func() }

func newChanExec(workers int) *chanExec {
	e := &chanExec{tasks: make(chan func(), 1024)}
	for i := 0; i < workers; i++ {
		go func() {
			for fn := range e.tasks {
				fn()
			}
		}()
	}
	return e
}

func (e *chanExec) Go(fn func()) { e.tasks <- fn }

func (e *chanExec) close() { close(e.tasks) }

// TestExecutorMatchesSequential extends the determinism property to the
// external-executor mode: phase spans scheduled on a shared pool must
// produce traces bit-identical to the sequential path, at several
// worker counts including workers exceeding the executor's own.
func TestExecutorMatchesSequential(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		sc := synthConfig{
			seed:      seed,
			batched:   seed%2 == 0,
			rackLocal: seed%3 != 0,
			evacuate:  seed%4 == 0,
		}
		want, wantN := runSynthetic(t, sc, Options{Sequential: true})
		for _, w := range []int{2, 3, runtime.NumCPU() + 1} {
			ex := newChanExec(2)
			got, gotN := runSynthetic(t, sc, Options{Workers: w, Exec: ex})
			ex.close()
			if got != want {
				t.Fatalf("seed %d: exec mode workers=%d digest %s != sequential %s (%d vs %d flows)",
					seed, w, got, want, gotN, wantN)
			}
		}
	}
}

// TestExecutorEngineEngages mirrors TestParallelEngineEngages for the
// executor mode: the same above-threshold workload must cross phase
// barriers when spans run on an external pool.
func TestExecutorEngineEngages(t *testing.T) {
	ex := newChanExec(2)
	defer ex.close()
	top := topology.MustNew(topology.SmallConfig())
	n := New(top, Options{Workers: 2, Exec: ex})
	r := stats.NewRNG(7)
	for i := 0; i < 600; i++ {
		src := topology.ServerID(r.IntN(top.NumHosts()))
		dst := topology.ServerID(r.IntN(top.NumHosts()))
		n.After(Time(r.IntN(50))*time.Millisecond, func() {
			n.StartFlow(src, dst, int64(1+r.IntN(8_000_000)), FlowTag{}, nil)
		})
	}
	n.RunAll()
	if n.BarrierWaits() == 0 {
		t.Fatal("executor-mode engine never dispatched a phase")
	}
}

// TestDefaultWorkersSingleProcClamp pins the default-workers heuristic:
// on a single-proc box the default resolves to exactly one worker, the
// engine never arms, and no phase barrier is ever paid — while an
// explicit Options.Workers is honored unchanged.
func TestDefaultWorkersSingleProcClamp(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	if got := DefaultWorkers(); got != 1 {
		t.Fatalf("DefaultWorkers at GOMAXPROCS=1 = %d, want 1", got)
	}
	top := topology.MustNew(topology.SmallConfig())
	n := New(top, Options{})
	if n.workersN != 1 {
		t.Fatalf("default workersN at GOMAXPROCS=1 = %d, want 1", n.workersN)
	}
	if n2 := New(top, Options{Workers: 3}); n2.workersN != 3 {
		t.Fatalf("explicit Workers=3 resolved to %d, want 3 (must be honored)", n2.workersN)
	}

	// The exported gauge agrees with the resolution.
	reg := obs.NewRegistry()
	n.Instrument(reg)
	if v := reg.Snapshot().Value("netsim.parallel.workers"); v != 1 {
		t.Fatalf("netsim.parallel.workers = %v, want 1", v)
	}

	// Digest identity and zero barriers: the default path at one proc
	// is the sequential path.
	sc := synthConfig{seed: 5, rackLocal: true}
	want, _ := runSynthetic(t, sc, Options{Sequential: true})
	got, _ := runSynthetic(t, sc, Options{})
	if got != want {
		t.Fatalf("default at GOMAXPROCS=1 digest %s != sequential %s", got, want)
	}
	r := stats.NewRNG(7)
	for i := 0; i < 600; i++ {
		src := topology.ServerID(r.IntN(top.NumHosts()))
		dst := topology.ServerID(r.IntN(top.NumHosts()))
		n.After(Time(r.IntN(50))*time.Millisecond, func() {
			n.StartFlow(src, dst, int64(1+r.IntN(8_000_000)), FlowTag{}, nil)
		})
	}
	n.RunAll()
	if n.BarrierWaits() != 0 {
		t.Fatalf("default single-proc run crossed %d barriers, want 0", n.BarrierWaits())
	}
}

// TestParallelEngineEngages guards against the pool silently never
// running: a workload above the inline thresholds must cross at least
// one phase barrier when workers > 1.
func TestParallelEngineEngages(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	n := New(top, Options{Workers: 2})
	r := stats.NewRNG(7)
	for i := 0; i < 600; i++ {
		src := topology.ServerID(r.IntN(top.NumHosts()))
		dst := topology.ServerID(r.IntN(top.NumHosts()))
		n.After(Time(r.IntN(50))*time.Millisecond, func() {
			n.StartFlow(src, dst, int64(1+r.IntN(8_000_000)), FlowTag{}, nil)
		})
	}
	n.RunAll()
	if n.BarrierWaits() == 0 {
		t.Fatal("parallel engine never dispatched a phase; inline thresholds swallowed the workload")
	}
	if n.Windows() == 0 {
		t.Fatal("no synchronization windows recorded")
	}
}

// TestSequentialHasNoBarriers pins the A/B reference path: with
// Sequential set the pool must never start, whatever the workload.
func TestSequentialHasNoBarriers(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	n := New(top, Options{Sequential: true, Workers: 8})
	r := stats.NewRNG(7)
	for i := 0; i < 600; i++ {
		src := topology.ServerID(r.IntN(top.NumHosts()))
		dst := topology.ServerID(r.IntN(top.NumHosts()))
		n.After(Time(r.IntN(50))*time.Millisecond, func() {
			n.StartFlow(src, dst, int64(1+r.IntN(8_000_000)), FlowTag{}, nil)
		})
	}
	n.RunAll()
	if n.BarrierWaits() != 0 {
		t.Fatalf("sequential path crossed %d barriers", n.BarrierWaits())
	}
}
