// Package netsim is a discrete-event, flow-level network simulator.
//
// It models the cluster fabric as directed links with capacities
// (internal/topology) and active transfers as fluid flows that share link
// bandwidth max-min fairly. This is the right granularity for reproducing
// the paper: every reported quantity — byte counts between server pairs,
// flow durations and rates, link utilization — is a fluid-level quantity.
// Packet-level artifacts the paper explicitly did not observe (incast
// collapse) are modeled by their preconditions, not by simulating TCP.
//
// The event loop itself is single-goroutine and deterministic: all
// behaviour is a pure function of the scheduled events and the seed of
// whatever workload drives it. Network optionally parallelizes the work
// *inside* each allocation step across per-rack event domains (see
// domain.go); by the three-rule determinism contract the results are
// bit-identical at any worker count, so the parallel path preserves this
// guarantee.
package netsim

import (
	"time"
)

// Time is simulation time, expressed as an offset from the start of the
// run. Using time.Duration gives nanosecond resolution over ±292 years,
// comfortably covering multi-day runs.
type Time = time.Duration

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break for FIFO ordering of simultaneous events
	fn  func()
}

// eventQueue is a min-heap over (at, seq), stored by value: Schedule
// appends into the backing array instead of allocating a node per event,
// so the steady-state cost of scheduling is a couple of sift swaps.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	q.siftUp(len(*q) - 1)
}

// pop removes and returns the minimum event. The vacated slot is zeroed
// so the queue does not retain the callback closure.
func (q *eventQueue) pop() event {
	old := *q
	n := len(old) - 1
	e := old[0]
	old[0] = old[n]
	old[n] = event{}
	*q = old[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return e
}

func (q eventQueue) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (q eventQueue) siftDown(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
}

// Sim is the discrete-event core: a clock and an ordered event queue.
// Embed or compose it; the zero value is ready to use.
type Sim struct {
	now       Time
	queue     eventQueue
	nextSeq   uint64
	processed uint64
	stopped   bool
}

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// EventsProcessed reports the cumulative number of events executed.
func (s *Sim) EventsProcessed() uint64 { return s.processed }

// Schedule runs fn at the given absolute simulation time. Events scheduled
// in the past run at the current time (immediately, in order). Events at
// equal times run in scheduling order.
func (s *Sim) Schedule(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.queue.push(event{at: at, seq: s.nextSeq, fn: fn})
	s.nextSeq++
}

// After runs fn after the given delay.
func (s *Sim) After(d Time, fn func()) { s.Schedule(s.now+d, fn) }

// Run processes events until the queue is empty or the clock would pass
// until; it then sets the clock to until. Events exactly at until run.
func (s *Sim) Run(until Time) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		if s.queue[0].at > until {
			break
		}
		e := s.queue.pop()
		s.now = e.at
		s.processed++
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll processes every queued event regardless of time. Useful in tests.
func (s *Sim) RunAll() {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		e := s.queue.pop()
		s.now = e.at
		s.processed++
		e.fn()
	}
}

// Stop makes the current Run/RunAll return after the executing event.
func (s *Sim) Stop() { s.stopped = true }

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }
