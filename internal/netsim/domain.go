package netsim

import (
	"math"
	"slices"

	"dctraffic/internal/topology"
)

// Event domains partition the simulation's mutable per-flow and per-link
// state by rack, mirroring the paper's work-seeks-bandwidth locality:
// most flows live entirely inside one rack, so most of each allocation
// step's work touches exactly one domain and can run concurrently with
// every other domain's.
//
// Domain 0 (the core domain) owns the agg, core and external links plus
// every flow that crosses the rack boundary; domain r+1 owns rack r's
// server up/downlinks and ToR up/downlinks plus its intra-rack flows.
// The agg/core layer is the only coupling boundary between rack domains,
// and rates on it change only at allocation steps (the fluid model is
// piecewise-constant between recomputes), so a full inter-step interval
// is a safe conservative lookahead window: inside it, domains interact
// only through state frozen at the previous barrier.
//
// Each step is a synchronization window that follows the three-rule
// determinism contract (see internal/core/parallel.go and DESIGN.md §9):
//
//  1. data-driven decomposition — the domain partition is a pure
//     function of the topology and each flow's endpoints, never of
//     goroutine timing;
//  2. disjoint slots — a phase writes only state owned by the domain
//     (or component) it was handed: flow progress, owned link bytes,
//     and the domain's float partials;
//  3. fixed-order merges — the coordinator folds the slots in domain
//     (or component) id order on one goroutine: totalBytes partials,
//     rate publication, timer arming.
//
// Completion detection and callback delivery stay on the coordinator in
// the sequential path's active-scan order (see completeFinished): the
// workload layers draw RNG state inside completion callbacks, so their
// order is trajectory-defining and must not depend on the partition.
//
// Every phase computes the same floats in the same order whether it ran
// inline or on a worker, so same-seed traces are bit-identical at any
// worker count, including against Options.Sequential.
type domain struct {
	// flows owned by this domain. Maintained by StartFlow/retire on the
	// coordinator goroutine only; order is deterministic (insertion with
	// swap-removal), which fixes this domain's float evaluation order.
	flows []*Flow

	// activeLinks lists owned links with a nonzero allocated rate
	// (Network.linkActivePos holds each link's index here). Maintained
	// by publish on the coordinator goroutine only.
	activeLinks []topology.LinkID

	// clock is the domain's local time: how far flow progress and link
	// byte accrual have advanced. Domains advance in lockstep to the
	// window barrier, so clock equals Network.lastAdvance between
	// phases; it exists per-domain so a phase needs no shared reads.
	clock Time

	// Per-window output slots, written by the owning phase and read by
	// the coordinator after the phase barrier.
	bytesPartial float64 // bytes moved this window (advance phase)
	minCompl     float64 // earliest projected completion in seconds (min phase)
}

// coreDomain owns the shared fabric: agg/core/external links and every
// flow whose path leaves its source rack.
const coreDomain = 0

// buildDomains sizes the domain set (racks + 1) and maps every link to
// its owner. The mapping is total: links not claimed by a rack default
// to the core domain.
func (n *Network) buildDomains(top *topology.Topology) {
	n.doms = make([]domain, top.NumRacks()+1)
	n.linkDomain = make([]int32, top.NumLinks())
	for s := 0; s < top.NumServers(); s++ {
		sid := topology.ServerID(s)
		d := int32(top.Rack(sid)) + 1
		n.linkDomain[top.ServerUplink(sid)] = d
		n.linkDomain[top.ServerDownlink(sid)] = d
	}
	for r := 0; r < top.NumRacks(); r++ {
		rid := topology.RackID(r)
		for _, l := range top.TorUplinks(rid) {
			n.linkDomain[l] = int32(r) + 1
		}
		for _, l := range top.TorDownlinks(rid) {
			n.linkDomain[l] = int32(r) + 1
		}
	}
}

// flowDomain assigns a flow's owner: its rack when the transfer stays
// inside one rack (including loopback), the core domain otherwise.
func (n *Network) flowDomain(src, dst topology.ServerID) int32 {
	if r := n.top.Rack(src); r >= 0 && (src == dst || n.top.Rack(dst) == r) {
		return int32(r) + 1
	}
	return coreDomain
}

// advanceDomain accrues flow progress and owned-link bytes from the
// domain clock to now under the rates frozen at the last barrier. Writes
// only domain-owned state plus per-link slots of owned links; the moved
// bytes land in the domain's partial, folded in domain order afterwards.
func (n *Network) advanceDomain(d *domain, now Time, dt float64) {
	for _, l := range d.activeLinks {
		r := n.linkRateB[l]
		n.linkBytes[l] += r * dt
		if n.stats != nil {
			n.stats.record(l, d.clock, now, r)
		}
	}
	part := 0.0
	for _, f := range d.flows {
		if f.rate > 0 {
			moved := f.rate * dt
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			part += moved
		}
	}
	d.bytesPartial = part
	d.clock = now
}

// minDomain computes the earliest projected completion among the
// domain's flows. min is order-insensitive, so the merged minimum is
// value-identical to a flat scan.
func (n *Network) minDomain(d *domain) {
	best := math.Inf(1)
	for _, f := range d.flows {
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < best {
				best = t
			}
		}
	}
	d.minCompl = best
}

// component is one link-sharing-connected set of dirty links, the unit
// of parallel max-min re-solving. Components are link- and flow-disjoint
// by construction, so concurrent solves write disjoint slots of the
// shared linkAlloc/linkUnfrozen arrays and disjoint flows' rates.
type component struct {
	links       []topology.LinkID // ascending id order, closed under link sharing
	cand        []topology.LinkID // bottleneck-candidate scratch, owned by this solve
	unfrozen    int               // distinct flows on links
	multiDomain bool              // spans more than one event domain
}

// gatherComponents consumes the dirty-link seeds and returns the
// connected components (over link sharing) containing them, each closed
// and sorted. Seeds are sorted first so component enumeration order —
// and therefore every downstream merge — is canonical.
func (n *Network) gatherComponents() []component {
	if len(n.seedLinks) == 0 {
		return nil
	}
	slices.Sort(n.seedLinks)
	n.compGen++
	gen := n.compGen
	comps := n.comps[:0]
	for _, seed := range n.seedLinks {
		n.seedMark[seed] = false
		if n.linkComp[seed] == gen {
			continue
		}
		if len(comps) < cap(comps) {
			comps = comps[:len(comps)+1]
			c := &comps[len(comps)-1]
			c.links = c.links[:0]
			c.unfrozen = 0
			c.multiDomain = false
		} else {
			comps = append(comps, component{})
		}
		c := &comps[len(comps)-1]
		n.linkComp[seed] = gen
		c.links = append(c.links, seed)
		dom := n.linkDomain[seed]
		// Close over link sharing: c.links doubles as the BFS frontier.
		for i := 0; i < len(c.links); i++ {
			l := c.links[i]
			if n.linkDomain[l] != dom {
				c.multiDomain = true
			}
			for _, f := range n.linkFlows[l] {
				if f.mark == gen {
					continue
				}
				f.mark = gen
				f.frozen = false
				c.unfrozen++
				for _, pl := range f.path {
					if n.linkComp[pl] != gen {
						n.linkComp[pl] = gen
						c.links = append(c.links, pl)
					}
				}
			}
		}
		// Canonical link order keeps bottleneck tie-breaking (and
		// therefore floating-point rounding) identical to a full
		// re-solve.
		slices.Sort(c.links)
	}
	n.seedLinks = n.seedLinks[:0]
	n.comps = comps
	return comps
}

// solveComp re-solves one component's max-min shares using its own
// candidate scratch, so component solves are safe to run concurrently.
func (n *Network) solveComp(c *component) {
	c.cand = n.solve(c.links, c.unfrozen, c.cand)
}
