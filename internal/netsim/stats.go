package netsim

import (
	"dctraffic/internal/topology"
)

// LinkStats accumulates per-link byte counts in fixed time bins for a
// tracked subset of links. These are the simulator's equivalent of SNMP
// interface byte counters: congestion analysis derives utilization from
// them, and tomography uses them as its only input.
//
// Storage is a dense per-link slice (indexed by LinkID, nil for
// untracked links) rather than a map: the advance phase records links
// concurrently from per-rack domain workers, and distinct slice slots
// are safely disjoint where concurrent map writes — even to distinct
// keys — are not.
type LinkStats struct {
	binSize Time
	tracked []bool      // indexed by LinkID
	bytes   [][]float64 // bytes per bin, indexed by LinkID; nil if untracked
}

func newLinkStats(binSize Time, numLinks int, links []topology.LinkID) *LinkStats {
	s := &LinkStats{
		binSize: binSize,
		tracked: make([]bool, numLinks),
		bytes:   make([][]float64, numLinks),
	}
	for _, l := range links {
		s.tracked[l] = true
	}
	return s
}

// BinSize reports the bin width.
func (s *LinkStats) BinSize() Time { return s.binSize }

// Tracked reports whether a link is being recorded.
func (s *LinkStats) Tracked(id topology.LinkID) bool {
	return int(id) < len(s.tracked) && s.tracked[id]
}

// TrackedLinks returns the ids of all recorded links in id order.
func (s *LinkStats) TrackedLinks() []topology.LinkID {
	var out []topology.LinkID
	for id, ok := range s.tracked {
		if ok {
			out = append(out, topology.LinkID(id))
		}
	}
	return out
}

// record accrues rate bytes/sec over [from, to) into the link's bins.
func (s *LinkStats) record(id topology.LinkID, from, to Time, rateB float64) {
	if !s.tracked[id] {
		return
	}
	bins := s.bytes[id]
	for t := from; t < to; {
		bin := int(t / s.binSize)
		binEnd := Time(bin+1) * s.binSize
		if binEnd > to {
			binEnd = to
		}
		for len(bins) <= bin {
			bins = append(bins, 0)
		}
		bins[bin] += rateB * (binEnd - t).Seconds()
		t = binEnd
	}
	s.bytes[id] = bins
}

// Bytes returns the per-bin byte counts of a link (shared slice; do not
// modify). Untracked links return nil.
func (s *LinkStats) Bytes(id topology.LinkID) []float64 {
	if int(id) >= len(s.bytes) {
		return nil
	}
	return s.bytes[id]
}

// Bins reports the number of bins recorded so far across all links.
func (s *LinkStats) Bins() int {
	n := 0
	for _, b := range s.bytes {
		if len(b) > n {
			n = len(b)
		}
	}
	return n
}

// Utilization converts a link's byte bins to utilization in [0, ~1]
// against the given capacity (bits/sec). The result has exactly bins
// entries, zero-padded beyond recorded data.
func (s *LinkStats) Utilization(id topology.LinkID, capacityBps float64, bins int) []float64 {
	out := make([]float64, bins)
	capB := capacityBps / 8 * s.binSize.Seconds()
	if capB <= 0 {
		return out
	}
	for i, b := range s.Bytes(id) {
		if i >= bins {
			break
		}
		out[i] = b / capB
	}
	return out
}
