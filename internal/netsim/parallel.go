package netsim

import (
	"runtime"
	"sync"
)

// DefaultWorkers resolves a zero Options.Workers: GOMAXPROCS, clamped
// to 1 on a single-proc box so the engine never arms — and the phase
// barriers are never paid — when there is no parallelism to buy with
// them (BENCH_netsim.json showed the barrier path costing ~7% on a
// 1-CPU host before the clamp was made explicit). An explicit
// Options.Workers is always honored unchanged, including Workers > 1
// on one proc (the A/B validation path).
func DefaultWorkers() int {
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return p
	}
	return 1
}

// parPhase identifies which per-domain (or per-component) phase the pool
// should run. Phases never overlap: the coordinator dispatches one,
// waits for the barrier, and merges before dispatching the next.
type parPhase uint8

const (
	phaseAdvance parPhase = 1 + iota // advanceDomain over domains
	phaseMin                         // minDomain over domains
	phaseSolve                       // solveComp over components
)

// Inline thresholds: below this much work the coordinator runs the phase
// itself rather than paying ~µs of barrier latency. The choice is
// data-driven (a function of simulation state identical at any worker
// count) and both execution modes compute the same floats in the same
// order, so the cutoffs cannot affect results — only wall clock.
const (
	parMinPhaseWork = 192 // active flows + active links for the domain phases
	parMinSolveWork = 96  // unfrozen flows across ≥2 components for the solve phase
)

// Executor runs functions on a caller-provided worker pool. A batch
// executor (internal/fleet) injects one shared Executor into many
// concurrent Networks via Options.Exec so their phase spans compete for
// a single core budget instead of each Network spawning its own
// goroutines. Go must run fn exactly once, asynchronously, and must
// never drop it. The closures the engine submits never block on the
// Executor themselves, so a bounded pool cannot deadlock on them.
type Executor interface {
	Go(fn func())
}

// parEngine fans a step's phases across a fixed pool of workers. Each
// worker owns a static contiguous range of domains (and of components in
// the solve phase), so a dispatch is one channel send per worker plus a
// WaitGroup barrier — no per-domain handoffs. Workers start lazily at
// the first dispatch and live until the enclosing Network.Run returns.
//
// With an external Executor the engine owns no goroutines: a dispatch
// submits one span closure per worker slot and waits on the same
// barrier. Both modes run identical spans and merge on the coordinator
// in the same order, so results are bit-identical either way.
type parEngine struct {
	n       *Network
	workers int
	exec    Executor        // nil → dedicated channel workers below
	cmd     []chan parPhase // channel mode only
	wg      sync.WaitGroup
	started bool

	// Phase arguments: written by the coordinator before the dispatch,
	// read by workers after the channel receive or Executor.Go call
	// (either of which orders the writes), and never touched while the
	// pool is running.
	now   Time
	dt    float64
	comps []component
}

func newParEngine(n *Network, workers int, exec Executor) *parEngine {
	e := &parEngine{n: n, workers: workers, exec: exec}
	if exec == nil {
		e.cmd = make([]chan parPhase, workers)
	}
	return e
}

// dispatch runs one phase across the pool and blocks until every worker
// has finished it.
func (e *parEngine) dispatch(p parPhase) {
	e.n.barrierWaits++
	if e.exec != nil {
		e.wg.Add(e.workers)
		for w := 0; w < e.workers; w++ {
			w := w
			e.exec.Go(func() {
				e.runPhase(p, w)
				e.wg.Done()
			})
		}
		e.wg.Wait()
		return
	}
	if !e.started {
		e.started = true
		for w := range e.cmd {
			c := make(chan parPhase, 1)
			e.cmd[w] = c
			go e.worker(w, c)
		}
	}
	e.wg.Add(len(e.cmd))
	for _, c := range e.cmd {
		c <- p
	}
	e.wg.Wait()
}

// stop terminates the worker goroutines (if any started). A no-op in
// executor mode, which owns no goroutines.
func (e *parEngine) stop() {
	if !e.started {
		return
	}
	e.started = false
	for _, c := range e.cmd {
		close(c)
	}
}

// span is worker w's static share of m items: the half-open index range
// [lo, hi). Contiguous ranges keep each worker on adjacent domains.
func (e *parEngine) span(m, w int) (lo, hi int) {
	k := e.workers
	return m * w / k, m * (w + 1) / k
}

// runPhase executes worker w's span of phase p. The spans partition the
// domain (or component) slice, so concurrent calls with distinct w touch
// disjoint state.
func (e *parEngine) runPhase(p parPhase, w int) {
	n := e.n
	switch p {
	case phaseAdvance:
		lo, hi := e.span(len(n.doms), w)
		for i := lo; i < hi; i++ {
			n.advanceDomain(&n.doms[i], e.now, e.dt)
		}
	case phaseMin:
		lo, hi := e.span(len(n.doms), w)
		for i := lo; i < hi; i++ {
			n.minDomain(&n.doms[i])
		}
	case phaseSolve:
		lo, hi := e.span(len(e.comps), w)
		for i := lo; i < hi; i++ {
			n.solveComp(&e.comps[i])
		}
	}
}

func (e *parEngine) worker(w int, c chan parPhase) {
	for p := range c {
		e.runPhase(p, w)
		e.wg.Done()
	}
}

// startEngine arms the worker pool for a Run if the options ask for one.
// With Sequential set (or one worker, or a topology too small to split)
// the engine stays nil and every phase runs inline — the A/B reference
// path, bit-identical by the contract above.
func (n *Network) startEngine() {
	if n.eng != nil || n.opts.Sequential || n.workersN <= 1 || len(n.doms) < 2 {
		return
	}
	n.eng = newParEngine(n, n.workersN, n.opts.Exec)
}

// stopEngine tears the pool down at the end of a Run.
func (n *Network) stopEngine() {
	if n.eng != nil {
		n.eng.stop()
		n.eng = nil
	}
}

// Run processes events as Sim.Run does, with the allocation-step phases
// fanned across the configured worker pool for the duration of the call.
// Results are bit-identical to the sequential path at any worker count.
func (n *Network) Run(until Time) {
	n.startEngine()
	defer n.stopEngine()
	n.Sim.Run(until)
}

// RunAll processes every queued event regardless of time, with the same
// pool lifecycle as Run.
func (n *Network) RunAll() {
	n.startEngine()
	defer n.stopEngine()
	n.Sim.RunAll()
}

// Windows reports the number of synchronization windows (allocation
// steps) executed so far.
func (n *Network) Windows() int64 { return n.windows }

// BarrierWaits reports the cumulative number of phase barriers the
// coordinator has waited on (zero when every phase ran inline).
func (n *Network) BarrierWaits() int64 { return n.barrierWaits }
