package netsim

import (
	"sync"
)

// parPhase identifies which per-domain (or per-component) phase the pool
// should run. Phases never overlap: the coordinator dispatches one,
// waits for the barrier, and merges before dispatching the next.
type parPhase uint8

const (
	phaseAdvance parPhase = 1 + iota // advanceDomain over domains
	phaseMin                         // minDomain over domains
	phaseSolve                       // solveComp over components
)

// Inline thresholds: below this much work the coordinator runs the phase
// itself rather than paying ~µs of barrier latency. The choice is
// data-driven (a function of simulation state identical at any worker
// count) and both execution modes compute the same floats in the same
// order, so the cutoffs cannot affect results — only wall clock.
const (
	parMinPhaseWork = 192 // active flows + active links for the domain phases
	parMinSolveWork = 96  // unfrozen flows across ≥2 components for the solve phase
)

// parEngine fans a step's phases across a fixed pool of workers. Each
// worker owns a static contiguous range of domains (and of components in
// the solve phase), so a dispatch is one channel send per worker plus a
// WaitGroup barrier — no per-domain handoffs. Workers start lazily at
// the first dispatch and live until the enclosing Network.Run returns.
type parEngine struct {
	n       *Network
	cmd     []chan parPhase
	wg      sync.WaitGroup
	started bool

	// Phase arguments: written by the coordinator before the dispatch,
	// read by workers after the channel receive (which orders the
	// writes), and never touched while the pool is running.
	now   Time
	dt    float64
	comps []component
}

func newParEngine(n *Network, workers int) *parEngine {
	return &parEngine{n: n, cmd: make([]chan parPhase, workers)}
}

// dispatch runs one phase across the pool and blocks until every worker
// has finished it.
func (e *parEngine) dispatch(p parPhase) {
	if !e.started {
		e.started = true
		for w := range e.cmd {
			c := make(chan parPhase, 1)
			e.cmd[w] = c
			go e.worker(w, c)
		}
	}
	e.n.barrierWaits++
	e.wg.Add(len(e.cmd))
	for _, c := range e.cmd {
		c <- p
	}
	e.wg.Wait()
}

// stop terminates the worker goroutines (if any started).
func (e *parEngine) stop() {
	if !e.started {
		return
	}
	e.started = false
	for _, c := range e.cmd {
		close(c)
	}
}

// span is worker w's static share of m items: the half-open index range
// [lo, hi). Contiguous ranges keep each worker on adjacent domains.
func (e *parEngine) span(m, w int) (lo, hi int) {
	k := len(e.cmd)
	return m * w / k, m * (w + 1) / k
}

func (e *parEngine) worker(w int, c chan parPhase) {
	for p := range c {
		n := e.n
		switch p {
		case phaseAdvance:
			lo, hi := e.span(len(n.doms), w)
			for i := lo; i < hi; i++ {
				n.advanceDomain(&n.doms[i], e.now, e.dt)
			}
		case phaseMin:
			lo, hi := e.span(len(n.doms), w)
			for i := lo; i < hi; i++ {
				n.minDomain(&n.doms[i])
			}
		case phaseSolve:
			lo, hi := e.span(len(e.comps), w)
			for i := lo; i < hi; i++ {
				n.solveComp(&e.comps[i])
			}
		}
		e.wg.Done()
	}
}

// startEngine arms the worker pool for a Run if the options ask for one.
// With Sequential set (or one worker, or a topology too small to split)
// the engine stays nil and every phase runs inline — the A/B reference
// path, bit-identical by the contract above.
func (n *Network) startEngine() {
	if n.eng != nil || n.opts.Sequential || n.workersN <= 1 || len(n.doms) < 2 {
		return
	}
	n.eng = newParEngine(n, n.workersN)
}

// stopEngine tears the pool down at the end of a Run.
func (n *Network) stopEngine() {
	if n.eng != nil {
		n.eng.stop()
		n.eng = nil
	}
}

// Run processes events as Sim.Run does, with the allocation-step phases
// fanned across the configured worker pool for the duration of the call.
// Results are bit-identical to the sequential path at any worker count.
func (n *Network) Run(until Time) {
	n.startEngine()
	defer n.stopEngine()
	n.Sim.Run(until)
}

// RunAll processes every queued event regardless of time, with the same
// pool lifecycle as Run.
func (n *Network) RunAll() {
	n.startEngine()
	defer n.stopEngine()
	n.Sim.RunAll()
}

// Windows reports the number of synchronization windows (allocation
// steps) executed so far.
func (n *Network) Windows() int64 { return n.windows }

// BarrierWaits reports the cumulative number of phase barriers the
// coordinator has waited on (zero when every phase ran inline).
func (n *Network) BarrierWaits() int64 { return n.barrierWaits }
