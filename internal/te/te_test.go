package te

import (
	"math"
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

func fabric(t *testing.T) *Fabric {
	t.Helper()
	f, err := NewFabric(8, 4, 10e9)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFabricValidation(t *testing.T) {
	for _, c := range [][3]float64{{0, 4, 1e9}, {8, 0, 1e9}, {8, 4, 0}} {
		if _, err := NewFabric(int(c[0]), int(c[1]), c[2]); err == nil {
			t.Errorf("fabric %v should be rejected", c)
		}
	}
}

func TestLinkIndexing(t *testing.T) {
	f := fabric(t)
	seen := map[int]bool{}
	for r := 0; r < f.Racks; r++ {
		for a := 0; a < f.Aggs; a++ {
			for _, l := range []int{f.upLink(r, a), f.downLink(r, a)} {
				if l < 0 || l >= f.numLinks() || seen[l] {
					t.Fatalf("bad or duplicate link index %d", l)
				}
				seen[l] = true
			}
		}
	}
	if len(seen) != f.numLinks() {
		t.Fatalf("indexed %d links, want %d", len(seen), f.numLinks())
	}
}

// uniformFlows builds a steady all-to-all workload.
func uniformFlows(f *Fabric, n int, bytes float64, seed uint64) []Flow {
	r := stats.NewRNG(seed)
	out := make([]Flow, 0, n)
	for i := 0; i < n; i++ {
		src := r.IntN(f.Racks)
		dst := (src + 1 + r.IntN(f.Racks-1)) % f.Racks
		start := netsim.Time(r.IntN(10000)) * time.Millisecond
		out = append(out, Flow{
			SrcRack: src, DstRack: dst, Bytes: bytes,
			Start: start, End: start + time.Second,
			Job: i % 20,
		})
	}
	return out
}

func TestReplayConservesBytes(t *testing.T) {
	f := fabric(t)
	flows := uniformFlows(f, 200, 1e6, 1)
	sel := &RandomChoice{Fabric: f, RNG: stats.NewRNG(2)}
	res := Replay(f, flows, sel, time.Second, 12*time.Second)
	if res.Flows != 200 {
		t.Fatalf("flows = %d", res.Flows)
	}
	if res.MaxUtilization <= 0 {
		t.Fatal("no utilization recorded")
	}
}

func TestLeastLoadedBeatsRandomOnAdversarialLoad(t *testing.T) {
	f := fabric(t)
	// Heavy flows all from rack 0 to rack 1 — random will collide on some
	// agg; an omniscient least-loaded selector spreads them perfectly.
	var flows []Flow
	for i := 0; i < 64; i++ {
		start := netsim.Time(i) * 10 * time.Millisecond
		flows = append(flows, Flow{
			SrcRack: 0, DstRack: 1, Bytes: 1.25e9, // 1 s at 10 Gbps
			Start: start, End: start + 8*time.Second, Job: i,
		})
	}
	horizon := 20 * time.Second
	random := Replay(f, flows, &RandomChoice{Fabric: f, RNG: stats.NewRNG(3)}, time.Second, horizon)
	omniscient := Replay(f, flows, &LeastLoaded{Fabric: f}, time.Second, horizon)
	if omniscient.MaxUtilization >= random.MaxUtilization {
		t.Fatalf("least-loaded (%v) should beat random (%v) on adversarial load",
			omniscient.MaxUtilization, random.MaxUtilization)
	}
	if omniscient.Imbalance > random.Imbalance {
		t.Fatalf("least-loaded imbalance %v > random %v", omniscient.Imbalance, random.Imbalance)
	}
}

func TestStaleLeastLoadedDegrades(t *testing.T) {
	f := fabric(t)
	var flows []Flow
	for i := 0; i < 64; i++ {
		start := netsim.Time(i) * 10 * time.Millisecond
		flows = append(flows, Flow{
			SrcRack: 0, DstRack: 1, Bytes: 1.25e9,
			Start: start, End: start + 8*time.Second, Job: i,
		})
	}
	horizon := 20 * time.Second
	fresh := Replay(f, flows, &LeastLoaded{Fabric: f}, time.Second, horizon)
	// With latency longer than the whole burst, the scheduler sees no
	// load at all and piles everything on agg 0 — worse than random.
	stale := Replay(f, flows, &LeastLoaded{Fabric: f, Latency: 10 * time.Second}, time.Second, horizon)
	if stale.MaxUtilization <= fresh.MaxUtilization {
		t.Fatalf("stale max util %v should exceed fresh %v", stale.MaxUtilization, fresh.MaxUtilization)
	}
}

func TestPerJobDecisionEconomy(t *testing.T) {
	f := fabric(t)
	flows := uniformFlows(f, 1000, 1e6, 4) // 20 jobs
	horizon := 12 * time.Second
	pj := &PerJob{Fabric: f, RNG: stats.NewRNG(5)}
	res := Replay(f, flows, pj, time.Second, horizon)
	rand := Replay(f, flows, &RandomChoice{Fabric: f, RNG: stats.NewRNG(6)}, time.Second, horizon)
	// Per-job needs ~20 decisions; per-flow needs 1000.
	if res.DecisionsPerSec >= rand.DecisionsPerSec/10 {
		t.Fatalf("per-job decisions/s %v should be far below per-flow %v",
			res.DecisionsPerSec, rand.DecisionsPerSec)
	}
	// All of a job's flows share an agg.
	if pj.Decisions() != 20 {
		t.Fatalf("distinct job decisions = %d, want 20", pj.Decisions())
	}
}

func TestFlowsFromRecords(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	ext := topology.ServerID(top.NumServers())
	records := []trace.FlowRecord{
		{Src: 0, Dst: 15, Bytes: 100, Start: time.Second, End: 2 * time.Second, Tag: netsim.FlowTag{Job: 7}},
		{Src: 0, Dst: 1, Bytes: 100},   // intra-rack: dropped
		{Src: ext, Dst: 0, Bytes: 100}, // external: dropped
		{Src: 25, Dst: 5, Bytes: 100, Start: 0, End: time.Second},
	}
	flows := FlowsFromRecords(records, top)
	if len(flows) != 2 {
		t.Fatalf("got %d flows, want 2", len(flows))
	}
	// Sorted by start.
	if flows[0].SrcRack != 2 || flows[1].Job != 7 {
		t.Fatalf("flows = %+v", flows)
	}
}

func TestCompareRunsAllSelectors(t *testing.T) {
	f := fabric(t)
	flows := uniformFlows(f, 300, 1e6, 7)
	results := Compare(f, flows, 1, time.Second, 12*time.Second, 100*time.Millisecond)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Selector] = true
		if r.Flows != 300 {
			t.Fatalf("selector %s saw %d flows", r.Selector, r.Flows)
		}
	}
	for _, want := range []string{"random", "per-job", "least-loaded", "least-loaded+100ms"} {
		if !names[want] {
			t.Fatalf("missing selector %q in %v", want, names)
		}
	}
}

func TestReplayDeterminism(t *testing.T) {
	f := fabric(t)
	flows := uniformFlows(f, 500, 1e6, 9)
	a := Replay(f, flows, &RandomChoice{Fabric: f, RNG: stats.NewRNG(11)}, time.Second, 12*time.Second)
	b := Replay(f, flows, &RandomChoice{Fabric: f, RNG: stats.NewRNG(11)}, time.Second, 12*time.Second)
	if math.Abs(a.MaxUtilization-b.MaxUtilization) > 1e-12 || a.Imbalance != b.Imbalance {
		t.Fatal("replay not deterministic")
	}
}
