// Package te operationalizes the traffic-engineering discussion of §4.3:
// the paper argues that per-flow centralized scheduling is hard in a
// datacenter — the cluster sees on the order of 100 flow arrivals per
// millisecond and most flows are gone within seconds, so a scheduler must
// decide absurdly fast to avoid lag — and that scheduling application
// units or making "simple random choices" (VLB/ECMP-style) is the
// practical alternative.
//
// The evaluation replays a flow trace over a two-layer multipath fabric
// (every ToR wired to every aggregation switch, VL2-like) and compares
// path selectors on load balance and on the decision throughput they
// require:
//
//   - RandomChoice: pick an aggregation switch uniformly per flow (the
//     distributed, stateless baseline);
//   - PerJob: one choice per job, applied to all its flows (scheduling
//     application units);
//   - LeastLoaded: a centralized per-flow scheduler that sees link loads
//     but makes each decision after a configurable latency — stale
//     information and decision backlog are exactly what the paper warns
//     about.
package te

import (
	"fmt"
	"sort"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// Fabric is the multipath evaluation topology: Racks ToRs each wired to
// Aggs aggregation switches with LinkBps up- and downlinks.
type Fabric struct {
	Racks   int
	Aggs    int
	LinkBps float64
}

// NewFabric validates and returns a fabric.
func NewFabric(racks, aggs int, linkBps float64) (*Fabric, error) {
	if racks <= 0 || aggs <= 0 || linkBps <= 0 {
		return nil, fmt.Errorf("te: invalid fabric %d racks, %d aggs, %v bps", racks, aggs, linkBps)
	}
	return &Fabric{Racks: racks, Aggs: aggs, LinkBps: linkBps}, nil
}

// numLinks is up + down links: racks*aggs each way.
func (f *Fabric) numLinks() int { return 2 * f.Racks * f.Aggs }

// upLink indexes the ToR r → agg a link; downLink the agg a → ToR r link.
func (f *Fabric) upLink(r, a int) int   { return r*f.Aggs + a }
func (f *Fabric) downLink(r, a int) int { return f.Racks*f.Aggs + r*f.Aggs + a }

// Flow is the replay unit: a cross-rack transfer.
type Flow struct {
	SrcRack, DstRack int
	Bytes            float64
	Start, End       netsim.Time
	Job              int
}

// FlowsFromRecords converts trace records to replay flows, dropping
// intra-rack and external traffic (which never crosses the agg layer).
func FlowsFromRecords(records []trace.FlowRecord, top *topology.Topology) []Flow {
	var out []Flow
	for _, r := range records {
		rs, rd := top.Rack(r.Src), top.Rack(r.Dst)
		if rs < 0 || rd < 0 || rs == rd {
			continue
		}
		out = append(out, Flow{
			SrcRack: int(rs), DstRack: int(rd),
			Bytes: float64(r.Bytes), Start: r.Start, End: r.End,
			Job: r.Tag.Job,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Selector picks the aggregation switch for a flow. Implementations may
// carry state (link loads, decision queues).
type Selector interface {
	// Name identifies the selector in results.
	Name() string
	// Choose returns the agg index for the flow, given the current
	// per-link allocated rates (bytes/sec, indexed as Fabric links).
	Choose(f Flow, linkRate []float64) int
}

// RandomChoice is the stateless distributed selector.
type RandomChoice struct {
	Fabric *Fabric
	RNG    *stats.RNG
}

// Name implements Selector.
func (s *RandomChoice) Name() string { return "random" }

// Choose implements Selector.
func (s *RandomChoice) Choose(Flow, []float64) int { return s.RNG.IntN(s.Fabric.Aggs) }

// PerJob pins all of a job's flows to one agg (scheduling application
// units rather than flows).
type PerJob struct {
	Fabric *Fabric
	RNG    *stats.RNG
	assign map[int]int
}

// Name implements Selector.
func (s *PerJob) Name() string { return "per-job" }

// Choose implements Selector.
func (s *PerJob) Choose(f Flow, _ []float64) int {
	if s.assign == nil {
		s.assign = make(map[int]int)
	}
	a, ok := s.assign[f.Job]
	if !ok {
		a = s.RNG.IntN(s.Fabric.Aggs)
		s.assign[f.Job] = a
	}
	return a
}

// Decisions reports how many distinct scheduling decisions were made (one
// per job, vs one per flow for the others).
func (s *PerJob) Decisions() int { return len(s.assign) }

// LeastLoaded is the centralized per-flow scheduler: it picks the agg
// minimizing the max of the flow's two link rates, but each decision uses
// link state as of Latency ago — the staleness a real controller suffers
// from measurement and decision lag. With zero latency it is omniscient.
type LeastLoaded struct {
	Fabric  *Fabric
	Latency netsim.Time

	// stale holds the delayed link-state snapshots.
	snapshots []snapshot
}

type snapshot struct {
	at   netsim.Time
	rate []float64
}

// Name implements Selector.
func (s *LeastLoaded) Name() string {
	if s.Latency <= 0 {
		return "least-loaded"
	}
	return fmt.Sprintf("least-loaded+%v", s.Latency)
}

// Choose implements Selector.
func (s *LeastLoaded) Choose(f Flow, linkRate []float64) int {
	view := linkRate
	if s.Latency > 0 {
		// Record the current state and use the newest snapshot older
		// than Latency.
		cp := append([]float64(nil), linkRate...)
		s.snapshots = append(s.snapshots, snapshot{at: f.Start, rate: cp})
		cutoff := f.Start - s.Latency
		view = nil
		for i := len(s.snapshots) - 1; i >= 0; i-- {
			if s.snapshots[i].at <= cutoff {
				view = s.snapshots[i].rate
				// Drop anything older; it can never be selected again.
				s.snapshots = s.snapshots[i:]
				break
			}
		}
		if view == nil {
			view = make([]float64, len(linkRate)) // no old-enough info yet
		}
	}
	best, bestLoad := 0, 0.0
	for a := 0; a < s.Fabric.Aggs; a++ {
		up := view[s.Fabric.upLink(f.SrcRack, a)]
		down := view[s.Fabric.downLink(f.DstRack, a)]
		load := up
		if down > load {
			load = down
		}
		if a == 0 || load < bestLoad {
			best, bestLoad = a, load
		}
	}
	return best
}

// Result summarizes one replay.
type Result struct {
	Selector string
	// MaxUtilization is the peak link utilization across links and time
	// bins.
	MaxUtilization float64
	// P99Utilization is the 99th percentile over (link, bin) samples
	// with traffic.
	P99Utilization float64
	// Imbalance is the mean over bins of max-link/mean-link rate (1 is
	// perfectly balanced).
	Imbalance float64
	// DecisionsPerSec is the scheduler decision throughput the replay
	// demanded (flows per second for per-flow selectors).
	DecisionsPerSec float64
	Flows           int
}

// Replay pushes flows through the fabric under the selector, spreading
// each flow's bytes uniformly over its lifetime, and measures per-bin link
// utilization. binSize controls the measurement granularity.
func Replay(f *Fabric, flowsIn []Flow, sel Selector, binSize, horizon netsim.Time) Result {
	if binSize <= 0 || horizon <= 0 {
		panic("te: need positive bin and horizon")
	}
	nBins := int((horizon + binSize - 1) / binSize)
	// bytes[link][bin]
	bytes := make([][]float64, f.numLinks())
	for i := range bytes {
		bytes[i] = make([]float64, nBins)
	}
	// Instantaneous allocated rate per link, updated per arrival assuming
	// uniform spreading (adequate for load-balance comparison).
	linkRate := make([]float64, f.numLinks())
	type release struct {
		at   netsim.Time
		link int
		rate float64
	}
	var pending []release // sorted by at (flows arrive in start order)
	pi := 0
	decisions := 0
	for _, fl := range flowsIn {
		// Release expired rates.
		for pi < len(pending) && pending[pi].at <= fl.Start {
			linkRate[pending[pi].link] -= pending[pi].rate
			pi++
		}
		a := sel.Choose(fl, linkRate)
		decisions++
		if a < 0 || a >= f.Aggs {
			panic("te: selector returned invalid agg")
		}
		dur := fl.End - fl.Start
		if dur <= 0 {
			dur = 1
		}
		rate := fl.Bytes / dur.Seconds()
		up := f.upLink(fl.SrcRack, a)
		down := f.downLink(fl.DstRack, a)
		for _, l := range []int{up, down} {
			linkRate[l] += rate
			pending = append(pending, release{at: fl.End, link: l, rate: rate})
			spreadBins(bytes[l], fl.Start, fl.End, rate, binSize, horizon)
		}
		// Keep pending sorted by release time (ends are not ordered).
		for j := len(pending) - 1; j > pi && pending[j].at < pending[j-1].at; j-- {
			pending[j], pending[j-1] = pending[j-1], pending[j]
		}
	}
	// Utilization samples.
	capPerBin := f.LinkBps / 8 * binSize.Seconds()
	var samples []float64
	maxUtil := 0.0
	imbalanceSum, imbalanceBins := 0.0, 0
	for b := 0; b < nBins; b++ {
		maxLink, sum, active := 0.0, 0.0, 0
		for l := range bytes {
			v := bytes[l][b]
			if v <= 0 {
				continue
			}
			u := v / capPerBin
			samples = append(samples, u)
			if u > maxUtil {
				maxUtil = u
			}
			if v > maxLink {
				maxLink = v
			}
			sum += v
			active++
		}
		if active > 1 && sum > 0 {
			imbalanceSum += maxLink / (sum / float64(active))
			imbalanceBins++
		}
	}
	res := Result{
		Selector:        sel.Name(),
		MaxUtilization:  maxUtil,
		P99Utilization:  stats.Percentile(samples, 99),
		Flows:           len(flowsIn),
		DecisionsPerSec: float64(decisions) / horizon.Seconds(),
	}
	if pj, ok := sel.(*PerJob); ok {
		res.DecisionsPerSec = float64(pj.Decisions()) / horizon.Seconds()
	}
	if imbalanceBins > 0 {
		res.Imbalance = imbalanceSum / float64(imbalanceBins)
	}
	return res
}

// spreadBins accrues rate bytes/sec over [start, end) into bins.
func spreadBins(bins []float64, start, end netsim.Time, rate float64, binSize, horizon netsim.Time) {
	if end > horizon {
		end = horizon
	}
	for t := start; t < end; {
		idx := int(t / binSize)
		if idx >= len(bins) {
			break
		}
		binEnd := netsim.Time(idx+1) * binSize
		if binEnd > end {
			binEnd = end
		}
		bins[idx] += rate * (binEnd - t).Seconds()
		t = binEnd
	}
}

// Compare replays the same flows under all the paper-relevant selectors
// and returns their results: random, per-job, omniscient least-loaded,
// and least-loaded with the given decision latencies.
func Compare(f *Fabric, flowsIn []Flow, seed uint64, binSize, horizon netsim.Time, latencies ...netsim.Time) []Result {
	out := []Result{
		Replay(f, flowsIn, &RandomChoice{Fabric: f, RNG: stats.NewRNG(seed)}, binSize, horizon),
		Replay(f, flowsIn, &PerJob{Fabric: f, RNG: stats.NewRNG(seed + 1)}, binSize, horizon),
		Replay(f, flowsIn, &LeastLoaded{Fabric: f}, binSize, horizon),
	}
	for _, lat := range latencies {
		out = append(out, Replay(f, flowsIn, &LeastLoaded{Fabric: f, Latency: lat}, binSize, horizon))
	}
	return out
}
