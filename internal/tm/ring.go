package tm

// ChangeRing is the online accumulator behind Figure 10's
// traffic-churn series: it consumes per-bin traffic matrices in bin
// order and incrementally produces exactly what MagnitudeSeries plus
// ChangeSeries(series, lag) would produce over the full matrix slice —
// while retaining only the last max(lag) matrices in a ring instead of
// the whole series. This is what lets a week-long streaming analysis
// track TM churn without holding a week of matrices.
type ChangeRing struct {
	lags    []int
	keep    int
	ring    []*Matrix
	n       int
	mags    []float64
	changes [][]float64 // parallel to lags
}

// NewChangeRing tracks churn at the given positive lags (in bins).
func NewChangeRing(lags ...int) *ChangeRing {
	keep := 0
	for _, l := range lags {
		if l <= 0 {
			panic("tm: ChangeRing lag must be positive")
		}
		if l > keep {
			keep = l
		}
	}
	return &ChangeRing{
		lags:    append([]int(nil), lags...),
		keep:    keep,
		ring:    make([]*Matrix, max(keep, 1)),
		changes: make([][]float64, len(lags)),
	}
}

// Push appends the next bin's matrix. For each lag l with at least l
// prior bins it appends NormalizedChange(bin[j-l], bin[j]) — the same
// value at the same series index ChangeSeries computes offline.
func (c *ChangeRing) Push(m *Matrix) {
	j := c.n
	c.mags = append(c.mags, m.Total())
	for li, lag := range c.lags {
		if j >= lag {
			c.changes[li] = append(c.changes[li], NormalizedChange(c.ring[(j-lag)%c.keep], m))
		}
	}
	if c.keep > 0 {
		c.ring[j%c.keep] = m
	}
	c.n++
}

// N reports the number of bins pushed.
func (c *ChangeRing) N() int { return c.n }

// Magnitude returns the per-bin matrix totals, matching MagnitudeSeries.
func (c *ChangeRing) Magnitude() []float64 { return c.mags }

// Changes returns the churn series for the i'th configured lag,
// matching ChangeSeries(series, lags[i]). Nil when no bin pair has
// spanned the lag yet.
func (c *ChangeRing) Changes(i int) []float64 { return c.changes[i] }
