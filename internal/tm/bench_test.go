package tm

import (
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// benchRecords builds a synthetic day-scale record set once.
func benchRecords(n int) []trace.FlowRecord {
	r := stats.NewRNG(1)
	out := make([]trace.FlowRecord, n)
	for i := range out {
		start := netsim.Time(r.IntN(3600)) * time.Second
		out[i] = trace.FlowRecord{
			ID:    netsim.FlowID(i),
			Src:   topology.ServerID(r.IntN(84)),
			Dst:   topology.ServerID(r.IntN(84)),
			Bytes: int64(1 + r.IntN(10_000_000)),
			Start: start,
			End:   start + netsim.Time(1+r.IntN(20))*time.Second,
		}
	}
	return out
}

// BenchmarkServerMatrix measures one-window TM aggregation over 100k
// records.
func BenchmarkServerMatrix(b *testing.B) {
	records := benchRecords(100_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ServerMatrix(records, 84, 0, time.Hour)
	}
}

// BenchmarkServerSeries measures 10s-binned series construction (the
// Figure 10 path) over 100k records.
func BenchmarkServerSeries(b *testing.B) {
	records := benchRecords(100_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ServerSeries(records, 84, 10*time.Second, time.Hour)
	}
}

// BenchmarkNormalizedChange measures the Figure 10 change metric on
// realistic sparse matrices.
func BenchmarkNormalizedChange(b *testing.B) {
	records := benchRecords(100_000)
	series := ServerSeries(records, 84, 10*time.Second, time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ChangeSeries(series, 1)
	}
}
