package tm

import (
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

// EntryStats is Figure 3's view of a server-level TM: the distribution of
// non-zero entry sizes split by rack locality, and the probability that a
// server pair exchanged no traffic at all (the measure that makes the two
// distributions genuinely different — the paper reports ≈89% zero within
// racks and ≈99.5% across).
type EntryStats struct {
	WithinRack      []float64 // non-zero bytes for same-rack ordered pairs
	AcrossRack      []float64 // non-zero bytes for cross-rack ordered pairs
	PZeroWithinRack float64
	PZeroAcrossRack float64
}

// ComputeEntryStats analyzes the cluster-server block of a host TM
// (external hosts are ignored; the paper's Figure 3 is about servers).
func ComputeEntryStats(m *Matrix, top *topology.Topology) EntryStats {
	n := top.NumServers()
	if m.N() < n {
		panic("tm: matrix smaller than cluster")
	}
	var es EntryStats
	var withinPairs, acrossPairs, withinNonZero, acrossNonZero int
	perRack := top.Config().ServersPerRack
	// Pair counts come from topology combinatorics; entry values from the
	// sparse matrix, so the scan is O(racks + nonzero) not O(n²).
	racks := top.NumRacks()
	withinPairs = racks * perRack * (perRack - 1)
	acrossPairs = n*(n-1) - withinPairs
	m.ForEach(func(s, d int, b float64) {
		if s >= n || d >= n || s == d {
			return
		}
		if top.SameRack(topology.ServerID(s), topology.ServerID(d)) {
			es.WithinRack = append(es.WithinRack, b)
			withinNonZero++
		} else {
			es.AcrossRack = append(es.AcrossRack, b)
			acrossNonZero++
		}
	})
	if withinPairs > 0 {
		es.PZeroWithinRack = 1 - float64(withinNonZero)/float64(withinPairs)
	}
	if acrossPairs > 0 {
		es.PZeroAcrossRack = 1 - float64(acrossNonZero)/float64(acrossPairs)
	}
	return es
}

// LogHistograms renders the Figure 3 panels: density of loge(Bytes) for
// within- and across-rack non-zero entries.
func (es EntryStats) LogHistograms(bins int) (within, across []stats.Point) {
	hw := stats.NewLogHistogram(0, 30, bins)
	ha := stats.NewLogHistogram(0, 30, bins)
	for _, v := range es.WithinRack {
		hw.AddBytes(v)
	}
	for _, v := range es.AcrossRack {
		ha.AddBytes(v)
	}
	return hw.Density(), ha.Density()
}

// CorrespondentStats is Figure 4's view: for each server, the fraction of
// possible peers it exchanged traffic with, split by rack locality.
type CorrespondentStats struct {
	FracWithin        []float64 // per server: fraction of its rack peers contacted
	FracAcross        []float64 // per server: fraction of out-of-rack servers contacted
	MedianWithinCount float64   // median number of in-rack correspondents
	MedianAcrossCount float64   // median number of out-of-rack correspondents
}

// ComputeCorrespondents analyzes a host TM at server level. A
// correspondent is a server exchanged traffic with in either direction.
func ComputeCorrespondents(m *Matrix, top *topology.Topology) CorrespondentStats {
	n := top.NumServers()
	if m.N() < n {
		panic("tm: matrix smaller than cluster")
	}
	peers := make([]map[int]bool, n)
	for i := range peers {
		peers[i] = make(map[int]bool)
	}
	m.ForEach(func(s, d int, b float64) {
		if s >= n || d >= n || s == d {
			return
		}
		peers[s][d] = true
		peers[d][s] = true
	})
	perRack := top.Config().ServersPerRack
	cs := CorrespondentStats{
		FracWithin: make([]float64, n),
		FracAcross: make([]float64, n),
	}
	withinCounts := make([]float64, n)
	acrossCounts := make([]float64, n)
	for s := 0; s < n; s++ {
		var within, across int
		for p := range peers[s] {
			if top.SameRack(topology.ServerID(s), topology.ServerID(p)) {
				within++
			} else {
				across++
			}
		}
		withinCounts[s] = float64(within)
		acrossCounts[s] = float64(across)
		if perRack > 1 {
			cs.FracWithin[s] = float64(within) / float64(perRack-1)
		}
		if n-perRack > 0 {
			cs.FracAcross[s] = float64(across) / float64(n-perRack)
		}
	}
	cs.MedianWithinCount = stats.Median(withinCounts)
	cs.MedianAcrossCount = stats.Median(acrossCounts)
	return cs
}

// PatternSummary quantifies the Figure 2 structure of a host TM: the share
// of traffic on the rack-block diagonal (work-seeks-bandwidth), the share
// involving external hosts (the far corner), and a scatter-gather score —
// the fraction of servers whose row or column spans many racks.
type PatternSummary struct {
	WithinRackFraction float64 // bytes between same-rack servers / total
	WithinVLANFraction float64 // bytes within a VLAN (incl. rack) / total
	ExternalFraction   float64 // bytes with an external endpoint / total
	ScatterGatherRows  int     // servers pushing/pulling to >= 1/4 of racks
}

// SummarizePatterns computes the pattern summary of a host TM.
func SummarizePatterns(m *Matrix, top *topology.Topology) PatternSummary {
	total := m.Total()
	var ps PatternSummary
	if total == 0 {
		return ps
	}
	rackSpan := make(map[int]map[topology.RackID]bool)
	note := func(server int, r topology.RackID) {
		set := rackSpan[server]
		if set == nil {
			set = make(map[topology.RackID]bool)
			rackSpan[server] = set
		}
		set[r] = true
	}
	var withinRack, withinVLAN, external float64
	m.ForEach(func(s, d int, b float64) {
		ss, ds := topology.ServerID(s), topology.ServerID(d)
		if top.IsExternal(ss) || top.IsExternal(ds) {
			external += b
			return
		}
		if top.SameRack(ss, ds) {
			withinRack += b
			withinVLAN += b
		} else if top.SameVLAN(ss, ds) {
			withinVLAN += b
		}
		note(s, top.Rack(ds))
		note(d, top.Rack(ss))
	})
	ps.WithinRackFraction = withinRack / total
	ps.WithinVLANFraction = withinVLAN / total
	ps.ExternalFraction = external / total
	threshold := top.NumRacks() / 4
	if threshold < 2 {
		threshold = 2
	}
	for _, set := range rackSpan {
		if len(set) >= threshold {
			ps.ScatterGatherRows++
		}
	}
	return ps
}
