// Package tm computes and analyzes traffic matrices (TMs): how many bytes
// each endpoint sent each other endpoint over a time window. TMs are the
// paper's central macroscopic object — Figure 2's heatmap, Figure 3's
// entry distributions, Figure 4's correspondent counts, Figure 10's
// change-over-time metric, and the ground truth for the tomography study
// are all views of server- or ToR-level TMs at 1 s / 10 s / 100 s bins.
package tm

import (
	"math"
	"slices"
	"sort"
)

// Matrix is a sparse n×n traffic matrix of byte counts.
type Matrix struct {
	n       int
	entries map[int64]float64
}

// NewMatrix creates an empty n×n matrix.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic("tm: matrix size must be positive")
	}
	return &Matrix{n: n, entries: make(map[int64]float64)}
}

// N reports the endpoint count.
func (m *Matrix) N() int { return m.n }

func (m *Matrix) key(src, dst int) int64 { return int64(src)*int64(m.n) + int64(dst) }

// Add accumulates bytes from src to dst. Negative or zero contributions
// are ignored.
func (m *Matrix) Add(src, dst int, bytes float64) {
	if bytes <= 0 {
		return
	}
	if src < 0 || src >= m.n || dst < 0 || dst >= m.n {
		panic("tm: endpoint out of range")
	}
	m.entries[m.key(src, dst)] += bytes
}

// At returns the bytes from src to dst.
func (m *Matrix) At(src, dst int) float64 { return m.entries[m.key(src, dst)] }

// NonZero reports the number of non-zero entries.
func (m *Matrix) NonZero() int { return len(m.entries) }

// sortedKeys returns the non-zero entry keys in row-major order. Map
// iteration order is randomized per run, so any float accumulation over
// entries must walk them in a fixed order to keep results reproducible
// (same input → bit-identical sums).
func (m *Matrix) sortedKeys() []int64 {
	keys := make([]int64, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Total reports the sum of all entries.
func (m *Matrix) Total() float64 {
	t := 0.0
	for _, k := range m.sortedKeys() {
		t += m.entries[k]
	}
	return t
}

// ForEach visits every non-zero entry in row-major order. The fixed
// order keeps accumulations over entries deterministic.
func (m *Matrix) ForEach(fn func(src, dst int, bytes float64)) {
	for _, k := range m.sortedKeys() {
		fn(int(k/int64(m.n)), int(k%int64(m.n)), m.entries[k])
	}
}

// RowSums returns per-source totals (traffic originated by each endpoint).
func (m *Matrix) RowSums() []float64 {
	out := make([]float64, m.n)
	m.ForEach(func(s, _ int, b float64) { out[s] += b })
	return out
}

// ColSums returns per-destination totals.
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.n)
	m.ForEach(func(_, d int, b float64) { out[d] += b })
	return out
}

// Values returns all non-zero entry values in descending order.
func (m *Matrix) Values() []float64 {
	out := make([]float64, 0, len(m.entries))
	for _, v := range m.entries {
		out = append(out, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.n)
	for k, v := range m.entries {
		c.entries[k] = v
	}
	return c
}

// Dense flattens the matrix row-major into a length n² slice.
func (m *Matrix) Dense() []float64 {
	out := make([]float64, m.n*m.n)
	for k, v := range m.entries {
		out[k] = v
	}
	return out
}

// FromDense builds a matrix from a row-major n² slice.
func FromDense(n int, data []float64) *Matrix {
	if len(data) != n*n {
		panic("tm: dense data size mismatch")
	}
	m := NewMatrix(n)
	for i, v := range data {
		if v > 0 {
			m.entries[int64(i)] = v
		}
	}
	return m
}

// NormalizedChange is the paper's Figure 10 metric:
//
//	|M(t+τ) − M(t)|₁ / |M(t)|₁
//
// the absolute sum of entry-wise differences normalized by the total
// traffic of the earlier matrix. It returns 0 when the earlier matrix is
// empty.
func NormalizedChange(earlier, later *Matrix) float64 {
	if earlier.n != later.n {
		panic("tm: NormalizedChange size mismatch")
	}
	denom := earlier.Total()
	if denom == 0 {
		return 0
	}
	num := 0.0
	for _, k := range earlier.sortedKeys() {
		num += math.Abs(later.entries[k] - earlier.entries[k])
	}
	for _, k := range later.sortedKeys() {
		if _, ok := earlier.entries[k]; !ok {
			num += later.entries[k]
		}
	}
	return num / denom
}

// VolumeFraction reports the smallest number of entries whose sum reaches
// the given fraction of total volume, and that count divided by the number
// of possible off-diagonal entries n(n−1) — the sparsity measure of
// Figures 13 and 14.
func (m *Matrix) VolumeFraction(frac float64) (count int, fracOfEntries float64) {
	total := m.Total()
	if total == 0 {
		return 0, 0
	}
	target := frac * total
	sum := 0.0
	for _, v := range m.Values() {
		sum += v
		count++
		if sum >= target {
			break
		}
	}
	possible := m.n * (m.n - 1)
	if possible == 0 {
		possible = 1
	}
	return count, float64(count) / float64(possible)
}
