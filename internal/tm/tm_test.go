package tm

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4)
	m.Add(0, 1, 100)
	m.Add(0, 1, 50)
	m.Add(2, 3, 25)
	m.Add(1, 2, 0)  // ignored
	m.Add(3, 0, -5) // ignored
	if m.At(0, 1) != 150 || m.At(2, 3) != 25 || m.At(1, 0) != 0 {
		t.Fatal("Add/At broken")
	}
	if m.NonZero() != 2 || m.Total() != 175 {
		t.Fatalf("NonZero=%d Total=%v", m.NonZero(), m.Total())
	}
	rows := m.RowSums()
	if rows[0] != 150 || rows[2] != 25 {
		t.Fatalf("RowSums = %v", rows)
	}
	cols := m.ColSums()
	if cols[1] != 150 || cols[3] != 25 {
		t.Fatalf("ColSums = %v", cols)
	}
	vals := m.Values()
	if len(vals) != 2 || vals[0] != 150 {
		t.Fatalf("Values = %v", vals)
	}
}

func TestMatrixOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Add(2, 0, 1)
}

func TestDenseRoundTrip(t *testing.T) {
	m := NewMatrix(3)
	m.Add(0, 2, 7)
	m.Add(1, 1, 3)
	d := m.Dense()
	back := FromDense(3, d)
	if back.At(0, 2) != 7 || back.At(1, 1) != 3 || back.NonZero() != 2 {
		t.Fatal("dense round trip broken")
	}
}

func TestNormalizedChange(t *testing.T) {
	a := NewMatrix(3)
	a.Add(0, 1, 100)
	b := a.Clone()
	if NormalizedChange(a, b) != 0 {
		t.Fatal("identical matrices should have zero change")
	}
	// Same total, different participants: change = 200/100 = 2.
	c := NewMatrix(3)
	c.Add(1, 2, 100)
	if got := NormalizedChange(a, c); got != 2 {
		t.Fatalf("participant flux change = %v, want 2", got)
	}
	// Doubling: |200-100|/100 = 1.
	d := NewMatrix(3)
	d.Add(0, 1, 200)
	if got := NormalizedChange(a, d); got != 1 {
		t.Fatalf("doubling change = %v, want 1", got)
	}
	var empty = NewMatrix(3)
	if NormalizedChange(empty, a) != 0 {
		t.Fatal("empty baseline should yield 0")
	}
}

func TestVolumeFraction(t *testing.T) {
	m := NewMatrix(10)
	m.Add(0, 1, 75)
	m.Add(1, 2, 10)
	m.Add(2, 3, 10)
	m.Add(3, 4, 5)
	count, frac := m.VolumeFraction(0.75)
	if count != 1 {
		t.Fatalf("count = %d, want 1 (single 75%% entry)", count)
	}
	if math.Abs(frac-1.0/90) > 1e-12 {
		t.Fatalf("frac = %v, want 1/90", frac)
	}
	if c, _ := m.VolumeFraction(1.0); c != 4 {
		t.Fatalf("full volume needs %d entries, want 4", c)
	}
	empty := NewMatrix(3)
	if c, f := empty.VolumeFraction(0.75); c != 0 || f != 0 {
		t.Fatal("empty matrix volume fraction should be 0")
	}
}

func rec(src, dst topology.ServerID, bytes int64, start, end netsim.Time) trace.FlowRecord {
	return trace.FlowRecord{Src: src, Dst: dst, Bytes: bytes, Start: start, End: end}
}

func TestServerMatrixWindow(t *testing.T) {
	records := []trace.FlowRecord{
		rec(0, 1, 1000, 0, 10*time.Second),              // fully inside
		rec(2, 3, 1000, 5*time.Second, 15*time.Second),  // half inside
		rec(4, 5, 1000, 20*time.Second, 30*time.Second), // outside
	}
	m := ServerMatrix(records, 10, 0, 10*time.Second)
	if m.At(0, 1) != 1000 {
		t.Fatalf("full flow = %v", m.At(0, 1))
	}
	if math.Abs(m.At(2, 3)-500) > 1 {
		t.Fatalf("half flow = %v, want 500", m.At(2, 3))
	}
	if m.At(4, 5) != 0 {
		t.Fatal("outside flow leaked into window")
	}
}

func TestServerSeriesSpreading(t *testing.T) {
	records := []trace.FlowRecord{
		rec(0, 1, 300, 0, 30*time.Second),
		rec(1, 2, 50, 35*time.Second, 35*time.Second), // instantaneous
	}
	series := ServerSeries(records, 5, 10*time.Second, 40*time.Second)
	if len(series) != 4 {
		t.Fatalf("series length %d, want 4", len(series))
	}
	for i := 0; i < 3; i++ {
		if math.Abs(series[i].At(0, 1)-100) > 1e-9 {
			t.Fatalf("bin %d = %v, want 100", i, series[i].At(0, 1))
		}
	}
	if series[3].At(1, 2) != 50 {
		t.Fatalf("instantaneous flow lost: %v", series[3].At(1, 2))
	}
}

func TestSeriesConservesBytes(t *testing.T) {
	r := stats.NewRNG(3)
	var records []trace.FlowRecord
	var want float64
	for i := 0; i < 200; i++ {
		start := netsim.Time(r.IntN(100)) * time.Second
		dur := netsim.Time(1+r.IntN(50)) * time.Second
		b := int64(1 + r.IntN(100000))
		records = append(records, rec(topology.ServerID(r.IntN(8)), topology.ServerID(r.IntN(8)), b, start, start+dur))
		want += float64(b)
	}
	series := ServerSeries(records, 8, 10*time.Second, 200*time.Second)
	got := 0.0
	for _, m := range series {
		got += m.Total()
	}
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("series total %v, want %v", got, want)
	}
}

func TestTorMatrixExcludesIntraRackAndExternal(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	ext := topology.ServerID(top.NumServers())
	records := []trace.FlowRecord{
		rec(0, 1, 1000, 0, time.Second),   // same rack: excluded
		rec(0, 15, 1000, 0, time.Second),  // rack 0 -> rack 1
		rec(ext, 0, 1000, 0, time.Second), // external: excluded
	}
	m := TorMatrix(records, top, 0, time.Second)
	if m.Total() != 1000 || m.At(0, 1) != 1000 {
		t.Fatalf("ToR TM wrong: total=%v", m.Total())
	}
	for r := 0; r < top.NumRacks(); r++ {
		if m.At(r, r) != 0 {
			t.Fatal("ToR TM diagonal must be zero")
		}
	}
}

func TestChangeSeries(t *testing.T) {
	a := NewMatrix(3)
	a.Add(0, 1, 100)
	b := NewMatrix(3)
	b.Add(0, 1, 100)
	c := NewMatrix(3)
	c.Add(1, 2, 100)
	out := ChangeSeries([]*Matrix{a, b, c}, 1)
	if len(out) != 2 || out[0] != 0 || out[1] != 2 {
		t.Fatalf("ChangeSeries = %v", out)
	}
	if got := ChangeSeries([]*Matrix{a}, 1); got != nil {
		t.Fatal("short series should give nil")
	}
	mag := MagnitudeSeries([]*Matrix{a, c})
	if mag[0] != 100 || mag[1] != 100 {
		t.Fatalf("MagnitudeSeries = %v", mag)
	}
}

func TestComputeEntryStats(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig()) // 8 racks x 10
	m := NewMatrix(top.NumHosts())
	m.Add(0, 1, math.Exp(10)) // within rack 0
	m.Add(0, 2, math.Exp(12)) // within rack 0
	m.Add(0, 15, math.Exp(8)) // across
	es := ComputeEntryStats(m, top)
	if len(es.WithinRack) != 2 || len(es.AcrossRack) != 1 {
		t.Fatalf("entry split: %d within, %d across", len(es.WithinRack), len(es.AcrossRack))
	}
	// 8 racks * 10*9 = 720 within pairs, 2 non-zero.
	if math.Abs(es.PZeroWithinRack-(1-2.0/720)) > 1e-12 {
		t.Fatalf("PZeroWithinRack = %v", es.PZeroWithinRack)
	}
	if es.PZeroAcrossRack <= es.PZeroWithinRack {
		t.Fatal("across-rack zeros should dominate in this matrix")
	}
	within, across := es.LogHistograms(30)
	if len(within) != 30 || len(across) != 30 {
		t.Fatal("histogram sizing broken")
	}
}

func TestComputeCorrespondents(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	m := NewMatrix(top.NumHosts())
	// Server 0 talks to 3 in-rack peers and 4 out-of-rack servers.
	m.Add(0, 1, 1)
	m.Add(0, 2, 1)
	m.Add(3, 0, 1) // reverse direction still counts
	m.Add(0, 15, 1)
	m.Add(0, 25, 1)
	m.Add(35, 0, 1)
	m.Add(0, 45, 1)
	cs := ComputeCorrespondents(m, top)
	if math.Abs(cs.FracWithin[0]-3.0/9) > 1e-12 {
		t.Fatalf("FracWithin[0] = %v, want 3/9", cs.FracWithin[0])
	}
	if math.Abs(cs.FracAcross[0]-4.0/70) > 1e-12 {
		t.Fatalf("FracAcross[0] = %v, want 4/70", cs.FracAcross[0])
	}
}

func TestSummarizePatterns(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	m := NewMatrix(top.NumHosts())
	m.Add(0, 1, 700)  // within rack
	m.Add(0, 15, 200) // rack 0 -> rack 1, same VLAN
	m.Add(0, 75, 50)  // rack 0 -> rack 7
	ext := top.NumServers()
	m.Add(ext, 0, 50) // external ingest
	ps := SummarizePatterns(m, top)
	if math.Abs(ps.WithinRackFraction-0.7) > 1e-12 {
		t.Fatalf("WithinRackFraction = %v", ps.WithinRackFraction)
	}
	if math.Abs(ps.WithinVLANFraction-0.9) > 1e-12 {
		t.Fatalf("WithinVLANFraction = %v", ps.WithinVLANFraction)
	}
	if math.Abs(ps.ExternalFraction-0.05) > 1e-12 {
		t.Fatalf("ExternalFraction = %v", ps.ExternalFraction)
	}
	empty := SummarizePatterns(NewMatrix(top.NumHosts()), top)
	if empty.WithinRackFraction != 0 {
		t.Fatal("empty matrix should summarize to zeros")
	}
}

// Property: NormalizedChange is 0 for identical matrices, symmetric in
// support, and equals 2 when matrices have equal totals and disjoint
// support.
func TestNormalizedChangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 4 + r.IntN(6)
		a := NewMatrix(n)
		b := NewMatrix(n)
		total := 0.0
		for i := 0; i < 5; i++ {
			v := 1 + r.Float64()*100
			a.Add(r.IntN(n/2), r.IntN(n), v)
			total += v
		}
		// b: same total, support shifted into rows >= n/2 (disjoint).
		remaining := total
		for i := 0; i < 4; i++ {
			v := remaining / 4
			b.Add(n/2+r.IntN(n-n/2), r.IntN(n), v)
		}
		if NormalizedChange(a, a.Clone()) != 0 {
			return false
		}
		got := NormalizedChange(a, b)
		return math.Abs(got-2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
