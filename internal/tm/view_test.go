package tm

import (
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// matrixFixture builds a canonical-order record set and its view.
func matrixFixture(t *testing.T, n int, horizon netsim.Time) ([]trace.FlowRecord, *trace.RecordView, *topology.Topology) {
	t.Helper()
	top, err := topology.New(topology.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(11).Fork("tm_view_test")
	recs := make([]trace.FlowRecord, n)
	for i := range recs {
		start := netsim.Time(rng.Float64() * float64(horizon))
		var dur netsim.Time
		if rng.IntN(5) > 0 { // leave some instantaneous records
			dur = netsim.Time(rng.Float64() * float64(time.Minute))
		}
		recs[i] = trace.FlowRecord{
			ID:    netsim.FlowID(i),
			Src:   topology.ServerID(rng.IntN(top.NumHosts())),
			Dst:   topology.ServerID(rng.IntN(top.NumHosts())),
			Start: start,
			End:   start + dur,
			Bytes: int64(1 + rng.IntN(1<<24)),
		}
	}
	v := trace.NewRecordView(recs, top)
	return v.Records(), v, top
}

// matricesIdentical demands bit-identical entries — the windowed view
// aggregation must be a drop-in for the full scan.
func matricesIdentical(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.N() != want.N() || got.NonZero() != want.NonZero() {
		t.Fatalf("%s: shape %d/%d entries, want %d/%d", name, got.N(), got.NonZero(), want.N(), want.NonZero())
	}
	want.ForEach(func(src, dst int, bytes float64) {
		if g := got.At(src, dst); g != bytes {
			t.Fatalf("%s: entry (%d,%d) = %v, want %v", name, src, dst, g, bytes)
		}
	})
}

func TestServerMatrixViewMatchesFullScan(t *testing.T) {
	horizon := netsim.Time(10 * time.Minute)
	recs, v, top := matrixFixture(t, 4000, horizon)
	windows := [][2]netsim.Time{
		{0, horizon},
		{horizon / 2, horizon/2 + 10*time.Second},
		{horizon - time.Second, horizon},
		{horizon / 3, horizon/3 + time.Minute},
	}
	for _, w := range windows {
		got := ServerMatrixView(v, top.NumHosts(), w[0], w[1])
		want := ServerMatrix(recs, top.NumHosts(), w[0], w[1])
		matricesIdentical(t, "server", got, want)
	}
}

func TestTorMatrixViewMatchesFullScan(t *testing.T) {
	horizon := netsim.Time(10 * time.Minute)
	recs, v, top := matrixFixture(t, 4000, horizon)
	got := TorMatrixView(v, top, horizon/4, horizon/4+30*time.Second)
	want := TorMatrix(recs, top, horizon/4, horizon/4+30*time.Second)
	matricesIdentical(t, "tor", got, want)
}

// Per-bin windowed aggregation must reproduce ServerSeries bin by bin —
// the decomposition the parallel Fig 10 shards rely on.
func TestSeriesBinWindowMatchesServerSeries(t *testing.T) {
	horizon := netsim.Time(95 * time.Second) // deliberately not a bin multiple
	bin := netsim.Time(10 * time.Second)
	recs, v, top := matrixFixture(t, 2000, horizon)
	series := ServerSeries(recs, top.NumHosts(), bin, horizon)
	for i := range series {
		from, to := SeriesBinWindow(i, bin, horizon)
		got := ServerMatrixView(v, top.NumHosts(), from, to)
		matricesIdentical(t, "bin", got, series[i])
	}
}
