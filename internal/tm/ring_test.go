package tm

import (
	"math"
	"testing"

	"dctraffic/internal/stats"
)

// randomSeries builds a deterministic sequence of sparse matrices.
func randomSeries(n, bins int) []*Matrix {
	rng := stats.NewRNG(9).Fork("ring_test")
	out := make([]*Matrix, bins)
	for b := range out {
		m := NewMatrix(n)
		for e := 0; e < 30; e++ {
			m.Add(rng.IntN(n), rng.IntN(n), 1+rng.Float64()*1e6)
		}
		out[b] = m
	}
	return out
}

// ChangeRing must reproduce MagnitudeSeries and ChangeSeries
// bit-for-bit while holding only max(lag) matrices — the equivalence
// that lets Figure 10 stream.
func TestChangeRingMatchesOfflineSeries(t *testing.T) {
	series := randomSeries(16, 40)
	ring := NewChangeRing(1, 10)
	for _, m := range series {
		ring.Push(m)
	}
	if ring.N() != len(series) {
		t.Fatalf("N = %d, want %d", ring.N(), len(series))
	}

	wantMag := MagnitudeSeries(series)
	gotMag := ring.Magnitude()
	if len(wantMag) != len(gotMag) {
		t.Fatalf("magnitude length %d, want %d", len(gotMag), len(wantMag))
	}
	for i := range wantMag {
		if math.Float64bits(wantMag[i]) != math.Float64bits(gotMag[i]) {
			t.Fatalf("magnitude[%d]: %g != %g", i, gotMag[i], wantMag[i])
		}
	}

	for li, lag := range []int{1, 10} {
		want := ChangeSeries(series, lag)
		got := ring.Changes(li)
		if len(want) != len(got) {
			t.Fatalf("lag %d: length %d, want %d", lag, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("lag %d: change[%d]: %g != %g", lag, i, got[i], want[i])
			}
		}
	}
}

// Fewer bins than the lag yields an empty (nil) churn series, matching
// ChangeSeries's contract.
func TestChangeRingShortSeries(t *testing.T) {
	series := randomSeries(8, 5)
	ring := NewChangeRing(10)
	for _, m := range series {
		ring.Push(m)
	}
	if got := ring.Changes(0); got != nil {
		t.Fatalf("lag beyond series length should give nil, got %v", got)
	}
	if want := ChangeSeries(series, 10); want != nil {
		t.Fatalf("offline reference disagrees: %v", want)
	}
}
