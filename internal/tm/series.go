package tm

import (
	"dctraffic/internal/netsim"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// spread distributes a flow record's bytes across time bins assuming a
// uniform rate over its lifetime (the standard flow-record approximation),
// invoking fn with the byte share of each overlapped bin.
func spread(r trace.FlowRecord, bin netsim.Time, from, to netsim.Time, fn func(binIdx int, bytes float64)) {
	if r.End < r.Start {
		return
	}
	if r.End == r.Start {
		// Instantaneous record: all bytes land in the start bin.
		if r.Start >= from && r.Start < to {
			fn(int((r.Start-from)/bin), float64(r.Bytes))
		}
		return
	}
	start, end := r.Start, r.End
	if start < from {
		start = from
	}
	if end > to {
		end = to
	}
	if start >= end {
		return
	}
	rate := float64(r.Bytes) / (r.End - r.Start).Seconds()
	for t := start; t < end; {
		idx := int((t - from) / bin)
		binEnd := from + netsim.Time(idx+1)*bin
		if binEnd > end {
			binEnd = end
		}
		fn(idx, rate*(binEnd-t).Seconds())
		t = binEnd
	}
}

// ServerMatrix aggregates flow records into one host-level TM over
// [from, to). Endpoints are all hosts (cluster servers first, then
// external hosts), matching Figure 2's layout where external uploaders
// and result-pullers occupy the far rows/columns.
func ServerMatrix(records []trace.FlowRecord, numHosts int, from, to netsim.Time) *Matrix {
	m := NewMatrix(numHosts)
	bin := to - from
	if bin <= 0 {
		panic("tm: empty window")
	}
	for _, r := range records {
		if int(r.Src) >= numHosts || int(r.Dst) >= numHosts {
			continue
		}
		spread(r, bin, from, to, func(_ int, b float64) {
			m.Add(int(r.Src), int(r.Dst), b)
		})
	}
	return m
}

// ServerMatrixView is ServerMatrix over an indexed record view: the
// window's records are located in O(log n + |window|) instead of a full
// scan. The per-record byte spreading is identical, and the view's
// start order fixes the accumulation order, so two calls with the same
// view and window are bit-identical regardless of the caller's
// parallelism.
func ServerMatrixView(v *trace.RecordView, numHosts int, from, to netsim.Time) *Matrix {
	m := NewMatrix(numHosts)
	bin := to - from
	if bin <= 0 {
		panic("tm: empty window")
	}
	v.Overlapping(from, to, func(r trace.FlowRecord) {
		if int(r.Src) >= numHosts || int(r.Dst) >= numHosts {
			return
		}
		spread(r, bin, from, to, func(_ int, b float64) {
			m.Add(int(r.Src), int(r.Dst), b)
		})
	})
	return m
}

// TorMatrixView is TorMatrix over an indexed record view (see
// ServerMatrixView).
func TorMatrixView(v *trace.RecordView, top *topology.Topology, from, to netsim.Time) *Matrix {
	m := NewMatrix(top.NumRacks())
	bin := to - from
	if bin <= 0 {
		panic("tm: empty window")
	}
	v.Overlapping(from, to, func(r trace.FlowRecord) {
		rs, rd := top.Rack(r.Src), top.Rack(r.Dst)
		if rs < 0 || rd < 0 || rs == rd {
			return
		}
		spread(r, bin, from, to, func(_ int, b float64) {
			m.Add(int(rs), int(rd), b)
		})
	})
	return m
}

// SeriesBinWindow returns the [from, to) span of bin i in a series of
// the given bin size clamped to horizon — the per-bin window that makes
// ServerMatrixView(v, n, from, to) equal to ServerSeries' bin i (the
// spreading arithmetic clamps identically at the horizon).
func SeriesBinWindow(i int, bin, horizon netsim.Time) (from, to netsim.Time) {
	from = netsim.Time(i) * bin
	to = from + bin
	if to > horizon {
		to = horizon
	}
	return from, to
}

// ServerSeries aggregates flow records into host-level TMs at fixed bins
// covering [0, horizon).
func ServerSeries(records []trace.FlowRecord, numHosts int, bin, horizon netsim.Time) []*Matrix {
	if bin <= 0 || horizon <= 0 {
		panic("tm: need positive bin and horizon")
	}
	nBins := int((horizon + bin - 1) / bin)
	out := make([]*Matrix, nBins)
	for i := range out {
		out[i] = NewMatrix(numHosts)
	}
	for _, r := range records {
		if int(r.Src) >= numHosts || int(r.Dst) >= numHosts {
			continue
		}
		spread(r, bin, 0, horizon, func(idx int, b float64) {
			if idx >= 0 && idx < nBins {
				out[idx].Add(int(r.Src), int(r.Dst), b)
			}
		})
	}
	return out
}

// TorMatrix aggregates flow records into a ToR-to-ToR TM over [from, to).
// Per the paper, the diagonal is zero: only traffic crossing racks is
// included, and flows touching external hosts are excluded (they do not
// transit ToR-to-ToR).
func TorMatrix(records []trace.FlowRecord, top *topology.Topology, from, to netsim.Time) *Matrix {
	m := NewMatrix(top.NumRacks())
	bin := to - from
	if bin <= 0 {
		panic("tm: empty window")
	}
	for _, r := range records {
		rs, rd := top.Rack(r.Src), top.Rack(r.Dst)
		if rs < 0 || rd < 0 || rs == rd {
			continue
		}
		spread(r, bin, from, to, func(_ int, b float64) {
			m.Add(int(rs), int(rd), b)
		})
	}
	return m
}

// TorSeries aggregates ToR-to-ToR TMs at fixed bins covering [0, horizon).
func TorSeries(records []trace.FlowRecord, top *topology.Topology, bin, horizon netsim.Time) []*Matrix {
	if bin <= 0 || horizon <= 0 {
		panic("tm: need positive bin and horizon")
	}
	nBins := int((horizon + bin - 1) / bin)
	out := make([]*Matrix, nBins)
	for i := range out {
		out[i] = NewMatrix(top.NumRacks())
	}
	for _, r := range records {
		rs, rd := top.Rack(r.Src), top.Rack(r.Dst)
		if rs < 0 || rd < 0 || rs == rd {
			continue
		}
		spread(r, bin, 0, horizon, func(idx int, b float64) {
			if idx >= 0 && idx < nBins {
				out[idx].Add(int(rs), int(rd), b)
			}
		})
	}
	return out
}

// MagnitudeSeries returns the total bytes of each matrix in a series —
// the top panel of Figure 10.
func MagnitudeSeries(series []*Matrix) []float64 {
	out := make([]float64, len(series))
	for i, m := range series {
		out[i] = m.Total()
	}
	return out
}

// ChangeSeries returns NormalizedChange(series[i], series[i+lag]) for all
// valid i — the bottom panel of Figure 10 (lag 1 at a 10 s bin gives
// τ=10 s; lag 10 gives τ=100 s).
func ChangeSeries(series []*Matrix, lag int) []float64 {
	if lag <= 0 {
		panic("tm: lag must be positive")
	}
	if len(series) <= lag {
		return nil
	}
	out := make([]float64, 0, len(series)-lag)
	for i := 0; i+lag < len(series); i++ {
		out = append(out, NormalizedChange(series[i], series[i+lag]))
	}
	return out
}
