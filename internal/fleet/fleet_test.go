package fleet

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dctraffic/internal/core"
)

// sweepConfig is one tiny fused pipeline: 4×4 servers, 30 simulated
// minutes — big enough that every seed produces records, small enough
// that the standalone×fleet matrix stays cheap.
func sweepConfig(seed uint64, multipath bool) core.RunConfig {
	cfg := core.SmallRun()
	cfg.Topology.Racks = 4
	cfg.Topology.ServersPerRack = 4
	cfg.Topology.MultiPath = multipath
	cfg.Duration = 30 * time.Minute
	cfg.DrainTime = 5 * time.Minute
	cfg.Sched.JobsPerHour = 150 * 16.0 / 80
	cfg.Seed = seed
	cfg.Sched.Seed = seed
	return cfg
}

func testSpecs() []RunSpec {
	return []RunSpec{
		{Name: "seed1-tree", Config: sweepConfig(1, false)},
		{Name: "seed2-tree", Config: sweepConfig(2, false)},
		{Name: "seed1-multipath", Config: sweepConfig(1, true)},
	}
}

// TestFleetMatchesStandalone is the acceptance gate of the cross-run
// determinism contract: per-run report digests must be bit-identical to
// standalone core.RunAnalyze at fleet concurrency 1, 2 and NumCPU, and
// under a memory budget so tight that admission control serializes the
// sweep.
func TestFleetMatchesStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("3 standalone + 12 fleet pipeline executions")
	}
	specs := testSpecs()
	want := make([]string, len(specs))
	for i, sp := range specs {
		_, rep, err := core.RunAnalyze(context.Background(), sp.Config)
		if err != nil {
			t.Fatalf("standalone %s: %v", sp.Name, err)
		}
		d, err := core.ReportDigest(rep)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = d
	}

	legs := []struct {
		name string
		opts Options
	}{
		{"conc1", Options{Concurrency: 1, MaxHeapMB: -1}},
		{"conc2", Options{Concurrency: 2, MaxHeapMB: -1}},
		{"concNumCPU", Options{Concurrency: runtime.NumCPU(), PoolWorkers: runtime.NumCPU(), MaxHeapMB: -1}},
		// One run's estimate exceeds the whole budget: every run is
		// admitted alone, forcing full serialization mid-flight.
		{"tinyBudget", Options{Concurrency: 2, MaxHeapMB: 1}},
	}
	for _, leg := range legs {
		res, err := Execute(context.Background(), specs, leg.opts)
		if err != nil {
			t.Fatalf("%s: %v", leg.name, err)
		}
		if res.Failed != 0 {
			t.Fatalf("%s: %d runs failed: %+v", leg.name, res.Failed, res.Outcomes)
		}
		if len(res.Outcomes) != len(specs) {
			t.Fatalf("%s: %d outcomes, want %d", leg.name, len(res.Outcomes), len(specs))
		}
		for i, o := range res.Outcomes {
			if o.Index != i || o.Name != specs[i].Name {
				t.Fatalf("%s: outcome %d is %q (index %d), want %q — merge order broken",
					leg.name, i, o.Name, o.Index, specs[i].Name)
			}
			if o.Digest != want[i] {
				t.Fatalf("%s: run %s digest %s != standalone %s", leg.name, o.Name, o.Digest, want[i])
			}
			if o.Records <= 0 {
				t.Fatalf("%s: run %s analyzed no records", leg.name, o.Name)
			}
			if o.SimMetrics == nil || o.AnalyzeMetrics == nil {
				t.Fatalf("%s: run %s missing registry snapshots", leg.name, o.Name)
			}
		}
		if err := res.Metrics.Require("fleet.", "netsim.", "trace.", "analyze.",
			"run0.netsim.", "run1.netsim.", "run2.analyze."); err != nil {
			t.Fatalf("%s: merged snapshot: %v", leg.name, err)
		}
		if got := res.Metrics.Value("fleet.runs_total"); got != float64(len(specs)) {
			t.Fatalf("%s: fleet.runs_total = %v, want %d", leg.name, got, len(specs))
		}
		// Two tree runs share a topology config; multipath differs.
		if hits := res.Metrics.Value("fleet.topo_cache_hits_total"); hits < 1 {
			t.Fatalf("%s: topology cache never hit (hits=%v)", leg.name, hits)
		}
		if misses := res.Metrics.Value("fleet.topo_cache_misses_total"); misses != 2 {
			t.Fatalf("%s: topo cache misses = %v, want 2 distinct configs", leg.name, misses)
		}
		if leg.name == "tinyBudget" {
			if waits := res.Metrics.Value("fleet.admission_waits_total"); waits < 1 {
				t.Fatalf("tinyBudget: admission gate never blocked (waits=%v)", waits)
			}
			var anyWaited bool
			for _, o := range res.Outcomes {
				anyWaited = anyWaited || o.Waited
			}
			if !anyWaited {
				t.Fatal("tinyBudget: no outcome records an admission wait")
			}
		}
	}
}

// TestFleetRaceSmoke is the race-detector leg for the shared pool: two
// concurrent pipelines funneling sim spans and analysis tasks through
// one 2-worker pool. Results are still checked against each other
// (same seed, same fabric → same digest).
func TestFleetRaceSmoke(t *testing.T) {
	specs := []RunSpec{
		{Name: "a", Config: sweepConfig(1, false)},
		{Name: "b", Config: sweepConfig(1, false)},
	}
	// Explicit worker counts >1 so the executor paths engage even on a
	// single-proc box.
	for i := range specs {
		specs[i].Config.Workers = 2
	}
	res, err := Execute(context.Background(), specs, Options{
		Concurrency: 2,
		PoolWorkers: 2,
		MaxHeapMB:   -1,
		AnalyzeOpts: []core.AnalyzeOption{core.WithParallelism(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d runs failed: %+v", res.Failed, res.Outcomes)
	}
	if res.Outcomes[0].Digest != res.Outcomes[1].Digest {
		t.Fatalf("identical configs diverged: %s vs %s",
			res.Outcomes[0].Digest, res.Outcomes[1].Digest)
	}
}

// TestFleetCanceledContext: a dead context fails every run but Execute
// still returns the full fixed-order merge.
func TestFleetCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := testSpecs()
	res, err := Execute(ctx, specs, Options{MaxHeapMB: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != len(specs) {
		t.Fatalf("Failed = %d, want %d", res.Failed, len(specs))
	}
	for i, o := range res.Outcomes {
		if o.Err == nil {
			t.Fatalf("outcome %d: nil Err under canceled context", i)
		}
	}
}

// TestFleetEmptySpecs: a zero-run sweep merges to an empty result.
func TestFleetEmptySpecs(t *testing.T) {
	res, err := Execute(context.Background(), nil, Options{MaxHeapMB: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 0 || res.Failed != 0 {
		t.Fatalf("got %+v, want empty", res)
	}
}

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	const tasks = 500
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		p.Go(func() {
			n.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	if n.Load() != tasks {
		t.Fatalf("ran %d tasks, want %d", n.Load(), tasks)
	}
	if p.Tasks() != tasks {
		t.Fatalf("Tasks() = %d, want %d", p.Tasks(), tasks)
	}
}

func TestMemGateBlocksAndAdmitsOversize(t *testing.T) {
	g := newMemGate(100)
	if g.acquire(80) {
		t.Fatal("first acquire must not wait")
	}
	done := make(chan bool)
	go func() { done <- g.acquire(30) }()
	// The second acquire must block; wait until the gate has seen it,
	// then release. Its return value proves it waited.
	for g.waitCount() == 0 {
		runtime.Gosched()
	}
	g.release(80)
	if !<-done {
		t.Fatal("second acquire reported no wait")
	}
	g.release(30)

	// Oversize request with an idle gate: admitted alone, no deadlock.
	if g.acquire(10_000) {
		t.Fatal("oversize acquire on an idle gate must not wait")
	}
	g.release(10_000)

	// Disabled gate is a no-op.
	off := newMemGate(-1)
	if off.acquire(1 << 30) {
		t.Fatal("disabled gate must never wait")
	}
}

func TestEstimatePeakMBDeterministicAndMonotone(t *testing.T) {
	small := sweepConfig(1, false)
	if EstimatePeakMB(small) != EstimatePeakMB(small) {
		t.Fatal("estimate not deterministic")
	}
	longer := small
	longer.Duration = 4 * time.Hour
	if EstimatePeakMB(longer) <= EstimatePeakMB(small) {
		t.Fatal("longer run must estimate more memory")
	}
	bigger := small
	bigger.Topology.Racks = 75
	bigger.Topology.ServersPerRack = 20
	if EstimatePeakMB(bigger) <= EstimatePeakMB(small) {
		t.Fatal("bigger cluster must estimate more memory")
	}
}
