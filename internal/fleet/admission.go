package fleet

import (
	"runtime/debug"
	"sync"

	"dctraffic/internal/core"
	"dctraffic/internal/topology"
)

// memGate is the admission controller: it caps the sum of in-flight
// runs' estimated peak heaps at a budget. Runs are admitted in config
// order (the launcher acquires index by index), so the gate changes
// only when runs start, never which runs produce what. A run whose
// estimate exceeds the whole budget is still admitted — alone — so an
// over-budget config degrades to sequential execution instead of
// deadlocking.
type memGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	budget int // MB; <= 0 disables the gate
	used   int
	waits  int
}

func newMemGate(budgetMB int) *memGate {
	g := &memGate{budget: budgetMB}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until mb fits in the remaining budget (or the gate is
// idle), then reserves it. Reports whether it had to wait.
func (g *memGate) acquire(mb int) (waited bool) {
	if g.budget <= 0 {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.used > 0 && g.used+mb > g.budget {
		if !waited {
			waited = true
			g.waits++
		}
		g.cond.Wait()
	}
	g.used += mb
	return waited
}

// release returns a reservation and wakes blocked acquirers.
func (g *memGate) release(mb int) {
	if g.budget <= 0 {
		return
	}
	g.mu.Lock()
	g.used -= mb
	g.mu.Unlock()
	g.cond.Broadcast()
}

// waitCount reports how many acquisitions had to block.
func (g *memGate) waitCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waits
}

// DefaultBudgetMB derives a fleet memory budget from the process's
// GOMEMLIMIT: 80% of the limit when one is set (headroom for GC slack
// and non-run allocations), 0 — no gate — when unlimited. Reading the
// limit does not change it.
func DefaultBudgetMB() int {
	limit := debug.SetMemoryLimit(-1)
	if limit <= 0 || limit == int64(^uint64(0)>>1) { // unset: MaxInt64
		return 0
	}
	mb := limit * 8 / 10 >> 20
	if mb < 1 {
		mb = 1
	}
	return int(mb)
}

// EstimatePeakMB is the admission controller's coarse, deterministic
// peak-live-heap model for one fused RunAnalyze pipeline. It is a
// heuristic, not a measurement: the fused pipeline retains every trace
// record (the collector keeps them for Figure 8 and attribution) plus
// O(hosts²) matrices and a fixed base of simulator/solver/analysis
// state. Constants are calibrated against observed runs (a paper-scale
// day produces ~2M records; the two-phase peak measured 1.24 GB).
// Depending only on the config, the same sweep always yields the same
// admission schedule.
func EstimatePeakMB(cfg core.RunConfig) int {
	const (
		baseMB     = 48  // runtime, simulator, solver, analysis scratch
		recBytes   = 112 // retained FlowRecord + slice/index slack
		recsPerJob = 100 // scatter-gather shuffle flows per job, order-of-magnitude
	)
	hosts := cfg.Topology.Racks*cfg.Topology.ServersPerRack + cfg.Topology.ExternalHosts
	jobsPerHour := cfg.Sched.JobsPerHour
	if jobsPerHour <= 0 {
		jobsPerHour = 150 // sched.DefaultConfig's arrival rate
	}
	hours := (cfg.Duration + cfg.DrainTime).Hours()
	records := jobsPerHour * hours * recsPerJob
	bytes := records*recBytes + float64(hosts)*float64(hosts)*3*16
	return baseMB + int(bytes/(1<<20))
}

// topoCache shares immutable Topology values between runs with equal
// topology configs (topology.Config is comparable), so the link tables
// and the precomputed routing artifacts are built once per distinct
// config per sweep.
type topoCache struct {
	mu     sync.Mutex
	built  map[topology.Config]*topology.Topology
	hits   int
	misses int
}

func newTopoCache() *topoCache {
	return &topoCache{built: make(map[topology.Config]*topology.Topology)}
}

// get returns the shared topology for cfg, building it on first use.
func (c *topoCache) get(cfg topology.Config) (*topology.Topology, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.built[cfg]; ok {
		c.hits++
		return t, nil
	}
	t, err := topology.New(cfg)
	if err != nil {
		return nil, err
	}
	c.misses++
	c.built[cfg] = t
	return t, nil
}

// stats reports cache hits and misses so far.
func (c *topoCache) stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
