// Package fleet is the deterministic batch executor: it runs N fused
// simulate+analyze pipelines (core.RunAnalyze) concurrently over one
// shared core budget and one memory budget, and merges their reports
// and metrics in config order.
//
// The PR 4 three-rule determinism contract extends across runs:
//
//  1. Runs are independent domains — no shared mutable state. Each run
//     gets its own registries, collector, RNGs; the only shared objects
//     are immutable (cached topologies) or results-neutral (the worker
//     pool, which decides where spans execute, never what they compute).
//  2. Per-run outputs are disjoint slots: outcome i is written only by
//     run i's goroutine, before its completion is signaled.
//  3. Fleet output is a fixed-order merge keyed by config index, on the
//     coordinator, after every run completes.
//
// Under these rules fleet concurrency, pool size and memory budget can
// only reorder wall-clock execution — every per-run report digest is
// bit-identical to running that config standalone.
package fleet

import (
	"sync"
	"sync/atomic"
)

// Pool is a bounded set of worker goroutines executing submitted
// closures in FIFO order. It implements netsim.Executor, so one Pool
// can be injected into every concurrent run's simulator engine
// (core.WithSimExecutor) and analysis pipeline (core.WithTaskExecutor):
// sim phase spans and analysis window tasks from all runs interleave on
// the same workers, so a run draining its tail cannot idle cores
// another run could use.
//
// Submitted closures must not block on the Pool themselves (the netsim
// and core seams guarantee this: their tasks only compute and signal
// WaitGroups/channels owned by their coordinator), so a bounded Pool
// cannot deadlock. Go never blocks the submitter; backpressure is the
// submitters' own (the analysis in-flight semaphore, the sim phase
// barrier).
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool

	workers   int
	tasks     atomic.Int64 // total closures executed
	queuePeak atomic.Int64 // high-water mark of the pending queue
}

// NewPool starts a pool with the given number of worker goroutines
// (minimum 1). Call Close when done.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// Go enqueues fn for execution. It never blocks and never drops fn.
// Panics if called after Close.
func (p *Pool) Go(fn func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("fleet: Pool.Go after Close")
	}
	p.queue = append(p.queue, fn)
	if n := int64(len(p.queue)); n > p.queuePeak.Load() {
		p.queuePeak.Store(n)
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// Close drains the queue and stops the workers. Safe to call once.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Tasks reports the total closures executed so far.
func (p *Pool) Tasks() int64 { return p.tasks.Load() }

// QueuePeak reports the high-water mark of the pending queue.
func (p *Pool) QueuePeak() int64 { return p.queuePeak.Load() }

func (p *Pool) worker() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		fn := p.queue[0]
		// The pop order below is FIFO but which worker pops is
		// scheduler-dependent — results-neutral by rule 1 of the package
		// contract: the queue holds opaque closures whose outputs land in
		// slots owned by their submitting pipeline, so dequeue order
		// decides only where/when work runs, never what it computes.
		//dctlint:ignore mergeorder queue dispatch is results-neutral; task outputs use the submitters' disjoint slots
		p.queue = p.queue[1:]
		if len(p.queue) == 0 {
			//dctlint:ignore mergeorder queue dispatch is results-neutral; task outputs use the submitters' disjoint slots
			p.queue = nil // let the backing array go once drained
		}
		p.mu.Unlock()
		// Telemetry-only counter, read after the coordinator's join.
		//dctlint:ignore mergeorder commutative telemetry count read only after Execute's barrier
		p.tasks.Add(1)
		fn()
	}
}
