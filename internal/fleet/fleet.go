package fleet

import (
	"context"
	"fmt"
	"sync"

	"dctraffic/internal/core"
	"dctraffic/internal/netsim"
	"dctraffic/internal/obs"
)

// RunSpec is one sweep entry: a config plus a display name (dcsweep
// derives names like "seed1-tree"; an empty name falls back to the
// index).
type RunSpec struct {
	Name   string
	Config core.RunConfig
}

// Options tunes the executor. The zero value runs every pipeline with
// defaults: concurrency and pool sized by GOMAXPROCS, memory budget
// derived from GOMEMLIMIT (none when unlimited).
type Options struct {
	// Concurrency caps the pipelines in flight (0 = GOMAXPROCS,
	// clamped to the spec count). Admission is in config order.
	Concurrency int

	// PoolWorkers sizes the shared worker pool spanning every run's
	// sim spans and analysis tasks (0 = GOMAXPROCS).
	PoolWorkers int

	// MaxHeapMB caps the summed EstimatePeakMB of in-flight runs.
	// 0 derives a budget from GOMEMLIMIT via DefaultBudgetMB;
	// negative disables the gate.
	MaxHeapMB int

	// AnalyzeOpts is appended to every run's RunAnalyze options —
	// figure knobs, CDF caps and the like. Options that would collide
	// with the executor's own wiring (WithRunOptions, WithTaskExecutor,
	// WithAnalysisObserver) must not be passed here.
	AnalyzeOpts []core.AnalyzeOption

	// OnRunDone, when set, is called as each run finishes, serialized
	// under a lock (completion order, not config order — the merged
	// Result is the deterministic view).
	OnRunDone func(RunOutcome)
}

// RunOutcome is one run's merged slot in Result.Outcomes.
type RunOutcome struct {
	Index  int
	Name   string
	Config core.RunConfig

	Report *core.Report
	Digest string // core.ReportDigest of Report; "" on error
	Err    error

	WallSeconds  float64
	EstMB        int   // the admission estimate charged for this run
	Waited       bool  // blocked on the memory gate before launch
	Records      int64 // trace records analyzed (analyze.records_total)
	PeakBuffered int64 // live reorder-buffer peak (analyze.stream.peak_buffered_records)

	// SimMetrics and AnalyzeMetrics are the run's two registry
	// snapshots (the simulation and analysis sides of the fused
	// pipeline drive separate registries; obs registries are
	// single-goroutine).
	SimMetrics     *obs.Snapshot
	AnalyzeMetrics *obs.Snapshot
}

// Result is the fixed-order merge of a sweep.
type Result struct {
	Outcomes []RunOutcome // indexed by config position, always len(specs)
	Failed   int          // runs with a non-nil Err

	// Metrics is the merged fleet snapshot: fleet.* scheduler series,
	// an unprefixed cross-run aggregate (counters summed, gauges maxed)
	// so subsystem prefix checks keep working, and every run's
	// registries under runN. prefixes.
	Metrics *obs.Snapshot
}

// Execute runs every spec's fused RunAnalyze pipeline under the shared
// pool and the memory-budget gate, and returns the config-order merge.
// Per-run failures (including cancellation) land in their outcome's Err
// and count toward Result.Failed; Execute itself errors only on
// internal merge failure. Per-run reports are bit-identical to
// standalone core.RunAnalyze at any concurrency, pool size or budget —
// see the package contract.
func Execute(ctx context.Context, specs []RunSpec, opts Options) (*Result, error) {
	conc := opts.Concurrency
	if conc <= 0 {
		conc = netsim.DefaultWorkers()
	}
	if conc > len(specs) {
		conc = len(specs)
	}
	if conc < 1 {
		conc = 1
	}
	poolW := opts.PoolWorkers
	if poolW <= 0 {
		poolW = netsim.DefaultWorkers()
	}
	budget := opts.MaxHeapMB
	if budget == 0 {
		budget = DefaultBudgetMB()
	}

	pool := NewPool(poolW)
	defer pool.Close()
	gate := newMemGate(budget)
	cache := newTopoCache()

	outcomes := make([]RunOutcome, len(specs))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var doneMu sync.Mutex
	for i, sp := range specs {
		est := EstimatePeakMB(sp.Config)
		if err := ctx.Err(); err != nil {
			outcomes[i] = RunOutcome{Index: i, Name: specName(i, sp), Config: sp.Config, EstMB: est,
				Err: fmt.Errorf("fleet: run not started: %w", err)}
			continue
		}
		sem <- struct{}{}      // concurrency admission, config order
		w := gate.acquire(est) // memory admission, config order
		wg.Add(1)
		go func(i int, sp RunSpec, est int, waited bool) {
			defer wg.Done()
			defer func() { gate.release(est); <-sem }()
			out := executeOne(ctx, i, sp, pool, cache, opts)
			out.EstMB = est
			out.Waited = waited
			outcomes[i] = out // disjoint slot, written before wg.Done
			if opts.OnRunDone != nil {
				doneMu.Lock()
				opts.OnRunDone(out)
				doneMu.Unlock()
			}
		}(i, sp, est, w)
	}
	wg.Wait()

	res := &Result{Outcomes: outcomes}
	parts := make([]obs.SnapshotPart, 0, 2+2*len(outcomes))
	var runSnaps []*obs.Snapshot
	for i := range outcomes {
		o := &outcomes[i]
		if o.Err != nil {
			res.Failed++
		}
		prefix := fmt.Sprintf("run%d.", i)
		parts = append(parts,
			obs.SnapshotPart{Prefix: prefix, Snap: o.SimMetrics},
			obs.SnapshotPart{Prefix: prefix, Snap: o.AnalyzeMetrics})
		runSnaps = append(runSnaps, o.SimMetrics, o.AnalyzeMetrics)
	}
	hits, misses := cache.stats()
	fleetReg := obs.NewRegistry()
	fleetReg.Counter("fleet.runs_total").Add(int64(len(outcomes)))
	fleetReg.Counter("fleet.runs_failed_total").Add(int64(res.Failed))
	fleetReg.Gauge("fleet.concurrency").Set(float64(conc))
	fleetReg.Gauge("fleet.pool.workers").Set(float64(pool.Workers()))
	fleetReg.Counter("fleet.pool.tasks_total").Add(pool.Tasks())
	fleetReg.Gauge("fleet.pool.queue_peak").Set(float64(pool.QueuePeak()))
	fleetReg.Gauge("fleet.budget_mb").Set(float64(max(budget, 0)))
	fleetReg.Counter("fleet.admission_waits_total").Add(int64(gate.waitCount()))
	fleetReg.Counter("fleet.topo_cache_hits_total").Add(int64(hits))
	fleetReg.Counter("fleet.topo_cache_misses_total").Add(int64(misses))
	merged, err := obs.MergeSnapshots(append([]obs.SnapshotPart{
		{Snap: fleetReg.Snapshot()},
		{Snap: obs.AggregateSnapshots(runSnaps...)},
	}, parts...)...)
	if err != nil {
		return nil, fmt.Errorf("fleet: merge metrics: %w", err)
	}
	res.Metrics = merged
	return res, nil
}

// executeOne runs one spec's pipeline with the shared pool and cached
// topology injected. Everything it touches is run-local except the pool
// (results-neutral) and the topology (immutable).
func executeOne(ctx context.Context, i int, sp RunSpec, pool *Pool, cache *topoCache, opts Options) (out RunOutcome) {
	out = RunOutcome{Index: i, Name: specName(i, sp), Config: sp.Config}
	sw := obs.NewStopwatch()
	// Named return: the deferred stamp lands in the returned value.
	defer func() { out.WallSeconds = sw.Elapsed().Seconds() }()

	runReg := obs.NewRegistry()
	aReg := obs.NewRegistry()
	ropts := []core.RunOption{
		core.WithObserver(runReg),
		core.WithSimExecutor(pool),
	}
	top, err := cache.get(sp.Config.Topology)
	if err != nil {
		out.Err = fmt.Errorf("fleet: run %d (%s): %w", i, out.Name, err)
		return out
	}
	ropts = append(ropts, core.WithPrebuiltTopology(top))

	aopts := append([]core.AnalyzeOption{
		core.WithRunOptions(ropts...),
		core.WithTaskExecutor(pool),
		core.WithAnalysisObserver(aReg),
	}, opts.AnalyzeOpts...)

	rr, rep, err := core.RunAnalyze(ctx, sp.Config, aopts...)
	out.AnalyzeMetrics = aReg.Snapshot()
	if rr != nil {
		out.SimMetrics = rr.Metrics // snapshotted by the run's own goroutine
	}
	if out.AnalyzeMetrics != nil {
		out.Records = int64(out.AnalyzeMetrics.Value("analyze.records_total"))
		out.PeakBuffered = int64(out.AnalyzeMetrics.Value("analyze.stream.peak_buffered_records"))
	}
	if err != nil {
		out.Err = fmt.Errorf("fleet: run %d (%s): %w", i, out.Name, err)
		return out
	}
	out.Report = rep
	digest, err := core.ReportDigest(rep)
	if err != nil {
		out.Err = fmt.Errorf("fleet: run %d (%s): digest: %w", i, out.Name, err)
		return out
	}
	out.Digest = digest
	return out
}

func specName(i int, sp RunSpec) string {
	if sp.Name != "" {
		return sp.Name
	}
	return fmt.Sprintf("run%d", i)
}
