package fleet

import (
	"context"
	"testing"

	"dctraffic/internal/core"
)

// benchSpecs is the BENCH_fleet.json workload: the three-config sweep
// the determinism test uses (two fabrics, two seeds). The pair below
// measures fleet overlap against the same configs run back to back —
// on a single-proc box the two are expected to tie (the executor adds
// no barriers there; see EXPERIMENTS.md "Runtime"); with cores to
// spare the fleet run overlaps whole pipelines.
func benchSpecs() []RunSpec { return testSpecs() }

func BenchmarkFleetSweep(b *testing.B) {
	specs := benchSpecs()
	for i := 0; i < b.N; i++ {
		res, err := Execute(context.Background(), specs, Options{MaxHeapMB: -1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 {
			b.Fatalf("%d runs failed", res.Failed)
		}
	}
}

func BenchmarkFleetSequential(b *testing.B) {
	specs := benchSpecs()
	for i := 0; i < b.N; i++ {
		for _, sp := range specs {
			if _, _, err := core.RunAnalyze(context.Background(), sp.Config); err != nil {
				b.Fatal(err)
			}
		}
	}
}
