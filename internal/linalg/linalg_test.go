package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"dctraffic/internal/stats"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	m.Add(1, 1, 1)
	if m.At(1, 1) != 4 || m.At(0, 2) != 2 {
		t.Fatal("Set/Add/At broken")
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 2 || tr.At(1, 1) != 4 {
		t.Fatal("transpose broken")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases original")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{5, 6})
	if y[0] != 17 || y[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", y)
	}
}

func TestMul(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, float64(i*3+j+1)) // 1..6
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			b.Set(i, j, float64(i*2+j+1)) // 1..6
		}
	}
	c := a.Mul(b)
	want := [][]float64{{22, 28}, {49, 64}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatal("Dot broken")
	}
	if v := Sub(b, a); v[0] != 3 || v[2] != 3 {
		t.Fatal("Sub broken")
	}
	if v := AddVec(a, b); v[1] != 7 {
		t.Fatal("AddVec broken")
	}
	if v := Scale(2, a); v[2] != 6 {
		t.Fatal("Scale broken")
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if y[0] != 3 || y[2] != 7 {
		t.Fatal("AXPY broken")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 broken")
	}
	if Norm1([]float64{-1, 2, -3}) != 6 {
		t.Fatal("Norm1 broken")
	}
}

func TestSolveLU(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 1, 1}, {1, 3, 2}, {1, 0, 0}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	b := []float64{4, 5, 6}
	x, err := SolveLU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := a.MulVec(x)
	for i := range b {
		if !almostEq(got[i], b[i], 1e-9) {
			t.Fatalf("residual at %d: %v vs %v", i, got[i], b[i])
		}
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveLU(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveSPD(t *testing.T) {
	// SPD matrix: AᵀA + I for random A.
	r := stats.NewRNG(1)
	n := 8
	raw := NewMatrix(n, n)
	for i := range raw.Data {
		raw.Data[i] = r.NormFloat64()
	}
	spd := raw.T().Mul(raw)
	for i := 0; i < n; i++ {
		spd.Add(i, i, 1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x, err := SolveSPD(spd, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := spd.MulVec(x)
	for i := range b {
		if !almostEq(got[i], b[i], 1e-8) {
			t.Fatalf("SPD residual at %d: %v vs %v", i, got[i], b[i])
		}
	}
}

func TestSolveSPDRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, -1)
	a.Set(1, 1, 1)
	if _, err := SolveSPD(a, []float64{1, 1}, 0); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
}

func TestWLSProjectSatisfiesConstraints(t *testing.T) {
	// 2 constraints over 4 unknowns.
	a := NewMatrix(2, 4)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 2, 1)
	a.Set(1, 3, 1)
	b := []float64{10, 6}
	g := []float64{3, 3, 4, 4} // prior sums: 6 and 8 — both wrong
	w := append([]float64(nil), g...)
	x, err := WLSProject(a, b, g, w)
	if err != nil {
		t.Fatal(err)
	}
	got := a.MulVec(x)
	for i := range b {
		if !almostEq(got[i], b[i], 1e-6) {
			t.Fatalf("constraint %d: %v, want %v", i, got[i], b[i])
		}
	}
	// Equal priors within a constraint should be adjusted equally.
	if !almostEq(x[0], x[1], 1e-9) || !almostEq(x[2], x[3], 1e-9) {
		t.Fatalf("symmetric prior, asymmetric solution: %v", x)
	}
}

func TestWLSProjectRedundantConstraints(t *testing.T) {
	// Add a duplicated constraint row; the ridge must keep the solve stable.
	a := NewMatrix(3, 3)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 2, 1)
	a.Set(2, 0, 1)
	a.Set(2, 1, 1) // duplicate of row 0
	b := []float64{4, 2, 4}
	g := []float64{1, 1, 1}
	x, err := WLSProject(a, b, g, g)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0]+x[1], 4, 1e-4) || !almostEq(x[2], 2, 1e-4) {
		t.Fatalf("redundant-constraint solution %v", x)
	}
}

func TestWLSProjectKeepsPriorWhenConsistent(t *testing.T) {
	// If the prior already satisfies the constraints, it is returned as-is.
	a := NewMatrix(1, 3)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(0, 2, 1)
	g := []float64{2, 3, 5}
	x, err := WLSProject(a, []float64{10}, g, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if !almostEq(x[i], g[i], 1e-6) {
			t.Fatalf("consistent prior perturbed: %v", x)
		}
	}
}

func TestClampNonNeg(t *testing.T) {
	v := ClampNonNeg([]float64{-1, 2, -0.5, 0})
	if v[0] != 0 || v[1] != 2 || v[2] != 0 || v[3] != 0 {
		t.Fatalf("ClampNonNeg = %v", v)
	}
}

// Property: SolveLU solutions reproduce b for random well-conditioned
// systems (diagonally dominant by construction).
func TestSolveLUProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 3 + r.IntN(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Add(i, i, rowSum+1) // dominance => nonsingular
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		x, err := SolveLU(a, b)
		if err != nil {
			return false
		}
		res := Sub(a.MulVec(x), b)
		return Norm2(res) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: WLSProject always satisfies constraints (up to the ridge
// tolerance) for random feasible systems.
func TestWLSProjectProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		nCols := 4 + r.IntN(8)
		nRows := 1 + r.IntN(3)
		a := NewMatrix(nRows, nCols)
		for i := range a.Data {
			if r.Bool(0.5) {
				a.Data[i] = 1
			}
		}
		// Feasible b: derive from a random non-negative x*.
		xs := make([]float64, nCols)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		b := a.MulVec(xs)
		g := make([]float64, nCols)
		for i := range g {
			g[i] = r.Float64() * 100
		}
		x, err := WLSProject(a, b, g, g)
		if err != nil {
			return false
		}
		res := Sub(a.MulVec(x), b)
		return Norm2(res) <= 1e-3*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
