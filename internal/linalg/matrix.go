// Package linalg provides the small dense linear algebra kernel used by the
// tomography estimators: vectors, row-major matrices, LU and Cholesky
// solves, and equality-constrained weighted least squares.
//
// The matrices involved in datacenter tomography are modest (the constraint
// matrix has one row per link counter — a few hundred rows — regardless of
// cluster size), so a straightforward dense implementation is both adequate
// and dependency-free.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MulVec returns m·x. It panics on dimension mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dim mismatch %d vs %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecInto computes dst = m·x without allocating; dst must have
// length m.Rows. The accumulation order (and hence every bit of the
// result) matches MulVec.
func (m *Matrix) MulVecInto(dst, x []float64) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVecInto dim mismatch %d vs %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic("linalg: MulVecInto dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Mul returns m·b. It panics on dimension mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dim mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, v := range brow {
				orow[j] += a * v
			}
		}
	}
	return out
}

// MulDiagRight returns m·diag(d): scales column j by d[j].
func (m *Matrix) MulDiagRight(d []float64) *Matrix {
	if len(d) != m.Cols {
		panic("linalg: MulDiagRight dim mismatch")
	}
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		for j := 0; j < out.Cols; j++ {
			out.Data[i*out.Cols+j] *= d[j]
		}
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot dim mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY dim mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Scale returns alpha*v as a new vector.
func Scale(alpha float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = alpha * x
	}
	return out
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: Sub dim mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AddVec returns a+b as a new vector.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: AddVec dim mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
