package linalg

import (
	"math"
	"testing"

	"dctraffic/internal/stats"
)

// wlsProjectReference is the original dense WLSProject implementation,
// kept verbatim as the bit-identity reference for WLSWorkspace.Project
// (which reorders nothing, only reuses storage and skips exact-zero
// terms).
func wlsProjectReference(a *Matrix, b, g, w []float64) ([]float64, error) {
	if a.Cols != len(g) || a.Cols != len(w) || a.Rows != len(b) {
		panic("linalg: WLSProject dim mismatch")
	}
	const wFloor = 1e-9
	wc := make([]float64, len(w))
	for i, v := range w {
		if v < wFloor {
			v = wFloor
		}
		wc[i] = v
	}
	r := Sub(b, a.MulVec(g))
	aw := a.MulDiagRight(wc)
	m := aw.Mul(a.T())
	ridge := 1e-8 * traceOf(m) / float64(m.Rows)
	if ridge <= 0 {
		ridge = 1e-12
	}
	y, err := SolveSPD(m, r, ridge)
	if err != nil {
		return nil, err
	}
	x := append([]float64(nil), g...)
	at := a.T()
	wy := at.MulVec(y)
	for j := range x {
		x[j] += wc[j] * wy[j]
	}
	return x, nil
}

// randomWLSInstance builds a routing-like sparse system with a feasible,
// paper-magnitude prior.
func randomWLSInstance(seed uint64) (*Matrix, []float64, []float64) {
	r := stats.NewRNG(seed)
	m := 6 + r.IntN(10)
	n := m + r.IntN(30)
	a := NewMatrix(m, n)
	for col := 0; col < n; col++ {
		k := 1 + r.IntN(3)
		for t := 0; t < k; t++ {
			a.Set(r.IntN(m), col, 1)
		}
	}
	g := make([]float64, n)
	for j := range g {
		if r.Bool(0.4) {
			g[j] = r.Float64() * 1e9
		}
	}
	b := a.MulVec(g)
	for i := range b {
		b[i] *= 1 + (r.Float64()-0.5)*0.1 // perturb so the projection works
	}
	return a, b, g
}

// TestWLSWorkspaceMatchesReferenceBitwise requires Project (and therefore
// WLSProject, which delegates to it) to reproduce the original dense
// implementation bit for bit, weights equal to the prior as tomogravity
// uses them.
func TestWLSWorkspaceMatchesReferenceBitwise(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		a, b, g := randomWLSInstance(seed)
		want, errW := wlsProjectReference(a, b, g, g)
		got, errG := NewWLSWorkspace(a).Project(nil, b, g, g)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("seed %d: error mismatch: %v vs %v", seed, errW, errG)
		}
		if errW != nil {
			continue
		}
		for j := range want {
			if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
				t.Fatalf("seed %d: x[%d] differs: %v vs %v", seed, j, want[j], got[j])
			}
		}
	}
}

// TestWLSWorkspaceSteadyStateAllocs requires repeated projections through
// one workspace to allocate nothing once dst is provided.
func TestWLSWorkspaceSteadyStateAllocs(t *testing.T) {
	a, b, g := randomWLSInstance(7)
	ws := NewWLSWorkspace(a)
	dst := make([]float64, a.Cols)
	if _, err := ws.Project(dst, b, g, g); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := ws.Project(dst, b, g, g); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Project allocates %v allocs/op in steady state", allocs)
	}
}
