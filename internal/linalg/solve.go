package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("linalg: singular matrix")

// SolveLU solves a·x = b for square a using Gaussian elimination with
// partial pivoting. a and b are not modified.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("linalg: SolveLU needs a square system")
	}
	// Augmented working copy.
	m := a.Clone()
	x := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, best := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[p*n+j] = m.Data[p*n+j], m.Data[col*n+j]
			}
			x[col], x[p] = x[p], x[col]
		}
		piv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / piv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// SolveSPD solves a·x = b for a symmetric positive-definite a via Cholesky
// factorization. A tiny ridge (lambda) may be passed to regularize
// near-singular systems; pass 0 for none. a and b are not modified.
func SolveSPD(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("linalg: SolveSPD needs a square system")
	}
	// Cholesky: a = L·Lᵀ, L lower-triangular stored densely.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			if i == j {
				s += lambda
			}
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, j, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// WLSProject solves the equality-constrained weighted least squares problem
//
//	minimize   Σ (x_j − g_j)² / w_j
//	subject to A·x = b
//
// whose closed form is x = g + W·Aᵀ·(A·W·Aᵀ)⁻¹·(b − A·g) with W = diag(w).
// This is the adjustment step of tomogravity (Zhang et al.): g is the
// gravity prior, w the per-entry confidence (typically w = g), and A·x = b
// the link-counter constraints. Zero or negative weights are clamped to a
// small positive floor so entries the prior believes are zero can still
// move a little to satisfy the constraints.
//
// The result may contain small negative entries; callers typically clamp to
// zero afterwards (ClampNonNeg).
func WLSProject(a *Matrix, b, g, w []float64) ([]float64, error) {
	if a.Cols != len(g) || a.Cols != len(w) || a.Rows != len(b) {
		panic("linalg: WLSProject dim mismatch")
	}
	const wFloor = 1e-9
	wc := make([]float64, len(w))
	for i, v := range w {
		if v < wFloor {
			v = wFloor
		}
		wc[i] = v
	}
	// r = b − A·g
	r := Sub(b, a.MulVec(g))
	// M = A·W·Aᵀ  (m×m, m = number of constraints)
	aw := a.MulDiagRight(wc)
	m := aw.Mul(a.T())
	// Solve M·y = r with a small ridge for numerical safety: link-count
	// constraint sets routinely contain redundant rows (e.g. sum of ToR
	// uplinks equals sum of core downlinks), which make M singular.
	ridge := 1e-8 * traceOf(m) / float64(m.Rows)
	if ridge <= 0 {
		ridge = 1e-12
	}
	y, err := SolveSPD(m, r, ridge)
	if err != nil {
		return nil, err
	}
	// x = g + W·Aᵀ·y
	x := append([]float64(nil), g...)
	at := a.T()
	wy := at.MulVec(y)
	for j := range x {
		x[j] += wc[j] * wy[j]
	}
	return x, nil
}

func traceOf(m *Matrix) float64 {
	t := 0.0
	for i := 0; i < m.Rows && i < m.Cols; i++ {
		t += m.At(i, i)
	}
	return t
}

// ClampNonNeg zeroes negative entries of v in place and returns v.
func ClampNonNeg(v []float64) []float64 {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
	return v
}
