package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("linalg: singular matrix")

// SolveLU solves a·x = b for square a using Gaussian elimination with
// partial pivoting. a and b are not modified.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("linalg: SolveLU needs a square system")
	}
	// Augmented working copy.
	m := a.Clone()
	x := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, best := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[p*n+j] = m.Data[p*n+j], m.Data[col*n+j]
			}
			x[col], x[p] = x[p], x[col]
		}
		piv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / piv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// SolveSPD solves a·x = b for a symmetric positive-definite a via Cholesky
// factorization. A tiny ridge (lambda) may be passed to regularize
// near-singular systems; pass 0 for none. a and b are not modified.
func SolveSPD(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("linalg: SolveSPD needs a square system")
	}
	// Cholesky: a = L·Lᵀ, L lower-triangular stored densely.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			if i == j {
				s += lambda
			}
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, j, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// WLSProject solves the equality-constrained weighted least squares problem
//
//	minimize   Σ (x_j − g_j)² / w_j
//	subject to A·x = b
//
// whose closed form is x = g + W·Aᵀ·(A·W·Aᵀ)⁻¹·(b − A·g) with W = diag(w).
// This is the adjustment step of tomogravity (Zhang et al.): g is the
// gravity prior, w the per-entry confidence (typically w = g), and A·x = b
// the link-counter constraints. Zero or negative weights are clamped to a
// small positive floor so entries the prior believes are zero can still
// move a little to satisfy the constraints.
//
// The result may contain small negative entries; callers typically clamp to
// zero afterwards (ClampNonNeg).
func WLSProject(a *Matrix, b, g, w []float64) ([]float64, error) {
	return NewWLSWorkspace(a).Project(nil, b, g, w)
}

// WLSWorkspace holds the scratch state of WLSProject for one fixed
// constraint matrix, so repeated projections (one per tomography window)
// run without per-call allocation. The arithmetic — operation order and
// all — matches WLSProject exactly, so switching a caller to a workspace
// cannot move a single bit of its results (regression-tested against a
// reference copy of the dense implementation).
//
// A workspace is not goroutine-safe; use one per worker.
type WLSWorkspace struct {
	a   *Matrix // not owned; must not change while the workspace lives
	csc *CSC    // column index of a, for the sparse Aᵀ products

	wc, wy []float64 // per-variable scratch (len Cols)
	ag, r  []float64 // per-constraint scratch (len Rows)
	nm     *Matrix   // A·W·Aᵀ normal matrix (Rows×Rows)
	l      *Matrix   // its Cholesky factor
	cy, cx []float64 // Cholesky forward/back scratch
}

// NewWLSWorkspace builds a reusable projection workspace for a.
func NewWLSWorkspace(a *Matrix) *WLSWorkspace {
	m, n := a.Rows, a.Cols
	return &WLSWorkspace{
		a:   a,
		csc: NewCSC(a),
		wc:  make([]float64, n),
		wy:  make([]float64, n),
		ag:  make([]float64, m),
		r:   make([]float64, m),
		nm:  NewMatrix(m, m),
		l:   NewMatrix(m, m),
		cy:  make([]float64, m),
		cx:  make([]float64, m),
	}
}

// Project solves the same problem as WLSProject, writing the result into
// dst when it has the right length (allocating otherwise) and returning
// it. See WLSProject for the formulation.
func (ws *WLSWorkspace) Project(dst []float64, b, g, w []float64) ([]float64, error) {
	a := ws.a
	if a.Cols != len(g) || a.Cols != len(w) || a.Rows != len(b) {
		panic("linalg: WLSProject dim mismatch")
	}
	const wFloor = 1e-9
	for i, v := range w {
		if v < wFloor {
			v = wFloor
		}
		ws.wc[i] = v
	}
	// r = b − A·g
	a.MulVecInto(ws.ag, g)
	for i := range ws.r {
		ws.r[i] = b[i] - ws.ag[i]
	}
	// M = A·W·Aᵀ. The dense path materializes a·diag(w) and aᵀ and
	// multiplies them; here the same partial products accumulate in the
	// same (i, k, j) order, but k runs over the non-zeros of row i and j
	// over the non-zeros of column k. The skipped terms are exact ±0
	// contributions (x + ±0 == x for every partial sum arising here, and
	// the accumulators can never be -0 because subtraction of equal
	// values yields +0), so the result is bit-identical.
	nm := ws.nm
	for i := range nm.Data {
		nm.Data[i] = 0
	}
	m, n := a.Rows, a.Cols
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		orow := nm.Data[i*m : (i+1)*m]
		for k, v := range row {
			if v == 0 {
				continue
			}
			awik := v * ws.wc[k]
			if awik == 0 {
				continue
			}
			for t := ws.csc.ColPtr[k]; t < ws.csc.ColPtr[k+1]; t++ {
				orow[ws.csc.RowIdx[t]] += awik * ws.csc.Val[t]
			}
		}
	}
	// Solve M·y = r with a small ridge for numerical safety: link-count
	// constraint sets routinely contain redundant rows (e.g. sum of ToR
	// uplinks equals sum of core downlinks), which make M singular.
	ridge := 1e-8 * traceOf(nm) / float64(nm.Rows)
	if ridge <= 0 {
		ridge = 1e-12
	}
	y, err := ws.solveSPD(nm, ws.r, ridge)
	if err != nil {
		return nil, err
	}
	// x = g + W·Aᵀ·y
	if len(dst) != n {
		dst = make([]float64, n)
	}
	copy(dst, g)
	ws.csc.TMulVecInto(ws.wy, y)
	for j := range dst {
		dst[j] += ws.wc[j] * ws.wy[j]
	}
	return dst, nil
}

// solveSPD is SolveSPD with the factor and solve vectors taken from the
// workspace. Loop structure is identical; only the storage is reused
// (stale upper-triangle entries of the previous factor are never read).
func (ws *WLSWorkspace) solveSPD(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	n := a.Rows
	l := ws.l
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			if i == j {
				s += lambda
			}
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, j, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	y := ws.cy
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	x := ws.cx
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

func traceOf(m *Matrix) float64 {
	t := 0.0
	for i := 0; i < m.Rows && i < m.Cols; i++ {
		t += m.At(i, i)
	}
	return t
}

// ClampNonNeg zeroes negative entries of v in place and returns v.
func ClampNonNeg(v []float64) []float64 {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
	return v
}
