package linalg

// CSC is a compressed-sparse-column index of a Matrix: for each column,
// the rows with non-zero entries in ascending order. The tomography
// routing matrix is 0/1 with 2–4 entries per column (the links of one
// rack pair's path), so the column index is built once per problem and
// shared by every solver bound to it (revised simplex, WLS workspaces).
// A CSC is immutable after construction and safe for concurrent readers.
type CSC struct {
	Rows, Cols int
	ColPtr     []int32 // len Cols+1; column j occupies [ColPtr[j], ColPtr[j+1])
	RowIdx     []int32 // row index per stored entry, ascending within a column
	Val        []float64
}

// NewCSC builds the column index of m, dropping exact zeros.
func NewCSC(m *Matrix) *CSC {
	c := &CSC{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: make([]int32, m.Cols+1),
	}
	nnz := 0
	for _, v := range m.Data {
		if v != 0 {
			nnz++
		}
	}
	c.RowIdx = make([]int32, 0, nnz)
	c.Val = make([]float64, 0, nnz)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if v := m.At(i, j); v != 0 {
				c.RowIdx = append(c.RowIdx, int32(i))
				c.Val = append(c.Val, v)
			}
		}
		c.ColPtr[j+1] = int32(len(c.RowIdx))
	}
	return c
}

// NNZ reports the number of stored entries.
func (c *CSC) NNZ() int { return len(c.Val) }

// Dense expands the index back into a dense Matrix.
func (c *CSC) Dense() *Matrix {
	m := NewMatrix(c.Rows, c.Cols)
	for j := 0; j < c.Cols; j++ {
		for t := c.ColPtr[j]; t < c.ColPtr[j+1]; t++ {
			m.Set(int(c.RowIdx[t]), j, c.Val[t])
		}
	}
	return m
}

// MulVecInto computes dst = A·x by column scatter. dst must have length
// Rows; it is zeroed first. Note the accumulation order differs from the
// dense row-major Matrix.MulVec (columns outer instead of inner), so the
// two can differ in the last ulp — callers that pin digests to the dense
// path (tomo.Problem.CountsInto) use Matrix.MulVecInto instead.
func (c *CSC) MulVecInto(dst, x []float64) {
	if len(x) != c.Cols || len(dst) != c.Rows {
		panic("linalg: CSC.MulVecInto dim mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < c.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for t := c.ColPtr[j]; t < c.ColPtr[j+1]; t++ {
			dst[c.RowIdx[t]] += c.Val[t] * xj
		}
	}
}

// TMulVecInto computes dst = Aᵀ·y: dst[j] is the column-j dot product
// over stored entries in ascending row order, bit-identical to the dense
// transpose's row-major MulVec on matrices whose zero entries contribute
// exact +0 terms (any matrix: x + ±0 == x for the partial sums that
// arise here, which are never -0 because IEEE subtraction of equal
// values yields +0).
func (c *CSC) TMulVecInto(dst, y []float64) {
	if len(y) != c.Rows || len(dst) != c.Cols {
		panic("linalg: CSC.TMulVecInto dim mismatch")
	}
	for j := 0; j < c.Cols; j++ {
		s := 0.0
		for t := c.ColPtr[j]; t < c.ColPtr[j+1]; t++ {
			s += c.Val[t] * y[c.RowIdx[t]]
		}
		dst[j] = s
	}
}
