// Package eventlog is the application-level log of the cluster: job and
// phase lifecycle events, read attempts and their outcomes, and evacuation
// notices. The paper merges these logs with the network event logs to
// attribute traffic to applications (§4.2) and to correlate read failures
// with congestion (Figure 8); internal/congestion performs those joins.
package eventlog

import (
	"dctraffic/internal/netsim"
	"dctraffic/internal/topology"
)

// EventType classifies a lifecycle record.
type EventType uint8

// Lifecycle event types.
const (
	JobSubmitted EventType = iota
	JobStarted
	JobCompleted
	JobKilled
	PhaseStarted
	PhaseCompleted
	VertexStarted
	VertexCompleted
	EvacuationStarted
	EvacuationCompleted
)

// String returns the event-type name.
func (e EventType) String() string {
	switch e {
	case JobSubmitted:
		return "job-submitted"
	case JobStarted:
		return "job-started"
	case JobCompleted:
		return "job-completed"
	case JobKilled:
		return "job-killed"
	case PhaseStarted:
		return "phase-started"
	case PhaseCompleted:
		return "phase-completed"
	case VertexStarted:
		return "vertex-started"
	case VertexCompleted:
		return "vertex-completed"
	case EvacuationStarted:
		return "evacuation-started"
	case EvacuationCompleted:
		return "evacuation-completed"
	}
	return "unknown"
}

// Record is one lifecycle event.
type Record struct {
	Time   netsim.Time
	Type   EventType
	Job    int
	Phase  int
	Vertex int
	Server topology.ServerID
	Name   string // job name for submit records; free-form detail otherwise
}

// ReadAttempt records one attempt by a vertex to read input data — the
// unit over which read failures are reported. Local reads have Flow == -1.
type ReadAttempt struct {
	Job    int
	Phase  int
	Vertex int
	Src    topology.ServerID // data source
	Dst    topology.ServerID // reading vertex's server
	Flow   netsim.FlowID
	Start  netsim.Time
	End    netsim.Time
	Failed bool
}

// Overlaps reports whether the attempt's lifetime intersects [from, to).
func (r ReadAttempt) Overlaps(from, to netsim.Time) bool {
	return r.Start < to && r.End > from
}

// JobMembership records which servers ran vertices of which job and when;
// it is the metadata the job-augmented tomography prior consumes (§5.3).
// Phase records the vertex's role in the workflow, enabling the
// role-aware prior the paper names as future work (traffic flows from a
// phase's racks to the next phase's racks, not symmetrically).
type JobMembership struct {
	Job    int
	Phase  int
	Server topology.ServerID
	Start  netsim.Time
	End    netsim.Time
}

// Log accumulates application events for one simulation run. The zero
// value is ready to use. It is not safe for concurrent use; the simulator
// is single-threaded.
type Log struct {
	records    []Record
	reads      []ReadAttempt
	membership []JobMembership
}

// Append adds a lifecycle record.
func (l *Log) Append(r Record) { l.records = append(l.records, r) }

// AppendRead adds a read-attempt record.
func (l *Log) AppendRead(r ReadAttempt) { l.reads = append(l.reads, r) }

// AppendMembership adds a job-membership record.
func (l *Log) AppendMembership(m JobMembership) { l.membership = append(l.membership, m) }

// Records returns all lifecycle records in append order.
func (l *Log) Records() []Record { return l.records }

// Reads returns all read attempts in append order.
func (l *Log) Reads() []ReadAttempt { return l.reads }

// Membership returns all job-membership records.
func (l *Log) Membership() []JobMembership { return l.membership }

// FilterType returns lifecycle records of the given type within [from, to).
func (l *Log) FilterType(t EventType, from, to netsim.Time) []Record {
	var out []Record
	for _, r := range l.records {
		if r.Type == t && r.Time >= from && r.Time < to {
			out = append(out, r)
		}
	}
	return out
}

// CountType counts lifecycle records of the given type.
func (l *Log) CountType(t EventType) int {
	n := 0
	for _, r := range l.records {
		if r.Type == t {
			n++
		}
	}
	return n
}

// ReadFailureStats summarizes read attempts within [from, to):
// total attempts, failures, and the failure probability.
func (l *Log) ReadFailureStats(from, to netsim.Time) (attempts, failures int, p float64) {
	for _, r := range l.reads {
		if !r.Overlaps(from, to) {
			continue
		}
		attempts++
		if r.Failed {
			failures++
		}
	}
	if attempts > 0 {
		p = float64(failures) / float64(attempts)
	}
	return attempts, failures, p
}

// JobsOnServer returns the set of jobs with a vertex on srv overlapping
// [from, to), used to build the job-shared prior.
func (l *Log) JobsOnServer(srv topology.ServerID, from, to netsim.Time) map[int]bool {
	out := make(map[int]bool)
	for _, m := range l.membership {
		if m.Server == srv && m.Start < to && m.End > from {
			out[m.Job] = true
		}
	}
	return out
}
