package eventlog

import (
	"testing"
	"time"
)

func TestAppendAndFilter(t *testing.T) {
	var l Log
	l.Append(Record{Time: 1 * time.Second, Type: JobSubmitted, Job: 1, Name: "j1"})
	l.Append(Record{Time: 2 * time.Second, Type: JobStarted, Job: 1})
	l.Append(Record{Time: 5 * time.Second, Type: JobCompleted, Job: 1})
	l.Append(Record{Time: 7 * time.Second, Type: JobSubmitted, Job: 2, Name: "j2"})
	if got := l.CountType(JobSubmitted); got != 2 {
		t.Fatalf("CountType = %d, want 2", got)
	}
	got := l.FilterType(JobSubmitted, 0, 6*time.Second)
	if len(got) != 1 || got[0].Name != "j1" {
		t.Fatalf("FilterType = %v", got)
	}
	if len(l.Records()) != 4 {
		t.Fatalf("Records = %d", len(l.Records()))
	}
}

func TestReadFailureStats(t *testing.T) {
	var l Log
	l.AppendRead(ReadAttempt{Job: 1, Start: 1 * time.Second, End: 2 * time.Second, Failed: false})
	l.AppendRead(ReadAttempt{Job: 1, Start: 3 * time.Second, End: 4 * time.Second, Failed: true})
	l.AppendRead(ReadAttempt{Job: 2, Start: 10 * time.Second, End: 12 * time.Second, Failed: true})
	a, f, p := l.ReadFailureStats(0, 5*time.Second)
	if a != 2 || f != 1 || p != 0.5 {
		t.Fatalf("stats = %d %d %v", a, f, p)
	}
	a, f, p = l.ReadFailureStats(0, 20*time.Second)
	if a != 3 || f != 2 {
		t.Fatalf("full-window stats = %d %d %v", a, f, p)
	}
	a, _, p = l.ReadFailureStats(100*time.Second, 200*time.Second)
	if a != 0 || p != 0 {
		t.Fatalf("empty-window stats = %d %v", a, p)
	}
}

func TestReadOverlaps(t *testing.T) {
	r := ReadAttempt{Start: 2 * time.Second, End: 4 * time.Second}
	cases := []struct {
		from, to time.Duration
		want     bool
	}{
		{0, 1 * time.Second, false},
		{0, 2 * time.Second, false}, // half-open: ends exactly at start
		{0, 3 * time.Second, true},
		{3 * time.Second, 10 * time.Second, true},
		{4 * time.Second, 10 * time.Second, false},
	}
	for _, c := range cases {
		if got := r.Overlaps(c.from, c.to); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestJobsOnServer(t *testing.T) {
	var l Log
	l.AppendMembership(JobMembership{Job: 1, Server: 5, Start: 0, End: 10 * time.Second})
	l.AppendMembership(JobMembership{Job: 2, Server: 5, Start: 20 * time.Second, End: 30 * time.Second})
	l.AppendMembership(JobMembership{Job: 3, Server: 6, Start: 0, End: 10 * time.Second})
	jobs := l.JobsOnServer(5, 0, 15*time.Second)
	if len(jobs) != 1 || !jobs[1] {
		t.Fatalf("JobsOnServer = %v", jobs)
	}
	jobs = l.JobsOnServer(5, 0, 25*time.Second)
	if len(jobs) != 2 {
		t.Fatalf("JobsOnServer = %v", jobs)
	}
}

func TestEventTypeStrings(t *testing.T) {
	types := []EventType{JobSubmitted, JobStarted, JobCompleted, JobKilled,
		PhaseStarted, PhaseCompleted, VertexStarted, VertexCompleted,
		EvacuationStarted, EvacuationCompleted}
	seen := map[string]bool{}
	for _, e := range types {
		s := e.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("bad event string %q", s)
		}
		seen[s] = true
	}
	if EventType(99).String() != "unknown" {
		t.Fatal("unknown type should say so")
	}
}
