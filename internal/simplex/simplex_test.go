package simplex

import (
	"math"
	"testing"
	"testing/quick"

	"dctraffic/internal/linalg"
	"dctraffic/internal/stats"
)

func mat(rows, cols int, vals ...float64) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	copy(m.Data, vals)
	return m
}

func TestSolveSimpleLP(t *testing.T) {
	// minimize -x1 - 2x2 s.t. x1 + x2 + s = 4, x2 + s2 = 3 (slacks explicit)
	// Optimal: x1=1, x2=3, obj=-7.
	a := mat(2, 4,
		1, 1, 1, 0,
		0, 1, 0, 1,
	)
	b := []float64{4, 3}
	c := []float64{-1, -2, 0, 0}
	res, err := Solve(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Obj+7) > 1e-6 {
		t.Fatalf("obj = %v, want -7 (x=%v)", res.Obj, res.X)
	}
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]-3) > 1e-6 {
		t.Fatalf("x = %v, want [1 3 0 0]", res.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x1 = 1 and x1 = 2 simultaneously.
	a := mat(2, 1, 1, 1)
	b := []float64{1, 2}
	if _, err := Solve(a, b, []float64{1}); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// minimize -x1 s.t. x1 - x2 = 0: both can grow without bound.
	a := mat(1, 2, 1, -1)
	b := []float64{0}
	if _, err := Solve(a, b, []float64{-1, 0}); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// -x1 = -5  =>  x1 = 5.
	a := mat(1, 1, -1)
	b := []float64{-5}
	res, err := Solve(a, b, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-5) > 1e-9 {
		t.Fatalf("x = %v, want [5]", res.X)
	}
}

func TestSolveRedundantConstraints(t *testing.T) {
	// Duplicate rows must not make the problem infeasible.
	a := mat(3, 2,
		1, 1,
		1, 1,
		1, 0,
	)
	b := []float64{10, 10, 4}
	res, err := Solve(a, b, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-4) > 1e-6 || math.Abs(res.X[1]-6) > 1e-6 {
		t.Fatalf("x = %v, want [4 6]", res.X)
	}
}

func TestFeasibleBasicSparsity(t *testing.T) {
	// 3 constraints over 12 variables: the BFS must have <= 3 positives.
	r := stats.NewRNG(2)
	a := linalg.NewMatrix(3, 12)
	xTrue := make([]float64, 12)
	for j := 0; j < 12; j++ {
		a.Set(j%3, j, 1)
		xTrue[j] = r.Float64() * 10
	}
	b := a.MulVec(xTrue)
	res, err := FeasibleBasic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, v := range res.X {
		if v > 1e-9 {
			nonzero++
		}
	}
	if nonzero > 3 {
		t.Fatalf("BFS has %d non-zeros, want <= 3 (x=%v)", nonzero, res.X)
	}
	got := a.MulVec(res.X)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
			t.Fatalf("constraint %d violated: %v vs %v", i, got[i], b[i])
		}
	}
}

func TestPhase2ImprovesOnPhase1(t *testing.T) {
	// min x3 s.t. x1+x3 = 2, x2+x3 = 2. Optimal has x3 = 0.
	a := mat(2, 3,
		1, 0, 1,
		0, 1, 1,
	)
	b := []float64{2, 2}
	res, err := Solve(a, b, []float64{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[2] > 1e-9 {
		t.Fatalf("x3 = %v, want 0", res.X[2])
	}
}

func TestDegenerateProblem(t *testing.T) {
	// b contains zeros — classic degeneracy; Bland's rule must terminate.
	a := mat(3, 5,
		1, 1, 0, 1, 0,
		1, 0, 1, 0, 0,
		0, 1, -1, 0, 1,
	)
	b := []float64{1, 0, 0}
	res, err := Solve(a, b, []float64{-1, -1, -1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	got := a.MulVec(res.X)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-7 {
			t.Fatalf("constraint %d violated: %v vs %v", i, got[i], b[i])
		}
	}
}

// Property: for random feasible systems, FeasibleBasic returns a
// non-negative solution satisfying A·x = b with at most rank(A) <= m
// positive entries.
func TestFeasibleBasicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		m := 2 + r.IntN(4)
		n := m + 2 + r.IntN(10)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			if r.Bool(0.4) {
				a.Data[i] = 1 + r.Float64()
			}
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			if r.Bool(0.7) {
				xTrue[i] = r.Float64() * 50
			}
		}
		b := a.MulVec(xTrue)
		res, err := FeasibleBasic(a, b)
		if err != nil {
			return false
		}
		nonzero := 0
		for _, v := range res.X {
			if v < -1e-7 {
				return false
			}
			if v > 1e-7 {
				nonzero++
			}
		}
		if nonzero > m {
			return false
		}
		got := a.MulVec(res.X)
		for i := range b {
			if math.Abs(got[i]-b[i]) > 1e-5*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: phase-2 optimum is never worse than the phase-1 BFS objective.
func TestPhase2NoWorseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		m := 2 + r.IntN(3)
		n := m + 2 + r.IntN(6)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			if r.Bool(0.5) {
				a.Data[i] = 1
			}
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.Float64() * 10
		}
		b := a.MulVec(xTrue)
		c := make([]float64, n)
		for i := range c {
			c[i] = r.Float64()
		}
		bfs, err := FeasibleBasic(a, b)
		if err != nil {
			return false
		}
		opt, err := Solve(a, b, c)
		if err != nil {
			return false
		}
		return opt.Obj <= linalg.Dot(c, bfs.X)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
