package simplex

import (
	"fmt"
	"math"

	"dctraffic/internal/linalg"
)

// This file is the original dense-tableau implementation, kept verbatim as
// the reference path behind Options.Dense (the A/B pattern PR 1 used with
// FullRecompute). The revised solver in solver.go is pinned bit-identical
// to it on cold starts by the equivalence tests in sparse_test.go.

// tableau is the dense simplex tableau: rows are constraints plus the
// objective row; basic tracks which variable is basic in each row.
type tableau struct {
	m, n  int // constraints, variables (including any artificials)
	a     []float64
	b     []float64
	c     []float64 // reduced-cost row
	obj   float64
	basic []int
	iters int
}

func (t *tableau) at(i, j int) float64     { return t.a[i*t.n+j] }
func (t *tableau) set(i, j int, v float64) { t.a[i*t.n+j] = v }

// pivot performs a pivot on (row, col) in place.
func (t *tableau) pivot(row, col int) {
	t.iters++
	p := t.at(row, col)
	inv := 1 / p
	for j := 0; j < t.n; j++ {
		t.a[row*t.n+j] *= inv
	}
	t.b[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.at(i, col)
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i*t.n+j] -= f * t.a[row*t.n+j]
		}
		t.b[i] -= f * t.b[row]
	}
	f := t.c[col]
	if f != 0 {
		for j := 0; j < t.n; j++ {
			t.c[j] -= f * t.a[row*t.n+j]
		}
		t.obj -= f * t.b[row]
	}
	t.basic[row] = col
}

// iterate runs simplex pivots with Bland's rule until optimal or unbounded.
// allowed limits entering variables (nil means all).
func (t *tableau) iterate(allowed func(j int) bool) error {
	maxIters := 50 * (t.m + t.n) * 4
	for {
		// Bland: entering variable = smallest index with negative reduced cost.
		col := -1
		for j := 0; j < t.n; j++ {
			if t.c[j] < -eps && (allowed == nil || allowed(j)) {
				col = j
				break
			}
		}
		if col < 0 {
			return nil // optimal
		}
		// Ratio test with Bland tie-break on basic variable index.
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.at(i, col)
			if aij > eps {
				ratio := t.b[i] / aij
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (row < 0 || t.basic[i] < t.basic[row])) {
					bestRatio = ratio
					row = i
				}
			}
		}
		if row < 0 {
			return ErrUnbounded
		}
		t.pivot(row, col)
		if t.iters > maxIters {
			return fmt.Errorf("simplex: iteration limit exceeded (%d)", maxIters)
		}
	}
}

// solveDense minimizes c·x subject to A·x = b, x >= 0 with the dense
// two-phase tableau. Rows with negative b are negated first. Pass a nil c
// to stop after phase 1 (any feasible basic solution).
func solveDense(a *linalg.Matrix, b, c []float64) (*Result, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m || (c != nil && len(c) != n) {
		panic("simplex: dimension mismatch")
	}
	// Phase 1: add m artificial variables with cost 1 each.
	t := &tableau{m: m, n: n + m}
	t.a = make([]float64, t.m*t.n)
	t.b = make([]float64, m)
	t.c = make([]float64, t.n)
	t.basic = make([]int, m)
	for i := 0; i < m; i++ {
		sign := 1.0
		if b[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			t.set(i, j, sign*a.At(i, j))
		}
		t.b[i] = sign * b[i]
		t.set(i, n+i, 1)
		t.basic[i] = n + i
	}
	// Phase-1 objective: sum of artificials; express reduced costs by
	// subtracting each constraint row (artificials are basic).
	for j := 0; j < t.n; j++ {
		if j >= n {
			continue
		}
		s := 0.0
		for i := 0; i < m; i++ {
			s += t.at(i, j)
		}
		t.c[j] = -s
	}
	for i := 0; i < m; i++ {
		t.obj -= t.b[i]
	}
	if err := t.iterate(nil); err != nil {
		return nil, err
	}
	if -t.obj > 1e-6*(1+linalg.Norm1(b)) {
		return nil, ErrInfeasible
	}
	// Drive any artificial variables out of the basis (degenerate rows).
	for i := 0; i < m; i++ {
		if t.basic[i] >= n {
			pivoted := false
			for j := 0; j < n; j++ {
				if math.Abs(t.at(i, j)) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all-zero over real variables: redundant
				// constraint; leave the artificial basic at value ~0.
				continue
			}
		}
	}
	if c != nil {
		// Phase 2: install the real objective expressed in the current basis.
		t.c = make([]float64, t.n)
		t.obj = 0
		for j := 0; j < n; j++ {
			t.c[j] = c[j]
		}
		for i := 0; i < m; i++ {
			bj := t.basic[i]
			if bj < n && t.c[bj] != 0 {
				f := t.c[bj]
				for j := 0; j < t.n; j++ {
					t.c[j] -= f * t.at(i, j)
				}
				t.obj -= f * t.b[i]
			}
		}
		// Forbid artificials from re-entering.
		if err := t.iterate(func(j int) bool { return j < n }); err != nil {
			return nil, err
		}
	}
	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if t.basic[i] < n {
			v := t.b[i]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[t.basic[i]] = v
		}
	}
	res := &Result{X: x, Iters: t.iters}
	if c != nil {
		res.Obj = linalg.Dot(c, x)
	}
	for i := 0; i < m; i++ {
		if t.basic[i] < n && t.b[i] > eps {
			res.Basis = append(res.Basis, t.basic[i])
		}
	}
	return res, nil
}
