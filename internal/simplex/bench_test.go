package simplex

import (
	"testing"

	"dctraffic/internal/linalg"
	"dctraffic/internal/stats"
)

// tomoSized builds a feasible system shaped like the tomography problem:
// m constraints (≈2·racks) over n = racks·(racks−1) unknowns.
func tomoSized(racks int, seed uint64) (*linalg.Matrix, []float64) {
	r := stats.NewRNG(seed)
	n := racks * (racks - 1)
	m := 2*racks + 4
	a := linalg.NewMatrix(m, n)
	for col := 0; col < n; col++ {
		// Each pair hits ~4 constraints, like a ToR path.
		for k := 0; k < 4; k++ {
			a.Set(r.IntN(m), col, 1)
		}
	}
	x := make([]float64, n)
	for i := range x {
		if r.Bool(0.1) {
			x[i] = r.Float64() * 1e9
		}
	}
	return a, a.MulVec(x)
}

// benchFeasible runs the cold sparsity-max solve through both engines:
// the revised sparse solver (the default) and the dense tableau it is
// pinned against.
func benchFeasible(b *testing.B, racks int, seed uint64) {
	a, rhs := tomoSized(racks, seed)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sparse", Options{}},
		{"dense", Options{Dense: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := NewSolver(a, tc.opts)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.FeasibleBasic(rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFeasibleBasic8Racks is the sparsity-max solve at test scale.
func BenchmarkFeasibleBasic8Racks(b *testing.B) { benchFeasible(b, 8, 1) }

// BenchmarkFeasibleBasic32Racks approaches paper-scale structure (the
// full 75-rack solve is benchmarked in internal/tomo).
func BenchmarkFeasibleBasic32Racks(b *testing.B) { benchFeasible(b, 32, 2) }

// BenchmarkWarmFeasibleBasic32Racks perturbs the right-hand side ±2%
// between solves and warm-starts each one from the previous basis.
func BenchmarkWarmFeasibleBasic32Racks(b *testing.B) {
	a, rhs := tomoSized(32, 2)
	r := stats.NewRNG(5)
	rhss := make([][]float64, 8)
	for k := range rhss {
		v := append([]float64(nil), rhs...)
		for i := range v {
			v[i] *= 1 + (r.Float64()-0.5)*0.04
		}
		rhss[k] = v
	}
	s := NewSolver(a, Options{})
	for _, v := range rhss {
		if _, err := s.WarmFeasibleBasic(v); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.WarmFeasibleBasic(rhss[i%len(rhss)]); err != nil {
			b.Fatal(err)
		}
	}
}
