package simplex

import (
	"testing"

	"dctraffic/internal/linalg"
	"dctraffic/internal/stats"
)

// tomoSized builds a feasible system shaped like the tomography problem:
// m constraints (≈2·racks) over n = racks·(racks−1) unknowns.
func tomoSized(racks int, seed uint64) (*linalg.Matrix, []float64) {
	r := stats.NewRNG(seed)
	n := racks * (racks - 1)
	m := 2*racks + 4
	a := linalg.NewMatrix(m, n)
	for col := 0; col < n; col++ {
		// Each pair hits ~4 constraints, like a ToR path.
		for k := 0; k < 4; k++ {
			a.Set(r.IntN(m), col, 1)
		}
	}
	x := make([]float64, n)
	for i := range x {
		if r.Bool(0.1) {
			x[i] = r.Float64() * 1e9
		}
	}
	return a, a.MulVec(x)
}

// BenchmarkFeasibleBasic8Racks is the sparsity-max solve at test scale.
func BenchmarkFeasibleBasic8Racks(b *testing.B) {
	a, rhs := tomoSized(8, 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FeasibleBasic(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeasibleBasic32Racks approaches paper-scale structure (the
// full 75-rack solve runs in cmd/dctomo).
func BenchmarkFeasibleBasic32Racks(b *testing.B) {
	a, rhs := tomoSized(32, 2)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FeasibleBasic(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
