package simplex

import (
	"fmt"
	"math"

	"dctraffic/internal/linalg"
)

// Options configures a Solver.
type Options struct {
	// Dense routes every solve through the original dense-tableau
	// implementation (dense.go), kept in-tree for A/B comparison.
	Dense bool
	// RefactorEvery bounds the eta-file length during warm-start repair:
	// once that many etas have accumulated on top of the LU factors the
	// basis is refactorized from scratch. <= 0 means the default (64).
	// Cold solves never refactorize — their eta file replays the dense
	// tableau's per-column arithmetic exactly, which is what makes cold
	// results bit-identical to the dense path.
	RefactorEvery int
	// MaxWarmPivots caps the repair loop of a warm start; past it the
	// solver falls back to a cold solve. Real tomography windows repair
	// in roughly 2m-5m pivots, so the cap is stall insurance: well above
	// that, still far below the ~40m pivots of the cold solve a fallback
	// would re-run. <= 0 means the default (16m+16).
	MaxWarmPivots int
}

// SolveStats describes the effort of the most recent solve on a Solver.
type SolveStats struct {
	Pivots           int  // simplex pivots performed (== Result.Iters)
	Refactorizations int  // basis LU factorizations (warm path only)
	Warm             bool // warm-start repair produced the result
	FellBack         bool // warm start was attempted but fell back to cold
}

// Solver is a revised simplex engine bound to one constraint matrix A.
// The column-sparse index of A is built once; per-solve state (basis, eta
// file, LU factors, scratch vectors) is owned by the Solver and reused, so
// steady-state solves allocate nothing. A Solver is not goroutine-safe;
// use one per worker.
//
// Cold solves (Solve, FeasibleBasic) are bit-identical to the dense
// tableau: the eta file records, per pivot, exactly the row operations the
// tableau applies, so transformed columns (ftran), the basic solution, and
// every Bland / ratio-test decision replay the dense arithmetic. Reduced
// costs are the one exception — they are priced freshly from the basis
// (cᵀB⁻¹ via btran) rather than carried incrementally — but they agree
// with the tableau's c-row to within last-ulp noise on O(1)-scale values
// compared against the fixed 1e-9 threshold, so pivot sequences match
// (pinned by the equivalence tests in sparse_test.go).
//
// WarmFeasibleBasic reuses the previous solve's basis: it refactorizes
// B = LU, recomputes x_B = B⁻¹b, and — if some basic values went negative
// — repairs feasibility with a single-artificial primal phase 1 (see
// tryWarm). Warm results are NOT pinned to the dense pivot sequence;
// instead they are verified exactly — x >= 0, ‖A·x − b‖∞ <=
// 1e-6·(1+max|b|), non-zeros <= rank — with a cold-solve fallback whenever
// verification (or the repair itself) fails.
type Solver struct {
	csc   *linalg.CSC
	dense *linalg.Matrix // lazily materialized; Options.Dense path only
	opts  Options
	m, n  int // constraints, real variables (artificials are n..n+m-1)

	sign  []float64 // per-row ±1 applied to A and b (dense negates b<0 rows)
	bbar  []float64 // sign·b for the current solve
	xb    []float64 // basic solution in row order (the tableau's b column)
	basic []int     // variable basic in each row
	pos   []int     // variable -> row, -1 if nonbasic (last slot: virtual)
	y     []float64 // btran scratch
	ys    []float64 // y with row signs folded in
	v     []float64 // ftran column scratch
	ax    []float64 // warm-start residual scratch
	aq    []float64 // original-space column of the warm repair virtual
	iters int

	// Eta file: eta e scales row etaRow[e] by etaInv[e], then subtracts
	// etaVal[t]·(scaled row value) from each row etaIdx[t]. Entry t ranges
	// over [etaStart[e], etaStart[e+1]).
	etaRow   []int32
	etaInv   []float64
	etaStart []int
	etaIdx   []int32
	etaVal   []float64

	// Dense LU of the basis (warm path only): PB = LU with the unit-lower
	// multipliers stored below the diagonal of lu and the row swap done at
	// elimination step k recorded in luPerm[k].
	lu      []float64
	luPerm  []int
	luValid bool

	hasBasis bool
	prevSign []float64

	stats SolveStats
	res   Result
}

// NewSolver builds a Solver for the constraint matrix a, which must not be
// modified while the Solver lives.
func NewSolver(a *linalg.Matrix, opts Options) *Solver {
	s := newSolver(linalg.NewCSC(a), opts)
	s.dense = a
	return s
}

// NewSolverFromCSC builds a Solver sharing an existing column index (the
// tomography routing matrix is indexed once per tomo.Problem and shared by
// every solver bound to it).
func NewSolverFromCSC(csc *linalg.CSC, opts Options) *Solver {
	return newSolver(csc, opts)
}

func newSolver(csc *linalg.CSC, opts Options) *Solver {
	m, n := csc.Rows, csc.Cols
	if opts.RefactorEvery <= 0 {
		opts.RefactorEvery = 64
	}
	if opts.MaxWarmPivots <= 0 {
		opts.MaxWarmPivots = 16*m + 16
	}
	return &Solver{
		csc:      csc,
		opts:     opts,
		m:        m,
		n:        n,
		sign:     make([]float64, m),
		bbar:     make([]float64, m),
		xb:       make([]float64, m),
		basic:    make([]int, m),
		pos:      make([]int, n+m+1), // +1: warm repair virtual column
		y:        make([]float64, m),
		ys:       make([]float64, m),
		v:        make([]float64, m),
		ax:       make([]float64, m),
		aq:       make([]float64, m),
		etaStart: make([]int, 1, 65),
		lu:       make([]float64, m*m),
		luPerm:   make([]int, m),
		prevSign: make([]float64, m),
		res:      Result{X: make([]float64, n)},
	}
}

// Stats reports the effort of the most recent solve.
func (s *Solver) Stats() SolveStats { return s.stats }

// Solve minimizes c·x subject to A·x = b, x >= 0 (nil c stops after
// phase 1). The returned Result is owned by the Solver and overwritten by
// the next solve.
func (s *Solver) Solve(b, c []float64) (*Result, error) {
	if len(b) != s.m || (c != nil && len(c) != s.n) {
		panic("simplex: dimension mismatch")
	}
	if s.opts.Dense {
		return s.solveViaDense(b, c)
	}
	s.stats = SolveStats{}
	return s.finishCold(b, c)
}

// FeasibleBasic returns a basic feasible solution of {A·x = b, x >= 0}
// from a cold start. The Result is owned by the Solver.
func (s *Solver) FeasibleBasic(b []float64) (*Result, error) {
	return s.Solve(b, nil)
}

// WarmFeasibleBasic is FeasibleBasic warm-started from the previous
// solve's basis when one is available (and compatible: same row signs),
// falling back to a cold solve when repair fails or the repaired solution
// is not exactly feasible. The Result is owned by the Solver.
func (s *Solver) WarmFeasibleBasic(b []float64) (*Result, error) {
	if len(b) != s.m {
		panic("simplex: dimension mismatch")
	}
	if s.opts.Dense {
		return s.solveViaDense(b, nil)
	}
	s.stats = SolveStats{}
	if s.hasBasis {
		if res, ok := s.tryWarm(b); ok {
			s.stats.Warm = true
			s.stats.Pivots = s.iters
			return res, nil
		}
		s.stats.FellBack = true
	}
	return s.finishCold(b, nil)
}

func (s *Solver) solveViaDense(b, c []float64) (*Result, error) {
	if s.dense == nil {
		s.dense = s.csc.Dense()
	}
	s.stats = SolveStats{}
	s.hasBasis = false
	res, err := solveDense(s.dense, b, c)
	if err != nil {
		return nil, err
	}
	s.stats.Pivots = res.Iters
	return res, nil
}

func (s *Solver) finishCold(b, c []float64) (*Result, error) {
	res, err := s.solveCold(b, c)
	s.stats.Pivots = s.iters
	if err != nil {
		s.hasBasis = false
		return nil, err
	}
	s.hasBasis = true
	copy(s.prevSign, s.sign)
	return res, nil
}

// --- cold path (bit-identical to the dense tableau) ---

func (s *Solver) solveCold(b, c []float64) (*Result, error) {
	s.resetCold(b)
	// Same budget as the dense tableau: its variable count is n+m.
	maxIters := 50 * (s.m + s.n + s.m) * 4
	if err := s.iterate(nil, true, maxIters); err != nil {
		return nil, err
	}
	// Phase-1 objective = total artificial volume left in the basis. (The
	// tableau tracks this incrementally as -obj; summing the bit-identical
	// basic values gives the same quantity against a threshold ~15 orders
	// of magnitude above their difference.)
	sumArt := 0.0
	for i := 0; i < s.m; i++ {
		if s.basic[i] >= s.n {
			sumArt += s.xb[i]
		}
	}
	if sumArt > 1e-6*(1+linalg.Norm1(b)) {
		return nil, ErrInfeasible
	}
	// Drive any artificial variables out of the basis (degenerate rows),
	// scanning real columns in index order exactly like the dense path.
	// Rows where no real column has support are redundant constraints;
	// the artificial stays basic at value ~0.
	//
	// Deriving every column by ftran here is the dominant cost of a
	// paper-scale cold solve (n columns × the whole eta file per
	// artificial row), so row i is first priced in one btran: the dot
	// product y·Ā_j equals the ftran-derived tableau entry up to fp
	// roundoff (~1e-13 at tableau magnitudes), far inside the eps/2
	// guard band, so columns with |dot| ≤ eps/2 cannot pass the exact
	// |entry| > eps test and are skipped without touching their bits.
	// Candidates above the band are re-derived by ftran and tested on
	// the tableau's exact bits, preserving dense bit-identity.
	for i := 0; i < s.m; i++ {
		if s.basic[i] < s.n {
			continue
		}
		for k := 0; k < s.m; k++ {
			s.y[k] = 0
		}
		s.y[i] = 1
		s.btran(s.y)
		for k := 0; k < s.m; k++ {
			s.ys[k] = s.y[k] * s.sign[k]
		}
		for j := 0; j < s.n; j++ {
			dot := 0.0
			for t := s.csc.ColPtr[j]; t < s.csc.ColPtr[j+1]; t++ {
				dot += s.ys[s.csc.RowIdx[t]] * s.csc.Val[t]
			}
			if math.Abs(dot) <= eps/2 {
				continue
			}
			s.ftranColumn(j)
			if math.Abs(s.v[i]) > eps {
				s.pivotOn(i, j)
				break
			}
		}
	}
	if c != nil {
		if err := s.iterate(c, false, maxIters); err != nil {
			return nil, err
		}
	}
	return s.extract(c), nil
}

func (s *Solver) resetCold(b []float64) {
	s.iters = 0
	s.clearEtas()
	s.luValid = false
	for i := 0; i < s.m; i++ {
		sg := 1.0
		if b[i] < 0 {
			sg = -1
		}
		s.sign[i] = sg
		s.bbar[i] = sg * b[i]
		s.xb[i] = s.bbar[i]
		s.basic[i] = s.n + i
	}
	for j := range s.pos {
		s.pos[j] = -1
	}
	for i := 0; i < s.m; i++ {
		s.pos[s.n+i] = i
	}
}

// iterate runs Bland-rule pivots until optimal, unbounded, or over budget.
// phase1 prices real variables at cost 0 and artificials at cost 1 and
// allows artificials to re-enter; phase 2 prices with c and forbids them.
func (s *Solver) iterate(c []float64, phase1 bool, maxIters int) error {
	for {
		// Price from the basis: y = B⁻ᵀ·c_B, then d_j = c_j − y·Ā_j,
		// scanning j in index order and entering at the first d_j < -eps
		// (Bland). Ā's row signs are folded into ys once per iteration.
		for i := 0; i < s.m; i++ {
			bj := s.basic[i]
			switch {
			case phase1:
				if bj >= s.n {
					s.y[i] = 1
				} else {
					s.y[i] = 0
				}
			case bj < s.n:
				s.y[i] = c[bj]
			default:
				s.y[i] = 0
			}
		}
		s.btran(s.y)
		for i := 0; i < s.m; i++ {
			s.ys[i] = s.y[i] * s.sign[i]
		}
		col := -1
		for j := 0; j < s.n+s.m; j++ {
			if j >= s.n && !phase1 {
				break // artificials may not re-enter in phase 2
			}
			var d float64
			if j < s.n {
				sum := 0.0
				for t := s.csc.ColPtr[j]; t < s.csc.ColPtr[j+1]; t++ {
					sum += s.ys[s.csc.RowIdx[t]] * s.csc.Val[t]
				}
				if phase1 {
					d = -sum
				} else {
					d = c[j] - sum
				}
			} else {
				d = 1 - s.y[j-s.n]
			}
			if d < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			return nil // optimal
		}
		// Ratio test on the ftran'd entering column — the same bits the
		// dense tableau holds in column col — with Bland tie-break on the
		// basic variable index.
		s.ftranColumn(col)
		row := s.ratioTest()
		if row < 0 {
			return ErrUnbounded
		}
		s.pivotOn(row, col)
		if s.iters > maxIters {
			return fmt.Errorf("simplex: iteration limit exceeded (%d)", maxIters)
		}
	}
}

// ratioTest picks the leaving row for the entering column held in s.v,
// replicating the dense tableau's test: min xb_i/v_i over v_i > eps with
// an eps band and Bland tie-break on the basic variable index.
func (s *Solver) ratioTest() int {
	row := -1
	bestRatio := math.Inf(1)
	for i := 0; i < s.m; i++ {
		aij := s.v[i]
		if aij > eps {
			ratio := s.xb[i] / aij
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && (row < 0 || s.basic[i] < s.basic[row])) {
				bestRatio = ratio
				row = i
			}
		}
	}
	return row
}

func (s *Solver) extract(c []float64) *Result {
	x := s.res.X
	for j := range x {
		x[j] = 0
	}
	for i := 0; i < s.m; i++ {
		if s.basic[i] < s.n {
			v := s.xb[i]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[s.basic[i]] = v
		}
	}
	s.res.Iters = s.iters
	s.res.Obj = 0
	if c != nil {
		s.res.Obj = linalg.Dot(c, x)
	}
	s.res.Basis = s.res.Basis[:0]
	for i := 0; i < s.m; i++ {
		if s.basic[i] < s.n && s.xb[i] > eps {
			s.res.Basis = append(s.res.Basis, s.basic[i])
		}
	}
	return &s.res
}

// --- warm path (exact-feasibility contract, not bit-pinned) ---

// virtualIdx is the variable index of the warm-repair artificial. It is
// larger than every real and phase-1 artificial index, so Bland tie-breaks
// treat it as the variable of last resort.
func (s *Solver) virtualIdx() int { return s.n + s.m }

// tryWarm attempts to reuse the previous solve's basis for a new b. It
// reports ok=false whenever the warm result cannot be certified, leaving
// the caller to fall back to a cold solve (which fully resets state).
//
// Method (the classic single-artificial warm start, cf. Chvátal ch. 8):
// refactorize B and compute x_B = B⁻¹b. If some components are negative,
// introduce one virtual column whose tableau representation u has u_i = -1
// exactly on the infeasible rows, i.e. the original-space column a_q =
// B·u. Pivoting it in at the most negative row makes every basic value
// non-negative, with the virtual carrying the worst infeasibility. Then
// minimize the virtual variable with the ordinary Bland-rule primal
// iteration (structurally the same loop as the cold phase 1, so it
// terminates); it reaches zero exactly when the previous basis can be
// repaired. A dual-simplex repair may look more natural here, but with the
// all-zero phase objective every dual ratio ties at zero and Bland's
// protection no longer applies — it cycles on real windows.
func (s *Solver) tryWarm(b []float64) (*Result, bool) {
	// The dense formulation folds row signs into A, so a basis is only
	// reusable while the sign pattern holds (for tomography b >= 0 this is
	// always the case).
	for i := 0; i < s.m; i++ {
		sg := 1.0
		if b[i] < 0 {
			sg = -1
		}
		if sg != s.prevSign[i] {
			return nil, false
		}
		s.sign[i] = sg
		s.bbar[i] = sg * b[i]
	}
	s.iters = 0
	if err := s.refactor(); err != nil {
		return nil, false
	}
	copy(s.xb, s.bbar)
	s.luFtran(s.xb)
	maxAbsB := 0.0
	for _, v := range s.bbar {
		if v > maxAbsB {
			maxAbsB = v
		}
	}
	tol := 1e-7 * (1 + maxAbsB)
	s.clampBasicNoise(tol)
	rstar := -1
	for i, v := range s.xb {
		if v < 0 && (rstar < 0 || v < s.xb[rstar]) {
			rstar = i
		}
	}
	if rstar >= 0 && !s.repairPrimal(rstar, tol) {
		return nil, false
	}
	return s.extractWarm(b, tol)
}

// clampBasicNoise zeroes basic values in (-tol, 0): numerically these are
// zeros blurred by the LU solve or pivot updates (tol is the certification
// tolerance, ~1e-13 relative at paper magnitudes), but left negative they
// poison the primal ratio test with negative ratios — which always win —
// and the repair loop then bounces between two columns without progress
// instead of terminating under Bland's rule (whose proof needs x_B >= 0).
// Certification in extractWarm re-verifies the residual against the
// original b, so a clamp can never smuggle an infeasible answer through.
func (s *Solver) clampBasicNoise(tol float64) {
	for i, v := range s.xb {
		if v < 0 && v > -tol {
			s.xb[i] = 0
		}
	}
}

// clampOrBail is clampBasicNoise that reports failure when a basic value
// sits below -tol: mid-repair that means a pivot destroyed feasibility
// outright (the ratio test guarantees x_B >= 0 up to roundoff), so the
// warm attempt aborts.
func (s *Solver) clampOrBail(tol float64) bool {
	for i, v := range s.xb {
		if v < 0 {
			if v < -tol {
				return false
			}
			s.xb[i] = 0
		}
	}
	return true
}

// repairPrimal restores primal feasibility from a basis whose most
// negative basic value sits in row rstar. See tryWarm for the method.
func (s *Solver) repairPrimal(rstar int, tol float64) bool {
	vq := s.virtualIdx()
	// Build the virtual column: tableau form u (in s.v) with -1 on every
	// infeasible row, and its original-space image a_q = B·u (negated sum
	// of the basic columns of those rows), needed for later ftrans and
	// refactorizations.
	for i := range s.v {
		s.v[i] = 0
	}
	for i := range s.aq {
		s.aq[i] = 0
	}
	for i := 0; i < s.m; i++ {
		if s.xb[i] >= 0 {
			continue
		}
		s.v[i] = -1
		bj := s.basic[i]
		if bj >= s.n {
			s.aq[bj-s.n] -= 1
		} else {
			for t := s.csc.ColPtr[bj]; t < s.csc.ColPtr[bj+1]; t++ {
				r := s.csc.RowIdx[t]
				s.aq[r] -= s.sign[r] * s.csc.Val[t]
			}
		}
	}
	// Pivot the virtual in at the most negative row: every repaired basic
	// value becomes x_i − x_rstar >= 0 and the virtual takes the worst
	// infeasibility −x_rstar > 0.
	s.pivotOn(rstar, vq)
	if !s.clampOrBail(tol) {
		return false
	}
	// Minimize the virtual: cost 1 on it, 0 elsewhere, so the pricing
	// vector y is just the virtual's row of B⁻¹ and d_j = −y·Ā_j.
	for pivots := 1; ; pivots++ {
		zrow := s.pos[vq]
		if zrow < 0 {
			return true // the virtual left the basis: feasible
		}
		if pivots > s.opts.MaxWarmPivots {
			return false
		}
		for i := range s.y {
			s.y[i] = 0
		}
		s.y[zrow] = 1
		s.btran(s.y)
		for i := 0; i < s.m; i++ {
			s.ys[i] = s.y[i] * s.sign[i]
		}
		col := -1
		for j := 0; j < s.n; j++ {
			if s.pos[j] >= 0 {
				continue
			}
			sum := 0.0
			for t := s.csc.ColPtr[j]; t < s.csc.ColPtr[j+1]; t++ {
				sum += s.ys[s.csc.RowIdx[t]] * s.csc.Val[t]
			}
			if -sum < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			// Optimal. Repaired iff the virtual is (numerically) zero;
			// then drive it out so the next window inherits a clean basis.
			if s.xb[zrow] > tol {
				return false
			}
			// The virtual's value is certification-level noise; zero it so
			// the drive-out pivot leaves every other row untouched.
			s.xb[zrow] = 0
			return s.driveOutVirtual(zrow)
		}
		s.ftranColumn(col)
		row := s.ratioTest()
		if row < 0 {
			return false // aux problem cannot be unbounded; numerics — bail
		}
		s.pivotOn(row, col)
		if !s.clampOrBail(tol) {
			return false
		}
		if len(s.etaRow) >= s.opts.RefactorEvery {
			// Refactorization swaps only the representation used by ftran
			// and btran; x_B stays incrementally updated (like the dense
			// tableau's b column) — recomputing it as B⁻¹b̄ would undo the
			// noise clamps and reintroduce negative basic values.
			if err := s.refactor(); err != nil {
				return false
			}
		}
	}
}

// driveOutVirtual swaps the (zero-valued) virtual column out of the basis
// for any nonbasic real column with support on its row, so the basis kept
// for the next window contains only real and phase-1 artificial columns.
func (s *Solver) driveOutVirtual(zrow int) bool {
	for j := 0; j < s.n; j++ {
		if s.pos[j] >= 0 {
			continue
		}
		s.ftranColumn(j)
		if math.Abs(s.v[zrow]) > eps {
			s.pivotOn(zrow, j)
			return true
		}
	}
	return false
}

// extractWarm certifies and extracts a warm-repaired solution: clamps
// sub-tolerance negatives to zero (so x >= 0 holds exactly), rejects any
// solution carrying real volume on an artificial variable, and verifies
// ‖A·x − b‖∞ <= 1e-6·(1+max|b|) against the original system.
func (s *Solver) extractWarm(b []float64, tol float64) (*Result, bool) {
	x := s.res.X
	for j := range x {
		x[j] = 0
	}
	for i := 0; i < s.m; i++ {
		v := s.xb[i]
		if v < 0 {
			if v < -tol {
				return nil, false
			}
			v = 0
		}
		if bj := s.basic[i]; bj < s.n {
			x[bj] = v
		} else if v > tol {
			return nil, false
		}
	}
	ax := s.ax
	for i := range ax {
		ax[i] = 0
	}
	for i := 0; i < s.m; i++ {
		bj := s.basic[i]
		if bj >= s.n || x[bj] == 0 {
			continue
		}
		xv := x[bj]
		for t := s.csc.ColPtr[bj]; t < s.csc.ColPtr[bj+1]; t++ {
			ax[s.csc.RowIdx[t]] += s.csc.Val[t] * xv
		}
	}
	maxAbsB, worst := 0.0, 0.0
	for i := 0; i < s.m; i++ {
		if a := math.Abs(b[i]); a > maxAbsB {
			maxAbsB = a
		}
		if r := math.Abs(ax[i] - b[i]); r > worst {
			worst = r
		}
	}
	if worst > 1e-6*(1+maxAbsB) {
		return nil, false
	}
	s.res.Iters = s.iters
	s.res.Obj = 0
	s.res.Basis = s.res.Basis[:0]
	for i := 0; i < s.m; i++ {
		if s.basic[i] < s.n && s.xb[i] > eps {
			s.res.Basis = append(s.res.Basis, s.basic[i])
		}
	}
	return &s.res, true
}

// --- basis kernel: eta file, ftran/btran, LU ---

func (s *Solver) clearEtas() {
	s.etaRow = s.etaRow[:0]
	s.etaInv = s.etaInv[:0]
	s.etaStart = s.etaStart[:1]
	s.etaIdx = s.etaIdx[:0]
	s.etaVal = s.etaVal[:0]
}

// pivotOn makes the variable col basic in row using the entering column
// currently held in s.v (which must be the ftran'd column). The appended
// eta records the dense tableau's row operations for this pivot — scale
// the pivot row by 1/v[row], then for every other row i with v[i] != 0
// subtract v[i]·(scaled row) — and the basic solution is updated with
// exactly those operations, keeping x_B bit-identical to the tableau's b
// column on cold solves.
func (s *Solver) pivotOn(row, col int) {
	s.iters++
	inv := 1 / s.v[row]
	s.etaRow = append(s.etaRow, int32(row))
	s.etaInv = append(s.etaInv, inv)
	for i, f := range s.v {
		if i == row || f == 0 {
			continue
		}
		s.etaIdx = append(s.etaIdx, int32(i))
		s.etaVal = append(s.etaVal, f)
	}
	s.etaStart = append(s.etaStart, len(s.etaIdx))
	s.xb[row] *= inv
	xr := s.xb[row]
	e := len(s.etaRow) - 1
	for t := s.etaStart[e]; t < s.etaStart[e+1]; t++ {
		s.xb[s.etaIdx[t]] -= s.etaVal[t] * xr
	}
	s.pos[s.basic[row]] = -1
	s.basic[row] = col
	s.pos[col] = row
}

// ftranColumn loads extended column j (sign-folded real column, the
// identity column of an artificial, or the stored virtual column) into
// s.v and transforms it by the current basis inverse: LU solve first
// (warm path), then the eta file in application order.
func (s *Solver) ftranColumn(j int) {
	v := s.v
	for i := range v {
		v[i] = 0
	}
	switch {
	case j < s.n:
		for t := s.csc.ColPtr[j]; t < s.csc.ColPtr[j+1]; t++ {
			r := s.csc.RowIdx[t]
			v[r] = s.sign[r] * s.csc.Val[t]
		}
	case j < s.n+s.m:
		v[j-s.n] = 1
	default:
		copy(v, s.aq)
	}
	if s.luValid {
		s.luFtran(v)
	}
	s.applyEtas(v)
}

func (s *Solver) applyEtas(w []float64) {
	for e := 0; e < len(s.etaRow); e++ {
		r := s.etaRow[e]
		w[r] *= s.etaInv[e]
		wr := w[r]
		for t := s.etaStart[e]; t < s.etaStart[e+1]; t++ {
			w[s.etaIdx[t]] -= s.etaVal[t] * wr
		}
	}
}

// btran computes w = B⁻ᵀ·w: the eta transposes in reverse order, then the
// LU transpose solve (warm path).
func (s *Solver) btran(w []float64) {
	for e := len(s.etaRow) - 1; e >= 0; e-- {
		r := s.etaRow[e]
		sum := w[r]
		for t := s.etaStart[e]; t < s.etaStart[e+1]; t++ {
			sum -= s.etaVal[t] * w[s.etaIdx[t]]
		}
		w[r] = sum * s.etaInv[e]
	}
	if s.luValid {
		s.luBtran(w)
	}
}

// refactor rebuilds the dense LU factors of the current basis and clears
// the eta file. Warm path only: cold solves keep B₀ = I (the artificial
// start) and express the whole basis inverse through etas.
func (s *Solver) refactor() error {
	m := s.m
	lu := s.lu
	for i := range lu {
		lu[i] = 0
	}
	for k := 0; k < m; k++ {
		bj := s.basic[k]
		switch {
		case bj >= s.n+s.m:
			for r := 0; r < m; r++ {
				lu[r*m+k] = s.aq[r]
			}
		case bj >= s.n:
			lu[(bj-s.n)*m+k] = 1
		default:
			for t := s.csc.ColPtr[bj]; t < s.csc.ColPtr[bj+1]; t++ {
				r := int(s.csc.RowIdx[t])
				lu[r*m+k] = s.sign[r] * s.csc.Val[t]
			}
		}
	}
	for col := 0; col < m; col++ {
		p, best := col, math.Abs(lu[col*m+col])
		for r := col + 1; r < m; r++ {
			if v := math.Abs(lu[r*m+col]); v > best {
				p, best = r, v
			}
		}
		if best < 1e-300 {
			return linalg.ErrSingular
		}
		s.luPerm[col] = p
		if p != col {
			for j := 0; j < m; j++ {
				lu[col*m+j], lu[p*m+j] = lu[p*m+j], lu[col*m+j]
			}
		}
		piv := lu[col*m+col]
		for r := col + 1; r < m; r++ {
			f := lu[r*m+col] / piv
			lu[r*m+col] = f
			if f == 0 {
				continue
			}
			for j := col + 1; j < m; j++ {
				lu[r*m+j] -= f * lu[col*m+j]
			}
		}
	}
	s.luValid = true
	s.clearEtas()
	s.stats.Refactorizations++
	return nil
}

// luFtran solves B·w' = w in place (PB = LU: apply the full permutation
// first, then forward-solve the unit-lower multipliers, then back-solve
// U). The swaps must all land before the forward solve: refactor stores
// multipliers getrf-style, i.e. swapped along with their rows by later
// elimination steps, so they only line up with a fully-permuted RHS.
func (s *Solver) luFtran(w []float64) {
	m := s.m
	lu := s.lu
	for col := 0; col < m; col++ {
		if p := s.luPerm[col]; p != col {
			w[col], w[p] = w[p], w[col]
		}
	}
	for col := 0; col < m; col++ {
		wc := w[col]
		if wc == 0 {
			continue
		}
		for r := col + 1; r < m; r++ {
			w[r] -= lu[r*m+col] * wc
		}
	}
	for i := m - 1; i >= 0; i-- {
		sum := w[i]
		for j := i + 1; j < m; j++ {
			sum -= lu[i*m+j] * w[j]
		}
		w[i] = sum / lu[i*m+i]
	}
}

// luBtran solves Bᵀ·w' = w in place (Uᵀ forward, Lᵀ backward, then the
// row swaps in reverse).
func (s *Solver) luBtran(w []float64) {
	m := s.m
	lu := s.lu
	for i := 0; i < m; i++ {
		sum := w[i]
		for j := 0; j < i; j++ {
			sum -= lu[j*m+i] * w[j]
		}
		w[i] = sum / lu[i*m+i]
	}
	for i := m - 2; i >= 0; i-- {
		sum := w[i]
		for r := i + 1; r < m; r++ {
			sum -= lu[r*m+i] * w[r]
		}
		w[i] = sum
	}
	for col := m - 1; col >= 0; col-- {
		if p := s.luPerm[col]; p != col {
			w[col], w[p] = w[p], w[col]
		}
	}
}
