package simplex

import (
	"math"
	"testing"

	"dctraffic/internal/linalg"
	"dctraffic/internal/stats"
)

// TestLUKernel pins refactor/luFtran/luBtran against the dense SolveLU
// reference on dense random matrices whose partial pivoting genuinely
// permutes rows (the warm path is the only consumer of these kernels, so
// the cold bit-identity tests never exercise them).
func TestLUKernel(t *testing.T) {
	for seed := uint64(41); seed < 49; seed++ {
		r := stats.NewRNG(seed)
		m := 6
		a := linalg.NewMatrix(m, m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				a.Set(i, j, math.Floor(r.Float64()*10)-4) // forces row swaps
			}
		}
		s := NewSolver(a, Options{})
		b := make([]float64, m)
		for i := range b {
			b[i] = 1
		}
		s.resetCold(b)
		for i := 0; i < m; i++ { // basis = all real columns
			s.pos[s.n+i] = -1
			s.basic[i] = i
			s.pos[i] = i
		}
		if err := s.refactor(); err != nil {
			t.Fatal(err)
		}
		w := make([]float64, m)
		for i := range w {
			w[i] = r.Float64()*4 - 2
		}
		got := append([]float64(nil), w...)
		s.luFtran(got)
		want, err := linalg.SolveLU(a, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				t.Errorf("seed %d: luFtran[%d]: got %v want %v", seed, i, got[i], want[i])
			}
		}
		at := linalg.NewMatrix(m, m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				at.Set(i, j, a.At(j, i))
			}
		}
		gotT := append([]float64(nil), w...)
		s.luBtran(gotT)
		wantT, err := linalg.SolveLU(at, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantT {
			if math.Abs(wantT[i]-gotT[i]) > 1e-9 {
				t.Errorf("seed %d: luBtran[%d]: got %v want %v", seed, i, gotT[i], wantT[i])
			}
		}
	}
}
