// Package simplex implements a two-phase simplex solver for linear
// programs in standard form:
//
//	minimize    c·x
//	subject to  A·x = b,  x >= 0
//
// It exists to reproduce the paper's "sparsity maximization" tomography
// baseline (§5.2): the sparsest traffic matrix consistent with link counts.
// A basic feasible solution of {A·x = b, x >= 0} has at most rank(A)
// non-zero entries — the structural sparsity the MILP in the paper seeks —
// so FeasibleBasic (phase 1 alone) already yields a maximally sparse
// candidate; Solve adds an optional phase-2 objective.
//
// Two implementations share one pivot policy (Bland's rule, guaranteeing
// termination):
//
//   - the revised solver (Solver, the default): column-sparse A, an eta
//     (product-form) basis file, and — for warm starts only — a dense LU
//     factorization of the basis. Because the eta file replays exactly the
//     arithmetic the dense tableau applies to each column, cold-start pivot
//     sequences and results are bit-identical to the dense path.
//   - the original dense tableau (dense.go), kept behind Options.Dense as
//     the A/B reference.
//
// Consecutive tomography windows differ only in b, so a Solver additionally
// offers WarmFeasibleBasic: a single-artificial primal repair from the
// previous window's basis that typically needs a handful of pivots instead
// of hundreds, falling back to a cold solve whenever the repaired solution
// fails exact feasibility checks.
package simplex

import (
	"errors"

	"dctraffic/internal/linalg"
)

// Errors returned by the solver.
var (
	ErrInfeasible = errors.New("simplex: infeasible")
	ErrUnbounded  = errors.New("simplex: unbounded")
)

const eps = 1e-9

// Result holds the solver output. Results returned by a Solver are owned
// by it and overwritten by the next solve; package-level Solve and
// FeasibleBasic return fresh copies.
type Result struct {
	X     []float64 // primal solution, len = number of variables
	Obj   float64   // objective value c·x
	Basis []int     // indices of basic variables (<= rank(A) entries)
	Iters int       // simplex pivots performed
}

// Solve minimizes c·x subject to A·x = b, x >= 0. Rows with negative b are
// negated first. Pass a nil c to stop after phase 1 (any feasible basic
// solution).
func Solve(a *linalg.Matrix, b, c []float64) (*Result, error) {
	if len(b) != a.Rows || (c != nil && len(c) != a.Cols) {
		panic("simplex: dimension mismatch")
	}
	res, err := NewSolver(a, Options{}).Solve(b, c)
	if err != nil {
		return nil, err
	}
	out := &Result{
		X:     append([]float64(nil), res.X...),
		Obj:   res.Obj,
		Iters: res.Iters,
	}
	if len(res.Basis) > 0 {
		out.Basis = append([]int(nil), res.Basis...)
	}
	return out, nil
}

// FeasibleBasic returns a basic feasible solution of {A·x = b, x >= 0},
// which has at most rank(A) strictly positive entries. This is the
// sparsity-maximization estimator of §5.2.
func FeasibleBasic(a *linalg.Matrix, b []float64) (*Result, error) {
	return Solve(a, b, nil)
}
