package tomo

import (
	"fmt"

	"dctraffic/internal/linalg"
	"dctraffic/internal/simplex"
	"dctraffic/internal/tm"
)

// EstimatorOptions configures an Estimator.
type EstimatorOptions struct {
	// Cold disables warm-starting the sparsity-max simplex between
	// consecutive windows. A cold estimator reproduces Problem.SparsityMax
	// bit for bit (the revised solver's cold path is pinned to the dense
	// tableau), so digests from before warm starts existed can be
	// regenerated exactly.
	Cold bool
}

// Estimator bundles the reusable per-worker state for estimating many
// tomography windows against one Problem: a revised simplex solver (warm
// started from window to window unless Cold), a weighted-least-squares
// workspace, and the gravity-prior scratch vectors. Steady-state window
// estimates perform no per-call allocation beyond what the caller passes
// in.
//
// Results are bit-identical to the corresponding Problem methods —
// Tomogravity, TomogravityWithMultiplier, and (when Cold, or on the first
// window of a chain) SparsityMax — so sharding windows across estimators
// cannot move the analysis digests. Warm-started SparsityMaxInto returns a
// different (equally valid) basic feasible solution; see the solver
// package for the warm-start contract.
//
// An Estimator is not goroutine-safe; use one per worker. The Problem
// itself stays immutable and shared.
type Estimator struct {
	p    *Problem
	opts EstimatorOptions

	solver *simplex.Solver
	wls    *linalg.WLSWorkspace

	g       []float64 // gravity prior (and multiplied prior)
	out, in []float64 // per-rack totals
	vec     []float64 // pair-vector scratch
}

// NewEstimator builds an Estimator for the problem.
func (p *Problem) NewEstimator(opts EstimatorOptions) *Estimator {
	return &Estimator{
		p:      p,
		opts:   opts,
		solver: simplex.NewSolverFromCSC(p.csc, simplex.Options{}),
		wls:    linalg.NewWLSWorkspace(p.a),
		g:      make([]float64, len(p.pairs)),
		out:    make([]float64, p.racks),
		in:     make([]float64, p.racks),
		vec:    make([]float64, len(p.pairs)),
	}
}

// SolveStats reports the simplex effort of the most recent SparsityMaxInto
// call (pivots, refactorizations, warm/fallback flags).
func (e *Estimator) SolveStats() simplex.SolveStats { return e.solver.Stats() }

// LinkCountsInto is Problem.LinkCounts writing into dst (allocating only
// when dst has the wrong length). Same row-major accumulation, so the
// counters are bit-identical.
func (e *Estimator) LinkCountsInto(dst []float64, truth *tm.Matrix) []float64 {
	p := e.p
	p.VecFromTMInto(e.vec, truth)
	if len(dst) != p.a.Rows {
		dst = make([]float64, p.a.Rows)
	}
	p.a.MulVecInto(dst, e.vec)
	return dst
}

// gravityPrior fills e.g with Problem.GravityPrior's estimate — identical
// loop order and arithmetic, reused storage.
func (e *Estimator) gravityPrior(b []float64) []float64 {
	p := e.p
	out, in := e.out, e.in
	for i := range out {
		out[i], in[i] = 0, 0
	}
	total := p.rowColSumsInto(out, in, b)
	g := e.g
	for i := range g {
		g[i] = 0
	}
	if total <= 0 {
		return g
	}
	sum := 0.0
	for i, pr := range p.pairs {
		g[i] = out[pr.src] * in[pr.dst] / total
		sum += g[i]
	}
	if sum > 0 {
		scale := total / sum
		for i := range g {
			g[i] *= scale
		}
	}
	return g
}

// TomogravityInto is Problem.Tomogravity writing into dst (allocating only
// when dst has the wrong length). Bit-identical: the prior arithmetic is
// shared and the WLS workspace is pinned to the dense projection.
func (e *Estimator) TomogravityInto(dst, b []float64) ([]float64, error) {
	g := e.gravityPrior(b)
	x, err := e.wls.Project(dst, b, g, g)
	if err != nil {
		return nil, fmt.Errorf("tomo: tomogravity adjustment: %w", err)
	}
	return linalg.ClampNonNeg(x), nil
}

// TomogravityWithMultiplierInto is Problem.TomogravityWithMultiplier
// writing into dst; bit-identical for the same reasons as TomogravityInto.
func (e *Estimator) TomogravityWithMultiplierInto(dst, b, mult []float64) ([]float64, error) {
	if len(mult) != len(e.p.pairs) {
		panic("tomo: multiplier size mismatch")
	}
	g := e.gravityPrior(b)
	var before, after float64
	for i := range g {
		before += g[i]
		g[i] *= mult[i]
		after += g[i]
	}
	if after > 0 && before > 0 {
		scale := before / after
		for i := range g {
			g[i] *= scale
		}
	}
	x, err := e.wls.Project(dst, b, g, g)
	if err != nil {
		return nil, fmt.Errorf("tomo: job-prior adjustment: %w", err)
	}
	return linalg.ClampNonNeg(x), nil
}

// SparsityMaxInto is Problem.SparsityMax writing into dst. Unless the
// estimator is Cold, consecutive calls warm-start the simplex from the
// previous window's basis (consecutive windows differ only in b), which
// typically needs a handful of repair pivots instead of a full cold solve;
// the solver falls back to a cold solve — bit-identical to
// Problem.SparsityMax — whenever the warm result cannot be certified
// exactly feasible. Check SolveStats for the effort breakdown.
func (e *Estimator) SparsityMaxInto(dst, b []float64) ([]float64, error) {
	var res *simplex.Result
	var err error
	if e.opts.Cold {
		res, err = e.solver.FeasibleBasic(b)
	} else {
		res, err = e.solver.WarmFeasibleBasic(b)
	}
	if err != nil {
		return nil, fmt.Errorf("tomo: sparsity maximization: %w", err)
	}
	if len(dst) != len(res.X) {
		dst = make([]float64, len(res.X))
	}
	copy(dst, res.X)
	return dst, nil
}
