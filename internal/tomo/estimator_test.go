package tomo

import (
	"math"
	"testing"

	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/topology"
)

// driftTM nudges a ToR TM the way consecutive 10-minute windows drift:
// most entries hold, a few move by a fraction of their magnitude.
func driftTM(m *tm.Matrix, r *stats.RNG) *tm.Matrix {
	n := m.N()
	next := tm.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := m.At(i, j)
			if v > 0 && r.Bool(0.3) {
				v = math.Max(0, v+(r.Float64()-0.5)*0.2*v)
			}
			next.Add(i, j, v)
		}
	}
	return next
}

func bitsEqual(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s[%d]: %v vs %v", label, i, want[i], got[i])
		}
	}
}

// TestEstimatorMatchesProblemBitwise pins every Estimator method to its
// Problem counterpart: the workspace variants must not move a single bit
// (a Cold estimator covers SparsityMax too).
func TestEstimatorMatchesProblemBitwise(t *testing.T) {
	p, top := smallProblem(t)
	e := p.NewEstimator(EstimatorOptions{Cold: true})
	r := stats.NewRNG(9)
	truth := randomTorTM(top, 5)
	mult := make([]float64, p.NumPairs())
	for i := range mult {
		mult[i] = 1 + r.Float64()
	}
	var b, tg, tj, sm []float64
	for step := 0; step < 4; step++ {
		bWant := p.LinkCounts(truth)
		b = e.LinkCountsInto(b, truth)
		bitsEqual(t, "LinkCounts", bWant, b)

		tgWant, err1 := p.Tomogravity(bWant)
		var err2 error
		tg, err2 = e.TomogravityInto(tg, b)
		if err1 != nil || err2 != nil {
			t.Fatalf("tomogravity errors: %v %v", err1, err2)
		}
		bitsEqual(t, "Tomogravity", tgWant, tg)

		tjWant, err1 := p.TomogravityWithMultiplier(bWant, mult)
		tj, err2 = e.TomogravityWithMultiplierInto(tj, b, mult)
		if err1 != nil || err2 != nil {
			t.Fatalf("multiplier errors: %v %v", err1, err2)
		}
		bitsEqual(t, "TomogravityWithMultiplier", tjWant, tj)

		smWant, err1 := p.SparsityMax(bWant)
		sm, err2 = e.SparsityMaxInto(sm, b)
		if err1 != nil || err2 != nil {
			t.Fatalf("sparsity errors: %v %v", err1, err2)
		}
		bitsEqual(t, "SparsityMax", smWant, sm)
		if st := e.SolveStats(); st.Warm {
			t.Fatalf("cold estimator reported a warm solve: %+v", st)
		}

		truth = driftTM(truth, r)
	}
}

// TestEstimatorWarmSparsityMax drives a warm estimator over drifting
// windows on the real small topology and checks the warm-start contract:
// feasibility within the certification tolerance, the rank sparsity bound,
// and that warm repair engages at least once.
func TestEstimatorWarmSparsityMax(t *testing.T) {
	p, top := smallProblem(t)
	e := p.NewEstimator(EstimatorOptions{})
	r := stats.NewRNG(17)
	truth := randomTorTM(top, 5)
	warms := 0
	var b, sm []float64
	for step := 0; step < 12; step++ {
		b = e.LinkCountsInto(b, truth)
		var err error
		sm, err = e.SparsityMaxInto(sm, b)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if st := e.SolveStats(); st.Warm {
			warms++
		}
		maxAbsB := 0.0
		for _, v := range b {
			maxAbsB = math.Max(maxAbsB, math.Abs(v))
		}
		nz := 0
		for _, v := range sm {
			if v > 0 {
				nz++
			}
		}
		if nz > p.NumConstraints() {
			t.Fatalf("step %d: %d non-zeros > rank bound %d", step, nz, p.NumConstraints())
		}
		ax := p.a.MulVec(sm)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-6*(1+maxAbsB) {
				t.Fatalf("step %d: residual %v at row %d", step, ax[i]-b[i], i)
			}
		}
		truth = driftTM(truth, r)
	}
	if warms == 0 {
		t.Fatal("warm repair never engaged")
	}
}

// TestEstimatorSteadyStateAllocs requires a fully warmed estimator to
// process a window without allocating.
func TestEstimatorSteadyStateAllocs(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	p := NewProblem(top)
	e := p.NewEstimator(EstimatorOptions{})
	r := stats.NewRNG(23)
	truths := []*tm.Matrix{randomTorTM(top, 5)}
	for i := 0; i < 5; i++ {
		truths = append(truths, driftTM(truths[len(truths)-1], r))
	}
	b := make([]float64, p.NumConstraints())
	tg := make([]float64, p.NumPairs())
	sm := make([]float64, p.NumPairs())
	for _, truth := range truths {
		b = e.LinkCountsInto(b, truth)
		if _, err := e.TomogravityInto(tg, b); err != nil {
			t.Fatal(err)
		}
		if _, err := e.SparsityMaxInto(sm, b); err != nil {
			t.Fatal(err)
		}
	}
	k := 0
	if allocs := testing.AllocsPerRun(10, func() {
		truth := truths[k%len(truths)]
		k++
		b = e.LinkCountsInto(b, truth)
		if _, err := e.TomogravityInto(tg, b); err != nil {
			t.Fatal(err)
		}
		if _, err := e.SparsityMaxInto(sm, b); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state window costs %v allocs/op", allocs)
	}
}
