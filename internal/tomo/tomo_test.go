package tomo

import (
	"math"
	"testing"
	"time"

	"dctraffic/internal/eventlog"
	"dctraffic/internal/linalg"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/topology"
)

func smallProblem(t *testing.T) (*Problem, *topology.Topology) {
	t.Helper()
	top := topology.MustNew(topology.SmallConfig())
	return NewProblem(top), top
}

func TestProblemDimensions(t *testing.T) {
	p, top := smallProblem(t)
	r := top.NumRacks()
	if p.NumPairs() != r*(r-1) {
		t.Fatalf("pairs = %d, want %d", p.NumPairs(), r*(r-1))
	}
	// 2 per rack + 2 per agg = the "about 2n" of the paper.
	want := 2*r + 2*top.Config().AggSwitches
	if p.NumConstraints() != want {
		t.Fatalf("constraints = %d, want %d", p.NumConstraints(), want)
	}
}

func TestVecTMRoundTrip(t *testing.T) {
	p, top := smallProblem(t)
	m := tm.NewMatrix(top.NumRacks())
	m.Add(0, 3, 100)
	m.Add(5, 1, 42)
	x := p.VecFromTM(m)
	back := p.TMFromVec(x)
	if back.At(0, 3) != 100 || back.At(5, 1) != 42 || back.Total() != 142 {
		t.Fatal("round trip broken")
	}
}

// randomTorTM builds a sparse, job-clustered ToR TM like the ground truth.
func randomTorTM(top *topology.Topology, seed uint64) *tm.Matrix {
	r := stats.NewRNG(seed)
	m := tm.NewMatrix(top.NumRacks())
	// A few "jobs" each spanning 2-3 racks exchanging heavy traffic.
	for job := 0; job < 4; job++ {
		base := r.IntN(top.NumRacks())
		span := 2 + r.IntN(2)
		for a := 0; a < span; a++ {
			for b := 0; b < span; b++ {
				if a == b {
					continue
				}
				i := (base + a) % top.NumRacks()
				j := (base + b) % top.NumRacks()
				m.Add(i, j, 1e9*(0.5+r.Float64()))
			}
		}
	}
	return m
}

func TestLinkCountsConsistency(t *testing.T) {
	p, top := smallProblem(t)
	truth := randomTorTM(top, 1)
	b := p.LinkCounts(truth)
	// Each ToR uplink must equal the row sum of that rack.
	rows := truth.RowSums()
	for rk := 0; rk < top.NumRacks(); rk++ {
		row := p.rowOfLink[top.TorUplink(topology.RackID(rk))]
		if math.Abs(b[row]-rows[rk]) > 1e-6 {
			t.Fatalf("ToR %d uplink count %v != row sum %v", rk, b[row], rows[rk])
		}
	}
}

func TestGravityPriorMatchesMarginals(t *testing.T) {
	p, top := smallProblem(t)
	truth := randomTorTM(top, 2)
	b := p.LinkCounts(truth)
	g := p.GravityPrior(b)
	// Gravity preserves totals.
	var gTotal float64
	for _, v := range g {
		gTotal += v
	}
	if math.Abs(gTotal-truth.Total())/truth.Total() > 0.05 {
		t.Fatalf("gravity total %v, truth %v", gTotal, truth.Total())
	}
	// And is much denser than the truth (the paper's observation).
	if NonZeroCount(g) <= truth.NonZero() {
		t.Fatalf("gravity should spread traffic: %d nonzero vs truth %d", NonZeroCount(g), truth.NonZero())
	}
}

func TestTomogravitySatisfiesLinkCounts(t *testing.T) {
	p, top := smallProblem(t)
	truth := randomTorTM(top, 3)
	b := p.LinkCounts(truth)
	x, err := p.Tomogravity(b)
	if err != nil {
		t.Fatal(err)
	}
	got := p.a.MulVec(x)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-3*(1+b[i]) {
			t.Fatalf("constraint %d: %v vs %v", i, got[i], b[i])
		}
	}
	// Tomogravity should have bounded error but not be perfect on sparse
	// clustered truth.
	err75 := RMSRE(p.VecFromTM(truth), x, 0.75)
	if err75 <= 0 || err75 > 5 {
		t.Fatalf("tomogravity RMSRE = %v, expected imperfect but bounded", err75)
	}
}

func TestSparsityMaxIsSparse(t *testing.T) {
	p, top := smallProblem(t)
	truth := randomTorTM(top, 4)
	b := p.LinkCounts(truth)
	x, err := p.SparsityMax(b)
	if err != nil {
		t.Fatal(err)
	}
	if nz := NonZeroCount(x); nz > p.NumConstraints() {
		t.Fatalf("sparsity-max has %d non-zeros, more than %d constraints", nz, p.NumConstraints())
	}
	got := p.a.MulVec(x)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-3*(1+b[i]) {
			t.Fatalf("constraint %d: %v vs %v", i, got[i], b[i])
		}
	}
}

func TestSparsityComparisonOrdering(t *testing.T) {
	// The paper's Figure 14 finding: sparsity-max is sparser than truth,
	// truth is sparser than tomogravity.
	p, top := smallProblem(t)
	truth := randomTorTM(top, 5)
	b := p.LinkCounts(truth)
	xTrue := p.VecFromTM(truth)
	tg, err := p.Tomogravity(b)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := p.SparsityMax(b)
	if err != nil {
		t.Fatal(err)
	}
	_, fTrue := SparsityOfVec(xTrue, 0.75)
	_, fTG := SparsityOfVec(tg, 0.75)
	_, fSM := SparsityOfVec(sm, 0.75)
	if !(fSM <= fTrue && fTrue <= fTG) {
		t.Fatalf("sparsity ordering violated: SM=%v true=%v TG=%v", fSM, fTrue, fTG)
	}
}

func TestTomogravityWithMultiplierImprovesCluster(t *testing.T) {
	p, top := smallProblem(t)
	truth := randomTorTM(top, 6)
	b := p.LinkCounts(truth)
	// Oracle multiplier: boost exactly the pairs that carry traffic.
	xTrue := p.VecFromTM(truth)
	mult := make([]float64, len(xTrue))
	for i, v := range xTrue {
		if v > 0 {
			mult[i] = 10
		} else {
			mult[i] = 1
		}
	}
	plain, err := p.Tomogravity(b)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := p.TomogravityWithMultiplier(b, mult)
	if err != nil {
		t.Fatal(err)
	}
	if RMSRE(xTrue, boosted, 0.75) >= RMSRE(xTrue, plain, 0.75) {
		t.Fatal("an oracle job prior should not hurt")
	}
}

func TestRMSRE(t *testing.T) {
	xTrue := []float64{100, 50, 1, 0}
	perfect := []float64{100, 50, 1, 0}
	if RMSRE(xTrue, perfect, 0.75) != 0 {
		t.Fatal("perfect estimate should have zero error")
	}
	// Threshold for 75% of 151 = 113.25: entries {100, 50} cumulative
	// 100, 150 >= 113.25 at the second entry, so T = 50.
	est := []float64{100, 100, 9999, 0} // error only on the 50 entry
	got := RMSRE(xTrue, est, 0.75)
	if math.Abs(got-math.Sqrt(0.5)) > 1e-9 {
		t.Fatalf("RMSRE = %v, want sqrt(1/2)", got)
	}
	if RMSRE([]float64{0, 0}, []float64{1, 1}, 0.75) != 0 {
		t.Fatal("empty truth should yield 0")
	}
}

func TestSparsityOfVec(t *testing.T) {
	x := []float64{75, 10, 10, 5, 0, 0, 0, 0}
	count, frac := SparsityOfVec(x, 0.75)
	if count != 1 || frac != 0.125 {
		t.Fatalf("SparsityOfVec = %d, %v", count, frac)
	}
	if c, f := SparsityOfVec(nil, 0.75); c != 0 || f != 0 {
		t.Fatal("empty vector sparsity should be 0")
	}
}

func TestHeavyHitterOverlap(t *testing.T) {
	xTrue := []float64{0, 0, 0, 0, 0, 0, 10, 20, 30, 100}
	xEst := []float64{5, 0, 0, 0, 0, 0, 0, 0, 0, 50}
	// 90th percentile of truth ≈ 37: only index 9 qualifies; est has a
	// non-zero there.
	if got := HeavyHitterOverlap(xTrue, xEst, 90); got != 1 {
		t.Fatalf("overlap = %d, want 1", got)
	}
	if got := HeavyHitterOverlap(xTrue, make([]float64, 10), 90); got != 0 {
		t.Fatal("empty estimate should have no overlap")
	}
}

func TestJobMultiplier(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	log := &eventlog.Log{}
	// Job 1 runs on racks 0 and 1 (servers 0-9 and 10-19).
	log.AppendMembership(eventlog.JobMembership{Job: 1, Server: 0, Start: 0, End: time.Hour})
	log.AppendMembership(eventlog.JobMembership{Job: 1, Server: 15, Start: 0, End: time.Hour})
	log.AppendMembership(eventlog.JobMembership{Job: 2, Server: 55, Start: 0, End: time.Hour})
	mult := JobMultiplier(log, top, 0, time.Hour, 5)
	p := NewProblem(top)
	if len(mult) != p.NumPairs() {
		t.Fatalf("multiplier length %d", len(mult))
	}
	// Pair (0,1) should be boosted; pair (0,2) should not.
	var m01, m02 float64
	for i, pr := range p.pairs {
		if pr.src == 0 && pr.dst == 1 {
			m01 = mult[i]
		}
		if pr.src == 0 && pr.dst == 2 {
			m02 = mult[i]
		}
	}
	if m01 <= m02 || m02 != 1 {
		t.Fatalf("multipliers: (0,1)=%v (0,2)=%v", m01, m02)
	}
	// Records outside the window are ignored.
	late := JobMultiplier(log, top, 2*time.Hour, 3*time.Hour, 5)
	for _, v := range late {
		if v != 1 {
			t.Fatal("out-of-window membership leaked into multiplier")
		}
	}
}

func TestTomogravityOnUniformTraffic(t *testing.T) {
	// When the truth IS a gravity-like spread, tomogravity is near-perfect
	// — the prior assumption holds, as in ISP networks.
	p, top := smallProblem(t)
	truth := tm.NewMatrix(top.NumRacks())
	for i := 0; i < top.NumRacks(); i++ {
		for j := 0; j < top.NumRacks(); j++ {
			if i != j {
				truth.Add(i, j, 1e8)
			}
		}
	}
	b := p.LinkCounts(truth)
	x, err := p.Tomogravity(b)
	if err != nil {
		t.Fatal(err)
	}
	if e := RMSRE(p.VecFromTM(truth), x, 0.75); e > 0.01 {
		t.Fatalf("uniform-traffic RMSRE = %v, want ~0", e)
	}
	_ = linalg.Norm1 // keep import if unused elsewhere
}
