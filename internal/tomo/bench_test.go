package tomo

import (
	"math"
	"testing"

	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/topology"
)

// benchTorTM builds a paper-window-dense ToR TM: many concurrent jobs
// each spanning a few racks, so the link-count vector exercises most
// constraints the way a real 10-minute window does.
func benchTorTM(top *topology.Topology, seed uint64, jobs int) *tm.Matrix {
	r := stats.NewRNG(seed)
	m := tm.NewMatrix(top.NumRacks())
	for job := 0; job < jobs; job++ {
		base := r.IntN(top.NumRacks())
		span := 2 + r.IntN(3)
		for a := 0; a < span; a++ {
			for b := 0; b < span; b++ {
				if a == b {
					continue
				}
				i := (base + a) % top.NumRacks()
				j := (base + b) % top.NumRacks()
				m.Add(i, j, 1e9*(0.5+r.Float64()))
			}
		}
	}
	return m
}

// paperWindowBs builds the link-count vectors of a drifting window
// sequence on the paper-scale cluster — the exact inputs a tomography
// chain feeds its estimator.
func paperWindowBs(p *Problem, top *topology.Topology, steps int) [][]float64 {
	r := stats.NewRNG(11)
	truth := benchTorTM(top, 11, 25)
	bs := make([][]float64, steps)
	for i := range bs {
		bs[i] = p.LinkCounts(truth)
		truth = driftTM2(truth, r)
	}
	return bs
}

// driftTM2 is driftTM without the testing.T plumbing (benchmarks share
// the same window-to-window drift model as the estimator tests).
func driftTM2(m *tm.Matrix, r *stats.RNG) *tm.Matrix {
	n := m.N()
	next := tm.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := m.At(i, j)
			if v > 0 && r.Bool(0.3) {
				v = math.Max(0, v+(r.Float64()-0.5)*0.2*v)
			}
			next.Add(i, j, v)
		}
	}
	return next
}

// BenchmarkSparsityMax is one cold paper-scale (75-rack) sparsity-max
// solve — the tomography pipeline's dominant cost before warm starts.
func BenchmarkSparsityMax(b *testing.B) {
	top := topology.MustNew(topology.DefaultConfig())
	p := NewProblem(top)
	bs := paperWindowBs(p, top, 1)
	e := p.NewEstimator(EstimatorOptions{Cold: true})
	var sm []float64
	var err error
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sm, err = e.SparsityMaxInto(sm, bs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparsityMaxWarm cycles drifting paper-scale windows through
// one warm estimator — the steady-state per-window cost of a tomography
// chain. The primed loop before the timer guarantees every measured
// solve starts from the previous window's basis.
func BenchmarkSparsityMaxWarm(b *testing.B) {
	top := topology.MustNew(topology.DefaultConfig())
	p := NewProblem(top)
	bs := paperWindowBs(p, top, 8)
	e := p.NewEstimator(EstimatorOptions{})
	var sm []float64
	var err error
	for _, rhs := range bs {
		if sm, err = e.SparsityMaxInto(sm, rhs); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sm, err = e.SparsityMaxInto(sm, bs[i%len(bs)]); err != nil {
			b.Fatal(err)
		}
	}
}
