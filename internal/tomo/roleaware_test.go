package tomo

import (
	"testing"
	"time"

	"dctraffic/internal/eventlog"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
)

func TestRoleAwareMultiplierDirected(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	log := &eventlog.Log{}
	// Job 1: phase 0 (extract) on rack 0, phase 2 (aggregate) on rack 1.
	log.AppendMembership(eventlog.JobMembership{Job: 1, Phase: 0, Server: 0, Start: 0, End: time.Hour})
	log.AppendMembership(eventlog.JobMembership{Job: 1, Phase: 1, Server: 5, Start: 0, End: time.Hour})
	log.AppendMembership(eventlog.JobMembership{Job: 1, Phase: 2, Server: 15, Start: 0, End: time.Hour})
	mult := RoleAwareMultiplier(log, top, 0, time.Hour, 5)
	p := NewProblem(top)
	if len(mult) != p.NumPairs() {
		t.Fatalf("multiplier length %d", len(mult))
	}
	get := func(src, dst int) float64 {
		for i, pr := range p.pairs {
			if pr.src == src && pr.dst == dst {
				return mult[i]
			}
		}
		t.Fatalf("pair (%d,%d) not found", src, dst)
		return 0
	}
	// Phase 1 (rack 0) feeds phase 2 (rack 1): the 0→1 direction is
	// boosted; the reverse is not (phase 2 has no downstream).
	if get(0, 1) <= 1 {
		t.Fatalf("downstream direction not boosted: %v", get(0, 1))
	}
	if get(1, 0) != 1 {
		t.Fatalf("upstream direction should stay 1: %v", get(1, 0))
	}
	// Unrelated pairs untouched.
	if get(3, 4) != 1 {
		t.Fatalf("unrelated pair boosted: %v", get(3, 4))
	}
}

func TestRoleAwareMultiplierEmptyWindow(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	log := &eventlog.Log{}
	log.AppendMembership(eventlog.JobMembership{Job: 1, Phase: 0, Server: 0, Start: 0, End: time.Minute})
	mult := RoleAwareMultiplier(log, top, time.Hour, 2*time.Hour, 5)
	for _, v := range mult {
		if v != 1 {
			t.Fatal("out-of-window membership leaked")
		}
	}
}

func TestRoleAwareOracleImprovesEstimate(t *testing.T) {
	// Build truth that flows rack0→rack1 and rack2→rack3; a role-aware
	// prior matching those directions must beat plain tomogravity.
	top := topology.MustNew(topology.SmallConfig())
	p := NewProblem(top)
	truth := p.TMFromVec(make([]float64, p.NumPairs()))
	truth.Add(0, 1, 5e9)
	truth.Add(2, 3, 3e9)
	b := p.LinkCounts(truth)
	xTrue := p.VecFromTM(truth)

	log := &eventlog.Log{}
	// Job 1 phase 1 on rack 0, phase 2 on rack 1.
	log.AppendMembership(eventlog.JobMembership{Job: 1, Phase: 1, Server: 2, Start: 0, End: time.Hour})
	log.AppendMembership(eventlog.JobMembership{Job: 1, Phase: 2, Server: 12, Start: 0, End: time.Hour})
	// Job 2 phase 1 on rack 2, phase 2 on rack 3.
	log.AppendMembership(eventlog.JobMembership{Job: 2, Phase: 1, Server: 22, Start: 0, End: time.Hour})
	log.AppendMembership(eventlog.JobMembership{Job: 2, Phase: 2, Server: 32, Start: 0, End: time.Hour})

	mult := RoleAwareMultiplier(log, top, 0, time.Hour, 8)
	plain, err := p.Tomogravity(b)
	if err != nil {
		t.Fatal(err)
	}
	role, err := p.TomogravityWithMultiplier(b, mult)
	if err != nil {
		t.Fatal(err)
	}
	ePlain := RMSRE(xTrue, plain, 0.75)
	eRole := RMSRE(xTrue, role, 0.75)
	if eRole >= ePlain {
		t.Fatalf("role-aware prior (%v) should beat plain tomogravity (%v) when roles match traffic", eRole, ePlain)
	}
}

func TestNoisyLinkCounts(t *testing.T) {
	b := []float64{100, 200, 300, 0}
	exact := NoisyLinkCounts(b, stats.NewRNG(1), 0)
	for i := range b {
		if exact[i] != b[i] {
			t.Fatal("zero noise should copy exactly")
		}
	}
	exact[0] = -1
	if b[0] != 100 {
		t.Fatal("NoisyLinkCounts must not alias the input")
	}
	// With noise: mean preserved, variance present, zeros stay zero.
	r := stats.NewRNG(2)
	var sum float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		noisy := NoisyLinkCounts(b[:1], r, 0.2)
		sum += noisy[0]
		if noisy[0] <= 0 {
			t.Fatal("multiplicative noise keeps counters positive")
		}
	}
	mean := sum / trials
	if mean < 95 || mean > 105 {
		t.Fatalf("noise is biased: mean %v, want ~100", mean)
	}
	noisy := NoisyLinkCounts(b, r, 0.2)
	if noisy[3] != 0 {
		t.Fatal("zero counters stay zero")
	}
}

func TestTomographyDegradesWithCounterNoise(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	p := NewProblem(top)
	truth := p.TMFromVec(make([]float64, p.NumPairs()))
	r := stats.NewRNG(3)
	for i := 0; i < 10; i++ {
		truth.Add(r.IntN(top.NumRacks()), r.IntN(top.NumRacks()), 1e9*(0.5+r.Float64()))
	}
	b := p.LinkCounts(truth)
	xTrue := p.VecFromTM(truth)
	errAt := func(relStd float64) float64 {
		// Average a few noise draws to smooth the comparison.
		var sum float64
		const trials = 5
		nr := stats.NewRNG(4)
		for i := 0; i < trials; i++ {
			est, err := p.Tomogravity(NoisyLinkCounts(b, nr, relStd))
			if err != nil {
				t.Fatal(err)
			}
			sum += RMSRE(xTrue, est, 0.75)
		}
		return sum / trials
	}
	clean := errAt(0)
	noisy := errAt(0.3)
	if noisy <= clean {
		t.Fatalf("30%% counter noise should raise RMSRE: clean %v, noisy %v", clean, noisy)
	}
}
