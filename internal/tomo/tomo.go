// Package tomo implements the network-tomography study of §5: estimating
// ToR-to-ToR traffic matrices from link byte counters (the SNMP view)
// and comparing the estimates against ground truth.
//
// Three estimators are provided, mirroring the paper:
//
//   - Tomogravity: a gravity prior (traffic between ToRs proportional to
//     the product of their totals) adjusted by weighted least squares to
//     satisfy the link constraints (Zhang et al. style).
//   - Tomogravity with job metadata: the gravity prior is multiplied by a
//     factor that grows with the number of job instances two ToRs share
//     (§5.3).
//   - Sparsity maximization: the sparsest TM consistent with the link
//     counts. A basic feasible solution of the constraint polytope has at
//     most rank(A) non-zeros, which is what the paper's MILP seeks; we
//     obtain one with a phase-1 simplex (internal/simplex).
//
// Errors are reported as RMSRE over the entries that make up 75% of true
// volume, exactly as the paper defines it.
package tomo

import (
	"fmt"
	"math"
	"sort"

	"dctraffic/internal/det"
	"dctraffic/internal/eventlog"
	"dctraffic/internal/linalg"
	"dctraffic/internal/netsim"
	"dctraffic/internal/simplex"
	"dctraffic/internal/stats"
	"dctraffic/internal/tm"
	"dctraffic/internal/topology"
)

// Problem holds the routing structure of a ToR-level tomography instance:
// the constraint matrix A over origin-destination rack pairs and the
// mapping between pair indices and rack pairs. Build once per topology
// and reuse across time bins.
type Problem struct {
	top   *topology.Topology
	racks int
	pairs []pair // column index -> (src rack, dst rack)

	a   *linalg.Matrix // rows: inter-switch link counters; cols: pairs
	csc *linalg.CSC    // column index of a, shared by every solver bound to it

	rowOfLink map[topology.LinkID]int
	links     []topology.LinkID // row order
}

type pair struct{ src, dst int }

// NewProblem builds the constraint system for the topology: one row per
// inter-switch link (2·racks ToR links plus 2·aggs agg links — the "small
// constant times the number of nodes" the paper notes), one column per
// ordered rack pair.
func NewProblem(top *topology.Topology) *Problem {
	r := top.NumRacks()
	p := &Problem{
		top:       top,
		racks:     r,
		rowOfLink: make(map[topology.LinkID]int),
	}
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			if i != j {
				p.pairs = append(p.pairs, pair{i, j})
			}
		}
	}
	p.links = top.InterSwitchLinks()
	for idx, l := range p.links {
		p.rowOfLink[l] = idx
	}
	p.a = linalg.NewMatrix(len(p.links), len(p.pairs))
	for col, pr := range p.pairs {
		for _, l := range top.TorPath(topology.RackID(pr.src), topology.RackID(pr.dst)) {
			row, ok := p.rowOfLink[l]
			if !ok {
				continue
			}
			p.a.Set(row, col, 1)
		}
	}
	p.csc = linalg.NewCSC(p.a)
	return p
}

// NumPairs reports the number of OD pairs (racks²−racks).
func (p *Problem) NumPairs() int { return len(p.pairs) }

// NumConstraints reports the number of link counters.
func (p *Problem) NumConstraints() int { return len(p.links) }

// VecFromTM flattens a ToR TM into the pair vector.
func (p *Problem) VecFromTM(m *tm.Matrix) []float64 {
	return p.VecFromTMInto(make([]float64, len(p.pairs)), m)
}

// VecFromTMInto is VecFromTM writing into dst, which must have NumPairs
// entries.
func (p *Problem) VecFromTMInto(dst []float64, m *tm.Matrix) []float64 {
	if m.N() != p.racks {
		panic("tomo: TM size mismatch")
	}
	if len(dst) != len(p.pairs) {
		panic("tomo: vector size mismatch")
	}
	for i, pr := range p.pairs {
		dst[i] = m.At(pr.src, pr.dst)
	}
	return dst
}

// TMFromVec inflates a pair vector into a ToR TM.
func (p *Problem) TMFromVec(x []float64) *tm.Matrix {
	if len(x) != len(p.pairs) {
		panic("tomo: vector size mismatch")
	}
	m := tm.NewMatrix(p.racks)
	for i, pr := range p.pairs {
		m.Add(pr.src, pr.dst, x[i])
	}
	return m
}

// LinkCounts computes the byte counters the links would report for the
// given ground-truth TM: b = A·x. This is the paper's methodology — the
// estimators see only b.
func (p *Problem) LinkCounts(truth *tm.Matrix) []float64 {
	return p.a.MulVec(p.VecFromTM(truth))
}

// rowColSumsFromCounts recovers per-ToR outbound and inbound totals from
// the ToR up/downlink counters inside b — the only inputs a gravity prior
// may use in the SNMP-only setting.
func (p *Problem) rowColSumsFromCounts(b []float64) (out, in []float64, total float64) {
	out = make([]float64, p.racks)
	in = make([]float64, p.racks)
	total = p.rowColSumsInto(out, in, b)
	return out, in, total
}

// rowColSumsInto accumulates the per-ToR totals into caller-provided
// (zeroed) slices and returns the grand total.
func (p *Problem) rowColSumsInto(out, in []float64, b []float64) (total float64) {
	for r := 0; r < p.racks; r++ {
		for _, l := range p.top.TorUplinks(topology.RackID(r)) {
			if row, ok := p.rowOfLink[l]; ok {
				out[r] += b[row]
			}
		}
		for _, l := range p.top.TorDownlinks(topology.RackID(r)) {
			if row, ok := p.rowOfLink[l]; ok {
				in[r] += b[row]
			}
		}
	}
	for _, v := range out {
		total += v
	}
	return total
}

// GravityPrior builds the gravity estimate from link counts alone:
// g_ij = out_i · in_j / total, spread over all off-diagonal pairs.
// Each call allocates the prior and the per-rack totals; batch
// workloads get the same arithmetic allocation-free through an
// Estimator's Tomogravity*Into methods, which keep the prior in a
// reused workspace.
func (p *Problem) GravityPrior(b []float64) []float64 {
	out, in, total := p.rowColSumsFromCounts(b)
	g := make([]float64, len(p.pairs))
	if total <= 0 {
		return g
	}
	sum := 0.0
	for i, pr := range p.pairs {
		g[i] = out[pr.src] * in[pr.dst] / total
		sum += g[i]
	}
	// Excluding the diagonal removes mass when traffic is clustered;
	// renormalize so the prior carries the observed total volume.
	if sum > 0 {
		scale := total / sum
		for i := range g {
			g[i] *= scale
		}
	}
	return g
}

// Tomogravity estimates the TM from link counts: gravity prior, then a
// weighted least-squares adjustment onto the constraint subspace, clamped
// non-negative (linalg.ClampNonNeg works in place — the returned slice is
// the projection's). Batch workloads should prefer
// Estimator.TomogravityInto, which is bit-identical and reuses its
// solver workspace across calls.
func (p *Problem) Tomogravity(b []float64) ([]float64, error) {
	g := p.GravityPrior(b)
	x, err := linalg.WLSProject(p.a, b, g, g)
	if err != nil {
		return nil, fmt.Errorf("tomo: tomogravity adjustment: %w", err)
	}
	return linalg.ClampNonNeg(x), nil
}

// TomogravityWithMultiplier runs tomogravity with an element-wise prior
// multiplier (e.g. from job metadata). The multiplied prior is rescaled to
// preserve total volume before adjustment.
func (p *Problem) TomogravityWithMultiplier(b, mult []float64) ([]float64, error) {
	if len(mult) != len(p.pairs) {
		panic("tomo: multiplier size mismatch")
	}
	g := p.GravityPrior(b)
	var before, after float64
	for i := range g {
		before += g[i]
		g[i] *= mult[i]
		after += g[i]
	}
	if after > 0 && before > 0 {
		scale := before / after
		for i := range g {
			g[i] *= scale
		}
	}
	x, err := linalg.WLSProject(p.a, b, g, g)
	if err != nil {
		return nil, fmt.Errorf("tomo: job-prior adjustment: %w", err)
	}
	return linalg.ClampNonNeg(x), nil
}

// SparsityMax finds the sparsest TM consistent with the link counts via a
// phase-1 basic feasible solution (≤ rank(A) non-zero entries). Each call
// spins up a solver on the shared column index, so SparsityMax stays
// goroutine-safe; batch workloads should prefer an Estimator, which reuses
// one solver (and can warm-start it) across windows.
func (p *Problem) SparsityMax(b []float64) ([]float64, error) {
	res, err := simplex.NewSolverFromCSC(p.csc, simplex.Options{}).FeasibleBasic(b)
	if err != nil {
		return nil, fmt.Errorf("tomo: sparsity maximization: %w", err)
	}
	return res.X, nil
}

// NoisyLinkCounts perturbs exact link counters with multiplicative noise:
// each counter is scaled by a lognormal factor with the given relative
// standard deviation. Real SNMP counters suffer polling misalignment and
// loss; this models the sensitivity of the estimators to such error
// (exact counters are the paper's idealized setting).
func NoisyLinkCounts(b []float64, rng *stats.RNG, relStd float64) []float64 {
	if relStd <= 0 {
		return append([]float64(nil), b...)
	}
	// Lognormal with mean 1: sigma from relStd, mu = -sigma^2/2.
	sigma := math.Sqrt(math.Log(1 + relStd*relStd))
	d := stats.Lognormal{Mu: -sigma * sigma / 2, Sigma: sigma}
	out := make([]float64, len(b))
	for i, v := range b {
		out[i] = v * d.Sample(rng)
	}
	return out
}

// JobMultiplier derives the §5.3 prior multiplier from job membership
// records: for racks i and j, 1 + alpha · shared(i,j)/maxShared, where
// shared is the sum over jobs of the product of instance counts under the
// two ToRs during [from, to).
func JobMultiplier(log *eventlog.Log, top *topology.Topology, from, to netsim.Time, alpha float64) []float64 {
	// instances[job][rack] = count
	instances := make(map[int]map[int]float64)
	for _, m := range log.Membership() {
		if m.Start >= to || m.End <= from {
			continue
		}
		rack := top.Rack(m.Server)
		if rack < 0 {
			continue
		}
		byRack := instances[m.Job]
		if byRack == nil {
			byRack = make(map[int]float64)
			instances[m.Job] = byRack
		}
		byRack[int(rack)]++
	}
	r := top.NumRacks()
	shared := make([]float64, r*r)
	maxShared := 0.0
	// shared accumulates floats, so jobs and racks must be visited in a
	// fixed order: map order would perturb the sums' low bits run to run.
	for _, job := range det.SortedKeys(instances) {
		byRack := instances[job]
		racks := det.SortedKeys(byRack)
		for _, i := range racks {
			ci := byRack[i]
			for _, j := range racks {
				if i == j {
					continue
				}
				shared[i*r+j] += ci * byRack[j]
				if shared[i*r+j] > maxShared {
					maxShared = shared[i*r+j]
				}
			}
		}
	}
	// Flatten to pair order (same enumeration as NewProblem).
	var out []float64
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			if i == j {
				continue
			}
			m := 1.0
			if maxShared > 0 {
				m += alpha * shared[i*r+j] / maxShared
			}
			out = append(out, m)
		}
	}
	return out
}

// RoleAwareMultiplier is the §5.3 future-work extension the paper names:
// "incorporate further information on roles of nodes assigned to a job".
// Where JobMultiplier boosts any pair of racks sharing a job
// symmetrically, this prior is directed by workflow roles: traffic flows
// from the racks running a job's phase p to the racks running phase p+1
// (partition → aggregate pulls), so the multiplier for (i → j) grows with
// Σ_jobs Σ_phases count(job, phase, i) · count(job, phase+1, j).
func RoleAwareMultiplier(log *eventlog.Log, top *topology.Topology, from, to netsim.Time, alpha float64) []float64 {
	// counts[job][phase][rack]
	counts := make(map[int]map[int]map[int]float64)
	maxPhase := make(map[int]int)
	for _, m := range log.Membership() {
		if m.Start >= to || m.End <= from {
			continue
		}
		rack := top.Rack(m.Server)
		if rack < 0 {
			continue
		}
		byPhase := counts[m.Job]
		if byPhase == nil {
			byPhase = make(map[int]map[int]float64)
			counts[m.Job] = byPhase
		}
		byRack := byPhase[m.Phase]
		if byRack == nil {
			byRack = make(map[int]float64)
			byPhase[m.Phase] = byRack
		}
		byRack[int(rack)]++
		if m.Phase > maxPhase[m.Job] {
			maxPhase[m.Job] = m.Phase
		}
	}
	r := top.NumRacks()
	shared := make([]float64, r*r)
	maxShared := 0.0
	// Same fixed-order discipline as JobMultiplier: these are float sums.
	for _, job := range det.SortedKeys(counts) {
		byPhase := counts[job]
		for ph := 0; ph < maxPhase[job]; ph++ {
			up, down := byPhase[ph], byPhase[ph+1]
			for _, i := range det.SortedKeys(up) {
				ci := up[i]
				for _, j := range det.SortedKeys(down) {
					if i == j {
						continue
					}
					shared[i*r+j] += ci * down[j]
					if shared[i*r+j] > maxShared {
						maxShared = shared[i*r+j]
					}
				}
			}
		}
	}
	var out []float64
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			if i == j {
				continue
			}
			m := 1.0
			if maxShared > 0 {
				m += alpha * shared[i*r+j] / maxShared
			}
			out = append(out, m)
		}
	}
	return out
}

// RMSRE is the paper's error metric: root mean square relative error over
// the entries of the true TM at or above the threshold T chosen so that
// entries ≥ T make up volumeFrac (0.75 in the paper) of total true volume.
// It returns 0 when the true vector is empty.
func RMSRE(xTrue, xEst []float64, volumeFrac float64) float64 {
	if len(xTrue) != len(xEst) {
		panic("tomo: RMSRE length mismatch")
	}
	t := volumeThreshold(xTrue, volumeFrac)
	if t <= 0 {
		return 0
	}
	var sum float64
	var n int
	for i, v := range xTrue {
		if v >= t {
			rel := (xEst[i] - v) / v
			sum += rel * rel
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// volumeThreshold returns the value T such that entries >= T cover
// volumeFrac of the total.
func volumeThreshold(x []float64, volumeFrac float64) float64 {
	total := 0.0
	for _, v := range x {
		total += v
	}
	if total <= 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	target := volumeFrac * total
	cum := 0.0
	for _, v := range s {
		cum += v
		if cum >= target {
			return v
		}
	}
	return s[len(s)-1]
}

// SparsityOfVec reports how many entries a vector needs to cover
// volumeFrac of its total, and that count as a fraction of vector length —
// the Figure 14 comparison applied to estimates.
func SparsityOfVec(x []float64, volumeFrac float64) (count int, frac float64) {
	total := 0.0
	for _, v := range x {
		total += v
	}
	if total <= 0 || len(x) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), x...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	target := volumeFrac * total
	cum := 0.0
	for _, v := range s {
		cum += v
		count++
		if cum >= target {
			break
		}
	}
	return count, float64(count) / float64(len(x))
}

// NonZeroCount counts entries above a small absolute floor.
func NonZeroCount(x []float64) int {
	n := 0
	for _, v := range x {
		if v > 1e-6 {
			n++
		}
	}
	return n
}

// HeavyHitterOverlap counts how many of est's non-zero entries coincide
// with true entries above the given true-percentile — the paper's
// observation that sparsity-max non-zeros rarely land on real heavy
// hitters (only 5–20 of ~150).
func HeavyHitterOverlap(xTrue, xEst []float64, pct float64) int {
	if len(xTrue) != len(xEst) {
		panic("tomo: length mismatch")
	}
	var vals []float64
	for _, v := range xTrue {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	idx := int(pct / 100 * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	thresh := vals[idx]
	if thresh <= 0 {
		// Percentile falls in the zero mass; use the smallest positive.
		for _, v := range vals {
			if v > 0 {
				thresh = v
				break
			}
		}
		if thresh <= 0 {
			return 0
		}
	}
	n := 0
	for i, v := range xEst {
		if v > 1e-6 && xTrue[i] >= thresh {
			n++
		}
	}
	return n
}
