package congestion

import (
	"math"
	"testing"
	"time"

	"dctraffic/internal/eventlog"
	"dctraffic/internal/netsim"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// saturate runs flows through a small network and returns it with 1s
// utilization bins recorded.
func saturate(t *testing.T) (*netsim.Network, *topology.Topology) {
	t.Helper()
	top := topology.MustNew(topology.SmallConfig())
	net := netsim.New(top, netsim.Options{StatsBinSize: time.Second})
	return net, top
}

func TestDetectSaturatedLink(t *testing.T) {
	net, top := saturate(t)
	// Saturate server 0's uplink for ~5 s.
	net.StartFlow(0, 1, 625_000_000, netsim.FlowTag{}, nil) // 5s at 1 Gbps
	net.RunAll()
	link := top.ServerUplink(0)
	eps := Detect(net.Stats(), top, 0.7, []topology.LinkID{link})
	if len(eps) != 1 {
		t.Fatalf("episodes = %v, want 1", eps)
	}
	if d := eps[0].Duration(); d < 4*time.Second || d > 6*time.Second {
		t.Fatalf("episode duration %v, want ~5s", d)
	}
}

func TestDetectBelowThreshold(t *testing.T) {
	net, top := saturate(t)
	// Two flows share the uplink: each 0.5 Gbps, the link runs at 100%;
	// but a single 0.5 Gbps-capable flow (bottlenecked elsewhere) is not
	// congestion. Use a ToR-bottlenecked set: 5 flows through ToR 0 to
	// rack 2 — each server uplink carries only 0.5 Gbps (50% util).
	src := top.RackServers(0)
	dst := top.RackServers(2)
	for i := 0; i < 5; i++ {
		net.StartFlow(src[i], dst[i], 250_000_000, netsim.FlowTag{}, nil)
	}
	net.RunAll()
	// Server uplinks at 50%: below the 70% threshold.
	eps := Detect(net.Stats(), top, 0.7, []topology.LinkID{top.ServerUplink(src[0])})
	if len(eps) != 0 {
		t.Fatalf("expected no episodes at 50%% util, got %v", eps)
	}
	// The ToR uplink ran at 100%: congested.
	eps = Detect(net.Stats(), top, 0.7, []topology.LinkID{top.TorUplink(0)})
	if len(eps) != 1 {
		t.Fatalf("ToR uplink episodes = %v", eps)
	}
}

func TestDetectDefaultLinksAndThreshold(t *testing.T) {
	net, top := saturate(t)
	src := top.RackServers(0)
	dst := top.RackServers(2)
	for i := 0; i < 5; i++ {
		net.StartFlow(src[i], dst[i], 312_500_000, netsim.FlowTag{}, nil)
	}
	net.RunAll()
	eps := Detect(net.Stats(), top, 0, nil) // defaults
	found := false
	for _, e := range eps {
		if e.Link == top.TorUplink(0) {
			found = true
		}
	}
	if !found {
		t.Fatal("default inter-switch scan missed the hot ToR uplink")
	}
}

func TestSummarizeAndFrac(t *testing.T) {
	eps := []Episode{
		{Link: 1, Start: 0, End: 5 * time.Second},
		{Link: 1, Start: 10 * time.Second, End: 30 * time.Second},
		{Link: 2, Start: 0, End: 2 * time.Second},
	}
	sums := SummarizeLinks(eps)
	if len(sums) != 2 {
		t.Fatalf("summaries = %v", sums)
	}
	if sums[0].Link != 1 || sums[0].Episodes != 2 || sums[0].LongestSec != 20 || sums[0].CongestedSec != 25 {
		t.Fatalf("link 1 summary wrong: %+v", sums[0])
	}
	links := []topology.LinkID{1, 2, 3}
	if f := FracLinksWithEpisodeAtLeast(eps, links, 10*time.Second); math.Abs(f-1.0/3) > 1e-12 {
		t.Fatalf("frac >= 10s = %v, want 1/3", f)
	}
	if f := FracLinksWithEpisodeAtLeast(eps, links, time.Second); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("frac >= 1s = %v, want 2/3", f)
	}
	if FracLinksWithEpisodeAtLeast(eps, nil, 0) != 0 {
		t.Fatal("no links should give 0")
	}
}

func TestDurationStats(t *testing.T) {
	eps := []Episode{
		{Link: 1, Start: 0, End: 2 * time.Second},
		{Link: 1, Start: 0, End: 15 * time.Second},
		{Link: 2, Start: 0, End: 400 * time.Second},
	}
	cdf, over10, longest := DurationStats(eps)
	if cdf.N() != 3 || over10 != 2 || longest != 400 {
		t.Fatalf("stats = %d %d %v", cdf.N(), over10, longest)
	}
}

func TestEpisodeIndexOverlap(t *testing.T) {
	idx := NewEpisodeIndex([]Episode{
		{Link: 5, Start: 10 * time.Second, End: 20 * time.Second},
		{Link: 5, Start: 40 * time.Second, End: 50 * time.Second},
	})
	cases := []struct {
		from, to time.Duration
		want     bool
	}{
		{0, 5 * time.Second, false},
		{0, 10 * time.Second, false}, // half-open
		{0, 11 * time.Second, true},
		{20 * time.Second, 40 * time.Second, false},
		{45 * time.Second, 60 * time.Second, true},
		{50 * time.Second, 60 * time.Second, false},
	}
	for _, c := range cases {
		if got := idx.Overlaps(5, c.from, c.to); got != c.want {
			t.Errorf("overlaps(%v,%v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	if idx.Overlaps(6, 0, time.Hour) {
		t.Fatal("unknown link should not overlap")
	}
}

func TestOverlapRateCDFs(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	link := top.ServerUplink(0)
	eps := []Episode{{Link: link, Start: 0, End: 10 * time.Second}}
	records := []trace.FlowRecord{
		{ID: 1, Src: 0, Dst: 1, Bytes: 1_250_000, Start: time.Second, End: 2 * time.Second},       // on hot link
		{ID: 2, Src: 5, Dst: 6, Bytes: 1_250_000, Start: time.Second, End: 2 * time.Second},       // elsewhere
		{ID: 3, Src: 0, Dst: 1, Bytes: 1_250_000, Start: 20 * time.Second, End: 21 * time.Second}, // after episode
	}
	overlap, all := OverlapRateCDFs(records, eps, top)
	if all.N() != 3 || overlap.N() != 1 {
		t.Fatalf("overlap=%d all=%d", overlap.N(), all.N())
	}
}

func TestReadFailureImpact(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	link := top.ServerUplink(0)
	day := 24 * time.Hour
	eps := []Episode{{Link: link, Start: 0, End: time.Hour}}
	records := []trace.FlowRecord{
		{ID: 1, Src: 0, Dst: 15, Start: time.Minute, End: 2 * time.Minute, Bytes: 1},
		{ID: 2, Src: 5, Dst: 25, Start: time.Minute, End: 2 * time.Minute, Bytes: 1},
	}
	log := &eventlog.Log{}
	// Congested attempts: 2 of 4 fail. Clear attempts: 1 of 4 fails.
	for i := 0; i < 4; i++ {
		log.AppendRead(eventlog.ReadAttempt{Flow: 1, Start: time.Minute, End: 2 * time.Minute, Failed: i < 2})
		log.AppendRead(eventlog.ReadAttempt{Flow: 2, Start: time.Minute, End: 2 * time.Minute, Failed: i < 1})
	}
	// Day 2: only clear attempts.
	log.AppendRead(eventlog.ReadAttempt{Flow: -1, Start: day + time.Hour, End: day + 2*time.Hour, Failed: false})
	impacts := ReadFailureImpact(log, records, eps, top, day, 2)
	if len(impacts) != 2 {
		t.Fatalf("impacts = %v", impacts)
	}
	d0 := impacts[0]
	if d0.CongestedReads != 4 || d0.ClearReads != 4 {
		t.Fatalf("day 0 classes: %+v", d0)
	}
	if math.Abs(d0.PFailCongested-0.5) > 1e-12 || math.Abs(d0.PFailClear-0.25) > 1e-12 {
		t.Fatalf("day 0 probabilities: %+v", d0)
	}
	if math.Abs(d0.IncreasePct-100) > 1e-9 {
		t.Fatalf("day 0 increase = %v, want 100%%", d0.IncreasePct)
	}
	if impacts[1].CongestedReads != 0 || impacts[1].IncreasePct != 0 {
		t.Fatalf("day 1 should be clear-only: %+v", impacts[1])
	}
}

func TestConcurrencySeries(t *testing.T) {
	eps := []Episode{
		{Link: 1, Start: 0, End: 2 * time.Second},
		{Link: 2, Start: time.Second, End: 3 * time.Second},
	}
	s := ConcurrencySeries(eps, time.Second, 4*time.Second)
	want := []int{1, 2, 1, 0}
	for i, w := range want {
		if s[i] != w {
			t.Fatalf("series = %v, want %v", s, want)
		}
	}
}

func TestAuditIncast(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	ext := topology.ServerID(top.NumServers())
	records := []trace.FlowRecord{
		{Src: 0, Dst: 1},   // same rack
		{Src: 0, Dst: 15},  // same VLAN (racks 0,1)
		{Src: 0, Dst: 75},  // far
		{Src: ext, Dst: 0}, // external: excluded
	}
	a := AuditIncast(records, top, nil, time.Second, 10*time.Second, 2)
	if a.MaxSimultaneousConnections != 2 {
		t.Fatal("conn cap not carried")
	}
	if math.Abs(a.FracFlowsWithinRack-1.0/3) > 1e-12 {
		t.Fatalf("rack frac = %v", a.FracFlowsWithinRack)
	}
	if math.Abs(a.FracFlowsWithinVLAN-2.0/3) > 1e-12 {
		t.Fatalf("vlan frac = %v", a.FracFlowsWithinVLAN)
	}
}

func TestSynchronizedFanIn(t *testing.T) {
	mk := func(src, dst topology.ServerID, at time.Duration) trace.FlowRecord {
		return trace.FlowRecord{Src: src, Dst: dst, Start: at, End: at + time.Second, Bytes: 1}
	}
	records := []trace.FlowRecord{
		// Three distinct senders hit server 9 within 1 ms.
		mk(1, 9, 0),
		mk(2, 9, 200*time.Microsecond),
		mk(3, 9, 900*time.Microsecond),
		// A fourth arrives much later.
		mk(4, 9, time.Second),
		// Repeat sender within the window does not raise distinct count.
		mk(1, 9, 500*time.Microsecond),
		// Loopback ignored.
		mk(5, 5, 0),
	}
	maxFan, hist := SynchronizedFanIn(records, time.Millisecond)
	if maxFan != 3 {
		t.Fatalf("max fan-in = %d, want 3", maxFan)
	}
	if len(hist) == 0 || hist[1] == 0 {
		t.Fatalf("histogram missing: %v", hist)
	}
	// Empty input.
	if m, h := SynchronizedFanIn(nil, time.Millisecond); m != 0 || len(h) != 0 {
		t.Fatal("empty input should yield zero fan-in")
	}
}

func TestAttribute(t *testing.T) {
	top := topology.MustNew(topology.SmallConfig())
	// Flows with known paths; IDs matter for PathK reconstruction on
	// multipath, but this is the tree so any ID works.
	mkr := func(id int64, src, dst topology.ServerID, bytes int64, start, end time.Duration, kind netsim.FlowKind) trace.FlowRecord {
		return trace.FlowRecord{ID: netsim.FlowID(id), Src: src, Dst: dst, Bytes: bytes,
			Start: start, End: end, Tag: netsim.FlowTag{Kind: kind}}
	}
	link := top.ServerUplink(0)
	eps := []Episode{{Link: link, Start: 0, End: 10 * time.Second}}
	records := []trace.FlowRecord{
		// Shuffle fully inside the episode on the hot link: all 1000 bytes.
		mkr(1, 0, 15, 1000, 0, 10*time.Second, netsim.KindShuffle),
		// Evacuate overlapping half the episode: 500 of 1000 bytes.
		mkr(2, 0, 25, 1000, 5*time.Second, 15*time.Second, netsim.KindEvacuate),
		// Control flow elsewhere: never on the hot link.
		mkr(3, 5, 6, 1000, 0, 10*time.Second, netsim.KindControl),
	}
	a := Attribute(records, eps, top)
	if a.TotalBytes != 1500 {
		t.Fatalf("total attributed = %v, want 1500", a.TotalBytes)
	}
	if a.BytesOnCongested[netsim.KindShuffle] != 1000 {
		t.Fatalf("shuffle bytes = %v", a.BytesOnCongested[netsim.KindShuffle])
	}
	if a.BytesOnCongested[netsim.KindEvacuate] != 500 {
		t.Fatalf("evacuate bytes = %v", a.BytesOnCongested[netsim.KindEvacuate])
	}
	if _, present := a.Share[netsim.KindControl]; present {
		t.Fatal("uninvolved kind should not appear")
	}
	ranked := a.Ranked()
	if len(ranked) != 2 || ranked[0] != netsim.KindShuffle {
		t.Fatalf("ranking = %v", ranked)
	}
	// Empty inputs.
	empty := Attribute(nil, nil, top)
	if empty.TotalBytes != 0 || len(empty.Ranked()) != 0 {
		t.Fatal("empty attribution should be zero")
	}
}

func TestCorrelate(t *testing.T) {
	eps := []Episode{
		// Three short episodes overlapping at t=1s on different links.
		{Link: 1, Start: 0, End: 2 * time.Second},
		{Link: 2, Start: 0, End: 2 * time.Second},
		{Link: 3, Start: 0, End: 2 * time.Second},
		// One long, isolated episode.
		{Link: 4, Start: 100 * time.Second, End: 200 * time.Second},
	}
	cs := Correlate(eps)
	if cs.ShortEpisodes != 3 || cs.LongEpisodes != 1 {
		t.Fatalf("split = %d short / %d long", cs.ShortEpisodes, cs.LongEpisodes)
	}
	if cs.MeanCoHotShort != 2 {
		t.Fatalf("short co-hot = %v, want 2", cs.MeanCoHotShort)
	}
	if cs.MeanCoHotLong != 0 {
		t.Fatalf("long co-hot = %v, want 0", cs.MeanCoHotLong)
	}
	if got := Correlate(nil); got.ShortEpisodes != 0 {
		t.Fatal("empty episodes should be zero")
	}
}
