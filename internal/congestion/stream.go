package congestion

import (
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// FanInTracker is the online form of SynchronizedFanIn's maximum: it
// observes records in nondecreasing Start order and maintains, per
// destination, the distinct-sender count inside the sliding arrival
// window, holding only the arrivals the window can still cover instead
// of every arrival in the trace.
type FanInTracker struct {
	window netsim.Time
	byDst  map[topology.ServerID]*dstWindow
	max    int
}

// dstWindow is one destination's sliding arrival window.
type dstWindow struct {
	arrivals []arrival
	lo       int
	senders  map[topology.ServerID]int
	distinct int
}

type arrival struct {
	at  netsim.Time
	src topology.ServerID
}

// NewFanInTracker tracks distinct senders per destination within
// window (SynchronizedFanIn uses 1 ms for the incast audit).
func NewFanInTracker(window netsim.Time) *FanInTracker {
	return &FanInTracker{window: window, byDst: make(map[topology.ServerID]*dstWindow)}
}

// Observe consumes the next record. Self-flows are skipped, matching
// SynchronizedFanIn.
func (f *FanInTracker) Observe(r *trace.FlowRecord) {
	if r.Src == r.Dst {
		return
	}
	w := f.byDst[r.Dst]
	if w == nil {
		w = &dstWindow{senders: make(map[topology.ServerID]int)}
		f.byDst[r.Dst] = w
	}
	w.arrivals = append(w.arrivals, arrival{at: r.Start, src: r.Src})
	w.senders[r.Src]++
	if w.senders[r.Src] == 1 {
		w.distinct++
	}
	hi := len(w.arrivals) - 1
	for w.arrivals[hi].at-w.arrivals[w.lo].at > f.window {
		old := w.arrivals[w.lo]
		w.senders[old.src]--
		if w.senders[old.src] == 0 {
			w.distinct--
			delete(w.senders, old.src)
		}
		w.lo++
	}
	if w.distinct > f.max {
		f.max = w.distinct
	}
	// Reclaim the evicted prefix once it dominates the slice.
	if w.lo > 64 && w.lo > len(w.arrivals)/2 {
		n := copy(w.arrivals, w.arrivals[w.lo:])
		w.arrivals = w.arrivals[:n]
		w.lo = 0
	}
}

// Max reports the maximum synchronized fan-in observed so far. Equal to
// SynchronizedFanIn's maxFanIn over the same records: within one
// destination the sliding window admits the same arrival sets, and the
// maximum over window positions does not depend on how Start ties are
// ordered (tied arrivals land in one window together either way).
func (f *FanInTracker) Max() int { return f.max }

// IncastTracker streams the record-derived half of the §5 incast audit
// — the locality fractions and the synchronized fan-in maximum — so
// trace-file analyses can audit incast without materializing records.
// The episode-derived fields (mean concurrent congested links) and the
// config-derived cap join in Audit.
type IncastTracker struct {
	top   *topology.Topology
	fan   *FanInTracker
	total int
	rack  int
	vlan  int
}

// NewIncastTracker builds a tracker over top using AuditIncast's 1 ms
// fan-in window.
func NewIncastTracker(top *topology.Topology) *IncastTracker {
	return &IncastTracker{top: top, fan: NewFanInTracker(netsim.Time(time.Millisecond))}
}

// Observe consumes the next record (nondecreasing Start).
func (t *IncastTracker) Observe(r *trace.FlowRecord) {
	t.fan.Observe(r)
	if t.top.IsExternal(r.Src) || t.top.IsExternal(r.Dst) {
		return
	}
	t.total++
	if r.Src == r.Dst || t.top.SameRack(r.Src, r.Dst) {
		t.rack++
		t.vlan++
	} else if t.top.SameVLAN(r.Src, r.Dst) {
		t.vlan++
	}
}

// Audit combines the streamed counters with the episode- and
// config-derived fields into the same IncastAudit AuditIncast returns.
func (t *IncastTracker) Audit(eps []Episode, binSize, horizon netsim.Time, maxConns int) IncastAudit {
	a := IncastAudit{MaxSimultaneousConnections: maxConns}
	if t.total > 0 {
		a.FracFlowsWithinRack = float64(t.rack) / float64(t.total)
		a.FracFlowsWithinVLAN = float64(t.vlan) / float64(t.total)
	}
	if binSize > 0 {
		a.MeanConcurrentCongestedLinks = stats.MeanInt(ConcurrencySeries(eps, binSize, horizon))
	}
	a.MaxSyncFanIn = t.fan.Max()
	return a
}
