package congestion

import (
	"sort"
	"testing"
	"time"

	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// incastRecords builds records with bursty fan-in: several senders hit
// the same destination within the 1 ms audit window.
func incastRecords(t *testing.T, top *topology.Topology, n int) []trace.FlowRecord {
	t.Helper()
	rng := stats.NewRNG(31).Fork("incast_test")
	hosts := top.NumHosts()
	out := make([]trace.FlowRecord, 0, n)
	id := 0
	for len(out) < n {
		base := netsim.Time(rng.Float64() * float64(time.Minute))
		dst := topology.ServerID(rng.IntN(hosts))
		burst := 1 + rng.IntN(6)
		for b := 0; b < burst && len(out) < n; b++ {
			start := base + netsim.Time(rng.IntN(3))*netsim.Time(300*time.Microsecond)
			out = append(out, trace.FlowRecord{
				ID:    netsim.FlowID(id),
				Src:   topology.ServerID(rng.IntN(hosts)),
				Dst:   dst,
				Start: start,
				End:   start + netsim.Time(time.Second),
				Bytes: 1,
			})
			id++
		}
	}
	return out
}

// The streaming incast tracker must reproduce AuditIncast exactly when
// fed the same records in canonical order.
func TestIncastTrackerMatchesAudit(t *testing.T) {
	top, err := topology.New(topology.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := incastRecords(t, top, 3000)
	eps := []Episode{
		{Link: 1, Start: 0, End: netsim.Time(10 * time.Second)},
		{Link: 2, Start: netsim.Time(5 * time.Second), End: netsim.Time(30 * time.Second)},
	}
	binSize := netsim.Time(time.Second)
	horizon := netsim.Time(time.Minute)
	want := AuditIncast(recs, top, eps, binSize, horizon, 7)

	sorted := append([]trace.FlowRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].ID < sorted[j].ID
	})
	tr := NewIncastTracker(top)
	for i := range sorted {
		tr.Observe(&sorted[i])
	}
	got := tr.Audit(eps, binSize, horizon, 7)
	if got != want {
		t.Fatalf("streamed audit %+v != batch audit %+v", got, want)
	}
}

// The fan-in tracker's maximum must match SynchronizedFanIn across
// window sizes, including zero-width windows (simultaneous arrivals
// only).
func TestFanInTrackerMatchesBatch(t *testing.T) {
	top, err := topology.New(topology.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := incastRecords(t, top, 2000)
	sorted := append([]trace.FlowRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].ID < sorted[j].ID
	})
	for _, window := range []netsim.Time{0, netsim.Time(time.Millisecond), netsim.Time(50 * time.Millisecond)} {
		wantMax, _ := SynchronizedFanIn(recs, window)
		ft := NewFanInTracker(window)
		for i := range sorted {
			ft.Observe(&sorted[i])
		}
		if ft.Max() != wantMax {
			t.Fatalf("window %v: streamed max %d != batch max %d", window, ft.Max(), wantMax)
		}
	}
}
