// Package congestion implements the hot-spot analyses of §4.2: detecting
// high-utilization episodes on links (Figure 5), their duration
// distribution (Figure 6), the rates of flows that overlap congestion
// versus all flows (Figure 7), the correlation between high utilization
// and application read failures (Figure 8), and the §4.4 incast
// preconditions audit.
package congestion

import (
	"sort"
	"time"

	"dctraffic/internal/eventlog"
	"dctraffic/internal/netsim"
	"dctraffic/internal/stats"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// DefaultThreshold is the paper's hot-spot utilization constant C. The
// paper notes 0.9 or 0.95 yield qualitatively similar results.
const DefaultThreshold = 0.7

// Episode is a maximal run of consecutive bins during which one link's
// utilization stayed at or above the threshold.
type Episode struct {
	Link  topology.LinkID
	Start netsim.Time // inclusive
	End   netsim.Time // exclusive
}

// Duration returns the episode length.
func (e Episode) Duration() netsim.Time { return e.End - e.Start }

// Detect scans the recorded utilization of the given links (nil means the
// topology's inter-switch links — the set the paper reports on) and
// returns all episodes at or above threshold (<=0 means DefaultThreshold),
// ordered by link then start time.
func Detect(st *netsim.LinkStats, top *topology.Topology, threshold float64, links []topology.LinkID) []Episode {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if links == nil {
		links = top.InterSwitchLinks()
	}
	bin := st.BinSize()
	var out []Episode
	for _, id := range links {
		if !st.Tracked(id) {
			continue
		}
		capBps := top.Link(id).CapacityBps
		bytes := st.Bytes(id)
		capBytesPerBin := capBps / 8 * bin.Seconds()
		runStart := -1
		for i := 0; i <= len(bytes); i++ {
			hot := i < len(bytes) && capBytesPerBin > 0 && bytes[i]/capBytesPerBin >= threshold
			if hot && runStart < 0 {
				runStart = i
			}
			if !hot && runStart >= 0 {
				out = append(out, Episode{
					Link:  id,
					Start: netsim.Time(runStart) * bin,
					End:   netsim.Time(i) * bin,
				})
				runStart = -1
			}
		}
	}
	return out
}

// LinkSummary aggregates the episodes of one link.
type LinkSummary struct {
	Link         topology.LinkID
	Episodes     int
	LongestSec   float64
	CongestedSec float64
}

// SummarizeLinks groups episodes per link.
func SummarizeLinks(eps []Episode) []LinkSummary {
	byLink := make(map[topology.LinkID]*LinkSummary)
	var order []topology.LinkID
	for _, e := range eps {
		s := byLink[e.Link]
		if s == nil {
			s = &LinkSummary{Link: e.Link}
			byLink[e.Link] = s
			order = append(order, e.Link)
		}
		s.Episodes++
		d := e.Duration().Seconds()
		s.CongestedSec += d
		if d > s.LongestSec {
			s.LongestSec = d
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]LinkSummary, 0, len(order))
	for _, id := range order {
		out = append(out, *byLink[id])
	}
	return out
}

// FracLinksWithEpisodeAtLeast reports the fraction of the given links that
// experienced at least one episode of at least minDur — the paper's "86%
// of links observe congestion lasting at least 10 seconds, 15% at least
// 100 seconds".
func FracLinksWithEpisodeAtLeast(eps []Episode, links []topology.LinkID, minDur netsim.Time) float64 {
	if len(links) == 0 {
		return 0
	}
	hit := make(map[topology.LinkID]bool)
	for _, e := range eps {
		if e.Duration() >= minDur {
			hit[e.Link] = true
		}
	}
	n := 0
	for _, l := range links {
		if hit[l] {
			n++
		}
	}
	return float64(n) / float64(len(links))
}

// DurationStats renders Figure 6: the distribution of episode lengths
// (seconds), the count of episodes longer than 10 s, and the longest.
func DurationStats(eps []Episode) (cdf *stats.CDF, over10s int, longestSec float64) {
	cdf = &stats.CDF{}
	for _, e := range eps {
		d := e.Duration().Seconds()
		cdf.Add(d)
		if d > 10 {
			over10s++
		}
		if d > longestSec {
			longestSec = d
		}
	}
	return cdf, over10s, longestSec
}

// EpisodeIndex answers interval-overlap queries per link. Build once
// with NewEpisodeIndex; it is immutable afterwards and safe for
// concurrent readers, so shard-parallel record joins can share one.
type EpisodeIndex struct {
	byLink map[topology.LinkID][]Episode // sorted by start
}

// NewEpisodeIndex indexes a detected episode set by link.
func NewEpisodeIndex(eps []Episode) *EpisodeIndex {
	idx := &EpisodeIndex{byLink: make(map[topology.LinkID][]Episode)}
	for _, e := range eps {
		idx.byLink[e.Link] = append(idx.byLink[e.Link], e)
	}
	for l := range idx.byLink {
		es := idx.byLink[l]
		sort.Slice(es, func(i, j int) bool { return es[i].Start < es[j].Start })
	}
	return idx
}

// Overlaps reports whether link l had an episode intersecting [from, to).
func (idx *EpisodeIndex) Overlaps(l topology.LinkID, from, to netsim.Time) bool {
	es := idx.byLink[l]
	// First episode with End > from.
	i := sort.Search(len(es), func(i int) bool { return es[i].End > from })
	return i < len(es) && es[i].Start < to
}

// Link returns link l's episodes sorted by start time. Read-only.
func (idx *EpisodeIndex) Link(l topology.LinkID) []Episode { return idx.byLink[l] }

// FlowOverlapsCongestion reports whether any link of the flow's path had
// an overlapping episode. The path is reconstructed from the record's
// flow id, which doubles as the ECMP key on multipath fabrics.
func FlowOverlapsCongestion(r trace.FlowRecord, idx *EpisodeIndex, top *topology.Topology) bool {
	for _, l := range top.PathK(r.Src, r.Dst, uint64(r.ID)) {
		if idx.Overlaps(l, r.Start, r.End) {
			return true
		}
	}
	return false
}

// OverlapRateCDFs builds Figure 7: the rate distributions (Mbps) of flows
// that overlapped congestion and of all flows.
func OverlapRateCDFs(records []trace.FlowRecord, eps []Episode, top *topology.Topology) (overlap, all *stats.CDF) {
	return OverlapRateCDFsIndexed(records, NewEpisodeIndex(eps), top)
}

// OverlapRateCDFsIndexed is OverlapRateCDFs against a prebuilt episode
// index, for callers that join several record shards with one index:
// compute per-shard CDFs concurrently, then stats.CDF.Merge them in
// shard order.
func OverlapRateCDFsIndexed(records []trace.FlowRecord, idx *EpisodeIndex, top *topology.Topology) (overlap, all *stats.CDF) {
	overlap, all = &stats.CDF{}, &stats.CDF{}
	for _, r := range records {
		rate := r.AvgRateBps()
		if rate <= 0 {
			continue
		}
		all.Add(rate / 1e6)
		if FlowOverlapsCongestion(r, idx, top) {
			overlap.Add(rate / 1e6)
		}
	}
	return overlap, all
}

// DayImpact is one bar of Figure 8: within one day, how much more likely a
// read attempt was to fail when its flow crossed a high-utilization link.
type DayImpact struct {
	Day            int
	CongestedReads int
	ClearReads     int
	PFailCongested float64
	PFailClear     float64
	// IncreasePct is (PFailCongested/PFailClear − 1)·100; 0 when either
	// class is empty or the clear class saw no failures.
	IncreasePct float64
}

// ReadFailureImpact joins the application log's read attempts with
// congestion episodes (via each attempt's flow path), grouped per day.
// Local reads (no flow) are counted in the clear class: they cannot have
// crossed a hot link.
func ReadFailureImpact(log *eventlog.Log, records []trace.FlowRecord, eps []Episode, top *topology.Topology, dayLen netsim.Time, numDays int) []DayImpact {
	idx := NewEpisodeIndex(eps)
	byID := make(map[netsim.FlowID]trace.FlowRecord, len(records))
	for _, r := range records {
		byID[r.ID] = r
	}
	type bucket struct {
		congested, congestedFail int
		clear, clearFail         int
	}
	buckets := make([]bucket, numDays)
	for _, ra := range log.Reads() {
		day := int(ra.Start / dayLen)
		if day < 0 || day >= numDays {
			continue
		}
		congested := false
		if ra.Flow >= 0 {
			if r, ok := byID[ra.Flow]; ok {
				congested = FlowOverlapsCongestion(r, idx, top)
			}
		}
		b := &buckets[day]
		if congested {
			b.congested++
			if ra.Failed {
				b.congestedFail++
			}
		} else {
			b.clear++
			if ra.Failed {
				b.clearFail++
			}
		}
	}
	out := make([]DayImpact, numDays)
	for d, b := range buckets {
		di := DayImpact{Day: d, CongestedReads: b.congested, ClearReads: b.clear}
		if b.congested > 0 {
			di.PFailCongested = float64(b.congestedFail) / float64(b.congested)
		}
		if b.clear > 0 {
			di.PFailClear = float64(b.clearFail) / float64(b.clear)
		}
		if di.PFailClear > 0 && b.congested > 0 {
			di.IncreasePct = (di.PFailCongested/di.PFailClear - 1) * 100
		}
		out[d] = di
	}
	return out
}

// ConcurrencySeries counts, per utilization bin, how many of the given
// links were congested simultaneously — the correlation the paper notes
// for short congestion periods (blue circles of Figure 5).
func ConcurrencySeries(eps []Episode, binSize netsim.Time, horizon netsim.Time) []int {
	n := int(horizon / binSize)
	out := make([]int, n)
	for _, e := range eps {
		for b := int(e.Start / binSize); b < int(e.End/binSize) && b < n; b++ {
			if b >= 0 {
				out[b]++
			}
		}
	}
	return out
}

// CorrelationStats quantifies Figure 5's observation that short
// congestion periods are correlated across many links while long ones
// localize: for each episode, how many OTHER links were simultaneously
// hot at its midpoint, averaged separately over short (<=10 s) and long
// episodes.
type CorrelationStats struct {
	ShortEpisodes  int
	LongEpisodes   int
	MeanCoHotShort float64 // other hot links during short episodes
	MeanCoHotLong  float64 // other hot links during long episodes
}

// Correlate computes CorrelationStats over a detected episode set.
func Correlate(eps []Episode) CorrelationStats {
	var cs CorrelationStats
	if len(eps) == 0 {
		return cs
	}
	// Sort by start for sweep queries.
	sorted := append([]Episode(nil), eps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	coHotAt := func(t netsim.Time, self topology.LinkID) int {
		n := 0
		for _, e := range sorted {
			if e.Start > t {
				break
			}
			if e.End > t && e.Link != self {
				n++
			}
		}
		return n
	}
	var sumShort, sumLong float64
	for _, e := range eps {
		mid := e.Start + e.Duration()/2
		co := coHotAt(mid, e.Link)
		if e.Duration() <= 10*time.Second {
			cs.ShortEpisodes++
			sumShort += float64(co)
		} else {
			cs.LongEpisodes++
			sumLong += float64(co)
		}
	}
	if cs.ShortEpisodes > 0 {
		cs.MeanCoHotShort = sumShort / float64(cs.ShortEpisodes)
	}
	if cs.LongEpisodes > 0 {
		cs.MeanCoHotLong = sumLong / float64(cs.LongEpisodes)
	}
	return cs
}

// IncastAudit is the §4.4 preconditions check: the engineering decisions
// that keep incast from manifesting.
type IncastAudit struct {
	// MaxSimultaneousConnections as enforced by the scheduler (paper
	// default: 2).
	MaxSimultaneousConnections int
	// FracFlowsWithinRack / WithinVLAN: the local nature of flows that
	// isolates them from shared bottlenecks.
	FracFlowsWithinRack float64
	FracFlowsWithinVLAN float64
	// MeanConcurrentCongestedLinks: multiplexing headroom indicator.
	MeanConcurrentCongestedLinks float64
	// MaxSyncFanIn is the largest number of distinct senders whose flows
	// reached one destination within a millisecond of each other — the
	// incast trigger, bounded by connection caps and phase pacing.
	MaxSyncFanIn int
}

// SynchronizedFanIn measures the incast trigger directly: for each
// destination server, the largest number of distinct senders whose flows
// started within one window of each other. Incast needs many synchronized
// senders into one port; the connection cap and phase pacing keep this
// number small.
func SynchronizedFanIn(records []trace.FlowRecord, window netsim.Time) (maxFanIn int, histogram map[int]int) {
	type arrival struct {
		at  netsim.Time
		src topology.ServerID
	}
	byDst := make(map[topology.ServerID][]arrival)
	for _, r := range records {
		if r.Src == r.Dst {
			continue
		}
		byDst[r.Dst] = append(byDst[r.Dst], arrival{at: r.Start, src: r.Src})
	}
	histogram = make(map[int]int)
	for _, as := range byDst {
		sort.Slice(as, func(i, j int) bool { return as[i].at < as[j].at })
		lo := 0
		senders := make(map[topology.ServerID]int)
		distinct := 0
		for hi := 0; hi < len(as); hi++ {
			senders[as[hi].src]++
			if senders[as[hi].src] == 1 {
				distinct++
			}
			for as[hi].at-as[lo].at > window {
				senders[as[lo].src]--
				if senders[as[lo].src] == 0 {
					distinct--
					delete(senders, as[lo].src)
				}
				lo++
			}
			histogram[distinct]++
			if distinct > maxFanIn {
				maxFanIn = distinct
			}
		}
	}
	return maxFanIn, histogram
}

// AuditIncast computes the audit over a record set.
func AuditIncast(records []trace.FlowRecord, top *topology.Topology, eps []Episode, binSize, horizon netsim.Time, maxConns int) IncastAudit {
	a := IncastAudit{MaxSimultaneousConnections: maxConns}
	var total, rack, vlan int
	for _, r := range records {
		if top.IsExternal(r.Src) || top.IsExternal(r.Dst) {
			continue
		}
		total++
		if r.Src == r.Dst || top.SameRack(r.Src, r.Dst) {
			rack++
			vlan++
		} else if top.SameVLAN(r.Src, r.Dst) {
			vlan++
		}
	}
	if total > 0 {
		a.FracFlowsWithinRack = float64(rack) / float64(total)
		a.FracFlowsWithinVLAN = float64(vlan) / float64(total)
	}
	a.MeanConcurrentCongestedLinks = stats.MeanInt(ConcurrencySeries(eps, binSize, horizon))
	a.MaxSyncFanIn, _ = SynchronizedFanIn(records, time.Millisecond)
	return a
}
