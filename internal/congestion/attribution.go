package congestion

import (
	"sort"

	"dctraffic/internal/det"
	"dctraffic/internal/netsim"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// Attribution answers §4.2's operator question: when links run hot, which
// application activity is responsible? It joins the network log with the
// application attribution carried in flow tags — the join the paper's
// server-side instrumentation makes possible and SNMP cannot.
type Attribution struct {
	// BytesOnCongested is, per flow kind, the bytes that kind moved
	// across links during their high-utilization episodes.
	BytesOnCongested map[netsim.FlowKind]float64
	// Share is BytesOnCongested normalized to sum to 1.
	Share map[netsim.FlowKind]float64
	// TotalBytes is the denominator.
	TotalBytes float64
}

// Ranked returns the kinds by descending share.
func (a Attribution) Ranked() []netsim.FlowKind {
	kinds := make([]netsim.FlowKind, 0, len(a.Share))
	for k := range a.Share {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if a.Share[kinds[i]] != a.Share[kinds[j]] {
			return a.Share[kinds[i]] > a.Share[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	return kinds
}

// Attribute computes, for every congestion episode, which flow kinds'
// bytes were crossing the hot link during the episode, assuming each
// flow's bytes spread uniformly over its lifetime (the flow-record
// approximation used throughout). The result is the paper's finding in
// table form: reduce-phase shuffles dominate, with extract reads and
// evacuations as the unexpected contributors.
func Attribute(records []trace.FlowRecord, eps []Episode, top *topology.Topology) Attribution {
	return MergeAttribution([]Attribution{
		AttributeIndexed(records, NewEpisodeIndex(eps), top),
	})
}

// AttributeIndexed computes one shard's unnormalized attribution sums —
// per-kind bytes crossing hot links — against a prebuilt episode index.
// Share and TotalBytes are left zero; combine shards (even a single
// one) with MergeAttribution to normalize.
func AttributeIndexed(records []trace.FlowRecord, idx *EpisodeIndex, top *topology.Topology) Attribution {
	a := Attribution{BytesOnCongested: make(map[netsim.FlowKind]float64)}
	for _, r := range records {
		dur := r.End - r.Start
		if dur <= 0 || r.Bytes == 0 {
			continue
		}
		rate := float64(r.Bytes) / dur.Seconds()
		for _, l := range top.PathK(r.Src, r.Dst, uint64(r.ID)) {
			for _, e := range idx.Link(l) {
				if e.Start >= r.End {
					break
				}
				lo, hi := e.Start, e.End
				if r.Start > lo {
					lo = r.Start
				}
				if r.End < hi {
					hi = r.End
				}
				if hi <= lo {
					continue
				}
				a.BytesOnCongested[r.Tag.Kind] += rate * (hi - lo).Seconds()
			}
		}
	}
	return a
}

// MergeAttribution combines per-shard attribution sums in fixed order —
// shard order outermost, ascending flow kind within a shard — then
// normalizes. The reduction runs on one goroutine over a deterministic
// order, so the merged result is a pure function of the shard
// decomposition regardless of how the shards were computed.
func MergeAttribution(parts []Attribution) Attribution {
	out := Attribution{
		BytesOnCongested: make(map[netsim.FlowKind]float64),
		Share:            make(map[netsim.FlowKind]float64),
	}
	for _, p := range parts {
		for _, k := range det.SortedKeys(p.BytesOnCongested) {
			out.BytesOnCongested[k] += p.BytesOnCongested[k]
		}
	}
	for _, k := range det.SortedKeys(out.BytesOnCongested) {
		out.TotalBytes += out.BytesOnCongested[k]
	}
	if out.TotalBytes > 0 {
		for k, v := range out.BytesOnCongested {
			out.Share[k] = v / out.TotalBytes
		}
	}
	return out
}
