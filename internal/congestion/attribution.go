package congestion

import (
	"sort"

	"dctraffic/internal/netsim"
	"dctraffic/internal/topology"
	"dctraffic/internal/trace"
)

// Attribution answers §4.2's operator question: when links run hot, which
// application activity is responsible? It joins the network log with the
// application attribution carried in flow tags — the join the paper's
// server-side instrumentation makes possible and SNMP cannot.
type Attribution struct {
	// BytesOnCongested is, per flow kind, the bytes that kind moved
	// across links during their high-utilization episodes.
	BytesOnCongested map[netsim.FlowKind]float64
	// Share is BytesOnCongested normalized to sum to 1.
	Share map[netsim.FlowKind]float64
	// TotalBytes is the denominator.
	TotalBytes float64
}

// Ranked returns the kinds by descending share.
func (a Attribution) Ranked() []netsim.FlowKind {
	kinds := make([]netsim.FlowKind, 0, len(a.Share))
	for k := range a.Share {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if a.Share[kinds[i]] != a.Share[kinds[j]] {
			return a.Share[kinds[i]] > a.Share[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	return kinds
}

// Attribute computes, for every congestion episode, which flow kinds'
// bytes were crossing the hot link during the episode, assuming each
// flow's bytes spread uniformly over its lifetime (the flow-record
// approximation used throughout). The result is the paper's finding in
// table form: reduce-phase shuffles dominate, with extract reads and
// evacuations as the unexpected contributors.
func Attribute(records []trace.FlowRecord, eps []Episode, top *topology.Topology) Attribution {
	byLink := make(map[topology.LinkID][]Episode)
	for _, e := range eps {
		byLink[e.Link] = append(byLink[e.Link], e)
	}
	for l := range byLink {
		es := byLink[l]
		sort.Slice(es, func(i, j int) bool { return es[i].Start < es[j].Start })
	}
	a := Attribution{
		BytesOnCongested: make(map[netsim.FlowKind]float64),
		Share:            make(map[netsim.FlowKind]float64),
	}
	for _, r := range records {
		dur := r.End - r.Start
		if dur <= 0 || r.Bytes == 0 {
			continue
		}
		rate := float64(r.Bytes) / dur.Seconds()
		for _, l := range top.PathK(r.Src, r.Dst, uint64(r.ID)) {
			for _, e := range byLink[l] {
				if e.Start >= r.End {
					break
				}
				lo, hi := e.Start, e.End
				if r.Start > lo {
					lo = r.Start
				}
				if r.End < hi {
					hi = r.End
				}
				if hi <= lo {
					continue
				}
				b := rate * (hi - lo).Seconds()
				a.BytesOnCongested[r.Tag.Kind] += b
				a.TotalBytes += b
			}
		}
	}
	if a.TotalBytes > 0 {
		for k, v := range a.BytesOnCongested {
			a.Share[k] = v / a.TotalBytes
		}
	}
	return a
}
