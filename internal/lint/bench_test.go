package lint_test

import (
	"testing"

	"dctraffic/internal/lint"
)

// BenchmarkRunPackage times the analyzer suite — including the CFG,
// capture, and goroutine-context dataflow layers — over the whole
// module, with loading and type-checking hoisted out of the loop. This
// is the analysis cost `make lint` adds on top of `go list` + type
// checking; the dataflow layers are expected to keep it within ~2x of
// the pre-dataflow suite.
func BenchmarkRunPackage(b *testing.B) {
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		b.Fatal(err)
	}
	analyzers := lint.Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkg := range pkgs {
			diags, err := lint.RunPackage(pkg, analyzers)
			if err != nil {
				b.Fatal(err)
			}
			if len(diags) != 0 {
				b.Fatalf("repo must be lint-clean during the bench, got %v", diags)
			}
		}
	}
}
