package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// GlobalRand forbids the process-global math/rand source. Top-level
// draws (rand.IntN, rand.Float64, rand.Shuffle, ...) share one stream
// across the whole process — auto-seeded since Go 1.20 — so any use
// makes results irreproducible and couples independent components
// through a hidden channel. All randomness must flow through an
// injected deterministic stream: internal/stats.RNG (or an explicit
// *rand.Rand built with rand.New + a seeded source, which is why the
// constructors New, NewSource, NewPCG, NewChaCha8, and NewZipf stay
// allowed).
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "top-level math/rand call draws from the shared auto-seeded source; inject a *stats.RNG instead",
	Run:  runGlobalRand,
}

// globalRandAllowed are the math/rand package-level functions that do
// not touch the global source.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func runGlobalRand(pass *Pass) error {
	// Flag every use — calls, and also references like passing
	// rand.Float64 as a value, which smuggle the global stream just as
	// effectively. Uses is a map; order the report sites before
	// emitting so output stays deterministic.
	type site struct {
		id *ast.Ident
		fn *types.Func
	}
	var sites []site
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods on an explicit *rand.Rand are the fix, not the bug
		}
		if globalRandAllowed[fn.Name()] {
			continue
		}
		sites = append(sites, site{id, fn})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].id.Pos() < sites[j].id.Pos() })
	for _, s := range sites {
		pass.Reportf(s.id.Pos(), "%s.%s uses the process-global rand source: draw from an injected *stats.RNG (or a seeded *rand.Rand) instead", s.fn.Pkg().Name(), s.fn.Name())
	}
	return nil
}
