package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTime forbids reading or waiting on the wall clock inside the
// simulation packages. The simulator is a discrete-event machine: all
// timing flows from netsim.Time advanced by the event loop, so a run is
// a pure function of its seed. A single time.Now or time.Sleep couples
// results to the host machine and destroys reproducibility. Wall-clock
// use is fine in cmd/ (progress reporting) and in _test.go files
// (which this analyzer skips).
//
// internal/obs is exempted by design: it is the observability layer,
// whose whole job is relating simulated progress to the host clock
// (phase timers, heap samples, events/sec). The exemption is safe
// because obs is write-only from the simulation's perspective — no
// simulated-time path ever reads a metric back — and that contract is
// regression-tested (internal/core's observer-on/off digest test).
// Every other internal/ package stays clock-free.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "wall-clock call in a simulation package; use simulated time",
	AppliesTo: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "internal/") && !strings.Contains(pkgPath, "internal/obs")
	},
	Run: runWallTime,
}

// wallClockFuncs are the package time functions that observe or wait on
// the host clock. Durations and constants (time.Second, time.Duration
// arithmetic) stay allowed: they are just numbers.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallTime(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.ObjectOf(id).(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock time.%s in simulation package %s: results must be a pure function of the seed; use simulated netsim.Time", sel.Sel.Name, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
