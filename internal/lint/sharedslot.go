package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedSlot enforces rule 2 of the parallel determinism contract
// (internal/core/parallel.go): goroutine-reachable code may write
// captured state only through a disjoint, pre-sized slot derived from
// the task's own span/index parameters. It flags
//
//   - plain writes to a captured scalar, field, or dereferenced pointer
//     reachable from more than one context instance;
//   - slot writes whose index is not task-derived (a constant or a
//     variable shared across instances aliases one element);
//   - appends to a captured slice (the shared header races and the
//     element order follows the scheduler);
//   - writes to a captured map (concurrent map writes, never a slot);
//   - `p := &captured[k]` aliases with a non-task-derived index, the
//     pointer-laundered form of the same bug.
//
// Mutex-guarded writes are deliberately left to mergeorder: the lock
// makes them race-free but still scheduler-ordered, which is a merge
// discipline finding, not a slot finding.
var SharedSlot = &Analyzer{
	Name: "sharedslot",
	Doc:  "goroutine-reachable write without a task-owned slot: shared scalar, aliased slot index, append to or map write on captured state",
	Run:  runSharedSlot,
}

type slotWrite struct {
	ctx   *goContext
	root  types.Object
	steps []writeStep
	pos   token.Pos
	expr  string
	app   bool // self-append: s = append(s, ...)
}

func runSharedSlot(pass *Pass) error {
	idx := goroutineContexts(pass)
	var writes []slotWrite
	for _, c := range idx.ctxs {
		c := c
		held := mutexHeldAt(pass, c.body())
		idx.walkBody(c, func(n ast.Node, stack []ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if as.Tok == token.DEFINE {
				checkSlotAlias(pass, c, as)
				return true
			}
			if as.Tok != token.ASSIGN {
				return true // op-assign reductions belong to mergeorder/floatsum
			}
			if len(heldCaptured(c, held, stack)) > 0 {
				return true // mutex-guarded: mergeorder's territory
			}
			for i, lhs := range as.Lhs {
				root, steps := lvalueSteps(pass, c, lhs)
				if root == nil || c.owns(root) {
					continue
				}
				writes = append(writes, slotWrite{
					ctx: c, root: root, steps: steps, pos: lhs.Pos(),
					expr: exprString(lhs), app: isSelfAppend(pass, as, i, root),
				})
			}
			return true
		})
	}

	// A write is a violation when the context itself runs many instances
	// over the same path (no task-derived index step), or when two
	// different contexts write paths that may overlap.
	byRoot := make(map[types.Object][]int)
	for i, w := range writes {
		byRoot[w.root] = append(byRoot[w.root], i)
	}
	for _, w := range writes {
		switch {
		case w.ctx.multi && !w.ctx.fresh(w.root) && !hasStep(w.steps, stepIndexTask):
			pass.Reportf(w.pos, "%s", selfCollisionMsg(w))
		case crossCollision(w, writes, byRoot[w.root]):
			pass.Reportf(w.pos, "captured %s is written by more than one goroutine context: give each context its own pre-sized slot and merge in fixed order on one goroutine", w.expr)
		}
	}
	return nil
}

// crossCollision reports whether another context writes a path on the
// same root that may overlap with w's.
func crossCollision(w slotWrite, writes []slotWrite, peers []int) bool {
	for _, i := range peers {
		o := writes[i]
		if o.ctx != w.ctx && stepsMayOverlap(w.steps, o.steps) {
			return true
		}
	}
	return false
}

func selfCollisionMsg(w slotWrite) string {
	switch {
	case w.app:
		return "append to captured " + w.root.Name() + " inside a " + w.ctx.kind +
			": the shared slice header races and element order follows the scheduler; pre-size the slice and write disjoint slots"
	case hasStep(w.steps, stepIndexMap):
		return "write to captured map " + w.root.Name() + " inside a " + w.ctx.kind +
			": concurrent map writes are unsafe; write per-task slots and merge on one goroutine"
	case hasIndexStep(w.steps):
		return "aliased slot index: every instance of this " + w.ctx.kind + " writes " + w.expr +
			"; derive the index from the task's own span/index parameters"
	default:
		return "captured " + w.expr + " is written by every instance of this " + w.ctx.kind +
			": tasks must own disjoint pre-sized slots, indexed by the task's span/index"
	}
}

// isSelfAppend reports whether the i-th assignment pair is
// `root... = append(root..., ...)`.
func isSelfAppend(pass *Pass, as *ast.AssignStmt, i int, root types.Object) bool {
	if len(as.Rhs) != len(as.Lhs) {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	return baseObject(pass.Info, call.Args[0]) == root
}

// checkSlotAlias flags `p := &captured[k]` inside a multi-instance
// context when k is not task-derived: every instance receives a pointer
// to the same element, and writes through p collide no matter how local
// they look.
func checkSlotAlias(pass *Pass, c *goContext, as *ast.AssignStmt) {
	if !c.multi {
		return
	}
	for _, rhs := range as.Rhs {
		u, ok := ast.Unparen(rhs).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		ie, ok := ast.Unparen(u.X).(*ast.IndexExpr)
		if !ok {
			continue
		}
		root, steps := lvalueSteps(pass, c, ie)
		if root == nil || c.fresh(root) || hasStep(steps, stepIndexTask) {
			continue
		}
		pass.Reportf(rhs.Pos(), "aliased pointer into captured %s: every instance of this %s holds the same element; derive the index from the task's own span/index parameters", root.Name(), c.kind)
	}
}
