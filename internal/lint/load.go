package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked unit of source: a package's compiled files
// plus its in-package test files, or an external test package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// Load enumerates the packages matching patterns (via `go list` run in
// dir) and type-checks each from source. In-package test files are
// checked together with the package's compiled files; external _test
// packages become their own *Package with an ImportPath suffixed
// "_test".
//
// Imports — both standard-library and module-internal — are resolved by
// type-checking their sources on demand through go/importer's "source"
// importer, so no compiled export data is needed. That importer consults
// the process-global build context, whose working directory must sit
// inside the module for module-path imports to resolve; Load points it
// at dir for the duration of the call.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// The "source" importer resolves import paths through the global
	// build context; importGo-based module resolution runs `go list`
	// from build.Default.Dir, which defaults to the process cwd.
	savedDir := build.Default.Dir
	build.Default.Dir = dir
	defer func() { build.Default.Dir = savedDir }()

	fset := token.NewFileSet()
	// One importer for every package: it caches each import, so the
	// standard library and shared internal packages are checked once.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		units := []struct {
			path  string
			files []string
		}{
			{lp.ImportPath, concat(lp.GoFiles, lp.CgoFiles, lp.TestGoFiles)},
			{lp.ImportPath + "_test", lp.XTestGoFiles},
		}
		for _, u := range units {
			if len(u.files) == 0 {
				continue
			}
			pkg, err := check(fset, imp, u.path, lp.Dir, u.files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

func check(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

func concat(slices ...[]string) []string {
	var out []string
	for _, s := range slices {
		out = append(out, s...)
	}
	return out
}
