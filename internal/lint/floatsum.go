package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSum flags floating-point reductions whose accumulation order is
// scheduler-dependent:
//
//   - a += / -= / *= / /= (or ++/--) on a float variable captured from
//     outside a goroutine context: even when a mutex makes the update
//     race-free, the *order* of the additions follows the scheduler,
//     and float addition does not commute in rounding. Contexts come
//     from the goroutine tracker (goctx.go), so worker-pool task
//     closures fed to runTasks count, not just `go func(){...}` bodies;
//   - accumulation into a slot whose index is not task-derived
//     (partial[0] += v from every instance is one shared accumulator
//     wearing slot syntax);
//   - float accumulation inside `for range ch` over a channel of
//     floats: with more than one sender the receive order, and so the
//     sum, is scheduler-dependent.
//
// The deterministic pattern is per-task slots combined in a fixed order
// after the goroutines join.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc:  "floating-point reduction in scheduler-dependent order (goroutine-shared accumulator, aliased slot, or channel-fed sum)",
	Run:  runFloatSum,
}

func runFloatSum(pass *Pass) error {
	idx := goroutineContexts(pass)
	for _, c := range idx.ctxs {
		checkFloatAccum(pass, idx, c)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok {
				checkChannelReduce(pass, rs)
			}
			return true
		})
	}
	return nil
}

// checkFloatAccum reports float accumulation into state captured from
// outside one goroutine context.
func checkFloatAccum(pass *Pass, idx *goCtxIndex, c *goContext) {
	idx.walkBody(c, func(n ast.Node, stack []ast.Node) bool {
		var target ast.Expr
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				target = s.Lhs[0]
			}
		case *ast.IncDecStmt:
			target = s.X
		}
		if target == nil || !isFloat(pass.Info.TypeOf(target)) {
			return true
		}
		root, steps := lvalueSteps(pass, c, target)
		if root == nil || c.fresh(root) || hasStep(steps, stepIndexTask) {
			return true
		}
		if hasIndexStep(steps) {
			// A slot write with a non-task-derived index. One instance
			// owning one fixed slot is the recommended pattern; many
			// instances on the same slot is a shared accumulator in
			// disguise.
			if c.multi {
				pass.Reportf(n.Pos(), "floating-point accumulation into aliased slot %s: every instance of this %s adds to the same element in scheduler order; derive the index from the task's own span/index parameters", exprString(target), c.kind)
			}
			return true
		}
		pass.Reportf(n.Pos(), "floating-point accumulation into captured %s inside a goroutine: reduction order follows the scheduler; keep per-goroutine partials and combine them in a fixed order", root.Name())
		return true
	})
}

// checkChannelReduce reports float accumulation driven by receives from
// a float channel.
func checkChannelReduce(pass *Pass, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || !isFloat(ch.Elem()) {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		if !isFloat(pass.Info.TypeOf(as.Lhs[0])) {
			return true
		}
		pass.Reportf(as.Pos(), "floating-point reduction over channel %s: receive order is scheduler-dependent with concurrent senders; collect values and sum in a fixed order", exprString(rs.X))
		return true
	})
}
