package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSum flags floating-point reductions whose accumulation order is
// scheduler-dependent:
//
//   - a += / -= / *= / /= (or ++/--) on a float variable captured from
//     outside a goroutine body: even when a mutex makes the update
//     race-free, the *order* of the additions follows the scheduler,
//     and float addition does not commute in rounding;
//   - float accumulation inside `for range ch` over a channel of
//     floats: with more than one sender the receive order, and so the
//     sum, is scheduler-dependent.
//
// The deterministic pattern is per-worker partial sums combined in a
// fixed order after the goroutines join.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc:  "floating-point reduction in scheduler-dependent order (goroutine-shared accumulator or channel-fed sum)",
	Run:  runFloatSum,
}

func runFloatSum(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineBody(pass, lit)
				}
			case *ast.RangeStmt:
				checkChannelReduce(pass, s)
			}
			return true
		})
	}
	return nil
}

// checkGoroutineBody reports float accumulation into variables captured
// from outside the goroutine's function literal.
func checkGoroutineBody(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var target ast.Expr
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				target = s.Lhs[0]
			}
		case *ast.IncDecStmt:
			target = s.X
		case *ast.FuncLit:
			// A nested literal has its own capture boundary for locals,
			// but anything outside *this* literal is still shared, so
			// keep descending: declaredWithin uses lit's range.
			return true
		}
		if target == nil || !isFloat(pass.Info.TypeOf(target)) {
			return true
		}
		// Indexed targets (partial[i] += v, slots[i].sum += v) are the
		// per-goroutine-slot fix this analyzer recommends: each goroutine
		// owns its slot and the slots are combined in a fixed order after
		// the join. Peel field selectors so slot structs count too.
		if hasIndexedBase(target) {
			return true
		}
		obj := baseObject(pass.Info, target)
		if obj == nil || declaredWithin(obj, lit) {
			return true
		}
		pass.Reportf(n.Pos(), "floating-point accumulation into captured %s inside a goroutine: reduction order follows the scheduler; keep per-goroutine partials and combine them in a fixed order", obj.Name())
		return true
	})
}

// hasIndexedBase reports whether e is an index expression, possibly
// behind field selectors and parens: partial[i], slots[i].sum,
// (slots[i]).stats.total. Dereferences (*p)[i] do not count — the
// pointer may alias a single shared slot.
func hasIndexedBase(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// checkChannelReduce reports float accumulation driven by receives from
// a float channel.
func checkChannelReduce(pass *Pass, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || !isFloat(ch.Elem()) {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		if !isFloat(pass.Info.TypeOf(as.Lhs[0])) {
			return true
		}
		pass.Reportf(as.Pos(), "floating-point reduction over channel %s: receive order is scheduler-dependent with concurrent senders; collect values and sum in a fixed order", exprString(rs.X))
		return true
	})
}
