package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `for range` loops over maps whose bodies feed an
// order-sensitive sink. Go randomizes map iteration order per run, so
// anything order-sensitive reached from such a loop makes the simulation
// a function of the seed *and* the map hash — breaking bit-for-bit
// reproducibility. The sinks recognized:
//
//   - a draw from a deterministic RNG stream (*stats.RNG, *rand.Rand)
//     created outside the loop: the draw sequence then depends on map
//     order;
//   - floating-point accumulation (+=, -=, *=, /=, ++, --) into a
//     variable that outlives the loop: float addition does not commute
//     in rounding, so the sum's low bits depend on visit order;
//   - event-queue or allocator mutation (methods named Schedule, After,
//     Push, Enqueue on a receiver declared outside the loop): events
//     scheduled for the same instant fire in insertion order;
//   - appends to a slice that outlives the loop and is not sorted
//     afterwards in the same function: the slice's order leaks map
//     order to every downstream consumer.
//
// The fix is almost always the same: materialize the keys, sort them
// (see internal/det.SortedKeys), and range over the sorted slice.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "map iteration feeding an order-sensitive sink (RNG draws, float accumulation, event scheduling, unsorted appends)",
	Run:  runMapIter,
}

// queueMethods are method names treated as event-queue/allocator
// mutation sinks when invoked on a receiver declared outside the loop.
var queueMethods = map[string]bool{
	"Schedule": true,
	"After":    true,
	"Push":     true,
	"Enqueue":  true,
}

func runMapIter(pass *Pass) error {
	// A sink nested under two map ranges must be reported once.
	reported := make(map[token.Pos]bool)
	for _, file := range pass.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass.Info, rs) {
				return true
			}
			checkMapRange(pass, rs, enclosingFunc(stack), reported)
			return true
		})
	}
	return nil
}

func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, fn ast.Node, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, fn, s, report)
		case *ast.IncDecStmt:
			if isFloat(pass.Info.TypeOf(s.X)) && outlivesLoop(pass.Info, s.X, rs) {
				report(s.Pos(), "floating-point accumulation into %s inside map iteration: sum depends on map order; iterate sorted keys", exprString(s.X))
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, rs, s, report)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, fn ast.Node, as *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if isFloat(pass.Info.TypeOf(lhs)) && outlivesLoop(pass.Info, lhs, rs) {
			report(as.Pos(), "floating-point accumulation into %s inside map iteration: sum depends on map order; iterate sorted keys", exprString(lhs))
		}
	case token.ASSIGN:
		// x = append(x, ...) growing a slice that outlives the loop.
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.Info, call) {
			return
		}
		obj := baseObject(pass.Info, as.Lhs[0])
		if obj == nil || declaredWithin(obj, rs) {
			return
		}
		if sortedAfter(pass.Info, fn, rs, obj) {
			return
		}
		report(as.Pos(), "append to %s inside map iteration leaks map order to its consumers: sort the slice afterwards or iterate sorted keys", obj.Name())
	}
}

func checkMapRangeCall(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	name, recv := methodCall(pass.Info, call)
	if recv == nil {
		return
	}
	// Draws from a stream created outside the loop consume randomness
	// in map order; a per-key stream (forked inside the loop) is fine.
	if isRNGType(pass.Info.TypeOf(recv)) && outlivesLoop(pass.Info, recv, rs) {
		report(call.Pos(), "RNG draw %s.%s inside map iteration: the draw sequence depends on map order; iterate sorted keys or fork a per-key stream", exprString(recv), name)
		return
	}
	if queueMethods[name] && outlivesLoop(pass.Info, recv, rs) {
		report(call.Pos(), "%s.%s inside map iteration mutates an order-sensitive structure: same-instant events fire in insertion order; iterate sorted keys", exprString(recv), name)
	}
}

// outlivesLoop reports whether e's root variable is declared outside the
// whole range statement (including its key/value vars). Accumulation
// into such a variable survives iterations, so visit order matters.
// Unresolvable roots (function-call results) are treated as loop-local.
func outlivesLoop(info *types.Info, e ast.Expr, rs *ast.RangeStmt) bool {
	obj := baseObject(info, e)
	return obj != nil && !declaredWithin(obj, rs)
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, in the statements of fn after the range
// loop, obj is passed to a sorting call (sort.*, slices.*, or any
// callee whose name contains "Sort"). When it is, the map-order append
// is laundered before anyone can observe it.
func sortedAfter(info *types.Info, fn ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		if !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if strings.Contains(fun.Sel.Name, "Sort") {
			return true
		}
		if pn, ok := info.ObjectOf(selRootIdent(fun)).(*types.PkgName); ok {
			p := pn.Imported().Path()
			return p == "sort" || p == "slices"
		}
	case *ast.Ident:
		return strings.Contains(fun.Name, "Sort")
	}
	return false
}

func selRootIdent(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id
	}
	return sel.Sel
}

func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders a short lvalue/receiver for diagnostics; it only
// needs to handle the shapes baseObject accepts.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		switch i := x.Index.(type) {
		case *ast.Ident:
			return exprString(x.X) + "[" + i.Name + "]"
		case *ast.BasicLit:
			return exprString(x.X) + "[" + i.Value + "]"
		}
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "expression"
}
