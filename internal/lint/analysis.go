// Package lint is dctlint's analysis framework: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface that this
// repo's determinism analyzers are written against.
//
// The paper's measurements are reproducible only because a simulation run
// is a pure function of its seed: the same configuration must produce a
// byte-identical trace on every run, on every machine, at every
// GOMAXPROCS. The analyzers in this package mechanically enforce the
// invariants that keep that true: per-statement checks (mapiter,
// walltime, globalrand) and dataflow-aware checks of the three-rule
// parallel contract (floatsum, sharedslot, mergeorder, rngshare) built
// on the goroutine-context tracker in goctx.go and the must-hold lock
// analysis in cfg.go. See DESIGN.md, "Determinism".
//
// The framework mirrors go/analysis deliberately — Analyzer has the same
// Name/Doc/Run shape, Pass carries the same per-package state — so that
// if golang.org/x/tools ever becomes an acceptable dependency the
// analyzers port over with trivial edits. We do not import x/tools
// because the repo is intentionally stdlib-only.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one determinism check. It is the unit the driver and
// the test harness operate on.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dctlint:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// AppliesTo optionally restricts which package import paths the
	// driver runs this analyzer on. A nil AppliesTo means every package.
	// The test harness ignores this field and always runs the analyzer.
	AppliesTo func(pkgPath string) bool

	// Run performs the check and reports findings through the Pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(token.Pos, string)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzers returns the full dctlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapIter, WallTime, GlobalRand, FloatSum, SharedSlot, MergeOrder, RNGShare}
}
