// Test corpus for the globalrand analyzer: package-level math/rand
// draws (v1 and v2) are flagged; explicitly seeded streams are the fix
// and stay clean.
package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func draws() int {
	n := rand.Intn(10)                 // want "rand.Intn uses the process-global rand source"
	f := rand.Float64()                // want "rand.Float64 uses the process-global rand source"
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle uses the process-global rand source"
	g := randv2.IntN(10)               // want "rand.IntN uses the process-global rand source"
	return n + g + int(f)
}

func passedAsValue() func() float64 {
	return rand.Float64 // want "rand.Float64 uses the process-global rand source"
}

func seededOK(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func seededV2OK(a, b uint64) float64 {
	r := randv2.New(randv2.NewPCG(a, b))
	return r.Float64()
}

func suppressedOK() int {
	//dctlint:ignore globalrand demo shim outside any simulation path
	return rand.Int()
}
