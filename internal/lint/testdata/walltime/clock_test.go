package walltime

import "time"

// _test.go files measure real runtime (benchmarks, timeouts); the
// analyzer skips them entirely.
func helperUsesWallClock() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}
