// Test corpus for the walltime analyzer: observing or waiting on the
// host clock is flagged; pure time.Duration arithmetic is not.
package walltime

import "time"

const tick = 10 * time.Millisecond // durations are just numbers: not flagged

func now() int64 {
	return time.Now().UnixNano() // want "wall-clock time.Now"
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock time.Since"
}

func wait() {
	time.Sleep(tick) // want "wall-clock time.Sleep"
}

func timer() {
	t := time.NewTimer(tick) // want "wall-clock time.NewTimer"
	<-t.C
}

func poll() <-chan time.Time {
	return time.After(tick) // want "wall-clock time.After"
}

func durationMathOK(d time.Duration) float64 {
	return d.Seconds() * 2
}

func suppressedOK() int64 {
	//dctlint:ignore walltime log prefix only, never fed back into the simulation
	return time.Now().Unix()
}
