// Test corpus for the floatsum analyzer: scheduler-ordered float
// reductions are flagged; per-goroutine partials combined in a fixed
// order are the fix and stay clean.
package floatsum

import "sync"

func sharedAccumulator(parts [][]float64) float64 {
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		total float64
	)
	for _, p := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range p {
				mu.Lock()
				total += v // want "floating-point accumulation into captured total"
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return total
}

func countAccumulatorOK(parts [][]float64) int {
	var (
		mu sync.Mutex
		wg sync.WaitGroup
		n  int
	)
	for _, p := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			n += len(p) // integer addition commutes exactly: not flagged
			mu.Unlock()
		}()
	}
	wg.Wait()
	return n
}

func partialSumsOK(parts [][]float64) float64 {
	partial := make([]float64, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range p {
				partial[i] += v // per-goroutine slot, combined in fixed order below
			}
		}()
	}
	wg.Wait()
	total := 0.0
	for _, v := range partial {
		total += v
	}
	return total
}

// shardStats mirrors the analysis pipeline's per-shard slot structs:
// each worker owns one element and writes only through its own index.
type shardStats struct {
	sum   float64
	count int
}

func shardSlotsOK(parts [][]float64) float64 {
	slots := make([]shardStats, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range p {
				slots[i].sum += v // owned slot behind a field selector: not flagged
				slots[i].count++
			}
		}()
	}
	wg.Wait()
	// Single-goroutine merge in fixed shard order: bit-identical at any
	// worker count.
	total := 0.0
	for _, s := range slots {
		total += s.sum
	}
	return total
}

type runningTotals struct {
	bytes float64
}

func mutexMergeNotOK(parts [][]float64) float64 {
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		res runningTotals
	)
	for _, p := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := 0.0
			for _, v := range p {
				sub += v
			}
			mu.Lock()
			res.bytes += sub // want "floating-point accumulation into captured res"
			mu.Unlock()
		}()
	}
	wg.Wait()
	return res.bytes
}

func goroutineLocalOK(ps []float64, out chan<- float64) {
	go func() {
		sum := 0.0 // declared inside the goroutine: not shared
		for _, v := range ps {
			sum += v
		}
		out <- sum
	}()
}

func channelReduce(ch chan float64) float64 {
	total := 0.0
	for v := range ch {
		total += v // want "floating-point reduction over channel ch"
	}
	return total
}

func channelCollectOK(ch chan float64) []float64 {
	var out []float64
	for v := range ch {
		out = append(out, v) // collected, to be sorted/summed in fixed order by the caller
	}
	return out
}

// simDomain mirrors netsim's per-rack event domains: a worker owns a
// contiguous range of domains and writes only their per-window slots,
// which the coordinator folds in domain order after the barrier.
type simDomain struct {
	clock        int64
	bytesPartial float64
}

func domainSlotsOK(doms []simDomain, parts [][]float64) float64 {
	var wg sync.WaitGroup
	for i := range doms {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range parts[i] {
				doms[i].bytesPartial += v // owned domain slot behind a field selector: not flagged
			}
		}()
	}
	wg.Wait()
	// Fixed-order merge at the window barrier: bit-identical at any
	// worker count.
	total := 0.0
	for i := range doms {
		total += doms[i].bytesPartial
	}
	return total
}

// netTotals stands in for the simulator state a worker must NOT merge
// into on its own: the fold below runs on whichever worker finishes its
// span first, so the sum's rounding follows the scheduler.
type netTotals struct {
	totalBytes float64
}

func domainBarrierMergeNotOK(doms []simDomain, nt *netTotals) {
	var wg sync.WaitGroup
	for i := range doms {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nt.totalBytes += doms[i].bytesPartial // want "floating-point accumulation into captured nt"
		}()
	}
	wg.Wait()
}

func suppressedOK(ch chan float64) float64 {
	total := 0.0
	for v := range ch {
		//dctlint:ignore floatsum single producer feeds this channel in a deterministic order
		total += v
	}
	return total
}

// aliasedSlotNotOK regresses a former false negative: slot syntax used
// to be accepted wholesale, but a non-task-derived index means every
// goroutine adds to the same element in scheduler order.
func aliasedSlotNotOK(parts [][]float64) float64 {
	partial := make([]float64, len(parts))
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range p {
				partial[0] += v // want "floating-point accumulation into aliased slot partial\[0\]"
			}
		}()
	}
	wg.Wait()
	return partial[0]
}

// singleWriterFixedSlotOK: one goroutine owning one fixed slot is the
// recommended pattern, constant index and all.
func singleWriterFixedSlotOK(ps []float64) float64 {
	partial := make([]float64, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, v := range ps {
			partial[0] += v // single instance: this slot has exactly one writer
		}
	}()
	wg.Wait()
	return partial[0]
}

// Pool plumbing for the task-closure cases below, mirroring
// internal/core/parallel.go's runTasks.
type task struct {
	name string
	fn   func()
}

func runTasks(workers int, tasks []task) {
	var wg sync.WaitGroup
	claimed := make(chan int, len(tasks))
	for i := range tasks {
		claimed <- i
	}
	close(claimed)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range claimed {
				tasks[i].fn()
			}
		}()
	}
	wg.Wait()
}

// taskClosureSumNotOK regresses the second former false negative: the
// old analyzer only looked inside `go func(){...}` literals, so a
// shared accumulator inside a pool-fed task closure slipped through.
func taskClosureSumNotOK(parts [][]float64) float64 {
	total := 0.0
	var tasks []task
	for _, p := range parts {
		p := p
		tasks = append(tasks, task{"sum", func() {
			for _, v := range p {
				total += v // want "floating-point accumulation into captured total"
			}
		}})
	}
	runTasks(4, tasks)
	return total
}

// taskClosureSlotsOK: per-task slots written through the task's own
// index stay clean under the same tracking.
func taskClosureSlotsOK(parts [][]float64) float64 {
	partial := make([]float64, len(parts))
	var tasks []task
	for j, p := range parts {
		j, p := j, p
		tasks = append(tasks, task{"slot", func() {
			for _, v := range p {
				partial[j] += v
			}
		}})
	}
	runTasks(4, tasks)
	total := 0.0
	for _, v := range partial {
		total += v
	}
	return total
}
