// Testdata for the rngshare analyzer: one pseudo-random stream must
// never feed more than one goroutine instance. The clean shapes fork a
// stream per task on the coordinator and hand each context its own —
// the netsim/workload per-domain pattern.
package rngshare

import (
	"math/rand"
	"sync"
)

// capturedStreamNotOK draws one captured stream from every goroutine.
func capturedStreamNotOK(n int) []float64 {
	r := rand.New(rand.NewSource(1))
	out := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = r.Float64() // want "RNG r is shared across goroutine instances"
		}()
	}
	wg.Wait()
	return out
}

// perTaskStreamOK is the canonical fix: fork per-task streams on the
// coordinator, pick by the task's own index.
func perTaskStreamOK(n int) []float64 {
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(int64(i)))
	}
	out := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = rngs[i].Float64()
		}()
	}
	wg.Wait()
	return out
}

// aliasedStreamSlotNotOK wears slot syntax but every instance picks the
// same element of the pool.
func aliasedStreamSlotNotOK(n int) []float64 {
	rngs := []*rand.Rand{rand.New(rand.NewSource(1))}
	out := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = rngs[0].Float64() // want "RNG rngs\[0\] is shared across goroutine instances"
		}()
	}
	wg.Wait()
	return out
}

// singleConsumerOK hands the whole stream to exactly one goroutine: one
// reader, program-order draws.
func singleConsumerOK(done chan<- float64) {
	r := rand.New(rand.NewSource(1))
	go func() {
		done <- r.Float64()
	}()
}

type worker struct {
	rng *rand.Rand
	out []float64
}

func (w *worker) run(wg *sync.WaitGroup, lo, hi int) {
	defer wg.Done()
	for i := lo; i < hi; i++ {
		w.out[i] = w.rng.Float64() // want "RNG w.rng is shared across goroutine instances"
	}
}

// sharedReceiverNotOK launches a method pool on one worker value: the
// receiver's single stream feeds every goroutine.
func sharedReceiverNotOK(n int) []float64 {
	w := &worker{rng: rand.New(rand.NewSource(1)), out: make([]float64, 4*n)}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go w.run(&wg, g*n, (g+1)*n) // want "goroutine-launched method shares receiver w whose field rng is an RNG"
	}
	wg.Wait()
	return w.out
}

type domainWorker struct {
	rngs []*rand.Rand
	out  []float64
}

func (d *domainWorker) run(wg *sync.WaitGroup, w, n int) {
	defer wg.Done()
	rng := d.rngs[w]
	for i := 0; i < n; i++ {
		d.out[w*n+i] = rng.Float64()
	}
}

// forkedReceiverOK is the per-domain pattern: the pool of streams lives
// on the receiver, each launch picks its own by parameter.
func forkedReceiverOK(n int) []float64 {
	d := &domainWorker{out: make([]float64, 4*n)}
	for g := 0; g < 4; g++ {
		d.rngs = append(d.rngs, rand.New(rand.NewSource(int64(g))))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go d.run(&wg, g, n)
	}
	wg.Wait()
	return d.out
}

// channelShareNotOK sends one stream to every consumer.
func channelShareNotOK(consumers int) chan *rand.Rand {
	r := rand.New(rand.NewSource(1))
	ch := make(chan *rand.Rand, consumers)
	for i := 0; i < consumers; i++ {
		ch <- r // want "the same RNG r is sent on a channel inside a loop"
	}
	close(ch)
	return ch
}

// channelForkOK sends a freshly seeded stream per consumer.
func channelForkOK(consumers int) chan *rand.Rand {
	ch := make(chan *rand.Rand, consumers)
	for i := 0; i < consumers; i++ {
		ch <- rand.New(rand.NewSource(int64(i)))
	}
	close(ch)
	return ch
}
