// Testdata for the sharedslot analyzer: writes inside
// goroutine-reachable code must land in disjoint, task-derived slots.
// The pool below mirrors internal/core/parallel.go's runTasks so the
// task-closure tracking (closures appended to a slice later handed to
// the pool) is exercised, not just direct go statements.
package sharedslot

import (
	"sync"
	"sync/atomic"
)

type task struct {
	name string
	fn   func()
}

// runTasks mirrors the analysis pipeline's worker pool: workers claim
// task indices atomically and run the closures on their own goroutines.
func runTasks(workers int, tasks []task) {
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tasks[i].fn()
			}
		}()
	}
	wg.Wait()
}

// slotPerTaskOK is rule 2 done right: disjoint pre-sized slots indexed
// by the task's own per-iteration index.
func slotPerTaskOK(items []int) []int {
	slots := make([]int, len(items))
	var tasks []task
	for j, it := range items {
		j, it := j, it
		tasks = append(tasks, task{"slot", func() {
			slots[j] = it * 2
		}})
	}
	runTasks(4, tasks)
	return slots
}

// sharedScalarNotOK writes one captured scalar from every task.
func sharedScalarNotOK(items []int) int {
	total := 0
	var tasks []task
	for _, it := range items {
		it := it
		tasks = append(tasks, task{"sum", func() {
			total = total + it // want "captured total is written by every instance of this task closure"
		}})
	}
	runTasks(4, tasks)
	return total
}

// aliasedIndexNotOK wears slot syntax but the index is captured from
// outside the loop, so every task writes the same element.
func aliasedIndexNotOK(items []int) []int {
	slots := make([]int, 4)
	k := 0
	var tasks []task
	for range items {
		tasks = append(tasks, task{"alias", func() {
			slots[k] = 1 // want "aliased slot index: every instance of this task closure writes slots\[k\]"
		}})
	}
	runTasks(4, tasks)
	return slots
}

// constIndexNotOK: a constant index is the same aliasing bug.
func constIndexNotOK(items []int) []int {
	slots := make([]int, 4)
	var tasks []task
	for range items {
		tasks = append(tasks, task{"const", func() {
			slots[0] = 1 // want "aliased slot index: every instance of this task closure writes slots\[0\]"
		}})
	}
	runTasks(4, tasks)
	return slots
}

// appendNotOK races the shared slice header and scheduler-orders the
// elements.
func appendNotOK(items []int) []int {
	var out []int
	var tasks []task
	for _, it := range items {
		it := it
		tasks = append(tasks, task{"append", func() {
			out = append(out, it) // want "append to captured out inside a task closure"
		}})
	}
	runTasks(4, tasks)
	return out
}

// mapWriteNotOK: a captured map is never a slot.
func mapWriteNotOK(items []int) map[int]int {
	m := make(map[int]int)
	var tasks []task
	for _, it := range items {
		it := it
		tasks = append(tasks, task{"map", func() {
			m[it] = it // want "write to captured map m inside a task closure"
		}})
	}
	runTasks(4, tasks)
	return m
}

// goStmtSharedNotOK: the same rule applies to plain go statements in a
// loop, the netsim launch shape.
func goStmtSharedNotOK(n int) int {
	var wg sync.WaitGroup
	res := 0
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res = i // want "captured res is written by every instance of this goroutine"
		}()
	}
	wg.Wait()
	return res
}

// pointerSlotOK: a task-derived alias into the slot array is the
// documented pattern (s := &fig34Slots[k] in core/report.go).
func pointerSlotOK(n int) []int {
	slots := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := &slots[i]
			*s = i * 2
		}()
	}
	wg.Wait()
	return slots
}

// aliasPointerNotOK launders the shared element through a pointer; the
// derivation is flagged, the writes through it look local.
func aliasPointerNotOK(n int) []int {
	slots := make([]int, 8)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := &slots[0] // want "aliased pointer into captured slots"
			*s = i
		}()
	}
	wg.Wait()
	return slots
}

type report struct {
	a, b int
}

// fieldSlotsOK: single-instance tasks writing distinct fields of one
// captured struct are disjoint slots (the report-assembly shape).
func fieldSlotsOK(x, y int) report {
	rep := &report{}
	tasks := []task{
		{"a", func() { rep.a = x }},
		{"b", func() { rep.b = y }},
	}
	runTasks(2, tasks)
	return *rep
}

// fieldCollisionNotOK: two contexts, same field — last writer wins on
// scheduler order.
func fieldCollisionNotOK(x, y int) report {
	rep := &report{}
	tasks := []task{
		{"a", func() { rep.a = x }}, // want "captured rep.a is written by more than one goroutine context"
		{"b", func() { rep.a = y }}, // want "captured rep.a is written by more than one goroutine context"
	}
	runTasks(2, tasks)
	return *rep
}

// guardedElsewhereOK: a mutex-guarded write is mergeorder's finding,
// not a slot finding — sharedslot must stay quiet here.
func guardedElsewhereOK(items []int) int {
	var mu sync.Mutex
	total := 0
	var tasks []task
	for _, it := range items {
		it := it
		tasks = append(tasks, task{"locked", func() {
			mu.Lock()
			total = total + it
			mu.Unlock()
		}})
	}
	runTasks(4, tasks)
	return total
}

// localStateOK: everything declared inside the context is private.
func localStateOK(items []int) []int {
	slots := make([]int, len(items))
	var tasks []task
	for j, it := range items {
		j, it := j, it
		tasks = append(tasks, task{"local", func() {
			acc := 0
			for k := 0; k < it; k++ {
				acc = acc + k
			}
			slots[j] = acc
		}})
	}
	runTasks(4, tasks)
	return slots
}
