// Test corpus for the mapiter analyzer: map-range loops feeding
// order-sensitive sinks are flagged; order-insensitive bodies and
// sorted-key iteration stay clean.
package mapiter

import (
	"math/rand"
	"sort"
)

type sim struct{ now int }

func (s *sim) Schedule(at int, fn func()) {}
func (s *sim) Capacity() int              { return s.now }

func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "floating-point accumulation into total"
	}
	return total
}

func floatIncDec(m map[string]bool, weights map[string]float64) float64 {
	x := 0.0
	for k := range m {
		if weights[k] > 0 {
			x++ // want "floating-point accumulation into x"
		}
	}
	return x
}

func intAccumOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer addition commutes exactly: not flagged
	}
	return total
}

func loopLocalOK(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, vs := range m {
		sum := 0.0 // per-key accumulator dies each iteration: not flagged
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
	return out
}

func nestedShared(outer map[int]map[int]float64, shared []float64) {
	for _, inner := range outer {
		for i, v := range inner {
			shared[i] += v // want "floating-point accumulation into shared"
		}
	}
}

func rngDraw(m map[int]bool, r *rand.Rand) int {
	n := 0
	for range m {
		n ^= r.Intn(10) // want "RNG draw r.Intn inside map iteration"
	}
	return n
}

func perKeyStreamOK(m map[int]bool) int {
	n := 0
	for k := range m {
		r := rand.New(rand.NewSource(int64(k))) // per-key stream: draws don't depend on visit order
		n ^= r.Intn(10)
	}
	return n
}

func scheduleInLoop(m map[int]int, s *sim) {
	for k, v := range m {
		s.Schedule(k+v, func() {}) // want "s.Schedule inside map iteration"
	}
}

func readOnlyMethodOK(m map[int]int, s *sim) int {
	n := 0
	for range m {
		n += s.Capacity()
	}
	return n
}

func unsortedAppend(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want "append to out inside map iteration"
	}
	return out
}

func appendSortedOK(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // sorted below before anyone sees it
	}
	sort.Float64s(out)
	return out
}

func sortedKeysOK(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys { // slice range, fixed order: accumulate freely
		total += m[k]
	}
	return total
}

func mapWriteOK(src map[string]int) map[string]int {
	dst := make(map[string]int)
	for k, v := range src {
		dst[k] = v // distinct keys: order-insensitive
	}
	return dst
}

// eventDomain mirrors netsim's per-rack domains: the event queue and the
// float accumulator sit behind a field selector, and the analyzers must
// see through that indirection.
type eventDomain struct {
	q   *sim
	sum float64
}

func domainMapScheduleNotOK(domains map[int]int, core *eventDomain) {
	for r := range domains {
		core.q.Schedule(r, func() {}) // want "core.q.Schedule inside map iteration"
	}
}

func domainOwnQueueOK(domains map[int]*eventDomain) {
	for r, d := range domains {
		d.q.Schedule(r, func() {}) // the iterated domain's own queue: one insertion per queue, order-insensitive
	}
}

func domainSortedScheduleOK(domains map[int]*eventDomain) {
	keys := make([]int, 0, len(domains))
	for k := range domains {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		domains[k].q.Schedule(k, func() {}) // slice range, fixed order
	}
}

func domainFieldAccumNotOK(m map[string]float64, d *eventDomain) {
	for _, v := range m {
		d.sum += v // want "floating-point accumulation into d.sum inside map iteration"
	}
}

func domainSliceMergeOK(m map[int][]float64, doms []*eventDomain) {
	for k, vs := range m {
		s := 0.0 // per-key accumulator, then one store to a distinct slot
		for _, v := range vs {
			s += v
		}
		doms[k].sum = s
	}
}

func suppressedAboveOK(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//dctlint:ignore mapiter sum feeds an order-insensitive threshold check only
		total += v
	}
	return total
}

func suppressedSameLineOK(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v //dctlint:ignore mapiter sum feeds an order-insensitive threshold check only
	}
	return total
}
