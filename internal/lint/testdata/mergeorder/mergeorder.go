// Testdata for the mergeorder analyzer: merges must happen on one
// goroutine in a fixed order. Mutexes and atomics make a merge
// race-free, but its order still follows the scheduler — the
// contract's rule 3 wants per-task slots folded after the join.
package mergeorder

import (
	"sync"
	"sync/atomic"
)

type task struct {
	name string
	fn   func()
}

func runTasks(workers int, tasks []task) {
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tasks[i].fn()
			}
		}()
	}
	wg.Wait()
}

// fixedOrderMergeOK is the contract's shape: per-task slots, folded on
// the caller's goroutine in slot order after the pool joins.
func fixedOrderMergeOK(items []int) int {
	slots := make([]int, len(items))
	var tasks []task
	for j, it := range items {
		j, it := j, it
		tasks = append(tasks, task{"slot", func() {
			slots[j] = it * it
		}})
	}
	runTasks(4, tasks)
	total := 0
	for _, s := range slots {
		total += s
	}
	return total
}

// mutexMergeNotOK serializes the merge with a lock; the fold order is
// still whatever the scheduler ran first.
func mutexMergeNotOK(items []int) int {
	var mu sync.Mutex
	total := 0
	var tasks []task
	for _, it := range items {
		it := it
		tasks = append(tasks, task{"locked", func() {
			mu.Lock()
			total += it // want "update of captured total under mutex mu inside a task closure"
			mu.Unlock()
		}})
	}
	runTasks(4, tasks)
	return total
}

// mutexAssignNotOK: a guarded plain overwrite is the same discipline
// failure — the surviving value is scheduler-chosen.
func mutexAssignNotOK(items []int) int {
	var mu sync.Mutex
	last := 0
	var tasks []task
	for _, it := range items {
		it := it
		tasks = append(tasks, task{"locked", func() {
			mu.Lock()
			last = it // want "update of captured last under mutex mu inside a task closure"
			mu.Unlock()
		}})
	}
	runTasks(4, tasks)
	return last
}

// unlockedBranchNotOK: the lock analysis is path-sensitive — a write
// after a conditional early unlock is guarded on no path that matters,
// so it is a bare cross-goroutine accumulation.
func unlockedBranchNotOK(items []int) int {
	var mu sync.Mutex
	count := 0
	var tasks []task
	for _, it := range items {
		it := it
		tasks = append(tasks, task{"branch", func() {
			mu.Lock()
			if it < 0 {
				mu.Unlock()
				return
			}
			mu.Unlock()
			count++ // want "accumulation into captured count across goroutines"
		}})
	}
	runTasks(4, tasks)
	return count
}

// atomicReduceNotOK: atomics are race-free and still scheduler-ordered.
func atomicReduceNotOK(items []int) int64 {
	var sum atomic.Int64
	var tasks []task
	for _, it := range items {
		it := it
		tasks = append(tasks, task{"atomic", func() {
			sum.Add(int64(it)) // want "atomic reduction into captured sum inside a task closure"
		}})
	}
	runTasks(4, tasks)
	return sum.Load()
}

// atomicPkgReduceNotOK: the package-function form of the same bug.
func atomicPkgReduceNotOK(items []int) int64 {
	var sum int64
	var wg sync.WaitGroup
	for _, it := range items {
		it := it
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt64(&sum, int64(it)) // want "atomic reduction into captured sum inside a goroutine"
		}()
	}
	wg.Wait()
	return sum
}

// claimProtocolOK: an atomic whose result is consumed is coordination —
// the pool's task-claiming counter — not a merge.
func claimProtocolOK(items []int, process func(int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				process(items[i])
			}
		}()
	}
	wg.Wait()
}

// atomicSlotOK: per-slot atomics indexed by the task's own index are
// disjoint and deterministic (the pool test's done-counter shape).
func atomicSlotOK(n int) []int32 {
	done := make([]int32, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt32(&done[i], 1)
		}()
	}
	wg.Wait()
	return done
}

// publishOnceOK: a single-instance goroutine storing a completion flag
// is publication, not a reduction across instances.
func publishOnceOK(run func()) *atomic.Bool {
	var done atomic.Bool
	go func() {
		run()
		done.Store(true)
	}()
	return &done
}

// storeRaceNotOK: the same store from every instance of a looped
// goroutine is a scheduler-ordered merge of one slot.
func storeRaceNotOK(n int) *atomic.Int64 {
	var last atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			last.Store(int64(i)) // want "atomic reduction into captured last inside a goroutine"
		}()
	}
	wg.Wait()
	return &last
}

// localLockOK: a mutex owned by the context guards nothing shared;
// local accumulation under it is invisible outside the goroutine.
func localLockOK(items []int, sink func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		it := it
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mu sync.Mutex
			acc := 0
			mu.Lock()
			acc += it
			mu.Unlock()
			sink(acc)
		}()
	}
	wg.Wait()
}
