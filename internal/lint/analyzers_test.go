package lint_test

import (
	"testing"

	"dctraffic/internal/lint"
	"dctraffic/internal/lint/linttest"
)

func TestMapIter(t *testing.T)    { linttest.Run(t, "testdata/mapiter", lint.MapIter) }
func TestWallTime(t *testing.T)   { linttest.Run(t, "testdata/walltime", lint.WallTime) }
func TestGlobalRand(t *testing.T) { linttest.Run(t, "testdata/globalrand", lint.GlobalRand) }
func TestFloatSum(t *testing.T)   { linttest.Run(t, "testdata/floatsum", lint.FloatSum) }
func TestSharedSlot(t *testing.T) { linttest.Run(t, "testdata/sharedslot", lint.SharedSlot) }
func TestMergeOrder(t *testing.T) { linttest.Run(t, "testdata/mergeorder", lint.MergeOrder) }
func TestRNGShare(t *testing.T)   { linttest.Run(t, "testdata/rngshare", lint.RNGShare) }

// The tier-1 acceptance guard: the tree itself must be clean under the
// full suite, with each analyzer's AppliesTo gate honoured — exactly
// what `make lint` enforces from the command line.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing most of the tree", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, lint.Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
