package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSource type-checks one import-free source file and runs the
// suite over it.
func checkSource(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := new(types.Config).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{f}, Pkg: tpkg, Info: info}
	diags, err := RunPackage(pkg, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

const accumSrc = `package p

func accum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		%s
		total += v
	}
	return total
}
`

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	bare := strings.ReplaceAll(accumSrc, "%s\n\t\t", "")
	if diags := checkSource(t, bare); len(diags) != 1 {
		t.Fatalf("control case: want 1 diagnostic, got %v", diags)
	}
	suppressed := strings.Replace(accumSrc, "%s",
		"//dctlint:ignore mapiter order-insensitive threshold check", 1)
	if diags := checkSource(t, suppressed); len(diags) != 0 {
		t.Fatalf("suppressed case: want 0 diagnostics, got %v", diags)
	}
}

func TestIgnoreDirectiveWrongAnalyzerDoesNotSuppress(t *testing.T) {
	src := strings.Replace(accumSrc, "%s",
		"//dctlint:ignore walltime not the analyzer that fires here", 1)
	diags := checkSource(t, src)
	if len(diags) != 1 || diags[0].Analyzer != "mapiter" {
		t.Fatalf("want the mapiter diagnostic to survive, got %v", diags)
	}
}

func TestIgnoreDirectiveRequiresReason(t *testing.T) {
	src := strings.Replace(accumSrc, "%s", "//dctlint:ignore mapiter", 1)
	diags := checkSource(t, src)
	if len(diags) != 2 {
		t.Fatalf("want the finding plus a malformed-directive report, got %v", diags)
	}
	var sawMalformed, sawFinding bool
	for _, d := range diags {
		switch d.Analyzer {
		case "dctlint":
			sawMalformed = strings.Contains(d.Message, "needs a reason")
		case "mapiter":
			sawFinding = true
		}
	}
	if !sawMalformed || !sawFinding {
		t.Fatalf("want reasonless directive reported and finding kept, got %v", diags)
	}
}

func TestStaleDirectiveReported(t *testing.T) {
	src := `package p

//dctlint:ignore mapiter leftover excuse for code that was deleted
var x = 1
`
	diags := checkSource(t, src)
	if len(diags) != 1 || diags[0].Analyzer != "dctlint" ||
		!strings.Contains(diags[0].Message, "stale suppression: no mapiter diagnostic") {
		t.Fatalf("want exactly one stale-suppression report, got %v", diags)
	}
}

func TestUsedDirectiveNotStale(t *testing.T) {
	src := strings.Replace(accumSrc, "%s",
		"//dctlint:ignore mapiter order-insensitive threshold check", 1)
	for _, d := range checkSource(t, src) {
		if strings.Contains(d.Message, "stale suppression") {
			t.Fatalf("directive suppresses a live finding; must not be stale: %v", d)
		}
	}
}

func TestStaleAuditSkipsGatedAnalyzers(t *testing.T) {
	// walltime's AppliesTo gate keeps it off package "p", so this run
	// cannot judge the directive and must not call it stale.
	src := `package p

//dctlint:ignore walltime covered when the gated analyzer runs
var x = 1
`
	if diags := checkSource(t, src); len(diags) != 0 {
		t.Fatalf("want no diagnostics for a gated analyzer's directive, got %v", diags)
	}
}

func TestIgnoreDirectiveUnknownAnalyzer(t *testing.T) {
	src := strings.Replace(accumSrc, "%s", "//dctlint:ignore nosuchcheck because", 1)
	diags := checkSource(t, src)
	var sawMalformed bool
	for _, d := range diags {
		if d.Analyzer == "dctlint" && strings.Contains(d.Message, "malformed directive") {
			sawMalformed = true
		}
	}
	if !sawMalformed {
		t.Fatalf("want unknown analyzer reported as malformed, got %v", diags)
	}
}
