// Package linttest is dctlint's analysistest analogue: it runs one
// analyzer over a testdata package and checks its diagnostics against
// `// want "regexp"` comments placed on the lines expected to be
// flagged. Lines without a want comment must stay clean, so every
// testdata file doubles as a corpus of negative cases.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"dctraffic/internal/lint"
)

// wantRE extracts the quoted patterns of a want comment.
var wantRE = regexp.MustCompile(`// want(?: "((?:[^"\\]|\\.)*)")+`)

var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	met     bool
}

// Run type-checks the Go files under dir as one package, applies the
// analyzer (suppression directives included, exactly as the driver
// does), and reports any mismatch between diagnostics and want
// comments as test failures.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	pkg, err := loadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The driver's AppliesTo gate keys off real import paths; testdata
	// paths are synthetic, so the harness always runs the analyzer.
	ungated := *a
	ungated.AppliesTo = nil
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{&ungated})
	if err != nil {
		t.Fatal(err)
	}
	expect := collectWants(t, pkg)
	for _, d := range diags {
		if !claim(expect, d) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, e := range expect {
		if !e.met {
			t.Errorf("%s:%d: no diagnostic matched %q", e.file, e.line, e.pattern)
		}
	}
}

func loadDir(dir string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	path := "testdata/" + filepath.Base(dir)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{Path: path, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindString(c.Text)
				if m == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m, -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, q[1], err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

func claim(expect []*expectation, d lint.Diagnostic) bool {
	for _, e := range expect {
		if !e.met && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.pattern.MatchString(d.Message) {
			e.met = true
			return true
		}
	}
	return false
}
